(* dpkit — command-line driver for the experiment suite and the
   query-serving engine.

   dpkit list                         enumerate experiments
   dpkit experiment E5 [--quick]      run one experiment
   dpkit experiment all [--seed 7]    run everything
   dpkit serve                        line-protocol DP query server (stdin/stdout)
   dpkit serve --tcp PORT             the same protocol over TCP (multi-client)
   dpkit client --port P              retrying client for the TCP server
   dpkit query "mean(income)" ...     one-shot queries against a synthetic dataset
   dpkit analyze --schema S WORKLOAD  static workload costing, no data access
   dpkit certify "sum(income)"        hypothesis-test the claimed (eps, delta)
   dpkit certify ... --via tcp        the same, against a live TCP server
   dpkit certify compare PRE POST     crash-recovery distribution comparison
   dpkit lint [DIR]                   privacy-invariant source linter (R1..R9) *)

open Cmdliner

let seed_arg =
  let doc = "PRNG seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int 20120330 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Reduced trial counts for a fast smoke run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_cmd =
  let run () =
    Format.printf "%-4s %-55s %s@." "id" "title" "claim";
    Format.printf "%s@." (String.make 110 '-');
    List.iter
      (fun e ->
        Format.printf "%-4s %-55s %s@." e.Dp_experiments.Registry.id
          e.Dp_experiments.Registry.title e.Dp_experiments.Registry.claim)
      Dp_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List all experiments and ablations.")
    Term.(const run $ const ())

let csv_arg =
  let doc = "Also write each table as a CSV file into $(docv) (must exist)." in
  Arg.(value & opt (some dir) None & info [ "csv" ] ~docv:"DIR" ~doc)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (E1..E33, A2..A4) or 'all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id quick seed csv =
    Dp_experiments.Table.set_export_dir csv;
    let fmt = Format.std_formatter in
    match String.lowercase_ascii id with
    | "all" ->
        Dp_experiments.Registry.run_all ~quick ~seed fmt;
        `Ok ()
    | _ -> (
        match Dp_experiments.Registry.find id with
        | Some e ->
            Format.fprintf fmt "### [%s] %s — %s@."
              e.Dp_experiments.Registry.id e.Dp_experiments.Registry.title
              e.Dp_experiments.Registry.claim;
            e.Dp_experiments.Registry.run ~quick ~seed fmt;
            `Ok ()
        | None ->
            `Error (false, Printf.sprintf "unknown experiment %S (try 'dpkit list')" id))
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run an experiment and print its table(s).")
    Term.(ret (const run $ id_arg $ quick_arg $ seed_arg $ csv_arg))

let epsilon_arg =
  let doc = "Privacy parameter epsilon." in
  Arg.(value & opt float 1.0 & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc)

let audit_cmd =
  let mech_arg =
    let doc = "Mechanism to audit: laplace | geometric | rr | gibbs." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MECHANISM" ~doc)
  in
  let trials_arg =
    let doc = "Number of mechanism runs per input." in
    Arg.(value & opt int 100_000 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let run mech epsilon trials seed =
    let g = Dp_rng.Prng.create seed in
    let report_fmt (r : Dp_audit.Auditor.report) =
      Format.printf
        "theory eps = %g@.empirical eps_hat = %.4f@.conservative eps_lower = %.4f@.verdict: %s@."
        r.Dp_audit.Auditor.epsilon_theory r.Dp_audit.Auditor.epsilon_hat
        r.Dp_audit.Auditor.epsilon_lower
        (if Dp_audit.Auditor.passes r ~slack:(0.1 *. epsilon +. 0.02) then
           "consistent with the claimed epsilon"
         else "POSSIBLE VIOLATION — investigate")
    in
    match String.lowercase_ascii mech with
    | "laplace" ->
        let m = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon in
        report_fmt
          (Dp_audit.Auditor.audit_continuous ~trials ~bins:16
             ~lo:(-4. /. epsilon)
             ~hi:(1. +. (4. /. epsilon))
             ~epsilon_theory:epsilon
             ~run:(fun g' -> Dp_mechanism.Laplace.release m ~value:0. g')
             ~run':(fun g' -> Dp_mechanism.Laplace.release m ~value:1. g')
             g);
        `Ok ()
    | "geometric" ->
        let m = Dp_mechanism.Geometric_mech.create ~sensitivity:1 ~epsilon in
        let p = Dp_mechanism.Geometric_mech.truncated_distribution m ~value:10 ~lo:0 ~hi:20 in
        let q = Dp_mechanism.Geometric_mech.truncated_distribution m ~value:11 ~lo:0 ~hi:20 in
        Format.printf "exact audit (closed-form pmf): eps_exact = %.6f (claimed %g)@."
          (Dp_audit.Auditor.audit_exact ~p ~q) epsilon;
        `Ok ()
    | "rr" ->
        let rr = Dp_mechanism.Randomized_response.create ~epsilon in
        report_fmt
          (Dp_audit.Auditor.audit_discrete ~trials ~outcomes:2
             ~epsilon_theory:epsilon
             ~run:(fun g' ->
               if Dp_mechanism.Randomized_response.respond rr true g' then 1 else 0)
             ~run':(fun g' ->
               if Dp_mechanism.Randomized_response.respond rr false g' then 1
               else 0)
             g);
        `Ok ()
    | "gibbs" ->
        (* exact audit of a finite Gibbs posterior at the target epsilon *)
        let n = 40 in
        let grid = Array.init 17 (fun i -> -2. +. (0.25 *. float_of_int i)) in
        let loss theta (x, y) =
          if (if x >= theta then 1. else -1.) = y then 0. else 1.
        in
        let beta = epsilon *. float_of_int n /. 2. in
        let sample =
          Array.init n (fun _ ->
              let y = if Dp_rng.Prng.bool g then 1. else -1. in
              (Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g, y))
        in
        let fit s =
          Dp_pac_bayes.Gibbs.fit ~predictors:grid ~beta
            ~empirical_risk:(Dp_pac_bayes.Risk.empirical ~loss s)
            ()
        in
        let p = Dp_pac_bayes.Gibbs.probabilities (fit sample) in
        let worst = ref 0. in
        for _ = 1 to 200 do
          let s' = Array.copy sample in
          s'.(Dp_rng.Prng.int g n) <-
            (Dp_rng.Sampler.gaussian ~mean:0. ~std:2. g,
             if Dp_rng.Prng.bool g then 1. else -1.);
          let q = Dp_pac_bayes.Gibbs.probabilities (fit s') in
          worst := Float.max !worst (Dp_audit.Auditor.audit_exact ~p ~q)
        done;
        Format.printf
          "exact audit over 200 neighbours: worst eps = %.4f (bound 2*beta/n = %g)@."
          !worst epsilon;
        `Ok ()
    | other -> `Error (false, Printf.sprintf "unknown mechanism %S" other)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Audit a mechanism's differential privacy empirically or exactly.")
    Term.(ret (const run $ mech_arg $ epsilon_arg $ trials_arg $ seed_arg))

let channel_cmd =
  let beta_arg =
    let doc = "Gibbs inverse temperature." in
    Arg.(value & opt float 3. & info [ "beta" ] ~docv:"BETA" ~doc)
  in
  let n_arg =
    let doc = "Sample size (records per dataset)." in
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc)
  in
  let run beta n =
    if n <= 0 || n > 16 then
      `Error (false, "n must be in 1..16 (exact enumeration)")
    else begin
      let loss j z = if j = z then 0. else 1. in
      let gc =
        Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.5; 0.5 |] ~n
          ~predictors:[| 0; 1 |] ~beta ~loss ()
      in
      Format.printf "%a@." Dp_info.Channel.pp gc.Dp_pac_bayes.Gibbs_channel.channel;
      Format.printf "I(Z;theta) = %.4f nats, exact eps = %.4f (bound %.4f)@."
        (Dp_pac_bayes.Gibbs_channel.mutual_information gc)
        (Dp_pac_bayes.Gibbs_channel.dp_epsilon gc)
        (Dp_pac_bayes.Gibbs_channel.theoretical_epsilon gc ~loss_lo:0. ~loss_hi:1.);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "channel"
       ~doc:"Print the paper's Figure 1 channel for given beta and n.")
    Term.(ret (const run $ beta_arg $ n_arg))

let serve_cmd =
  let journal_arg =
    let doc =
      "Write-ahead budget journal. Charges are fsynced to $(docv) before \
       any noisy answer is released; on startup existing records are \
       replayed, so spent budget survives crashes."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let faults_arg =
    let doc =
      "Fault-injection plan, e.g. 'journal-fsync=2' or 'all-transient' \
       (testing only; overrides \\$DPKIT_FAULTS)."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let metrics_arg =
    let doc =
      "Write the final metrics snapshot (counters, gauges, latency \
       histograms, spans — the same dump the protocol's 'metrics' command \
       serves) to $(docv) at exit; render it with $(b,dpkit stats)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let tcp_arg =
    let doc =
      "Serve the protocol over TCP on 127.0.0.1:$(docv) instead of \
       stdin/stdout (0 picks an ephemeral port, printed as \
       'listening port=N'). SIGTERM/SIGINT drain gracefully: stop \
       accepting, finish in-flight requests, fsync the journal, write \
       --metrics, exit 0."
    in
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)
  in
  let max_conns_arg =
    let doc = "TCP admission bound: connections past $(docv) are shed with \
               'err overloaded'." in
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc = "TCP admission bound: queued requests plus unflushed replies \
               past $(docv) are shed with 'err overloaded'." in
    Arg.(value & opt int 128 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let idle_timeout_arg =
    let doc = "Close TCP connections with no completed request for $(docv) \
               seconds (slow-loris defense: partial lines do not count)." in
    Arg.(value & opt float 30. & info [ "idle-timeout" ] ~docv:"S" ~doc)
  in
  let request_deadline_arg =
    let doc = "Close a TCP connection whose reply is not fully flushed \
               within $(docv) seconds of the request arriving." in
    Arg.(value & opt float 10. & info [ "request-deadline" ] ~docv:"S" ~doc)
  in
  let workers_arg =
    let doc =
      "Serve with $(docv) supervised worker processes behind one \
       coordinator that owns the listener and arbitrates the global \
       budget with fenced ε-leases (requires --tcp and --journal; \
       shard k journals to FILE.shard<k>, lease grants to \
       FILE.grants). $(docv)=1 is the plain single-process server."
    in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let run seed journal faults_spec metrics_path tcp max_conns max_inflight
      idle_timeout request_deadline workers =
    let faults_r =
      match faults_spec with
      | None -> Ok (Dp_engine.Faults.of_env ())
      | Some spec -> Dp_engine.Faults.parse spec
    in
    match faults_r with
    | Error msg -> `Error (false, "bad --faults: " ^ msg)
    | Ok _ when workers < 1 ->
        `Error (false, "--workers must be at least 1")
    | Ok faults when workers > 1 -> (
        match (tcp, journal) with
        | None, _ ->
            `Error
              (false,
               "--workers needs --tcp: the pool coordinator owns the \
                listener")
        | _, None ->
            `Error
              (false,
               "--workers needs --journal: shard journals back lease \
                reclamation")
        | Some port, Some journal -> (
            let cfg =
              {
                (Dp_pool.Pool.default_config ~workers ~port ~journal) with
                Dp_pool.Pool.seed;
                metrics = metrics_path;
                faults;
              }
            in
            match Dp_pool.Pool.run cfg with 0 -> `Ok () | n -> exit n))
    | Ok faults -> (
        let eng = Dp_engine.Engine.create ~seed ~faults () in
        let write_metrics () =
          match metrics_path with
          | None -> `Ok ()
          | Some path -> (
              match open_out path with
              | oc ->
                  List.iter
                    (fun l ->
                      output_string oc l;
                      output_char oc '\n')
                    (Dp_engine.Engine.metrics_lines eng);
                  close_out oc;
                  `Ok ()
              | exception Sys_error msg ->
                  `Error (false, "cannot write metrics: " ^ msg))
        in
        let recovered =
          match journal with
          | None -> Ok None
          | Some path ->
              Result.map Option.some (Dp_engine.Engine.open_journal eng path)
        in
        match recovered with
        | Error msg -> `Error (false, "journal recovery failed: " ^ msg)
        | Ok r ->
            Format.printf "dpkit %s DP query engine — 'help' lists commands@."
              Dp_engine.Version.current;
            (match r with
            | None -> ()
            | Some r ->
                Format.printf
                  "journal %s: replayed %d records (%d datasets, %d charges, \
                   %d cached answers, %d models, %d streams), truncated %d \
                   torn bytes, %s@."
                  r.Dp_engine.Engine.journal_path r.Dp_engine.Engine.records
                  r.Dp_engine.Engine.datasets r.Dp_engine.Engine.charges
                  r.Dp_engine.Engine.cache_entries
                  r.Dp_engine.Engine.models_recovered
                  r.Dp_engine.Engine.streams_recovered
                  r.Dp_engine.Engine.torn_bytes
                  (if r.Dp_engine.Engine.verified then "audit-verified"
                   else "UNVERIFIED"));
            let serve_stdio () =
              match Dp_engine.Protocol.serve eng stdin stdout with
              | () -> write_metrics ()
              | exception Dp_engine.Faults.Crash p ->
                  flush stdout;
                  Printf.eprintf "dpkit: injected crash at %s\n%!"
                    (Dp_engine.Faults.point_name p);
                  exit 70
            in
            let serve_tcp port =
              let config =
                {
                  Dp_net.Server.default_config with
                  port;
                  max_conns;
                  max_inflight;
                  idle_timeout_s = idle_timeout;
                  reply_deadline_s = request_deadline;
                }
              in
              match Dp_net.Server.create ~config eng with
              | Error msg -> `Error (false, "cannot listen: " ^ msg)
              | Ok srv -> (
                  (* a flag flip is all a handler may do; the select
                     loop sees it on its next turn (EINTR included) *)
                  let stop _ = Dp_net.Server.request_stop srv in
                  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
                  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
                  (* a peer closing mid-write must be EPIPE, not death *)
                  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
                  Format.printf "listening port=%d@." (Dp_net.Server.port srv);
                  match Dp_net.Server.run srv with
                  | () ->
                      Format.printf "drained@.";
                      write_metrics ()
                  | exception Dp_engine.Faults.Crash p ->
                      Printf.eprintf "dpkit: injected crash at %s\n%!"
                        (Dp_engine.Faults.point_name p);
                      exit 70)
            in
            let outcome =
              match tcp with
              | None -> serve_stdio ()
              | Some port -> serve_tcp port
            in
            Dp_engine.Engine.close eng;
            outcome)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve differentially-private queries over a line protocol on \
          stdin/stdout, or over TCP with --tcp.")
    Term.(
      ret
        (const run $ seed_arg $ journal_arg $ faults_arg $ metrics_arg
       $ tcp_arg $ max_conns_arg $ max_inflight_arg $ idle_timeout_arg
       $ request_deadline_arg $ workers_arg))

let pool_cmd =
  let action_arg =
    let doc = "$(b,replay): merge the shard journals and grant WAL \
               offline and print the recovered global ledger." in
    Arg.(value & pos 0 string "replay" & info [] ~docv:"ACTION" ~doc)
  in
  let journal_arg =
    let doc = "Journal base path the pool served with (shards at \
               $(docv).shard<k>, grants at $(docv).grants)." in
    Arg.(
      required & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let workers_arg =
    let doc = "Worker count the pool served with." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let run seed action journal workers =
    match action with
    | "replay" -> (
        if workers < 1 then `Error (false, "--workers must be at least 1")
        else
          match Dp_pool.Pool.merge_lines ~seed ~journal ~workers () with
          | Error msg -> `Error (false, msg)
          | Ok (lines, ok) ->
              List.iter print_endline lines;
              if ok then `Ok () else exit 1)
    | other -> `Error (false, Printf.sprintf "unknown pool action %S" other)
  in
  Cmd.v
    (Cmd.info "pool"
       ~doc:
         "Inspect a worker pool's on-disk state: 'replay' merges the \
          shard journals with the grant WAL into the recovered global \
          ledger — bit-identical to the report a restarting coordinator \
          prints — and exits 1 if the lease invariant is violated.")
    Term.(ret (const run $ seed_arg $ action_arg $ journal_arg $ workers_arg))

let client_cmd =
  let port_arg =
    let doc = "Server port (required)." in
    Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Server host." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let attempts_arg =
    let doc = "Attempts per request before giving up." in
    Arg.(value & opt int 8 & info [ "attempts" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Backoff base in seconds (doubled per attempt, full jitter)." in
    Arg.(value & opt float 0.05 & info [ "backoff" ] ~docv:"S" ~doc)
  in
  let cap_arg =
    let doc = "Backoff cap in seconds." in
    Arg.(value & opt float 2.0 & info [ "backoff-cap" ] ~docv:"S" ~doc)
  in
  let timeout_arg =
    let doc = "Reply timeout in seconds (a timed-out reply is retried)." in
    Arg.(value & opt float 10. & info [ "timeout" ] ~docv:"S" ~doc)
  in
  let jitter_seed_arg =
    let doc =
      "Seed for the backoff jitter stream (default: derived from the PID; \
       fix it for reproducible retry schedules in tests)."
    in
    Arg.(value & opt (some int) None & info [ "jitter-seed" ] ~docv:"SEED" ~doc)
  in
  let run host port attempts backoff cap timeout jitter_seed =
    let jitter =
      let seed =
        match jitter_seed with
        | Some s -> s
        | None -> Unix.getpid () lxor int_of_float (Unix.gettimeofday () *. 1e6)
      in
      Some (Dp_rng.Prng.create seed)
    in
    let cfg =
      {
        Dp_net.Client.host;
        port;
        attempts;
        backoff_s = backoff;
        cap_s = cap;
        reply_timeout_s = timeout;
        jitter;
      }
    in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    exit (Dp_net.Client.run cfg stdin stdout)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send request lines from stdin to a dpkit TCP server, retrying \
          transient and overloaded replies with capped jittered backoff.")
    Term.(
      const run $ host_arg $ port_arg $ attempts_arg $ backoff_arg $ cap_arg
      $ timeout_arg $ jitter_seed_arg)

(* lint and flow share the exemption-file convention: --exempt wins,
   else DIR/lint.exempt when present. *)
let load_exempt exempt_path dir =
  match exempt_path with
  | Some p -> Dp_lint.Config.load p
  | None ->
      let p = Filename.concat dir "lint.exempt" in
      if Sys.file_exists p then Dp_lint.Config.load p
      else Ok Dp_lint.Config.empty

(* lint findings are reported relative to the linted root; flow
   findings over the same root come back root-prefixed — rebase them
   so the two merge cleanly. *)
let rebase_flow_finding ~dir (f : Dp_lint.Report.finding) =
  let strip path =
    let prefix = if dir = "." then "" else dir ^ "/" in
    let n = String.length prefix in
    if n > 0 && String.length path > n && String.sub path 0 n = prefix then
      String.sub path n (String.length path - n)
    else path
  in
  {
    f with
    Dp_lint.Report.file = strip f.Dp_lint.Report.file;
    witness =
      List.map
        (fun (s : Dp_lint.Report.step) ->
          { s with Dp_lint.Report.s_file = strip s.Dp_lint.Report.s_file })
        f.Dp_lint.Report.witness;
  }

let lint_cmd =
  let dir_arg =
    let doc = "Directory to lint (the repository root)." in
    Arg.(value & pos 0 dir "." & info [] ~docv:"DIR" ~doc)
  in
  let format_arg =
    let doc = "Output format: $(b,text) (FILE:LINE, editor-clickable) or \
               $(b,json) (one object per line)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let exempt_arg =
    let doc =
      "Exemption file ('RULE PATH-FRAGMENT' per line). Defaults to \
       DIR/lint.exempt when present."
    in
    Arg.(value & opt (some file) None & info [ "exempt" ] ~docv:"FILE" ~doc)
  in
  let rules_arg =
    let doc = "List the rules and exit." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let flow_arg =
    let doc =
      "Delegate R2, R8 and R9 to the interprocedural flow analyzer: \
       their token findings are replaced by F2/F3 findings over the \
       same tree (see $(b,dpkit flow)), minus anything accepted in \
       DIR/flow.baseline. The remaining rules still run as token \
       checks."
    in
    Arg.(value & flag & info [ "flow" ] ~doc)
  in
  let run dir format exempt_path rules flow =
    if rules then begin
      List.iter
        (fun (id, summary) -> Format.printf "%-4s %s@." id summary)
        Dp_lint.Rules.all;
      if flow then
        List.iter
          (fun (id, summary) -> Format.printf "%-4s %s@." id summary)
          Dp_flow.Flow.checks;
      `Ok ()
    end
    else
      match load_exempt exempt_path dir with
      | Error msg -> `Error (false, "bad exemption file: " ^ msg)
      | Ok exempt ->
          let lexical = Dp_lint.Driver.lint_dir ~exempt dir in
          let findings =
            if not flow then lexical
            else
              let delegated = [ "R2"; "R8"; "R9" ] in
              let kept =
                List.filter
                  (fun (f : Dp_lint.Report.finding) ->
                    not (List.mem f.Dp_lint.Report.rule delegated))
                  lexical
              in
              (* the delegation inherits flow's whole suppression
                 stack: inline allows and --exempt via analyze, plus
                 the tree's accepted-findings baseline when present *)
              let baseline =
                Dp_flow.Baseline.load (Filename.concat dir "flow.baseline")
              in
              let flow_findings =
                List.filter
                  (fun (f : Dp_lint.Report.finding) ->
                    List.mem f.Dp_lint.Report.rule [ "F2"; "F3" ])
                  (Dp_flow.Baseline.filter baseline
                     (Dp_flow.Flow.analyze ~exempt [ dir ])
                       .Dp_flow.Flow.findings)
                |> List.map (rebase_flow_finding ~dir)
              in
              Dp_lint.Report.dedup
                (List.sort Dp_lint.Report.compare_findings
                   (kept @ flow_findings))
          in
          let pp =
            match format with
            | `Text -> Dp_lint.Report.pp_text
            | `Json -> Dp_lint.Report.pp_json
          in
          List.iter (Format.printf "%a@." pp) findings;
          if findings = [] then `Ok ()
          else begin
            Format.printf "%d finding%s@." (List.length findings)
              (if List.length findings = 1 then "" else "s");
            exit 1
          end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Check the source tree against the privacy-invariant rules \
          (R1..R9); exit 1 on any finding.")
    Term.(
      ret
        (const run $ dir_arg $ format_arg $ exempt_arg $ rules_arg $ flow_arg))

let flow_cmd =
  let paths_arg =
    let doc = "Files or directories to analyze (every .ml underneath)." in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,text) (FILE:LINE:COL plus witness path), \
       $(b,json) (one object per line) or $(b,sarif) (SARIF 2.1.0 \
       document)."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
          `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let baseline_arg =
    let doc =
      "Baseline file of accepted findings; matching findings are \
       reported as baselined and do not fail the run."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let write_baseline_arg =
    let doc = "Write the current findings to FILE as the new baseline." in
    Arg.(
      value
      & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE" ~doc)
  in
  let exempt_arg =
    let doc =
      "Exemption file ('RULE PATH-FRAGMENT' per line). Defaults to \
       ./lint.exempt when present."
    in
    Arg.(value & opt (some file) None & info [ "exempt" ] ~docv:"FILE" ~doc)
  in
  let rules_arg =
    let doc = "List the flow checks and exit." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let run paths format baseline_path write_baseline exempt_path rules =
    if rules then begin
      List.iter
        (fun (id, summary) -> Format.printf "%-4s %s@." id summary)
        Dp_flow.Flow.checks;
      `Ok ()
    end
    else if paths = [] then `Error (true, "required argument PATH is missing")
    else
      match List.filter (fun p -> not (Sys.file_exists p)) paths with
      | missing :: _ ->
          `Error (true, Printf.sprintf "no such file or directory: %s" missing)
      | [] -> (
      match load_exempt exempt_path "." with
      | Error msg -> `Error (false, "bad exemption file: " ^ msg)
      | Ok exempt -> (
          let result = Dp_flow.Flow.analyze ~exempt paths in
          List.iter
            (fun e -> Format.eprintf "flow: %s@." e)
            result.Dp_flow.Flow.errors;
          let baseline =
            match baseline_path with
            | Some p -> Dp_flow.Baseline.load p
            | None -> []
          in
          let fresh =
            Dp_flow.Baseline.filter baseline result.Dp_flow.Flow.findings
          in
          let baselined =
            List.length result.Dp_flow.Flow.findings - List.length fresh
          in
          match write_baseline with
          | Some path ->
              let oc = open_out path in
              output_string oc
                (Dp_flow.Baseline.to_string result.Dp_flow.Flow.findings);
              close_out oc;
              Format.printf "wrote %d finding%s to %s@."
                (List.length result.Dp_flow.Flow.findings)
                (if List.length result.Dp_flow.Flow.findings = 1 then ""
                 else "s")
                path;
              `Ok ()
          | None ->
              (match format with
              | `Sarif -> print_string (Dp_flow.Sarif.render fresh)
              | `Text | `Json ->
                  let pp =
                    match format with
                    | `Text -> Dp_lint.Report.pp_text
                    | _ -> Dp_lint.Report.pp_json
                  in
                  List.iter (Format.printf "%a@." pp) fresh;
                  if fresh <> [] || baselined > 0 then
                    Format.printf "%d finding%s (%d baselined, %d files)@."
                      (List.length fresh)
                      (if List.length fresh = 1 then "" else "s")
                      baselined result.Dp_flow.Flow.files);
              if fresh = [] && result.Dp_flow.Flow.errors = [] then `Ok ()
              else exit 1))
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Interprocedural privacy-dataflow analysis: F1 row taint, F2 \
          charge-before-release, F3 RNG provenance. Exits 1 on any \
          non-baselined finding or parse error.")
    Term.(
      ret
        (const run $ paths_arg $ format_arg $ baseline_arg
       $ write_baseline_arg $ exempt_arg $ rules_arg))

(* 4.14-compatible whole-file read (no In_channel.input_lines). *)
let read_file path =
  match open_in_bin path with
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Ok s
  | exception Sys_error msg -> Error msg

let stats_cmd =
  let file_arg =
    let doc =
      "Metrics dump written by $(b,dpkit serve --metrics FILE). The \
       protocol's 'metrics' reply body also parses (indentation is \
       ignored) once the 'ok metrics' header line is dropped."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,text) (per-scope summary with latency \
       quantiles) or $(b,json) (one machine-readable document)."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let check_arg =
    let doc =
      "Verify the closed-label invariant: every metric, span and tag name \
       in the dump must come from the Dp_obs.Name catalogue; exit 1 \
       otherwise."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let bad_names entries =
    let check_entry = function
      | Dp_obs.Export.Counter { name; _ } ->
          if Dp_obs.Name.is_counter_name name then [] else [ name ]
      | Dp_obs.Export.Gauge { name; _ } ->
          if Dp_obs.Name.is_gauge_name name then [] else [ name ]
      | Dp_obs.Export.Latency { name; _ } ->
          if Dp_obs.Name.is_latency_name name then [] else [ name ]
      | Dp_obs.Export.Span { name; tags; _ } ->
          (if Dp_obs.Name.is_span_name name then [] else [ name ])
          @ List.filter_map
              (fun (k, _) ->
                if Dp_obs.Name.is_tag_name k then None else Some k)
              tags
    in
    List.concat_map check_entry entries
  in
  let run file format check =
    match read_file file with
    | Error msg -> `Error (false, msg)
    | Ok text -> (
        match Dp_obs.Export.parse (String.split_on_char '\n' text) with
        | Error msg -> `Error (false, file ^ ": " ^ msg)
        | Ok entries -> (
            match bad_names entries with
            | bad :: _ when check ->
                Format.printf "closed-label violation: %S is not in the \
                               Dp_obs.Name catalogue@."
                  bad;
                exit 1
            | _ ->
                (match format with
                | `Text ->
                    List.iter
                      (Format.printf "%s@.")
                      (Dp_obs.Export.pretty entries)
                | `Json -> Format.printf "%s@." (Dp_obs.Export.to_json entries));
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Render a dpkit metrics dump: counters, gauges, latency-histogram \
          quantiles and spans, as text or JSON.")
    Term.(ret (const run $ file_arg $ format_arg $ check_arg))

let analyze_cmd =
  let schema_arg =
    let doc =
      "Dataset schema file: a 'dataset NAME rows=N eps=E ...' line \
       (register-command options) followed by 'column NAME lo=L hi=H' lines."
    in
    Arg.(
      required & opt (some file) None & info [ "schema" ] ~docv:"FILE" ~doc)
  in
  let workload_arg =
    let doc =
      "Workload file: one query per line ('mean(income) eps=0.2'), '#' \
       comments allowed."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"WORKLOAD" ~doc)
  in
  let strict_arg =
    let doc = "Exit with status 1 when the verdict is FAIL." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let run schema_path workload_path strict =
    let result =
      let ( let* ) = Result.bind in
      let* schema_text = read_file schema_path in
      let* workload_text = read_file workload_path in
      let* schema =
        Result.map_error
          (Printf.sprintf "%s: %s" schema_path)
          (Dp_engine.Analyzer.parse_schema schema_text)
      in
      let* items =
        Result.map_error
          (Printf.sprintf "%s: %s" workload_path)
          (Dp_engine.Analyzer.parse_workload workload_text)
      in
      Dp_engine.Analyzer.analyze schema items
    in
    match result with
    | Error msg -> `Error (false, msg)
    | Ok report ->
        Format.printf "%a" Dp_engine.Analyzer.pp_report report;
        if strict && not report.Dp_engine.Analyzer.pass then exit 1;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically cost a query workload against a dataset schema — \
          per-query charges and composed totals, with no data access and \
          no sampling.")
    Term.(ret (const run $ schema_arg $ workload_arg $ strict_arg))

let query_cmd =
  let exprs_arg =
    let doc =
      "Queries to answer in order, e.g. 'count', 'mean(income)', \
       'histogram(age,8)'. A query may carry options after a space: \
       'mean(income) eps=0.2 analyst=alice'."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPR" ~doc)
  in
  let rows_arg =
    let doc = "Rows of the ad-hoc synthetic dataset." in
    Arg.(value & opt int 1000 & info [ "rows" ] ~docv:"N" ~doc)
  in
  let total_arg =
    let doc = "Total privacy budget epsilon of the dataset." in
    Arg.(value & opt float 1.0 & info [ "budget" ] ~docv:"EPS" ~doc)
  in
  let delta_arg =
    let doc = "Total privacy budget delta." in
    Arg.(value & opt float 0. & info [ "delta" ] ~docv:"DELTA" ~doc)
  in
  let backend_arg =
    let doc = "Composition backend: basic | advanced | rdp." in
    Arg.(value & opt string "basic" & info [ "backend" ] ~docv:"B" ~doc)
  in
  let default_eps_arg =
    let doc = "Per-query epsilon when a query names none." in
    Arg.(value & opt float 0.1 & info [ "query-eps" ] ~docv:"EPS" ~doc)
  in
  let run seed rows budget delta backend default_eps exprs =
    let eng = Dp_engine.Engine.create ~seed () in
    let print_all lines = List.iter (Format.printf "%s@.") lines in
    let register =
      Printf.sprintf
        "register adhoc rows=%d eps=%g delta=%g backend=%s default-eps=%g"
        rows budget delta backend default_eps
    in
    let lines = Dp_engine.Protocol.exec eng register in
    print_all lines;
    match lines with
    | line :: _ when String.length line >= 3 && String.sub line 0 3 = "err" ->
        `Error (false, "registration failed")
    | _ ->
        List.iter
          (fun expr ->
            print_all (Dp_engine.Protocol.exec eng ("query adhoc " ^ expr)))
          exprs;
        print_all (Dp_engine.Protocol.exec eng "report adhoc");
        `Ok ()
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Answer one-shot DP queries against an ad-hoc synthetic dataset and \
          print the budget/leakage report.")
    Term.(
      ret
        (const run $ seed_arg $ rows_arg $ total_arg $ delta_arg $ backend_arg
       $ default_eps_arg $ exprs_arg))

let certify_cmd =
  let face_arg =
    let doc =
      "What to certify: a query ('count(age>40)', 'sum(income)', \
       'histogram(age,8)', 'quantile(income,0.5)'), $(b,train) for the \
       Gibbs-posterior train face, $(b,stream) for the tree-mechanism \
       continual-counter append face, or $(b,compare) with PRE and POST \
       sample files for the crash-recovery comparison."
    in
    Arg.(value & pos 0 string "sum(income)" & info [] ~docv:"FACE" ~doc)
  in
  let pre_arg =
    let doc =
      "Pre-restart sample file, one released value per line ('compare' \
       only; written by --samples-out)."
    in
    Arg.(value & pos 1 (some file) None & info [] ~docv:"PRE" ~doc)
  in
  let post_arg =
    let doc = "Post-restart sample file ('compare' only)." in
    Arg.(value & pos 2 (some file) None & info [] ~docv:"POST" ~doc)
  in
  let trials_arg =
    let doc = "Mechanism runs per side of the neighbour pair." in
    Arg.(value & opt int 2000 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let time_budget_arg =
    let doc =
      "Size the run by wall-clock instead of --trials: a short pilot \
       measures the per-trial cost, then the trial count is set to \
       fill $(docv) seconds (clamped to [500, 200000]). Lets a CI \
       soak slot run as many trials as it can afford."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECS" ~doc)
  in
  let alpha_arg =
    let doc =
      "Test size: a truly (eps, delta)-DP face fails with probability \
       at most $(docv)."
    in
    Arg.(value & opt float 0.05 & info [ "alpha" ] ~docv:"A" ~doc)
  in
  let rows_arg =
    let doc = "Rows of the synthetic neighbour pair." in
    Arg.(value & opt int 64 & info [ "rows" ] ~docv:"N" ~doc)
  in
  let rdp_arg =
    let doc =
      "Use the rdp backend: the count face runs the discrete Gaussian \
       and the claim becomes its RDP-converted (eps, $(docv))."
    in
    Arg.(value & opt (some float) None & info [ "rdp" ] ~docv:"DELTA" ~doc)
  in
  let break_arg =
    let doc =
      "Deliberate-breakage hook (testing only): $(b,half-scale) runs \
       the mechanism at half the claimed noise scale, which the testers \
       must flag."
    in
    Arg.(value & opt (some string) None & info [ "break" ] ~docv:"HOOK" ~doc)
  in
  let via_arg =
    let doc =
      "$(b,tcp): certify a live 'dpkit serve --tcp' process through the \
       retrying client instead of the in-process planner."
    in
    Arg.(value & opt (some string) None & info [ "via" ] ~docv:"HOW" ~doc)
  in
  let host_arg =
    let doc = "Server host (--via tcp)." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let port_arg =
    let doc = "Server port (--via tcp)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let samples_out_arg =
    let doc =
      "Also write the first side's released values to $(docv), one per \
       line — input for 'certify compare'."
    in
    Arg.(
      value & opt (some string) None & info [ "samples-out" ] ~docv:"FILE" ~doc)
  in
  let read_samples path =
    match read_file path with
    | Error msg -> Error msg
    | Ok text -> (
        match
          List.filter_map
            (fun l ->
              let l = String.trim l in
              if l = "" then None
              else
                match float_of_string_opt l with
                | Some v -> Some v
                | None -> raise Exit)
            (String.split_on_char '\n' text)
        with
        | vs -> Ok (Array.of_list vs)
        | exception Exit ->
            Error (path ^ ": expected one released value per line"))
  in
  let run seed epsilon trials time_budget alpha rows rdp break_ via host port
      samples_out face pre post =
    let fail msg = `Error (false, msg) in
    match String.lowercase_ascii face with
    | "compare" -> (
        match (pre, post) with
        | Some pre_path, Some post_path -> (
            match (read_samples pre_path, read_samples post_path) with
            | Error msg, _ | _, Error msg -> fail msg
            | Ok pre, Ok post ->
                let r =
                  Dp_certify.Certify.recovery_check ~alpha ~pre ~post ()
                in
                Format.printf "%s@." (Dp_certify.Certify.recovery_line r);
                if r.Dp_certify.Certify.recovery_ok then `Ok () else exit 1)
        | _ -> fail "certify compare needs PRE and POST sample files")
    | _ -> (
        let break_r =
          match break_ with
          | None -> Ok `None
          | Some "half-scale" -> Ok `Half_scale
          | Some other -> Error (Printf.sprintf "unknown --break %S" other)
        in
        match break_r with
        | Error msg -> fail msg
        | Ok break_ -> (
            let source_r =
              match via with
              | Some "tcp" -> (
                  match port with
                  | None -> Error "--via tcp needs --port"
                  | Some port ->
                      if break_ <> `None then
                        Error
                          "--break applies to in-process faces only (break \
                           a live server by arming --faults on it)"
                      else
                        Dp_certify.Via_tcp.source ~rows ~host ~port
                          ~query:face ~eps:epsilon ())
              | Some other -> Error (Printf.sprintf "unknown --via %S" other)
              | None ->
                  let plain =
                    match String.lowercase_ascii face with
                    | "train" ->
                        Dp_certify.Certify.gibbs_source ~rows ~break_ ~seed
                          ~eps:epsilon ()
                    | "stream" ->
                        Dp_certify.Certify.stream_source ~break_ ~eps:epsilon
                          ()
                    | _ -> (
                        match Dp_engine.Query.parse face with
                        | Error msg -> Error msg
                        | Ok q ->
                            let backend =
                              match rdp with
                              | None -> `Basic
                              | Some d -> `Rdp d
                            in
                            Dp_certify.Certify.of_query ~rows ~backend
                              ~break_ ~seed ~eps:epsilon q)
                  in
                  Result.map (fun s -> (s, fun () -> ())) plain
            in
            match source_r with
            | Error msg -> fail msg
            | Ok (source, close) -> (
                match
                  let g = Dp_rng.Prng.create seed in
                  let trials =
                    match time_budget with
                    | None -> trials
                    | Some secs ->
                        (* adaptive sizing: a pilot on its own generator
                           measures the per-trial cost, then the run is
                           scaled to fill the slot *)
                        let pilot = 200 in
                        let gp = Dp_rng.Prng.create (seed lxor 0x54494d45) in
                        let t0 = Unix.gettimeofday () in
                        ignore
                          (Dp_certify.Certify.collect ~trials:pilot source gp);
                        let per =
                          (Unix.gettimeofday () -. t0)
                          /. float_of_int pilot
                        in
                        let n =
                          if per > 0. then int_of_float (secs /. per)
                          else 200_000
                        in
                        let n = max 500 (min 200_000 n) in
                        Printf.printf
                          "certify: time budget %gs -> %d trials \
                           (%.4gms/trial)\n\
                           %!"
                          secs n (1e3 *. per);
                        n
                  in
                  let s = Dp_certify.Certify.collect ~trials source g in
                  (s, Dp_certify.Certify.analyze ~alpha source s)
                with
                | exception Dp_certify.Certify.Draw_failed msg ->
                    close ();
                    fail ("draw failed: " ^ msg)
                | exception Invalid_argument msg ->
                    close ();
                    fail msg
                | s, report -> (
                    close ();
                    let wrote =
                      match samples_out with
                      | None -> Ok ()
                      | Some path -> (
                          match open_out path with
                          | oc ->
                              Array.iter
                                (fun v -> Printf.fprintf oc "%.17g\n" v)
                                s.Dp_certify.Certify.a;
                              close_out oc;
                              Ok ()
                          | exception Sys_error msg -> Error msg)
                    in
                    match wrote with
                    | Error msg -> fail ("cannot write samples: " ^ msg)
                    | Ok () ->
                        Format.printf "%s@."
                          (Dp_certify.Certify.verdict_line report);
                        if report.Dp_certify.Certify.ok then `Ok ()
                        else exit 1))))
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Statistically certify the claimed differential privacy of a query \
          or train face — per-outcome likelihood-ratio, KS, model-fit and \
          loss-tail tests on a canonical neighbour pair — in process or \
          against a live TCP server; exits 1 on 'err certify-failed'.")
    Term.(
      ret
        (const run $ seed_arg $ epsilon_arg $ trials_arg $ time_budget_arg
       $ alpha_arg $ rows_arg $ rdp_arg $ break_arg $ via_arg $ host_arg
       $ port_arg $ samples_out_arg $ face_arg $ pre_arg $ post_arg))

let () =
  let doc = "reproduction toolkit for 'Differentially-private Learning and Information Theory' (PAIS/EDBT 2012)" in
  let info = Cmd.info "dpkit" ~version:Dp_engine.Version.current ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; experiment_cmd; audit_cmd; channel_cmd; serve_cmd;
            client_cmd; query_cmd; analyze_cmd; certify_cmd; lint_cmd;
            flow_cmd; stats_cmd; pool_cmd;
          ]))
