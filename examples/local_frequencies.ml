(* Local differential privacy: estimating a histogram when no curator
   is trusted — every user randomizes their own answer.

   Run with: dune exec examples/local_frequencies.exe *)

let () =
  let g = Dp_rng.Prng.create 9 in
  let k = 6 in
  let labels = [| "mon"; "tue"; "wed"; "thu"; "fri"; "sat+sun" |] in
  let truth = [| 0.22; 0.18; 0.17; 0.16; 0.17; 0.1 |] in
  let n = 50_000 in
  let epsilon = 1. in
  let values = Array.init n (fun _ -> Dp_rng.Sampler.categorical ~probs:truth g) in

  let grr = Dp_mechanism.Local_dp.Grr.create ~epsilon ~k in
  let reports = Array.map (fun v -> Dp_mechanism.Local_dp.Grr.respond grr v g) values in
  let est = Dp_mechanism.Local_dp.Grr.estimate_frequencies grr reports in

  Format.printf
    "local-DP day-of-week survey: n = %d users, each answer %g-LDP@.\
     (a user's true answer is reported with probability %.3f)@.@."
    n epsilon
    (Dp_mechanism.Local_dp.Grr.truth_probability grr);
  Format.printf "%-9s %-8s %-10s %s@." "day" "true" "estimated" "";
  Array.iteri
    (fun i label ->
      Format.printf "%-9s %-8.3f %-10.3f %s@." label truth.(i) est.(i)
        (String.make (int_of_float (Float.max 0. est.(i) *. 120.)) '#'))
    labels;
  let l2 =
    sqrt
      (Dp_math.Numeric.float_sum_range k (fun i ->
           Dp_math.Numeric.sq (est.(i) -. truth.(i))))
  in
  Format.printf "@.L2 estimation error: %.4f@." l2;
  Format.printf
    "(the curator never sees a single honest answer, yet the debiased@.\
    \ aggregate recovers the distribution.)@."
