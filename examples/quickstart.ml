(* Quickstart: the two basic mechanisms in a few lines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let g = Dp_rng.Prng.create 42 in

  (* --- Laplace mechanism (paper Thm 2.2): private count ------------ *)
  let database = Dp_dataset.Synthetic.bernoulli_database ~p:0.3 ~n:1000 g in
  let true_count = float_of_int (Array.fold_left ( + ) 0 database) in
  let mech = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:0.5 in
  let noisy_count = Dp_mechanism.Laplace.release mech ~value:true_count g in
  Format.printf "true count   = %g@.private count = %g   (%a)@.@." true_count
    noisy_count Dp_mechanism.Privacy.pp_budget
    (Dp_mechanism.Laplace.budget mech);

  (* --- Exponential mechanism (paper Thm 2.3): private argmax ------- *)
  let candidates = [| "red"; "green"; "blue"; "cyan" |] in
  let votes = [| 12.; 55.; 30.; 3. |] in
  let mech =
    Dp_mechanism.Exponential.create ~candidates
      ~quality:(fun c ->
        votes.(Option.get (Array.find_index (String.equal c) candidates)))
      ~sensitivity:1. ~epsilon:0.05 ()
  in
  Format.printf "private winner = %s   (%a)@."
    (Dp_mechanism.Exponential.sample mech g)
    Dp_mechanism.Privacy.pp_budget
    (Dp_mechanism.Exponential.budget mech);
  Format.printf "output distribution:@.";
  Array.iteri
    (fun i c ->
      Format.printf "  %-6s %.3f@." c
        (Dp_mechanism.Exponential.probabilities mech).(i))
    candidates;

  (* --- Budget accounting ------------------------------------------- *)
  let acc =
    Dp_mechanism.Privacy.Accountant.create ~total:(Dp_mechanism.Privacy.pure 1.)
  in
  Dp_mechanism.Privacy.Accountant.spend acc (Dp_mechanism.Privacy.pure 0.5);
  Dp_mechanism.Privacy.Accountant.spend acc
    (Dp_mechanism.Exponential.budget mech);
  Format.printf "@.budget spent: %a, remaining: %a@."
    Dp_mechanism.Privacy.pp_budget
    (Dp_mechanism.Privacy.Accountant.spent acc)
    Dp_mechanism.Privacy.pp_budget
    (Dp_mechanism.Privacy.Accountant.remaining acc)
