(* Gibbs posterior vs deterministic ERM on a finite predictor grid:
   the PAC-Bayes view (Section 3 of the paper) in action.

   A grid of threshold classifiers, a training sample, and the Gibbs
   posterior at several temperatures: prints the posterior (ASCII),
   the PAC-Bayes objective (which the Gibbs posterior provably
   minimizes — Lemma 3.2), the Catoni bound (Thm 3.1), and the
   privacy level of releasing a draw (Thm 4.1).

   Run with: dune exec examples/gibbs_vs_erm.exe *)

let grid = Array.init 17 (fun i -> -2. +. (0.25 *. float_of_int i))

let zero_one theta (x, y) =
  if (if x >= theta then 1. else -1.) = y then 0. else 1.

let () =
  let g = Dp_rng.Prng.create 5 in
  let n = 80 in
  let sample =
    Array.init n (fun _ ->
        let y = if Dp_rng.Prng.bool g then 1. else -1. in
        (Dp_rng.Sampler.gaussian ~mean:(y *. 0.9) ~std:1. g, y))
  in
  let risks = Dp_pac_bayes.Risk.empirical_all ~loss:zero_one sample grid in
  let erm = Dp_linalg.Vec.argmin risks in
  Format.printf "ERM threshold: %.2f with empirical risk %.3f (not private)@."
    grid.(erm) risks.(erm);
  List.iter
    (fun beta ->
      let t = Dp_pac_bayes.Gibbs.of_risks ~predictors:grid ~beta ~risks () in
      let p = Dp_pac_bayes.Gibbs.probabilities t in
      Format.printf "@.beta = %g  (release is %.3f-DP by Thm 4.1)@." beta
        (Dp_pac_bayes.Gibbs.privacy_epsilon t
           ~risk_sensitivity:(1. /. float_of_int n));
      Array.iteri
        (fun i th ->
          Format.printf "  %+5.2f %-40s %.3f@." th
            (String.make (int_of_float (p.(i) *. 120.)) '#')
            p.(i))
        grid;
      Format.printf
        "  E[emp risk] = %.3f, KL to prior = %.3f, objective = %.4f@."
        (Dp_pac_bayes.Gibbs.expected_empirical_risk t)
        (Dp_pac_bayes.Gibbs.kl_from_prior t)
        (Dp_pac_bayes.Gibbs.pac_bayes_objective t);
      Format.printf "  Catoni bound on the true risk (delta=0.05): %.3f@."
        (Dp_pac_bayes.Bounds.catoni ~beta ~n ~delta:0.05
           ~emp_risk:(Dp_pac_bayes.Gibbs.expected_empirical_risk t)
           ~kl:(Dp_pac_bayes.Gibbs.kl_from_prior t));
      (* one private release *)
      Format.printf "  one private draw: threshold %.2f@."
        (Dp_pac_bayes.Gibbs.sample t g))
    [ 2.; 10.; 50. ]
