(* The paper's Figure 1, concretely: differentially-private learning as
   an information channel from samples to predictors.

   Builds the exact channel for a tiny learning problem, prints the
   transition matrix, the mutual information, the exact privacy level,
   and the risk-information tradeoff as the inverse temperature (and
   with it the privacy level) varies.

   Run with: dune exec examples/info_channel.exe *)

let () =
  let loss predict z = if predict = z then 0. else 1. in
  let beta = 4. in
  let gc =
    Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.7; 0.3 |] ~n:4
      ~predictors:[| 0; 1 |] ~beta ~loss ()
  in
  Format.printf "the channel P(theta | Z) for n=4 records over {0,1}:@.@.";
  Format.printf "%a@." Dp_info.Channel.pp gc.Dp_pac_bayes.Gibbs_channel.channel;

  Format.printf "I(Z; theta)      = %.4f nats@."
    (Dp_pac_bayes.Gibbs_channel.mutual_information gc);
  Format.printf "E[empirical risk] = %.4f@."
    (Dp_pac_bayes.Gibbs_channel.expected_empirical_risk gc);
  Format.printf "exact epsilon     = %.4f (bound 2*beta*dR = %.4f)@.@."
    (Dp_pac_bayes.Gibbs_channel.dp_epsilon gc)
    (Dp_pac_bayes.Gibbs_channel.theoretical_epsilon gc ~loss_lo:0. ~loss_hi:1.);

  Format.printf "privacy <-> information tradeoff (Thm 4.2):@.";
  Format.printf "%-8s %-12s %-12s %-10s@." "beta" "eps(exact)" "I(Z;theta)"
    "E[risk]";
  List.iter
    (fun beta ->
      let gc =
        Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.7; 0.3 |] ~n:4
          ~predictors:[| 0; 1 |] ~beta ~loss ()
      in
      Format.printf "%-8g %-12.4f %-12.4f %-10.4f@." beta
        (Dp_pac_bayes.Gibbs_channel.dp_epsilon gc)
        (Dp_pac_bayes.Gibbs_channel.mutual_information gc)
        (Dp_pac_bayes.Gibbs_channel.expected_empirical_risk gc))
    [ 0.25; 0.5; 1.; 2.; 4.; 8.; 16. ];
  Format.printf
    "@.(as beta falls, the channel carries less information about the@.\
    \ sample — more privacy — at the price of higher expected risk.)@."
