(* Continual counting under one privacy budget: the binary mechanism
   releasing a running count at every step of a stream, against the
   naive budget-split re-release.

   Run with: dune exec examples/streaming_counts.exe *)

let () =
  let g = Dp_rng.Prng.create 3 in
  let horizon = 2048 in
  let epsilon = 1. in
  let bm = Dp_mechanism.Binary_mechanism.create ~epsilon ~horizon g in
  let naive_scale = float_of_int horizon /. epsilon in
  Format.printf
    "streaming count, T = %d steps, total budget %g-DP for the whole stream@.@."
    horizon epsilon;
  Format.printf "%-8s %-10s %-16s %-16s@." "t" "true" "binary mech."
    "naive split";
  let truth = ref 0 in
  for t = 1 to horizon do
    let bit = if Dp_rng.Sampler.bernoulli ~p:0.4 g then 1 else 0 in
    Dp_mechanism.Binary_mechanism.observe bm bit;
    truth := !truth + bit;
    if t land (t - 1) = 0 (* powers of two *) then begin
      let naive =
        float_of_int !truth
        +. Dp_rng.Sampler.laplace ~mean:0. ~scale:naive_scale g
      in
      Format.printf "%-8d %-10d %-16.1f %-16.1f@." t !truth
        (Dp_mechanism.Binary_mechanism.current_count bm)
        naive
    end
  done;
  Format.printf
    "@.(binary-mechanism error stays ~O(log^1.5 T / eps) = %.0f; the naive@.\
    \ split's noise scale is T/eps = %.0f — useless at this horizon.)@."
    (Dp_mechanism.Binary_mechanism.expected_noise_std ~epsilon ~horizon)
    naive_scale
