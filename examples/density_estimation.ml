(* Differentially-private density estimation (the application the
   paper's §5 says this framework is being extended to).

   Fits private and non-private histogram densities to a bimodal
   mixture and prints an ASCII rendering plus L1 errors.

   Run with: dune exec examples/density_estimation.exe *)

let () =
  let g = Dp_rng.Prng.create 11 in
  let weights = [| 0.45; 0.55 |] in
  let means = [| -1.6; 1.2 |] in
  let stds = [| 0.5; 0.8 |] in
  let xs =
    Dp_dataset.Synthetic.gaussian_mixture_1d ~weights ~means ~stds ~n:5000 g
  in
  let truth = Dp_dataset.Synthetic.mixture_density ~weights ~means ~stds in
  let epsilon = 0.5 in
  let np = Dp_learn.Density.fit_non_private ~lo:(-4.) ~hi:4. ~bins:32 xs in
  let priv =
    Dp_learn.Density.fit_private ~epsilon ~lo:(-4.) ~hi:4. ~bins:32 xs g
  in
  Format.printf
    "private histogram density, n = 5000, eps = %g (sensitivity 2)@.@." epsilon;
  let max_d =
    let m = ref 0. in
    for i = 0 to 31 do
      let x = -4. +. ((float_of_int i +. 0.5) /. 4.) in
      m := Float.max !m (Dp_learn.Density.density_at priv x)
    done;
    Float.max !m 0.4
  in
  for i = 0 to 31 do
    let x = -4. +. ((float_of_int i +. 0.5) /. 4.) in
    let bar f = String.make (int_of_float (f /. max_d *. 46.)) '#' in
    Format.printf "%+5.2f | %-48s (true %.3f, private %.3f)@." x
      (bar (Dp_learn.Density.density_at priv x))
      (truth x)
      (Dp_learn.Density.density_at priv x)
  done;
  Format.printf "@.L1 error: non-private %.4f, private %.4f@."
    (Dp_learn.Density.l1_error np ~true_density:truth)
    (Dp_learn.Density.l1_error priv ~true_density:truth);
  Format.printf "held-out log likelihood: non-private %.4f, private %.4f@."
    (Dp_learn.Density.log_likelihood np (Array.sub xs 0 1000))
    (Dp_learn.Density.log_likelihood priv (Array.sub xs 0 1000))
