(* Private logistic regression — the paper's §1 motivating scenario.

   Trains on synthetic data with a known ground-truth direction and
   compares the non-private ERM against the three private learners at
   a few privacy levels.

   Run with: dune exec examples/private_logreg.exe *)

let () =
  let g = Dp_rng.Prng.create 7 in
  let theta_star = [| 2.; -2.; 1.5; 0.; 0. |] in
  let make n =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.logistic_model ~theta:theta_star ~n g)
  in
  let train = make 2000 and test = make 4000 in
  let lambda = 0.01 in

  let np = Dp_learn.Erm.train ~lambda ~loss:Dp_learn.Loss_fn.logistic train in
  Format.printf "non-private ERM:   test accuracy %.3f@."
    (Dp_learn.Erm.accuracy np.Dp_learn.Erm.theta test);

  List.iter
    (fun epsilon ->
      Format.printf "@.epsilon = %g@." epsilon;
      let show name theta =
        Format.printf "  %-24s accuracy %.3f@." name
          (Dp_learn.Erm.accuracy theta test)
      in
      let out =
        Dp_learn.Private_erm.output_perturbation ~epsilon ~lambda
          ~loss:Dp_learn.Loss_fn.logistic train g
      in
      show out.Dp_learn.Private_erm.mechanism out.Dp_learn.Private_erm.theta;
      let obj =
        Dp_learn.Private_erm.objective_perturbation ~epsilon ~lambda
          ~loss:Dp_learn.Loss_fn.logistic train g
      in
      show obj.Dp_learn.Private_erm.mechanism obj.Dp_learn.Private_erm.theta;
      let gibbs =
        Dp_learn.Private_erm.gibbs ~epsilon ~radius:3.
          ~loss:Dp_learn.Loss_fn.logistic train g
      in
      show gibbs.Dp_learn.Private_erm.mechanism gibbs.Dp_learn.Private_erm.theta)
    [ 0.1; 1.; 10. ];

  (* The Gibbs learner is the exponential mechanism of the paper: its
     inverse temperature is chosen so 2*beta*dR = eps (Thm 4.1). *)
  let beta =
    Dp_learn.Private_erm.gibbs_beta ~epsilon:1.
      ~n:(Dp_dataset.Dataset.size train)
      ~loss_range:(Dp_learn.Loss_fn.range_width Dp_learn.Loss_fn.logistic)
  in
  Format.printf
    "@.(at eps = 1 the Gibbs posterior uses beta = %.1f: privacy = 2*beta*dR)@."
    beta
