(* Benchmark harness.

   Two parts, both run by default:
   1. The experiment tables (E1..E12, A2..A4) — the rows DESIGN.md maps
      to the paper's claims; `--quick` shrinks trial counts.
   2. Bechamel micro-benchmarks of the performance-critical kernels,
      including ablation A1 (alias-table vs Gumbel-max vs linear-scan
      sampling for the exponential mechanism).

   3. Serving-engine throughput: queries/sec through the full
      plan → ledger → mechanism → cache path, cached vs uncached.

   4. Serving-phase latency breakdown: plan/noise/journal/total
      histograms from the engine's own observability layer, printed and
      written into the --json file as a "phases" section.

   Usage: main.exe [--quick] [--tables-only | --bench-only]
                   [--json FILE] [--overhead] [--net] [--train] [--stream]

   --json FILE writes the micro-benchmark estimates plus the phase
   breakdown as JSON (schema in bench/README.md), so successive PRs can
   record a perf trajectory.

   --overhead runs only the instrumentation overhead gate: engine
   submit throughput with observability enabled must stay within 5% of
   the same engine with it disabled; exits 1 otherwise (CI leg).

   --train runs only the served-learning bench: MCMC step throughput,
   convergence-gate overhead and prediction throughput through the full
   charge → journal → chains → gate → handle path, emitted as "phases"
   rows into --json.

   --stream runs only the continual-observation bench: append
   throughput through the full journaled tree-counter path
   (prepare → journal frame → commit) and prefix/window release
   throughput, emitted as "phases" rows into --json. *)

open Bechamel
open Toolkit

let sampler_tests () =
  (* A1: exponential-mechanism sampling strategies across range sizes. *)
  let make_case k =
    let g = Dp_rng.Prng.create 1 in
    let qualities = Array.init k (fun i -> Float.abs (sin (float_of_int i))) in
    let m =
      Dp_mechanism.Exponential.create ~candidates:(Array.init k Fun.id)
        ~quality:(fun i -> qualities.(i))
        ~sensitivity:1. ~epsilon:2. ()
    in
    let alias_draw = Dp_mechanism.Exponential.sampler m g in
    let probs = Dp_mechanism.Exponential.probabilities m in
    let lw = Dp_mechanism.Exponential.log_probabilities m in
    [
      Test.make
        ~name:(Printf.sprintf "A1 alias k=%d" k)
        (Staged.stage (fun () -> ignore (alias_draw ())));
      Test.make
        ~name:(Printf.sprintf "A1 gumbel k=%d" k)
        (Staged.stage (fun () ->
             ignore (Dp_rng.Sampler.categorical_log ~log_weights:lw g)));
      Test.make
        ~name:(Printf.sprintf "A1 linear-scan k=%d" k)
        (Staged.stage (fun () -> ignore (Dp_rng.Sampler.categorical ~probs g)));
    ]
  in
  List.concat_map make_case [ 16; 256; 4096 ]

let kernel_tests () =
  let g = Dp_rng.Prng.create 2 in
  let lap = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:1. in
  let risks = Array.init 256 (fun i -> Float.abs (cos (float_of_int i))) in
  let sample =
    Array.init 200 (fun _ ->
        let y = if Dp_rng.Prng.bool g then 1. else -1. in
        (Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g, y))
  in
  let zero_one theta (x, y) =
    if (if x >= theta then 1. else -1.) = y then 0. else 1.
  in
  let grid = Array.init 64 (fun i -> -3.2 +. (0.1 *. float_of_int i)) in
  let gc =
    Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.5; 0.5 |] ~n:6
      ~predictors:[| 0; 1 |] ~beta:4.
      ~loss:(fun j z -> if j = z then 0. else 1.)
      ()
  in
  let logistic_data =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.logistic_model
         ~theta:[| 1.; -1.; 1.; -1.; 1. |]
         ~n:100 g)
  in
  let clipped_risk theta =
    Dp_math.Numeric.float_sum_range 100 (fun i ->
        let x, y = Dp_dataset.Dataset.row logistic_data i in
        Dp_learn.Loss_fn.clip Dp_learn.Loss_fn.logistic ~theta ~x ~y)
    /. 100.
  in
  [
    Test.make ~name:"laplace release"
      (Staged.stage (fun () ->
           ignore (Dp_mechanism.Laplace.release lap ~value:3. g)));
    Test.make ~name:"gibbs fit (k=256)"
      (Staged.stage (fun () ->
           ignore
             (Dp_pac_bayes.Gibbs.of_risks
                ~predictors:(Array.init 256 Fun.id)
                ~beta:10. ~risks ())));
    Test.make ~name:"empirical risks (n=200, k=64)"
      (Staged.stage (fun () ->
           ignore (Dp_pac_bayes.Risk.empirical_all ~loss:zero_one sample grid)));
    Test.make ~name:"catoni bound"
      (Staged.stage (fun () ->
           ignore
             (Dp_pac_bayes.Bounds.catoni ~beta:20. ~n:200 ~delta:0.05
                ~emp_risk:0.2 ~kl:1.5)));
    Test.make ~name:"seeger bound (kl inverse)"
      (Staged.stage (fun () ->
           ignore
             (Dp_pac_bayes.Bounds.seeger ~n:200 ~delta:0.05 ~emp_risk:0.2
                ~kl:1.5)));
    Test.make ~name:"channel mutual information (64x2)"
      (Staged.stage (fun () ->
           ignore (Dp_pac_bayes.Gibbs_channel.mutual_information gc)));
    Test.make ~name:"clipped logistic risk (n=100, d=5)"
      (Staged.stage (fun () ->
           ignore (clipped_risk [| 0.1; 0.2; -0.1; 0.3; 0. |])));
  ]

(* E16 companion: the cost of one private regression draw, exact
   conjugate sampling vs a fresh MCMC chain. *)
let regression_draw_tests () =
  let g = Dp_rng.Prng.create 3 in
  let data =
    Dp_dataset.Dataset.map_labels
      (Dp_math.Numeric.clamp ~lo:(-1.) ~hi:1.)
      (Dp_dataset.Synthetic.linear_regression ~theta:[| 0.5; -0.3 |]
         ~noise_std:0.1 ~n:200 g)
  in
  let conj = Dp_pac_bayes.Gaussian_gibbs.fit ~beta:50. ~radius:2. data in
  [
    Test.make ~name:"conjugate gibbs draw (n=200, d=2)"
      (Staged.stage (fun () ->
           ignore (Dp_pac_bayes.Gaussian_gibbs.sample conj g)));
    Test.make ~name:"mcmc gibbs draw (n=200, d=2, 500 burn-in)"
      (Staged.stage (fun () ->
           ignore
             (Dp_learn.Ridge.fit_gibbs
                ~mcmc_config:
                  { Dp_pac_bayes.Mcmc.step_std = 0.2; burn_in = 500; thin = 1 }
                ~epsilon:1. ~radius:2. data g)));
  ]

(* Serving-engine throughput. A huge budget and a tiny per-query
   epsilon keep the ledger from exhausting mid-benchmark; the audit log
   is off so memory stays flat over millions of requests. *)
let engine_tests () =
  let make ~cache =
    let eng = Dp_engine.Engine.create ~seed:11 ~audit:false () in
    let policy =
      {
        (Dp_engine.Registry.default_policy
           ~total:(Dp_mechanism.Privacy.pure 1e12))
        with
        Dp_engine.Registry.cache;
        default_epsilon = 1e-4;
      }
    in
    (match
       Dp_engine.Engine.register_synthetic eng ~name:"bench" ~rows:4096 ~policy
     with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    eng
  in
  let uncached = make ~cache:false and cached = make ~cache:true in
  let submit eng expr =
    match Dp_engine.Engine.submit_text eng ~dataset:"bench" expr with
    | Ok r -> ignore r.Dp_engine.Engine.answer
    | Error e -> failwith (Format.asprintf "%a" Dp_engine.Engine.pp_error e)
  in
  (* prime the cache so the cached case measures pure hits *)
  submit cached "count(income>50000)";
  submit cached "histogram(age,64)";
  [
    Test.make ~name:"engine count (uncached)"
      (Staged.stage (fun () -> submit uncached "count(income>50000)"));
    Test.make ~name:"engine count (cached)"
      (Staged.stage (fun () -> submit cached "count(income>50000)"));
    Test.make ~name:"engine mean (uncached)"
      (Staged.stage (fun () -> submit uncached "mean(income)"));
    Test.make ~name:"engine histogram k=64 (uncached)"
      (Staged.stage (fun () -> submit uncached "histogram(age,64)"));
    Test.make ~name:"engine histogram k=64 (cached)"
      (Staged.stage (fun () -> submit cached "histogram(age,64)"));
  ]

(* Durability overhead: the same serving path with the write-ahead
   journal attached (every fresh release pays an fsync), plus the cost
   of recovering an engine from a journal of a few hundred charges. *)
let durability_tests () =
  let journaled =
    let eng = Dp_engine.Engine.create ~seed:11 ~audit:false () in
    let path = Filename.temp_file "dpkit_bench" ".wal" in
    at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
    (match Dp_engine.Engine.open_journal eng path with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    let policy =
      {
        (Dp_engine.Registry.default_policy
           ~total:(Dp_mechanism.Privacy.pure 1e12))
        with
        Dp_engine.Registry.default_epsilon = 1e-4;
        cache = false;
      }
    in
    (match
       Dp_engine.Engine.register_synthetic eng ~name:"bench" ~rows:4096 ~policy
     with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    eng
  in
  let submit eng expr =
    match Dp_engine.Engine.submit_text eng ~dataset:"bench" expr with
    | Ok r -> ignore r.Dp_engine.Engine.answer
    | Error e -> failwith (Format.asprintf "%a" Dp_engine.Engine.pp_error e)
  in
  let recovery_path =
    let path = Filename.temp_file "dpkit_bench_rec" ".wal" in
    at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
    let eng = Dp_engine.Engine.create ~seed:12 ~audit:false () in
    (match Dp_engine.Engine.open_journal eng path with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    let policy =
      {
        (Dp_engine.Registry.default_policy
           ~total:(Dp_mechanism.Privacy.pure 1e12))
        with
        Dp_engine.Registry.default_epsilon = 1e-4;
      }
    in
    (match
       Dp_engine.Engine.register_synthetic eng ~name:"bench" ~rows:512 ~policy
     with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    for i = 0 to 499 do
      submit eng (Printf.sprintf "count(age>%d)" (18 + (i mod 60)))
    done;
    Dp_engine.Engine.close eng;
    path
  in
  [
    Test.make ~name:"engine count (journaled, fsync/query)"
      (Staged.stage (fun () -> submit journaled "count(income>50000)"));
    Test.make ~name:"engine recovery (500-charge journal)"
      (Staged.stage (fun () ->
           let eng = Dp_engine.Engine.create ~seed:12 ~audit:false () in
           (match Dp_engine.Engine.open_journal eng recovery_path with
           | Ok r -> ignore r.Dp_engine.Engine.charges
           | Error msg -> failwith msg);
           Dp_engine.Engine.close eng));
  ]

(* Per-phase latency breakdown, measured by the engine's own
   observability layer: run a journaled, uncached workload and read the
   plan/noise/journal-append/submit histograms back out of the metric
   registry. One row per phase: count, mean, p50/p90/p99 (log2-bucket
   quantile estimates, so within 2x). *)
let phase_rows () =
  let eng = Dp_engine.Engine.create ~seed:13 ~audit:false () in
  let path = Filename.temp_file "dpkit_bench_phases" ".wal" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  (match Dp_engine.Engine.open_journal eng path with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  let policy =
    {
      (Dp_engine.Registry.default_policy
         ~total:(Dp_mechanism.Privacy.pure 1e12))
      with
      Dp_engine.Registry.default_epsilon = 1e-4;
      cache = false;
    }
  in
  (match
     Dp_engine.Engine.register_synthetic eng ~name:"bench" ~rows:4096 ~policy
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  for i = 0 to 499 do
    match
      Dp_engine.Engine.submit_text eng ~dataset:"bench"
        (Printf.sprintf "count(age>%d)" (18 + (i mod 60)))
    with
    | Ok _ -> ()
    | Error e -> failwith (Format.asprintf "%a" Dp_engine.Engine.pp_error e)
  done;
  let scope = Dp_obs.Metrics.dataset (Dp_engine.Engine.metrics eng) "bench" in
  let global = Dp_obs.Metrics.global (Dp_engine.Engine.metrics eng) in
  let row name sc latency =
    let h = Dp_obs.Metrics.latency sc latency in
    ( name,
      Dp_obs.Histo.count h,
      Dp_obs.Histo.mean h,
      Dp_obs.Histo.quantile h 0.5,
      Dp_obs.Histo.quantile h 0.9,
      Dp_obs.Histo.quantile h 0.99 )
  in
  let rows =
    [
      row "plan" scope Dp_obs.Name.Plan_ns;
      row "noise" scope Dp_obs.Name.Noise_ns;
      row "journal" global Dp_obs.Name.Journal_append_ns;
      row "total" scope Dp_obs.Name.Submit_ns;
    ]
  in
  Dp_engine.Engine.close eng;
  rows

let print_phases phases =
  Format.printf "@.== serving-phase latency (500 journaled count queries) ==@.";
  List.iter
    (fun (name, count, mean, p50, p90, p99) ->
      Format.printf "%-10s count=%d mean=%.0fns p50=%.0fns p90=%.0fns p99=%.0fns@."
        name count mean p50 p90 p99)
    phases

let write_json file rows phases =
  let oc = open_out file in
  output_string oc "{\"benchmarks\":[";
  List.iteri
    (fun i (name, t) ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc "\n  {\"name\": %S, \"ns_per_run\": %.3f}" name t)
    rows;
  output_string oc "\n],\n\"phases\":[";
  List.iteri
    (fun i (name, count, mean, p50, p90, p99) ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n  {\"name\": %S, \"count\": %d, \"mean_ns\": %.3f, \"p50_ns\": %.1f, \
         \"p90_ns\": %.1f, \"p99_ns\": %.1f}"
        name count mean p50 p90 p99)
    phases;
  output_string oc "\n]}\n";
  close_out oc;
  Format.printf "wrote %d benchmark estimates and %d phase rows to %s@."
    (List.length rows) (List.length phases) file

let run_benchmarks json =
  let tests =
    Test.make_grouped ~name:"dp"
      (sampler_tests () @ kernel_tests () @ regression_draw_tests ()
      @ engine_tests () @ durability_tests ())
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some [ t ] -> (name, t) :: acc
        | _ -> acc)
      results []
  in
  let rows = List.sort compare rows in
  Format.printf "@.== micro-benchmarks (ns/run, OLS on monotonic clock) ==@.";
  List.iter (fun (name, t) -> Format.printf "%-45s %12.1f@." name t) rows;
  let phases = phase_rows () in
  print_phases phases;
  Option.iter (fun file -> write_json file rows phases) json

(* Instrumentation overhead gate (CI). The instrumented path adds a
   handful of clock reads and two small span allocations per submit;
   against an O(rows) plan scan that must stay inside 5%. Large rows
   and min-of-batches medians keep the measurement out of scheduler
   noise; the whole comparison retries so one noisy trial cannot fail
   the gate. *)
let overhead_gate () =
  let batch = 400 and batches = 7 in
  let run_one obs =
    let eng = Dp_engine.Engine.create ~seed:11 ~audit:false ~obs () in
    let policy =
      {
        (Dp_engine.Registry.default_policy
           ~total:(Dp_mechanism.Privacy.pure 1e12))
        with
        Dp_engine.Registry.default_epsilon = 1e-4;
        cache = false;
      }
    in
    (match
       Dp_engine.Engine.register_synthetic eng ~name:"bench" ~rows:16384 ~policy
     with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    let submit () =
      match Dp_engine.Engine.submit_text eng ~dataset:"bench" "count(age>40)" with
      | Ok _ -> ()
      | Error e -> failwith (Format.asprintf "%a" Dp_engine.Engine.pp_error e)
    in
    for _ = 1 to batch do submit () done;
    (* warm-up *)
    let best = ref infinity in
    for _ = 1 to batches do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batch do submit () done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best /. float_of_int batch
  in
  let trial () =
    let bare = run_one false in
    let inst = run_one true in
    inst /. bare
  in
  let ratio = List.fold_left min (trial ()) [ trial (); trial () ] in
  Format.printf
    "instrumentation overhead gate: best ratio %.4f (instrumented / bare, \
     limit 1.05)@."
    ratio;
  if ratio > 1.05 then begin
    Format.printf "FAIL: instrumentation overhead exceeds 5%%@.";
    exit 1
  end
  else Format.printf "PASS@."

(* TCP round-trip throughput: the full client-socket -> select loop ->
   Protocol.exec -> reply-frame path, cached vs uncached, against the
   in-process engine numbers above. One persistent connection, requests
   in lockstep, so this measures per-request frontend overhead rather
   than concurrency. *)
let net_bench () =
  let eng = Dp_engine.Engine.create ~seed:11 ~audit:false () in
  let policy =
    {
      (Dp_engine.Registry.default_policy
         ~total:(Dp_mechanism.Privacy.pure 1e12))
      with
      Dp_engine.Registry.default_epsilon = 1e-4;
    }
  in
  (match
     Dp_engine.Engine.register_synthetic eng ~name:"bench" ~rows:4096 ~policy
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  let srv =
    match Dp_net.Server.create eng with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let server_thread = Thread.create (fun () -> Dp_net.Server.run srv) () in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Dp_net.Server.port srv));
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  let roundtrip line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    let rec drain () = if input_line ic <> "" then drain () in
    drain ()
  in
  let rate n f =
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      f i
    done;
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  roundtrip "query bench count(age>40)";
  (* warm-up; primes the cached case *)
  let hit = rate 2000 (fun _ -> roundtrip "query bench count(age>40)") in
  let miss =
    rate 2000 (fun i ->
        roundtrip (Printf.sprintf "query bench count(income>%d)" i))
  in
  Format.printf "@.== TCP round-trip throughput (1 conn, lockstep) ==@.";
  Format.printf "net query (cache=hit)  %10.0f req/s@." hit;
  Format.printf "net query (cache=miss) %10.0f req/s@." miss;
  Dp_net.Server.request_stop srv;
  Thread.join server_thread;
  Unix.close fd;
  Dp_engine.Engine.close eng

(* Served-learning bench (--train): the full train pipeline — charge,
   journal, chains, gate, handle — timed by phase from the engine's own
   histograms, plus end-to-end MCMC step and prediction throughput.
   Emits the same "phases" JSON rows as the serving bench so CI can
   trend both from one schema. *)
let train_bench json =
  let eng = Dp_engine.Engine.create ~seed:17 ~audit:false () in
  let path = Filename.temp_file "dpkit_bench_train" ".wal" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  (match Dp_engine.Engine.open_journal eng path with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  let policy =
    Dp_engine.Registry.default_policy ~total:(Dp_mechanism.Privacy.pure 1e12)
  in
  (match
     Dp_engine.Engine.register_synthetic eng ~name:"bench" ~rows:512 ~policy
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  let params opts =
    match Dp_train.Train.params_of_opts ~default_epsilon:0.1 opts with
    | Ok p -> p
    | Error e -> failwith e
  in
  let steps = 1000 and trains = 3 in
  let gibbs =
    params
      [
        ("eps", Some "0.2"); ("steps", Some (string_of_int steps));
        ("burn", Some (string_of_int steps));
      ]
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun _ ->
      match Dp_engine.Engine.train eng ~dataset:"bench" gibbs with
      | Ok _ | Error (Dp_engine.Engine.Unconverged _) -> ()
      | Error e -> failwith (Format.asprintf "%a" Dp_engine.Engine.pp_error e))
    (List.init trains Fun.id);
  let train_dt = Unix.gettimeofday () -. t0 in
  let iters = trains * gibbs.Dp_train.Train.chains * 2 * steps in
  (* objective perturbation always releases, so its handle anchors the
     prediction loop *)
  (match
     Dp_engine.Engine.train eng ~dataset:"bench"
       (params [ ("backend", Some "objpert") ])
   with
  | Ok _ -> ()
  | Error e -> failwith (Format.asprintf "%a" Dp_engine.Engine.pp_error e));
  let handle = Printf.sprintf "bench/m%d" (trains + 1) in
  let npred = 50_000 in
  let point = [| 40.; 50_000. |] in
  let p0 = Unix.gettimeofday () in
  for _ = 1 to npred do
    match Dp_engine.Engine.predict eng handle point with
    | Ok _ -> ()
    | Error e -> failwith (Format.asprintf "%a" Dp_engine.Engine.pp_error e)
  done;
  let pred_dt = Unix.gettimeofday () -. p0 in
  let scope = Dp_obs.Metrics.dataset (Dp_engine.Engine.metrics eng) "bench" in
  let row name latency =
    let h = Dp_obs.Metrics.latency scope latency in
    ( name,
      Dp_obs.Histo.count h,
      Dp_obs.Histo.mean h,
      Dp_obs.Histo.quantile h 0.5,
      Dp_obs.Histo.quantile h 0.9,
      Dp_obs.Histo.quantile h 0.99 )
  in
  let phases =
    [
      row "train" Dp_obs.Name.Train_ns;
      row "gate" Dp_obs.Name.Gate_ns;
      row "predict" Dp_obs.Name.Predict_ns;
    ]
  in
  Format.printf "== served learning (%d gibbs trains, %d rows) ==@." trains 512;
  Format.printf "mcmc steps     %10.0f steps/s@."
    (float_of_int iters /. train_dt);
  Format.printf "predict        %10.0f req/s@." (float_of_int npred /. pred_dt);
  List.iter
    (fun (name, count, mean, p50, p90, p99) ->
      Format.printf
        "%-10s count=%d mean=%.0fns p50=%.0fns p90=%.0fns p99=%.0fns@." name
        count mean p50 p90 p99)
    phases;
  Option.iter (fun file -> write_json file [] phases) json;
  Dp_engine.Engine.close eng

(* Continual-observation bench (--stream): append throughput through
   the full journaled tree-counter path — noise draw on closing nodes,
   Stream_append frame fsync'd, then commit — plus prefix and
   sliding-window release throughput (pure post-processing, no
   journal), with the engine's own append/read latency histograms
   emitted as "phases" JSON rows. *)
let stream_bench json =
  let eng = Dp_engine.Engine.create ~seed:19 ~audit:false () in
  let path = Filename.temp_file "dpkit_bench_stream" ".wal" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  (match Dp_engine.Engine.open_journal eng path with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  let policy =
    Dp_engine.Registry.default_policy ~total:(Dp_mechanism.Privacy.pure 1e12)
  in
  (match
     Dp_engine.Engine.register_synthetic eng ~name:"bench" ~rows:512 ~policy
   with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  let die e = failwith (Format.asprintf "%a" Dp_engine.Engine.pp_error e) in
  let handle =
    match
      Dp_engine.Engine.stream_open eng ~dataset:"bench"
        { Dp_stream.Stream.epsilon = 0.1; horizon = 32_768; window = 256 }
    with
    | Ok o -> o.Dp_engine.Engine.stream.Dp_stream.Stream_store.handle
    | Error e -> die e
  in
  let rate n f =
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      f i
    done;
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  let nappend = 20_000 and nread = 50_000 in
  let appends =
    rate nappend (fun i ->
        match Dp_engine.Engine.append eng handle (i land 1) with
        | Ok _ -> ()
        | Error e -> die e)
  in
  let reads =
    rate nread (fun _ ->
        match Dp_engine.Engine.stream_read eng handle with
        | Ok _ -> ()
        | Error e -> die e)
  in
  let windows =
    rate nread (fun _ ->
        match Dp_engine.Engine.stream_window eng handle () with
        | Ok _ -> ()
        | Error e -> die e)
  in
  let scope = Dp_obs.Metrics.dataset (Dp_engine.Engine.metrics eng) "bench" in
  let row name latency =
    let h = Dp_obs.Metrics.latency scope latency in
    ( name,
      Dp_obs.Histo.count h,
      Dp_obs.Histo.mean h,
      Dp_obs.Histo.quantile h 0.5,
      Dp_obs.Histo.quantile h 0.9,
      Dp_obs.Histo.quantile h 0.99 )
  in
  let phases =
    [ row "append" Dp_obs.Name.Append_ns; row "stream-read" Dp_obs.Name.Stream_read_ns ]
  in
  Format.printf "== continual observation (journaled, %d appends) ==@." nappend;
  Format.printf "append         %10.0f appends/s@." appends;
  Format.printf "prefix read    %10.0f reads/s@." reads;
  Format.printf "window read    %10.0f reads/s@." windows;
  List.iter
    (fun (name, count, mean, p50, p90, p99) ->
      Format.printf
        "%-10s count=%d mean=%.0fns p50=%.0fns p90=%.0fns p99=%.0fns@." name
        count mean p50 p90 p99)
    phases;
  Option.iter (fun file -> write_json file [] phases) json;
  Dp_engine.Engine.close eng

(* Worker-pool throughput (--pool): req/s through the coordinator →
   fd-pass → worker → lease-gate → reply path at N=1, 2 and 4 workers,
   over 4 concurrent lockstep connections so N>1 can actually overlap
   noise draws and journal fsyncs. N=1 is the single-process fast path
   `dpkit serve` dispatches to, so the N=1 row is the pool's baseline,
   not a pool with one worker. Each serving process is forked (its own
   journal in a temp dir) and TERM-drained after the measurement. *)
let pool_bench json =
  let nconc = 4 and nreq = 2000 in
  let bench_n workers =
    let dir = Filename.temp_file "dpkit_bench_pool" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let cleanup () =
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    in
    at_exit cleanup;
    let journal = Filename.concat dir "bench.wal" in
    let spawn port =
      let rd, wr = Unix.pipe () in
      let pid = Unix.fork () in
      if pid = 0 then begin
        Unix.close rd;
        Unix.dup2 wr Unix.stdout;
        Unix.close wr;
        if workers = 1 then begin
          let eng = Dp_engine.Engine.create ~seed:29 ~audit:false () in
          (match Dp_engine.Engine.open_journal eng journal with
          | Ok _ -> ()
          | Error msg ->
              prerr_endline msg;
              exit 1);
          let config = { Dp_net.Server.default_config with port } in
          match Dp_net.Server.create ~config eng with
          | Error _ -> exit 1
          | Ok srv ->
              Printf.printf "listening port=%d workers=1\n%!"
                (Dp_net.Server.port srv);
              Sys.set_signal Sys.sigterm
                (Sys.Signal_handle (fun _ -> Dp_net.Server.request_stop srv));
              Dp_net.Server.run srv;
              Dp_engine.Engine.close eng;
              exit 0
        end
        else
          exit
            (Dp_pool.Pool.run
               {
                 (Dp_pool.Pool.default_config ~workers ~port ~journal) with
                 Dp_pool.Pool.seed = 29;
               })
      end;
      Unix.close wr;
      let ic = Unix.in_channel_of_descr rd in
      match
        let rec banner () =
          let line = input_line ic in
          if String.length line < 9 || String.sub line 0 9 <> "listening" then
            banner ()
        in
        banner ()
      with
      | () -> Some (pid, rd)
      | exception End_of_file ->
          (* bind lost the port race; reap and let the caller retry *)
          Unix.close rd;
          ignore (Unix.waitpid [] pid);
          None
    in
    let base = 25800 + (Unix.getpid () mod 1500) in
    let rec start try_ =
      if try_ >= 5 then failwith "pool bench: no bindable port"
      else
        match spawn (base + (workers * 7) + try_) with
        | Some (pid, rd) -> (pid, rd, base + (workers * 7) + try_)
        | None -> start (try_ + 1)
    in
    let pid, rd, port = start 0 in
    let connect () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
    in
    let roundtrip ic oc line =
      output_string oc line;
      output_char oc '\n';
      flush oc;
      let rec drain () = if input_line ic <> "" then drain () in
      drain ()
    in
    (* register once; the coordinator broadcasts it to every shard *)
    let fd0, ic0, oc0 = connect () in
    roundtrip ic0 oc0 "register bench rows=4096 eps=1000000 default-eps=0.0001";
    Unix.close fd0;
    let conns = Array.init nconc (fun _ -> connect ()) in
    let per = nreq / nconc in
    let work k () =
      let _, ic, oc = conns.(k) in
      for i = 0 to per - 1 do
        (* distinct thresholds: every answer is a fresh lease-gated draw *)
        roundtrip ic oc
          (Printf.sprintf "query bench count(income>%d)" ((k * per) + i))
      done
    in
    (* warm-up outside the clock: leases granted, caches keyed *)
    Array.iteri
      (fun k (_, ic, oc) ->
        roundtrip ic oc (Printf.sprintf "query bench count(age>%d)" k))
      conns;
    let t0 = Unix.gettimeofday () in
    let threads = Array.init nconc (fun k -> Thread.create (work k) ()) in
    Array.iter Thread.join threads;
    let dt = Unix.gettimeofday () -. t0 in
    Array.iter (fun (fd, _, _) -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
    Unix.kill pid Sys.sigterm;
    ignore (Unix.waitpid [] pid);
    Unix.close rd;
    cleanup ();
    float_of_int nreq /. dt
  in
  Format.printf "== worker-pool throughput (%d conns, %d fresh queries) ==@."
    nconc nreq;
  let rows =
    List.map
      (fun workers ->
        let rate = bench_n workers in
        Format.printf "pool serve N=%d  %10.0f req/s@." workers rate;
        (Printf.sprintf "pool serve N=%d" workers, 1e9 /. rate))
      [ 1; 2; 4 ]
  in
  Option.iter (fun file -> write_json file rows []) json

let rec json_arg = function
  | "--json" :: file :: _ -> Some file
  | _ :: rest -> json_arg rest
  | [] -> None

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let tables_only = List.mem "--tables-only" argv in
  let bench_only = List.mem "--bench-only" argv in
  if List.mem "--overhead" argv then overhead_gate ()
  else if List.mem "--net" argv then net_bench ()
  else if List.mem "--train" argv then train_bench (json_arg argv)
  else if List.mem "--stream" argv then stream_bench (json_arg argv)
  else if List.mem "--pool" argv then pool_bench (json_arg argv)
  else begin
    if not bench_only then
      Dp_experiments.Registry.run_all ~quick ~seed:20120330 Format.std_formatter;
    if not tables_only then run_benchmarks (json_arg argv);
    Format.printf "@.done.@."
  end
