(* The worker pool's budget arbitration. The qcheck property drives
   Lease through arbitrary grant / spend / expire-and-restart / stale /
   WAL-failure-rollback interleavings with an honest worker model and
   asserts the two soundness properties the pool leans on: the invariant
   Σ reclaimed + Σ outstanding ≤ E never breaks, and no fencing token
   is ever issued twice. The unit tests pin the grant WAL's round-trip
   and torn-tail behavior, and the corner decisions of the arbiter. *)

module Lease = Dp_pool.Lease
module Grant_wal = Dp_pool.Grant_wal

let slack = 1e-9

(* ------------------------------------------------------------------ *)
(* Honest-worker interleaving model: each shard keeps its incarnation's
   cumulative ask ([inc_need]) and the absolute face total its journal
   would show ([journal]); spends never exceed the granted lease, like
   a real worker behind the engine's lease gate. *)

type shard_model = {
  mutable token : int;
  mutable inc_leased : float;  (* latest Granted allowance (absolute) *)
  mutable inc_need : float;  (* cumulative ask this incarnation *)
  mutable journal : float;  (* absolute face total across lives *)
  mutable journal_base : float;  (* journal at incarnation start *)
}

let run_ops ~total ~shards ops =
  let t = Lease.create ~total ~shards in
  let next = ref 0 in
  let fresh () =
    let tk = !next in
    incr next;
    tk
  in
  let issued = Hashtbl.create 64 in
  let ms =
    Array.init shards (fun _ ->
        { token = -1; inc_leased = 0.; inc_need = 0.; journal = 0.;
          journal_base = 0. })
  in
  let issue shard =
    let tk = fresh () in
    if Hashtbl.mem issued tk then failwith "fencing token reused";
    Hashtbl.add issued tk ();
    Lease.new_incarnation t ~shard ~token:tk;
    let m = ms.(shard) in
    m.token <- tk;
    m.inc_leased <- 0.;
    m.inc_need <- 0.;
    m.journal_base <- m.journal
  in
  for k = 0 to shards - 1 do
    issue k
  done;
  let ok = ref true in
  let check () =
    if not (Lease.invariant_ok t) then ok := false;
    if Lease.reclaimed_spent t +. Lease.outstanding t > total +. slack then
      ok := false
  in
  List.iter
    (fun (shard, op, amount) ->
      let shard = shard mod shards in
      let m = ms.(shard) in
      (match op mod 5 with
      | 0 -> (
          (* ask for more *)
          let need = m.inc_need +. amount in
          match
            Lease.grant t ~shard ~token:m.token ~need ~quantum:0.5 ~now:0.
              ~ttl:5.
          with
          | Lease.Granted { leased; _ } ->
              if leased +. slack < need then failwith "granted below need";
              m.inc_leased <- leased;
              m.inc_need <- need
          | Lease.Denied _ -> ()
          | Lease.Stale _ -> failwith "live token judged stale")
      | 1 ->
          (* spend within the lease, as the gate enforces *)
          let headroom = m.inc_leased -. (m.journal -. m.journal_base) in
          let spend = Float.min amount headroom in
          if spend > 0. then m.journal <- m.journal +. spend
      | 2 ->
          (* crash: replay the journal, reclaim, restart fenced *)
          let r = Lease.reclaim t ~shard ~spent_total:m.journal in
          if r.Lease.overspend then failwith "honest worker flagged overspend";
          issue shard
      | 3 -> (
          (* a superseded incarnation retries its old token *)
          let stale = m.token - 1 in
          if stale >= 0 then
            let before = Lease.leased t ~shard in
            match
              Lease.grant t ~shard ~token:stale ~need:(amount +. 10.)
                ~quantum:0.5 ~now:0. ~ttl:5.
            with
            | Lease.Stale _ ->
                if Lease.leased t ~shard <> before then
                  failwith "stale grant mutated state"
            | Lease.Granted _ -> failwith "stale token granted"
            | Lease.Denied _ -> failwith "stale token denied, not fenced")
      | _ -> (
          (* a grant whose WAL append failed: raised in memory, rolled
             back before any ack, so the worker model learns nothing *)
          let prev = Lease.leased t ~shard in
          match
            Lease.grant t ~shard ~token:m.token ~need:(m.inc_need +. amount)
              ~quantum:0.5 ~now:0. ~ttl:5.
          with
          | Lease.Granted { leased; _ } ->
              if leased > prev +. slack then begin
                Lease.rollback t ~shard ~token:m.token ~leased:prev;
                if Lease.leased t ~shard <> prev then
                  failwith "rollback did not restore the lease"
              end
          | Lease.Denied _ -> ()
          | Lease.Stale _ -> failwith "live token judged stale"));
      check ())
    ops;
  (* final teardown: every shard crashes and is reclaimed; afterwards
     nothing is outstanding and total spend fits the budget *)
  for k = 0 to shards - 1 do
    ignore (Lease.reclaim t ~shard:k ~spent_total:ms.(k).journal)
  done;
  if Lease.outstanding t > slack then ok := false;
  if Lease.reclaimed_spent t > total +. slack then ok := false;
  !ok

let qcheck_tests =
  let open QCheck in
  let op_gen =
    Gen.(triple (int_range 0 3) (int_range 0 4) (float_range 0. 0.7))
  in
  let ops_gen = Gen.list_size (Gen.int_range 1 120) op_gen in
  [
    Test.make ~name:"lease invariant under arbitrary interleavings"
      ~count:300
      (make ops_gen ~print:(fun l -> string_of_int (List.length l)))
      (fun ops -> run_ops ~total:2.5 ~shards:4 ops);
    Test.make ~name:"lease invariant under tiny budget" ~count:300
      (make ops_gen ~print:(fun l -> string_of_int (List.length l)))
      (fun ops -> run_ops ~total:0.3 ~shards:3 ops);
  ]

(* ------------------------------------------------------------------ *)

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-12))

let lease_unit_tests =
  [
    Alcotest.test_case "deny past budget, exact re-ack" `Quick (fun () ->
        let t = Lease.create ~total:1.0 ~shards:2 in
        Lease.new_incarnation t ~shard:0 ~token:1;
        Lease.new_incarnation t ~shard:1 ~token:2;
        (match Lease.grant t ~shard:0 ~token:1 ~need:0.6 ~quantum:0.5 ~now:0. ~ttl:5. with
        | Lease.Granted { leased; _ } -> checkf "round up" 0.6 leased
        | _ -> Alcotest.fail "expected grant");
        (match Lease.grant t ~shard:1 ~token:2 ~need:0.3 ~quantum:0.5 ~now:0. ~ttl:5. with
        | Lease.Granted { leased; _ } -> checkf "clip to unleased" 0.4 leased
        | _ -> Alcotest.fail "expected clipped grant");
        (match Lease.grant t ~shard:1 ~token:2 ~need:0.5 ~quantum:0.5 ~now:0. ~ttl:5. with
        | Lease.Denied { unleased } -> checkf "nothing left" 0. unleased
        | _ -> Alcotest.fail "expected denial");
        (* an already-covered need re-acks without state change *)
        match Lease.grant t ~shard:0 ~token:1 ~need:0.6 ~quantum:0.5 ~now:1. ~ttl:5. with
        | Lease.Granted { leased; _ } ->
            checkf "re-ack" 0.6 leased;
            check "invariant" true (Lease.invariant_ok t)
        | _ -> Alcotest.fail "expected re-ack");
    Alcotest.test_case "reclaim returns unspent, flags overspend" `Quick
      (fun () ->
        let t = Lease.create ~total:2.0 ~shards:1 in
        Lease.new_incarnation t ~shard:0 ~token:1;
        ignore (Lease.grant t ~shard:0 ~token:1 ~need:1.0 ~quantum:0. ~now:0. ~ttl:5.);
        let r = Lease.reclaim t ~shard:0 ~spent_total:0.4 in
        check "no overspend" false r.Lease.overspend;
        checkf "unspent back" 0.6 r.Lease.unspent;
        checkf "grantable again" 1.6 (Lease.unleased t);
        Lease.new_incarnation t ~shard:0 ~token:2;
        ignore (Lease.grant t ~shard:0 ~token:2 ~need:0.5 ~quantum:0. ~now:0. ~ttl:5.);
        (* journal says 1.5 absolute: 1.1 this incarnation > 0.5 lease *)
        let r = Lease.reclaim t ~shard:0 ~spent_total:1.5 in
        check "overspend flagged" true r.Lease.overspend);
    Alcotest.test_case "rollback undoes an unjournaled grant" `Quick (fun () ->
        let t = Lease.create ~total:1.0 ~shards:1 in
        Lease.new_incarnation t ~shard:0 ~token:1;
        (match Lease.grant t ~shard:0 ~token:1 ~need:0.4 ~quantum:0. ~now:0. ~ttl:5. with
        | Lease.Granted { leased; _ } -> checkf "granted" 0.4 leased
        | _ -> Alcotest.fail "expected grant");
        (* the WAL append failed: restore, so a retry re-arbitrates
           instead of being re-acked against a phantom lease *)
        Lease.rollback t ~shard:0 ~token:1 ~leased:0.;
        checkf "restored" 0. (Lease.leased t ~shard:0);
        checkf "headroom back" 1.0 (Lease.unleased t);
        ignore (Lease.grant t ~shard:0 ~token:1 ~need:0.2 ~quantum:0. ~now:0. ~ttl:5.);
        (* neither a stale-token nor a widening rollback may move it *)
        Lease.rollback t ~shard:0 ~token:0 ~leased:0.;
        checkf "stale rollback ignored" 0.2 (Lease.leased t ~shard:0);
        Lease.rollback t ~shard:0 ~token:1 ~leased:0.5;
        checkf "widening rollback ignored" 0.2 (Lease.leased t ~shard:0);
        check "invariant" true (Lease.invariant_ok t));
    Alcotest.test_case "expired lists only idle leased shards" `Quick
      (fun () ->
        let t = Lease.create ~total:2.0 ~shards:3 in
        Lease.new_incarnation t ~shard:0 ~token:1;
        Lease.new_incarnation t ~shard:1 ~token:2;
        Lease.new_incarnation t ~shard:2 ~token:3;
        ignore (Lease.grant t ~shard:0 ~token:1 ~need:0.5 ~quantum:0. ~now:0. ~ttl:5.);
        ignore (Lease.grant t ~shard:1 ~token:2 ~need:0.5 ~quantum:0. ~now:8. ~ttl:5.);
        (* shard 0 lapsed at 5, shard 1 lives to 13, shard 2 holds nothing *)
        check "expired at t=10" true (Lease.expired t ~now:10. = [ 0 ]);
        (* a re-ack refreshes the deadline *)
        (match Lease.grant t ~shard:0 ~token:1 ~need:0.5 ~quantum:0. ~now:10. ~ttl:5. with
        | Lease.Granted { leased; deadline } ->
            checkf "re-ack" 0.5 leased;
            checkf "deadline refreshed" 15. deadline
        | _ -> Alcotest.fail "expected re-ack");
        check "refreshed" true (Lease.expired t ~now:10. = []);
        (* reclaim clears the lease and with it the expiry *)
        ignore (Lease.reclaim t ~shard:1 ~spent_total:0.2);
        check "reclaimed never expired" true (Lease.expired t ~now:100. = [ 0 ]));
    Alcotest.test_case "restart without reclaim is refused" `Quick (fun () ->
        let t = Lease.create ~total:1.0 ~shards:1 in
        Lease.new_incarnation t ~shard:0 ~token:1;
        ignore (Lease.grant t ~shard:0 ~token:1 ~need:0.2 ~quantum:0. ~now:0. ~ttl:5.);
        Alcotest.check_raises "unreclaimed lease"
          (Invalid_argument
             "Lease.new_incarnation: reclaim the dead incarnation first")
          (fun () -> Lease.new_incarnation t ~shard:0 ~token:2));
  ]

let wal_tests =
  let records =
    [
      Grant_wal.Dataset
        { name = "demo"; eps = 2.5; line = "register demo rows=100 eps=2.5" };
      Grant_wal.Incarnation { shard = 0; token = 1 };
      Grant_wal.Grant
        { shard = 0; token = 1; dataset = "demo"; leased = 0.5; deadline = 12.25 };
      Grant_wal.Reclaim { shard = 0; token = 1; dataset = "demo"; spent = 0.3 };
    ]
  in
  [
    Alcotest.test_case "append/load round trip" `Quick (fun () ->
        let path = Filename.temp_file "dpkit_wal" ".grants" in
        Sys.remove path;
        (match Grant_wal.open_ path with
        | Error msg -> Alcotest.fail msg
        | Ok (wal, existing, torn) ->
            check "fresh" true (existing = [] && torn = 0);
            List.iter
              (fun r ->
                match Grant_wal.append wal r with
                | Ok () -> ()
                | Error msg -> Alcotest.fail msg)
              records;
            Grant_wal.close wal);
        (match Grant_wal.load path with
        | Error msg -> Alcotest.fail msg
        | Ok (back, torn) ->
            check "no torn tail" true (torn = 0);
            check "round trip" true (back = records));
        Sys.remove path);
    Alcotest.test_case "torn tail truncated on open" `Quick (fun () ->
        let path = Filename.temp_file "dpkit_wal" ".grants" in
        Sys.remove path;
        (match Grant_wal.open_ path with
        | Error msg -> Alcotest.fail msg
        | Ok (wal, _, _) ->
            List.iter (fun r -> ignore (Grant_wal.append wal r)) records;
            Grant_wal.close wal);
        (* chop mid-frame: the tail must be dropped, the prefix kept *)
        let size = (Unix.stat path).Unix.st_size in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
        Unix.ftruncate fd (size - 3);
        Unix.close fd;
        (match Grant_wal.open_ path with
        | Error msg -> Alcotest.fail msg
        | Ok (wal, back, torn) ->
            check "tail detected" true (torn > 0);
            check "prefix intact" true
              (back = List.filteri (fun i _ -> i < 3) records);
            Grant_wal.close wal);
        match Grant_wal.load path with
        | Error msg -> Alcotest.fail msg
        | Ok (_, torn) ->
            check "open truncated the torn bytes" true (torn = 0);
            Sys.remove path);
  ]

let () =
  Alcotest.run "pool"
    [
      ("lease", lease_unit_tests);
      ("grant-wal", wal_tests);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
