(* Continual-observation streaming end to end: tree-counter mechanics
   against a naive recompute oracle, the empirical variance bound the
   tree mechanism promises (polylog in t, not linear), the static
   analyzer pricing a stream float-bit-identical to serving it, and
   kill -9 durability — recovered streams release bit-identical counts
   and never reuse pre-crash tree noise. *)

open Dp_mechanism
open Dp_engine
module Stream = Dp_stream.Stream
module Counter = Dp_stream.Counter
module A = Analyzer

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let ok_r label = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "%s: %s" label (Format.asprintf "%a" Engine.pp_error e)

let bits = Int64.bits_of_float

let params opts =
  match Stream.params_of_opts ~default_epsilon:0.1 opts with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let policy ?(epsilon = 10.) () =
  Registry.default_policy ~total:(Privacy.approx ~epsilon ~delta:1e-6)

let fresh ?(seed = 42) ?policy:(p = policy ()) () =
  let eng = Engine.create ~seed () in
  (match Engine.register_synthetic eng ~name:"d" ~rows:400 ~policy:p with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  eng

let spent eng =
  (ok_r "report" (Engine.report eng ~dataset:"d")).Engine.spent

(* Drive a bare counter with injected noise; [zero] makes it an exact
   (non-private) counter, which is what the oracle tests need. *)
let zero_noise () = 0.

let push c ~noise bit = Counter.commit c ~bit (Counter.prepare c ~bit ~noise)

let lcg_bits seed n =
  let s = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      (!s lsr 13) land 1)

(* --- params and pricing ---------------------------------------------- *)

let test_params_validation () =
  let bad opts msg =
    match Stream.params_of_opts ~default_epsilon:0.1 opts with
    | Ok _ -> Alcotest.failf "accepted: %s" msg
    | Error _ -> ()
  in
  bad [ ("eps", Some "0") ] "eps=0";
  bad [ ("eps", Some "-1") ] "negative eps";
  bad [ ("N", Some "1") ] "horizon below 2";
  bad [ ("N", Some (string_of_int (Counter.max_horizon + 1))) ]
    "horizon above max";
  bad [ ("N", Some "64"); ("window", Some "65") ] "window > N";
  bad [ ("window", Some "-1") ] "negative window";
  let p = params [] in
  Alcotest.(check int) "default horizon" 1024 p.Stream.horizon;
  Alcotest.(check int) "default window" 0 p.Stream.window;
  Alcotest.(check (float 0.)) "default eps" 0.1 p.Stream.epsilon

let test_spec_pricing () =
  (* face = eps * ceil(log2 N), from declared parameters alone *)
  let check_levels n l =
    Alcotest.(check int) (Printf.sprintf "levels N=%d" n) l
      (Counter.levels ~horizon:n)
  in
  check_levels 2 1;
  check_levels 3 2;
  check_levels 4 2;
  check_levels 1024 10;
  check_levels 1025 11;
  let sp = ok (Stream.spec (params [ ("eps", Some "0.01"); ("N", Some "1024") ])) in
  Alcotest.(check int) "levels" 10 sp.Stream.levels;
  Alcotest.(check int64) "face = eps * levels" (bits 0.1)
    (bits sp.Stream.face.Privacy.epsilon);
  Alcotest.(check (float 0.)) "pure dp" 0. sp.Stream.face.Privacy.delta;
  Alcotest.(check (float 0.)) "sensitivity = levels (one node per level)" 10.
    sp.Stream.sensitivity

(* --- counter vs naive oracle ----------------------------------------- *)

let test_zero_noise_exact () =
  (* with zero noise the tree must reproduce the plain running count at
     every step — the decomposition covers (0, t] exactly once *)
  let c = Counter.create ~epsilon:1. ~horizon:128 in
  let bits_in = lcg_bits 11 100 in
  let running = ref 0 in
  Array.iter
    (fun b ->
      push c ~noise:zero_noise b;
      running := !running + b;
      Alcotest.(check (float 0.))
        (Printf.sprintf "prefix at t=%d" (Counter.t_now c))
        (float_of_int !running) (Counter.read c))
    bits_in

let test_window_vs_oracle () =
  (* every (t, w) pair against a naive recompute of the last w bits *)
  let c = Counter.create ~epsilon:1. ~horizon:64 in
  let bits_in = lcg_bits 23 64 in
  Array.iteri
    (fun i b ->
      push c ~noise:zero_noise b;
      let t = i + 1 in
      for w = 1 to t do
        let oracle = ref 0 in
        for j = t - w to t - 1 do
          oracle := !oracle + bits_in.(j)
        done;
        Alcotest.(check (float 0.))
          (Printf.sprintf "window t=%d w=%d" t w)
          (float_of_int !oracle)
          (ok (Counter.window c ~w))
      done;
      (* w past the prefix clamps to the whole prefix *)
      Alcotest.(check (float 0.))
        (Printf.sprintf "clamped window t=%d" t)
        (Counter.read c)
        (ok (Counter.window c ~w:(t + 999))))
    bits_in;
  match Counter.window c ~w:0 with
  | Ok _ -> Alcotest.fail "w=0 accepted"
  | Error _ -> ()

let test_variance_bound () =
  (* seeded Monte Carlo: the empirical variance of the prefix-count
     error must sit within the exact per-read bound [blocks * 2/eps^2],
     which itself is O(log t / eps^2) <= the O(log^2 t / eps^2) the
     tree mechanism promises. 300 trials of a 200-step stream. *)
  let eps = 0.5 and t_final = 200 and trials = 300 in
  let rng = Dp_rng.Prng.create 777 in
  let bits_in = lcg_bits 5 t_final in
  let errs = Array.make trials 0. in
  let bound = ref 0. in
  for k = 0 to trials - 1 do
    let c = Counter.create ~epsilon:eps ~horizon:256 in
    let noise () =
      Dp_rng.Sampler.laplace ~mean:0. ~scale:(Counter.noise_scale c) rng
    in
    Array.iter (fun b -> push c ~noise b) bits_in;
    errs.(k) <- Counter.read c -. float_of_int (Counter.true_count c);
    bound := Counter.read_variance c
  done;
  let mean = Array.fold_left ( +. ) 0. errs /. float_of_int trials in
  let var =
    Array.fold_left (fun a e -> a +. ((e -. mean) ** 2.)) 0. errs
    /. float_of_int (trials - 1)
  in
  (* the exact bound: blocks <= levels = 8, so var <= 8 * 2/eps^2 = 64;
     sampling slack 1.5x up, 0.2x down (noise must actually be there) *)
  let levels = float_of_int (Counter.levels ~horizon:256) in
  Alcotest.(check bool)
    (Printf.sprintf "exact bound <= levels * 2/eps^2 (%g <= %g)" !bound
       (levels *. 2. /. (eps *. eps)))
    true
    (!bound <= levels *. 2. /. (eps *. eps));
  Alcotest.(check bool)
    (Printf.sprintf "empirical var %g within 1.5x bound %g" var !bound)
    true
    (var <= 1.5 *. !bound);
  Alcotest.(check bool)
    (Printf.sprintf "noise present: var %g >= 0.2x bound %g" var !bound)
    true
    (var >= 0.2 *. !bound)

(* --- served lifecycle ------------------------------------------------ *)

let open_stream ?(opts = [ ("eps", Some "0.05"); ("N", Some "16") ]) eng =
  ok_r "stream open" (Engine.stream_open eng ~dataset:"d" (params opts))

let test_lifecycle () =
  let eng = fresh () in
  let o = open_stream eng in
  let s = o.Engine.stream in
  Alcotest.(check string) "first handle" "d/s1"
    s.Dp_stream.Stream_store.handle;
  (* whole-lifetime face charged at open: 0.05 * 4 levels *)
  Alcotest.(check int64) "charged = eps * levels" (bits 0.2)
    (bits o.Engine.charged.Privacy.epsilon);
  let s0 = spent eng in
  (* appends and reads are pre-paid: spent never moves again *)
  for i = 1 to 16 do
    let a = ok_r "append" (Engine.append eng "d/s1" (i land 1)) in
    Alcotest.(check int) "t advances" i a.Engine.t_now
  done;
  let r = ok_r "read" (Engine.stream_read eng "d/s1") in
  Alcotest.(check int) "read at horizon" 16 r.Engine.t_now;
  Alcotest.(check bool) "finite count" true (Float.is_finite r.Engine.count);
  let w = ok_r "window" (Engine.stream_window eng "d/s1" ~w:4 ()) in
  Alcotest.(check (option int)) "window echoed" (Some 4) w.Engine.window;
  let s1 = spent eng in
  Alcotest.(check int64) "appends and reads charged nothing"
    (bits s0.Privacy.epsilon) (bits s1.Privacy.epsilon);
  (* per-step MI accounting: the whole-stream cap amortized over t *)
  Alcotest.(check int64) "per-step MI = total / steps"
    (bits (r.Engine.leak.Meter.total.Meter.mi_bound_nats /. 16.))
    (bits r.Engine.leak.Meter.per_step_mi_nats);
  (* horizon enforced *)
  (match Engine.append eng "d/s1" 1 with
  | Error (Engine.Bad_query _) -> ()
  | _ -> Alcotest.fail "append past horizon accepted");
  (* bad bit, unknown handles: typed errors *)
  (match Engine.append eng "d/s1" 2 with
  | Error (Engine.Bad_query _) -> ()
  | _ -> Alcotest.fail "non-bit append accepted");
  (match Engine.stream_read eng "d/s99" with
  | Error (Engine.Unknown_stream _) -> ()
  | _ -> Alcotest.fail "expected Unknown_stream");
  (* no declared window and no w: refused; second stream numbers s2 *)
  (match Engine.stream_window eng "d/s1" () with
  | Error (Engine.Bad_query _) -> ()
  | _ -> Alcotest.fail "windowless stream served a default window");
  let o2 =
    open_stream
      ~opts:[ ("eps", Some "0.05"); ("N", Some "16"); ("window", Some "4") ]
      eng
  in
  Alcotest.(check string) "second handle" "d/s2"
    o2.Engine.stream.Dp_stream.Stream_store.handle;
  ignore (ok_r "append s2" (Engine.append eng "d/s2" 1));
  (* the declared default window is used when no w is passed; with only
     1 step observed its count clamps to the whole prefix *)
  let w2 = ok_r "declared window" (Engine.stream_window eng "d/s2" ()) in
  Alcotest.(check (option int)) "declared default used" (Some 4)
    w2.Engine.window;
  let r2 = ok_r "read s2" (Engine.stream_read eng "d/s2") in
  Alcotest.(check int64) "clamped window = prefix" (bits r2.Engine.count)
    (bits w2.Engine.count)

let test_reads_free_after_exhaustion () =
  (* budget exactly covers the open; reads keep serving afterwards *)
  let eng =
    fresh ~policy:(Registry.default_policy ~total:(Privacy.pure 0.2)) ()
  in
  ignore (open_stream eng);
  (match Engine.stream_open eng ~dataset:"d" (params [ ("N", Some "16") ]) with
  | Error (Engine.Budget_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "overdraft accepted"
  | Error e ->
      Alcotest.failf "expected Budget_exceeded: %s"
        (Format.asprintf "%a" Engine.pp_error e));
  ignore (ok_r "append" (Engine.append eng "d/s1" 1));
  for _ = 1 to 5 do
    ignore (ok_r "free read" (Engine.stream_read eng "d/s1"))
  done;
  let s = spent eng in
  Alcotest.(check int64) "reads charged nothing" (bits 0.2)
    (bits s.Privacy.epsilon)

(* --- static = live --------------------------------------------------- *)

let test_analyze_matches_live () =
  let schema =
    ok
      (Registry.schema ~name:"d" ~rows:400 ~policy:(policy ())
         [
           { Registry.col = "age"; lo = 18.; hi = 80. };
           { Registry.col = "income"; lo = 0.; hi = 200_000. };
           { Registry.col = "score"; lo = -4.; hi = 4. };
         ])
  in
  let stream_opts =
    [ ("eps", Some "0.03"); ("N", Some "1000"); ("window", Some "100") ]
  in
  let items =
    [
      A.Stat
        {
          text = "count";
          query = ok (Query.parse "count");
          epsilon = Some 0.1;
        };
      A.Stream { text = "stream"; stream_opts };
    ]
  in
  let r = ok (A.analyze schema items) in
  Alcotest.(check bool) "static verdict PASS" true r.A.pass;
  let eng = fresh () in
  ignore
    (ok_r "count" (Engine.submit_text eng ~epsilon:0.1 ~dataset:"d" "count"));
  ignore (open_stream ~opts:stream_opts eng);
  let live = spent eng in
  Alcotest.(check int64) "epsilon bits" (bits live.Privacy.epsilon)
    (bits r.A.spent.Privacy.epsilon);
  let row = List.nth r.A.rows 1 in
  Alcotest.(check string) "mechanism" "tree" row.A.mechanism;
  (* N=1000 -> 10 levels *)
  Alcotest.(check int64) "row face = eps * levels" (bits 0.3)
    (bits row.A.face.Privacy.epsilon)

(* --- durability ------------------------------------------------------ *)

let temp_journal () = Filename.temp_file "dpkit_stream_test" ".wal"

let with_journal f =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let journaled_engine ~seed path =
  let eng = Engine.create ~seed () in
  let r = ok (Engine.open_journal eng path) in
  (r, eng)

let test_recovery_bit_identical () =
  with_journal (fun path ->
      let _, eng = journaled_engine ~seed:5 path in
      (match
         Engine.register_synthetic eng ~name:"d" ~rows:400 ~policy:(policy ())
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      ignore
        (open_stream
           ~opts:[ ("eps", Some "0.1"); ("N", Some "64"); ("window", Some "8") ]
           eng);
      Array.iter
        (fun b -> ignore (ok_r "append" (Engine.append eng "d/s1" b)))
        (lcg_bits 3 40);
      let read1 = (ok_r "read" (Engine.stream_read eng "d/s1")).Engine.count in
      let win1 =
        (ok_r "window" (Engine.stream_window eng "d/s1" ())).Engine.count
      in
      let spent1 = spent eng in
      (* kill -9 equivalent: a fresh engine on the same journal *)
      let rec2, eng2 = journaled_engine ~seed:5 path in
      Alcotest.(check int) "streams recovered" 1 rec2.Engine.streams_recovered;
      Alcotest.(check bool) "replay verified" true rec2.Engine.verified;
      let read2 =
        (ok_r "read after recovery" (Engine.stream_read eng2 "d/s1"))
          .Engine.count
      in
      let win2 =
        (ok_r "window after recovery" (Engine.stream_window eng2 "d/s1" ()))
          .Engine.count
      in
      Alcotest.(check int64) "prefix count bits" (bits read1) (bits read2);
      Alcotest.(check int64) "window count bits" (bits win1) (bits win2);
      let spent2 =
        (ok_r "report" (Engine.report eng2 ~dataset:"d")).Engine.spent
      in
      Alcotest.(check int64) "spent epsilon bits" (bits spent1.Privacy.epsilon)
        (bits spent2.Privacy.epsilon);
      (* a third restart agrees with the second: replay is idempotent *)
      let _, eng3 = journaled_engine ~seed:99 path in
      let read3 =
        (ok_r "read after second recovery" (Engine.stream_read eng3 "d/s1"))
          .Engine.count
      in
      Alcotest.(check int64) "seed-independent replay" (bits read2)
        (bits read3))

let test_no_noise_reuse_after_recovery () =
  (* The freshness invariant: recovery consumes zero PRNG draws, so a
     recovered engine that kept its seeded stream would hand its first
     post-crash appends the exact node noise already released before
     the crash. The attach re-keys from OS entropy; the fresh appends
     must therefore diverge from a same-seed engine that never crashed
     (they are continuous Laplace draws — equality has probability 0
     and would be exactly the differencing attack). *)
  with_journal (fun path ->
      let seed = 21 in
      let drive eng n =
        Array.iter
          (fun b -> ignore (ok_r "append" (Engine.append eng "d/s1" b)))
          (lcg_bits 9 n)
      in
      let _, eng = journaled_engine ~seed path in
      (match
         Engine.register_synthetic eng ~name:"d" ~rows:400 ~policy:(policy ())
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      ignore (open_stream ~opts:[ ("eps", Some "0.1"); ("N", Some "64") ] eng);
      drive eng 32;
      let pre_crash = (ok_r "read" (Engine.stream_read eng "d/s1")).Engine.count in
      (* crash; recover; the replayed prefix is bit-identical... *)
      let _, eng2 = journaled_engine ~seed path in
      let replayed =
        (ok_r "read" (Engine.stream_read eng2 "d/s1")).Engine.count
      in
      Alcotest.(check int64) "replayed prefix identical" (bits pre_crash)
        (bits replayed);
      (* ...but the noise the recovered engine draws NEXT must not
         repeat what a same-seed uncrashed engine would draw *)
      drive eng2 32;
      let recovered_full =
        (ok_r "read" (Engine.stream_read eng2 "d/s1")).Engine.count
      in
      let eng_ref = Engine.create ~seed () in
      (match
         Engine.register_synthetic eng_ref ~name:"d" ~rows:400
           ~policy:(policy ())
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      ignore
        (open_stream ~opts:[ ("eps", Some "0.1"); ("N", Some "64") ] eng_ref);
      drive eng_ref 32;
      drive eng_ref 32;
      let reference_full =
        (ok_r "read" (Engine.stream_read eng_ref "d/s1")).Engine.count
      in
      Alcotest.(check bool) "post-recovery noise re-keyed" true
        (bits recovered_full <> bits reference_full))

let test_seed_determinism () =
  (* without a journal the stream noise is seed-deterministic, and the
     stream rng is independent of one-shot query traffic *)
  let run ~interleave =
    let eng = fresh ~seed:7 () in
    ignore (open_stream ~opts:[ ("eps", Some "0.1"); ("N", Some "64") ] eng);
    Array.iter
      (fun b ->
        if interleave then
          ignore
            (ok_r "query" (Engine.submit_text eng ~dataset:"d" "count"));
        ignore (ok_r "append" (Engine.append eng "d/s1" b)))
      (lcg_bits 13 16);
    (ok_r "read" (Engine.stream_read eng "d/s1")).Engine.count
  in
  Alcotest.(check int64) "same seed, same counts" (bits (run ~interleave:false))
    (bits (run ~interleave:false));
  Alcotest.(check int64) "query traffic does not shift stream noise"
    (bits (run ~interleave:false))
    (bits (run ~interleave:true))

let () =
  Alcotest.run "stream"
    [
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "static pricing" `Quick test_spec_pricing;
        ] );
      ( "counter",
        [
          Alcotest.test_case "zero-noise prefix is exact" `Quick
            test_zero_noise_exact;
          Alcotest.test_case "window vs naive oracle" `Quick
            test_window_vs_oracle;
          Alcotest.test_case "variance bound" `Quick test_variance_bound;
        ] );
      ( "serving",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "reads free after exhaustion" `Quick
            test_reads_free_after_exhaustion;
        ] );
      ( "static = live",
        [
          Alcotest.test_case "analyze prices stream bit-identically" `Quick
            test_analyze_matches_live;
        ] );
      ( "durability",
        [
          Alcotest.test_case "kill and restart releases identical counts"
            `Quick test_recovery_bit_identical;
          Alcotest.test_case "no noise reuse after recovery" `Quick
            test_no_noise_reuse_after_recovery;
          Alcotest.test_case "seeded determinism" `Quick test_seed_determinism;
        ] );
    ]
