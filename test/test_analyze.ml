(* The static analyzer's contract: `dpkit analyze` must price a
   workload bit-identically to a live serving run — same per-query
   charges, same composed totals — while never touching column data.
   These tests run the same workload through Engine.submit (live) and
   Analyzer.analyze (static) under all three composition backends and
   compare the float bits of the spent budgets. *)

open Dp_mechanism
module A = Dp_engine.Analyzer
module E = Dp_engine.Engine
module Registry = Dp_engine.Registry
module Ledger = Dp_engine.Ledger
module Planner = Dp_engine.Planner
module Query = Dp_engine.Query

let workload =
  [
    ("count", None);
    ("count(age>=65)", Some 0.05);
    ("mean(income)", Some 0.2);
    ("histogram(age,8)", Some 0.2);
    ("quantile(income,0.5)", Some 0.1);
    ("cdf(score,-1,0,1)", Some 0.15);
    ("sum(score)", Some 0.05);
  ]

let items () =
  List.map
    (fun (text, eps) ->
      match Query.parse text with
      | Ok q -> A.Stat { text; query = q; epsilon = eps }
      | Error e -> Alcotest.failf "parse %s: %s" text e)
    workload

let policy backend =
  {
    (Registry.default_policy ~total:(Privacy.approx ~epsilon:10. ~delta:1e-6))
    with
    backend;
  }

(* The synthetic dataset's schema, written down independently — the
   analyzer must price from bounds alone, never from values. *)
let schema backend =
  match
    Registry.schema ~name:"d" ~rows:500 ~policy:(policy backend)
      [
        { Registry.col = "age"; lo = 18.; hi = 80. };
        { Registry.col = "income"; lo = 0.; hi = 200_000. };
        { Registry.col = "score"; lo = -4.; hi = 4. };
      ]
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let live_spent backend =
  let eng = E.create ~seed:7 () in
  (match E.register_synthetic eng ~name:"d" ~rows:500 ~policy:(policy backend) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  List.iter
    (fun (text, eps) ->
      match E.submit_text eng ?epsilon:eps ~dataset:"d" text with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "submit %s: %a" text E.pp_error e)
    workload;
  match E.report eng ~dataset:"d" with
  | Ok r -> r.E.spent
  | Error e -> Alcotest.failf "report: %a" E.pp_error e

let static_report backend =
  match A.analyze (schema backend) (items ()) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let bits = Int64.bits_of_float

let check_bits what a b =
  Alcotest.(check int64) (what ^ " epsilon bits") (bits a.Privacy.epsilon)
    (bits b.Privacy.epsilon);
  Alcotest.(check int64) (what ^ " delta bits") (bits a.Privacy.delta)
    (bits b.Privacy.delta)

let test_bit_exact backend () =
  let live = live_spent backend in
  let r = static_report backend in
  Alcotest.(check bool) "verdict PASS" true r.A.pass;
  Alcotest.(check int) "all accepted" (List.length workload) r.A.accepted;
  check_bits "static vs live spent" live r.A.spent

(* Ledger.preview is the one-call form of the same odometer: feeding it
   the specs' charges must reproduce the live spent exactly. *)
let test_preview backend () =
  let s = schema backend in
  let charges =
    List.map
      (fun (it : A.item) ->
        match it with
        | A.Train _ | A.Stream _ -> Alcotest.fail "stat workload only"
        | A.Stat { query; epsilon; _ } -> (
            let eps =
              Option.value epsilon ~default:s.Registry.policy.default_epsilon
            in
            match Planner.spec s ~epsilon:eps query with
            | Ok sp -> sp.Planner.charge
            | Error e -> Alcotest.fail e))
      (items ())
  in
  let previewed =
    Ledger.preview ~total:s.Registry.policy.total ~backend charges
  in
  check_bits "preview vs live spent" (live_spent backend) previewed

(* The analyzer reports all three composed totals; each must equal the
   live total under a policy using that backend (same workload, same
   per-backend mechanism selection). *)
let test_composed_cross_backend () =
  let r = static_report Ledger.Basic in
  List.iter
    (fun (c : A.composed) -> check_bits "composed" (live_spent c.A.backend) c.A.spent)
    r.A.composed

let test_spec_is_static () =
  (* A schema with column bounds but an absurd row count still prices:
     nothing reads values. *)
  let s = schema Ledger.Basic in
  let s = { s with Registry.rows = 1_000_000_000 } in
  match Planner.spec s ~epsilon:0.1 (Query.Mean { column = "income" }) with
  | Error e -> Alcotest.fail e
  | Ok sp ->
      Alcotest.(check (float 0.)) "mean sensitivity scales with rows"
        (200_000. /. 1e9) sp.Planner.sensitivity

let test_parse_schema () =
  let text =
    "# demo\ndataset d rows=10 eps=2 backend=advanced slack=0.01\n\
     column age lo=0 hi=99\n"
  in
  (match A.parse_schema text with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check string) "name" "d" s.Registry.name;
      Alcotest.(check int) "rows" 10 s.Registry.rows;
      (match s.Registry.policy.backend with
      | Ledger.Advanced { slack } ->
          Alcotest.(check (float 0.)) "slack" 0.01 slack
      | _ -> Alcotest.fail "expected advanced backend"));
  (match A.parse_schema "dataset d rows=0\ncolumn a lo=0 hi=1\n" with
  | Ok _ -> Alcotest.fail "rows=0 accepted"
  | Error e ->
      Alcotest.(check bool) "error cites line 1" true
        (String.length e >= 7 && String.sub e 0 7 = "line 1:"));
  match A.parse_schema "column a lo=1 hi=0\n" with
  | Ok _ -> Alcotest.fail "lo>hi accepted"
  | Error _ -> ()

let test_parse_workload () =
  (match A.parse_workload "# w\ncount eps=0.5\nmean(income)\n" with
  | Error e -> Alcotest.fail e
  | Ok [ A.Stat a; A.Stat b ] ->
      Alcotest.(check string) "q1" "count" (Query.normalize a.query);
      Alcotest.(check (option (float 0.))) "q1 eps" (Some 0.5) a.epsilon;
      Alcotest.(check (option (float 0.))) "q2 default" None b.epsilon
  | Ok l -> Alcotest.failf "expected 2 stat items, got %d" (List.length l));
  (match A.parse_workload "train target=score eps=0.2 chains=2\n" with
  | Ok [ A.Train { train_opts; _ } ] ->
      Alcotest.(check (option (option string)))
        "target parsed" (Some (Some "score"))
        (List.assoc_opt "target" train_opts)
  | Ok _ -> Alcotest.fail "expected one train item"
  | Error e -> Alcotest.fail e);
  match A.parse_workload "train bogus=1\n" with
  | Ok _ -> Alcotest.fail "unknown train option accepted"
  | Error e ->
      Alcotest.(check bool) "error cites line 1" true
        (String.length e >= 7 && String.sub e 0 7 = "line 1:")

(* A workload that overdraws must FAIL with the tail rejected, and the
   rejected rows must charge nothing — exactly like the live gate. *)
let test_overdraft_fail () =
  let s =
    match
      Registry.schema ~name:"d" ~rows:100
        ~policy:(Registry.default_policy ~total:(Privacy.pure 0.25))
        [ { Registry.col = "age"; lo = 0.; hi = 99. } ]
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let items =
    List.map
      (fun text ->
        match Query.parse text with
        | Ok q -> A.Stat { text; query = q; epsilon = Some 0.1 }
        | Error e -> Alcotest.fail e)
      [ "count"; "sum(age)"; "mean(age)"; "count(age>=50)" ]
  in
  match A.analyze s items with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "FAIL" false r.A.pass;
      Alcotest.(check int) "accepted" 2 r.A.accepted;
      Alcotest.(check int) "rejected" 2 r.A.rejected;
      Alcotest.(check (float 0.)) "spent stops at gate" 0.2
        r.A.spent.Privacy.epsilon;
      List.iter
        (fun (row : A.row) ->
          if not row.accepted then
            Alcotest.(check (float 0.)) "rejected row charges nothing" 0.
              row.A.marginal.Privacy.epsilon)
        r.A.rows

let () =
  let backends =
    [
      ("basic", Ledger.Basic);
      ("advanced", Ledger.Advanced { slack = 1e-5 });
      ("rdp", Ledger.Rdp { delta = 1e-6 });
    ]
  in
  Alcotest.run "analyze"
    [
      ( "bit-exact",
        List.map
          (fun (n, b) ->
            Alcotest.test_case ("static = live, " ^ n) `Quick
              (test_bit_exact b))
          backends );
      ( "preview",
        List.map
          (fun (n, b) ->
            Alcotest.test_case ("preview = live, " ^ n) `Quick (test_preview b))
          backends );
      ( "cross-backend",
        [
          Alcotest.test_case "all composed totals match live" `Quick
            test_composed_cross_backend;
        ] );
      ( "static",
        [ Alcotest.test_case "spec never reads values" `Quick test_spec_is_static ] );
      ( "parsing",
        [
          Alcotest.test_case "schema files" `Quick test_parse_schema;
          Alcotest.test_case "workload files" `Quick test_parse_workload;
        ] );
      ( "verdict",
        [ Alcotest.test_case "overdraft FAILs" `Quick test_overdraft_fail ] );
    ]
