#!/bin/sh
# dpkit flow must (1) flag every seeded interprocedural violation in
# flow_corpus/ — findings the token linter provably misses — with a
# witness path, (2) leave `dpkit lint` silent on that same corpus,
# (3) under `lint --flow`, replace the lexical R2/R8/R9 corpus
# findings with F2/F3 ones, (4) honour rule-range exemptions and the
# checked-in baseline, and (5) report nothing fresh on the
# repository's own sources.
set -u

DPKIT="$1"

# --- 1. the flow corpus: exactly 7 findings, 1×F1 + 3×F2 + 3×F3 ----
out=$("$DPKIT" flow --format json flow_corpus)
if [ $? -eq 0 ]; then
  echo "FAIL: corpus flow exited 0 (seeded violations not detected)"
  exit 1
fi

n=$(printf '%s\n' "$out" | grep -c '"rule"')
f1=$(printf '%s\n' "$out" | grep -c '"rule":"F1"')
f2=$(printf '%s\n' "$out" | grep -c '"rule":"F2"')
f3=$(printf '%s\n' "$out" | grep -c '"rule":"F3"')
if [ "$n" -ne 7 ] || [ "$f1" -ne 1 ] || [ "$f2" -ne 3 ] || [ "$f3" -ne 3 ]; then
  echo "FAIL: expected 7 corpus findings (1 F1, 3 F2, 3 F3), got $n ($f1/$f2/$f3)"
  printf '%s\n' "$out"
  exit 1
fi

for f in launder_main charge_branch fire_helper wrap_helper smuggle_main \
         seed_engine seed_net; do
  if ! printf '%s\n' "$out" | grep -q "$f\.ml"; then
    echo "FAIL: no finding reported in $f.ml"
    printf '%s\n' "$out"
    exit 1
  fi
done

# every corpus finding is interprocedural or whole-program: its witness
# must exist, and the cross-module ones must span two files
text=$("$DPKIT" flow flow_corpus)
for w in \
  "launder_helper.ml:7:12 row-tainted born" \
  "fire_main.ml:7:22 call to Fire_helper.fire" \
  "release_main.ml:11:2 call to Wrap_helper.wrap" \
  "smuggle_main.ml:10:27 certify-owned stream born" \
  "seed_net.ml:6:16 seed 0x5EED in net domain"; do
  if ! printf '%s\n' "$text" | grep -q "via .*$w"; then
    echo "FAIL: witness step missing: $w"
    printf '%s\n' "$text"
    exit 1
  fi
done

# --- 2. the token linter is blind to all of them -------------------
if ! "$DPKIT" lint flow_corpus; then
  echo "FAIL: dpkit lint flagged flow_corpus — corpus no longer exercises"
  echo "      the interprocedural gap (a token rule caught a case)"
  exit 1
fi

# --- 3. lint --flow parity over the lexical corpus -----------------
out=$("$DPKIT" lint --flow --format json lint_corpus)
if [ $? -eq 0 ]; then
  echo "FAIL: lint --flow exited 0 on lint_corpus"
  exit 1
fi
for r in R2 R8 R9; do
  if printf '%s\n' "$out" | grep -q "\"rule\":\"$r\""; then
    echo "FAIL: lint --flow still reports lexical $r"
    printf '%s\n' "$out"
    exit 1
  fi
done
for pair in "bad_r2.ml F2" "bad_r8.ml F2" "bad_r9.ml F3"; do
  file=${pair% *}; rule=${pair#* }
  if ! printf '%s\n' "$out" | grep "\"rule\":\"$rule\"" | grep -q "$file"; then
    echo "FAIL: lint --flow did not report $rule on $file"
    printf '%s\n' "$out"
    exit 1
  fi
done

# --- 4. a rule-range exemption silences the whole family -----------
ex=$(mktemp)
printf 'F1-F3 flow_corpus/\n' > "$ex"
if ! "$DPKIT" flow --exempt "$ex" flow_corpus > /dev/null; then
  rm -f "$ex"
  echo "FAIL: F1-F3 range exemption did not suppress the corpus findings"
  exit 1
fi
rm -f "$ex"

# --- 5. SARIF carries fingerprints and code flows ------------------
sarif=$("$DPKIT" flow --format sarif flow_corpus)
for key in '"partialFingerprints"' '"dpkitFlow/v1"' '"codeFlows"' \
           '"threadFlows"'; do
  if ! printf '%s\n' "$sarif" | grep -qF "$key"; then
    echo "FAIL: SARIF output missing $key"
    exit 1
  fi
done

# --- 6. the repository itself is clean modulo the baseline ---------
# Baseline fingerprints include the finding's path as written, so the
# check must run from the root the baseline was recorded against.
DPKIT_ABS=$(cd "$(dirname "$DPKIT")" && pwd)/$(basename "$DPKIT")
real=$(cd .. && "$DPKIT_ABS" flow --baseline flow.baseline lib)
if [ $? -ne 0 ]; then
  echo "FAIL: repository sources have non-baselined flow findings"
  printf '%s\n' "$real"
  exit 1
fi
case "$real" in
  "0 findings ("*" baselined"*) : ;;
  *)
    echo "FAIL: unexpected flow summary on ../lib: $real"
    exit 1 ;;
esac

echo "flow: 7/7 corpus violations flagged with witnesses, lint blind to all,"
echo "      lint --flow parity holds, range exemptions + baseline honoured"
