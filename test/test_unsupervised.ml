(* Tests for local DP protocols, private k-means, and private PCA. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Local DP *)

let test_grr_probabilities () =
  let grr = Dp_mechanism.Local_dp.Grr.create ~epsilon:1. ~k:4 in
  check_close ~tol:1e-12 "truth prob"
    (exp 1. /. (exp 1. +. 3.))
    (Dp_mechanism.Local_dp.Grr.truth_probability grr);
  (* respond keeps range *)
  let g = Dp_rng.Prng.create 1 in
  for _ = 1 to 1000 do
    let r = Dp_mechanism.Local_dp.Grr.respond grr 2 g in
    Alcotest.(check bool) "in range" true (r >= 0 && r < 4)
  done;
  try
    ignore (Dp_mechanism.Local_dp.Grr.respond grr 4 g);
    Alcotest.fail "accepted out of range"
  with Invalid_argument _ -> ()

let test_grr_ldp_property () =
  (* exact eps-LDP: output distribution ratio between any two inputs *)
  let eps = 0.8 in
  let grr = Dp_mechanism.Local_dp.Grr.create ~epsilon:eps ~k:5 in
  let p = Dp_mechanism.Local_dp.Grr.truth_probability grr in
  let q = (1. -. p) /. 4. in
  (* P(report r | v) is p if r = v else q; max ratio = p/q = e^eps *)
  check_close ~tol:1e-12 "ratio is e^eps" (exp eps) (p /. q)

let test_grr_estimation_consistency () =
  let g = Dp_rng.Prng.create 2 in
  let k = 5 and n = 100_000 in
  let truth = [| 0.4; 0.25; 0.2; 0.1; 0.05 |] in
  let grr = Dp_mechanism.Local_dp.Grr.create ~epsilon:2. ~k in
  let values = Array.init n (fun _ -> Dp_rng.Sampler.categorical ~probs:truth g) in
  let reports = Array.map (fun v -> Dp_mechanism.Local_dp.Grr.respond grr v g) values in
  let est = Dp_mechanism.Local_dp.Grr.estimate_frequencies grr reports in
  Array.iteri
    (fun i t ->
      if Float.abs (est.(i) -. t) > 0.02 then
        Alcotest.failf "grr freq %d: %g vs %g" i est.(i) t)
    truth;
  (* estimates sum to ~1 (debiasing is affine) *)
  check_close ~tol:1e-6 "sums to 1" 1. (Dp_math.Summation.sum est)

let test_unary_estimation () =
  let g = Dp_rng.Prng.create 3 in
  let k = 16 and n = 50_000 in
  let ue = Dp_mechanism.Local_dp.Unary.create ~epsilon:2. ~k in
  Alcotest.(check bool) "keep prob > 1/2" true
    (Dp_mechanism.Local_dp.Unary.keep_probability ue > 0.5);
  let truth = Array.init k (fun i -> if i = 3 then 0.5 else 0.5 /. 15.) in
  let values = Array.init n (fun _ -> Dp_rng.Sampler.categorical ~probs:truth g) in
  let reports = Array.map (fun v -> Dp_mechanism.Local_dp.Unary.respond ue v g) values in
  let est = Dp_mechanism.Local_dp.Unary.estimate_frequencies ue reports in
  if Float.abs (est.(3) -. 0.5) > 0.03 then
    Alcotest.failf "unary mode freq: %g" est.(3);
  (* report shape *)
  let r = Dp_mechanism.Local_dp.Unary.respond ue 0 g in
  Alcotest.(check int) "report length" k (Array.length r)

let test_grr_beats_unary_small_k_and_vice_versa () =
  let g = Dp_rng.Prng.create 4 in
  let n = 30_000 and eps = 1. in
  let l2_error k =
    let weights = Array.init k (fun i -> 1. /. float_of_int (i + 1)) in
    let z = Dp_math.Summation.sum weights in
    let truth = Array.map (fun w -> w /. z) weights in
    let values =
      let t = Dp_rng.Alias.create weights in
      Array.init n (fun _ -> Dp_rng.Alias.sample t g)
    in
    let grr = Dp_mechanism.Local_dp.Grr.create ~epsilon:eps ~k in
    let rg = Array.map (fun v -> Dp_mechanism.Local_dp.Grr.respond grr v g) values in
    let eg = Dp_mechanism.Local_dp.Grr.estimate_frequencies grr rg in
    let ue = Dp_mechanism.Local_dp.Unary.create ~epsilon:eps ~k in
    let ru = Array.map (fun v -> Dp_mechanism.Local_dp.Unary.respond ue v g) values in
    let eu = Dp_mechanism.Local_dp.Unary.estimate_frequencies ue ru in
    let l2 est =
      sqrt
        (Dp_math.Numeric.float_sum_range k (fun i ->
             Dp_math.Numeric.sq (est.(i) -. truth.(i))))
    in
    (l2 eg, l2 eu)
  in
  let g4, u4 = l2_error 3 in
  let g128, u128 = l2_error 128 in
  Alcotest.(check bool) (Printf.sprintf "small k: grr %.4f <= unary %.4f" g4 u4)
    true (g4 <= u4);
  Alcotest.(check bool)
    (Printf.sprintf "large k: unary %.4f <= grr %.4f" u128 g128)
    true (u128 <= g128)

(* ------------------------------------------------------------------ *)
(* k-means *)

let blobs ~n g =
  let centers = [| [| 0.6; 0. |]; [| -0.3; 0.5 |]; [| -0.3; -0.5 |] |] in
  Array.init n (fun i ->
      let c = centers.(i mod 3) in
      [|
        c.(0) +. Dp_rng.Sampler.gaussian ~mean:0. ~std:0.05 g;
        c.(1) +. Dp_rng.Sampler.gaussian ~mean:0. ~std:0.05 g;
      |])

let test_kmeans_recovers_blobs () =
  let g = Dp_rng.Prng.create 5 in
  let points = blobs ~n:600 g in
  let m = Dp_learn.Kmeans.fit ~k:3 points g in
  Alcotest.(check bool)
    (Printf.sprintf "inertia %.4f small" m.Dp_learn.Kmeans.inertia)
    true
    (m.Dp_learn.Kmeans.inertia < 0.01);
  (* every true center is near some fitted center *)
  List.iter
    (fun c ->
      let d =
        Array.fold_left
          (fun acc fc -> Float.min acc (Dp_linalg.Vec.dist2 (Array.of_list c) fc))
          infinity m.Dp_learn.Kmeans.centers
      in
      Alcotest.(check bool) "center recovered" true (d < 0.1))
    [ [ 0.6; 0. ]; [ -0.3; 0.5 ]; [ -0.3; -0.5 ] ]

let test_kmeans_assign_inertia () =
  let centers = [| [| 0.; 0. |]; [| 1.; 0. |] |] in
  Alcotest.(check int) "assign near" 0 (Dp_learn.Kmeans.assign ~centers [| 0.1; 0. |]);
  Alcotest.(check int) "assign far" 1 (Dp_learn.Kmeans.assign ~centers [| 0.9; 0. |]);
  check_close ~tol:1e-12 "inertia value" 0.01
    (Dp_learn.Kmeans.inertia ~centers [| [| 0.1; 0. |] |])

let test_private_kmeans_utility () =
  let g = Dp_rng.Prng.create 6 in
  let points = blobs ~n:5000 g in
  let np = Dp_learn.Kmeans.fit ~k:3 points g in
  let hi, b = Dp_learn.Kmeans.fit_private ~epsilon:10. ~k:3 points g in
  check_close "budget" 10. b.Dp_mechanism.Privacy.epsilon;
  Alcotest.(check bool)
    (Printf.sprintf "dp %.4f near np %.4f" hi.Dp_learn.Kmeans.inertia
       np.Dp_learn.Kmeans.inertia)
    true
    (hi.Dp_learn.Kmeans.inertia < np.Dp_learn.Kmeans.inertia +. 0.05);
  let lo, _ = Dp_learn.Kmeans.fit_private ~epsilon:0.01 ~k:3 points g in
  Alcotest.(check bool) "tiny eps worse" true
    (lo.Dp_learn.Kmeans.inertia >= hi.Dp_learn.Kmeans.inertia -. 1e-9)

(* ------------------------------------------------------------------ *)
(* PCA *)

let planted_data ~n g =
  Array.init n (fun _ ->
      let z1 = Dp_rng.Sampler.gaussian ~mean:0. ~std:0.5 g in
      let z2 = Dp_rng.Sampler.gaussian ~mean:0. ~std:0.3 g in
      Dp_linalg.Vec.project_l2_ball ~radius:1.
        [| z1; z2; 0.02 *. z1; 0.01 *. z2; 0. |])

let test_pca_exact () =
  let g = Dp_rng.Prng.create 7 in
  let points = planted_data ~n:3000 g in
  let m = Dp_learn.Pca.fit ~j:2 points in
  Alcotest.(check int) "components" 2 (Array.length m.Dp_learn.Pca.components);
  Alcotest.(check bool)
    (Printf.sprintf "explained %.3f" m.Dp_learn.Pca.explained_ratio)
    true
    (m.Dp_learn.Pca.explained_ratio > 0.98);
  (* top component is ~e1 *)
  let c0 = m.Dp_learn.Pca.components.(0) in
  Alcotest.(check bool) "aligned with e1" true (Float.abs c0.(0) > 0.95);
  (* self affinity is 1 *)
  check_close ~tol:1e-9 "self affinity" 1. (Dp_learn.Pca.subspace_affinity m m)

let test_pca_private_recovery () =
  let g = Dp_rng.Prng.create 8 in
  let points = planted_data ~n:20_000 g in
  let exact = Dp_learn.Pca.fit ~j:2 points in
  let priv, b = Dp_learn.Pca.fit_private ~epsilon:5. ~j:2 points g in
  check_close "budget" 5. b.Dp_mechanism.Privacy.epsilon;
  let aff = Dp_learn.Pca.subspace_affinity exact priv in
  Alcotest.(check bool) (Printf.sprintf "affinity %.3f high" aff) true (aff > 0.9);
  (* tiny epsilon: affinity drops *)
  let bad, _ = Dp_learn.Pca.fit_private ~epsilon:0.001 ~j:2 points g in
  let aff_bad = Dp_learn.Pca.subspace_affinity exact bad in
  Alcotest.(check bool)
    (Printf.sprintf "degrades (%.3f < %.3f)" aff_bad aff)
    true (aff_bad < aff)

let test_pca_errors () =
  (try
     ignore (Dp_learn.Pca.fit ~j:0 [| [| 1.; 0. |] |]);
     Alcotest.fail "accepted j=0"
   with Invalid_argument _ -> ());
  try
    ignore (Dp_learn.Pca.fit ~j:3 [| [| 1.; 0. |] |]);
    Alcotest.fail "accepted j>d"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"grr estimates sum to ~1" ~count:30
      (pair (int_range 0 1000) (int_range 2 10))
      (fun (seed, k) ->
        let g = Dp_rng.Prng.create seed in
        let grr = Dp_mechanism.Local_dp.Grr.create ~epsilon:1. ~k in
        let reports = Array.init 2000 (fun _ -> Dp_rng.Prng.int g k) in
        let est = Dp_mechanism.Local_dp.Grr.estimate_frequencies grr reports in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-6
          (Dp_math.Summation.sum est) 1.);
    Test.make ~name:"kmeans centers stay in the ball (private)" ~count:10
      (int_range 0 1000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let points = blobs ~n:300 g in
        let m, _ = Dp_learn.Kmeans.fit_private ~epsilon:1. ~k:3 points g in
        Array.for_all
          (fun c -> Dp_linalg.Vec.norm2 c <= 1. +. 1e-9)
          m.Dp_learn.Kmeans.centers);
    Test.make ~name:"subspace affinity in [0,1]" ~count:20
      (int_range 0 1000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let pts = planted_data ~n:500 g in
        let a = Dp_learn.Pca.fit ~j:2 pts in
        let b, _ = Dp_learn.Pca.fit_private ~epsilon:0.5 ~j:2 pts g in
        let aff = Dp_learn.Pca.subspace_affinity a b in
        aff >= -1e-9 && aff <= 1. +. 1e-9);
  ]

let () =
  Alcotest.run "dp_unsupervised"
    [
      ( "local dp",
        [
          Alcotest.test_case "grr probabilities" `Quick test_grr_probabilities;
          Alcotest.test_case "grr LDP property" `Quick test_grr_ldp_property;
          Alcotest.test_case "grr estimation" `Slow test_grr_estimation_consistency;
          Alcotest.test_case "unary estimation" `Slow test_unary_estimation;
          Alcotest.test_case "grr/unary crossover" `Slow
            test_grr_beats_unary_small_k_and_vice_versa;
        ] );
      ( "kmeans",
        [
          Alcotest.test_case "recovers blobs" `Quick test_kmeans_recovers_blobs;
          Alcotest.test_case "assign & inertia" `Quick test_kmeans_assign_inertia;
          Alcotest.test_case "private utility" `Slow test_private_kmeans_utility;
        ] );
      ( "pca",
        [
          Alcotest.test_case "exact" `Quick test_pca_exact;
          Alcotest.test_case "private recovery" `Slow test_pca_private_recovery;
          Alcotest.test_case "input validation" `Quick test_pca_errors;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
