open Dp_stats

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)

let test_describe () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. (Describe.mean xs);
  check_close "variance" (32. /. 7.) (Describe.variance xs);
  check_close "median" 4.5 (Describe.median xs);
  check_close "q0" 2. (Describe.quantile xs 0.);
  check_close "q1" 9. (Describe.quantile xs 1.);
  let lo, hi = Describe.min_max xs in
  check_close "min" 2. lo;
  check_close "max" 9. hi;
  let z = Describe.standardize xs in
  check_close ~tol:1e-12 "standardized mean" 0. (Describe.mean z);
  check_close "standardized var" 1. (Describe.variance z)

let test_quantile_interpolation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  (* type-7: h = 3 * 0.5 = 1.5 -> 2 + 0.5*(3-2) = 2.5 *)
  check_close "median interp" 2.5 (Describe.quantile xs 0.5);
  check_close "q25" 1.75 (Describe.quantile xs 0.25)

let test_online () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  let t = Array.fold_left Describe.Online.add Describe.Online.empty xs in
  Alcotest.(check int) "count" 8 (Describe.Online.count t);
  check_close "online mean" (Describe.mean xs) (Describe.Online.mean t);
  check_close "online var" (Describe.variance xs) (Describe.Online.variance t);
  (* merge must equal sequential *)
  let half1 = Array.sub xs 0 4 and half2 = Array.sub xs 4 4 in
  let t1 = Array.fold_left Describe.Online.add Describe.Online.empty half1 in
  let t2 = Array.fold_left Describe.Online.add Describe.Online.empty half2 in
  let merged = Describe.Online.merge t1 t2 in
  check_close "merged mean" (Describe.Online.mean t) (Describe.Online.mean merged);
  check_close "merged var" (Describe.Online.variance t)
    (Describe.Online.variance merged)

let test_histogram_basic () =
  let h = Histogram.of_samples ~lo:0. ~hi:10. ~bins:5 [| 1.; 1.5; 3.; 9.9; 5. |] in
  check_close "total" 5. (Histogram.total h);
  check_close "bin0 count" 2. (Histogram.count h 0);
  check_close "bin0 prob" 0.4 (Histogram.probability h 0);
  check_close "bin width" 2. (Histogram.bin_width h);
  check_close "bin center" 1. (Histogram.bin_center h 0);
  check_close "density" 0.2 (Histogram.density h 0);
  check_close "density_at" 0.2 (Histogram.density_at h 1.2);
  check_close "density outside" 0. (Histogram.density_at h 12.);
  (* clamping *)
  let h = Histogram.add h (-5.) in
  check_close "clamped low" 3. (Histogram.count h 0);
  let h = Histogram.add h 100. in
  check_close "clamped high" 2. (Histogram.count h 4)

let test_histogram_ops () =
  let h = Histogram.of_samples ~lo:0. ~hi:4. ~bins:4 [| 0.5; 1.5; 2.5; 3.5 |] in
  let noisy = Histogram.map_counts (fun c -> c -. 2.) h in
  (* negatives are clamped at zero *)
  check_close "clamped count" 0. (Histogram.count noisy 0);
  check_close "l1 self" 0. (Histogram.l1_distance h h);
  let h2 = Histogram.of_samples ~lo:0. ~hi:4. ~bins:4 [| 0.5; 0.6; 0.7; 0.8 |] in
  check_close "l1 disjoint" 1.5 (Histogram.l1_distance h h2)

let test_ks_one_sample () =
  let g = Dp_rng.Prng.create 5 in
  (* Correct null: uniforms against the uniform CDF -> large p. *)
  let xs = Array.init 2000 (fun _ -> Dp_rng.Prng.float g) in
  let r = Gof.ks_one_sample ~cdf:(fun x -> Dp_math.Numeric.clamp ~lo:0. ~hi:1. x) xs in
  Alcotest.(check bool) "uniform accepted" true (r.p_value > 0.01);
  (* Wrong null: exponentials against uniform CDF -> tiny p. *)
  let ys = Array.init 2000 (fun _ -> Dp_rng.Sampler.exponential ~rate:1. g) in
  let r = Gof.ks_one_sample ~cdf:(fun x -> Dp_math.Numeric.clamp ~lo:0. ~hi:1. x) ys in
  Alcotest.(check bool) "exponential rejected" true (r.p_value < 1e-6)

let test_ks_laplace_sampler () =
  (* End-to-end: the Laplace sampler passes KS against its analytic CDF;
     this is the sampler the DP mechanism relies on. *)
  let g = Dp_rng.Prng.create 6 in
  let b = 1.7 in
  let xs = Array.init 5000 (fun _ -> Dp_rng.Sampler.laplace ~mean:0. ~scale:b g) in
  let cdf x =
    if x < 0. then 0.5 *. exp (x /. b) else 1. -. (0.5 *. exp (-.x /. b))
  in
  let r = Gof.ks_one_sample ~cdf xs in
  Alcotest.(check bool) "laplace sampler matches CDF" true (r.p_value > 0.001)

let test_ks_two_sample () =
  let g = Dp_rng.Prng.create 7 in
  let xs = Array.init 1500 (fun _ -> Dp_rng.Sampler.gaussian ~mean:0. ~std:1. g) in
  let ys = Array.init 1500 (fun _ -> Dp_rng.Sampler.gaussian ~mean:0. ~std:1. g) in
  let r = Gof.ks_two_sample xs ys in
  Alcotest.(check bool) "same dist accepted" true (r.p_value > 0.01);
  let zs = Array.init 1500 (fun _ -> Dp_rng.Sampler.gaussian ~mean:1. ~std:1. g) in
  let r = Gof.ks_two_sample xs zs in
  Alcotest.(check bool) "shifted rejected" true (r.p_value < 1e-6)

let test_two_sample_fixtures () =
  (* Pinned fixtures: both two-sample statistics are pure functions of
     the seeded draws, so statistic and p-value are byte-stable run to
     run; drift in the samplers, the sort, or the p-value
     approximations shows up here first. Explicit fill loops — the
     evaluation order of [Array.init] is unspecified. *)
  let g = Dp_rng.Prng.create 20120330 in
  let draw n f =
    let a = Array.make n 0. in
    for i = 0 to n - 1 do
      a.(i) <- f ()
    done;
    a
  in
  let xs = draw 400 (fun () -> Dp_rng.Sampler.laplace ~mean:0. ~scale:1. g) in
  let ys = draw 300 (fun () -> Dp_rng.Sampler.laplace ~mean:0.5 ~scale:1. g) in
  let r = Gof.ks_two_sample xs ys in
  check_close ~tol:1e-12 "ks two-sample statistic" 0.21083333333333337
    r.statistic;
  check_close ~tol:1e-12 "ks two-sample p" 3.5630700335585996e-07 r.p_value;
  let bin v = max 0 (min 5 (int_of_float (Float.floor (v +. 3.)))) in
  let c1 = Array.make 6 0. and c2 = Array.make 6 0. in
  Array.iter (fun v -> c1.(bin v) <- c1.(bin v) +. 1.) xs;
  Array.iter (fun v -> c2.(bin v) <- c2.(bin v) +. 1.) ys;
  let r2 = Gof.chi_square_two_sample c1 c2 in
  check_close ~tol:1e-12 "chi2 two-sample statistic" 22.852020189367529
    r2.statistic;
  check_close ~tol:1e-12 "chi2 two-sample p" 0.00036027714142672362 r2.p_value;
  let r3 = Gof.chi_square_two_sample c1 c1 in
  check_close "chi2 of identical counts: statistic" 0. r3.statistic;
  check_close "chi2 of identical counts: p" 1. r3.p_value;
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Gof.chi_square_two_sample: length mismatch")
    (fun () -> ignore (Gof.chi_square_two_sample c1 [| 1.; 2. |]))

let test_chi_square () =
  let expected = [| 25.; 25.; 25.; 25. |] in
  let r = Gof.chi_square_gof ~expected ~observed:[| 25.; 25.; 25.; 25. |] in
  check_close "perfect fit stat" 0. r.statistic;
  check_close "perfect fit p" 1. r.p_value;
  let r = Gof.chi_square_gof ~expected ~observed:[| 50.; 0.; 25.; 25. |] in
  Alcotest.(check bool) "bad fit rejected" true (r.p_value < 0.001);
  (* known value: chi2 sf with df=2 is exp(-x/2) *)
  check_close ~tol:1e-9 "sf df2" (exp (-1.)) (Gof.chi_square_sf ~df:2 2.)

let test_kde () =
  let g = Dp_rng.Prng.create 8 in
  let xs = Array.init 4000 (fun _ -> Dp_rng.Sampler.gaussian ~mean:0. ~std:1. g) in
  let k = Kde.fit xs in
  Alcotest.(check bool) "bandwidth positive" true (Kde.bandwidth k > 0.);
  let d0 = Kde.density k 0. in
  let expected = 1. /. sqrt (2. *. Float.pi) in
  if Float.abs (d0 -. expected) > 0.05 then
    Alcotest.failf "KDE at mode: %g vs %g" d0 expected;
  Alcotest.(check bool) "tails lower" true (Kde.density k 3. < d0);
  (* integral ~ 1 *)
  let integral =
    Dp_math.Quadrature.simpson ~n:512 ~f:(Kde.density k) (-6.) 6.
  in
  check_close ~tol:0.02 "integrates to 1" 1. integral

let test_bootstrap () =
  let g = Dp_rng.Prng.create 9 in
  let xs = Array.init 400 (fun _ -> Dp_rng.Sampler.gaussian ~mean:10. ~std:2. g) in
  let iv =
    Bootstrap.confidence_interval ~statistic:Describe.mean xs g
  in
  Alcotest.(check bool) "interval contains estimate" true
    (iv.lo <= iv.estimate && iv.estimate <= iv.hi);
  Alcotest.(check bool) "interval contains truth" true
    (iv.lo <= 10.3 && iv.hi >= 9.7);
  Alcotest.(check bool) "interval is tight" true (iv.hi -. iv.lo < 1.)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"quantile is monotone in p" ~count:200
      (pair
         (array_of_size (Gen.int_range 2 40) (float_range (-100.) 100.))
         (pair (float_range 0. 1.) (float_range 0. 1.)))
      (fun (xs, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Describe.quantile xs lo <= Describe.quantile xs hi +. 1e-9);
    Test.make ~name:"histogram probabilities sum to 1" ~count:200
      (array_of_size (Gen.int_range 1 100) (float_range (-5.) 5.))
      (fun xs ->
        let h = Histogram.of_samples ~lo:(-5.) ~hi:5. ~bins:7 xs in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-9 1.
          (Dp_math.Summation.sum (Histogram.probabilities h)));
    Test.make ~name:"online matches batch variance" ~count:200
      (array_of_size (Gen.int_range 2 50) (float_range (-10.) 10.))
      (fun xs ->
        let t = Array.fold_left Describe.Online.add Describe.Online.empty xs in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-6 ~abs_tol:1e-9
          (Describe.variance xs)
          (Describe.Online.variance t));
    Test.make ~name:"l1 distance is a metric (symmetric, bounded by 2)"
      ~count:100
      (pair
         (array_of_size (Gen.int_range 1 50) (float_range 0. 10.))
         (array_of_size (Gen.int_range 1 50) (float_range 0. 10.)))
      (fun (xs, ys) ->
        let ha = Histogram.of_samples ~lo:0. ~hi:10. ~bins:5 xs in
        let hb = Histogram.of_samples ~lo:0. ~hi:10. ~bins:5 ys in
        let d = Histogram.l1_distance ha hb in
        d >= 0. && d <= 2.
        && Dp_math.Numeric.approx_equal ~abs_tol:1e-12 d
             (Histogram.l1_distance hb ha));
  ]

let () =
  Alcotest.run "dp_stats"
    [
      ( "describe",
        [
          Alcotest.test_case "summary stats" `Quick test_describe;
          Alcotest.test_case "quantile interpolation" `Quick
            test_quantile_interpolation;
          Alcotest.test_case "online (Welford)" `Quick test_online;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basic;
          Alcotest.test_case "noising & distance" `Quick test_histogram_ops;
        ] );
      ( "gof",
        [
          Alcotest.test_case "KS one-sample" `Quick test_ks_one_sample;
          Alcotest.test_case "KS validates Laplace sampler" `Quick
            test_ks_laplace_sampler;
          Alcotest.test_case "KS two-sample" `Quick test_ks_two_sample;
          Alcotest.test_case "chi-square" `Quick test_chi_square;
          Alcotest.test_case "two-sample pinned fixtures" `Quick
            test_two_sample_fixtures;
        ] );
      ( "kde & bootstrap",
        [
          Alcotest.test_case "kde" `Quick test_kde;
          Alcotest.test_case "bootstrap CI" `Quick test_bootstrap;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
