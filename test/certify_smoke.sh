#!/bin/sh
# `dpkit certify` is deterministic given --seed: the in-process faces
# draw from the harness's own seeded generator, so the verdict line for
# the laplace sum face is pinned byte-for-byte. The deliberately broken
# half-scale variant must be flagged as `err certify-failed` with
# exit 1 — the gate CI trusts.
set -u

DPKIT="$1"

out=$("$DPKIT" certify "sum(income)" --trials 500 --seed 20120330) || {
  echo "FAIL: certify exited nonzero on the honest face"
  exit 1
}
printf '%s\n' "$out" | diff certify_smoke.expected - || {
  echo "FAIL: verdict drifted from the pinned fixture"
  exit 1
}

broken=$("$DPKIT" certify "sum(income)" --trials 500 --seed 20120330 \
  --break half-scale)
rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: half-scale face exited $rc, want 1"
  exit 1
fi
case "$broken" in
  "err certify-failed "*) ;;
  *)
    echo "FAIL: half-scale face verdict: $broken"
    exit 1
    ;;
esac

# The stream (tree-mechanism) face: a single dyadic block read is the
# true count plus one Laplace(1/eps) draw, certified against the
# per-node closed form. Seed-deterministic, so the verdict is pinned
# byte-for-byte; the seeded half-scale break (counter built at 2*eps
# while claiming eps) must be flagged with exit 1.
sout=$("$DPKIT" certify stream --trials 500 --seed 20120330) || {
  echo "FAIL: certify stream exited nonzero on the honest face"
  exit 1
}
swant="ok certified source=stream trials=500 eps-claimed=1.000000 \
eps-hat=2.564949 eps-lb=0.191053 alpha=0.050000 \
checks=lr:ok,ks:ok,model:ok,tail:ok"
[ "$sout" = "$swant" ] || {
  echo "FAIL: stream verdict drifted from the pinned fixture: $sout"
  exit 1
}

sbroken=$("$DPKIT" certify stream --trials 500 --seed 20120330 \
  --break half-scale)
rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: half-scale stream face exited $rc, want 1"
  exit 1
fi
case "$sbroken" in
  "err certify-failed source=stream "*failed=*lr*) ;;
  *)
    echo "FAIL: half-scale stream verdict: $sbroken"
    exit 1
    ;;
esac

# Adaptive sizing: --time-budget replaces --trials with a count derived
# from a timed pilot, clamped to [500, 200000], and says so.
tout=$("$DPKIT" certify "sum(income)" --time-budget 0.05 --seed 20120330) || {
  echo "FAIL: certify --time-budget exited nonzero"
  exit 1
}
case "$tout" in
  "certify: time budget 0.05s -> "*" trials"*) ;;
  *)
    echo "FAIL: --time-budget did not report its sizing: $tout"
    exit 1
    ;;
esac
n=$(printf '%s\n' "$tout" | sed -n 's/^certify: time budget [^ ]*s -> \([0-9]*\) trials.*/\1/p')
if [ -z "$n" ] || [ "$n" -lt 500 ] || [ "$n" -gt 200000 ]; then
  echo "FAIL: --time-budget trial count out of bounds: $n"
  exit 1
fi

echo "certify smoke: pinned verdicts stable (laplace + stream), breaks \
flagged, time budget sized $n trials"
