#!/bin/sh
# `dpkit certify` is deterministic given --seed: the in-process faces
# draw from the harness's own seeded generator, so the verdict line for
# the laplace sum face is pinned byte-for-byte. The deliberately broken
# half-scale variant must be flagged as `err certify-failed` with
# exit 1 — the gate CI trusts.
set -u

DPKIT="$1"

out=$("$DPKIT" certify "sum(income)" --trials 500 --seed 20120330) || {
  echo "FAIL: certify exited nonzero on the honest face"
  exit 1
}
printf '%s\n' "$out" | diff certify_smoke.expected - || {
  echo "FAIL: verdict drifted from the pinned fixture"
  exit 1
}

broken=$("$DPKIT" certify "sum(income)" --trials 500 --seed 20120330 \
  --break half-scale)
rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: half-scale face exited $rc, want 1"
  exit 1
fi
case "$broken" in
  "err certify-failed "*) ;;
  *)
    echo "FAIL: half-scale face verdict: $broken"
    exit 1
    ;;
esac

echo "certify smoke: pinned verdict stable, half-scale break flagged"
