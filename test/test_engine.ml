(* Tests for the query-serving engine: query language, planner
   mechanism/sensitivity choices, budget ledger backends, answer cache,
   audit replay and the line protocol. *)

open Dp_engine
open Dp_mechanism

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let demo_policy ?(backend = Ledger.Basic) ?(epsilon = 1.) ?(delta = 0.)
    ?analyst_epsilon ?(cache = true) ?(default_epsilon = 0.1) () =
  {
    (Registry.default_policy ~total:(Privacy.approx ~epsilon ~delta)) with
    Registry.backend;
    analyst_epsilon;
    cache;
    default_epsilon;
  }

let demo_engine ?(policy = demo_policy ()) () =
  let eng = Engine.create ~seed:7 () in
  (match Engine.register_synthetic eng ~name:"demo" ~rows:500 ~policy with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "register_synthetic: %s" msg);
  eng

let demo_dataset ?policy () =
  let eng = demo_engine ?policy () in
  match Engine.find eng "demo" with
  | Some ds -> ds
  | None -> Alcotest.fail "registered dataset not found"

(* ------------------------------------------------------------------ *)
(* Query language *)

let test_query_parse () =
  let roundtrips =
    [
      "count";
      "count(age>40)";
      "count(income<=12000)";
      "sum(income)";
      "mean(score)";
      "histogram(age,16)";
      "quantile(income,0.5)";
      "cdf(age,30,50,70)";
    ]
  in
  List.iter
    (fun text ->
      match Query.parse text with
      | Error msg -> Alcotest.failf "parse %S failed: %s" text msg
      | Ok q ->
          Alcotest.(check string)
            (Printf.sprintf "normalize %S" text)
            text (Query.normalize q))
    roundtrips;
  (* spelling variants share a normal form (hence a cache key) *)
  let norm text =
    match Query.parse text with
    | Ok q -> Query.normalize q
    | Error msg -> Alcotest.failf "parse %S failed: %s" text msg
  in
  Alcotest.(check string)
    "float canonicalization" (norm "quantile(income,0.5)")
    (norm "QUANTILE(income, 0.50)");
  Alcotest.(check string)
    "cdf points sorted and deduped" (norm "cdf(age,30,50,70)")
    (norm "cdf(age,70,30,50,30)");
  List.iter
    (fun bad ->
      match Query.parse bad with
      | Ok q -> Alcotest.failf "parse %S accepted as %s" bad (Query.normalize q)
      | Error _ -> ())
    [
      "";
      "frobnicate(age)";
      "sum()";
      "histogram(age,0)";
      "histogram(age,nope)";
      "quantile(age,1.5)";
      "count(age~40)";
      "cdf(age)";
      "sum(in come)";
    ]

(* ------------------------------------------------------------------ *)
(* Planner *)

let plan_ok ds ~epsilon text =
  match Query.parse text with
  | Error msg -> Alcotest.failf "parse %S: %s" text msg
  | Ok q -> (
      match Planner.plan ds ~epsilon q with
      | Ok p -> p.Planner.spec
      | Error msg -> Alcotest.failf "plan %S: %s" text msg)

let test_planner_choices () =
  let ds = demo_dataset () in
  let p = plan_ok ds ~epsilon:0.5 "count(age>40)" in
  Alcotest.(check string)
    "count mechanism" "geometric"
    (Planner.mechanism_name p.Planner.mechanism);
  check_close "count sensitivity" 1. p.Planner.sensitivity;
  check_close "count face-value charge" 0.5
    p.Planner.charge.Ledger.budget.Privacy.epsilon;
  (* income is bounded in [0, 200000]: bounded-sum sensitivity is the
     largest magnitude, mean divides by n *)
  let p = plan_ok ds ~epsilon:0.5 "sum(income)" in
  Alcotest.(check string)
    "sum mechanism" "laplace"
    (Planner.mechanism_name p.Planner.mechanism);
  check_close "sum sensitivity" 200_000. p.Planner.sensitivity;
  let p = plan_ok ds ~epsilon:0.5 "mean(income)" in
  check_close "mean sensitivity" (200_000. /. 500.) p.Planner.sensitivity;
  let p = plan_ok ds ~epsilon:0.5 "histogram(age,16)" in
  Alcotest.(check string)
    "histogram mechanism" "laplace"
    (Planner.mechanism_name p.Planner.mechanism);
  check_close "histogram sensitivity" 2. p.Planner.sensitivity;
  let p = plan_ok ds ~epsilon:0.5 "quantile(income,0.9)" in
  Alcotest.(check string)
    "quantile mechanism" "exponential"
    (Planner.mechanism_name p.Planner.mechanism);
  (* under RDP accounting integer queries switch to discrete gaussian
     and the face-value charge picks up the conversion delta *)
  let rdp_ds =
    demo_dataset ~policy:(demo_policy ~backend:(Ledger.Rdp { delta = 1e-6 }) ())
      ()
  in
  let p = plan_ok rdp_ds ~epsilon:0.5 "count" in
  Alcotest.(check string)
    "rdp count mechanism" "discrete-gaussian"
    (Planner.mechanism_name p.Planner.mechanism);
  Alcotest.(check bool)
    "rdp charge carries a curve" true
    (Option.is_some p.Planner.charge.Ledger.rdp);
  (* errors are structured, not exceptions *)
  (match Planner.plan ds ~epsilon:0.5 (Query.Sum { column = "nope" }) with
  | Error msg ->
      Alcotest.(check bool)
        "unknown column names the dataset" true (contains ~sub:"demo" msg)
  | Ok _ -> Alcotest.fail "planned a query over a missing column");
  match Planner.plan ds ~epsilon:0. (Query.Count None) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "planned with epsilon = 0"

(* ------------------------------------------------------------------ *)
(* Ledger *)

let test_ledger_backends () =
  let charges =
    List.init 40 (fun _ -> { Ledger.budget = Privacy.pure 0.05; rdp = None })
  in
  let spend_all backend =
    let t = Ledger.create ~total:(Privacy.approx ~epsilon:10. ~delta:1e-3) ~backend () in
    List.iter
      (fun c ->
        match Ledger.spend t c with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "ledger rejected within budget")
      charges;
    Alcotest.(check int) "all charges recorded" 40 (Ledger.n_charges t);
    Ledger.spent t
  in
  let basic = spend_all Ledger.Basic in
  check_close "basic adds" 2.0 basic.Privacy.epsilon;
  let adv = spend_all (Ledger.Advanced { slack = 1e-6 }) in
  Alcotest.(check bool)
    "advanced beats basic for many small charges" true
    (adv.Privacy.epsilon < basic.Privacy.epsilon);
  (* the advanced-composition delta slack is accounted *)
  Alcotest.(check bool) "advanced pays slack in delta" true
    (adv.Privacy.delta > 0.);
  let rdp = spend_all (Ledger.Rdp { delta = 1e-6 }) in
  Alcotest.(check bool)
    "rdp never worse than basic" true
    (rdp.Privacy.epsilon <= basic.Privacy.epsilon +. 1e-12);
  (* spent + remaining = total, and rejections are structured *)
  let t = Ledger.create ~total:(Privacy.pure 0.12) ~backend:Ledger.Basic () in
  let c = { Ledger.budget = Privacy.pure 0.05; rdp = None } in
  (match Ledger.spend t c with Ok () -> () | Error _ -> Alcotest.fail "1st");
  (match Ledger.spend t c with Ok () -> () | Error _ -> Alcotest.fail "2nd");
  check_close "spent" 0.1 (Ledger.spent t).Privacy.epsilon;
  check_close "remaining" 0.02 (Ledger.remaining t).Privacy.epsilon;
  match Ledger.spend t c with
  | Ok () -> Alcotest.fail "overdraft accepted"
  | Error r ->
      check_close "rejection echoes request" 0.05
        r.Ledger.requested.Privacy.epsilon;
      check_close "rejection reports remainder" 0.02
        r.Ledger.remaining.Privacy.epsilon;
      Alcotest.(check bool) "global, not analyst" true (r.Ledger.analyst = None);
      check_close "failed spend charged nothing" 0.1
        (Ledger.spent t).Privacy.epsilon

let test_analyst_budgets () =
  let t =
    Ledger.create ~total:(Privacy.pure 10.) ~backend:Ledger.Basic
      ~analyst_epsilon:0.1 ()
  in
  let c = { Ledger.budget = Privacy.pure 0.06; rdp = None } in
  (match Ledger.spend t ~analyst:"alice" c with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "alice within sub-budget");
  (match Ledger.spend t ~analyst:"alice" c with
  | Ok () -> Alcotest.fail "alice exceeded her sub-budget"
  | Error r ->
      Alcotest.(check (option string))
        "rejection names the analyst" (Some "alice") r.Ledger.analyst);
  (* bob has his own sub-budget; anonymous queries only hit the global *)
  (match Ledger.spend t ~analyst:"bob" c with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "bob blocked by alice's spend");
  (match Ledger.spend t c with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "anonymous blocked by sub-budgets");
  check_close "alice's ledger" 0.06 (Ledger.analyst_spent t "alice").Privacy.epsilon;
  check_close "unseen analyst" 0. (Ledger.analyst_spent t "carol").Privacy.epsilon;
  check_close "global sees all three" 0.18 (Ledger.spent t).Privacy.epsilon

(* ------------------------------------------------------------------ *)
(* Engine: budget exhaustion, cache, replay *)

let submit_ok eng ?analyst ?epsilon text =
  match Engine.submit_text eng ?analyst ?epsilon ~dataset:"demo" text with
  | Ok r -> r
  | Error e -> Alcotest.failf "submit %S: %a" text Engine.pp_error e

let test_budget_exhaustion () =
  let eng =
    demo_engine ~policy:(demo_policy ~epsilon:0.3 ~default_epsilon:0.1 ()) ()
  in
  (* three distinct queries fit exactly; the fourth must be rejected *)
  let r1 = submit_ok eng "count" in
  check_close "face value charged under basic" 0.1 r1.Engine.charged.Privacy.epsilon;
  ignore (submit_ok eng "mean(income)");
  ignore (submit_ok eng "quantile(income,0.5)");
  (match Engine.submit_text eng ~dataset:"demo" "sum(income)" with
  | Ok _ -> Alcotest.fail "answered past the budget"
  | Error (Engine.Budget_exceeded rej) ->
      check_close "typed rejection: requested" 0.1
        rej.Ledger.requested.Privacy.epsilon;
      check_close "typed rejection: remaining" 0.
        rej.Ledger.remaining.Privacy.epsilon
  | Error e -> Alcotest.failf "wrong error: %a" Engine.pp_error e);
  (* unknown datasets and malformed queries are also typed *)
  (match Engine.submit_text eng ~dataset:"nope" "count" with
  | Error (Engine.Unknown_dataset "nope") -> ()
  | _ -> Alcotest.fail "expected Unknown_dataset");
  (match Engine.submit_text eng ~dataset:"demo" "frobnicate" with
  | Error (Engine.Bad_query _) -> ()
  | _ -> Alcotest.fail "expected Bad_query");
  match Engine.report eng ~dataset:"demo" with
  | Error e -> Alcotest.failf "report: %a" Engine.pp_error e
  | Ok rep ->
      Alcotest.(check int) "answered" 3 rep.Engine.answered;
      Alcotest.(check int) "rejected" 1 rep.Engine.rejected;
      check_close "spent the whole budget" 0.3 rep.Engine.spent.Privacy.epsilon;
      check_close "nothing remains" 0. rep.Engine.remaining.Privacy.epsilon

let answers_equal a b =
  match (a, b) with
  | Planner.Scalar x, Planner.Scalar y -> x = y
  | Planner.Vector x, Planner.Vector y -> x = y
  | _ -> false

let test_cache_postprocessing () =
  let eng =
    demo_engine ~policy:(demo_policy ~epsilon:0.25 ~default_epsilon:0.1 ()) ()
  in
  let r1 = submit_ok eng "histogram(age,8)" in
  Alcotest.(check bool) "first is a miss" false r1.Engine.cache_hit;
  let r2 = submit_ok eng "histogram(age,8)" in
  Alcotest.(check bool) "repeat is a hit" true r2.Engine.cache_hit;
  Alcotest.(check bool)
    "replayed answer is bit-identical" true
    (answers_equal r1.Engine.answer r2.Engine.answer);
  check_close "hit charged zero" 0. r2.Engine.charged.Privacy.epsilon;
  check_close "hit still reports the face value"
    r1.Engine.requested.Privacy.epsilon r2.Engine.requested.Privacy.epsilon;
  Alcotest.(check string)
    "hit reports the original mechanism"
    (Planner.mechanism_name r1.Engine.mechanism)
    (Planner.mechanism_name r2.Engine.mechanism);
  (* same question at a different epsilon is a different release *)
  let r3 = submit_ok eng ~epsilon:0.15 "histogram(age,8)" in
  Alcotest.(check bool) "different eps misses" false r3.Engine.cache_hit;
  (* budget is now exhausted (0.1 + 0.15): fresh queries are rejected
     but cached ones still replay — post-processing is free *)
  (match Engine.submit_text eng ~dataset:"demo" "count" with
  | Error (Engine.Budget_exceeded _) -> ()
  | _ -> Alcotest.fail "expected exhaustion");
  let r4 = submit_ok eng "histogram(age,8)" in
  Alcotest.(check bool) "cached answer after exhaustion" true r4.Engine.cache_hit;
  match Engine.report eng ~dataset:"demo" with
  | Error e -> Alcotest.failf "report: %a" Engine.pp_error e
  | Ok rep ->
      Alcotest.(check int) "cache hits counted" 2 rep.Engine.cache_hits;
      check_close "spent unchanged by hits" 0.25 rep.Engine.spent.Privacy.epsilon;
      Alcotest.(check bool) "hit-rate reported" true (rep.Engine.hit_rate > 0.)

let test_cache_disabled () =
  let eng = demo_engine ~policy:(demo_policy ~cache:false ()) () in
  let r1 = submit_ok eng "count" in
  let r2 = submit_ok eng "count" in
  Alcotest.(check bool) "no hits when disabled" false r2.Engine.cache_hit;
  check_close "both charged" r1.Engine.charged.Privacy.epsilon
    r2.Engine.charged.Privacy.epsilon;
  Alcotest.(check bool)
    "fresh noise drawn" true
    (not (answers_equal r1.Engine.answer r2.Engine.answer))

let test_replay_and_marginals () =
  (* Under advanced composition the marginal charges telescope: replay
     through the basic accountant reproduces the composed spend. *)
  let eng =
    demo_engine
      ~policy:
        (demo_policy
           ~backend:(Ledger.Advanced { slack = 1e-6 })
           ~epsilon:2. ~delta:1e-3 ~default_epsilon:0.05 ())
      ()
  in
  List.iter
    (fun q -> ignore (submit_ok eng q))
    [ "count"; "count(age>40)"; "mean(income)"; "count"; "sum(score)" ];
  match (Engine.replay eng ~dataset:"demo", Engine.report eng ~dataset:"demo") with
  | Ok (Dp_audit.Replay.Consistent replayed), Ok rep ->
      check_close ~tol:1e-6 "replayed spend matches the report"
        rep.Engine.spent.Privacy.epsilon replayed.Privacy.epsilon;
      Alcotest.(check bool)
        "advanced spend below face-value sum" true
        (rep.Engine.spent.Privacy.epsilon < 4. *. 0.05 +. 1e-12)
  | Ok (Dp_audit.Replay.Overdraft _), _ -> Alcotest.fail "audit log overdrafts"
  | Error e, _ | _, Error e -> Alcotest.failf "replay: %a" Engine.pp_error e

let test_leakage_meter () =
  let eng = demo_engine () in
  ignore (submit_ok eng "count");
  ignore (submit_ok eng "mean(income)");
  match Engine.report eng ~dataset:"demo" with
  | Error e -> Alcotest.failf "report: %a" Engine.pp_error e
  | Ok rep ->
      let lk = rep.Engine.leakage in
      Alcotest.(check bool) "mi bound positive" true (lk.Meter.mi_bound_nats > 0.);
      check_close "bits are nats over ln 2"
        (lk.Meter.mi_bound_nats /. log 2.)
        lk.Meter.mi_bound_bits;
      Alcotest.(check bool)
        "per-record bound below whole-dataset capacity" true
        (lk.Meter.mi_bound_nats <= lk.Meter.capacity_bound_nats +. 1e-12);
      (* the meter reads the composed spend *)
      check_close "meter reads the ledger" rep.Engine.spent.Privacy.epsilon
        lk.Meter.epsilon

(* ------------------------------------------------------------------ *)
(* Protocol *)

let exec_one eng line =
  match Protocol.exec eng line with
  | [ reply ] -> reply
  | replies ->
      Alcotest.failf "expected one reply to %S, got %d" line
        (List.length replies)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_protocol () =
  let eng = Engine.create ~seed:42 () in
  let reply =
    exec_one eng "register demo rows=200 eps=0.25 default-eps=0.1"
  in
  Alcotest.(check bool) "register ok" true (starts_with "ok registered" reply);
  let reply = exec_one eng "query demo count" in
  Alcotest.(check bool) "query ok" true (starts_with "ok seq=" reply);
  Alcotest.(check bool) "miss reported" true (contains ~sub:"cache=miss" reply);
  let reply = exec_one eng "query demo count" in
  Alcotest.(check bool) "hit reported" true (contains ~sub:"cache=hit" reply);
  Alcotest.(check bool) "hit charged zero" true
    (contains ~sub:"eps-charged=0 " reply);
  let reply = exec_one eng "query demo mean(income)" in
  Alcotest.(check bool) "second query ok" true (starts_with "ok seq=" reply);
  (* 0.25 total - 0.2 spent: the next fresh query must be refused *)
  let reply = exec_one eng "query demo sum(income)" in
  Alcotest.(check bool) "typed budget refusal" true
    (starts_with "err budget-exceeded" reply);
  (match Protocol.exec eng "report demo" with
  | header :: _ ->
      Alcotest.(check bool) "report header" true
        (starts_with "report dataset=demo" header)
  | [] -> Alcotest.fail "empty report");
  let reply = exec_one eng "replay demo" in
  Alcotest.(check bool) "replay consistent" true
    (starts_with "ok replay consistent" reply);
  (* malformed input never raises *)
  List.iter
    (fun line ->
      match Protocol.exec eng line with
      | [] -> if line <> "" && line.[0] <> '#' then Alcotest.failf "no reply to %S" line
      | replies ->
          List.iter
            (fun r ->
              Alcotest.(check bool)
                (Printf.sprintf "reply to %S tagged" line)
                true
                (starts_with "ok" r || starts_with "err" r
                || starts_with "  " r || starts_with "report" r))
            replies)
    [
      "";
      "# comment";
      "bogus";
      "query";
      "query demo";
      "query nosuch count";
      "query demo frobnicate(age)";
      "query demo count eps=abc";
      "register demo";
      "register other rows=-3";
      "register other backend=frob";
      "help";
    ];
  Alcotest.(check bool) "quit detected" true (Protocol.is_quit "quit");
  Alcotest.(check bool) "exit detected" true (Protocol.is_quit " exit ");
  Alcotest.(check bool) "query is not quit" false (Protocol.is_quit "query d c")

let test_determinism () =
  (* same seed, same request sequence -> byte-identical transcript *)
  let transcript () =
    let eng = Engine.create ~seed:99 () in
    List.concat_map (Protocol.exec eng)
      [
        "register demo rows=300 eps=1 backend=advanced";
        "query demo count(age>40)";
        "query demo histogram(score,8)";
        "query demo quantile(income,0.25)";
        "report demo";
      ]
  in
  Alcotest.(check (list string)) "deterministic" (transcript ()) (transcript ())

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  let ident_gen = Gen.oneofl [ "age"; "income"; "score"; "x" ] in
  let finite_float = Gen.map (fun x -> Float.of_int (int_of_float (x *. 1e4)) /. 1e4)
      (Gen.float_range (-1e6) 1e6)
  in
  let query_gen =
    Gen.oneof
      [
        Gen.return (Query.Count None);
        Gen.map3
          (fun column op threshold ->
            Query.Count (Some { Query.column; op; threshold }))
          ident_gen
          (Gen.oneofl [ Query.Le; Query.Lt; Query.Ge; Query.Gt ])
          finite_float;
        Gen.map (fun column -> Query.Sum { column }) ident_gen;
        Gen.map (fun column -> Query.Mean { column }) ident_gen;
        Gen.map2
          (fun column bins -> Query.Histogram { column; bins })
          ident_gen (Gen.int_range 1 1000);
        Gen.map2
          (fun column q -> Query.Quantile { column; q })
          ident_gen (Gen.float_range 0. 1.);
        Gen.map2
          (fun column points ->
            match Query.parse
                    (Printf.sprintf "cdf(%s,%s)" column
                       (String.concat ","
                          (List.map (Printf.sprintf "%.4f") points)))
            with
            | Ok q -> q
            | Error _ -> Query.Count None)
          ident_gen
          (Gen.list_size (Gen.int_range 1 6) (Gen.float_range (-100.) 100.));
      ]
  in
  [
    Test.make ~name:"parse . normalize is the identity" ~count:500
      (make ~print:Query.normalize query_gen)
      (fun q ->
        match Query.parse (Query.normalize q) with
        | Ok q' -> Query.normalize q' = Query.normalize q
        | Error msg ->
            Test.fail_reportf "normal form %S does not reparse: %s"
              (Query.normalize q) msg);
    Test.make ~name:"ledger: spent + remaining = total (epsilon)" ~count:200
      (pair (float_range 0.5 5.)
         (list_of_size (Gen.int_range 0 30) (float_range 0.001 0.4)))
      (fun (total, epsilons) ->
        let t =
          Ledger.create ~total:(Privacy.pure total) ~backend:Ledger.Basic ()
        in
        List.iter
          (fun e ->
            ignore (Ledger.spend t { Ledger.budget = Privacy.pure e; rdp = None }))
          epsilons;
        let spent = (Ledger.spent t).Privacy.epsilon
        and remaining = (Ledger.remaining t).Privacy.epsilon in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-9 ~abs_tol:1e-12 total
          (spent +. remaining)
        && spent <= total +. 1e-9);
    Test.make ~name:"ledger: can_afford agrees with spend" ~count:200
      (pair (float_range 0.2 2.)
         (list_of_size (Gen.int_range 1 15) (float_range 0.01 0.5)))
      (fun (total, epsilons) ->
        let t =
          Ledger.create ~total:(Privacy.pure total) ~backend:Ledger.Basic ()
        in
        List.for_all
          (fun e ->
            let c = { Ledger.budget = Privacy.pure e; rdp = None } in
            let afford = Ledger.can_afford t c in
            match Ledger.spend t c with
            | Ok () -> afford
            | Error _ -> not afford)
          epsilons);
    Test.make ~name:"advanced ledger never exceeds basic" ~count:100
      (list_of_size (Gen.int_range 1 25) (float_range 0.01 0.3))
      (fun epsilons ->
        let spend_all backend =
          let t =
            Ledger.create ~total:(Privacy.approx ~epsilon:100. ~delta:0.1)
              ~backend ()
          in
          List.iter
            (fun e ->
              ignore
                (Ledger.spend t { Ledger.budget = Privacy.pure e; rdp = None }))
            epsilons;
          (Ledger.spent t).Privacy.epsilon
        in
        spend_all (Ledger.Advanced { slack = 1e-6 }) <= spend_all Ledger.Basic +. 1e-12);
  ]

let () =
  Alcotest.run "dp_engine"
    [
      ( "query",
        [
          Alcotest.test_case "parse and normalize" `Quick test_query_parse;
        ] );
      ( "planner",
        [
          Alcotest.test_case "mechanism and sensitivity" `Quick
            test_planner_choices;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "composition backends" `Quick test_ledger_backends;
          Alcotest.test_case "analyst sub-budgets" `Quick test_analyst_budgets;
        ] );
      ( "engine",
        [
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "cache is free post-processing" `Quick
            test_cache_postprocessing;
          Alcotest.test_case "cache can be disabled" `Quick test_cache_disabled;
          Alcotest.test_case "replay matches marginals" `Quick
            test_replay_and_marginals;
          Alcotest.test_case "leakage meter" `Quick test_leakage_meter;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "line protocol" `Quick test_protocol;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
