(* Tests for channel post-processing (DPI / DP invariance), group
   privacy, and multiclass learners. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let base_channel () =
  Dp_info.Channel.create ~input:[| 0.3; 0.4; 0.3 |]
    ~matrix:
      [| [| 0.7; 0.2; 0.1 |]; [| 0.2; 0.6; 0.2 |]; [| 0.1; 0.2; 0.7 |] |]

let neighbors i = Array.of_list (List.filter (fun j -> j <> i) [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)

let test_cascade_shapes () =
  let ch = base_channel () in
  let post = Dp_info.Channel_ops.deterministic_post ~outputs:3 (fun y -> y mod 2) in
  let c = Dp_info.Channel_ops.cascade ch ~post in
  Alcotest.(check int) "outputs preserved" 3 (Dp_info.Channel.n_outputs c);
  (* rows remain distributions (validated by Channel.create) *)
  check_close ~tol:1e-12 "row sums" 1.
    (Dp_math.Summation.sum (Dp_info.Channel.row c 0));
  (* column 1 (odd target) collects mass of output 1 only; column 2 empty *)
  check_close ~tol:1e-12 "empty column" 0. (Dp_info.Channel.row c 0).(2)

let test_data_processing_inequality () =
  let g = Dp_rng.Prng.create 1 in
  let ch = base_channel () in
  let i0 = Dp_info.Channel.mutual_information ch in
  let e0 = Dp_info.Channel.dp_epsilon ch ~neighbors in
  for _ = 1 to 50 do
    (* random stochastic post-processor *)
    let post =
      Array.init 3 (fun _ -> Dp_rng.Sampler.dirichlet ~alpha:[| 1.; 1.; 1. |] g)
    in
    let c = Dp_info.Channel_ops.cascade ch ~post in
    Alcotest.(check bool) "DPI" true
      (Dp_info.Channel.mutual_information c <= i0 +. 1e-9);
    Alcotest.(check bool) "DP invariance" true
      (Dp_info.Channel.dp_epsilon c ~neighbors <= e0 +. 1e-9)
  done

let test_total_eraser () =
  let ch = base_channel () in
  let c =
    Dp_info.Channel_ops.cascade ch
      ~post:(Dp_info.Channel_ops.deterministic_post ~outputs:3 (fun _ -> 1))
  in
  check_close ~tol:1e-12 "no information" 0. (Dp_info.Channel.mutual_information c);
  check_close ~tol:1e-9 "no privacy loss" 0.
    (Dp_info.Channel.dp_epsilon c ~neighbors)

let test_product_channel () =
  let ch = base_channel () in
  let p = Dp_info.Channel_ops.product ch ch in
  Alcotest.(check int) "output alphabet" 9 (Dp_info.Channel.n_outputs p);
  (* epsilon adds exactly for independent copies *)
  check_close ~tol:1e-9 "eps additive"
    (2. *. Dp_info.Channel.dp_epsilon ch ~neighbors)
    (Dp_info.Channel.dp_epsilon p ~neighbors);
  (* information subadditive *)
  Alcotest.(check bool) "I subadditive" true
    (Dp_info.Channel.mutual_information p
    <= (2. *. Dp_info.Channel.mutual_information ch) +. 1e-9);
  (* and at least the single-copy information *)
  Alcotest.(check bool) "I superadditive vs one copy" true
    (Dp_info.Channel.mutual_information p
    >= Dp_info.Channel.mutual_information ch -. 1e-9)

let test_post_constructors () =
  (try
     ignore (Dp_info.Channel_ops.deterministic_post ~outputs:2 (fun _ -> 5));
     Alcotest.fail "accepted function leaving alphabet"
   with Invalid_argument _ -> ());
  let p = Dp_info.Channel_ops.binary_symmetric_post ~outputs:4 ~flip:0.75 in
  (* flip = 3/4 over 4 outputs is the uniform eraser *)
  Array.iter (fun row -> Array.iter (fun v -> check_close "uniform" 0.25 v) row) p

(* ------------------------------------------------------------------ *)

let test_group_privacy () =
  let b = Dp_mechanism.Privacy.group ~k:3 (Dp_mechanism.Privacy.pure 0.5) in
  check_close "eps scales" 1.5 b.Dp_mechanism.Privacy.epsilon;
  check_close "delta stays 0" 0. b.Dp_mechanism.Privacy.delta;
  let b =
    Dp_mechanism.Privacy.group ~k:2
      (Dp_mechanism.Privacy.approx ~epsilon:1. ~delta:1e-6)
  in
  check_close ~tol:1e-9 "delta scales" (2. *. exp 1. *. 1e-6)
    b.Dp_mechanism.Privacy.delta;
  (* group of 1 is the identity *)
  let b0 = Dp_mechanism.Privacy.approx ~epsilon:0.7 ~delta:1e-5 in
  Alcotest.(check bool) "identity" true (Dp_mechanism.Privacy.group ~k:1 b0 = b0);
  (* consistency with the channel: hamming-2 neighbours have at most
     2*eps divergence (checked on the exact Gibbs channel) *)
  let gc =
    Dp_pac_bayes.Gibbs_channel.build ~universe_probs:[| 0.5; 0.5 |] ~n:4
      ~predictors:[| 0; 1 |] ~beta:4.
      ~loss:(fun j z -> if j = z then 0. else 1.)
      ()
  in
  let eps1 = Dp_pac_bayes.Gibbs_channel.dp_epsilon gc in
  (* all pairs at hamming distance exactly 2 *)
  let worst2 = ref 0. in
  let samples = gc.Dp_pac_bayes.Gibbs_channel.samples in
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          if Dp_dataset.Neighbors.hamming_distance si sj = 2 then begin
            let ri = Dp_info.Channel.row gc.Dp_pac_bayes.Gibbs_channel.channel i in
            let rj = Dp_info.Channel.row gc.Dp_pac_bayes.Gibbs_channel.channel j in
            worst2 := Float.max !worst2 (Dp_info.Entropy.max_divergence ri rj)
          end)
        samples)
    samples;
  Alcotest.(check bool)
    (Printf.sprintf "group privacy %.4f <= 2 x %.4f" !worst2 eps1)
    true
    (!worst2 <= (2. *. eps1) +. 1e-9)

(* ------------------------------------------------------------------ *)

let multiclass_data seed n =
  let g = Dp_rng.Prng.create seed in
  (* three classes at 120-degree separated means in 2-D *)
  let means =
    [| [| 0.8; 0. |]; [| -0.4; 0.7 |]; [| -0.4; -0.7 |] |]
  in
  let features = Array.make n [||] and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = i mod 3 in
    features.(i) <-
      Dp_linalg.Vec.project_l2_ball ~radius:1.
        [|
          means.(c).(0) +. Dp_rng.Sampler.gaussian ~mean:0. ~std:0.25 g;
          means.(c).(1) +. Dp_rng.Sampler.gaussian ~mean:0. ~std:0.25 g;
        |];
    labels.(i) <- c
  done;
  (features, labels)

let test_multiclass_learns () =
  let features, labels = multiclass_data 2 600 in
  let m =
    Dp_learn.Multiclass.train ~classes:3 ~loss:Dp_learn.Loss_fn.logistic
      ~features ~labels ()
  in
  let acc = Dp_learn.Multiclass.accuracy m ~features ~labels in
  Alcotest.(check bool) (Printf.sprintf "acc %.3f" acc) true (acc > 0.9);
  (* prediction consistent with argmax *)
  let x = features.(0) in
  let scores = Array.map (fun th -> Dp_linalg.Vec.dot th x) m.Dp_learn.Multiclass.thetas in
  Alcotest.(check int) "argmax" (Dp_linalg.Vec.argmax scores)
    (Dp_learn.Multiclass.predict m x)

let test_multiclass_private () =
  let g = Dp_rng.Prng.create 3 in
  let features, labels = multiclass_data 4 3000 in
  let m, budget =
    Dp_learn.Multiclass.train_private_output ~epsilon:9. ~classes:3
      ~loss:Dp_learn.Loss_fn.logistic ~features ~labels g
  in
  check_close "budget" 9. budget.Dp_mechanism.Privacy.epsilon;
  let acc = Dp_learn.Multiclass.accuracy m ~features ~labels in
  Alcotest.(check bool) (Printf.sprintf "private acc %.3f" acc) true (acc > 0.8);
  (* bad labels rejected *)
  try
    ignore
      (Dp_learn.Multiclass.train ~classes:2 ~loss:Dp_learn.Loss_fn.logistic
         ~features ~labels ());
    Alcotest.fail "accepted out-of-range labels"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"cascade preserves stochasticity" ~count:100
      (int_range 0 10_000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let post =
          Array.init 3 (fun _ -> Dp_rng.Sampler.dirichlet ~alpha:[| 0.5; 0.5; 0.5 |] g)
        in
        let c = Dp_info.Channel_ops.cascade (base_channel ()) ~post in
        let ok = ref true in
        for i = 0 to 2 do
          if
            not
              (Dp_math.Numeric.approx_equal ~rel_tol:1e-9 1.
                 (Dp_math.Summation.sum (Dp_info.Channel.row c i)))
          then ok := false
        done;
        !ok);
    Test.make ~name:"group privacy monotone in k" ~count:100
      (pair (float_range 0. 2.) (int_range 1 10))
      (fun (eps, k) ->
        let b = Dp_mechanism.Privacy.pure eps in
        (Dp_mechanism.Privacy.group ~k b).Dp_mechanism.Privacy.epsilon
        <= (Dp_mechanism.Privacy.group ~k:(k + 1) b).Dp_mechanism.Privacy.epsilon
           +. 1e-12);
    Test.make ~name:"multiclass predict in range" ~count:50
      (int_range 0 1000)
      (fun seed ->
        let features, labels = multiclass_data seed 60 in
        let m =
          Dp_learn.Multiclass.train ~classes:3 ~loss:Dp_learn.Loss_fn.logistic
            ~features ~labels ()
        in
        Array.for_all
          (fun x ->
            let p = Dp_learn.Multiclass.predict m x in
            p >= 0 && p < 3)
          features);
  ]

let () =
  Alcotest.run "dp_postprocessing"
    [
      ( "channel ops",
        [
          Alcotest.test_case "cascade shapes" `Quick test_cascade_shapes;
          Alcotest.test_case "data-processing inequality" `Quick
            test_data_processing_inequality;
          Alcotest.test_case "total eraser" `Quick test_total_eraser;
          Alcotest.test_case "product channel" `Quick test_product_channel;
          Alcotest.test_case "post constructors" `Quick test_post_constructors;
        ] );
      ("group privacy", [ Alcotest.test_case "scaling" `Quick test_group_privacy ]);
      ( "multiclass",
        [
          Alcotest.test_case "learns" `Quick test_multiclass_learns;
          Alcotest.test_case "private" `Slow test_multiclass_private;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
