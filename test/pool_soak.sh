#!/bin/sh
# Chaos soak for the supervised worker pool: concurrent retrying clients
# against a multi-process `dpkit serve --workers N` while random workers
# AND the coordinator are kill -9'd mid-wave. End-to-end invariants:
#   - every client reaches a final reply for every request (exit 0),
#     retrying through worker deaths, the coordinator's death window,
#     and fenced restarts;
#   - the lease arbitration never over-grants: at every crash point the
#     merged ledger satisfies spent + outstanding <= global epsilon
#     (`dpkit pool replay` exits 0);
#   - crash-merge recovery is deterministic: the pool-merge report a
#     restarting coordinator prints is bit-identical (hex floats) to a
#     fault-free offline `dpkit pool replay` of the same shard journals
#     and grant WAL;
#   - no noise value is ever released twice across any worker life: the
#     set of fresh (cache=miss) released values over all workers, lives
#     and coordinator generations is duplicate-free;
#   - SIGTERM drains gracefully: exit 0, a merged metrics snapshot that
#     passes `dpkit stats --check`, and a final invariant-clean replay.
#
# POOL_KILL_MODE selects the kill matrix entry: worker | coordinator |
# both (default both — CI runs all three).
set -eu

DPKIT="$1"
KILL_MODE="${POOL_KILL_MODE:-both}"
J="pool_soak.wal"
M="pool_soak.metrics"
LOG1="pool_srv1.log"
LOG2="pool_srv2.log"
rm -f "$J" "$J".shard* "$J".grants* "$M" "$M".shard* "$LOG1" "$LOG2" \
  pool_srv_dup.log pool_cli_*.out pool_replay_*.txt

client() { # client PORT JITTER_SEED
  "$DPKIT" client --port "$1" --attempts 20 --backoff 0.02 --backoff-cap 0.4 \
    --timeout 5 --jitter-seed "$2"
}

wait_listening() { # wait_listening LOGFILE
  i=0
  while [ $i -lt 200 ]; do
    if grep -q "listening port=" "$1" 2>/dev/null; then return 0; fi
    i=$((i + 1))
    sleep 0.05
  done
  echo "pool never came up:"; cat "$1"; exit 1
}

worker_pids() { # worker_pids COORD_PID
  ps -ef | awk -v p="$1" '$3 == p { print $2 }'
}

wait_gone() { # wait_gone PID...
  i=0
  while [ $i -lt 100 ]; do
    alive=0
    for p in "$@"; do
      if kill -0 "$p" 2>/dev/null; then alive=1; fi
    done
    [ "$alive" -eq 0 ] && return 0
    i=$((i + 1))
    sleep 0.05
  done
  echo "processes still alive after 5s: $*"; exit 1
}

# --- pool 1: 3 workers on an explicit port (the restart reclaims it) ---
PORT=$((24000 + $$ % 3000))
CPID=""
for try in 0 1 2 3 4; do
  CAND=$((PORT + try))
  "$DPKIT" serve --tcp "$CAND" --workers 3 --journal "$J" >"$LOG1" 2>&1 &
  CPID=$!
  sleep 0.3
  if grep -q "listening port=" "$LOG1" 2>/dev/null; then
    PORT=$CAND
    break
  fi
  wait "$CPID" 2>/dev/null || true
  CPID=""
done
[ -n "$CPID" ] || { echo "could not bind any candidate port"; exit 1; }
wait_listening "$LOG1"
grep -q "listening port=$PORT workers=3" "$LOG1" || {
  echo "pool banner wrong:"; cat "$LOG1"; exit 1; }

# --- generation fencing: a second coordinator on the same journal must
# refuse to serve while this generation holds the WAL lock ---------------
set +e
"$DPKIT" serve --tcp $((PORT + 7)) --workers 3 --journal "$J" \
  >pool_srv_dup.log 2>&1
DUPCODE=$?
set -e
[ "$DUPCODE" -ne 0 ] || {
  echo "duplicate coordinator was allowed to serve:"; cat pool_srv_dup.log
  exit 1; }
grep -q "refusing to serve" pool_srv_dup.log || {
  echo "duplicate coordinator died without the lock refusal:"
  cat pool_srv_dup.log; exit 1; }

printf 'register demo rows=400 eps=8 default-eps=0.01\n' \
  | client "$PORT" 100 > pool_cli_reg.out
grep -q 'ok registered name=demo' pool_cli_reg.out || {
  echo "registration failed:"; cat pool_cli_reg.out; exit 1; }

# --- wave 1: concurrent clients across all workers ---------------------
# Every query is mean(income) at a unique eps, so every fresh answer is
# a unique Laplace draw; connections round-robin over the shards.
W1PIDS=""
for i in 1 2 3 4; do
  printf 'query demo mean(income) eps=0.0%d1\nquery demo mean(income) eps=0.0%d2\n' \
    "$i" "$i" | client "$PORT" "$i" > "pool_cli_w1_$i.out" &
  W1PIDS="$W1PIDS $!"
done
for p in $W1PIDS; do wait "$p" || true; done
for i in 1 2 3 4; do
  [ "$(grep -c '^ok seq=' "pool_cli_w1_$i.out")" -eq 2 ] || {
    echo "wave-1 client $i missing answers:"; cat "pool_cli_w1_$i.out"; exit 1; }
done

# --- wave 2: kill -9 a random worker mid-wave --------------------------
if [ "$KILL_MODE" = "worker" ] || [ "$KILL_MODE" = "both" ]; then
  W2PIDS=""
  for i in 1 2 3; do
    printf 'query demo mean(income) eps=0.1%d1\nquery demo mean(income) eps=0.1%d2\nquery demo mean(income) eps=0.1%d3\n' \
      "$i" "$i" "$i" | client "$PORT" "$((10 + i))" > "pool_cli_w2_$i.out" &
    W2PIDS="$W2PIDS $!"
  done
  sleep 0.2
  VICTIM=$(worker_pids "$CPID" | awk -v n="$(($$ % 3 + 1))" 'NR == n')
  [ -n "$VICTIM" ] || VICTIM=$(worker_pids "$CPID" | head -1)
  kill -9 "$VICTIM" 2>/dev/null || true
  for p in $W2PIDS; do
    wait "$p" || {
      echo "a wave-2 client gave up across the worker kill:"
      cat pool_cli_w2_*.out; exit 1; }
  done
  for i in 1 2 3; do
    [ "$(grep -c '^ok seq=' "pool_cli_w2_$i.out")" -eq 3 ] || {
      echo "wave-2 client $i missing answers:"; cat "pool_cli_w2_$i.out"; exit 1; }
  done
  # the supervisor replayed the shard journal and restarted it fenced
  i=0
  while [ $i -lt 100 ]; do
    if grep -q "restarted token=" "$LOG1" 2>/dev/null; then break; fi
    i=$((i + 1)); sleep 0.05
  done
  grep -q "worker shard=[0-9]* restarted token=" "$LOG1" || {
    echo "killed worker never restarted:"; cat "$LOG1"; exit 1; }
fi

# --- wave 3: kill -9 the coordinator mid-wave --------------------------
if [ "$KILL_MODE" = "coordinator" ] || [ "$KILL_MODE" = "both" ]; then
  W3PIDS=""
  for i in 1 2; do
    printf 'query demo mean(income) eps=0.2%d1\nquery demo mean(income) eps=0.2%d2\n' \
      "$i" "$i" | client "$PORT" "$((20 + i))" > "pool_cli_w3_$i.out" &
    W3PIDS="$W3PIDS $!"
  done
  sleep 0.2
  WPIDS=$(worker_pids "$CPID")
  kill -9 "$CPID" 2>/dev/null || true
  wait "$CPID" 2>/dev/null || true
  # orphaned workers detect the reparenting and exit on their own
  # shellcheck disable=SC2086
  wait_gone $WPIDS

  # the offline merge of the crashed state, before anything rewrites it
  "$DPKIT" pool replay --journal "$J" --workers 3 > pool_replay_crash.txt || {
    echo "lease invariant violated at the coordinator crash point:"
    cat pool_replay_crash.txt; exit 1; }

  "$DPKIT" serve --tcp "$PORT" --workers 3 --journal "$J" --metrics "$M" \
    >"$LOG2" 2>&1 &
  CPID=$!
  wait_listening "$LOG2"

  # crash-merge recovery must print the same merged ledger bit-for-bit
  grep '^pool-merge' "$LOG2" > pool_replay_live.txt
  cmp -s pool_replay_crash.txt pool_replay_live.txt || {
    echo "live recovery merge differs from offline replay:"
    diff pool_replay_crash.txt pool_replay_live.txt || true; exit 1; }

  for p in $W3PIDS; do
    wait "$p" || {
      echo "a wave-3 client gave up across the coordinator kill:"
      cat pool_cli_w3_*.out; exit 1; }
  done
  for i in 1 2; do
    [ "$(grep -c '^ok seq=' "pool_cli_w3_$i.out")" -eq 2 ] || {
      echo "wave-3 client $i missing answers:"; cat "pool_cli_w3_$i.out"; exit 1; }
  done
  DRAINLOG="$LOG2"
else
  DRAINLOG="$LOG1"
fi

# --- wave 4: the recovered pool still serves and still arbitrates ------
printf 'query demo mean(income) eps=0.311\nquery demo mean(income) eps=0.312\nreport demo\n' \
  | client "$PORT" 40 > pool_cli_w4.out
[ "$(grep -c '^ok seq=' pool_cli_w4.out)" -eq 2 ] || {
  echo "post-recovery queries failed:"; cat pool_cli_w4.out; exit 1; }

# --- no noise value is ever released twice -----------------------------
# Fresh (cache=miss) values must be unique across every worker, every
# worker life, and both coordinator generations; cache=hit repeats are
# post-processing and exempt.
DUPES=$(sed -n 's/^ok seq=[0-9]* value=\([^ ]*\).*cache=miss.*/\1/p' pool_cli_*.out | sort | uniq -d)
[ -z "$DUPES" ] || { echo "noise value released twice: $DUPES"; exit 1; }

# --- graceful drain ----------------------------------------------------
kill -TERM "$CPID"
set +e
wait "$CPID"
CODE=$?
set -e
[ "$CODE" -eq 0 ] || { echo "drain exited $CODE, expected 0:"; cat "$DRAINLOG"; exit 1; }
grep -q 'drained' "$DRAINLOG" || { echo "no drain marker:"; cat "$DRAINLOG"; exit 1; }
if [ "$KILL_MODE" = "coordinator" ] || [ "$KILL_MODE" = "both" ]; then
  [ -s "$M" ] || { echo "merged metrics snapshot missing"; exit 1; }
  "$DPKIT" stats --check "$M" >/dev/null || {
    echo "merged metrics failed stats --check"; exit 1; }
  grep -q 'pool_leases_granted' "$M" || {
    echo "pool counters missing from merged metrics:"; cat "$M"; exit 1; }
fi

# --- the drained state replays clean and deterministically -------------
"$DPKIT" pool replay --journal "$J" --workers 3 > pool_replay_final1.txt || {
  echo "final replay found a violated invariant:"; cat pool_replay_final1.txt; exit 1; }
"$DPKIT" pool replay --journal "$J" --workers 3 > pool_replay_final2.txt
cmp -s pool_replay_final1.txt pool_replay_final2.txt || {
  echo "offline replay is not deterministic:"; exit 1; }
grep -q 'invariant=ok' pool_replay_final1.txt || {
  echo "merged ledger invariant violated:"; cat pool_replay_final1.txt; exit 1; }

rm -f "$J" "$J".shard* "$J".grants* "$M" "$M".shard* "$LOG1" "$LOG2" \
  pool_srv_dup.log pool_cli_*.out pool_replay_*.txt
