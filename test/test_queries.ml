(* Tests for propose-test-release and hierarchical range queries. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* PTR *)

let test_distance_to_instability () =
  Alcotest.(check int) "immediate" 0
    (Dp_mechanism.Propose_test_release.distance_to_instability
       ~is_stable:(fun _ -> false));
  Alcotest.(check int) "at 5" 5
    (Dp_mechanism.Propose_test_release.distance_to_instability
       ~is_stable:(fun k -> k < 5))

let test_ptr_release_scalar () =
  let g = Dp_rng.Prng.create 1 in
  (* far from instability: almost always releases, near the value *)
  let released = ref 0 and sum_err = ref 0. in
  for _ = 1 to 500 do
    match
      Dp_mechanism.Propose_test_release.release_scalar ~epsilon:1. ~delta:1e-6
        ~distance:100 ~local_bound:0.5 ~value:42. g
    with
    | Dp_mechanism.Propose_test_release.Released v ->
        incr released;
        sum_err := !sum_err +. Float.abs (v -. 42.)
    | Dp_mechanism.Propose_test_release.Refused -> ()
  done;
  Alcotest.(check bool) "almost always releases" true (!released > 495);
  Alcotest.(check bool) "small noise" true
    (!sum_err /. float_of_int !released < 2.);
  (* at distance 0: almost always refuses *)
  let refused = ref 0 in
  for _ = 1 to 500 do
    if
      Dp_mechanism.Propose_test_release.release_scalar ~epsilon:1. ~delta:1e-6
        ~distance:0 ~local_bound:0.5 ~value:42. g
      = Dp_mechanism.Propose_test_release.Refused
    then incr refused
  done;
  Alcotest.(check bool) "refuses near instability" true (!refused > 495)

let test_ptr_median_utility () =
  let g = Dp_rng.Prng.create 2 in
  let xs =
    Array.init 201 (fun _ -> 500. +. Dp_rng.Sampler.gaussian ~mean:0. ~std:20. g)
  in
  let truth = Dp_stats.Describe.median xs in
  let errs = ref [] and refusals = ref 0 in
  for _ = 1 to 300 do
    match
      Dp_mechanism.Propose_test_release.private_median ~epsilon:2. ~delta:1e-6
        ~lo:0. ~hi:1000. xs g
    with
    | Dp_mechanism.Propose_test_release.Released v ->
        errs := Float.abs (v -. truth) :: !errs
    | Dp_mechanism.Propose_test_release.Refused -> incr refusals
  done;
  Alcotest.(check bool) "mostly releases" true (!refusals < 30);
  let med = Dp_stats.Describe.median (Array.of_list !errs) in
  Alcotest.(check bool) (Printf.sprintf "median err %.2f" med) true (med < 10.)

(* ------------------------------------------------------------------ *)
(* Range queries *)

let test_range_exact_at_huge_epsilon () =
  let g = Dp_rng.Prng.create 3 in
  let counts = Array.init 37 (fun i -> i mod 5) in
  (* huge epsilon: both strategies ~exact for every range *)
  let flat = Dp_mechanism.Range_queries.flat_release ~epsilon:1e9 counts g in
  let hier = Dp_mechanism.Range_queries.hierarchical_release ~epsilon:1e9 counts g in
  for _ = 1 to 200 do
    let lo = Dp_rng.Prng.int g 37 in
    let hi = lo + Dp_rng.Prng.int g (37 - lo) in
    let truth = float_of_int (Dp_mechanism.Range_queries.true_range counts ~lo ~hi) in
    check_close ~tol:1e-4
      (Printf.sprintf "flat [%d,%d]" lo hi)
      truth
      (Dp_mechanism.Range_queries.range_query flat ~lo ~hi);
    check_close ~tol:1e-4
      (Printf.sprintf "hier [%d,%d]" lo hi)
      truth
      (Dp_mechanism.Range_queries.range_query hier ~lo ~hi)
  done

let test_range_error_scaling () =
  let g = Dp_rng.Prng.create 4 in
  let m = 512 in
  let counts = Array.make m 3 in
  let reps = 30 in
  let rmse_of release len =
    let acc = ref 0. and cnt = ref 0 in
    for _ = 1 to reps do
      let t = release () in
      for _ = 1 to 20 do
        let lo = Dp_rng.Prng.int g (m - len + 1) in
        let hi = lo + len - 1 in
        let truth = float_of_int (Dp_mechanism.Range_queries.true_range counts ~lo ~hi) in
        acc := !acc +. Dp_math.Numeric.sq (Dp_mechanism.Range_queries.range_query t ~lo ~hi -. truth);
        incr cnt
      done
    done;
    sqrt (!acc /. float_of_int !cnt)
  in
  let flat () = Dp_mechanism.Range_queries.flat_release ~epsilon:1. counts g in
  let hier () = Dp_mechanism.Range_queries.hierarchical_release ~epsilon:1. counts g in
  (* flat singleton error matches the analytic law within 30% *)
  let f1 = rmse_of flat 1 in
  let analytic = Dp_mechanism.Range_queries.expected_flat_std ~epsilon:1. ~range_len:1 in
  Alcotest.(check bool)
    (Printf.sprintf "flat singleton %.2f ~ %.2f" f1 analytic)
    true
    (Float.abs (f1 -. analytic) < 0.3 *. analytic);
  (* hierarchy beats flat on the full-domain range *)
  let ff = rmse_of flat m and hf = rmse_of hier m in
  Alcotest.(check bool)
    (Printf.sprintf "full range: hier %.1f < flat %.1f" hf ff)
    true (hf < ff)

let test_range_decomposition_counts () =
  (* the dyadic decomposition must produce few nodes: query the whole
     domain minus endpoints and check the noise variance implied is
     far below flat's *)
  let g = Dp_rng.Prng.create 5 in
  let m = 256 in
  let counts = Array.make m 0 in
  let errs =
    Array.init 300 (fun _ ->
        let t =
          Dp_mechanism.Range_queries.hierarchical_release ~epsilon:1. counts g
        in
        Dp_mechanism.Range_queries.range_query t ~lo:1 ~hi:(m - 2))
  in
  let std = Dp_stats.Describe.std errs in
  (* with <= ~2 log m nodes of scale 2*9, std <= sqrt(16)*sqrt(2)*18 ~ 102;
     flat would be sqrt(254)*sqrt(2)*2 ~ 45... compare against the naive
     worst: 254 nodes at scale 18 would give ~ 405 *)
  Alcotest.(check bool) (Printf.sprintf "std %.1f reasonable" std) true
    (std < 150.)

let test_range_validation () =
  let g = Dp_rng.Prng.create 6 in
  let t = Dp_mechanism.Range_queries.flat_release ~epsilon:1. [| 1; 2; 3 |] g in
  Alcotest.(check int) "domain" 3 (Dp_mechanism.Range_queries.domain_size t);
  check_close "budget" 1. (Dp_mechanism.Range_queries.budget t).Dp_mechanism.Privacy.epsilon;
  (try
     ignore (Dp_mechanism.Range_queries.range_query t ~lo:2 ~hi:1);
     Alcotest.fail "accepted inverted range"
   with Invalid_argument _ -> ());
  try
    ignore (Dp_mechanism.Range_queries.range_query t ~lo:0 ~hi:3);
    Alcotest.fail "accepted out-of-domain range"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"hier answers every range finitely" ~count:50
      (pair (int_range 0 1000) (int_range 1 100))
      (fun (seed, m) ->
        let g = Dp_rng.Prng.create seed in
        let counts = Array.init m (fun i -> i mod 3) in
        let t =
          Dp_mechanism.Range_queries.hierarchical_release ~epsilon:1. counts g
        in
        let ok = ref true in
        for lo = 0 to m - 1 do
          let hi = Stdlib.min (m - 1) (lo + 7) in
          if not (Float.is_finite (Dp_mechanism.Range_queries.range_query t ~lo ~hi))
          then ok := false
        done;
        !ok);
    Test.make ~name:"ptr outcome is well formed" ~count:100
      (pair (int_range 0 1000) (int_range 0 50))
      (fun (seed, distance) ->
        let g = Dp_rng.Prng.create seed in
        match
          Dp_mechanism.Propose_test_release.release_scalar ~epsilon:1.
            ~delta:1e-5 ~distance ~local_bound:1. ~value:0. g
        with
        | Dp_mechanism.Propose_test_release.Released v -> Float.is_finite v
        | Dp_mechanism.Propose_test_release.Refused -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Engine query language: the canonical form is a true normal form. *)

module Query = Dp_engine.Query

(* Dyadic rationals survive the %.12g canonical printing exactly, so
   structural equality is the right round-trip check. *)
let dyadic = QCheck.Gen.map (fun k -> float_of_int k /. 16.) (QCheck.Gen.int_range (-16000) 16000)

let column_gen = QCheck.Gen.oneofl [ "age"; "income"; "score"; "x1" ]

let query_gen =
  let open QCheck.Gen in
  let cmp = oneofl [ Query.Le; Query.Lt; Query.Ge; Query.Gt ] in
  frequency
    [
      (1, return (Query.Count None));
      ( 2,
        map3
          (fun column op threshold ->
            Query.Count (Some { Query.column; op; threshold }))
          column_gen cmp dyadic );
      (1, map (fun column -> Query.Sum { column }) column_gen);
      (1, map (fun column -> Query.Mean { column }) column_gen);
      ( 1,
        map2
          (fun column bins -> Query.Histogram { column; bins })
          column_gen (int_range 1 1000) );
      ( 1,
        map2
          (fun column k ->
            Query.Quantile { column; q = float_of_int k /. 256. })
          column_gen (int_range 0 256) );
      ( 2,
        map2
          (fun column pts ->
            Query.Cdf
              {
                column;
                points = Array.of_list (List.sort_uniq compare pts);
              })
          column_gen
          (list_size (int_range 1 6) dyadic) );
    ]

let query_roundtrip_tests =
  let open QCheck in
  [
    Test.make ~name:"parse (normalize q) = Ok q" ~count:500
      (make ~print:Query.normalize query_gen)
      (fun q -> Query.parse (Query.normalize q) = Ok q);
    Test.make ~name:"unsorted duplicated cdf points canonicalize" ~count:200
      (make
         ~print:(fun (c, pts) ->
           c ^ ": " ^ String.concat "," (List.map string_of_float pts))
         QCheck.Gen.(pair column_gen (list_size (int_range 1 5) dyadic)))
      (fun (c, pts) ->
        (* feed duplicates in arbitrary order through the surface
           syntax; the parsed query must already be canonical *)
        let s =
          Printf.sprintf "cdf(%s,%s)" c
            (String.concat ","
               (List.map (Printf.sprintf "%.12g") (pts @ List.rev pts)))
        in
        match Query.parse s with
        | Error _ -> false
        | Ok q -> (
            Query.parse (Query.normalize q) = Ok q
            &&
            match q with
            | Query.Cdf { points; _ } ->
                let l = Array.to_list points in
                l = List.sort_uniq compare l
            | _ -> false));
  ]

let () =
  Alcotest.run "dp_queries"
    [
      ( "propose-test-release",
        [
          Alcotest.test_case "distance" `Quick test_distance_to_instability;
          Alcotest.test_case "release scalar" `Quick test_ptr_release_scalar;
          Alcotest.test_case "median utility" `Quick test_ptr_median_utility;
        ] );
      ( "range queries",
        [
          Alcotest.test_case "exact at huge epsilon" `Quick
            test_range_exact_at_huge_epsilon;
          Alcotest.test_case "error scaling" `Slow test_range_error_scaling;
          Alcotest.test_case "decomposition" `Quick
            test_range_decomposition_counts;
          Alcotest.test_case "validation" `Quick test_range_validation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ( "query normal form",
        List.map QCheck_alcotest.to_alcotest query_roundtrip_tests );
    ]
