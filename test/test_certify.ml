(* Statistical DP certification: seed-deterministic verdicts for the
   planner faces and the train face, deliberate-breakage detection
   (half-scale noise, seeded-restart noise reuse), and the
   Clopper–Pearson / likelihood-ratio machinery underneath. Every draw
   is seeded, so each assertion here is exact, not probabilistic. *)

open Dp_certify

let seed = 20120330

let source_exn = function
  | Ok s -> s
  | Error m -> Alcotest.failf "source: %s" m

let query s =
  match Dp_engine.Query.parse s with
  | Ok q -> q
  | Error m -> Alcotest.failf "query: %s" m

let run_face ?(trials = 500) ?(eps = 1.0) ?backend ?break_ q =
  let src =
    source_exn (Certify.of_query ?backend ?break_ ~seed ~eps (query q))
  in
  Certify.run ~trials src (Dp_rng.Prng.create seed)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------------------------------ *)

let test_laplace_count_certified () =
  let (r : Certify.report) = run_face "count(age>40)" in
  Alcotest.(check bool) "count certified" true r.ok;
  Alcotest.(check int) "all four checks ran" 4 (List.length r.checks);
  let (r : Certify.report) = run_face "sum(income)" in
  Alcotest.(check bool) "sum certified" true r.ok;
  Alcotest.(check int) "trials recorded" 500 r.trials;
  Alcotest.(check bool) "machine-readable ok verdict" true
    (starts_with "ok certified source=sum(income) trials=500"
       (Certify.verdict_line r))

let test_vector_and_quantile_faces () =
  let (r : Certify.report) = run_face "histogram(age,8)" in
  Alcotest.(check bool) "histogram certified" true r.ok;
  let (r : Certify.report) = run_face "quantile(income,0.5)" in
  Alcotest.(check bool) "quantile certified" true r.ok

let test_rdp_count_certified () =
  let (r : Certify.report) = run_face ~backend:(`Rdp 1e-6) "count(age>40)" in
  Alcotest.(check bool) "discrete gaussian count certified" true r.ok;
  Alcotest.(check bool) "rdp claim carries a delta" true
    (r.delta_claimed > 0.)

let test_half_scale_detected () =
  List.iter
    (fun q ->
      let (r : Certify.report) = run_face ~break_:`Half_scale q in
      Alcotest.(check bool) (q ^ " flagged") false r.ok;
      Alcotest.(check bool) (q ^ " err verdict") true
        (starts_with "err certify-failed" (Certify.verdict_line r)))
    [ "count(age>40)"; "sum(income)" ]

let test_train_face () =
  let honest =
    source_exn (Certify.gibbs_source ~seed ~eps:0.5 ())
  in
  let (r : Certify.report) =
    Certify.run ~trials:400 honest (Dp_rng.Prng.create seed)
  in
  Alcotest.(check bool) "train certified" true r.ok;
  let broken =
    source_exn (Certify.gibbs_source ~break_:`Half_scale ~seed ~eps:0.5 ())
  in
  let (r : Certify.report) =
    Certify.run ~trials:400 broken (Dp_rng.Prng.create seed)
  in
  Alcotest.(check bool) "half-scale train flagged" false r.ok

let test_recovery_reuse_detected () =
  let src = source_exn (Certify.of_query ~seed ~eps:1.0 (query "count(age>40)")) in
  let s1 = Certify.collect ~trials:200 src (Dp_rng.Prng.create 7) in
  (* a seeded restart replays the identical noise stream *)
  let s2 = Certify.collect ~trials:200 src (Dp_rng.Prng.create 7) in
  let r =
    Certify.recovery_check ~bucket:Certify.iround ~pre:s1.Certify.a
      ~post:s2.Certify.a ()
  in
  Alcotest.(check bool) "reuse detected" true r.Certify.reuse;
  Alcotest.(check bool) "recovery refused" false r.Certify.recovery_ok;
  Alcotest.(check bool) "err recovery verdict" true
    (starts_with "err certify-failed recovery" (Certify.recovery_line r));
  (* a re-keyed restart draws fresh noise from the same distribution *)
  let s3 = Certify.collect ~trials:200 src (Dp_rng.Prng.create 8) in
  let r =
    Certify.recovery_check ~bucket:Certify.iround ~pre:s1.Certify.a
      ~post:s3.Certify.a ()
  in
  Alcotest.(check bool) "fresh noise accepted" true r.Certify.recovery_ok;
  Alcotest.(check bool) "ok recovery verdict" true
    (starts_with "ok certified recovery" (Certify.recovery_line r))

let test_recovery_drift_detected () =
  (* a restart that comes back with the wrong noise scale has a
     different output distribution — the two-sample leg must refuse *)
  let src = source_exn (Certify.of_query ~seed ~eps:1.0 (query "count(age>40)")) in
  let broken =
    source_exn
      (Certify.of_query ~break_:`Half_scale ~seed ~eps:1.0
         (query "count(age>40)"))
  in
  let pre = Certify.collect ~trials:400 src (Dp_rng.Prng.create 7) in
  let post = Certify.collect ~trials:400 broken (Dp_rng.Prng.create 8) in
  let r =
    Certify.recovery_check ~bucket:Certify.iround ~pre:pre.Certify.a
      ~post:post.Certify.a ()
  in
  Alcotest.(check bool) "drift detected" true r.Certify.drifted;
  Alcotest.(check bool) "recovery refused" false r.Certify.recovery_ok

let test_clopper_pearson () =
  let lo, hi = Binomial.clopper_pearson ~k:0 ~n:50 ~alpha:0.05 in
  Alcotest.(check (float 0.)) "k=0 lower is 0" 0. lo;
  Alcotest.(check bool) "k=0 upper positive" true (hi > 0. && hi < 0.1);
  let lo, hi = Binomial.clopper_pearson ~k:50 ~n:50 ~alpha:0.05 in
  Alcotest.(check (float 0.)) "k=n upper is 1" 1. hi;
  Alcotest.(check bool) "k=n lower below 1" true (lo < 1. && lo > 0.9);
  (* the textbook interval for 5 successes in 10 trials *)
  let lo, hi = Binomial.clopper_pearson ~k:5 ~n:10 ~alpha:0.05 in
  Alcotest.(check bool) "contains the point estimate" true
    (lo < 0.5 && 0.5 < hi);
  Alcotest.(check (float 1e-3)) "known lower" 0.1871 lo;
  Alcotest.(check (float 1e-3)) "known upper" 0.8129 hi

let test_lr_flags_blatant_violation () =
  (* disjoint supports: the likelihood ratio is infinite, so any small
     claimed eps must be rejected with confidence *)
  let s1 = Array.make 300 0. and s2 = Array.make 300 1. in
  let t = Lr_test.run ~eps:0.5 ~bucket:Certify.iround s1 s2 in
  Alcotest.(check bool) "violation found" false t.Lr_test.ok;
  Alcotest.(check bool) "eps lower bound beats the claim" true
    (t.Lr_test.eps_lb > 0.5);
  Alcotest.(check bool) "at least one outcome flagged" true
    (t.Lr_test.violations >= 1)

let () =
  Alcotest.run "dp_certify"
    [
      ( "faces",
        [
          Alcotest.test_case "laplace count+sum certified" `Quick
            test_laplace_count_certified;
          Alcotest.test_case "histogram and quantile certified" `Quick
            test_vector_and_quantile_faces;
          Alcotest.test_case "rdp count certified" `Quick
            test_rdp_count_certified;
          Alcotest.test_case "half-scale break detected" `Quick
            test_half_scale_detected;
          Alcotest.test_case "train face (gibbs posterior)" `Quick
            test_train_face;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "seeded noise reuse detected" `Quick
            test_recovery_reuse_detected;
          Alcotest.test_case "distribution drift detected" `Quick
            test_recovery_drift_detected;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "clopper-pearson" `Quick test_clopper_pearson;
          Alcotest.test_case "lr test flags disjoint supports" `Quick
            test_lr_flags_blatant_violation;
        ] );
    ]
