open Dp_learn
open Dp_dataset

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Loss functions *)

let test_logistic_loss () =
  let theta = [| 1.; 0. |] and x = [| 1.; 0. |] in
  check_close ~tol:1e-12 "value at margin 1"
    (log (1. +. exp (-1.)))
    (Loss_fn.logistic.Loss_fn.value ~theta ~x ~y:1.);
  (* gradient check by finite differences *)
  let fd_check loss theta x y =
    let g = loss.Loss_fn.grad ~theta ~x ~y in
    Array.iteri
      (fun j _ ->
        let h = 1e-6 in
        let tp = Array.copy theta and tm = Array.copy theta in
        tp.(j) <- tp.(j) +. h;
        tm.(j) <- tm.(j) -. h;
        let fd =
          (loss.Loss_fn.value ~theta:tp ~x ~y -. loss.Loss_fn.value ~theta:tm ~x ~y)
          /. (2. *. h)
        in
        check_close ~tol:1e-4 (Printf.sprintf "grad[%d]" j) fd g.(j))
      g
  in
  fd_check Loss_fn.logistic [| 0.5; -0.3 |] [| 0.8; 0.1 |] 1.;
  fd_check Loss_fn.logistic [| 0.5; -0.3 |] [| 0.8; 0.1 |] (-1.);
  fd_check Loss_fn.squared [| 0.5; -0.3 |] [| 0.8; 0.1 |] 0.7;
  fd_check (Loss_fn.huber ~delta:1.) [| 2.; 0. |] [| 1.; 0. |] 0.1

let test_hinge_loss () =
  let theta = [| 1.; 0. |] in
  check_close "hinge inside margin" 0.5
    (Loss_fn.hinge.Loss_fn.value ~theta ~x:[| 0.5; 0. |] ~y:1.);
  check_close "hinge satisfied" 0.
    (Loss_fn.hinge.Loss_fn.value ~theta ~x:[| 2.; 0. |] ~y:1.);
  let g = Loss_fn.hinge.Loss_fn.grad ~theta ~x:[| 2.; 0. |] ~y:1. in
  check_close "zero subgradient" 0. g.(0)

let test_zero_one_and_clip () =
  check_close "zero one correct" 0.
    (Loss_fn.zero_one ~theta:[| 1. |] ~x:[| 1. |] ~y:1.);
  check_close "zero one wrong" 1.
    (Loss_fn.zero_one ~theta:[| 1. |] ~x:[| 1. |] ~y:(-1.));
  (* clip keeps the squared loss within its declared range *)
  let v =
    Loss_fn.clip Loss_fn.squared ~theta:[| 100. |] ~x:[| 1. |] ~y:0.
  in
  check_close "clipped at top" 8. v;
  check_close "range width" 8. (Loss_fn.range_width Loss_fn.squared)

(* ------------------------------------------------------------------ *)
(* ERM *)

let classification_data seed n =
  let g = Dp_rng.Prng.create seed in
  let d = Synthetic.two_gaussians ~separation:3. ~std:1. ~dim:3 ~n g in
  Dataset.clip_rows_l2 ~radius:1. d

let test_erm_learns () =
  let d = classification_data 1 400 in
  let m = Erm.train ~lambda:1e-3 ~loss:Loss_fn.logistic d in
  Alcotest.(check bool) "converged" true m.Erm.converged;
  let acc = Erm.accuracy m.Erm.theta d in
  Alcotest.(check bool) (Printf.sprintf "train acc %.3f" acc) true (acc > 0.85);
  (* hinge learns the same task *)
  let m2 = Erm.train ~lambda:1e-3 ~loss:Loss_fn.hinge d in
  Alcotest.(check bool) "hinge accuracy" true (Erm.accuracy m2.Erm.theta d > 0.85)

let test_erm_regularization_shrinks () =
  let d = classification_data 2 200 in
  let weak = Erm.train ~lambda:1e-4 ~loss:Loss_fn.logistic d in
  let strong = Erm.train ~lambda:10. ~loss:Loss_fn.logistic d in
  Alcotest.(check bool) "shrinkage" true
    (Dp_linalg.Vec.norm2 strong.Erm.theta < Dp_linalg.Vec.norm2 weak.Erm.theta)

let test_erm_projected () =
  let d = classification_data 3 200 in
  let m = Erm.train ~lambda:1e-4 ~radius:0.5 ~loss:Loss_fn.logistic d in
  Alcotest.(check bool) "feasible" true
    (Dp_linalg.Vec.norm2 m.Erm.theta <= 0.5 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Private ERM *)

let test_output_perturbation_accuracy_tradeoff () =
  let d = classification_data 4 2000 in
  let g = Dp_rng.Prng.create 5 in
  let np = Erm.train ~lambda:0.01 ~loss:Loss_fn.logistic d in
  let acc_np = Erm.accuracy np.Erm.theta d in
  let acc_at eps =
    (* average 5 runs to tame noise *)
    Dp_math.Summation.mean
      (Array.init 5 (fun _ ->
           let m =
             Private_erm.output_perturbation ~epsilon:eps ~lambda:0.01
               ~loss:Loss_fn.logistic d g
           in
           Erm.accuracy m.Private_erm.theta d))
  in
  let hi = acc_at 50. and lo = acc_at 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "high eps near non-private (%.3f vs %.3f)" hi acc_np)
    true
    (hi > acc_np -. 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "low eps worse (%.3f < %.3f)" lo hi)
    true (lo < hi);
  (* budget recorded *)
  let m =
    Private_erm.output_perturbation ~epsilon:1. ~lambda:0.01
      ~loss:Loss_fn.logistic d g
  in
  check_close "budget" 1. m.Private_erm.budget.Dp_mechanism.Privacy.epsilon

let test_objective_perturbation () =
  let d = classification_data 6 2000 in
  let g = Dp_rng.Prng.create 7 in
  let m =
    Private_erm.objective_perturbation ~epsilon:2. ~lambda:0.01
      ~loss:Loss_fn.logistic d g
  in
  let acc = Erm.accuracy m.Private_erm.theta d in
  Alcotest.(check bool) (Printf.sprintf "acc %.3f" acc) true (acc > 0.8);
  (* hinge has no smoothness constant -> must refuse *)
  try
    ignore
      (Private_erm.objective_perturbation ~epsilon:1. ~lambda:0.01
         ~loss:Loss_fn.hinge d g);
    Alcotest.fail "accepted non-smooth loss"
  with Invalid_argument _ -> ()

let test_gibbs_erm () =
  let d = classification_data 8 500 in
  let g = Dp_rng.Prng.create 9 in
  let m =
    Private_erm.gibbs ~epsilon:20. ~radius:3. ~loss:Loss_fn.logistic d g
  in
  Alcotest.(check bool) "in ball" true
    (Dp_linalg.Vec.norm2 m.Private_erm.theta <= 3. +. 1e-9);
  let acc = Erm.accuracy m.Private_erm.theta d in
  Alcotest.(check bool) (Printf.sprintf "gibbs acc %.3f" acc) true (acc > 0.75);
  (* beta calibration: 2 beta range / n = eps *)
  let beta = Private_erm.gibbs_beta ~epsilon:1. ~n:100 ~loss_range:4. in
  check_close "beta" (100. /. 8.) beta

let test_gibbs_posterior_concentration () =
  (* More privacy (smaller eps) => flatter posterior => draws more
     spread out. Measure the spread of posterior samples. *)
  let d = classification_data 10 300 in
  let spread eps seed =
    let g = Dp_rng.Prng.create seed in
    let samples =
      Private_erm.gibbs_posterior_samples ~epsilon:eps ~radius:3.
        ~loss:Loss_fn.logistic ~n_samples:300 d g
    in
    let firsts = Array.map (fun s -> s.(0)) samples in
    Dp_stats.Describe.std firsts
  in
  let tight = spread 50. 11 and loose = spread 0.5 12 in
  Alcotest.(check bool)
    (Printf.sprintf "spread %.3f < %.3f" tight loose)
    true (tight < loose)

(* ------------------------------------------------------------------ *)
(* Mean & density *)

let test_mean_estimator () =
  let g = Dp_rng.Prng.create 13 in
  let xs = Array.init 1000 (fun _ -> Dp_rng.Sampler.uniform ~lo:0. ~hi:1. g) in
  let truth = Mean_estimator.non_private ~lo:0. ~hi:1. xs in
  (* average of many private releases converges to the truth *)
  let est =
    Dp_math.Summation.mean
      (Array.init 200 (fun _ ->
           Mean_estimator.laplace ~epsilon:1. ~lo:0. ~hi:1. xs g))
  in
  if Float.abs (est -. truth) > 0.005 then
    Alcotest.failf "private mean biased: %g vs %g" est truth;
  check_close "expected error" 0.001
    (Mean_estimator.expected_absolute_error ~epsilon:1. ~lo:0. ~hi:1. ~n:1000);
  (* clamping: outliers cannot blow up the estimate *)
  let wild = Array.append xs [| 1e9 |] in
  let m = Mean_estimator.non_private ~lo:0. ~hi:1. wild in
  Alcotest.(check bool) "clamped" true (m <= 1.)

let test_density_estimation () =
  let g = Dp_rng.Prng.create 14 in
  let weights = [| 0.5; 0.5 |] and means = [| -1.5; 1.5 |] and stds = [| 0.5; 0.5 |] in
  let xs = Synthetic.gaussian_mixture_1d ~weights ~means ~stds ~n:20_000 g in
  let truth = Synthetic.mixture_density ~weights ~means ~stds in
  let np = Density.fit_non_private ~lo:(-4.) ~hi:4. ~bins:40 xs in
  let p = Density.fit_private ~epsilon:1. ~lo:(-4.) ~hi:4. ~bins:40 xs g in
  let err_np = Density.l1_error np ~true_density:truth in
  let err_p = Density.l1_error p ~true_density:truth in
  Alcotest.(check bool) (Printf.sprintf "np err %.3f small" err_np) true (err_np < 0.1);
  (* with n=20k and eps=1 the private error is close to non-private *)
  Alcotest.(check bool) (Printf.sprintf "p err %.3f reasonable" err_p) true (err_p < 0.2);
  (* tiny data + tiny epsilon => worse *)
  let xs_small = Array.sub xs 0 200 in
  let p_bad = Density.fit_private ~epsilon:0.05 ~lo:(-4.) ~hi:4. ~bins:40 xs_small g in
  let err_bad = Density.l1_error p_bad ~true_density:truth in
  Alcotest.(check bool)
    (Printf.sprintf "worse at small eps (%.3f > %.3f)" err_bad err_p)
    true (err_bad > err_p);
  (* log likelihood sane *)
  let ll = Density.log_likelihood np (Array.sub xs 0 1000) in
  Alcotest.(check bool) "ll finite" true (Float.is_finite ll)

(* ------------------------------------------------------------------ *)
(* Ridge *)

let regression_data seed n =
  let g = Dp_rng.Prng.create seed in
  Synthetic.linear_regression ~theta:[| 0.5; -0.3 |] ~noise_std:0.05 ~n g

let test_ridge () =
  let d = regression_data 15 500 in
  let theta = Ridge.fit ~lambda:1e-6 d in
  check_close ~tol:0.05 "theta0" 0.5 theta.(0);
  check_close ~tol:0.05 "theta1" (-0.3) theta.(1);
  (* heavier regularization shrinks *)
  let heavy = Ridge.fit ~lambda:10. d in
  Alcotest.(check bool) "shrinks" true
    (Dp_linalg.Vec.norm2 heavy < Dp_linalg.Vec.norm2 theta)

let test_ridge_private () =
  let d = regression_data 16 2000 in
  let g = Dp_rng.Prng.create 17 in
  let mse_of theta = Erm.mean_squared_error theta d in
  let np = Ridge.fit ~lambda:0.01 d in
  let out =
    Dp_math.Summation.mean
      (Array.init 10 (fun _ ->
           mse_of (Ridge.fit_output_perturbed ~epsilon:20. ~lambda:0.01 d g)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "output-perturbed mse %.4f near np %.4f" out (mse_of np))
    true
    (out < mse_of np +. 0.1);
  let gm = Ridge.fit_gibbs ~epsilon:20. ~radius:1. d g in
  Alcotest.(check bool) "gibbs mse" true (mse_of gm < 0.5)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"logistic loss nonnegative and decreasing in margin"
      ~count:200
      (pair (float_range (-2.) 2.) (float_range (-2.) 2.))
      (fun (a, b) ->
        let v m = Loss_fn.logistic.Loss_fn.value ~theta:[| m |] ~x:[| 1. |] ~y:1. in
        let lo = Float.min a b and hi = Float.max a b in
        v lo >= v hi -. 1e-12 && v lo >= 0.);
    Test.make ~name:"clip stays in range" ~count:200
      (triple (float_range (-100.) 100.) (float_range (-1.) 1.)
         (float_range (-1.) 1.))
      (fun (t, x, y) ->
        let v = Loss_fn.clip Loss_fn.squared ~theta:[| t |] ~x:[| x |] ~y in
        v >= 0. && v <= 8.);
    Test.make ~name:"private mean within clamp range + noise scale"
      ~count:50
      (pair (int_range 0 10_000) (int_range 10 200))
      (fun (seed, n) ->
        let g = Dp_rng.Prng.create seed in
        let xs = Array.init n (fun _ -> Dp_rng.Prng.float g) in
        let v = Mean_estimator.laplace ~epsilon:1. ~lo:0. ~hi:1. xs g in
        (* mean in [0,1], noise has scale 1/(n eps) <= 0.1; 60 scales
           of slack make false failures negligible *)
        v > -6. && v < 7.);
    Test.make ~name:"noisy histogram never has negative counts" ~count:50
      (int_range 0 10_000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let xs = Array.init 50 (fun _ -> Dp_rng.Prng.float g) in
        let e = Density.fit_private ~epsilon:0.5 ~lo:0. ~hi:1. ~bins:8 xs g in
        Array.for_all (fun c -> c >= 0.)
          e.Density.histogram.Dp_stats.Histogram.counts);
  ]

let () =
  Alcotest.run "dp_learn"
    [
      ( "losses",
        [
          Alcotest.test_case "logistic + gradients" `Quick test_logistic_loss;
          Alcotest.test_case "hinge" `Quick test_hinge_loss;
          Alcotest.test_case "zero-one & clip" `Quick test_zero_one_and_clip;
        ] );
      ( "erm",
        [
          Alcotest.test_case "learns" `Quick test_erm_learns;
          Alcotest.test_case "regularization" `Quick
            test_erm_regularization_shrinks;
          Alcotest.test_case "projection" `Quick test_erm_projected;
        ] );
      ( "private erm",
        [
          Alcotest.test_case "output perturbation" `Slow
            test_output_perturbation_accuracy_tradeoff;
          Alcotest.test_case "objective perturbation" `Slow
            test_objective_perturbation;
          Alcotest.test_case "gibbs" `Slow test_gibbs_erm;
          Alcotest.test_case "gibbs concentration" `Slow
            test_gibbs_posterior_concentration;
        ] );
      ( "mean & density",
        [
          Alcotest.test_case "mean estimator" `Quick test_mean_estimator;
          Alcotest.test_case "density estimation" `Quick
            test_density_estimation;
        ] );
      ( "ridge",
        [
          Alcotest.test_case "fit" `Quick test_ridge;
          Alcotest.test_case "private variants" `Slow test_ridge_private;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
