(* End-to-end sweep of the experiment registry: every experiment must
   run in quick mode without raising and must produce output. The
   MCMC/training-heavy ones (exercised by bench/main.exe and their own
   unit tests) are excluded to keep the suite fast. *)

let heavy = [ "E8"; "E10"; "E16"; "E17"; "E29" ]

let run_one (e : Dp_experiments.Registry.entry) () =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  e.Dp_experiments.Registry.run ~quick:true ~seed:7 fmt;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  Alcotest.(check bool)
    (Printf.sprintf "%s produced output" e.Dp_experiments.Registry.id)
    true
    (String.length out > 100);
  (* every experiment's verdict columns must not scream *)
  let contains_no =
    let needle = "| NO" in
    let nl = String.length needle and ol = String.length out in
    let rec go i =
      if i + nl > ol then false
      else if String.sub out i nl = needle then true
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s reports no violation" e.Dp_experiments.Registry.id)
    false contains_no

let registry_cases =
  List.filter_map
    (fun e ->
      if List.mem e.Dp_experiments.Registry.id heavy then None
      else
        Some
          (Alcotest.test_case e.Dp_experiments.Registry.id `Slow (run_one e)))
    Dp_experiments.Registry.all

let test_registry_complete () =
  Alcotest.(check int) "37 entries" 37 (List.length Dp_experiments.Registry.all);
  (* ids unique and findable *)
  List.iter
    (fun e ->
      match Dp_experiments.Registry.find e.Dp_experiments.Registry.id with
      | Some e' ->
          Alcotest.(check string) "found itself" e.Dp_experiments.Registry.id
            e'.Dp_experiments.Registry.id
      | None -> Alcotest.failf "id %s not findable" e.Dp_experiments.Registry.id)
    Dp_experiments.Registry.all;
  Alcotest.(check bool) "unknown id rejected" true
    (Dp_experiments.Registry.find "E999" = None)

let test_table_rendering () =
  let t = Dp_experiments.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Dp_experiments.Table.add_rowf t [ 1.; 2.5 ];
  Dp_experiments.Table.add_row t [ "x"; "y" ];
  Alcotest.(check int) "rows" 2 (List.length (Dp_experiments.Table.rows t));
  (try
     Dp_experiments.Table.add_row t [ "only-one" ];
     Alcotest.fail "accepted wrong arity"
   with Invalid_argument _ -> ());
  (* csv export *)
  let dir = Filename.temp_file "dp_tables" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Dp_experiments.Table.save_csv t ~dir;
      let files = Sys.readdir dir in
      Alcotest.(check int) "one file" 1 (Array.length files);
      let content =
        In_channel.with_open_text (Filename.concat dir files.(0))
          In_channel.input_all
      in
      Alcotest.(check bool) "header present" true
        (String.length content > 0 && String.sub content 0 3 = "a,b"))

let () =
  Alcotest.run "dp_experiments"
    [
      ( "registry",
        Alcotest.test_case "complete & findable" `Quick test_registry_complete
        :: Alcotest.test_case "table rendering & csv" `Quick
             test_table_rendering
        :: registry_cases );
    ]
