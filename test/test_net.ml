(* The TCP frontend: bounded line reassembly across segments, reply
   framing, admission control (budget-independent by construction),
   slow-loris idle timeouts, graceful drain, and the retrying client
   against torn connections. The server runs in a thread inside the
   test process; clients are raw sockets so the tests control exactly
   how bytes hit the wire. *)

open Dp_engine
open Dp_net

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* ------------------------------------------------------------------ *)
(* Linebuf *)

let linebuf_reassembly () =
  let lb = Linebuf.create () in
  let feed s = Linebuf.feed lb (Bytes.of_string s) 0 (String.length s) in
  Alcotest.(check int) "no newline, no line" 0 (List.length (feed "query de"));
  Alcotest.(check int) "still buffering" 0 (List.length (feed "mo count"));
  (match feed "\nhelp\nqu" with
  | [ a; b ] ->
      Alcotest.(check string) "first line spans segments" "query demo count"
        a.Linebuf.text;
      Alcotest.(check int) "true count" 16 a.Linebuf.bytes;
      Alcotest.(check string) "second line" "help" b.Linebuf.text
  | ls -> Alcotest.failf "expected 2 lines, got %d" (List.length ls));
  match feed "it\n" with
  | [ c ] -> Alcotest.(check string) "tail completes" "quit" c.Linebuf.text
  | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls)

(* The cap must hold across segments: many small feeds of one long line
   may never buffer more than max+1 bytes, while the true length is
   still counted for the oversized reply. *)
let linebuf_oversized_across_segments () =
  let lb = Linebuf.create ~max:16 () in
  let seg = Bytes.make 10 'a' in
  for _ = 1 to 5 do
    match Linebuf.feed lb seg 0 10 with
    | [] -> ()
    | _ -> Alcotest.fail "no newline yet"
  done;
  Alcotest.(check int) "true pending count" 50 (Linebuf.pending_bytes lb);
  match Linebuf.feed lb (Bytes.of_string "\n") 0 1 with
  | [ l ] ->
      Alcotest.(check int) "true length reported" 50 l.Linebuf.bytes;
      Alcotest.(check bool) "buffered text capped at max+1" true
        (String.length l.Linebuf.text <= 17)
  | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls)

(* ------------------------------------------------------------------ *)
(* parse_opts (shared by every command; the TCP path reuses it via
   Protocol.exec, so its strictness is part of the wire contract) *)

let parse_opts_strict () =
  let known = [ "eps"; "analyst"; "no-cache" ] in
  (match Protocol.parse_opts ~known [ "eps=0.5"; "no-cache" ] with
  | Ok [ ("eps", Some "0.5"); ("no-cache", None) ] -> ()
  | Ok _ -> Alcotest.fail "parsed shape wrong"
  | Error e -> Alcotest.fail e);
  (match Protocol.parse_opts ~known [ "bogus=1" ] with
  | Error e ->
      Alcotest.(check bool) "unknown key is typed" true
        (contains ~sub:"err bad-argument" e)
  | Ok _ -> Alcotest.fail "unknown key accepted");
  (match Protocol.parse_opts ~known [ "eps=1"; "eps=2" ] with
  | Error e ->
      Alcotest.(check bool) "duplicate key is typed" true
        (contains ~sub:"duplicate option eps" e)
  | Ok _ -> Alcotest.fail "duplicate key accepted");
  match Protocol.parse_opts ~known [ "eps=a=b" ] with
  | Ok [ ("eps", Some "a=b") ] -> ()
  | _ -> Alcotest.fail "value may contain '='"

(* ------------------------------------------------------------------ *)
(* Reply cap *)

let reply_cap_truncates () =
  let eng = Engine.create ~seed:3 () in
  (match
     Protocol.exec eng "register demo rows=50 eps=50 default-eps=0.001"
   with
  | first :: _ when contains ~sub:"ok registered" first -> ()
  | _ -> Alcotest.fail "register failed");
  (* 300 decisions (mostly cache hits) = 301 log reply lines, over the
     cap *)
  for _ = 1 to 300 do
    match Protocol.exec eng "query demo count eps=0.001" with
    | first :: _ when contains ~sub:"ok" first -> ()
    | r -> Alcotest.failf "query failed: %s" (String.concat "|" r)
  done;
  let reply = Protocol.exec eng "log demo" in
  Alcotest.(check int) "reply capped" Protocol.max_reply_lines
    (List.length reply);
  let last = List.nth reply (List.length reply - 1) in
  Alcotest.(check string)
    "trailer counts the dropped lines"
    (Printf.sprintf "  truncated=%d" (301 - (Protocol.max_reply_lines - 1)))
    last;
  (* under the cap nothing changes *)
  let short = Protocol.exec eng "report demo" in
  Alcotest.(check bool) "short replies untouched" true
    (List.for_all (fun l -> not (contains ~sub:"truncated=" l)) short)

(* ------------------------------------------------------------------ *)
(* TCP helpers *)

let default_test_config =
  {
    Server.default_config with
    idle_timeout_s = 10.;
    reply_deadline_s = 10.;
    retry_after_base_ms = 7;
  }

let with_server ?(config = default_test_config) ?(faults = Faults.none) f =
  let eng = Engine.create ~seed:11 ~faults () in
  let srv = ok (Server.create ~config eng) in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop srv;
      Thread.join th)
    (fun () -> f eng (Server.port srv))

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(* Read one blank-line-terminated reply frame; [`Eof] on a torn frame. *)
let read_frame ?(timeout = 5.) fd lb =
  let buf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go acc pending =
    match pending with
    | l :: rest ->
        if l.Linebuf.text = "" then
          `Frame (List.rev_map (fun (x : Linebuf.line) -> x.text) acc)
        else go (l :: acc) rest
    | [] ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0. then `Timeout
        else (
          match Unix.select [ fd ] [] [] left with
          | [], _, _ -> `Timeout
          | _ -> (
              match Unix.read fd buf 0 4096 with
              | 0 -> `Eof
              | n -> go acc (Linebuf.feed lb buf 0 n)
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof))
  in
  go [] []

let frame ?timeout fd lb =
  match read_frame ?timeout fd lb with
  | `Frame lines -> lines
  | `Eof -> Alcotest.fail "connection closed mid-frame"
  | `Timeout -> Alcotest.fail "timed out waiting for reply frame"

(* ------------------------------------------------------------------ *)
(* TCP end-to-end *)

let tcp_end_to_end () =
  with_server (fun _eng port ->
      let fd = connect port in
      let lb = Linebuf.create () in
      send fd "register demo rows=200 eps=2\n";
      (match frame fd lb with
      | first :: _ ->
          Alcotest.(check bool) "registered" true
            (contains ~sub:"ok registered name=demo" first)
      | [] -> Alcotest.fail "empty register frame");
      send fd "query demo mean(income) eps=0.2\nquery demo mean(income) eps=0.2\n";
      let r1 = frame fd lb in
      let r2 = frame fd lb in
      (match (r1, r2) with
      | [ a ], [ b ] ->
          Alcotest.(check bool) "fresh answer" true (contains ~sub:"cache=miss" a);
          Alcotest.(check bool) "replayed from cache" true
            (contains ~sub:"cache=hit" b)
      | _ -> Alcotest.fail "expected single-line query replies");
      (* multi-line replies arrive in one frame *)
      send fd "report demo\n";
      let rep = frame fd lb in
      Alcotest.(check bool) "report header present" true
        (match rep with
        | first :: _ -> contains ~sub:"report dataset=demo" first
        | [] -> false);
      Alcotest.(check bool) "report body indented" true
        (List.for_all
           (fun l -> l = List.hd rep || (String.length l > 1 && l.[0] = ' '))
           rep);
      send fd "quit\n";
      (match frame fd lb with
      | [ bye ] -> Alcotest.(check string) "bye" "ok bye" bye
      | _ -> Alcotest.fail "expected ok bye");
      (match read_frame ~timeout:2. fd lb with
      | `Eof -> ()
      | _ -> Alcotest.fail "server must close after quit");
      Unix.close fd)

let tcp_two_clients () =
  with_server (fun _eng port ->
      let a = connect port and b = connect port in
      let la = Linebuf.create () and lbuf = Linebuf.create () in
      send a "register demo rows=100 eps=1\n";
      ignore (frame a la);
      (* interleaved requests on two connections are answered
         independently, in per-connection order *)
      send a "query demo count eps=0.1\n";
      send b "query demo count eps=0.1\n";
      let ra = frame a la in
      let rb = frame b lbuf in
      (match (ra, rb) with
      | [ x ], [ y ] ->
          Alcotest.(check bool) "a answered" true (contains ~sub:"ok seq=" x);
          (* same normalized query at the same eps: the second release
             is the cache replaying the first, never fresh noise *)
          Alcotest.(check bool) "b served from cache" true
            (contains ~sub:"cache=hit" y || contains ~sub:"cache=miss" y)
      | _ -> Alcotest.fail "expected single-line replies");
      Unix.close a;
      Unix.close b)

(* An oversized line split across many small TCP segments must get the
   exact stdio-transport reply, with the true byte count. *)
let tcp_oversized_split () =
  with_server (fun _eng port ->
      let fd = connect port in
      let lb = Linebuf.create () in
      let chunk = String.make 500 'x' in
      for _ = 1 to 10 do
        send fd chunk
      done;
      send fd "\n";
      (match frame fd lb with
      | [ line ] ->
          Alcotest.(check string) "stdio-identical oversized reply"
            (Protocol.oversized_reply 5000)
            line
      | _ -> Alcotest.fail "expected one reply line");
      (* the connection survives: the oversized request was rejected,
         not the peer *)
      send fd "help\n";
      (match frame fd lb with
      | first :: _ ->
          Alcotest.(check bool) "still serving" true
            (contains ~sub:"ok commands" first)
      | [] -> Alcotest.fail "no help reply");
      Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Admission control *)

(* The pinned invariant: the shed reply is computed from queue depth
   only. A server with a full budget and a server with an exhausted
   budget must shed byte-identically — if they differed, being shed
   would leak budget state to an unauthenticated peer. *)
let shed_reply_of port =
  let holder = connect port in
  let hl = Linebuf.create () in
  send holder "help\n";
  ignore (frame holder hl);
  (* holder is accepted for sure; the next conn is over max_conns=1 *)
  let shed = connect port in
  let sl = Linebuf.create () in
  let reply = frame shed sl in
  (match read_frame ~timeout:2. shed sl with
  | `Eof -> ()
  | _ -> Alcotest.fail "shed connection must be closed");
  Unix.close shed;
  Unix.close holder;
  reply

let shedding_budget_independent () =
  let config = { default_test_config with max_conns = 1 } in
  let r_full =
    with_server ~config (fun eng port ->
        (match Protocol.exec eng "register demo rows=50 eps=100" with
        | first :: _ when contains ~sub:"ok" first -> ()
        | _ -> Alcotest.fail "register failed");
        shed_reply_of port)
  in
  let r_exhausted =
    with_server ~config (fun eng port ->
        (match Protocol.exec eng "register demo rows=50 eps=0.2" with
        | first :: _ when contains ~sub:"ok" first -> ()
        | _ -> Alcotest.fail "register failed");
        (* burn the whole budget, then some *)
        ignore (Protocol.exec eng "query demo count eps=0.2");
        (match Protocol.exec eng "query demo count eps=0.1" with
        | [ line ] ->
            Alcotest.(check bool) "budget is exhausted" true
              (contains ~sub:"err budget-exceeded" line)
        | _ -> Alcotest.fail "expected budget-exceeded");
        shed_reply_of port)
  in
  (match r_full with
  | [ line ] ->
      Alcotest.(check bool) "typed overloaded reply" true
        (contains ~sub:"err overloaded retry-after=" line)
  | _ -> Alcotest.fail "expected one shed line");
  Alcotest.(check (list string))
    "shed reply independent of budget state" r_full r_exhausted

let inflight_shedding () =
  (* max_inflight=1: with one reply parked unflushed, a second request
     on another connection is shed with a typed, depth-scaled hint *)
  let config = { default_test_config with max_inflight = 1 } in
  with_server ~config (fun eng port ->
      (match Protocol.exec eng "register demo rows=50 eps=10" with
      | first :: _ when contains ~sub:"ok" first -> ()
      | _ -> Alcotest.fail "register failed");
      let a = connect port and b = connect port in
      let la = Linebuf.create () and lbuf = Linebuf.create () in
      (* a queues a request but never reads the reply: after exec its
         unflushed frame still occupies the pipeline only until the
         kernel buffers it, so park a second one behind it *)
      send a "query demo count eps=0.01\nquery demo count eps=0.01\nquery demo count eps=0.01\n";
      Unix.sleepf 0.15;
      send b "query demo count eps=0.01\n";
      (match frame b lbuf with
      | [ line ] ->
          Alcotest.(check bool)
            "second conn shed or answered, never wedged" true
            (contains ~sub:"err overloaded retry-after=" line
            || contains ~sub:"ok seq=" line)
      | _ -> Alcotest.fail "expected one line");
      ignore (frame a la);
      Unix.close a;
      Unix.close b)

(* ------------------------------------------------------------------ *)
(* Timeouts *)

let idle_timeout_slow_loris () =
  let config = { default_test_config with idle_timeout_s = 0.3 } in
  with_server ~config (fun _eng port ->
      let fd = connect port in
      let lb = Linebuf.create () in
      (* dribble a never-terminated line: bytes flow, but no request
         ever completes, so the idle clock must not reset *)
      let deadline = Unix.gettimeofday () +. 5. in
      let rec dribble () =
        match send fd "x" with
        | () ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "slow-loris connection never closed"
            else begin
              Unix.sleepf 0.05;
              match read_frame ~timeout:0.01 fd lb with
              | `Eof -> ()
              | `Timeout | `Frame _ -> dribble ()
            end
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            ()
      in
      dribble ();
      Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Graceful drain *)

let drain_flushes_inflight () =
  let eng = Engine.create ~seed:11 () in
  (match Protocol.exec eng "register demo rows=100 eps=5" with
  | first :: _ when contains ~sub:"ok" first -> ()
  | _ -> Alcotest.fail "register failed");
  let srv = ok (Server.create ~config:default_test_config eng) in
  let th = Thread.create Server.run srv in
  let fd = connect (Server.port srv) in
  let lb = Linebuf.create () in
  send fd "query demo mean(score) eps=0.1\n";
  (* let the select loop pick the request up — drain deliberately stops
     reading, so a request still in the socket buffer is the client's
     to retry, not in-flight *)
  Unix.sleepf 0.3;
  (* the reply to the in-flight request must still arrive after stop *)
  Server.request_stop srv;
  (match frame fd lb with
  | [ line ] ->
      Alcotest.(check bool) "in-flight request answered through drain" true
        (contains ~sub:"ok seq=" line || contains ~sub:"err" line)
  | _ -> Alcotest.fail "expected reply through drain");
  (match read_frame ~timeout:3. fd lb with
  | `Eof -> ()
  | _ -> Alcotest.fail "drained server must close the connection");
  Thread.join th;
  Unix.close fd;
  (* post-drain: the engine is intact and consistent *)
  match Protocol.exec eng "replay demo" with
  | [ line ] ->
      Alcotest.(check bool) "audit replay consistent after drain" true
        (contains ~sub:"ok replay consistent" line)
  | _ -> Alcotest.fail "expected replay verdict"

let drain_refuses_new_conns () =
  let eng = Engine.create ~seed:11 () in
  let srv = ok (Server.create ~config:default_test_config eng) in
  let th = Thread.create Server.run srv in
  let port = Server.port srv in
  Server.request_stop srv;
  Thread.join th;
  (match connect port with
  | fd ->
      (* a TIME_WAIT race may accept the connect; reads must then EOF *)
      let lb = Linebuf.create () in
      (match read_frame ~timeout:1. fd lb with
      | `Eof | `Timeout -> ()
      | `Frame _ -> Alcotest.fail "drained server answered a new conn");
      Unix.close fd
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  Alcotest.(check bool) "no connections left" true (Server.conn_count srv = 0)

(* ------------------------------------------------------------------ *)
(* Retrying client vs injected connection faults *)

let client_retries_through_conn_reset () =
  let faults = ok (Faults.parse "conn-reset=2") in
  with_server ~faults (fun _eng port ->
      let reqs = Filename.temp_file "dpkit_net" ".in" in
      let out = Filename.temp_file "dpkit_net" ".out" in
      Fun.protect
        ~finally:(fun () ->
          (try Sys.remove reqs with Sys_error _ -> ());
          try Sys.remove out with Sys_error _ -> ())
        (fun () ->
          Out_channel.with_open_text reqs (fun oc ->
              output_string oc
                "register demo rows=100 eps=2\n\
                 query demo mean(income) eps=0.3\n\
                 report demo\n");
          let cfg =
            {
              (Client.default_config ~port) with
              attempts = 6;
              backoff_s = 0.01;
              cap_s = 0.1;
              reply_timeout_s = 2.;
              jitter = Some (Dp_rng.Prng.create 5);
            }
          in
          let code =
            In_channel.with_open_text reqs (fun ic ->
                Out_channel.with_open_text out (fun oc -> Client.run cfg ic oc))
          in
          Alcotest.(check int) "client reaches final replies" 0 code;
          let lines =
            In_channel.with_open_text out In_channel.input_lines
          in
          (* the torn 2nd request (its conn was reset mid-reply) was
             retried; charge-before-answer makes the retry a cache hit,
             so the analyst still gets exactly one released value *)
          Alcotest.(check bool) "query answered" true
            (List.exists (fun l -> contains ~sub:"mechanism=laplace" l) lines);
          Alcotest.(check bool) "report arrived" true
            (List.exists (fun l -> contains ~sub:"report dataset=demo" l) lines);
          Alcotest.(check bool) "no torn lines leaked" true
            (List.for_all
               (fun l ->
                 l = ""
                 || contains ~sub:"ok" l
                 || contains ~sub:"err" l
                 || l.[0] = ' '
                 || contains ~sub:"report" l)
               lines)))

let client_retries_through_restart () =
  (* the server dies (thread stops via drain) and a new one takes the
     port; a client request spanning the outage succeeds *)
  let eng = Engine.create ~seed:11 () in
  let srv = ok (Server.create ~config:default_test_config eng) in
  let th = Thread.create Server.run srv in
  let port = Server.port srv in
  Server.request_stop srv;
  Thread.join th;
  (* port free now; restart on the same port with the same engine *)
  let config = { default_test_config with port } in
  let srv2 = ok (Server.create ~config eng) in
  let th2 = Thread.create Server.run srv2 in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop srv2;
      Thread.join th2)
    (fun () ->
      let fd = connect port in
      let lb = Linebuf.create () in
      send fd "help\n";
      (match frame fd lb with
      | first :: _ ->
          Alcotest.(check bool) "restarted server serves" true
            (contains ~sub:"ok commands" first)
      | [] -> Alcotest.fail "no reply after restart");
      Unix.close fd)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dp_net"
    [
      ( "linebuf",
        [
          Alcotest.test_case "reassembly across segments" `Quick
            linebuf_reassembly;
          Alcotest.test_case "oversized across segments" `Quick
            linebuf_oversized_across_segments;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse_opts strictness" `Quick parse_opts_strict;
          Alcotest.test_case "reply cap" `Quick reply_cap_truncates;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "end to end" `Quick tcp_end_to_end;
          Alcotest.test_case "two clients" `Quick tcp_two_clients;
          Alcotest.test_case "oversized split over segments" `Quick
            tcp_oversized_split;
        ] );
      ( "admission",
        [
          Alcotest.test_case "shed is budget-independent" `Quick
            shedding_budget_independent;
          Alcotest.test_case "inflight shedding" `Quick inflight_shedding;
        ] );
      ( "timeouts",
        [
          Alcotest.test_case "slow-loris idle timeout" `Quick
            idle_timeout_slow_loris;
        ] );
      ( "drain",
        [
          Alcotest.test_case "flushes in-flight" `Quick drain_flushes_inflight;
          Alcotest.test_case "refuses new conns" `Quick drain_refuses_new_conns;
        ] );
      ( "client",
        [
          Alcotest.test_case "retries through conn-reset" `Quick
            client_retries_through_conn_reset;
          Alcotest.test_case "retries through restart" `Quick
            client_retries_through_restart;
        ] );
    ]
