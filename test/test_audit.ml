open Dp_audit

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let test_audit_exact () =
  (* randomized response: exact epsilon recovered *)
  let eps = 1.3 in
  let p = exp eps /. (1. +. exp eps) in
  check_close ~tol:1e-12 "rr exact" eps
    (Auditor.audit_exact ~p:[| p; 1. -. p |] ~q:[| 1. -. p; p |]);
  check_close "identical" 0.
    (Auditor.audit_exact ~p:[| 0.5; 0.5 |] ~q:[| 0.5; 0.5 |])

let test_audit_discrete_rr () =
  (* Empirical audit of randomized response: epsilon_hat should approach
     the true epsilon and never grossly exceed it. *)
  let eps = 1.0 in
  let rr = Dp_mechanism.Randomized_response.create ~epsilon:eps in
  let g = Dp_rng.Prng.create 3 in
  let run bit g' =
    if Dp_mechanism.Randomized_response.respond rr bit g' then 1 else 0
  in
  let r =
    Auditor.audit_discrete ~trials:200_000 ~outcomes:2 ~epsilon_theory:eps
      ~run:(run true) ~run':(run false) g
  in
  Alcotest.(check bool)
    (Printf.sprintf "eps_hat %.3f close to %.3f" r.Auditor.epsilon_hat eps)
    true
    (Float.abs (r.Auditor.epsilon_hat -. eps) < 0.05);
  Alcotest.(check bool) "passes" true (Auditor.passes r ~slack:0.05)

let test_audit_continuous_laplace () =
  (* E1 in miniature: Laplace mechanism on a count query. *)
  let eps = 0.5 in
  let m = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:eps in
  let g = Dp_rng.Prng.create 4 in
  let r =
    Auditor.audit_continuous ~trials:200_000 ~bins:40 ~lo:(-15.) ~hi:16.
      ~epsilon_theory:eps
      ~run:(fun g' -> Dp_mechanism.Laplace.release m ~value:10. g')
      ~run':(fun g' -> Dp_mechanism.Laplace.release m ~value:11. g')
      g
  in
  (* audit must not report a violation *)
  Alcotest.(check bool)
    (Printf.sprintf "eps_hat %.3f <= eps + slack" r.Auditor.epsilon_hat)
    true
    (Auditor.passes r ~slack:0.1);
  (* and must not be trivially zero: neighbouring inputs do differ *)
  Alcotest.(check bool) "informative" true (r.Auditor.epsilon_hat > 0.2)

let test_audit_detects_violation () =
  (* A broken "mechanism" that leaks its input deterministically must
     produce a huge epsilon_hat. *)
  let g = Dp_rng.Prng.create 5 in
  let r =
    Auditor.audit_discrete ~trials:5_000 ~outcomes:2 ~epsilon_theory:1.
      ~run:(fun _ -> 0)
      ~run':(fun _ -> 1)
      g
  in
  Alcotest.(check bool) "violation detected" true (r.Auditor.epsilon_hat > 5.);
  Alcotest.(check bool) "fails" false (Auditor.passes r ~slack:0.5)

let test_audit_gibbs_mechanism_e5 () =
  (* E5 in miniature: empirical audit of the Gibbs posterior over a
     finite grid, via its exact distribution (zero sampling error). *)
  let sample = Array.init 20 (fun i -> (float_of_int i /. 10. -. 1., if i mod 2 = 0 then 1. else -1.)) in
  let grid = Array.init 11 (fun i -> -1. +. (0.2 *. float_of_int i)) in
  let loss theta (x, y) = if (if x >= theta then 1. else -1.) = y then 0. else 1. in
  let beta = 3. in
  let fit s =
    Dp_pac_bayes.Gibbs.fit ~predictors:grid ~beta
      ~empirical_risk:(Dp_pac_bayes.Risk.empirical ~loss s)
      ()
  in
  let p = Dp_pac_bayes.Gibbs.probabilities (fit sample) in
  let bound = 2. *. beta /. 20. in
  (* all neighbours at position 0 with a handful of replacement values *)
  List.iter
    (fun (x, y) ->
      let s' = Array.copy sample in
      s'.(0) <- (x, y);
      let q = Dp_pac_bayes.Gibbs.probabilities (fit s') in
      let e = Auditor.audit_exact ~p ~q in
      Alcotest.(check bool)
        (Printf.sprintf "exact eps %.4f <= bound %.4f" e bound)
        true (e <= bound +. 1e-12))
    [ (0.35, 1.); (0.35, -1.); (-0.99, 1.); (0.99, -1.) ]

let test_smoothing_guards_empty_bins () =
  (* With few trials and many bins, unsmoothed ratios would be infinite;
     the default smoothing keeps the report finite. *)
  let g = Dp_rng.Prng.create 6 in
  let m = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:1. in
  let r =
    Auditor.audit_continuous ~trials:200 ~bins:100 ~lo:(-20.) ~hi:20.
      ~epsilon_theory:1.
      ~run:(fun g' -> Dp_mechanism.Laplace.release m ~value:0. g')
      ~run':(fun g' -> Dp_mechanism.Laplace.release m ~value:1. g')
      g
  in
  Alcotest.(check bool) "finite" true (Float.is_finite r.Auditor.epsilon_hat)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"audit_exact symmetric and nonnegative" ~count:200
      (pair
         (array_of_size (Gen.return 4) (float_range 0.05 1.))
         (array_of_size (Gen.return 4) (float_range 0.05 1.)))
      (fun (a, b) ->
        let norm v =
          let s = Dp_math.Summation.sum v in
          Array.map (fun x -> x /. s) v
        in
        let p = norm a and q = norm b in
        let e = Auditor.audit_exact ~p ~q in
        e >= 0.
        && Dp_math.Numeric.approx_equal ~abs_tol:1e-12 e
             (Auditor.audit_exact ~p:q ~q:p));
    Test.make ~name:"identical mechanisms give near-zero epsilon" ~count:20
      (int_range 0 1000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let run g' = Dp_rng.Prng.int g' 4 in
        let r =
          Auditor.audit_discrete ~trials:20_000 ~outcomes:4 ~epsilon_theory:0.
            ~run ~run':run g
        in
        r.Auditor.epsilon_hat < 0.1);
  ]

let () =
  Alcotest.run "dp_audit"
    [
      ( "auditor",
        [
          Alcotest.test_case "exact" `Quick test_audit_exact;
          Alcotest.test_case "randomized response" `Slow test_audit_discrete_rr;
          Alcotest.test_case "laplace (E1)" `Slow test_audit_continuous_laplace;
          Alcotest.test_case "detects violations" `Quick
            test_audit_detects_violation;
          Alcotest.test_case "gibbs exact audit (E5)" `Quick
            test_audit_gibbs_mechanism_e5;
          Alcotest.test_case "smoothing" `Quick test_smoothing_guards_empty_bins;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
