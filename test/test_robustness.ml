(* Systematic failure injection: every public constructor must reject
   NaN, infinities, out-of-domain parameters and malformed shapes with
   Invalid_argument — never crash, loop, or silently accept. *)

let rejects name f =
  Alcotest.test_case name `Quick (fun () ->
      try
        f ();
        Alcotest.failf "%s: accepted invalid input" name
      with
      | Invalid_argument _ -> ()
      | Dp_mechanism.Privacy.Budget_exceeded _ -> ())

let g () = Dp_rng.Prng.create 0

let mechanism_cases =
  [
    rejects "laplace nan epsilon" (fun () ->
        ignore (Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:nan));
    rejects "laplace zero epsilon" (fun () ->
        ignore (Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:0.));
    rejects "laplace negative sensitivity" (fun () ->
        ignore (Dp_mechanism.Laplace.create ~sensitivity:(-1.) ~epsilon:1.));
    rejects "gaussian delta 0" (fun () ->
        ignore (Dp_mechanism.Gaussian_mech.create ~l2_sensitivity:1. ~epsilon:1. ~delta:0.));
    rejects "gaussian delta 1" (fun () ->
        ignore (Dp_mechanism.Gaussian_mech.create ~l2_sensitivity:1. ~epsilon:1. ~delta:1.));
    rejects "exponential empty candidates" (fun () ->
        ignore
          (Dp_mechanism.Exponential.create ~candidates:[||]
             ~quality:(fun _ -> 0.) ~sensitivity:1. ~epsilon:1. ()));
    rejects "exponential nan quality" (fun () ->
        ignore
          (Dp_mechanism.Exponential.create ~candidates:[| 0 |]
             ~quality:(fun _ -> nan) ~sensitivity:1. ~epsilon:1. ()));
    rejects "exponential prior length" (fun () ->
        ignore
          (Dp_mechanism.Exponential.create ~candidates:[| 0; 1 |]
             ~log_prior:[| 0. |] ~quality:float_of_int ~sensitivity:1.
             ~epsilon:1. ()));
    rejects "geometric negative sensitivity" (fun () ->
        ignore (Dp_mechanism.Geometric_mech.create ~sensitivity:(-1) ~epsilon:1.));
    rejects "rr zero epsilon" (fun () ->
        ignore (Dp_mechanism.Randomized_response.create ~epsilon:0.));
    rejects "sparse vector bad positives" (fun () ->
        ignore
          (Dp_mechanism.Sparse_vector.create ~epsilon:1. ~threshold:0.
             ~max_positives:0 (g ())));
    rejects "subsample q > 1" (fun () ->
        ignore (Dp_mechanism.Subsample.amplified_epsilon ~epsilon:1. ~q:1.5));
    rejects "binary mechanism horizon 0" (fun () ->
        ignore (Dp_mechanism.Binary_mechanism.create ~epsilon:1. ~horizon:0 (g ())));
    rejects "grr k=1" (fun () ->
        ignore (Dp_mechanism.Local_dp.Grr.create ~epsilon:1. ~k:1));
    rejects "rdp order 1" (fun () ->
        ignore (Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:1. 1.));
    rejects "rdp to_dp delta 0" (fun () ->
        ignore
          (Dp_mechanism.Rdp.to_dp ~delta:0.
             (Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:1.)));
    rejects "ptr delta 1" (fun () ->
        ignore
          (Dp_mechanism.Propose_test_release.release_scalar ~epsilon:1.
             ~delta:1. ~distance:1 ~local_bound:1. ~value:0. (g ())));
    rejects "range queries empty" (fun () ->
        ignore (Dp_mechanism.Range_queries.flat_release ~epsilon:1. [||] (g ())));
    rejects "smooth sensitivity empty" (fun () ->
        ignore
          (Dp_mechanism.Smooth_sensitivity.median_smooth_sensitivity ~beta:1.
             ~lo:0. ~hi:1. [||]));
    rejects "accountant overspend" (fun () ->
        let acc =
          Dp_mechanism.Privacy.Accountant.create
            ~total:(Dp_mechanism.Privacy.pure 1.)
        in
        Dp_mechanism.Privacy.Accountant.spend acc (Dp_mechanism.Privacy.pure 2.));
    rejects "group k=0" (fun () ->
        ignore (Dp_mechanism.Privacy.group ~k:0 (Dp_mechanism.Privacy.pure 1.)));
  ]

let pac_bayes_cases =
  [
    rejects "gibbs beta 0" (fun () ->
        ignore
          (Dp_pac_bayes.Gibbs.of_risks ~predictors:[| 0 |] ~beta:0.
             ~risks:[| 0.1 |] ()));
    rejects "gibbs nan risk" (fun () ->
        ignore
          (Dp_pac_bayes.Gibbs.of_risks ~predictors:[| 0 |] ~beta:1.
             ~risks:[| nan |] ()));
    rejects "gibbs risks length" (fun () ->
        ignore
          (Dp_pac_bayes.Gibbs.of_risks ~predictors:[| 0; 1 |] ~beta:1.
             ~risks:[| 0.1 |] ()));
    rejects "catoni risk > 1" (fun () ->
        ignore
          (Dp_pac_bayes.Bounds.catoni ~beta:1. ~n:10 ~delta:0.05 ~emp_risk:1.5
             ~kl:0.));
    rejects "catoni delta 0" (fun () ->
        ignore
          (Dp_pac_bayes.Bounds.catoni ~beta:1. ~n:10 ~delta:0. ~emp_risk:0.5
             ~kl:0.));
    rejects "catoni negative kl" (fun () ->
        ignore
          (Dp_pac_bayes.Bounds.catoni ~beta:1. ~n:10 ~delta:0.05 ~emp_risk:0.5
             ~kl:(-1.)));
    rejects "mcmc empty init" (fun () ->
        ignore
          (Dp_pac_bayes.Mcmc.run ~log_density:(fun _ -> 0.) ~init:[||]
             ~n_samples:10 (g ())));
    rejects "mcmc infinite density at init" (fun () ->
        ignore
          (Dp_pac_bayes.Mcmc.run
             ~log_density:(fun _ -> infinity)
             ~init:[| 0. |] ~n_samples:10 (g ())));
    rejects "gaussian gibbs radius 0" (fun () ->
        let d =
          Dp_dataset.Dataset.create [| [| 1. |] |] [| 0.5 |]
        in
        ignore (Dp_pac_bayes.Gaussian_gibbs.fit ~beta:1. ~radius:0. d));
    rejects "bound_opt prior mismatch" (fun () ->
        ignore
          (Dp_pac_bayes.Bound_opt.minimize ~risks:[| 0.1; 0.2 |] ~prior:[| 1. |]
             ~beta:1. ()));
    rejects "gibbs channel too large" (fun () ->
        ignore
          (Dp_pac_bayes.Gibbs_channel.build
             ~universe_probs:(Array.make 10 0.1) ~n:10 ~predictors:[| 0 |]
             ~beta:1.
             ~loss:(fun _ _ -> 0.)
             ()));
    rejects "diagnostics single chain" (fun () ->
        ignore (Dp_pac_bayes.Diagnostics.gelman_rubin [| [| 1.; 2.; 3.; 4. |] |]));
  ]

let info_cases =
  [
    rejects "entropy non-distribution" (fun () ->
        ignore (Dp_info.Entropy.entropy [| 0.5; 0.6 |]));
    rejects "entropy negative" (fun () ->
        ignore (Dp_info.Entropy.entropy [| -0.5; 1.5 |]));
    rejects "kl length mismatch" (fun () ->
        ignore (Dp_info.Entropy.kl_divergence [| 1. |] [| 0.5; 0.5 |]));
    rejects "channel ragged" (fun () ->
        ignore
          (Dp_info.Channel.create ~input:[| 0.5; 0.5 |]
             ~matrix:[| [| 1. |]; [| 0.5; 0.5 |] |]));
    rejects "channel bad row" (fun () ->
        ignore
          (Dp_info.Channel.create ~input:[| 1. |] ~matrix:[| [| 0.3; 0.3 |] |]));
    rejects "rate_risk ragged" (fun () ->
        ignore
          (Dp_info.Rate_risk.solve ~input:[| 0.5; 0.5 |]
             ~risk:[| [| 0.1 |]; [| 0.1; 0.2 |] |]
             ~beta:1. ()));
    rejects "fano k=1" (fun () ->
        ignore (Dp_info.Fano.fano_error_lower_bound ~mi:0. ~k:1));
    rejects "renyi alpha=1" (fun () ->
        ignore
          (Dp_info.Entropy.renyi_divergence ~alpha:1. [| 0.5; 0.5 |]
             [| 0.5; 0.5 |]));
    rejects "mi_estimate symbol range" (fun () ->
        ignore (Dp_info.Mi_estimate.plugin ~xs:[| 5 |] ~ys:[| 0 |] ~kx:2 ~ky:2));
    rejects "cascade height mismatch" (fun () ->
        let ch =
          Dp_info.Channel.create ~input:[| 1. |] ~matrix:[| [| 0.5; 0.5 |] |]
        in
        ignore (Dp_info.Channel_ops.cascade ch ~post:[| [| 1. |] |]));
  ]

let learn_cases =
  [
    rejects "erm lambda 0" (fun () ->
        let d = Dp_dataset.Dataset.create [| [| 1. |] |] [| 1. |] in
        ignore (Dp_learn.Erm.train ~lambda:0. ~loss:Dp_learn.Loss_fn.logistic d));
    rejects "quantile q > 1" (fun () ->
        ignore
          (Dp_learn.Quantile.estimate ~epsilon:1. ~q:1.5 ~lo:0. ~hi:1.
             [| 0.5 |] (g ())));
    rejects "quantile empty" (fun () ->
        ignore
          (Dp_learn.Quantile.estimate ~epsilon:1. ~q:0.5 ~lo:0. ~hi:1. [||]
             (g ())));
    rejects "mean lo >= hi" (fun () ->
        ignore (Dp_learn.Mean_estimator.non_private ~lo:1. ~hi:1. [| 0.5 |]));
    rejects "density bins 0" (fun () ->
        ignore
          (Dp_learn.Density.fit_private ~epsilon:1. ~lo:0. ~hi:1. ~bins:0
             [| 0.5 |] (g ())));
    rejects "naive bayes bad label" (fun () ->
        let d = Dp_dataset.Dataset.create [| [| 0. |] |] [| 0.5 |] in
        ignore (Dp_learn.Naive_bayes.fit ~lo:(-1.) ~hi:1. d));
    rejects "kmeans k=0" (fun () ->
        ignore (Dp_learn.Kmeans.fit ~k:0 [| [| 0.; 0. |] |] (g ())));
    rejects "pca ragged" (fun () ->
        ignore (Dp_learn.Pca.fit ~j:1 [| [| 1. |]; [| 1.; 2. |] |]));
    rejects "multiclass label range" (fun () ->
        ignore
          (Dp_learn.Multiclass.train ~classes:2 ~loss:Dp_learn.Loss_fn.logistic
             ~features:[| [| 0. |] |] ~labels:[| 7 |] ()));
    rejects "dp-sgd bad delta" (fun () ->
        let d = Dp_dataset.Dataset.create [| [| 0. |] |] [| 1. |] in
        ignore
          (Dp_learn.Dp_sgd.train ~noise_multiplier:1. ~delta:2.
             ~loss:Dp_learn.Loss_fn.logistic d (g ())));
    rejects "model select empty" (fun () ->
        ignore
          (Dp_learn.Model_select.select ~epsilon:1. ~candidates:[||]
             ~score:(fun _ -> 0.) ~score_sensitivity:1. (g ())));
    rejects "synthetic release bad label" (fun () ->
        let d = Dp_dataset.Dataset.create [| [| 0. |] |] [| 3. |] in
        ignore
          (Dp_learn.Synthetic_release.fit ~epsilon:1. ~lo:(-1.) ~hi:1. d (g ())));
  ]

let other_cases =
  [
    rejects "dataset ragged" (fun () ->
        ignore (Dp_dataset.Dataset.create [| [| 1. |]; [| 1.; 2. |] |] [| 1.; 1. |]));
    rejects "auditor zero trials" (fun () ->
        ignore
          (Dp_audit.Auditor.audit_discrete ~trials:0 ~outcomes:2
             ~epsilon_theory:1.
             ~run:(fun _ -> 0)
             ~run':(fun _ -> 0)
             (g ())));
    rejects "tradeoff fpr > 1" (fun () ->
        ignore (Dp_audit.Tradeoff.region_floor ~epsilon:1. ~fpr:1.5));
    rejects "histogram bins 0" (fun () ->
        ignore (Dp_stats.Histogram.create ~lo:0. ~hi:1. ~bins:0));
    rejects "contingency 0 rows" (fun () ->
        ignore (Dp_stats.Contingency.create ~rows:0 ~cols:2));
    rejects "sampler uniform inverted" (fun () ->
        ignore (Dp_rng.Sampler.uniform ~lo:1. ~hi:0. (g ())));
    rejects "sampler gamma shape 0" (fun () ->
        ignore (Dp_rng.Sampler.gamma ~shape:0. ~scale:1. (g ())));
    rejects "prng int bound 0" (fun () -> ignore (Dp_rng.Prng.int (g ()) 0));
    rejects "vec dim mismatch" (fun () ->
        ignore (Dp_linalg.Vec.dot [| 1. |] [| 1.; 2. |]));
    rejects "cholesky non-square" (fun () ->
        ignore (Dp_linalg.Decomp.cholesky (Dp_linalg.Mat.zeros 2 3)));
    rejects "special log_gamma 0" (fun () ->
        ignore (Dp_math.Special.log_gamma 0.));
    rejects "logspace empty normalize" (fun () ->
        ignore (Dp_math.Logspace.normalize_log_weights [||]));
    rejects "csv bad float" (fun () ->
        let path = Filename.temp_file "dpkit_bad" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc "a,b\n1.0,not-a-number\n");
            ignore (Dp_dataset.Csv.read ~path)));
    rejects "libsvm bad feature" (fun () ->
        let path = Filename.temp_file "dpkit_bad" ".libsvm" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc "1 garbage\n");
            ignore (Dp_dataset.Csv.read_libsvm ~path ())));
  ]

let () =
  Alcotest.run "dp_robustness"
    [
      ("mechanisms", mechanism_cases);
      ("pac-bayes", pac_bayes_cases);
      ("info", info_cases);
      ("learn", learn_cases);
      ("misc", other_cases);
    ]
