(* Tests for PAC-Bayes aggregation, the binary (continual counting)
   mechanism, and private model selection. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Aggregate *)

let test_vote_basic () =
  (* two predictors disagreeing; the heavier one wins *)
  let predict i (_ : unit) = if i = 0 then 1. else -1. in
  check_close "majority +" 1.
    (Dp_pac_bayes.Aggregate.vote ~posterior:[| 0.7; 0.3 |] ~predict ());
  check_close "majority -" (-1.)
    (Dp_pac_bayes.Aggregate.vote ~posterior:[| 0.3; 0.7 |] ~predict ());
  (* tie goes to +1 *)
  check_close "tie" 1.
    (Dp_pac_bayes.Aggregate.vote ~posterior:[| 0.5; 0.5 |] ~predict ())

let test_factor_two_bound_holds () =
  (* random posteriors and random samples on the threshold task: the
     vote risk never exceeds twice the Gibbs risk *)
  let g = Dp_rng.Prng.create 1 in
  let grid = Array.init 9 (fun i -> -2. +. (0.5 *. float_of_int i)) in
  let predict i x = if x >= grid.(i) then 1. else -1. in
  for _ = 1 to 50 do
    let rho = Dp_rng.Sampler.dirichlet ~alpha:(Array.make 9 0.5) g in
    let sample =
      Array.init 100 (fun _ ->
          let y = if Dp_rng.Prng.bool g then 1. else -1. in
          (Dp_rng.Sampler.gaussian ~mean:(y *. 0.5) ~std:1. g, y))
    in
    let gr = Dp_pac_bayes.Aggregate.gibbs_risk ~posterior:rho ~predict sample in
    let vr = Dp_pac_bayes.Aggregate.vote_risk ~posterior:rho ~predict sample in
    Alcotest.(check bool) "factor two" true
      (vr <= Dp_pac_bayes.Aggregate.factor_two_bound ~gibbs_risk:gr +. 1e-12)
  done

let test_vote_of_draws () =
  let draws = [| 0.; 0.; 1. |] in
  (* predict: sign(x - theta) *)
  let predict theta x = if x >= theta then 1. else -1. in
  check_close "draws vote" 1.
    (Dp_pac_bayes.Aggregate.private_vote_of_draws ~draws ~predict 0.5);
  check_close "draws vote neg" (-1.)
    (Dp_pac_bayes.Aggregate.private_vote_of_draws ~draws ~predict (-0.5))

(* ------------------------------------------------------------------ *)
(* Binary mechanism *)

let test_binary_levels () =
  Alcotest.(check int) "levels 1" 1 (Dp_mechanism.Binary_mechanism.levels ~horizon:1);
  Alcotest.(check int) "levels 64" 7 (Dp_mechanism.Binary_mechanism.levels ~horizon:64);
  Alcotest.(check int) "levels 65" 7 (Dp_mechanism.Binary_mechanism.levels ~horizon:65)

let test_binary_counts_track_truth () =
  let g = Dp_rng.Prng.create 2 in
  let horizon = 256 in
  (* with huge epsilon the noise vanishes: counts must be exact *)
  let bm = Dp_mechanism.Binary_mechanism.create ~epsilon:1e9 ~horizon g in
  let truth = ref 0 in
  for t = 1 to horizon do
    let bit = if t mod 3 = 0 then 1 else 0 in
    Dp_mechanism.Binary_mechanism.observe bm bit;
    truth := !truth + bit;
    check_close ~tol:1e-6
      (Printf.sprintf "exact at t=%d" t)
      (float_of_int !truth)
      (Dp_mechanism.Binary_mechanism.current_count bm)
  done;
  Alcotest.(check int) "true count" !truth (Dp_mechanism.Binary_mechanism.true_count bm);
  Alcotest.(check int) "steps" horizon (Dp_mechanism.Binary_mechanism.steps_observed bm)

let test_binary_error_scale () =
  let g = Dp_rng.Prng.create 3 in
  let horizon = 1024 and epsilon = 1. in
  let reps = 5 in
  let mae = ref 0. in
  for _ = 1 to reps do
    let bm = Dp_mechanism.Binary_mechanism.create ~epsilon ~horizon g in
    let truth = ref 0 in
    for _ = 1 to horizon do
      let bit = if Dp_rng.Sampler.bernoulli ~p:0.5 g then 1 else 0 in
      Dp_mechanism.Binary_mechanism.observe bm bit;
      truth := !truth + bit;
      mae :=
        !mae
        +. Float.abs
             (Dp_mechanism.Binary_mechanism.current_count bm -. float_of_int !truth)
    done
  done;
  let mae = !mae /. float_of_int (reps * horizon) in
  let predicted =
    Dp_mechanism.Binary_mechanism.expected_noise_std ~epsilon ~horizon
  in
  (* MAE of a sum of Laplaces is below its std; sanity: within a factor
     of the prediction, and FAR below the naive T/eps = 1024 scale *)
  Alcotest.(check bool)
    (Printf.sprintf "MAE %.1f vs predicted std %.1f" mae predicted)
    true
    (mae < predicted && mae > predicted /. 20.);
  Alcotest.(check bool) "much better than naive" true (mae < 100.)

let test_binary_guards () =
  let g = Dp_rng.Prng.create 4 in
  let bm = Dp_mechanism.Binary_mechanism.create ~epsilon:1. ~horizon:4 g in
  (try
     Dp_mechanism.Binary_mechanism.observe bm 2;
     Alcotest.fail "accepted non-bit"
   with Invalid_argument _ -> ());
  for _ = 1 to 4 do
    Dp_mechanism.Binary_mechanism.observe bm 1
  done;
  try
    Dp_mechanism.Binary_mechanism.observe bm 1;
    Alcotest.fail "accepted past horizon"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Model selection *)

let test_select_concentrates () =
  let g = Dp_rng.Prng.create 5 in
  let scores = [| 0.5; 0.9; 0.6 |] in
  let count_best eps =
    let hits = ref 0 in
    for _ = 1 to 1000 do
      let s =
        Dp_learn.Model_select.select ~epsilon:eps ~candidates:[| "a"; "b"; "c" |]
          ~score:(fun c -> scores.(Char.code c.[0] - Char.code 'a'))
          ~score_sensitivity:0.01 g
      in
      if s.Dp_learn.Model_select.chosen = "b" then incr hits
    done;
    float_of_int !hits /. 1000.
  in
  let lo = count_best 0.05 and hi = count_best 5. in
  Alcotest.(check bool) (Printf.sprintf "concentrates %.2f -> %.2f" lo hi) true
    (hi > lo && hi > 0.95);
  (* tiny epsilon: near uniform *)
  Alcotest.(check bool) "near uniform at tiny eps" true (lo < 0.55)

let test_select_budget_and_fields () =
  let g = Dp_rng.Prng.create 6 in
  let s =
    Dp_learn.Model_select.select ~epsilon:2. ~candidates:[| 1; 2; 3 |]
      ~score:float_of_int ~score_sensitivity:0.1 g
  in
  check_close "budget" 2. s.Dp_learn.Model_select.budget.Dp_mechanism.Privacy.epsilon;
  Alcotest.(check int) "scores recorded" 3 (Array.length s.Dp_learn.Model_select.scores);
  Alcotest.(check bool) "index consistent" true
    (s.Dp_learn.Model_select.chosen = [| 1; 2; 3 |].(s.Dp_learn.Model_select.index))

let test_select_lambda_end_to_end () =
  let g = Dp_rng.Prng.create 7 in
  let d =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.two_gaussians ~separation:3. ~std:1. ~dim:3 ~n:600 g)
  in
  let train, validation = Dp_dataset.Dataset.split ~ratio:0.7 d g in
  let s =
    Dp_learn.Model_select.select_best_lambda ~epsilon:5.
      ~lambdas:[| 1e-4; 1e-2; 100. |]
      ~loss:Dp_learn.Loss_fn.logistic ~train ~validation g
  in
  (* lambda = 100 crushes the model; with high eps it should rarely win *)
  Alcotest.(check bool) "avoids absurd lambda" true
    (s.Dp_learn.Model_select.chosen < 100.
    || s.Dp_learn.Model_select.scores.(2)
       >= s.Dp_learn.Model_select.scores.(0) -. 0.05)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"vote returns +-1" ~count:200
      (pair (int_range 0 1000) (float_range (-2.) 2.))
      (fun (seed, x) ->
        let g = Dp_rng.Prng.create seed in
        let rho = Dp_rng.Sampler.dirichlet ~alpha:[| 1.; 1.; 1. |] g in
        let predict i x = if x >= float_of_int (i - 1) then 1. else -1. in
        let v = Dp_pac_bayes.Aggregate.vote ~posterior:rho ~predict x in
        v = 1. || v = -1.);
    Test.make ~name:"binary mechanism count unbiased-ish" ~count:20
      (int_range 0 1000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let bm = Dp_mechanism.Binary_mechanism.create ~epsilon:5. ~horizon:64 g in
        for _ = 1 to 64 do
          Dp_mechanism.Binary_mechanism.observe bm 1
        done;
        Float.abs (Dp_mechanism.Binary_mechanism.current_count bm -. 64.) < 40.);
    Test.make ~name:"selection index in range" ~count:100
      (pair (int_range 0 1000) (int_range 1 10))
      (fun (seed, k) ->
        let g = Dp_rng.Prng.create seed in
        let s =
          Dp_learn.Model_select.select ~epsilon:1.
            ~candidates:(Array.init k Fun.id)
            ~score:float_of_int ~score_sensitivity:1. g
        in
        s.Dp_learn.Model_select.index >= 0 && s.Dp_learn.Model_select.index < k);
  ]

let () =
  Alcotest.run "dp_aggregation"
    [
      ( "aggregate",
        [
          Alcotest.test_case "vote basics" `Quick test_vote_basic;
          Alcotest.test_case "factor-two bound" `Quick
            test_factor_two_bound_holds;
          Alcotest.test_case "vote of draws" `Quick test_vote_of_draws;
        ] );
      ( "binary mechanism",
        [
          Alcotest.test_case "levels" `Quick test_binary_levels;
          Alcotest.test_case "tracks the truth" `Quick
            test_binary_counts_track_truth;
          Alcotest.test_case "error scale" `Quick test_binary_error_scale;
          Alcotest.test_case "guards" `Quick test_binary_guards;
        ] );
      ( "model selection",
        [
          Alcotest.test_case "concentrates with eps" `Quick
            test_select_concentrates;
          Alcotest.test_case "budget & fields" `Quick
            test_select_budget_and_fields;
          Alcotest.test_case "lambda end-to-end" `Slow
            test_select_lambda_end_to_end;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
