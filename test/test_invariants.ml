(* Cross-module invariance properties: algebraic identities that
   downstream code implicitly relies on, checked by qcheck. *)

let approx = Dp_math.Numeric.approx_equal ~rel_tol:1e-9 ~abs_tol:1e-9

let qcheck_tests =
  let open QCheck in
  let risks_gen = array_of_size (Gen.int_range 2 15) (float_range 0. 1.) in
  [
    (* Gibbs posterior is invariant under constant risk shifts: only
       risk DIFFERENCES matter. *)
    Test.make ~name:"gibbs invariant under risk shift" ~count:200
      (pair risks_gen (float_range (-5.) 5.))
      (fun (risks, c) ->
        let k = Array.length risks in
        let p1 =
          Dp_pac_bayes.Gibbs.probabilities
            (Dp_pac_bayes.Gibbs.of_risks ~predictors:(Array.init k Fun.id)
               ~beta:4. ~risks ())
        in
        let p2 =
          Dp_pac_bayes.Gibbs.probabilities
            (Dp_pac_bayes.Gibbs.of_risks ~predictors:(Array.init k Fun.id)
               ~beta:4.
               ~risks:(Array.map (fun r -> r +. c) risks)
               ())
        in
        Array.for_all2 approx p1 p2);
    (* Temperature/scale duality: beta(c.R) = (beta.c)(R). *)
    Test.make ~name:"gibbs temperature-scale duality" ~count:200
      (pair risks_gen (float_range 0.1 5.))
      (fun (risks, c) ->
        let k = Array.length risks in
        let p1 =
          Dp_pac_bayes.Gibbs.probabilities
            (Dp_pac_bayes.Gibbs.of_risks ~predictors:(Array.init k Fun.id)
               ~beta:2.
               ~risks:(Array.map (fun r -> c *. r) risks)
               ())
        in
        let p2 =
          Dp_pac_bayes.Gibbs.probabilities
            (Dp_pac_bayes.Gibbs.of_risks ~predictors:(Array.init k Fun.id)
               ~beta:(2. *. c) ~risks ())
        in
        Array.for_all2 approx p1 p2);
    (* Exponential mechanism: quality shifts cancel in the softmax. *)
    Test.make ~name:"exponential invariant under quality shift" ~count:200
      (pair risks_gen (float_range (-10.) 10.))
      (fun (qs, c) ->
        let k = Array.length qs in
        let build qual =
          Dp_mechanism.Exponential.probabilities
            (Dp_mechanism.Exponential.of_qualities
               ~candidates:(Array.init k Fun.id) ~qualities:qual
               ~sensitivity:1. ~epsilon:1.5 ())
        in
        Array.for_all2 approx (build qs)
          (build (Array.map (fun q -> q +. c) qs)));
    (* Laplace mechanism is shift-equivariant in distribution. *)
    Test.make ~name:"laplace cdf shift equivariance" ~count:300
      (triple (float_range 0.1 3.) (float_range (-5.) 5.) (float_range (-5.) 5.))
      (fun (eps, v, y) ->
        let m = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:eps in
        approx
          (Dp_mechanism.Laplace.cdf m ~value:v y)
          (Dp_mechanism.Laplace.cdf m ~value:(v +. 2.) (y +. 2.)));
    (* RDP composition is exactly additive at every order. *)
    Test.make ~name:"rdp composition additive" ~count:200
      (triple (float_range 0.5 5.) (float_range 0.1 2.) (float_range 1.1 64.))
      (fun (sigma, eps, alpha) ->
        let a = Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:sigma in
        let b = Dp_mechanism.Rdp.laplace ~sensitivity:1. ~epsilon:eps in
        approx
          (Dp_mechanism.Rdp.compose [ a; b ] alpha)
          (a alpha +. b alpha));
    (* Mutual information is invariant under relabeling the inputs. *)
    Test.make ~name:"MI invariant under input permutation" ~count:100
      (int_range 0 10_000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let input = Dp_rng.Sampler.dirichlet ~alpha:[| 1.; 1.; 1. |] g in
        let rows =
          Array.init 3 (fun _ -> Dp_rng.Sampler.dirichlet ~alpha:[| 1.; 1. |] g)
        in
        let ch = Dp_info.Channel.create ~input ~matrix:rows in
        let perm = [| 2; 0; 1 |] in
        let ch' =
          Dp_info.Channel.create
            ~input:(Array.map (fun i -> input.(i)) perm)
            ~matrix:(Array.map (fun i -> rows.(i)) perm)
        in
        approx
          (Dp_info.Channel.mutual_information ch)
          (Dp_info.Channel.mutual_information ch'));
    (* KL is invariant under a common permutation of both arguments. *)
    Test.make ~name:"KL invariant under common permutation" ~count:200
      (int_range 0 10_000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let p = Dp_rng.Sampler.dirichlet ~alpha:[| 1.; 1.; 1.; 1. |] g in
        let q = Dp_rng.Sampler.dirichlet ~alpha:[| 1.; 1.; 1.; 1. |] g in
        let perm = [| 3; 1; 0; 2 |] in
        let ap a = Array.map (fun i -> a.(i)) perm in
        approx
          (Dp_info.Entropy.kl_divergence p q)
          (Dp_info.Entropy.kl_divergence (ap p) (ap q)));
    (* Histogram probabilities are the normalized counts. *)
    Test.make ~name:"histogram probabilities = counts / n" ~count:200
      (array_of_size (Gen.int_range 1 60) (float_range 0. 1.))
      (fun xs ->
        let h = Dp_stats.Histogram.of_samples ~lo:0. ~hi:1. ~bins:6 xs in
        let n = float_of_int (Array.length xs) in
        let ok = ref true in
        for i = 0 to 5 do
          if
            not
              (approx
                 (Dp_stats.Histogram.probability h i)
                 (Dp_stats.Histogram.count h i /. n))
          then ok := false
        done;
        !ok);
    (* The subsampling amplification composes sensibly: amplifying at
       q then q' is weaker than amplifying once at q*q' (two
       independent thinnings). *)
    Test.make ~name:"amplification submultiplicative in q" ~count:300
      (triple (float_range 0.1 2.) (float_range 0.05 1.) (float_range 0.05 1.))
      (fun (eps, q1, q2) ->
        let once =
          Dp_mechanism.Subsample.amplified_epsilon ~epsilon:eps ~q:(q1 *. q2)
        in
        let twice =
          Dp_mechanism.Subsample.amplified_epsilon
            ~epsilon:(Dp_mechanism.Subsample.amplified_epsilon ~epsilon:eps ~q:q1)
            ~q:q2
        in
        once <= twice +. 1e-12);
    (* Group privacy composes: group k1 then k2 = group (k1*k2) for
       pure budgets. *)
    Test.make ~name:"group privacy multiplicative (pure)" ~count:200
      (triple (float_range 0. 2.) (int_range 1 5) (int_range 1 5))
      (fun (eps, k1, k2) ->
        let b = Dp_mechanism.Privacy.pure eps in
        approx
          (Dp_mechanism.Privacy.group ~k:(k1 * k2) b).Dp_mechanism.Privacy
            .epsilon
          (Dp_mechanism.Privacy.group ~k:k2
             (Dp_mechanism.Privacy.group ~k:k1 b))
            .Dp_mechanism.Privacy
            .epsilon);
    (* Vote is invariant under posterior scaling... posteriors are
       normalized, so instead: vote flips with globally negated
       predictors. *)
    Test.make ~name:"vote anti-symmetry" ~count:200
      (pair (int_range 0 10_000) (float_range (-2.) 2.))
      (fun (seed, x) ->
        let g = Dp_rng.Prng.create seed in
        let rho = Dp_rng.Sampler.dirichlet ~alpha:[| 1.; 1.; 1. |] g in
        let predict i x = if x >= float_of_int (i - 1) then 1. else -1. in
        let neg i x = -.predict i x in
        let v = Dp_pac_bayes.Aggregate.vote ~posterior:rho ~predict x in
        let v' = Dp_pac_bayes.Aggregate.vote ~posterior:rho ~predict:neg x in
        (* ties both resolve to +1, so only require opposite when the
           weighted sum is bounded away from zero *)
        let s =
          Dp_math.Numeric.float_sum_range 3 (fun i -> rho.(i) *. predict i x)
        in
        if Float.abs s > 1e-9 then v = -.v' else true);
  ]

let () =
  Alcotest.run "dp_invariants"
    [ ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
