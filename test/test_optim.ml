open Dp_optim

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* Quadratic f(x) = 1/2 (x-c)ᵀ A (x-c) with SPD A. *)
let quadratic c =
  let a = Dp_linalg.Mat.of_arrays [| [| 3.; 1. |]; [| 1.; 2. |] |] in
  let f x =
    let d = Dp_linalg.Vec.sub x c in
    0.5 *. Dp_linalg.Vec.dot d (Dp_linalg.Mat.mul_vec a d)
  in
  let grad x = Dp_linalg.Mat.mul_vec a (Dp_linalg.Vec.sub x c) in
  (f, grad)

let test_gd_quadratic () =
  let c = [| 1.; -2. |] in
  let f, grad = quadratic c in
  let r = Gd.minimize ~f ~grad [| 0.; 0. |] in
  Alcotest.(check bool) "converged" true r.Gd.converged;
  check_close ~tol:1e-5 "x0" c.(0) r.Gd.solution.(0);
  check_close ~tol:1e-5 "x1" c.(1) r.Gd.solution.(1);
  check_close ~tol:1e-6 "objective" 0. r.Gd.objective

let test_gd_projected () =
  (* Minimize |x - (2,0)|^2 over the unit ball: solution (1, 0). *)
  let c = [| 2.; 0. |] in
  let f x = Dp_math.Numeric.sq (Dp_linalg.Vec.dist2 x c) in
  let grad x = Dp_linalg.Vec.scale 2. (Dp_linalg.Vec.sub x c) in
  let r =
    Gd.minimize ~f ~grad
      ~project:(Dp_linalg.Vec.project_l2_ball ~radius:1.)
      [| 0.; 0. |]
  in
  check_close ~tol:1e-4 "boundary x0" 1. r.Gd.solution.(0);
  check_close ~tol:1e-4 "boundary x1" 0. r.Gd.solution.(1)

let test_gd_fixed_step () =
  let c = [| 3. |] in
  let grad x = [| 2. *. (x.(0) -. c.(0)) |] in
  let x = Gd.minimize_fixed_step ~step:0.25 ~iterations:100 ~grad [| 0. |] in
  check_close ~tol:1e-6 "fixed step converges" 3. x.(0)

let test_gd_nonconvex_descent () =
  (* On any function, GD with line search must not increase f. *)
  let f x = sin (3. *. x.(0)) +. (0.1 *. x.(0) *. x.(0)) in
  let grad x = [| (3. *. cos (3. *. x.(0))) +. (0.2 *. x.(0)) |] in
  let x0 = [| 1.7 |] in
  let r = Gd.minimize ~f ~grad x0 in
  Alcotest.(check bool) "descent" true (r.Gd.objective <= f x0 +. 1e-12)

let test_schedules () =
  check_close "constant" 0.3 (Sgd.step_size (Sgd.Constant 0.3) 7);
  check_close "inv sqrt" (0.5 /. 2.) (Sgd.step_size (Sgd.Inv_sqrt 0.5) 4);
  check_close "inv t" 0.125 (Sgd.step_size (Sgd.Inv_t 0.5) 4);
  try
    ignore (Sgd.step_size (Sgd.Constant 1.) 0);
    Alcotest.fail "accepted t=0"
  with Invalid_argument _ -> ()

let test_sgd_least_squares () =
  (* Least squares: f_i(x) = 1/2 (a_i . x - b_i)^2 with known solution. *)
  let g = Dp_rng.Prng.create 11 in
  let theta = [| 2.; -1. |] in
  let d = Dp_dataset.Synthetic.linear_regression ~theta ~noise_std:0.01 ~n:500 g in
  let grad_at i x =
    let a = d.Dp_dataset.Dataset.features.(i) in
    let b = d.Dp_dataset.Dataset.labels.(i) in
    let r = Dp_linalg.Vec.dot a x -. b in
    Dp_linalg.Vec.scale r a
  in
  let x =
    Sgd.minimize ~epochs:60 ~schedule:(Sgd.Inv_sqrt 0.8) ~n:500 ~grad_at
      [| 0.; 0. |] g
  in
  check_close ~tol:0.1 "sgd x0" 2. x.(0);
  check_close ~tol:0.1 "sgd x1" (-1.) x.(1)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"GD never increases a convex objective" ~count:50
      (pair (float_range (-3.) 3.) (float_range (-3.) 3.))
      (fun (c0, c1) ->
        let f, grad = quadratic [| c0; c1 |] in
        let r = Gd.minimize ~max_iter:50 ~f ~grad [| 0.; 0. |] in
        r.Gd.objective <= f [| 0.; 0. |] +. 1e-12);
    Test.make ~name:"projected GD stays feasible" ~count:50
      (pair (float_range (-5.) 5.) (float_range (-5.) 5.))
      (fun (c0, c1) ->
        let f, grad = quadratic [| c0; c1 |] in
        let r =
          Gd.minimize ~max_iter:100 ~f ~grad
            ~project:(Dp_linalg.Vec.project_l2_ball ~radius:1.)
            [| 0.; 0. |]
        in
        Dp_linalg.Vec.norm2 r.Gd.solution <= 1. +. 1e-9);
  ]

let () =
  Alcotest.run "dp_optim"
    [
      ( "gd",
        [
          Alcotest.test_case "quadratic" `Quick test_gd_quadratic;
          Alcotest.test_case "projected" `Quick test_gd_projected;
          Alcotest.test_case "fixed step" `Quick test_gd_fixed_step;
          Alcotest.test_case "descent property" `Quick
            test_gd_nonconvex_descent;
        ] );
      ( "sgd",
        [
          Alcotest.test_case "schedules" `Quick test_schedules;
          Alcotest.test_case "least squares" `Quick test_sgd_least_squares;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
