open Dp_linalg

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let check_vec ?(tol = 1e-9) msg expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: length mismatch" msg;
  Array.iteri
    (fun i e -> check_close ~tol (Printf.sprintf "%s[%d]" msg i) e actual.(i))
    expected

let check_mat ?(tol = 1e-9) msg expected actual =
  let re, ce = Mat.dims expected and ra, ca = Mat.dims actual in
  if re <> ra || ce <> ca then Alcotest.failf "%s: shape mismatch" msg;
  for i = 0 to re - 1 do
    for j = 0 to ce - 1 do
      check_close ~tol
        (Printf.sprintf "%s[%d,%d]" msg i j)
        (Mat.get expected i j) (Mat.get actual i j)
    done
  done

(* ------------------------------------------------------------------ *)

let test_vec_ops () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  check_vec "add" [| 5.; 7.; 9. |] (Vec.add a b);
  check_vec "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  check_vec "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  check_vec "axpy" [| 6.; 9.; 12. |] (Vec.axpy ~alpha:2. a b);
  check_close "dot" 32. (Vec.dot a b);
  check_close "norm2" (sqrt 14.) (Vec.norm2 a);
  check_close "norm1" 6. (Vec.norm1 a);
  check_close "norm_inf" 3. (Vec.norm_inf a);
  check_close "dist2" (sqrt 27.) (Vec.dist2 a b);
  Alcotest.(check int) "argmax" 2 (Vec.argmax a);
  Alcotest.(check int) "argmin" 0 (Vec.argmin a)

let test_vec_projection () =
  let x = [| 3.; 4. |] in
  check_vec "inside" x (Vec.project_l2_ball ~radius:10. x);
  let p = Vec.project_l2_ball ~radius:1. x in
  check_close "on sphere" 1. (Vec.norm2 p);
  check_vec "direction" [| 0.6; 0.8 |] p;
  check_vec "normalize" [| 0.6; 0.8 |] (Vec.normalize x)

let test_vec_errors () =
  (try
     ignore (Vec.add [| 1. |] [| 1.; 2. |]);
     Alcotest.fail "add accepted mismatch"
   with Invalid_argument _ -> ());
  try
    ignore (Vec.normalize [| 0.; 0. |]);
    Alcotest.fail "normalize accepted zero"
  with Invalid_argument _ -> ()

let test_mat_basic () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_close "get" 3. (Mat.get a 1 0);
  check_vec "row" [| 3.; 4. |] (Mat.row a 1);
  check_vec "col" [| 2.; 4. |] (Mat.col a 1);
  check_mat "transpose"
    (Mat.of_arrays [| [| 1.; 3. |]; [| 2.; 4. |] |])
    (Mat.transpose a);
  check_close "trace" 5. (Mat.trace a);
  check_close "frobenius" (sqrt 30.) (Mat.frobenius_norm a);
  check_mat "identity mult" a (Mat.mul a (Mat.identity 2))

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  check_mat "mul"
    (Mat.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |])
    (Mat.mul a b);
  check_vec "mul_vec" [| 5.; 11. |] (Mat.mul_vec a [| 1.; 2. |]);
  check_vec "tmul_vec" [| 7.; 10. |] (Mat.tmul_vec a [| 1.; 2. |]);
  check_mat "gram"
    (Mat.mul (Mat.transpose a) a)
    (Mat.gram a);
  check_mat "outer"
    (Mat.of_arrays [| [| 2.; 3. |]; [| 4.; 6. |] |])
    (Mat.outer [| 1.; 2. |] [| 2.; 3. |])

let spd_example () =
  (* A = Bᵀ B + I is SPD for any B. *)
  let b =
    Mat.of_arrays [| [| 1.; 2.; 0. |]; [| 0.; 1.; 1. |]; [| 2.; 0.; 1. |] |]
  in
  Mat.add_diagonal 1. (Mat.gram b)

let test_cholesky () =
  let a = spd_example () in
  let l = Decomp.cholesky a in
  check_mat ~tol:1e-9 "reconstruction" a (Mat.mul l (Mat.transpose l));
  let x_true = [| 1.; -2.; 0.5 |] in
  let b = Mat.mul_vec a x_true in
  check_vec ~tol:1e-9 "solve_spd" x_true (Decomp.solve_spd a b);
  (* Non-PD must raise. *)
  let bad = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  try
    ignore (Decomp.cholesky bad);
    Alcotest.fail "cholesky accepted indefinite matrix"
  with Decomp.Singular _ -> ()

let test_lu_solve () =
  let a =
    Mat.of_arrays [| [| 0.; 2.; 1. |]; [| 1.; 1.; 0. |]; [| 3.; 0.; 1. |] |]
  in
  let x_true = [| 2.; -1.; 3. |] in
  let b = Mat.mul_vec a x_true in
  check_vec ~tol:1e-9 "solve" x_true (Decomp.solve a b);
  let inv = Decomp.inverse a in
  check_mat ~tol:1e-9 "inverse" (Mat.identity 3) (Mat.mul a inv);
  check_close ~tol:1e-9 "det"
    ((0. *. ((1. *. 1.) -. (0. *. 0.)))
    -. (2. *. ((1. *. 1.) -. (0. *. 3.)))
    +. (1. *. ((1. *. 0.) -. (1. *. 3.))))
    (Decomp.determinant a)

let test_log_det () =
  let a = spd_example () in
  check_close ~tol:1e-9 "log det"
    (log (Decomp.determinant a))
    (Decomp.log_det_spd a)

let test_qr_lstsq () =
  let a =
    Mat.of_arrays
      [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |]; [| 1.; 3. |] |]
  in
  let q, r = Decomp.qr a in
  check_mat ~tol:1e-9 "QR reconstruction" a (Mat.mul q r);
  check_mat ~tol:1e-9 "Q orthonormal" (Mat.identity 2) (Mat.gram q);
  (* Least squares for y = 1 + 2x exactly. *)
  let b = [| 1.; 3.; 5.; 7. |] in
  check_vec ~tol:1e-9 "exact fit" [| 1.; 2. |] (Decomp.lstsq a b);
  (* Noisy: residual must be orthogonal to the column space. *)
  let b2 = [| 1.1; 2.9; 5.2; 6.8 |] in
  let x = Decomp.lstsq a b2 in
  let resid = Vec.sub b2 (Mat.mul_vec a x) in
  check_vec ~tol:1e-9 "normal equations" [| 0.; 0. |] (Mat.tmul_vec a resid)

let test_jacobi_eigen () =
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let values, vectors = Decomp.jacobi_eigen a in
  check_vec ~tol:1e-9 "eigenvalues" [| 3.; 1. |] values;
  (* A v = λ v for each column. *)
  for j = 0 to 1 do
    let v = Mat.col vectors j in
    check_vec ~tol:1e-8
      (Printf.sprintf "eigvec %d" j)
      (Vec.scale values.(j) v) (Mat.mul_vec a v)
  done;
  let a3 = spd_example () in
  let values, _ = Decomp.jacobi_eigen a3 in
  check_close ~tol:1e-8 "trace = sum eig" (Mat.trace a3)
    (Dp_math.Summation.sum values);
  Alcotest.(check bool)
    "SPD eigenvalues positive" true
    (Array.for_all (fun v -> v > 0.) values)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  let vec_gen n = array_of_size (Gen.return n) (float_range (-10.) 10.) in
  [
    Test.make ~name:"Cauchy-Schwarz" ~count:300
      (pair (vec_gen 5) (vec_gen 5))
      (fun (a, b) ->
        Float.abs (Vec.dot a b) <= (Vec.norm2 a *. Vec.norm2 b) +. 1e-9);
    Test.make ~name:"triangle inequality" ~count:300
      (pair (vec_gen 5) (vec_gen 5))
      (fun (a, b) ->
        Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-9);
    Test.make ~name:"projection is contraction" ~count:300
      (pair (vec_gen 4) (vec_gen 4))
      (fun (a, b) ->
        let pa = Vec.project_l2_ball ~radius:1. a in
        let pb = Vec.project_l2_ball ~radius:1. b in
        Vec.dist2 pa pb <= Vec.dist2 a b +. 1e-9);
    Test.make ~name:"gram is PSD" ~count:100
      (array_of_size (Gen.return 12) (float_range (-3.) 3.))
      (fun data ->
        let a = Mat.init 4 3 (fun i j -> data.((i * 3) + j)) in
        let g = Mat.gram a in
        let x = [| 1.; -0.5; 2. |] in
        Vec.dot x (Mat.mul_vec g x) >= -1e-9);
    Test.make ~name:"solve then multiply round-trips" ~count:100
      (array_of_size (Gen.return 9) (float_range (-3.) 3.))
      (fun data ->
        let a = Mat.init 3 3 (fun i j -> data.((i * 3) + j)) in
        let a = Mat.add_diagonal 5. a in
        (* diagonal dominance keeps it nonsingular *)
        let b = [| 1.; 2.; 3. |] in
        match Decomp.solve a b with
        | x ->
            let b' = Mat.mul_vec a x in
            Array.for_all2
              (fun u v -> Dp_math.Numeric.approx_equal ~rel_tol:1e-6 ~abs_tol:1e-6 u v)
              b b'
        | exception Decomp.Singular _ -> true);
  ]

let () =
  Alcotest.run "dp_linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_ops;
          Alcotest.test_case "projection" `Quick test_vec_projection;
          Alcotest.test_case "errors" `Quick test_vec_errors;
        ] );
      ( "mat",
        [
          Alcotest.test_case "basics" `Quick test_mat_basic;
          Alcotest.test_case "products" `Quick test_mat_mul;
        ] );
      ( "decomp",
        [
          Alcotest.test_case "cholesky" `Quick test_cholesky;
          Alcotest.test_case "lu solve" `Quick test_lu_solve;
          Alcotest.test_case "log det" `Quick test_log_det;
          Alcotest.test_case "qr & least squares" `Quick test_qr_lstsq;
          Alcotest.test_case "jacobi eigen" `Quick test_jacobi_eigen;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
