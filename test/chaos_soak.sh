#!/bin/sh
# Chaos soak for the TCP frontend: concurrent retrying clients against a
# fault-armed server that is kill -9'd mid-wave and restarted on the
# same journal. End-to-end invariants checked:
#   - every client reaches a final reply for every request (exit 0),
#     retrying through injected accept failures, read stalls, dropped
#     and torn replies, and the hard restart;
#   - no noise value is ever released twice: the set of fresh
#     (cache=miss) released values across both server lives is
#     duplicate-free, and a pre-kill answer re-asked after the restart
#     replays from the recovered cache bit-identically;
#   - the journal is the truth: spent epsilon and answered counts from
#     the live (recovered, post-soak) report agree with a fault-free
#     offline replay of the same journal, and the audit trace verifies;
#   - trained model handles are durable: a kill -9 mid-chain loses no
#     released model (theta and predictions replay bit-identically from
#     the journal's Train frames), a withheld-unconverged handle stays
#     withheld across the restart, and no released theta is ever
#     duplicated across server lives;
#   - continual streams are durable: a kill -9 mid-append-burst loses
#     no accepted append — after recovery the live stream's prefix and
#     window counts agree bit-identically (hex floats) with a pure
#     offline replay of the journal's Stream frames, two independent
#     recoveries release identical counts, and no tree-node noise is
#     redrawn on recovery (append frames carry the noisy values);
#   - SIGTERM drains gracefully: exit 0, all charges journaled, and the
#     final metrics snapshot passes `dpkit stats --check`.
#
# The multi-process pool wave (kill -9 of random workers AND the
# coordinator under `serve --workers N`, crash-merge recovery checked
# bit-identical against `dpkit pool replay`) lives in pool_soak.sh,
# which runs alongside this script under the same runtest alias.
set -eu

DPKIT="$1"
J="chaos_soak.wal"
M="chaos_soak.metrics"
SRVLOG1="chaos_srv1.log"
SRVLOG2="chaos_srv2.log"
SRVLOG3="chaos_srv3.log"
rm -f "$J" "$M" "$SRVLOG1" "$SRVLOG2" "$SRVLOG3" chaos_cli_*.out

client() { # client PORT JITTER_SEED
  "$DPKIT" client --port "$1" --attempts 15 --backoff 0.02 --backoff-cap 0.3 \
    --timeout 3 --jitter-seed "$2"
}

wait_listening() { # wait_listening LOGFILE
  i=0
  while [ $i -lt 100 ]; do
    if grep -q "listening port=" "$1" 2>/dev/null; then return 0; fi
    i=$((i + 1))
    sleep 0.05
  done
  echo "server never came up:"; cat "$1"; exit 1
}

# --- server 1: fault-armed, will be kill -9'd mid-wave -----------------
# The port must be explicit (not ephemeral) so the restarted server can
# reclaim it; retry a few candidates in case one is taken.
PORT=$((21000 + $$ % 3000))
PID1=""
for try in 0 1 2 3 4; do
  CAND=$((PORT + try))
  "$DPKIT" serve --tcp "$CAND" --journal "$J" \
    --faults "accept-fail=2,read-stall=3,conn-reset=4,write-drop=6" \
    >"$SRVLOG1" 2>&1 &
  PID1=$!
  sleep 0.3
  if grep -q "listening port=" "$SRVLOG1" 2>/dev/null; then
    PORT=$CAND
    break
  fi
  wait "$PID1" 2>/dev/null || true
  PID1=""
done
[ -n "$PID1" ] || { echo "could not bind any candidate port"; exit 1; }
wait_listening "$SRVLOG1"

printf 'register demo rows=400 eps=8 default-eps=0.01\n' \
  | client "$PORT" 100 > chaos_cli_reg.out
grep -q 'ok registered name=demo' chaos_cli_reg.out || {
  echo "registration failed:"; cat chaos_cli_reg.out; exit 1; }

# --- wave 1: concurrent clients, distinct eps per query ----------------
# Every query is mean(income) at a unique eps, so every fresh answer is
# a unique Laplace draw and its reply is identifiable by eps-charged.
W1PIDS=""
for i in 1 2 3; do
  printf 'query demo mean(income) eps=0.0%d1\nquery demo mean(income) eps=0.0%d2\nquery demo mean(income) eps=0.0%d3\n' \
    "$i" "$i" "$i" | client "$PORT" "$i" > "chaos_cli_w1_$i.out" &
  W1PIDS="$W1PIDS $!"
done
for p in $W1PIDS; do wait "$p" || true; done
for i in 1 2 3; do
  [ "$(grep -c '^ok seq=' "chaos_cli_w1_$i.out")" -eq 3 ] || {
    echo "wave-1 client $i missing answers:"; cat "chaos_cli_w1_$i.out"; exit 1; }
done
# Client 1 sends its queries sequentially, so its first answer is the
# eps=0.011 one — even when a dropped reply forced a retry that came
# back as a cache=hit instead of the original fresh charge.
V1=$(sed -n 's/^ok seq=[0-9]* value=\([^ ]*\) .*/\1/p' chaos_cli_w1_1.out | head -1)
[ -n "$V1" ] || { echo "no eps=0.011 answer in wave 1"; cat chaos_cli_w1_1.out; exit 1; }

# --- wave 2: kill -9 mid-wave, restart on the same journal -------------
W2PIDS=""
for i in 1 2 3; do
  printf 'query demo mean(income) eps=0.1%d1\nquery demo mean(income) eps=0.1%d2\nquery demo mean(income) eps=0.1%d3\n' \
    "$i" "$i" "$i" | client "$PORT" "$((10 + i))" > "chaos_cli_w2_$i.out" &
  W2PIDS="$W2PIDS $!"
done
sleep 0.25
kill -9 "$PID1" 2>/dev/null || true
wait "$PID1" 2>/dev/null || true
sleep 0.2
"$DPKIT" serve --tcp "$PORT" --journal "$J" --metrics "$M" --faults off \
  >"$SRVLOG2" 2>&1 &
PID2=$!
wait_listening "$SRVLOG2"

W2FAIL=0
for p in $W2PIDS; do
  wait "$p" || W2FAIL=1
done
[ "$W2FAIL" -eq 0 ] || {
  echo "a wave-2 client gave up across the restart:"
  cat chaos_cli_w2_*.out; exit 1; }
for i in 1 2 3; do
  [ "$(grep -c '^ok seq=' "chaos_cli_w2_$i.out")" -eq 3 ] || {
    echo "wave-2 client $i missing answers:"; cat "chaos_cli_w2_$i.out"; exit 1; }
done

# --- train wave: model handles survive kill -9 mid-chain ---------------
# One released model (objective perturbation: deterministic gate), one
# deterministically-withheld model (frozen gibbs proposal), then a long
# gibbs train left in flight when the server is kill -9'd. The journal's
# Train frames must rebuild the first two handles bit-identically; the
# interrupted train has a journaled charge but no model frame, so its
# retry is priced as a fresh request.
printf 'train demo backend=objpert eps=0.3\nmodel demo/m1\npredict demo/m1 40,50000\ntrain demo eps=0.05 steps=16 burn=0 step-std=1e-12\nmodel demo/m2\n' \
  | client "$PORT" 300 > chaos_cli_train.out
grep -q 'ok trained model=demo/m1 backend=objective-perturbation .*released=yes' \
  chaos_cli_train.out || {
  echo "objpert train failed:"; cat chaos_cli_train.out; exit 1; }
grep -q 'err degraded reason=unconverged model=demo/m2' chaos_cli_train.out || {
  echo "frozen gibbs train not withheld:"; cat chaos_cli_train.out; exit 1; }
THETA1=$(grep '^  theta=' chaos_cli_train.out | head -1)
[ -n "$THETA1" ] || { echo "no theta line for demo/m1"; cat chaos_cli_train.out; exit 1; }
PRED1=$(sed -n 's/^ok predict model=demo\/m1 value=\([^ ]*\).*/\1/p' chaos_cli_train.out)
[ -n "$PRED1" ] || { echo "no prediction for demo/m1"; cat chaos_cli_train.out; exit 1; }

# --- stream wave: a continual counter killed mid-append-burst ----------
# Open a tree-mechanism stream, land 60 appends and read the released
# prefix, then fire a 300-append burst that the kill -9 below lands in
# the middle of. The burst client retries through the restart; accepted
# appends are journaled (noisy node values included) before the tree
# mutates, so whatever subset landed is exactly what every recovery
# replays.
{
  printf 'stream new demo N=512 window=32 eps=0.005\n'
  awk 'BEGIN { for (i = 0; i < 60; i++) print "append demo/s1 " i % 2 }'
  printf 'stream read demo/s1\n'
} | client "$PORT" 310 > chaos_cli_stream_pre.out
grep -q 'ok stream handle=demo/s1 N=512 window=32' chaos_cli_stream_pre.out || {
  echo "stream open failed:"; cat chaos_cli_stream_pre.out; exit 1; }
[ "$(grep -c '^ok append stream=demo/s1' chaos_cli_stream_pre.out)" -eq 60 ] || {
  echo "pre-kill appends missing:"; cat chaos_cli_stream_pre.out; exit 1; }
grep -q 'ok stream-read stream=demo/s1 t=60 ' chaos_cli_stream_pre.out || {
  echo "pre-kill stream read failed:"; cat chaos_cli_stream_pre.out; exit 1; }

awk 'BEGIN { for (i = 0; i < 300; i++) print "append demo/s1 " (i + 1) % 2 }' \
  | client "$PORT" 311 > chaos_cli_stream_burst.out &
SPID=$!

printf 'train demo eps=0.05 steps=8000 burn=8000\n' \
  | client "$PORT" 301 > chaos_cli_train_w3.out &
TPID=$!
sleep 0.35
kill -9 "$PID2" 2>/dev/null || true
wait "$PID2" 2>/dev/null || true
sleep 0.2
"$DPKIT" serve --tcp "$PORT" --journal "$J" --metrics "$M" --faults off \
  >"$SRVLOG3" 2>&1 &
PID3=$!
wait_listening "$SRVLOG3"
wait "$TPID" || true
wait "$SPID" || {
  echo "append-burst client gave up across the restart:"
  cat chaos_cli_stream_burst.out; exit 1; }

# Every burst append reached a final reply (ok, or a typed final error —
# a retried append that already landed pre-kill may overshoot nothing
# here since N=512 > 360, so they must all be ok).
[ "$(grep -c '^ok append stream=demo/s1' chaos_cli_stream_burst.out)" -ge 300 ] || {
  echo "burst appends missing finals:"; cat chaos_cli_stream_burst.out; exit 1; }

# The recovered-and-continued live stream vs a pure journal replay:
# prefix and window counts must agree to the last bit (hex floats).
printf 'stream read demo/s1\nstream window demo/s1\n' \
  | client "$PORT" 312 > chaos_cli_stream_verify.out
LIVE_SREAD=$(sed -n 's/^ok stream-read .* count-hex=\([^ ]*\).*/\1/p' chaos_cli_stream_verify.out)
LIVE_SWIN=$(sed -n 's/^ok stream-window .* count-hex=\([^ ]*\).*/\1/p' chaos_cli_stream_verify.out)
LIVE_ST=$(sed -n 's/^ok stream-read stream=demo\/s1 t=\([0-9]*\).*/\1/p' chaos_cli_stream_verify.out)
[ -n "$LIVE_SREAD" ] && [ -n "$LIVE_SWIN" ] || {
  echo "post-restart stream reads failed:"; cat chaos_cli_stream_verify.out; exit 1; }

printf 'model demo/m1\npredict demo/m1 40,50000\nmodel demo/m2\n' \
  | client "$PORT" 302 > chaos_cli_train_verify.out
THETA2=$(grep '^  theta=' chaos_cli_train_verify.out | head -1)
[ "$THETA1" = "$THETA2" ] || {
  echo "recovered theta not bit-identical:"
  echo "  before: $THETA1"; echo "  after:  $THETA2"; exit 1; }
PRED2=$(sed -n 's/^ok predict model=demo\/m1 value=\([^ ]*\).*/\1/p' chaos_cli_train_verify.out)
[ "$PRED1" = "$PRED2" ] || {
  echo "recovered prediction diverges: $PRED1 vs $PRED2"; exit 1; }
grep -q 'ok model demo/m2 .*released=no' chaos_cli_train_verify.out || {
  echo "withheld model released (or lost) across restart:"
  cat chaos_cli_train_verify.out; exit 1; }

# No released theta is ever duplicated: across both lives, distinct
# handles carry distinct thetas (same-handle replays are exempt).
TDUPES=$(grep -h '^ok model\|^  theta=' chaos_cli_train*.out \
  | awk '/^ok model/ { h=$3 } /^  theta=/ { print h "\t" $0 }' \
  | sort -u | cut -f2 | sort | uniq -d)
[ -z "$TDUPES" ] || { echo "theta released twice: $TDUPES"; exit 1; }

# --- recovered cache: a pre-kill answer replays bit-identically --------
printf 'query demo mean(income) eps=0.011\nreport demo\nreplay demo\n' \
  | client "$PORT" 200 > chaos_cli_verify.out
grep -q "^ok seq=[0-9]* value=$V1 .*cache=hit" chaos_cli_verify.out || {
  echo "pre-kill answer not replayed bit-identically (expected $V1):"
  cat chaos_cli_verify.out; exit 1; }
grep -q 'ok replay consistent' chaos_cli_verify.out || {
  echo "live audit replay inconsistent:"; cat chaos_cli_verify.out; exit 1; }
LIVE_SPENT=$(sed -n 's/.*eps-total=[^ ]* eps-spent=\([^ ]*\).*/\1/p' chaos_cli_verify.out)
LIVE_ANSWERED=$(sed -n 's/.*queries=[0-9]* answered=\([0-9]*\).*/\1/p' chaos_cli_verify.out)

# --- no noise value is ever released twice -----------------------------
# Fresh (cache=miss) released values must be unique across both server
# lives; cache=hit repeats are post-processing and exempt.
DUPES=$(sed -n 's/^ok seq=[0-9]* value=\([^ ]*\).*cache=miss.*/\1/p' chaos_cli_*.out | sort | uniq -d)
[ -z "$DUPES" ] || { echo "noise value released twice: $DUPES"; exit 1; }

# --- graceful drain ----------------------------------------------------
kill -TERM "$PID3"
set +e
wait "$PID3"
CODE=$?
set -e
[ "$CODE" -eq 0 ] || { echo "drain exited $CODE, expected 0:"; cat "$SRVLOG3"; exit 1; }
grep -q 'drained' "$SRVLOG3" || { echo "no drain marker:"; cat "$SRVLOG3"; exit 1; }
[ -s "$M" ] || { echo "metrics snapshot missing"; exit 1; }
"$DPKIT" stats --check "$M" >/dev/null || {
  echo "metrics snapshot failed stats --check"; exit 1; }

# --- fault-free offline replay agrees with the live report -------------
OFFLINE=$(printf 'report demo\nreplay demo\nstream read demo/s1\nstream window demo/s1\nquit\n' \
  | "$DPKIT" serve --journal "$J" 2>/dev/null)
OFF_SPENT=$(echo "$OFFLINE" | sed -n 's/.*eps-total=[^ ]* eps-spent=\([^ ]*\).*/\1/p')
OFF_ANSWERED=$(echo "$OFFLINE" | sed -n 's/.*queries=[0-9]* answered=\([0-9]*\).*/\1/p')
echo "$OFFLINE" | grep -q 'ok replay consistent' || {
  echo "offline audit replay inconsistent:"; echo "$OFFLINE"; exit 1; }
[ -n "$LIVE_SPENT" ] && [ "$LIVE_SPENT" = "$OFF_SPENT" ] || {
  echo "spent epsilon diverges: live=$LIVE_SPENT offline=$OFF_SPENT"; exit 1; }
[ -n "$LIVE_ANSWERED" ] && [ "$LIVE_ANSWERED" = "$OFF_ANSWERED" ] || {
  echo "answered counts diverge: live=$LIVE_ANSWERED offline=$OFF_ANSWERED"; exit 1; }

# The stream frames are part of the same truth: the offline replay's
# prefix/window counts must match the post-restart live ones bit-for-bit
# (recovery applied the journaled node noise, never redrew it), and a
# second independent replay must agree with the first — recovering twice
# releases the same counts and the same noise.
OFF_SREAD=$(echo "$OFFLINE" | sed -n 's/^ok stream-read .* count-hex=\([^ ]*\).*/\1/p')
OFF_SWIN=$(echo "$OFFLINE" | sed -n 's/^ok stream-window .* count-hex=\([^ ]*\).*/\1/p')
OFF_ST=$(echo "$OFFLINE" | sed -n 's/^ok stream-read stream=demo\/s1 t=\([0-9]*\).*/\1/p')
[ "$LIVE_SREAD" = "$OFF_SREAD" ] || {
  echo "recovered prefix count diverges: live=$LIVE_SREAD offline=$OFF_SREAD"; exit 1; }
[ "$LIVE_SWIN" = "$OFF_SWIN" ] || {
  echo "recovered window count diverges: live=$LIVE_SWIN offline=$OFF_SWIN"; exit 1; }
[ "$LIVE_ST" = "$OFF_ST" ] || {
  echo "recovered stream length diverges: live=$LIVE_ST offline=$OFF_ST"; exit 1; }
OFFLINE2=$(printf 'stream read demo/s1\nstream window demo/s1\nquit\n' \
  | "$DPKIT" serve --journal "$J" 2>/dev/null)
OFF2_SREAD=$(echo "$OFFLINE2" | sed -n 's/^ok stream-read .* count-hex=\([^ ]*\).*/\1/p')
OFF2_SWIN=$(echo "$OFFLINE2" | sed -n 's/^ok stream-window .* count-hex=\([^ ]*\).*/\1/p')
[ "$OFF_SREAD" = "$OFF2_SREAD" ] && [ "$OFF_SWIN" = "$OFF2_SWIN" ] || {
  echo "two recoveries disagree: $OFF_SREAD/$OFF_SWIN vs $OFF2_SREAD/$OFF2_SWIN"; exit 1; }

rm -f "$J" "$M" "$SRVLOG1" "$SRVLOG2" "$SRVLOG3" chaos_cli_*.out
