#!/bin/sh
# Chaos soak for the TCP frontend: concurrent retrying clients against a
# fault-armed server that is kill -9'd mid-wave and restarted on the
# same journal. End-to-end invariants checked:
#   - every client reaches a final reply for every request (exit 0),
#     retrying through injected accept failures, read stalls, dropped
#     and torn replies, and the hard restart;
#   - no noise value is ever released twice: the set of fresh
#     (cache=miss) released values across both server lives is
#     duplicate-free, and a pre-kill answer re-asked after the restart
#     replays from the recovered cache bit-identically;
#   - the journal is the truth: spent epsilon and answered counts from
#     the live (recovered, post-soak) report agree with a fault-free
#     offline replay of the same journal, and the audit trace verifies;
#   - SIGTERM drains gracefully: exit 0, all charges journaled, and the
#     final metrics snapshot passes `dpkit stats --check`.
set -eu

DPKIT="$1"
J="chaos_soak.wal"
M="chaos_soak.metrics"
SRVLOG1="chaos_srv1.log"
SRVLOG2="chaos_srv2.log"
rm -f "$J" "$M" "$SRVLOG1" "$SRVLOG2" chaos_cli_*.out

client() { # client PORT JITTER_SEED
  "$DPKIT" client --port "$1" --attempts 15 --backoff 0.02 --backoff-cap 0.3 \
    --timeout 3 --jitter-seed "$2"
}

wait_listening() { # wait_listening LOGFILE
  i=0
  while [ $i -lt 100 ]; do
    if grep -q "listening port=" "$1" 2>/dev/null; then return 0; fi
    i=$((i + 1))
    sleep 0.05
  done
  echo "server never came up:"; cat "$1"; exit 1
}

# --- server 1: fault-armed, will be kill -9'd mid-wave -----------------
# The port must be explicit (not ephemeral) so the restarted server can
# reclaim it; retry a few candidates in case one is taken.
PORT=$((21000 + $$ % 3000))
PID1=""
for try in 0 1 2 3 4; do
  CAND=$((PORT + try))
  "$DPKIT" serve --tcp "$CAND" --journal "$J" \
    --faults "accept-fail=2,read-stall=3,conn-reset=4,write-drop=6" \
    >"$SRVLOG1" 2>&1 &
  PID1=$!
  sleep 0.3
  if grep -q "listening port=" "$SRVLOG1" 2>/dev/null; then
    PORT=$CAND
    break
  fi
  wait "$PID1" 2>/dev/null || true
  PID1=""
done
[ -n "$PID1" ] || { echo "could not bind any candidate port"; exit 1; }
wait_listening "$SRVLOG1"

printf 'register demo rows=400 eps=8 default-eps=0.01\n' \
  | client "$PORT" 100 > chaos_cli_reg.out
grep -q 'ok registered name=demo' chaos_cli_reg.out || {
  echo "registration failed:"; cat chaos_cli_reg.out; exit 1; }

# --- wave 1: concurrent clients, distinct eps per query ----------------
# Every query is mean(income) at a unique eps, so every fresh answer is
# a unique Laplace draw and its reply is identifiable by eps-charged.
W1PIDS=""
for i in 1 2 3; do
  printf 'query demo mean(income) eps=0.0%d1\nquery demo mean(income) eps=0.0%d2\nquery demo mean(income) eps=0.0%d3\n' \
    "$i" "$i" "$i" | client "$PORT" "$i" > "chaos_cli_w1_$i.out" &
  W1PIDS="$W1PIDS $!"
done
for p in $W1PIDS; do wait "$p" || true; done
for i in 1 2 3; do
  [ "$(grep -c '^ok seq=' "chaos_cli_w1_$i.out")" -eq 3 ] || {
    echo "wave-1 client $i missing answers:"; cat "chaos_cli_w1_$i.out"; exit 1; }
done
# Client 1 sends its queries sequentially, so its first answer is the
# eps=0.011 one — even when a dropped reply forced a retry that came
# back as a cache=hit instead of the original fresh charge.
V1=$(sed -n 's/^ok seq=[0-9]* value=\([^ ]*\) .*/\1/p' chaos_cli_w1_1.out | head -1)
[ -n "$V1" ] || { echo "no eps=0.011 answer in wave 1"; cat chaos_cli_w1_1.out; exit 1; }

# --- wave 2: kill -9 mid-wave, restart on the same journal -------------
W2PIDS=""
for i in 1 2 3; do
  printf 'query demo mean(income) eps=0.1%d1\nquery demo mean(income) eps=0.1%d2\nquery demo mean(income) eps=0.1%d3\n' \
    "$i" "$i" "$i" | client "$PORT" "$((10 + i))" > "chaos_cli_w2_$i.out" &
  W2PIDS="$W2PIDS $!"
done
sleep 0.25
kill -9 "$PID1" 2>/dev/null || true
wait "$PID1" 2>/dev/null || true
sleep 0.2
"$DPKIT" serve --tcp "$PORT" --journal "$J" --metrics "$M" --faults off \
  >"$SRVLOG2" 2>&1 &
PID2=$!
wait_listening "$SRVLOG2"

W2FAIL=0
for p in $W2PIDS; do
  wait "$p" || W2FAIL=1
done
[ "$W2FAIL" -eq 0 ] || {
  echo "a wave-2 client gave up across the restart:"
  cat chaos_cli_w2_*.out; exit 1; }
for i in 1 2 3; do
  [ "$(grep -c '^ok seq=' "chaos_cli_w2_$i.out")" -eq 3 ] || {
    echo "wave-2 client $i missing answers:"; cat "chaos_cli_w2_$i.out"; exit 1; }
done

# --- recovered cache: a pre-kill answer replays bit-identically --------
printf 'query demo mean(income) eps=0.011\nreport demo\nreplay demo\n' \
  | client "$PORT" 200 > chaos_cli_verify.out
grep -q "^ok seq=[0-9]* value=$V1 .*cache=hit" chaos_cli_verify.out || {
  echo "pre-kill answer not replayed bit-identically (expected $V1):"
  cat chaos_cli_verify.out; exit 1; }
grep -q 'ok replay consistent' chaos_cli_verify.out || {
  echo "live audit replay inconsistent:"; cat chaos_cli_verify.out; exit 1; }
LIVE_SPENT=$(sed -n 's/.*eps-total=[^ ]* eps-spent=\([^ ]*\).*/\1/p' chaos_cli_verify.out)
LIVE_ANSWERED=$(sed -n 's/.*queries=[0-9]* answered=\([0-9]*\).*/\1/p' chaos_cli_verify.out)

# --- no noise value is ever released twice -----------------------------
# Fresh (cache=miss) released values must be unique across both server
# lives; cache=hit repeats are post-processing and exempt.
DUPES=$(sed -n 's/^ok seq=[0-9]* value=\([^ ]*\).*cache=miss.*/\1/p' chaos_cli_*.out | sort | uniq -d)
[ -z "$DUPES" ] || { echo "noise value released twice: $DUPES"; exit 1; }

# --- graceful drain ----------------------------------------------------
kill -TERM "$PID2"
set +e
wait "$PID2"
CODE=$?
set -e
[ "$CODE" -eq 0 ] || { echo "drain exited $CODE, expected 0:"; cat "$SRVLOG2"; exit 1; }
grep -q 'drained' "$SRVLOG2" || { echo "no drain marker:"; cat "$SRVLOG2"; exit 1; }
[ -s "$M" ] || { echo "metrics snapshot missing"; exit 1; }
"$DPKIT" stats --check "$M" >/dev/null || {
  echo "metrics snapshot failed stats --check"; exit 1; }

# --- fault-free offline replay agrees with the live report -------------
OFFLINE=$(printf 'report demo\nreplay demo\nquit\n' | "$DPKIT" serve --journal "$J" 2>/dev/null)
OFF_SPENT=$(echo "$OFFLINE" | sed -n 's/.*eps-total=[^ ]* eps-spent=\([^ ]*\).*/\1/p')
OFF_ANSWERED=$(echo "$OFFLINE" | sed -n 's/.*queries=[0-9]* answered=\([0-9]*\).*/\1/p')
echo "$OFFLINE" | grep -q 'ok replay consistent' || {
  echo "offline audit replay inconsistent:"; echo "$OFFLINE"; exit 1; }
[ -n "$LIVE_SPENT" ] && [ "$LIVE_SPENT" = "$OFF_SPENT" ] || {
  echo "spent epsilon diverges: live=$LIVE_SPENT offline=$OFF_SPENT"; exit 1; }
[ -n "$LIVE_ANSWERED" ] && [ "$LIVE_ANSWERED" = "$OFF_ANSWERED" ] || {
  echo "answered counts diverge: live=$LIVE_ANSWERED offline=$OFF_ANSWERED"; exit 1; }

rm -f "$J" "$M" "$SRVLOG1" "$SRVLOG2" chaos_cli_*.out
