#!/bin/sh
# dpkit lint must (1) flag every seeded violation in lint_corpus/ with
# the expected rule id — exactly one finding per file, nine total —
# (2) honour per-rule exemptions, and (3) report zero findings on the
# repository's own sources.
set -u

DPKIT="$1"

out=$("$DPKIT" lint --format json lint_corpus)
if [ $? -eq 0 ]; then
  echo "FAIL: corpus lint exited 0 (seeded violations not detected)"
  exit 1
fi

for r in R1 R2 R3 R4 R5 R6 R7 R8 R9; do
  if ! printf '%s\n' "$out" | grep -q "\"rule\":\"$r\""; then
    echo "FAIL: rule $r did not fire on its corpus file"
    printf '%s\n' "$out"
    exit 1
  fi
done

n=$(printf '%s\n' "$out" | grep -c '"rule"')
if [ "$n" -ne 9 ]; then
  echo "FAIL: expected exactly 9 corpus findings, got $n"
  printf '%s\n' "$out"
  exit 1
fi

# A per-rule exemption must suppress exactly that rule's finding.
ex=$(mktemp)
printf 'R7 bad_r7.ml\n' > "$ex"
out2=$("$DPKIT" lint --format json --exempt "$ex" lint_corpus)
rm -f "$ex"
n2=$(printf '%s\n' "$out2" | grep -c '"rule"')
if [ "$n2" -ne 8 ] || printf '%s\n' "$out2" | grep -q '"rule":"R7"'; then
  echo "FAIL: R7 exemption did not suppress exactly the R7 finding"
  printf '%s\n' "$out2"
  exit 1
fi

if ! "$DPKIT" lint --exempt ../lint.exempt ..; then
  echo "FAIL: repository sources have lint findings (see above)"
  exit 1
fi

echo "lint: 9/9 corpus violations flagged, R7 exemptable, repository clean"
