#!/bin/sh
# dpkit lint must (1) flag every seeded violation in lint_corpus/ with
# the expected rule id — exactly one finding per file, six total — and
# (2) report zero findings on the repository's own sources.
set -u

DPKIT="$1"

out=$("$DPKIT" lint --format json lint_corpus)
if [ $? -eq 0 ]; then
  echo "FAIL: corpus lint exited 0 (seeded violations not detected)"
  exit 1
fi

for r in R1 R2 R3 R4 R5 R6; do
  if ! printf '%s\n' "$out" | grep -q "\"rule\":\"$r\""; then
    echo "FAIL: rule $r did not fire on its corpus file"
    printf '%s\n' "$out"
    exit 1
  fi
done

n=$(printf '%s\n' "$out" | grep -c '"rule"')
if [ "$n" -ne 6 ]; then
  echo "FAIL: expected exactly 6 corpus findings, got $n"
  printf '%s\n' "$out"
  exit 1
fi

if ! "$DPKIT" lint --exempt ../lint.exempt ..; then
  echo "FAIL: repository sources have lint findings (see above)"
  exit 1
fi

echo "lint: 6/6 corpus violations flagged, repository clean"
