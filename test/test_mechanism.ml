open Dp_mechanism

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Privacy accounting *)

let test_budgets () =
  let b = Privacy.pure 0.5 in
  check_close "pure eps" 0.5 b.Privacy.epsilon;
  check_close "pure delta" 0. b.Privacy.delta;
  let c = Privacy.compose b (Privacy.approx ~epsilon:0.3 ~delta:1e-6) in
  check_close "composed eps" 0.8 c.Privacy.epsilon;
  check_close "composed delta" 1e-6 c.Privacy.delta;
  let p = Privacy.parallel [ Privacy.pure 0.5; Privacy.pure 1.2 ] in
  check_close "parallel" 1.2 p.Privacy.epsilon;
  (try
     ignore (Privacy.pure (-1.));
     Alcotest.fail "accepted negative epsilon"
   with Invalid_argument _ -> ());
  check_close "laplace scale" 2. (Privacy.scale_noise_for ~epsilon:0.5 ~sensitivity:1.)

let test_advanced_composition () =
  let b = Privacy.pure 0.1 in
  let adv = Privacy.advanced_compose ~k:100 ~delta_slack:1e-5 b in
  let basic = Privacy.compose_list (List.init 100 (fun _ -> b)) in
  (* for many small-eps compositions, advanced < basic *)
  Alcotest.(check bool) "advanced beats basic" true
    (adv.Privacy.epsilon < basic.Privacy.epsilon);
  check_close "basic epsilon" 10. basic.Privacy.epsilon;
  Alcotest.(check bool) "delta recorded" true (adv.Privacy.delta >= 1e-5)

let test_accountant () =
  let acc = Privacy.Accountant.create ~total:(Privacy.pure 1.) in
  Privacy.Accountant.spend acc (Privacy.pure 0.4);
  Privacy.Accountant.spend acc (Privacy.pure 0.6);
  check_close "all spent" 1. (Privacy.Accountant.spent acc).Privacy.epsilon;
  check_close "nothing left" 0.
    (Privacy.Accountant.remaining acc).Privacy.epsilon;
  Alcotest.(check bool) "cannot afford more" false
    (Privacy.Accountant.can_afford acc (Privacy.pure 0.1));
  try
    Privacy.Accountant.spend acc (Privacy.pure 0.1);
    Alcotest.fail "overspent"
  with Privacy.Budget_exceeded { requested; remaining } ->
    check_close "rejection echoes the request" 0.1 requested.Privacy.epsilon;
    check_close "rejection reports what is left" 0. remaining.Privacy.epsilon

(* ------------------------------------------------------------------ *)
(* Sensitivity *)

let test_sensitivity_closed_forms () =
  check_close "count" 1. (Sensitivity.count ());
  check_close "bounded sum" 5. (Sensitivity.bounded_sum ~lo:0. ~hi:5.);
  check_close "bounded mean" 0.05 (Sensitivity.bounded_mean ~lo:0. ~hi:5. ~n:100);
  check_close "histogram" 2. (Sensitivity.histogram ());
  check_close "empirical risk" 0.01
    (Sensitivity.empirical_risk ~loss_range:1. ~n:100)

let test_sensitivity_bruteforce_matches () =
  (* count query over 0/1 databases: brute force must find exactly 1. *)
  let g = Dp_rng.Prng.create 1 in
  let dbs =
    Array.init 5 (fun _ ->
        Dp_dataset.Synthetic.bernoulli_database ~p:0.5 ~n:8 g)
  in
  let f db = float_of_int (Array.fold_left ( + ) 0 db) in
  check_close "brute force count" 1.
    (Sensitivity.estimate_scalar ~f ~databases:dbs ~universe:2);
  (* mean over {0,1,2} with n=8: sensitivity 2/8. *)
  let mean db = f db /. 8. in
  let dbs3 = [| [| 0; 1; 2; 0; 1; 2; 0; 1 |] |] in
  check_close "brute force mean" 0.25
    (Sensitivity.estimate_scalar ~f:mean ~databases:dbs3 ~universe:3)

(* ------------------------------------------------------------------ *)
(* Laplace mechanism *)

let test_laplace_properties () =
  let m = Laplace.create ~sensitivity:1. ~epsilon:0.5 in
  check_close "scale" 2. (Laplace.scale m);
  check_close "budget" 0.5 (Laplace.budget m).Privacy.epsilon;
  check_close "cdf at value" 0.5 (Laplace.cdf m ~value:3. 3.);
  check_close ~tol:1e-12 "density integrates (interval)" 1.
    (Laplace.interval_probability m ~value:0. ~lo:(-200.) ~hi:200.);
  (* zero sensitivity: deterministic *)
  let d = Laplace.create ~sensitivity:0. ~epsilon:1. in
  let g = Dp_rng.Prng.create 2 in
  check_close "deterministic" 7. (Laplace.release d ~value:7. g)

let test_laplace_dp_closed_form () =
  (* Theorem 2.2: the log likelihood ratio between neighbouring query
     values (|v1 - v2| <= sensitivity) never exceeds epsilon. *)
  let eps = 0.7 in
  let m = Laplace.create ~sensitivity:1. ~epsilon:eps in
  let worst = ref 0. in
  for i = -100 to 100 do
    let y = float_of_int i /. 10. in
    let r = Laplace.log_likelihood_ratio m ~value1:0. ~value2:1. y in
    worst := Float.max !worst (Float.abs r)
  done;
  Alcotest.(check bool) "ratio bounded by eps" true (!worst <= eps +. 1e-12);
  (* the bound is achieved (tight) away from the interval [v1, v2] *)
  check_close ~tol:1e-12 "tight" eps !worst

let test_laplace_llr_far_tail () =
  (* Regression: log (density v1) -. log (density v2) underflowed to
     -inf -. -inf = nan once both densities rounded to 0. — about 745
     scales out. The closed form (|y−v2| − |y−v1|)/b is exact at any
     distance. *)
  let eps = 0.5 in
  let m = Laplace.create ~sensitivity:1. ~epsilon:eps in
  let value = 3. in
  let b = 1. /. eps in
  let y = value +. (800. *. b) in
  let r = Laplace.log_likelihood_ratio m ~value1:value ~value2:(value +. 1.) y in
  Alcotest.(check bool) "finite far in the tail" true (Float.is_finite r);
  (* above both centers the loss is exactly -eps per unit of shift *)
  check_close ~tol:1e-12 "exactly -eps" (-.eps) r;
  let r' =
    Laplace.log_likelihood_ratio m ~value1:value ~value2:(value +. 1.)
      (value -. (800. *. b))
  in
  check_close ~tol:1e-12 "exactly +eps below" eps r'

let test_laplace_unbiased () =
  let m = Laplace.create ~sensitivity:1. ~epsilon:1. in
  let g = Dp_rng.Prng.create 3 in
  let n = 100_000 in
  let mean =
    Dp_math.Summation.mean (Array.init n (fun _ -> Laplace.release m ~value:10. g))
  in
  (* std of Laplace(1) is sqrt 2; 5 sigma of the mean *)
  if Float.abs (mean -. 10.) > 5. *. sqrt 2. /. sqrt (float_of_int n) then
    Alcotest.failf "biased release: %g" mean

let test_laplace_empirical_matches_cdf () =
  let m = Laplace.create ~sensitivity:1. ~epsilon:2. in
  let g = Dp_rng.Prng.create 4 in
  let xs = Array.init 5000 (fun _ -> Laplace.release m ~value:1. g) in
  let r = Dp_stats.Gof.ks_one_sample ~cdf:(Laplace.cdf m ~value:1.) xs in
  Alcotest.(check bool) "KS accepts" true (r.Dp_stats.Gof.p_value > 0.001)

(* ------------------------------------------------------------------ *)
(* Gaussian mechanism *)

let test_gaussian_mech () =
  let m = Gaussian_mech.create ~l2_sensitivity:1. ~epsilon:1. ~delta:1e-5 in
  let expected = sqrt (2. *. log (1.25 /. 1e-5)) in
  check_close "std formula" expected (Gaussian_mech.std m);
  let b = Gaussian_mech.budget m in
  check_close "delta" 1e-5 b.Privacy.delta;
  (try
     ignore (Gaussian_mech.create ~l2_sensitivity:1. ~epsilon:1. ~delta:0.);
     Alcotest.fail "accepted delta=0"
   with Invalid_argument _ -> ());
  let g = Dp_rng.Prng.create 5 in
  let v = Gaussian_mech.release_vector m ~value:[| 1.; 2. |] g in
  Alcotest.(check int) "vector length" 2 (Array.length v)

let test_gaussian_llr_far_tail () =
  (* Mirror of the Laplace far-tail regression: log density - log
     density is nan once both densities round to 0 (about 39 sigma
     out); the expanded closed form stays exact arbitrarily far. *)
  let m = Gaussian_mech.create ~l2_sensitivity:1. ~epsilon:1. ~delta:1e-5 in
  let s = Gaussian_mech.std m in
  let y = 1000. *. s in
  let r = Gaussian_mech.log_likelihood_ratio m ~value1:0. ~value2:1. y in
  Alcotest.(check bool) "finite far in the tail" true (Float.is_finite r);
  (* (v1 - v2)(2y - v1 - v2) / (2 s^2) with v1=0, v2=1 *)
  check_close ~tol:1e-9 "closed form value"
    (-.((2. *. y) -. 1.) /. (2. *. s *. s))
    r;
  (* agrees with the density ratio where the densities are healthy *)
  let pdf v y = exp (-.((y -. v) ** 2.) /. (2. *. s *. s)) in
  let y0 = 2.5 *. s in
  check_close ~tol:1e-9 "matches density ratio near the mode"
    (log (pdf 0. y0 /. pdf 1. y0))
    (Gaussian_mech.log_likelihood_ratio m ~value1:0. ~value2:1. y0);
  (* antisymmetry: swapping the hypotheses negates the loss *)
  check_close ~tol:1e-12 "antisymmetric"
    (-.Gaussian_mech.log_likelihood_ratio m ~value1:1. ~value2:0. y)
    r;
  (try
     let d = Gaussian_mech.create ~l2_sensitivity:0. ~epsilon:1. ~delta:1e-5 in
     ignore (Gaussian_mech.log_likelihood_ratio d ~value1:0. ~value2:1. 0.);
     Alcotest.fail "accepted deterministic mechanism"
   with Invalid_argument _ -> ())

let test_discrete_gaussian_llr_far_tail () =
  let m = Discrete_gaussian.create ~sensitivity:1 ~sigma:2. in
  (* log pmf - log pmf underflows to nan out here; the integer-expanded
     closed form is exact *)
  let k = 100_000 in
  let r = Discrete_gaussian.log_likelihood_ratio m ~value1:0 ~value2:1 k in
  Alcotest.(check bool) "finite far in the tail" true (Float.is_finite r);
  check_close ~tol:1e-12 "closed form value"
    (float_of_int (((k - 1) * (k - 1)) - (k * k)) /. 8.)
    r;
  (* agrees with the pmf ratio where the pmfs are healthy *)
  check_close ~tol:1e-9 "matches pmf ratio near the mode"
    (log (Discrete_gaussian.pmf m 3 /. Discrete_gaussian.pmf m 2))
    (Discrete_gaussian.log_likelihood_ratio m ~value1:0 ~value2:1 3);
  (* sensitivity-0 point-mass limits, as for the geometric mechanism *)
  let d = Discrete_gaussian.create ~sensitivity:0 ~sigma:2. in
  check_close "same point" 0.
    (Discrete_gaussian.log_likelihood_ratio d ~value1:5 ~value2:5 5);
  Alcotest.(check bool) "disjoint points" true
    (Float.is_nan (Discrete_gaussian.log_likelihood_ratio d ~value1:4 ~value2:5 6))

(* ------------------------------------------------------------------ *)
(* Exponential mechanism *)

let test_exponential_distribution () =
  (* Probabilities must follow exp(eps * q) exactly. *)
  let qualities = [| 0.; 1.; 2. |] in
  let m =
    Exponential.create ~candidates:[| "a"; "b"; "c" |]
      ~quality:(fun u -> qualities.(Char.code u.[0] - Char.code 'a'))
      ~sensitivity:1. ~epsilon:1. ()
  in
  let p = Exponential.probabilities m in
  let z = 1. +. exp 1. +. exp 2. in
  check_close ~tol:1e-12 "p(a)" (1. /. z) p.(0);
  check_close ~tol:1e-12 "p(b)" (exp 1. /. z) p.(1);
  check_close ~tol:1e-12 "p(c)" (exp 2. /. z) p.(2);
  check_close "privacy epsilon" 2. (Exponential.privacy_epsilon m);
  check_close "max quality" 2. (Exponential.max_quality m);
  let eq = Exponential.expected_quality m in
  check_close ~tol:1e-12 "expected quality"
    ((0. +. exp 1. +. (2. *. exp 2.)) /. z)
    eq

let test_exponential_prior () =
  (* A non-uniform base measure reweights the distribution. *)
  let m =
    Exponential.create ~candidates:[| 0; 1 |]
      ~log_prior:[| log 0.9; log 0.1 |]
      ~quality:(fun _ -> 0.) ~sensitivity:1. ~epsilon:1. ()
  in
  let p = Exponential.probabilities m in
  check_close ~tol:1e-12 "prior dominates" 0.9 p.(0)

let test_exponential_privacy_guarantee () =
  (* Exact check of Theorem 2.3 on a private-selection task: pick the
     value closest to the database mean. The quality
     q(D, u) = -|u - mean(D)| has global sensitivity range/n = 8/5
     under record replacement; for every neighbouring pair the
     log-probability ratio must stay within 2 eps Δq. *)
  let candidates = Array.init 9 Fun.id in
  let sens = 8. /. 5. in
  let quality db u =
    let mean =
      float_of_int (Array.fold_left ( + ) 0 db) /. float_of_int (Array.length db)
    in
    -.Float.abs (float_of_int u -. mean)
  in
  let db = [| 3; 5; 7; 2; 8 |] in
  let eps = 0.4 in
  let build d =
    Exponential.create ~candidates ~quality:(quality d) ~sensitivity:sens
      ~epsilon:eps ()
  in
  let m = build db in
  let worst = ref 0. in
  Array.iteri
    (fun i _ ->
      for v = 0 to 8 do
        if v <> db.(i) then begin
          let db' = Array.copy db in
          db'.(i) <- v;
          worst := Float.max !worst (Exponential.log_ratio_bound m (build db'))
        end
      done)
    db;
  let bound = Exponential.privacy_epsilon m in
  check_close "bound is 2 eps sens" (2. *. eps *. sens) bound;
  Alcotest.(check bool) "DP guarantee holds" true (!worst <= bound +. 1e-12)

let test_exponential_sampling_agreement () =
  (* Gumbel-max sampling and alias sampling agree with the exact
     probabilities. *)
  let m =
    Exponential.create ~candidates:[| 0; 1; 2; 3 |]
      ~quality:float_of_int ~sensitivity:1. ~epsilon:0.8 ()
  in
  let p = Exponential.probabilities m in
  let g = Dp_rng.Prng.create 6 in
  let n = 200_000 in
  let counts = Array.make 4 0 in
  for _ = 1 to n do
    let u = Exponential.sample m g in
    counts.(u) <- counts.(u) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      if Float.abs (freq -. p.(i)) > 5. *. sqrt (p.(i) /. float_of_int n) then
        Alcotest.failf "gumbel freq %d: %g vs %g" i freq p.(i))
    counts;
  let draw = Exponential.sampler m g in
  let counts = Array.make 4 0 in
  for _ = 1 to n do
    let u = draw () in
    counts.(u) <- counts.(u) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      if Float.abs (freq -. p.(i)) > 5. *. sqrt (p.(i) /. float_of_int n) then
        Alcotest.failf "alias freq %d: %g vs %g" i freq p.(i))
    counts

let test_exponential_utility_bound () =
  let m =
    Exponential.create
      ~candidates:(Array.init 64 Fun.id)
      ~quality:(fun u -> -.Float.abs (float_of_int (u - 32)))
      ~sensitivity:1. ~epsilon:2. ()
  in
  let threshold = Exponential.utility_bound m ~failure_prob:0.05 in
  (* Empirically the sampled quality should rarely fall below it. *)
  let g = Dp_rng.Prng.create 7 in
  let fails = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    let u = Exponential.sample m g in
    if -.Float.abs (float_of_int (u - 32)) < threshold then incr fails
  done;
  Alcotest.(check bool) "failure rate below bound" true
    (float_of_int !fails /. float_of_int trials <= 0.05 +. 0.02)

let test_calibrate () =
  check_close "calibrate" 0.25
    (Exponential.calibrate_exponent ~target_epsilon:1. ~sensitivity:2.)

(* ------------------------------------------------------------------ *)
(* Permute-and-flip *)

let test_pf_distribution_and_sampling () =
  let qualities = [| 0.; 1.; 2. |] in
  let m =
    Dp_mechanism.Permute_and_flip.create ~candidates:[| 0; 1; 2 |]
      ~quality:(fun i -> qualities.(i))
      ~sensitivity:1. ~epsilon:2. ()
  in
  let p = Dp_mechanism.Permute_and_flip.probabilities m in
  check_close ~tol:1e-12 "normalizes" 1. (Dp_math.Summation.sum p);
  (* the argmax always has the largest probability *)
  Alcotest.(check int) "mode" 2 (Dp_linalg.Vec.argmax p);
  (* sampling agrees with the subset-DP distribution *)
  let g = Dp_rng.Prng.create 41 in
  let n = 100_000 in
  let counts = Array.make 3 0 in
  for _ = 1 to n do
    let u = Dp_mechanism.Permute_and_flip.sample m g in
    counts.(u) <- counts.(u) + 1
  done;
  Array.iteri
    (fun i c ->
      let f = float_of_int c /. float_of_int n in
      if Float.abs (f -. p.(i)) > 5. *. sqrt (p.(i) /. float_of_int n) +. 1e-3
      then Alcotest.failf "pf freq %d: %g vs %g" i f p.(i))
    counts

let test_pf_dominates_em () =
  (* McKenna-Sheldon: E[q] of P&F >= E[q] of EM at equal eps, for any
     quality vector *)
  let g = Dp_rng.Prng.create 42 in
  for _ = 1 to 50 do
    let k = 2 + Dp_rng.Prng.int g 8 in
    let qualities = Array.init k (fun _ -> Dp_rng.Sampler.uniform ~lo:(-3.) ~hi:0. g) in
    let eps = Dp_rng.Sampler.uniform ~lo:0.2 ~hi:4. g in
    let pf =
      Dp_mechanism.Permute_and_flip.create ~candidates:(Array.init k Fun.id)
        ~quality:(fun i -> qualities.(i))
        ~sensitivity:1. ~epsilon:eps ()
    in
    let em =
      Dp_mechanism.Exponential.create ~candidates:(Array.init k Fun.id)
        ~quality:(fun i -> qualities.(i))
        ~sensitivity:1. ~epsilon:(eps /. 2.) ()
    in
    Alcotest.(check bool) "P&F dominates" true
      (Dp_mechanism.Permute_and_flip.expected_quality pf
      >= Dp_mechanism.Exponential.expected_quality em -. 1e-9)
  done

let test_pf_privacy_exact () =
  (* exact eps over all neighbours of a small counting-style task *)
  let eps = 0.8 in
  let db = [| 2; 4; 4; 1 |] in
  let build d =
    Dp_mechanism.Permute_and_flip.create ~candidates:[| 0; 1; 2; 3; 4 |]
      ~quality:(fun u ->
        -.Float.abs
            (float_of_int u
            -. (float_of_int (Array.fold_left ( + ) 0 d) /. 4.)))
      ~sensitivity:1. ~epsilon:eps ()
  in
  let p = Dp_mechanism.Permute_and_flip.probabilities (build db) in
  let worst = ref 0. in
  Array.iteri
    (fun i _ ->
      for v = 0 to 4 do
        if v <> db.(i) then begin
          let d' = Array.copy db in
          d'.(i) <- v;
          let q = Dp_mechanism.Permute_and_flip.probabilities (build d') in
          Array.iteri
            (fun u pu ->
              if pu > 0. && q.(u) > 0. then
                worst := Float.max !worst (Float.abs (log (pu /. q.(u)))))
            p
        end
      done)
    db;
  Alcotest.(check bool)
    (Printf.sprintf "exact eps %.4f <= %.4f" !worst eps)
    true
    (!worst <= eps +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Randomized response & noisy max *)

let test_randomized_response () =
  let rr = Randomized_response.create ~epsilon:1. in
  check_close "truth prob" (exp 1. /. (1. +. exp 1.))
    (Randomized_response.truth_probability rr);
  let ch = Randomized_response.channel_matrix rr in
  check_close ~tol:1e-12 "row sums" 1. (ch.(0).(0) +. ch.(0).(1));
  (* the channel's likelihood ratio equals e^eps exactly *)
  check_close ~tol:1e-12 "lr" (exp 1.) (ch.(0).(0) /. ch.(1).(0));
  (* debiasing recovers the true mean *)
  let g = Dp_rng.Prng.create 8 in
  let db = Dp_dataset.Synthetic.bernoulli_database ~p:0.3 ~n:50_000 g in
  let noisy = Randomized_response.respond_database rr db g in
  let est = Randomized_response.estimate_mean rr noisy in
  let truth =
    float_of_int (Array.fold_left ( + ) 0 db) /. 50_000.
  in
  if Float.abs (est -. truth) > 0.02 then
    Alcotest.failf "debiased estimate %g vs %g" est truth

let test_noisy_max () =
  let g = Dp_rng.Prng.create 9 in
  let scores = [| 1.; 5.; 2. |] in
  (* With large epsilon the argmax is recovered almost surely. *)
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Noisy_max.select ~epsilon:50. ~sensitivity:1. ~scores g = 1 then
      incr hits
  done;
  Alcotest.(check bool) "high eps recovers argmax" true (!hits > 990);
  (* With tiny epsilon the selection is near-uniform. *)
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Noisy_max.select ~epsilon:0.001 ~sensitivity:1. ~scores g in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. 30_000. in
      if Float.abs (f -. (1. /. 3.)) > 0.03 then
        Alcotest.failf "low eps not uniform: %g" f)
    counts;
  (* exponential-noise variant also selects the max eventually *)
  let i =
    Noisy_max.select_exponential_noise ~epsilon:100. ~sensitivity:1. ~scores g
  in
  Alcotest.(check int) "exp noise argmax" 1 i

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"exponential probabilities normalize" ~count:200
      (pair
         (array_of_size (Gen.int_range 1 40) (float_range (-5.) 5.))
         (float_range 0.01 5.))
      (fun (qualities, eps) ->
        let m =
          Exponential.create
            ~candidates:(Array.init (Array.length qualities) Fun.id)
            ~quality:(fun i -> qualities.(i))
            ~sensitivity:1. ~epsilon:eps ()
        in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-9 1.
          (Dp_math.Summation.sum (Exponential.probabilities m)));
    Test.make ~name:"expected quality between min and max" ~count:200
      (array_of_size (Gen.int_range 1 20) (float_range (-5.) 5.))
      (fun qualities ->
        let m =
          Exponential.create
            ~candidates:(Array.init (Array.length qualities) Fun.id)
            ~quality:(fun i -> qualities.(i))
            ~sensitivity:1. ~epsilon:1. ()
        in
        let eq = Exponential.expected_quality m in
        let lo = Array.fold_left Float.min infinity qualities in
        let hi = Array.fold_left Float.max neg_infinity qualities in
        eq >= lo -. 1e-9 && eq <= hi +. 1e-9);
    Test.make ~name:"higher epsilon concentrates on the argmax" ~count:100
      (array_of_size (Gen.int_range 2 20) (float_range (-3.) 3.))
      (fun qualities ->
        let build eps =
          Exponential.create
            ~candidates:(Array.init (Array.length qualities) Fun.id)
            ~quality:(fun i -> qualities.(i))
            ~sensitivity:1. ~epsilon:eps ()
        in
        let best = Dp_linalg.Vec.argmax qualities in
        let p1 = (Exponential.probabilities (build 0.5)).(best) in
        let p2 = (Exponential.probabilities (build 2.)).(best) in
        p2 >= p1 -. 1e-9);
    Test.make ~name:"laplace log-ratio bounded for adjacent values"
      ~count:200
      (triple (float_range 0.1 3.) (float_range (-5.) 5.)
         (float_range (-20.) 20.))
      (fun (eps, v, y) ->
        let m = Laplace.create ~sensitivity:1. ~epsilon:eps in
        Float.abs (Laplace.log_likelihood_ratio m ~value1:v ~value2:(v +. 1.) y)
        <= eps +. 1e-9);
    Test.make ~name:"composition is commutative and monotone" ~count:200
      (pair (float_range 0. 3.) (float_range 0. 3.))
      (fun (e1, e2) ->
        let a = Privacy.pure e1 and b = Privacy.pure e2 in
        let ab = Privacy.compose a b and ba = Privacy.compose b a in
        ab = ba && ab.Privacy.epsilon >= Float.max e1 e2 -. 1e-12);
    Test.make ~name:"accountant: spent + remaining = total" ~count:200
      (pair (float_range 0.5 5.)
         (list_of_size (Gen.int_range 0 20) (float_range 0.001 0.3)))
      (fun (total, charges) ->
        let acc = Privacy.Accountant.create ~total:(Privacy.pure total) in
        List.iter
          (fun e ->
            try Privacy.Accountant.spend acc (Privacy.pure e)
            with Privacy.Budget_exceeded _ -> ())
          charges;
        let spent = Privacy.Accountant.spent acc
        and remaining = Privacy.Accountant.remaining acc in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-9 ~abs_tol:1e-12 total
          (spent.Privacy.epsilon +. remaining.Privacy.epsilon)
        && spent.Privacy.epsilon <= total +. 1e-9);
    Test.make ~name:"accountant: can_afford agrees with spend" ~count:200
      (triple (float_range 0.5 3.) (float_range 0.001 1.)
         (float_range 0.001 4.))
      (fun (total, first, request) ->
        let acc = Privacy.Accountant.create ~total:(Privacy.pure total) in
        (try Privacy.Accountant.spend acc (Privacy.pure first)
         with Privacy.Budget_exceeded _ -> ());
        let b = Privacy.pure request in
        let afford = Privacy.Accountant.can_afford acc b in
        match Privacy.Accountant.spend acc b with
        | () -> afford
        | exception Privacy.Budget_exceeded { requested; remaining } ->
            (not afford)
            && requested = b
            && remaining.Privacy.epsilon < request);
    Test.make ~name:"advanced_compose rejects bad k and slack" ~count:100
      (pair (int_range (-5) 0)
         (oneofl [ -0.5; 0.; 1.; 1.5 ]))
      (fun (bad_k, bad_slack) ->
        let rejects f = match f () with
          | exception Invalid_argument _ -> true
          | _ -> false
        in
        rejects (fun () ->
            Privacy.advanced_compose ~k:bad_k ~delta_slack:0.01
              (Privacy.pure 0.1))
        && rejects (fun () ->
               Privacy.advanced_compose ~k:3 ~delta_slack:bad_slack
                 (Privacy.pure 0.1)));
    Test.make ~name:"advanced_compose epsilon monotone in k" ~count:200
      (triple (int_range 1 40) (float_range 0.01 1.) (float_range 0.001 0.2))
      (fun (k, eps, slack) ->
        let e_at k =
          (Privacy.advanced_compose ~k ~delta_slack:slack (Privacy.pure eps))
            .Privacy.epsilon
        in
        e_at (k + 1) >= e_at k -. 1e-12);
  ]

let () =
  Alcotest.run "dp_mechanism"
    [
      ( "privacy",
        [
          Alcotest.test_case "budgets" `Quick test_budgets;
          Alcotest.test_case "advanced composition" `Quick
            test_advanced_composition;
          Alcotest.test_case "accountant" `Quick test_accountant;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "closed forms" `Quick
            test_sensitivity_closed_forms;
          Alcotest.test_case "brute force agrees" `Quick
            test_sensitivity_bruteforce_matches;
        ] );
      ( "laplace",
        [
          Alcotest.test_case "properties" `Quick test_laplace_properties;
          Alcotest.test_case "DP closed form (Thm 2.2)" `Quick
            test_laplace_dp_closed_form;
          Alcotest.test_case "llr finite far in the tail" `Quick
            test_laplace_llr_far_tail;
          Alcotest.test_case "unbiased" `Quick test_laplace_unbiased;
          Alcotest.test_case "empirical matches CDF" `Quick
            test_laplace_empirical_matches_cdf;
        ] );
      ( "gaussian",
        [
          Alcotest.test_case "calibration" `Quick test_gaussian_mech;
          Alcotest.test_case "llr finite far in the tail" `Quick
            test_gaussian_llr_far_tail;
          Alcotest.test_case "discrete llr finite far in the tail" `Quick
            test_discrete_gaussian_llr_far_tail;
        ] );
      ( "exponential",
        [
          Alcotest.test_case "exact distribution" `Quick
            test_exponential_distribution;
          Alcotest.test_case "base measure" `Quick test_exponential_prior;
          Alcotest.test_case "DP guarantee (Thm 2.3)" `Quick
            test_exponential_privacy_guarantee;
          Alcotest.test_case "samplers agree" `Slow
            test_exponential_sampling_agreement;
          Alcotest.test_case "utility bound" `Quick
            test_exponential_utility_bound;
          Alcotest.test_case "calibration" `Quick test_calibrate;
        ] );
      ( "permute-and-flip",
        [
          Alcotest.test_case "distribution & sampling" `Slow
            test_pf_distribution_and_sampling;
          Alcotest.test_case "dominates EM" `Quick test_pf_dominates_em;
          Alcotest.test_case "exact privacy" `Quick test_pf_privacy_exact;
        ] );
      ( "other mechanisms",
        [
          Alcotest.test_case "randomized response" `Quick
            test_randomized_response;
          Alcotest.test_case "noisy max" `Quick test_noisy_max;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
