#!/bin/sh
# Kill-and-restart integration test for the write-ahead budget journal.
#
# Phase 1 serves three fresh queries with a crash injected between the
# third charge and its answer (the process dies with the budget spent
# and nothing released). Phase 2 restarts on the same journal and
# checks the two crash-safety invariants end to end:
#   - spent epsilon is monotone across the crash: all three charges
#     survive, including the one whose answer never left the process;
#   - pre-crash answers replay from the recovered cache bit-identically.
set -eu

DPKIT="$1"
J="crash_test.wal"
rm -f "$J"

set +e
OUT1=$(printf 'register demo rows=400 eps=1\nquery demo count\nquery demo mean(income)\nquery demo sum(income)\nquit\n' \
  | "$DPKIT" serve --journal "$J" --faults crash-after-charge=3 2>/dev/null)
CODE=$?
set -e

if [ "$CODE" -ne 70 ]; then
  echo "expected exit 70 (injected crash), got $CODE"
  echo "$OUT1"
  exit 1
fi

# two answers released before the crash, the third never
if [ "$(echo "$OUT1" | grep -c '^ok seq=')" -ne 2 ]; then
  echo "expected exactly 2 released answers before the crash:"
  echo "$OUT1"
  exit 1
fi

VALUE1=$(echo "$OUT1" | sed -n 's/^ok seq=0 value=\([^ ]*\).*/\1/p')
if [ -z "$VALUE1" ]; then
  echo "no first answer in transcript:"
  echo "$OUT1"
  exit 1
fi

OUT2=$(printf 'report demo\nquery demo count\nquit\n' \
  | "$DPKIT" serve --journal "$J" 2>/dev/null)

# budget not reset: 3 charges of 0.1 each, crashed one included
if ! echo "$OUT2" | grep -q 'eps-spent=0\.3 '; then
  echo "spent budget lost or reset across the crash:"
  echo "$OUT2"
  exit 1
fi

# the pre-crash answer replays from the recovered cache, bit-identical
if ! echo "$OUT2" | grep -q "^ok seq=[0-9]* value=$VALUE1 .*cache=hit"; then
  echo "recovered cache answer missing or not bit-identical to $VALUE1:"
  echo "$OUT2"
  exit 1
fi

rm -f "$J"
