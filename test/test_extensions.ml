(* Tests for the phase-2 modules: geometric mechanism, sparse vector,
   subsampling amplification, conjugate Gaussian Gibbs regression,
   Fano/Le Cam lower bounds, SVM, naive Bayes. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Geometric mechanism *)

let test_geometric_pmf () =
  let m = Dp_mechanism.Geometric_mech.create ~sensitivity:1 ~epsilon:1. in
  let a = exp (-1.) in
  check_close ~tol:1e-12 "alpha" a (Dp_mechanism.Geometric_mech.alpha m);
  check_close ~tol:1e-12 "pmf center"
    ((1. -. a) /. (1. +. a))
    (Dp_mechanism.Geometric_mech.pmf m ~value:5 5);
  check_close ~tol:1e-12 "pmf offset"
    ((1. -. a) /. (1. +. a) *. (a ** 3.))
    (Dp_mechanism.Geometric_mech.pmf m ~value:5 8);
  (* pmf sums to 1 over a wide window *)
  let total =
    Dp_math.Numeric.float_sum_range 201 (fun i ->
        Dp_mechanism.Geometric_mech.pmf m ~value:0 (i - 100))
  in
  check_close ~tol:1e-9 "pmf normalizes" 1. total

let test_geometric_privacy_exact () =
  let eps = 0.7 in
  let m = Dp_mechanism.Geometric_mech.create ~sensitivity:1 ~epsilon:eps in
  (* privacy loss at every output is exactly bounded by eps *)
  for k = -20 to 20 do
    let r =
      Dp_mechanism.Geometric_mech.log_likelihood_ratio m ~value1:3 ~value2:4 k
    in
    Alcotest.(check bool) "ratio bounded" true (Float.abs r <= eps +. 1e-12)
  done;
  (* and the bound is achieved away from [3,4] *)
  let r =
    Dp_mechanism.Geometric_mech.log_likelihood_ratio m ~value1:3 ~value2:4 (-5)
  in
  check_close ~tol:1e-12 "tight" eps (Float.abs r)

let test_geometric_llr_far_tail () =
  (* Regression: the log-of-pmf form hit 0. *. log a underflow far from
     the true values; the closed form (|k−v2| − |k−v1|)·ε/Δ is exact. *)
  let eps = 0.5 in
  let m = Dp_mechanism.Geometric_mech.create ~sensitivity:1 ~epsilon:eps in
  let k = 3 + int_of_float (800. /. eps) in
  let r = Dp_mechanism.Geometric_mech.log_likelihood_ratio m ~value1:3 ~value2:4 k in
  Alcotest.(check bool) "finite far in the tail" true (Float.is_finite r);
  check_close ~tol:1e-12 "exactly -eps" (-.eps) r

let test_geometric_truncated () =
  let m = Dp_mechanism.Geometric_mech.create ~sensitivity:1 ~epsilon:0.5 in
  (* truncation preserves total mass and DP (check ratio on the grid) *)
  List.iter
    (fun v ->
      let d = Dp_mechanism.Geometric_mech.truncated_distribution m ~value:v ~lo:0 ~hi:10 in
      check_close ~tol:1e-9
        (Printf.sprintf "truncated normalizes (v=%d)" v)
        1. (Dp_math.Summation.sum d))
    [ 5; 0; 10; -3; 14 ];
  let p = Dp_mechanism.Geometric_mech.truncated_distribution m ~value:4 ~lo:0 ~hi:10 in
  let q = Dp_mechanism.Geometric_mech.truncated_distribution m ~value:5 ~lo:0 ~hi:10 in
  let e = Dp_audit.Auditor.audit_exact ~p ~q in
  Alcotest.(check bool) "truncated DP" true (e <= 0.5 +. 1e-9)

let test_geometric_sampling () =
  let g = Dp_rng.Prng.create 1 in
  let m = Dp_mechanism.Geometric_mech.create ~sensitivity:2 ~epsilon:1. in
  let n = 100_000 in
  let counts = Hashtbl.create 64 in
  for _ = 1 to n do
    let k = Dp_mechanism.Geometric_mech.release m ~value:0 g in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  (* empirical frequencies match the pmf at the center *)
  List.iter
    (fun k ->
      let f =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k))
        /. float_of_int n
      in
      let p = Dp_mechanism.Geometric_mech.pmf m ~value:0 k in
      if Float.abs (f -. p) > 5. *. sqrt (p /. float_of_int n) +. 1e-3 then
        Alcotest.failf "freq at %d: %g vs %g" k f p)
    [ -2; -1; 0; 1; 2 ];
  (* zero sensitivity: deterministic *)
  let d = Dp_mechanism.Geometric_mech.create ~sensitivity:0 ~epsilon:1. in
  Alcotest.(check int) "deterministic" 7 (Dp_mechanism.Geometric_mech.release d ~value:7 g)

(* ------------------------------------------------------------------ *)
(* Sparse vector *)

let test_sparse_vector_behavior () =
  let g = Dp_rng.Prng.create 2 in
  (* far-above and far-below queries are classified correctly whp *)
  let correct_above = ref 0 and correct_below = ref 0 in
  let trials = 500 in
  for _ = 1 to trials do
    let t = Dp_mechanism.Sparse_vector.create ~epsilon:4. ~threshold:10. g in
    (match Dp_mechanism.Sparse_vector.query t 30. with
    | Some Dp_mechanism.Sparse_vector.Above -> incr correct_above
    | _ -> ());
    let t = Dp_mechanism.Sparse_vector.create ~epsilon:4. ~threshold:10. g in
    match Dp_mechanism.Sparse_vector.query t (-10.) with
    | Some Dp_mechanism.Sparse_vector.Below -> incr correct_below
    | _ -> ()
  done;
  Alcotest.(check bool) "above detected" true (!correct_above > 450);
  Alcotest.(check bool) "below detected" true (!correct_below > 450)

let test_sparse_vector_halts () =
  let g = Dp_rng.Prng.create 3 in
  let t =
    Dp_mechanism.Sparse_vector.create ~epsilon:2. ~threshold:0. ~max_positives:2 g
  in
  (* feed many far-above queries; after 2 positives it must refuse *)
  let answers = List.init 10 (fun _ -> Dp_mechanism.Sparse_vector.query t 100.) in
  let positives =
    List.length
      (List.filter (function Some Dp_mechanism.Sparse_vector.Above -> true | _ -> false) answers)
  in
  Alcotest.(check int) "exactly max positives" 2 positives;
  Alcotest.(check bool) "exhausted" true (Dp_mechanism.Sparse_vector.is_exhausted t);
  Alcotest.(check bool) "refuses afterwards" true
    (Dp_mechanism.Sparse_vector.query t 100. = None);
  check_close "budget is total epsilon" 2.
    (Dp_mechanism.Sparse_vector.budget t).Dp_mechanism.Privacy.epsilon

(* ------------------------------------------------------------------ *)
(* Subsampling *)

let test_subsample_amplification () =
  (* formula checks *)
  check_close ~tol:1e-12 "full sample is identity" 1.5
    (Dp_mechanism.Subsample.amplified_epsilon ~epsilon:1.5 ~q:1.);
  check_close "zero rate leaks nothing" 0.
    (Dp_mechanism.Subsample.amplified_epsilon ~epsilon:5. ~q:0.);
  let amp = Dp_mechanism.Subsample.amplified_epsilon ~epsilon:1. ~q:0.1 in
  Alcotest.(check bool) "amplified strictly better" true (amp < 1.);
  (* for small q, amplified ~ q * (e^eps - 1) *)
  check_close ~tol:1e-3 "small-q linearization"
    (0.01 *. Float.expm1 1.)
    (Dp_mechanism.Subsample.amplified_epsilon ~epsilon:1. ~q:0.01);
  (* inverse round-trips *)
  let base = Dp_mechanism.Subsample.required_epsilon ~target:0.5 ~q:0.2 in
  check_close ~tol:1e-9 "inverse"
    0.5
    (Dp_mechanism.Subsample.amplified_epsilon ~epsilon:base ~q:0.2)

let test_subsample_run () =
  let g = Dp_rng.Prng.create 4 in
  let db = Array.init 1000 (fun i -> i mod 2) in
  let mech sub g' =
    let m = Dp_mechanism.Laplace.create ~sensitivity:1. ~epsilon:1. in
    Dp_mechanism.Laplace.release m
      ~value:(float_of_int (Array.fold_left ( + ) 0 sub))
      g'
  in
  let result, budget =
    Dp_mechanism.Subsample.run_subsampled ~q:0.1 ~base_epsilon:1. ~mechanism:mech db g
  in
  (* subsample of 100 from a half-ones db: count near 50 *)
  Alcotest.(check bool) "plausible count" true (result > 20. && result < 80.);
  check_close ~tol:1e-12 "amplified budget"
    (Dp_mechanism.Subsample.amplified_epsilon ~epsilon:1. ~q:0.1)
    budget.Dp_mechanism.Privacy.epsilon

(* ------------------------------------------------------------------ *)
(* Gaussian Gibbs *)

let regression_data seed n =
  let g = Dp_rng.Prng.create seed in
  Dp_dataset.Dataset.map_labels
    (Dp_math.Numeric.clamp ~lo:(-1.) ~hi:1.)
    (Dp_dataset.Synthetic.linear_regression ~theta:[| 0.5; -0.3 |]
       ~noise_std:0.05 ~n g)

let test_gaussian_gibbs_mean_matches_ridge () =
  (* With prior std sigma and temperature beta, the posterior mean is
     the ridge solution with lambda = n/(beta * sigma^2 * n) ... i.e.
     solving ((beta/n) X'X + I/s^2) mu = (beta/n) X'y, equivalent to
     (X'X + (n/(beta s^2)) I) mu = X'y: ridge with n*lambda = n/(beta s^2). *)
  let d = regression_data 5 400 in
  let beta = 800. and s = 2. in
  let t = Dp_pac_bayes.Gaussian_gibbs.fit ~beta ~prior_std:s ~radius:5. d in
  let lambda = 1. /. (beta *. s *. s) in
  let ridge = Dp_learn.Ridge.fit ~lambda d in
  let mu = Dp_pac_bayes.Gaussian_gibbs.mean t in
  Array.iteri
    (fun i r -> check_close ~tol:1e-8 (Printf.sprintf "mean[%d]" i) r mu.(i))
    ridge

let test_gaussian_gibbs_sampling_moments () =
  let d = regression_data 6 300 in
  let beta = 300. in
  let t = Dp_pac_bayes.Gaussian_gibbs.fit ~beta ~radius:10. d in
  let g = Dp_rng.Prng.create 7 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Dp_pac_bayes.Gaussian_gibbs.sample t g) in
  let mu = Dp_pac_bayes.Gaussian_gibbs.mean t in
  (* with radius 10 the truncation is immaterial: sample mean = mu *)
  for j = 0 to 1 do
    let m = Dp_stats.Describe.mean (Array.map (fun s -> s.(j)) samples) in
    if Float.abs (m -. mu.(j)) > 0.02 then
      Alcotest.failf "posterior mean drift[%d]: %g vs %g" j m mu.(j)
  done;
  (* all samples respect the ball *)
  Alcotest.(check bool) "in ball" true
    (Array.for_all (fun s -> Dp_linalg.Vec.norm2 s <= 10. +. 1e-9) samples)

let test_gaussian_gibbs_privacy_exact () =
  (* Exact finite-check of Thm 4.1 for the conjugate sampler: compare
     densities between neighbouring datasets over a grid of the ball;
     the log ratio must be bounded by 2 beta dR (the normalizers shift
     by at most beta dR each). *)
  let d = regression_data 8 50 in
  let radius = 1.5 in
  let epsilon = 1.0 in
  let beta = Dp_pac_bayes.Gaussian_gibbs.calibrate_beta ~epsilon ~n:50 ~radius in
  let t = Dp_pac_bayes.Gaussian_gibbs.fit ~beta ~radius d in
  let g = Dp_rng.Prng.create 9 in
  let worst = ref 0. in
  for _ = 1 to 20 do
    let i = Dp_rng.Prng.int g 50 in
    let x' = Dp_dataset.Synthetic.two_gaussians ~dim:2 ~n:1 g in
    let row = Dp_linalg.Vec.project_l2_ball ~radius:1. x'.Dp_dataset.Dataset.features.(0) in
    let d' = Dp_dataset.Dataset.replace_row d i (row, 0.5) in
    let t' = Dp_pac_bayes.Gaussian_gibbs.fit ~beta ~radius d' in
    (* compare normalized densities on a grid covering the ball;
       normalize by a Riemann sum *)
    let grid = ref [] in
    let steps = 24 in
    for a = 0 to steps do
      for b = 0 to steps do
        let th =
          [|
            -.radius +. (2. *. radius *. float_of_int a /. float_of_int steps);
            -.radius +. (2. *. radius *. float_of_int b /. float_of_int steps);
          |]
        in
        if Dp_linalg.Vec.norm2 th <= radius then grid := th :: !grid
      done
    done;
    let grid = Array.of_list !grid in
    let logd t = Array.map (Dp_pac_bayes.Gaussian_gibbs.log_density t) grid in
    let l1 = logd t and l2 = logd t' in
    let z1 = Dp_math.Logspace.log_sum_exp l1 in
    let z2 = Dp_math.Logspace.log_sum_exp l2 in
    Array.iteri
      (fun k v ->
        let r = Float.abs (v -. z1 -. (l2.(k) -. z2)) in
        worst := Float.max !worst r)
      l1
  done;
  Alcotest.(check bool)
    (Printf.sprintf "log ratio %.4f <= eps %.4f" !worst epsilon)
    true
    (!worst <= epsilon +. 1e-9)

let test_gaussian_gibbs_utility_vs_epsilon () =
  let d = regression_data 10 2000 in
  let g = Dp_rng.Prng.create 11 in
  let mse theta = Dp_learn.Erm.mean_squared_error theta d in
  let avg_mse eps =
    Dp_math.Summation.mean
      (Array.init 10 (fun _ ->
           let theta, _ =
             Dp_pac_bayes.Gaussian_gibbs.fit_private ~epsilon:eps ~radius:1.5 d g
           in
           mse theta))
  in
  let hi = avg_mse 20. and lo = avg_mse 0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "more privacy, more error (%.4f vs %.4f)" lo hi)
    true (lo >= hi)

(* ------------------------------------------------------------------ *)
(* Fano / Le Cam *)

let test_fano () =
  check_close ~tol:1e-12 "fano zero information"
    (1. -. (log 2. /. log 16.))
    (Dp_info.Fano.fano_error_lower_bound ~mi:0. ~k:16);
  (* huge information: no lower bound *)
  check_close "fano saturates" 0.
    (Dp_info.Fano.fano_error_lower_bound ~mi:100. ~k:4);
  (* clamped at 1 - 1/k *)
  Alcotest.(check bool) "clamp" true
    (Dp_info.Fano.fano_error_lower_bound ~mi:0. ~k:2 <= 0.5);
  (* DP version decreases in epsilon *)
  let e1 = Dp_info.Fano.fano_error_lower_bound_dp ~epsilon:0.01 ~diameter:1 ~k:32 in
  let e2 = Dp_info.Fano.fano_error_lower_bound_dp ~epsilon:1. ~diameter:1 ~k:32 in
  Alcotest.(check bool) "monotone in eps" true (e1 >= e2)

let test_le_cam_and_testing () =
  check_close ~tol:1e-12 "le cam"
    (0.25 *. exp (-1.))
    (Dp_info.Fano.le_cam_risk_lower_bound ~separation:1. ~kl:1.);
  Alcotest.(check bool) "testing bound in (0,1]" true
    (let b = Dp_info.Fano.dp_testing_lower_bound ~epsilon:0.1 ~n:10 in
     b > 0. && b <= 1.);
  check_close ~tol:1e-12 "testing bound value" (exp (-1.))
    (Dp_info.Fano.dp_testing_lower_bound ~epsilon:0.1 ~n:10);
  (* consistency: the randomized-response channel's actual testing
     error respects the bound: total error of the likelihood-ratio test
     is 2(1-p) >= e^{-eps} for single record *)
  let eps = 1. in
  let p = exp eps /. (1. +. exp eps) in
  Alcotest.(check bool) "RR respects the floor" true
    (2. *. (1. -. p) >= Dp_info.Fano.dp_testing_lower_bound ~epsilon:eps ~n:1 -. 1e-12)

(* ------------------------------------------------------------------ *)
(* SVM & naive Bayes *)

let classification_data seed n =
  let g = Dp_rng.Prng.create seed in
  Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
    (Dp_dataset.Synthetic.two_gaussians ~separation:3. ~std:1. ~dim:3 ~n g)

let test_svm () =
  let g = Dp_rng.Prng.create 12 in
  let d = classification_data 13 600 in
  let m = Dp_learn.Svm.train ~lambda:1e-3 d g in
  let acc = Dp_learn.Svm.accuracy m.Dp_learn.Svm.theta d in
  Alcotest.(check bool) (Printf.sprintf "svm acc %.3f" acc) true (acc > 0.85);
  Alcotest.(check bool) "violations counted" true
    (m.Dp_learn.Svm.margin_violations >= 0
    && m.Dp_learn.Svm.margin_violations <= 600);
  (* private variants run and stay sane *)
  let theta, b = Dp_learn.Svm.train_private_output ~epsilon:5. d g in
  check_close "budget" 5. b.Dp_mechanism.Privacy.epsilon;
  Alcotest.(check bool) "output-perturbed learns at high eps" true
    (Dp_learn.Svm.accuracy theta d > 0.7);
  let theta, _ =
    Dp_learn.Svm.train_private_gibbs
      ~mcmc_config:{ Dp_pac_bayes.Mcmc.step_std = 0.3; burn_in = 1500; thin = 2 }
      ~epsilon:20. ~radius:3. d g
  in
  Alcotest.(check bool) "gibbs svm learns" true
    (Dp_learn.Svm.accuracy theta d > 0.7)

let test_naive_bayes () =
  let d = classification_data 14 2000 in
  let nb = Dp_learn.Naive_bayes.fit ~lo:(-2.) ~hi:2. d in
  let acc = Dp_learn.Naive_bayes.accuracy nb d in
  Alcotest.(check bool) (Printf.sprintf "nb acc %.3f" acc) true (acc > 0.85);
  (* log odds sign matches prediction *)
  let x, _ = Dp_dataset.Dataset.row d 0 in
  let odds = Dp_learn.Naive_bayes.predict_log_odds nb x in
  let pred = Dp_learn.Naive_bayes.predict nb x in
  Alcotest.(check bool) "consistent" true ((odds >= 0.) = (pred = 1.));
  (* private version approaches non-private accuracy at large eps *)
  let g = Dp_rng.Prng.create 15 in
  let nb_p, budget = Dp_learn.Naive_bayes.fit_private ~epsilon:20. ~lo:(-2.) ~hi:2. d g in
  check_close "budget" 20. budget.Dp_mechanism.Privacy.epsilon;
  Alcotest.(check bool) "private nb learns" true
    (Dp_learn.Naive_bayes.accuracy nb_p d > 0.8);
  (* tiny epsilon destroys accuracy toward chance *)
  let nb_bad, _ = Dp_learn.Naive_bayes.fit_private ~epsilon:0.01 ~lo:(-2.) ~hi:2. d g in
  Alcotest.(check bool) "tiny eps worse" true
    (Dp_learn.Naive_bayes.accuracy nb_bad d
    <= Dp_learn.Naive_bayes.accuracy nb_p d +. 1e-9)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"geometric truncated distributions normalize" ~count:200
      (triple (int_range (-20) 30) (float_range 0.1 4.) (int_range 1 20))
      (fun (v, eps, width) ->
        let m = Dp_mechanism.Geometric_mech.create ~sensitivity:1 ~epsilon:eps in
        let d =
          Dp_mechanism.Geometric_mech.truncated_distribution m ~value:v ~lo:0
            ~hi:width
        in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-9
          (Dp_math.Summation.sum d) 1.
        && Array.for_all (fun p -> p >= 0.) d);
    Test.make ~name:"amplification is monotone and never worse" ~count:300
      (pair (float_range 0.01 5.) (float_range 0.01 1.))
      (fun (eps, q) ->
        let a = Dp_mechanism.Subsample.amplified_epsilon ~epsilon:eps ~q in
        a <= eps +. 1e-12 && a >= 0.);
    Test.make ~name:"fano bound within [0, 1-1/k]" ~count:300
      (pair (float_range 0. 10.) (int_range 2 64))
      (fun (mi, k) ->
        let b = Dp_info.Fano.fano_error_lower_bound ~mi ~k in
        b >= 0. && b <= 1. -. (1. /. float_of_int k));
    Test.make ~name:"gaussian gibbs log density maximal near mean" ~count:20
      (int_range 0 1000)
      (fun seed ->
        let d = regression_data seed 100 in
        let t = Dp_pac_bayes.Gaussian_gibbs.fit ~beta:100. ~radius:5. d in
        let mu = Dp_pac_bayes.Gaussian_gibbs.mean t in
        let off = Array.map (fun x -> x +. 0.3) mu in
        Dp_pac_bayes.Gaussian_gibbs.log_density t mu
        >= Dp_pac_bayes.Gaussian_gibbs.log_density t off);
  ]

let () =
  Alcotest.run "dp_extensions"
    [
      ( "geometric mechanism",
        [
          Alcotest.test_case "pmf" `Quick test_geometric_pmf;
          Alcotest.test_case "exact privacy" `Quick test_geometric_privacy_exact;
          Alcotest.test_case "llr finite far in the tail" `Quick
            test_geometric_llr_far_tail;
          Alcotest.test_case "truncation" `Quick test_geometric_truncated;
          Alcotest.test_case "sampling" `Slow test_geometric_sampling;
        ] );
      ( "sparse vector",
        [
          Alcotest.test_case "classification" `Quick test_sparse_vector_behavior;
          Alcotest.test_case "halting & budget" `Quick test_sparse_vector_halts;
        ] );
      ( "subsampling",
        [
          Alcotest.test_case "amplification formulas" `Quick
            test_subsample_amplification;
          Alcotest.test_case "end-to-end" `Quick test_subsample_run;
        ] );
      ( "gaussian gibbs (Sec 5 regression)",
        [
          Alcotest.test_case "mean = tempered ridge" `Quick
            test_gaussian_gibbs_mean_matches_ridge;
          Alcotest.test_case "sampling moments" `Slow
            test_gaussian_gibbs_sampling_moments;
          Alcotest.test_case "exact privacy (Thm 4.1)" `Quick
            test_gaussian_gibbs_privacy_exact;
          Alcotest.test_case "utility vs epsilon" `Slow
            test_gaussian_gibbs_utility_vs_epsilon;
        ] );
      ( "fano & le cam",
        [
          Alcotest.test_case "fano" `Quick test_fano;
          Alcotest.test_case "le cam & testing" `Quick test_le_cam_and_testing;
        ] );
      ( "svm & naive bayes",
        [
          Alcotest.test_case "svm" `Slow test_svm;
          Alcotest.test_case "naive bayes" `Quick test_naive_bayes;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
