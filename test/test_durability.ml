(* Crash safety: the write-ahead budget journal, fault injection, and
   graceful degradation. The load-bearing invariant everywhere below is
   charge-before-answer: after any crash, replayed spent ε is >= the
   spend at the crash point — the engine may over-count, never
   under-count. *)

open Dp_mechanism
open Dp_engine

let temp_journal () = Filename.temp_file "dpkit_test" ".wal"

let with_journal f =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let policy ?(epsilon = 2.) ?(delta = 1e-6) ?(backend = Ledger.Basic)
    ?(low_water = 0.) () =
  {
    (Registry.default_policy ~total:(Privacy.approx ~epsilon ~delta)) with
    backend;
    low_water;
  }

let fresh ?(seed = 42) ?(faults = Faults.none) () =
  Engine.create ~seed ~faults ()

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let ok_r label = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "%s: %s" label (Format.asprintf "%a" Engine.pp_error e)

let spent eng ~dataset =
  (ok_r "report" (Engine.report eng ~dataset)).Engine.spent

(* --- journal encode/decode --- *)

let sample_records =
  [
    Journal.Register { name = "demo"; rows = 321; seed = 7; policy = policy () };
    Journal.Charge
      {
        dataset = "demo";
        analyst = Some "alice";
        query = "mean(income)";
        mechanism = "laplace";
        face = Privacy.approx ~epsilon:0.125 ~delta:1e-7;
        marginal = Privacy.approx ~epsilon:0.125 ~delta:0.;
        rho = Some (Array.map (fun a -> a /. 2.) Ledger.alpha_grid);
      };
    Journal.Charge
      {
        dataset = "demo";
        analyst = None;
        query = "count";
        mechanism = "geometric";
        face = Privacy.approx ~epsilon:0.1 ~delta:0.;
        marginal = Privacy.approx ~epsilon:0.1 ~delta:0.;
        rho = None;
      };
    Journal.Cache_insert
      {
        dataset = "demo";
        key = "count|eps=0.1";
        answer = Planner.Scalar 317.000000000000057;
        mechanism = Planner.Geometric;
        requested = Privacy.approx ~epsilon:0.1 ~delta:0.;
      };
    Journal.Cache_insert
      {
        dataset = "demo";
        key = "histogram(age,4)";
        answer = Planner.Vector [| 1.5; -0.25; 1e-17; 80.0000000000001 |];
        mechanism = Planner.Laplace;
        requested = Privacy.approx ~epsilon:0.2 ~delta:0.;
      };
    Journal.Withheld { dataset = "demo"; reason = "rng" };
  ]

let roundtrip () =
  with_journal (fun path ->
      let j, existing, _ = ok (Journal.open_ path) in
      Alcotest.(check int) "fresh journal empty" 0 (List.length existing);
      List.iter
        (fun r ->
          match Journal.append j r with
          | Ok () -> ()
          | Error (`Transient m | `Fatal m) -> Alcotest.fail m)
        sample_records;
      Journal.close j;
      let loaded, stats = ok (Journal.load path) in
      Alcotest.(check int) "record count" (List.length sample_records)
        stats.Journal.records;
      Alcotest.(check int) "no torn bytes" 0 stats.Journal.torn_bytes;
      (* hex-float encoding means decode . encode is the identity, bit
         for bit — polymorphic equality on the decoded records holds *)
      Alcotest.(check bool) "records identical" true (loaded = sample_records))

let torn_tail () =
  with_journal (fun path ->
      let j, _, _ = ok (Journal.open_ path) in
      List.iter (fun r -> ignore (Journal.append j r)) sample_records;
      Journal.close j;
      let full = In_channel.with_open_bin path In_channel.input_all in
      (* chop mid-frame: every cut must recover a clean prefix *)
      let cuts = [ String.length full - 1; String.length full - 9; 17; 9 ] in
      List.iter
        (fun cut ->
          let cut = max 0 (min cut (String.length full)) in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (String.sub full 0 cut));
          let loaded, stats = ok (Journal.load path) in
          Alcotest.(check bool)
            (Printf.sprintf "cut at %d yields a record prefix" cut)
            true
            (stats.Journal.records <= List.length sample_records
            && loaded
               = List.filteri
                   (fun i _ -> i < stats.Journal.records)
                   sample_records);
          (* open_ repairs the file in place: reopening after the repair
             sees a clean journal with no torn bytes *)
          let j, _, _ = ok (Journal.open_ path) in
          Journal.close j;
          let _, stats' = ok (Journal.load path) in
          Alcotest.(check int)
            (Printf.sprintf "cut at %d repaired" cut)
            0 stats'.Journal.torn_bytes)
        cuts;
      (* garbage appended after valid frames is torn tail, not data *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc full;
          Out_channel.output_string oc "\x00\x01\xfe");
      let loaded, stats = ok (Journal.load path) in
      Alcotest.(check int) "garbage dropped" 3 stats.Journal.torn_bytes;
      Alcotest.(check bool) "records survive garbage" true
        (loaded = sample_records))

(* --- engine recovery --- *)

let run_traffic eng =
  List.map
    (fun (analyst, expr) ->
      (expr, Engine.submit_text eng ?analyst ~dataset:"demo" expr))
    [
      (None, "count");
      (Some "alice", "mean(income)");
      (None, "count");  (* cache hit *)
      (Some "bob", "sum(age)");
      (None, "quantile(score,0.5)");
      (None, "histogram(age,4)");
    ]

let recovery_backend name backend () =
  with_journal (fun path ->
      let live = fresh () in
      let r = ok (Engine.open_journal live path) in
      Alcotest.(check bool) (name ^ " empty journal verified") true
        r.Engine.verified;
      let _ =
        ok (Engine.register_synthetic live ~name:"demo" ~rows:300
              ~policy:(policy ~backend ()))
      in
      let answers = run_traffic live in
      let live_spent = spent live ~dataset:"demo" in
      Engine.close live;
      let recovered = fresh () in
      let r = ok (Engine.open_journal recovered path) in
      Alcotest.(check bool) (name ^ " recovery verified") true
        r.Engine.verified;
      Alcotest.(check int) (name ^ " datasets rebuilt") 1 r.Engine.datasets;
      let back = spent recovered ~dataset:"demo" in
      Alcotest.(check (float 0.)) (name ^ " spent eps exact")
        live_spent.Privacy.epsilon back.Privacy.epsilon;
      Alcotest.(check (float 0.)) (name ^ " spent delta exact")
        live_spent.Privacy.delta back.Privacy.delta;
      (* every answered query replays from cache, bit-identical *)
      List.iter
        (fun (expr, first) ->
          match first with
          | Error _ -> ()
          | Ok (first : Engine.response) ->
              let again =
                ok_r expr (Engine.submit_text recovered ~dataset:"demo" expr)
              in
              Alcotest.(check bool) (expr ^ " is a cache hit") true
                again.Engine.cache_hit;
              Alcotest.(check bool) (expr ^ " answer bit-identical") true
                (first.Engine.answer = again.Engine.answer))
        answers;
      Engine.close recovered)

(* Recovery replays charges without consuming PRNG draws, so a
   recovered engine that kept the seeded stream would hand its first
   fresh release the exact noise already released before the crash —
   differencing the two answers would cancel the noise. open_journal
   re-keys the stream from OS entropy; with the cache off, the same
   query after recovery is a genuinely fresh (and differently-noised)
   release. *)
let noise_fresh_after_recovery () =
  with_journal (fun path ->
      let no_cache = { (policy ()) with Registry.cache = false } in
      let live = fresh () in
      let _ = ok (Engine.open_journal live path) in
      let _ =
        ok (Engine.register_synthetic live ~name:"demo" ~rows:200
              ~policy:no_cache)
      in
      let first =
        ok_r "mean" (Engine.submit_text live ~dataset:"demo" "mean(income)")
      in
      Engine.close live;
      let recovered = fresh () in
      (* same seed as [live]! *)
      let _ = ok (Engine.open_journal recovered path) in
      let again =
        ok_r "mean" (Engine.submit_text recovered ~dataset:"demo" "mean(income)")
      in
      Alcotest.(check bool) "fresh release, not a cache hit" false
        again.Engine.cache_hit;
      Alcotest.(check bool) "noise not reused across recovery" true
        (first.Engine.answer <> again.Engine.answer);
      Engine.close recovered)

(* A live withheld charge (rng exhausted after the journaled charge)
   journals a Withheld outcome marker; recovery pairs it with its
   charge, so rebuilt answered/rejected stats and audit verdicts match
   the live run while the budget still includes the charge. *)
let withheld_outcome_recovered () =
  with_journal (fun path ->
      let faults = ok (Faults.parse "rng=always") in
      let live = fresh ~faults () in
      let _ = ok (Engine.open_journal live path) in
      let _ =
        ok (Engine.register_synthetic live ~name:"demo" ~rows:100
              ~policy:(policy ()))
      in
      (match Engine.submit_text live ~dataset:"demo" "count" with
      | Error (Engine.Transient _) -> ()
      | Ok _ -> Alcotest.fail "rng=always released an answer"
      | Error e ->
          Alcotest.failf "expected transient, got %s"
            (Format.asprintf "%a" Engine.pp_error e));
      let live_r = ok_r "report" (Engine.report live ~dataset:"demo") in
      Alcotest.(check int) "live answered" 0 live_r.Engine.answered;
      Alcotest.(check int) "live rejected" 1 live_r.Engine.rejected;
      Engine.close live;
      let recovered = fresh () in
      let r = ok (Engine.open_journal recovered path) in
      Alcotest.(check bool) "recovery verified" true r.Engine.verified;
      Alcotest.(check int) "charge replayed" 1 r.Engine.charges;
      let rep = ok_r "report" (Engine.report recovered ~dataset:"demo") in
      Alcotest.(check int) "recovered answered matches live" 0
        rep.Engine.answered;
      Alcotest.(check int) "recovered rejected matches live" 1
        rep.Engine.rejected;
      Alcotest.(check (float 0.)) "withheld charge still spent"
        live_r.Engine.spent.Privacy.epsilon rep.Engine.spent.Privacy.epsilon;
      Alcotest.(check bool) "charged-unreleased verdict rebuilt" true
        (List.exists
           (fun (rc : Audit_log.record) ->
             match rc.Audit_log.verdict with
             | Audit_log.Charged_unreleased _ -> true
             | _ -> false)
           (Engine.records recovered ~dataset:"demo"));
      Engine.close recovered)

(* Observability across recovery: the snapshot-mirrored counters and
   gauges are written from the same authoritative state the journal
   restores, so a recovered engine's metrics agree with the live
   engine's by construction — the monitoring view cannot drift from the
   ledger across a crash. (Cache lookup counters are the deliberate
   exception: they count lookups on *this* process, so a fresh process
   restarts them at zero.) *)
let metrics_snapshot_recovered () =
  with_journal (fun path ->
      let snapshot eng =
        Engine.refresh_metrics eng;
        let d = Dp_obs.Metrics.dataset (Engine.metrics eng) "demo" in
        ( Dp_obs.Metrics.count d Dp_obs.Name.Queries_answered,
          Dp_obs.Metrics.count d Dp_obs.Name.Queries_rejected,
          Dp_obs.Metrics.count d Dp_obs.Name.Queries_withheld,
          Dp_obs.Metrics.gauge d Dp_obs.Name.Eps_spent,
          Dp_obs.Metrics.gauge d Dp_obs.Name.Eps_remaining,
          Dp_obs.Metrics.gauge d Dp_obs.Name.Degraded_mode )
      in
      let status_field line key =
        match
          List.find_opt
            (fun tok ->
              String.length tok > String.length key
              && String.sub tok 0 (String.length key + 1) = key ^ "=")
            (String.split_on_char ' ' (String.trim line))
        with
        | Some tok -> tok
        | None -> Alcotest.failf "status line %S lacks %s=" line key
      in
      let dataset_status eng =
        match
          List.find_opt
            (fun l ->
              match String.split_on_char ' ' (String.trim l) with
              | "dataset" :: "demo" :: _ -> true
              | _ -> false)
            (Protocol.exec eng "status")
        with
        | Some l -> l
        | None -> Alcotest.fail "status has no dataset line"
      in
      let live = fresh () in
      let _ = ok (Engine.open_journal live path) in
      let _ =
        ok (Engine.register_synthetic live ~name:"demo" ~rows:300
              ~policy:(policy ()))
      in
      let _ = run_traffic live in
      let live_snap = snapshot live in
      let live_status = dataset_status live in
      Engine.close live;
      let recovered = fresh () in
      let r = ok (Engine.open_journal recovered path) in
      Alcotest.(check bool) "recovery verified" true r.Engine.verified;
      let rec_snap = snapshot recovered in
      let a, rj, w, es, er, dm = live_snap in
      let a', rj', w', es', er', dm' = rec_snap in
      Alcotest.(check int) "answered counter survives recovery" a a';
      Alcotest.(check int) "rejected counter survives recovery" rj rj';
      Alcotest.(check int) "withheld counter survives recovery" w w';
      Alcotest.(check (float 0.)) "eps_spent gauge exact across recovery" es es';
      Alcotest.(check (float 0.)) "eps_remaining gauge exact across recovery" er
        er';
      Alcotest.(check (float 0.)) "degradation gauge agrees" dm dm';
      Alcotest.(check bool) "live traffic answered something" true (a > 0);
      let rec_status = dataset_status recovered in
      List.iter
        (fun key ->
          Alcotest.(check string)
            ("status " ^ key ^ " agrees across recovery")
            (status_field live_status key)
            (status_field rec_status key))
        [ "eps-spent"; "eps-remaining"; "answered"; "mode" ];
      (* hit-rate is reported on both sides even though lookup counters
         restart with the process *)
      ignore (status_field live_status "hit-rate");
      ignore (status_field rec_status "hit-rate");
      (* the full metrics dump of the recovered engine stays inside the
         closed catalogue and parses back *)
      (match Dp_obs.Export.parse (Engine.metrics_lines recovered) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "recovered dump must parse: %s" msg);
      (* answered queries replay from the recovered cache as hits, which
         the mirrored cache_hits counter then reflects *)
      let _ =
        ok_r "count" (Engine.submit_text recovered ~dataset:"demo" "count")
      in
      Engine.refresh_metrics recovered;
      let d = Dp_obs.Metrics.dataset (Engine.metrics recovered) "demo" in
      Alcotest.(check bool) "replayed answer counted as cache hit" true
        (Dp_obs.Metrics.count d Dp_obs.Name.Cache_hits > 0);
      Engine.close recovered)

let raw_register_refused () =
  with_journal (fun path ->
      let eng = fresh () in
      let _ = ok (Engine.open_journal eng path) in
      let ds =
        Registry.synthetic ~name:"raw" ~rows:10
          ~policy:(policy ()) (Dp_rng.Prng.create 1)
      in
      (match Engine.register eng ds with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "raw dataset accepted with journal attached");
      Engine.close eng)

let crash_after_charge () =
  with_journal (fun path ->
      let faults = ok (Faults.parse "crash-after-charge=2") in
      let live = fresh ~faults () in
      let _ = ok (Engine.open_journal live path) in
      let _ =
        ok (Engine.register_synthetic live ~name:"demo" ~rows:200
              ~policy:(policy ()))
      in
      let first = ok_r "count" (Engine.submit_text live ~dataset:"demo" "count") in
      let spent_before = spent live ~dataset:"demo" in
      (* the second fresh release crashes between the journaled charge
         and the answer *)
      (match Engine.submit_text live ~dataset:"demo" "mean(income)" with
      | exception Faults.Crash Faults.Crash_after_charge -> ()
      | Ok _ -> Alcotest.fail "expected injected crash"
      | Error e -> Alcotest.failf "expected crash, got %s" (Format.asprintf "%a" Engine.pp_error e));
      Engine.close live;
      let recovered = fresh () in
      let r = ok (Engine.open_journal recovered path) in
      Alcotest.(check bool) "recovery verified" true r.Engine.verified;
      Alcotest.(check int) "both charges replayed" 2 r.Engine.charges;
      let back = spent recovered ~dataset:"demo" in
      (* over-count, never under-count: the crashed query's charge is
         included even though its answer was never released *)
      Alcotest.(check bool) "spent includes crashed charge" true
        (back.Privacy.epsilon > spent_before.Privacy.epsilon +. 0.05);
      let again =
        ok_r "count" (Engine.submit_text recovered ~dataset:"demo" "count")
      in
      Alcotest.(check bool) "pre-crash answer cached" true
        again.Engine.cache_hit;
      Alcotest.(check bool) "pre-crash answer bit-identical" true
        (first.Engine.answer = again.Engine.answer);
      Engine.close recovered)

(* --- fault injection and retries --- *)

let transient_faults_absorbed () =
  with_journal (fun path ->
      let faults = ok (Faults.parse "all-transient") in
      let eng = fresh ~faults () in
      let _ = ok (Engine.open_journal eng path) in
      let _ =
        ok (Engine.register_synthetic eng ~name:"demo" ~rows:100
              ~policy:(policy ()))
      in
      (* every first attempt of journal-write, journal-fsync and rng
         fails; bounded retries must absorb all of it *)
      List.iter
        (fun expr ->
          match Engine.submit_text eng ~dataset:"demo" expr with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "%s failed under all-transient: %s" expr
                (Format.asprintf "%a" Engine.pp_error e))
        [ "count"; "mean(income)"; "sum(age)" ];
      Engine.close eng;
      (* and the journal is still clean and replayable *)
      let recovered = fresh () in
      let r = ok (Engine.open_journal recovered path) in
      Alcotest.(check bool) "verified after fault soak" true r.Engine.verified;
      Alcotest.(check int) "all charges durable" 3 r.Engine.charges;
      Engine.close recovered)

let with_retries_unit () =
  let calls = ref 0 in
  (match
     Faults.with_retries ~attempts:3 ~backoff_s:0. (fun ~attempt ->
         incr calls;
         if attempt < 3 then raise (Faults.Injected Faults.Rng) else "done")
   with
  | Ok v ->
      Alcotest.(check string) "eventual success" "done" v;
      Alcotest.(check int) "three attempts" 3 !calls
  | Error e -> Alcotest.fail e);
  match
    Faults.with_retries ~attempts:2 ~backoff_s:0. (fun ~attempt:_ ->
        raise (Faults.Injected Faults.Journal_fsync))
  with
  | Ok () -> Alcotest.fail "should have exhausted retries"
  | Error _ -> ()

(* Full-jitter backoff: the schedule must differ across attempts (the
   point of jitter is decorrelating a herd) yet replay deterministically
   under a fixed seed (the point of threading an explicit stream). *)
let backoff_jitter () =
  let attempts = [ 1; 2; 3; 4; 5 ] in
  let sched g =
    List.map
      (fun attempt ->
        Faults.backoff_delay ~jitter:g ~backoff_s:0.001 ~attempt ())
      attempts
  in
  let s1 = sched (Dp_rng.Prng.create 42) in
  let s2 = sched (Dp_rng.Prng.create 42) in
  Alcotest.(check (list (float 0.))) "fixed seed replays exactly" s1 s2;
  let plain =
    List.map
      (fun attempt -> Faults.backoff_delay ~backoff_s:0.001 ~attempt ())
      attempts
  in
  Alcotest.(check bool) "jittered schedule differs from unjittered" true
    (s1 <> plain);
  List.iter2
    (fun j p ->
      Alcotest.(check bool) "full jitter stays in [0, delay)" true
        (j >= 0. && j < p))
    s1 plain;
  let s3 = sched (Dp_rng.Prng.create 43) in
  Alcotest.(check bool) "different seeds decorrelate" true (s1 <> s3);
  Alcotest.(check (float 0.))
    "cap bounds the exponential" 0.5
    (Faults.backoff_delay ~cap_s:0.5 ~backoff_s:0.2 ~attempt:10 ());
  (* with_retries threads the stream through its sleeps *)
  match
    Faults.with_retries ~attempts:3 ~backoff_s:1e-6
      ~jitter:(Dp_rng.Prng.create 7) (fun ~attempt ->
        if attempt < 3 then raise (Faults.Injected Faults.Rng) else attempt)
  with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "expected success on attempt 3, got %d" n
  | Error e -> Alcotest.fail e

let fault_spec_parsing () =
  Alcotest.(check bool) "off unarmed" false
    (Faults.armed (ok (Faults.parse "off")));
  Alcotest.(check bool) "empty unarmed" false
    (Faults.armed (ok (Faults.parse "")));
  Alcotest.(check bool) "all-transient armed" true
    (Faults.armed (ok (Faults.parse "all-transient")));
  (match Faults.parse "no-such-point" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus point accepted");
  (match Faults.parse "rng=0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rng=0 accepted");
  let t = ok (Faults.parse "journal-write=2") in
  Alcotest.(check bool) "1st opportunity quiet" false
    (Faults.fire t Faults.Journal_write);
  Alcotest.(check bool) "2nd opportunity fires" true
    (Faults.fire t Faults.Journal_write);
  Alcotest.(check bool) "one-shot consumed" false
    (Faults.fire t Faults.Journal_write);
  (* always: fires on every opportunity, retries included *)
  let t = ok (Faults.parse "rng=always") in
  Alcotest.(check bool) "always fires" true (Faults.fire t Faults.Rng);
  Alcotest.(check bool) "always fires on retries" true
    (Faults.fire t ~attempt:3 Faults.Rng);
  match Faults.parse "rng=sometimes" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus count accepted"

(* --- graceful degradation --- *)

let degraded_mode () =
  let eng = fresh () in
  let _ =
    ok
      (Engine.register_synthetic eng ~name:"demo" ~rows:100
         ~policy:(policy ~epsilon:0.25 ~delta:0. ~low_water:0.1 ()))
  in
  let first = ok_r "count" (Engine.submit_text eng ~dataset:"demo" "count") in
  let _ = ok_r "mean" (Engine.submit_text eng ~dataset:"demo" "mean(age)") in
  (* remaining 0.05 < low-water 0.1: fresh queries refused softly... *)
  (match Engine.submit_text eng ~dataset:"demo" "sum(income)" with
  | Error (Engine.Degraded { low_water; remaining; _ }) ->
      Alcotest.(check (float 0.)) "low water reported" 0.1 low_water;
      Alcotest.(check bool) "remaining below mark" true
        (remaining.Privacy.epsilon < 0.1)
  | Ok _ -> Alcotest.fail "fresh query served below low-water mark"
  | Error e ->
      Alcotest.failf "expected degraded, got %s"
        (Format.asprintf "%a" Engine.pp_error e));
  (* ...but cache hits are free post-processing and still flow *)
  let again = ok_r "count" (Engine.submit_text eng ~dataset:"demo" "count") in
  Alcotest.(check bool) "cache hit in degraded mode" true again.Engine.cache_hit;
  Alcotest.(check bool) "cached answer unchanged" true
    (first.Engine.answer = again.Engine.answer);
  let report = ok_r "report" (Engine.report eng ~dataset:"demo") in
  Alcotest.(check bool) "report flags degraded" true report.Engine.degraded

(* --- protocol hardening --- *)

let proto_exec eng line = String.concat "\n" (Protocol.exec eng line)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let check_prefix name prefix line =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S starts with %S" name line prefix)
    true (starts_with prefix line)

let protocol_taxonomy () =
  let eng = fresh () in
  check_prefix "duplicate key" "err bad-argument duplicate option eps"
    (proto_exec eng "register demo rows=10 eps=1 eps=2");
  check_prefix "unknown key" "err bad-argument unknown option bogus"
    (proto_exec eng "register demo bogus=1");
  check_prefix "unknown query key" "err bad-argument unknown option rows"
    (proto_exec eng "query demo count rows=10");
  check_prefix "bad low-water" "err bad-argument low-water"
    (proto_exec eng "register demo low-water=-1");
  check_prefix "oversized line" "err bad-argument line exceeds"
    (proto_exec eng ("query demo " ^ String.make Protocol.max_line_bytes 'x'));
  check_prefix "register ok" "ok registered"
    (proto_exec eng "register demo rows=50 eps=0.3 low-water=0.1");
  check_prefix "query ok" "ok seq=" (proto_exec eng "query demo count");
  check_prefix "second charge ok" "ok seq="
    (proto_exec eng "query demo mean(age)");
  check_prefix "degraded taxonomy" "err degraded dataset=demo"
    (proto_exec eng "query demo sum(income)");
  check_prefix "unknown dataset" "err unknown-dataset"
    (proto_exec eng "query nope count");
  (match Protocol.exec eng "status" with
  | header :: ds ->
      check_prefix "status header" "ok status datasets=1 journal=off" header;
      Alcotest.(check int) "status lists datasets" 1 (List.length ds);
      Alcotest.(check bool) "status shows degraded" true
        (List.exists
           (fun l -> starts_with "  dataset demo" l
                     && String.length l > 0
                     && Option.is_some
                          (String.index_opt l 'd')
                     && (let n = String.length "mode=degraded" in
                         String.length l >= n
                         && String.sub l (String.length l - n) n
                            = "mode=degraded"))
           ds)
  | [] -> Alcotest.fail "status returned nothing");
  (* exec never lets an exception escape as anything but err fatal *)
  check_prefix "internal errors typed" "err"
    (proto_exec eng "query demo count eps=nan")

(* serve reads with a bounded buffer: a huge newline-free line is
   drained in O(1) memory, rejected with its true byte count, and the
   loop keeps serving the requests after it *)
let serve_bounded_input () =
  let eng = fresh () in
  let in_path = Filename.temp_file "dpkit_in" ".txt" in
  let out_path = Filename.temp_file "dpkit_out" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ in_path; out_path ])
    (fun () ->
      let huge = "query demo " ^ String.make (300 * 1024) 'x' in
      Out_channel.with_open_bin in_path (fun oc ->
          Out_channel.output_string oc (huge ^ "\nhelp\nquit\n"));
      In_channel.with_open_bin in_path (fun ic ->
          Out_channel.with_open_bin out_path (fun oc ->
              Protocol.serve eng ic oc));
      let out = In_channel.with_open_bin out_path In_channel.input_all in
      match String.split_on_char '\n' out with
      | first :: rest ->
          check_prefix "oversized line over serve"
            (Printf.sprintf "err bad-argument line exceeds %d bytes (got %d)"
               Protocol.max_line_bytes (String.length huge))
            first;
          Alcotest.(check bool) "loop continues past the oversized line" true
            (List.exists (fun l -> l = "ok commands:") rest);
          Alcotest.(check bool) "quit acknowledged" true
            (List.mem "ok bye" rest)
      | [] -> Alcotest.fail "serve produced no output")

(* --- qcheck: replay reconstructs the ledger, even truncated --- *)

let queries_pool =
  [| "count"; "mean(income)"; "sum(age)"; "quantile(score,0.5)";
     "histogram(age,4)"; "count(age>40)" |]

let prop_replay_spent =
  QCheck.Test.make ~count:25 ~name:"journal replay spent = live spent at every prefix"
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 12) (int_bound (Array.length queries_pool - 1)))
        (int_bound 2) (int_bound 10_000))
    (fun (picks, backend_ix, cut_salt) ->
      let backend =
        match backend_ix with
        | 0 -> Ledger.Basic
        | 1 -> Ledger.Advanced { slack = 1e-6 }
        | _ -> Ledger.Rdp { delta = 1e-6 }
      in
      with_journal (fun path ->
          let live = fresh () in
          let _ = ok (Engine.open_journal live path) in
          let _ =
            ok
              (Engine.register_synthetic live ~name:"demo" ~rows:64
                 ~policy:(policy ~epsilon:1.5 ~backend ()))
          in
          (* spends.(k) = spent budget after k journaled charges *)
          let spends = ref [ Privacy.approx ~epsilon:0. ~delta:0. ] in
          List.iter
            (fun i ->
              match
                Engine.submit_text live ~dataset:"demo" queries_pool.(i)
              with
              | Ok r when not r.Engine.cache_hit ->
                  spends := spent live ~dataset:"demo" :: !spends
              | Ok _ | Error _ -> ())
            picks;
          let spends = Array.of_list (List.rev !spends) in
          let live_spent = spent live ~dataset:"demo" in
          Engine.close live;
          (* full replay: exact equality *)
          let r1 = fresh () in
          let rec1 = ok (Engine.open_journal r1 path) in
          let full = spent r1 ~dataset:"demo" in
          Engine.close r1;
          if not rec1.Engine.verified then
            QCheck.Test.fail_report "full recovery not verified";
          if full <> live_spent then
            QCheck.Test.fail_report "full replay spent <> live spent";
          (* truncate a random suffix — a crash mid-write — and replay:
             the rebuilt spend must equal the live spend after exactly
             the charges that survived, and never exceed the full spend *)
          let bytes = In_channel.with_open_bin path In_channel.input_all in
          let cut = cut_salt mod (String.length bytes + 1) in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (String.sub bytes 0 cut));
          let records, _ = ok (Journal.load path) in
          let survived_register =
            List.exists (function Journal.Register _ -> true | _ -> false) records
          in
          let k =
            List.length
              (List.filter (function Journal.Charge _ -> true | _ -> false) records)
          in
          let r2 = fresh () in
          let rec2 = ok (Engine.open_journal r2 path) in
          let outcome =
            if not rec2.Engine.verified then
              QCheck.Test.fail_report "truncated recovery not verified"
            else if not survived_register then rec2.Engine.datasets = 0
            else begin
              let back = spent r2 ~dataset:"demo" in
              back = spends.(k)
              && back.Privacy.epsilon <= live_spent.Privacy.epsilon
            end
          in
          Engine.close r2;
          outcome))

let () =
  Alcotest.run "dp_durability"
    [
      ( "journal",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick roundtrip;
          Alcotest.test_case "torn tail truncation" `Quick torn_tail;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "basic backend" `Quick
            (recovery_backend "basic" Ledger.Basic);
          Alcotest.test_case "advanced backend" `Quick
            (recovery_backend "advanced" (Ledger.Advanced { slack = 1e-6 }));
          Alcotest.test_case "rdp backend" `Quick
            (recovery_backend "rdp" (Ledger.Rdp { delta = 1e-6 }));
          Alcotest.test_case "raw datasets refused" `Quick raw_register_refused;
          Alcotest.test_case "crash between charge and answer" `Quick
            crash_after_charge;
          Alcotest.test_case "noise re-keyed across recovery" `Quick
            noise_fresh_after_recovery;
          Alcotest.test_case "withheld outcome recovered" `Quick
            withheld_outcome_recovered;
          Alcotest.test_case "metrics snapshot recovered" `Quick
            metrics_snapshot_recovered;
        ] );
      ( "faults",
        [
          Alcotest.test_case "all-transient absorbed" `Quick
            transient_faults_absorbed;
          Alcotest.test_case "with_retries" `Quick with_retries_unit;
          Alcotest.test_case "backoff jitter" `Quick backoff_jitter;
          Alcotest.test_case "spec parsing" `Quick fault_spec_parsing;
        ] );
      ( "degradation",
        [ Alcotest.test_case "low-water mark" `Quick degraded_mode ] );
      ( "protocol",
        [
          Alcotest.test_case "error taxonomy" `Quick protocol_taxonomy;
          Alcotest.test_case "bounded line reader" `Quick serve_bounded_input;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_replay_spent ] );
    ]
