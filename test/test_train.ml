(* Served private learning: the train query class end to end. The
   contracts under test are the ISSUE's acceptance gates — the
   convergence gate decides release vs withhold, handles are durable
   and recoverable bit-identically, prediction is free post-processing,
   and the static analyzer prices a train workload float-bit-identical
   to a live run. *)

open Dp_mechanism
open Dp_engine
module Train = Dp_train.Train
module Gates = Dp_train.Gates
module Model_store = Dp_train.Model_store
module A = Analyzer

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let ok_r label = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "%s: %s" label (Format.asprintf "%a" Engine.pp_error e)

let params opts =
  match Train.params_of_opts ~default_epsilon:0.1 opts with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let policy ?(epsilon = 10.) () =
  Registry.default_policy ~total:(Privacy.approx ~epsilon ~delta:1e-6)

let fresh ?(seed = 42) ?policy:(p = policy ()) () =
  let eng = Engine.create ~seed () in
  (match Engine.register_synthetic eng ~name:"d" ~rows:400 ~policy:p with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  eng

let spent eng =
  (ok_r "report" (Engine.report eng ~dataset:"d")).Engine.spent

let bits = Int64.bits_of_float

(* A raw point in the synthetic schema's feature order (age, income —
   score is the default target). *)
let point = [| 40.; 50_000. |]

(* Objective perturbation: deterministic gate, so the handle lifecycle
   can be tested without betting on chain mixing. *)
let objpert eps = params [ ("backend", Some "objpert"); ("eps", Some eps) ]

(* Gibbs with a frozen proposal: the chains never leave their
   overdispersed initial points, so split-Rhat is infinite and the gate
   must withhold — deterministically. *)
let frozen eps =
  params
    [
      ("eps", Some eps); ("steps", Some "16"); ("burn", Some "0");
      ("step-std", Some "1e-12");
    ]

(* --- params --------------------------------------------------------- *)

let test_params_validation () =
  let bad opts msg =
    match Train.params_of_opts ~default_epsilon:0.1 opts with
    | Ok _ -> Alcotest.failf "accepted: %s" msg
    | Error _ -> ()
  in
  bad [ ("eps", Some "0") ] "eps=0";
  bad [ ("eps", Some "-1") ] "negative eps";
  bad [ ("steps", Some "7") ] "steps below the split minimum";
  bad [ ("chains", Some "1") ] "single gibbs chain (gate needs >= 2)";
  bad [ ("backend", Some "objpert"); ("chains", Some "2") ] "objpert chains<>1";
  bad [ ("backend", Some "sgd") ] "unknown backend";
  bad [ ("rhat-max", Some "0.9") ] "rhat-max < 1";
  let p = params [] in
  Alcotest.(check int) "gibbs default chains" 2 p.Train.chains;
  Alcotest.(check string) "default target" "score" p.Train.target;
  let p = objpert "0.5" in
  Alcotest.(check int) "objpert chains" 1 p.Train.chains

let test_spec_pricing () =
  (* the ledger ask: chains * eps for Gibbs, eps for objpert — from
     schema facts only *)
  let cols = [ "age"; "income"; "score" ] in
  let p = params [ ("eps", Some "0.3"); ("chains", Some "4") ] in
  let sp = ok (Train.spec ~rows:400 ~cols p) in
  Alcotest.(check int64) "gibbs face = chains * eps" (bits 1.2)
    (bits sp.Train.face.Privacy.epsilon);
  Alcotest.(check (float 0.)) "pure dp" 0. sp.Train.face.Privacy.delta;
  let sp = ok (Train.spec ~rows:400 ~cols (objpert "0.3")) in
  Alcotest.(check int64) "objpert face = eps" (bits 0.3)
    (bits sp.Train.face.Privacy.epsilon);
  (match Train.spec ~rows:400 ~cols (params [ ("target", Some "zip") ]) with
  | Ok _ -> Alcotest.fail "unknown target accepted"
  | Error _ -> ());
  match Train.spec ~rows:400 ~cols:[ "score" ] (params []) with
  | Ok _ -> Alcotest.fail "no-feature schema accepted"
  | Error _ -> ()

(* --- gate ----------------------------------------------------------- *)

let lcg_chain seed n d =
  let s = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      Array.init d (fun _ ->
          s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
          (float_of_int !s /. float_of_int 0x3FFFFFFF) -. 0.5))

let test_gate_thresholds () =
  (* well-mixed deterministic chains pass both thresholds *)
  let good = [| lcg_chain 1 256 3; lcg_chain 7 256 3 |] in
  let r = Gates.check ~rhat_max:1.1 ~ess_min:20. good in
  Alcotest.(check bool) "mixed chains converge" true (Gates.converged r);
  Alcotest.(check int) "per-coordinate verdicts" 3 (Array.length r.Gates.coords);
  (* the same chains against an unattainable ESS threshold withhold *)
  let r = Gates.check ~rhat_max:1.1 ~ess_min:1e9 good in
  Alcotest.(check bool) "ess threshold binds" false (Gates.converged r);
  (* frozen disagreeing chains: infinite Rhat, withheld *)
  let stuck =
    [| Array.make 64 [| 0.; 0. |]; Array.make 64 [| 1.; 1. |] |]
  in
  let r = Gates.check ~rhat_max:1.1 ~ess_min:1. stuck in
  Alcotest.(check bool) "stuck chains withheld" false (Gates.converged r);
  Alcotest.(check bool) "rhat infinite" true (Gates.worst_rhat r = infinity);
  (* the deterministic report is vacuously converged *)
  let r = Gates.deterministic ~rhat_max:1.1 ~ess_min:20. in
  Alcotest.(check bool) "deterministic passes" true (Gates.converged r);
  Alcotest.(check (float 0.)) "deterministic rhat" 1. (Gates.worst_rhat r);
  Alcotest.(check bool) "deterministic ess" true (Gates.min_ess r = infinity)

(* --- handle lifecycle ----------------------------------------------- *)

let test_handle_lifecycle () =
  let eng = fresh () in
  let t = ok_r "train" (Engine.train eng ~dataset:"d" (objpert "0.5")) in
  let m = t.Engine.model in
  Alcotest.(check string) "first handle" "d/m1" m.Model_store.handle;
  Alcotest.(check string) "backend" "objective-perturbation"
    m.Model_store.backend;
  Alcotest.(check bool) "theta released" true (m.Model_store.theta <> None);
  Alcotest.(check int64) "charged = face" (bits 0.5)
    (bits t.Engine.charged.Privacy.epsilon);
  (* the handle resolves, and handles number sequentially *)
  (match Engine.find_model eng "d/m1" with
  | None -> Alcotest.fail "handle does not resolve"
  | Some m' ->
      Alcotest.(check string) "same model" m.Model_store.handle
        m'.Model_store.handle);
  let t2 = ok_r "train 2" (Engine.train eng ~dataset:"d" (objpert "0.25")) in
  Alcotest.(check string) "second handle" "d/m2"
    t2.Engine.model.Model_store.handle;
  (* prediction works on raw points and is deterministic *)
  let v1 = ok_r "predict" (Engine.predict eng "d/m1" point) in
  let v2 = ok_r "predict" (Engine.predict eng "d/m1" point) in
  Alcotest.(check bool) "finite margin" true (Float.is_finite v1);
  Alcotest.(check int64) "deterministic" (bits v1) (bits v2);
  (* unknown handles and malformed points are typed errors *)
  (match Engine.predict eng "d/m99" point with
  | Error (Engine.Unknown_model _) -> ()
  | _ -> Alcotest.fail "expected Unknown_model");
  (match Engine.predict eng "nosuch/m1" point with
  | Error (Engine.Unknown_model _) -> ()
  | _ -> Alcotest.fail "expected Unknown_model for unknown dataset");
  match Engine.predict eng "d/m1" [| 1. |] with
  | Error (Engine.Bad_query _) -> ()
  | _ -> Alcotest.fail "expected Bad_query on dimension mismatch"

let test_unconverged_withheld () =
  let eng = fresh () in
  let before = spent eng in
  (match Engine.train eng ~dataset:"d" (frozen "0.2") with
  | Ok _ -> Alcotest.fail "frozen chains must not release"
  | Error (Engine.Unconverged { handle; worst_rhat; charged; _ }) ->
      Alcotest.(check string) "withheld handle issued" "d/m1" handle;
      Alcotest.(check bool) "rhat over threshold" true (worst_rhat > 1.1);
      (* the charge stands: 2 chains x 0.2 under basic composition *)
      Alcotest.(check int64) "charge stands" (bits 0.4)
        (bits charged.Privacy.epsilon)
  | Error e ->
      Alcotest.failf "expected Unconverged: %s"
        (Format.asprintf "%a" Engine.pp_error e));
  let after = spent eng in
  Alcotest.(check int64) "spent advanced by the face" (bits 0.4)
    (bits (after.Privacy.epsilon -. before.Privacy.epsilon));
  (* the withheld handle occupies its slot: resolvable, theta-less,
     refuses predictions, and does not shift later handle names *)
  (match Engine.find_model eng "d/m1" with
  | None -> Alcotest.fail "withheld handle must resolve"
  | Some m ->
      Alcotest.(check bool) "no theta" true (m.Model_store.theta = None));
  (match Engine.predict eng "d/m1" point with
  | Error (Engine.Bad_query _) -> ()
  | _ -> Alcotest.fail "withheld model must refuse predictions");
  let t = ok_r "train" (Engine.train eng ~dataset:"d" (objpert "0.1")) in
  Alcotest.(check string) "slot not reused" "d/m2"
    t.Engine.model.Model_store.handle

let test_predict_is_free () =
  (* a total budget that exactly covers one objpert release: after it,
     training is refused but prediction still serves, charging nothing *)
  let eng =
    fresh ~policy:(Registry.default_policy ~total:(Privacy.pure 0.5)) ()
  in
  ignore (ok_r "train" (Engine.train eng ~dataset:"d" (objpert "0.5")));
  let s1 = spent eng in
  (match Engine.train eng ~dataset:"d" (objpert "0.1") with
  | Error (Engine.Budget_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "overdraft accepted"
  | Error e ->
      Alcotest.failf "expected Budget_exceeded: %s"
        (Format.asprintf "%a" Engine.pp_error e));
  for _ = 1 to 10 do
    ignore (ok_r "free predict" (Engine.predict eng "d/m1" point))
  done;
  let s2 = spent eng in
  Alcotest.(check int64) "prediction charged nothing"
    (bits s1.Privacy.epsilon) (bits s2.Privacy.epsilon)

(* --- static = live --------------------------------------------------- *)

let train_opts =
  [
    ("eps", Some "0.3"); ("chains", Some "3"); ("steps", Some "16");
    ("burn", Some "0"); ("step-std", Some "1e-12");
  ]

let test_analyze_matches_live () =
  (* the same mixed workload — a stat and a train — priced statically
     and served live must spend bit-identical epsilon; convergence of
     the live run is irrelevant to the charge *)
  let schema =
    ok
      (Registry.schema ~name:"d" ~rows:400 ~policy:(policy ())
         [
           { Registry.col = "age"; lo = 18.; hi = 80. };
           { Registry.col = "income"; lo = 0.; hi = 200_000. };
           { Registry.col = "score"; lo = -4.; hi = 4. };
         ])
  in
  let items =
    [
      A.Stat
        {
          text = "count";
          query = ok (Query.parse "count");
          epsilon = Some 0.1;
        };
      A.Train { text = "train"; train_opts };
    ]
  in
  let r = ok (A.analyze schema items) in
  Alcotest.(check bool) "static verdict PASS" true r.A.pass;
  let eng = fresh () in
  ignore (ok_r "count" (Engine.submit_text eng ~epsilon:0.1 ~dataset:"d" "count"));
  (match Engine.train eng ~dataset:"d" (params train_opts) with
  | Ok _ | Error (Engine.Unconverged _) -> ()
  | Error e ->
      Alcotest.failf "train: %s" (Format.asprintf "%a" Engine.pp_error e));
  let live = spent eng in
  Alcotest.(check int64) "epsilon bits" (bits live.Privacy.epsilon)
    (bits r.A.spent.Privacy.epsilon);
  Alcotest.(check int64) "delta bits" (bits live.Privacy.delta)
    (bits r.A.spent.Privacy.delta);
  (* the train row carries the gibbs face, not the per-chain eps *)
  let train_row = List.nth r.A.rows 1 in
  Alcotest.(check string) "mechanism" "gibbs" train_row.A.mechanism;
  Alcotest.(check int64) "row face = chains * eps" (bits (3. *. 0.3))
    (bits train_row.A.face.Privacy.epsilon)

(* --- recovery -------------------------------------------------------- *)

let temp_journal () = Filename.temp_file "dpkit_train_test" ".wal"

let with_journal f =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_recovery_bit_identical () =
  with_journal (fun path ->
      let eng = Engine.create ~seed:5 () in
      ignore (ok (Engine.open_journal eng path));
      (match
         Engine.register_synthetic eng ~name:"d" ~rows:400 ~policy:(policy ())
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let t = ok_r "train" (Engine.train eng ~dataset:"d" (objpert "0.4")) in
      (match Engine.train eng ~dataset:"d" (frozen "0.2") with
      | Error (Engine.Unconverged _) -> ()
      | _ -> Alcotest.fail "expected withheld second model");
      let theta1 = Option.get t.Engine.model.Model_store.theta in
      let pred1 = ok_r "predict" (Engine.predict eng "d/m1" point) in
      let spent1 = spent eng in
      (* restart on the same journal: a fresh engine must resolve the
         same handles with bit-identical thetas and spend *)
      let eng2 = Engine.create ~seed:5 () in
      let rec2 = ok (Engine.open_journal eng2 path) in
      Alcotest.(check int) "models recovered" 2 rec2.Engine.models_recovered;
      Alcotest.(check bool) "replay verified" true rec2.Engine.verified;
      let m1 =
        match Engine.find_model eng2 "d/m1" with
        | Some m -> m
        | None -> Alcotest.fail "released handle lost"
      in
      let theta2 = Option.get m1.Model_store.theta in
      Alcotest.(check (array int64)) "theta bits"
        (Array.map bits theta1) (Array.map bits theta2);
      let pred2 =
        ok_r "predict after recovery" (Engine.predict eng2 "d/m1" point)
      in
      Alcotest.(check int64) "prediction bits" (bits pred1) (bits pred2);
      (match Engine.find_model eng2 "d/m2" with
      | Some m ->
          Alcotest.(check bool) "withheld stays withheld" true
            (m.Model_store.theta = None)
      | None -> Alcotest.fail "withheld handle lost");
      let eng2_spent =
        (ok_r "report" (Engine.report eng2 ~dataset:"d")).Engine.spent
      in
      Alcotest.(check int64) "spent epsilon bits"
        (bits spent1.Privacy.epsilon) (bits eng2_spent.Privacy.epsilon))

let () =
  Alcotest.run "train"
    [
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "static pricing" `Quick test_spec_pricing;
        ] );
      ( "gate",
        [ Alcotest.test_case "thresholds" `Quick test_gate_thresholds ] );
      ( "handles",
        [
          Alcotest.test_case "lifecycle" `Quick test_handle_lifecycle;
          Alcotest.test_case "unconverged withheld" `Quick
            test_unconverged_withheld;
          Alcotest.test_case "predict is free" `Quick test_predict_is_free;
        ] );
      ( "static = live",
        [
          Alcotest.test_case "analyze prices train bit-identically" `Quick
            test_analyze_matches_live;
        ] );
      ( "durability",
        [
          Alcotest.test_case "kill and restart resolves identical handles"
            `Quick test_recovery_bit_identical;
        ] );
    ]
