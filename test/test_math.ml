open Dp_math

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual) then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Numeric *)

let test_approx_equal () =
  Alcotest.(check bool) "equal" true (Numeric.approx_equal 1. 1.);
  Alcotest.(check bool)
    "close" true
    (Numeric.approx_equal 1. (1. +. 1e-12));
  Alcotest.(check bool) "far" false (Numeric.approx_equal 1. 1.1);
  Alcotest.(check bool) "nan" false (Numeric.approx_equal nan nan);
  Alcotest.(check bool)
    "abs tol" true
    (Numeric.approx_equal ~abs_tol:0.2 1. 1.1)

let test_clamp () =
  check_close "mid" 0.5 (Numeric.clamp ~lo:0. ~hi:1. 0.5);
  check_close "below" 0. (Numeric.clamp ~lo:0. ~hi:1. (-3.));
  check_close "above" 1. (Numeric.clamp ~lo:0. ~hi:1. 7.);
  Alcotest.check_raises "bad interval" (Invalid_argument "Numeric.clamp: lo > hi")
    (fun () -> ignore (Numeric.clamp ~lo:1. ~hi:0. 0.5))

let test_checks () =
  check_close "prob ok" 0.3 (Numeric.check_prob "p" 0.3);
  (try
     ignore (Numeric.check_prob "p" 1.5);
     Alcotest.fail "check_prob accepted 1.5"
   with Invalid_argument _ -> ());
  (try
     ignore (Numeric.check_pos "x" 0.);
     Alcotest.fail "check_pos accepted 0"
   with Invalid_argument _ -> ());
  (try
     ignore (Numeric.check_finite "x" nan);
     Alcotest.fail "check_finite accepted nan"
   with Invalid_argument _ -> ())

let test_xlogx () =
  check_close "zero" 0. (Numeric.xlogx 0.);
  check_close "e" (exp 1.) (Numeric.xlogx (exp 1.));
  check_close "xlogy zero" 0. (Numeric.xlogy 0. 0.);
  check_close "xlogy" (2. *. log 3.) (Numeric.xlogy 2. 3.)

let test_compensated_sum () =
  (* Classic cancellation case: 1 + 1e16 - 1e16 should be 1 with
     compensation, 0 with naive summation. *)
  let xs = [| 1.; 1e16; -1e16 |] in
  check_close "neumaier" 1. (Summation.sum xs);
  check_close "empty" 0. (Summation.sum [||]);
  check_close "mean" 2. (Summation.mean [| 1.; 2.; 3. |])

let test_dot_cumulative () =
  check_close "dot" 32. (Summation.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  let c = Summation.cumulative [| 1.; 2.; 3. |] in
  check_close "cum0" 1. c.(0);
  check_close "cum1" 3. c.(1);
  check_close "cum2" 6. c.(2);
  check_close "wmean" 2.5
    (Summation.weighted_mean ~weights:[| 1.; 1. |] [| 2.; 3. |])

(* ------------------------------------------------------------------ *)
(* Logspace *)

let test_log_sum_exp () =
  check_close "pair" (log 2.) (Logspace.log_sum_exp [| 0.; 0. |]);
  check_close "large"
    (1000. +. log 2.)
    (Logspace.log_sum_exp [| 1000.; 1000. |]);
  check_close "binary" (log 3.) (Logspace.log_sum_exp2 (log 1.) (log 2.));
  Alcotest.(check (float 0.))
    "empty" neg_infinity
    (Logspace.log_sum_exp [||]);
  Alcotest.(check (float 0.))
    "neg_inf" neg_infinity
    (Logspace.log_sum_exp [| neg_infinity; neg_infinity |])

let test_normalize_log_weights () =
  let p = Logspace.normalize_log_weights [| 0.; log 3. |] in
  check_close "w0" 0.25 p.(0);
  check_close "w1" 0.75 p.(1);
  (* Extreme scale: must not under/overflow. *)
  let p = Logspace.normalize_log_weights [| -10000.; -10000. |] in
  check_close "extreme" 0.5 p.(0)

let test_log1pexp_log1mexp () =
  check_close "log1pexp 0" (log 2.) (Logspace.log1pexp 0.);
  check_close "log1pexp big" 100. (Logspace.log1pexp 100.) ~tol:1e-12;
  check_close "log1pexp small" (exp (-50.)) (Logspace.log1pexp (-50.));
  check_close "log1mexp" (log 0.5) (Logspace.log1mexp (-.log 2.));
  check_close "log1mexp small"
    (log (1. -. exp (-5.)))
    (Logspace.log1mexp (-5.))

(* ------------------------------------------------------------------ *)
(* Special functions *)

let test_erf () =
  check_close "erf 0" 0. (Special.erf 0.);
  check_close ~tol:1e-7 "erf 1" 0.8427007929497149 (Special.erf 1.);
  check_close ~tol:1e-7 "erf -1" (-0.8427007929497149) (Special.erf (-1.));
  check_close ~tol:1e-7 "erfc 2" 0.004677734981063127 (Special.erfc 2.);
  check_close ~tol:1e-6 "erf_inv roundtrip" 0.7
    (Special.erf (Special.erf_inv 0.7))

let test_log_gamma () =
  check_close "gamma 1" 0. (Special.log_gamma 1.);
  check_close "gamma 2" 0. (Special.log_gamma 2.);
  check_close ~tol:1e-10 "gamma 5" (log 24.) (Special.log_gamma 5.);
  check_close ~tol:1e-10 "gamma 0.5"
    (0.5 *. log Float.pi)
    (Special.log_gamma 0.5);
  check_close ~tol:1e-9 "gamma 10.3" 13.48203678613843
    (Special.log_gamma 10.3)

let test_incomplete_gamma () =
  (* P(1, x) = 1 - exp(-x). *)
  check_close ~tol:1e-9 "P(1,1)"
    (1. -. exp (-1.))
    (Special.lower_incomplete_gamma_regularized ~a:1. ~x:1.);
  check_close ~tol:1e-9 "P(1,5)"
    (1. -. exp (-5.))
    (Special.lower_incomplete_gamma_regularized ~a:1. ~x:5.);
  (* chi2 CDF with k=2 at x=2: P(1, 1) again. *)
  check_close "P zero" 0.
    (Special.lower_incomplete_gamma_regularized ~a:2.5 ~x:0.)

let test_incomplete_beta () =
  (* I_x(1,1) = x. *)
  check_close ~tol:1e-10 "I(1,1)" 0.3
    (Special.incomplete_beta_regularized ~a:1. ~b:1. ~x:0.3);
  (* I_x(2,2) = x^2 (3 - 2x). *)
  check_close ~tol:1e-9 "I(2,2)"
    (0.25 *. (3. -. 1.))
    (Special.incomplete_beta_regularized ~a:2. ~b:2. ~x:0.5);
  check_close "edges0" 0.
    (Special.incomplete_beta_regularized ~a:3. ~b:4. ~x:0.);
  check_close "edges1" 1.
    (Special.incomplete_beta_regularized ~a:3. ~b:4. ~x:1.)

let test_digamma () =
  (* psi(1) = -gamma_euler. *)
  check_close ~tol:1e-9 "psi 1" (-0.5772156649015329) (Special.digamma 1.);
  check_close ~tol:1e-9 "psi 0.5"
    (-1.9635100260214235)
    (Special.digamma 0.5);
  (* Recurrence psi(x+1) = psi(x) + 1/x. *)
  check_close ~tol:1e-9 "recurrence"
    (Special.digamma 3.7 +. (1. /. 3.7))
    (Special.digamma 4.7)

let test_normal () =
  check_close "cdf 0" 0.5 (Special.std_normal_cdf 0.);
  check_close ~tol:1e-7 "cdf 1.96" 0.9750021048517795
    (Special.std_normal_cdf 1.96);
  check_close ~tol:1e-8 "quantile" 1.6448536269514722
    (Special.std_normal_quantile 0.95);
  check_close ~tol:1e-8 "quantile tail"
    (-3.090232306167813)
    (Special.std_normal_quantile 0.001)

let test_binary_kl () =
  check_close "kl equal" 0. (Special.binary_kl 0.3 0.3);
  check_close ~tol:1e-12 "kl value"
    ((0.1 *. log (0.1 /. 0.5)) +. (0.9 *. log (0.9 /. 0.5)))
    (Special.binary_kl 0.1 0.5);
  Alcotest.(check (float 0.)) "kl inf" infinity (Special.binary_kl 0.5 0.);
  let q = 0.2 and c = 0.05 in
  let p = Special.binary_kl_inv_upper ~q ~c in
  check_close ~tol:1e-9 "inverse achieves" c (Special.binary_kl q p);
  Alcotest.(check bool) "inverse above q" true (p >= q)

(* ------------------------------------------------------------------ *)
(* Roots & quadrature *)

let test_roots () =
  let f x = (x *. x) -. 2. in
  check_close ~tol:1e-9 "bisect" (sqrt 2.) (Roots.bisect ~f 0. 2.);
  check_close ~tol:1e-9 "brent" (sqrt 2.) (Roots.brent ~f 0. 2.);
  check_close ~tol:1e-9 "newton" (sqrt 2.)
    (Roots.newton ~f ~df:(fun x -> 2. *. x) 1.);
  let g x = Numeric.sq (x -. 0.3) in
  check_close ~tol:1e-6 "golden" 0.3 (Roots.golden_section_min ~f:g (-1.) 1.)

let test_quadrature () =
  check_close ~tol:1e-8 "simpson x^2" (1. /. 3.)
    (Quadrature.simpson ~f:(fun x -> x *. x) 0. 1.);
  check_close ~tol:1e-8 "adaptive sin" 2.
    (Quadrature.adaptive_simpson ~f:sin 0. Float.pi);
  check_close ~tol:1e-4 "trapezoid exp"
    (exp 1. -. 1.)
    (Quadrature.trapezoid ~n:1024 ~f:exp 0. 1.);
  (* ∫₀^∞ e^{-x} dx = 1. *)
  check_close ~tol:1e-6 "to infinity" 1.
    (Quadrature.integrate_to_infinity ~f:(fun x -> exp (-.x)) 0.)

(* ------------------------------------------------------------------ *)
(* Property tests *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"log_sum_exp >= max" ~count:500
      (array_of_size (Gen.int_range 1 20) (float_range (-50.) 50.))
      (fun a ->
        let m = Array.fold_left Float.max neg_infinity a in
        Logspace.log_sum_exp a >= m -. 1e-9);
    Test.make ~name:"normalize_log_weights sums to 1" ~count:500
      (array_of_size (Gen.int_range 1 20) (float_range (-300.) 300.))
      (fun a ->
        let p = Logspace.normalize_log_weights a in
        Numeric.approx_equal ~rel_tol:1e-9 1. (Summation.sum p)
        && Array.for_all (fun x -> x >= 0.) p);
    Test.make ~name:"erf is odd" ~count:200 (float_range (-5.) 5.)
      (fun x ->
        Numeric.approx_equal ~abs_tol:1e-10 (Special.erf x)
          (-.Special.erf (-.x)));
    Test.make ~name:"erf monotone" ~count:200
      (pair (float_range (-4.) 4.) (float_range 0.001 1.))
      (fun (x, d) -> Special.erf (x +. d) >= Special.erf x -. 1e-12);
    Test.make ~name:"binary_kl nonnegative" ~count:500
      (pair (float_range 0. 1.) (float_range 0.001 0.999))
      (fun (q, p) -> Special.binary_kl q p >= 0.);
    Test.make ~name:"log_gamma recurrence" ~count:200 (float_range 0.1 20.)
      (fun x ->
        Numeric.approx_equal ~rel_tol:1e-8 ~abs_tol:1e-8
          (Special.log_gamma (x +. 1.))
          (Special.log_gamma x +. log x));
    Test.make ~name:"normal quantile inverts cdf" ~count:200
      (float_range 0.01 0.99)
      (fun p ->
        Numeric.approx_equal ~abs_tol:1e-7 p
          (Special.std_normal_cdf (Special.std_normal_quantile p)));
    Test.make ~name:"compensated sum matches naive on benign input"
      ~count:300
      (array_of_size (Gen.int_range 0 30) (float_range (-10.) 10.))
      (fun a ->
        let naive = Array.fold_left ( +. ) 0. a in
        Numeric.approx_equal ~rel_tol:1e-9 ~abs_tol:1e-9 naive
          (Summation.sum a));
    Test.make ~name:"clamp is idempotent and in range" ~count:300
      (triple (float_range (-5.) 5.) (float_range (-5.) 0.)
         (float_range 0. 5.))
      (fun (x, lo, hi) ->
        let c = Numeric.clamp ~lo ~hi x in
        c >= lo && c <= hi && Numeric.clamp ~lo ~hi c = c);
  ]

let () =
  Alcotest.run "dp_math"
    [
      ( "numeric",
        [
          Alcotest.test_case "approx_equal" `Quick test_approx_equal;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "domain checks" `Quick test_checks;
          Alcotest.test_case "xlogx/xlogy" `Quick test_xlogx;
        ] );
      ( "summation",
        [
          Alcotest.test_case "compensated sum" `Quick test_compensated_sum;
          Alcotest.test_case "dot & cumulative" `Quick test_dot_cumulative;
        ] );
      ( "logspace",
        [
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
          Alcotest.test_case "normalize" `Quick test_normalize_log_weights;
          Alcotest.test_case "log1pexp/log1mexp" `Quick
            test_log1pexp_log1mexp;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf" `Quick test_erf;
          Alcotest.test_case "log_gamma" `Quick test_log_gamma;
          Alcotest.test_case "incomplete gamma" `Quick test_incomplete_gamma;
          Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
          Alcotest.test_case "digamma" `Quick test_digamma;
          Alcotest.test_case "normal cdf/quantile" `Quick test_normal;
          Alcotest.test_case "binary kl" `Quick test_binary_kl;
        ] );
      ( "roots & quadrature",
        [
          Alcotest.test_case "root finding" `Quick test_roots;
          Alcotest.test_case "quadrature" `Quick test_quadrature;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
