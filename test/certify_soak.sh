#!/bin/sh
# Statistical DP-certification soak: `dpkit certify --via tcp` drives a
# live `dpkit serve --tcp` process and hypothesis-tests the claimed
# epsilon on the wire, under faults and across crash-recovery. Legs:
#   1. fault-armed serving: journal and rng transients plus network
#      tears (CERTIFY_FAULTS overrides the spec); the certification
#      must still pass — injected faults shake the transport and the
#      durability layer, never the output distribution.
#   2. kill -9, then restart on the same journal with a fresh seed: the
#      engine re-keys its noise stream from OS entropy on journal
#      attach, so `certify compare` of pre/post-restart outputs must
#      certify (same distribution, no positional noise reuse).
#   3. journal-less restart with the *same* --seed: the noise stream
#      replays from the top, and `certify compare` must refuse with
#      err certify-failed recovery ... failed=noise-reuse.
# CERTIFY_TRIALS scales the soak (CI runs the long leg; dune runtest
# keeps it short), or CERTIFY_TIME_BUDGET hands each certification leg
# a wall-clock slot in seconds and lets --time-budget size the trial
# count adaptively — CI uses this to fill its slot regardless of
# machine speed. alpha is pinned low so the statistical legs flake
# less than once per ~100 CI runs even though live noise is entropy-
# keyed and genuinely fresh each run.
set -eu

DPKIT="$1"
TRIALS="${CERTIFY_TRIALS:-250}"
FAULTS="${CERTIFY_FAULTS:-journal-write=2,journal-fsync=3,rng=2,conn-reset=6,write-drop=9}"
ALPHA=0.01
if [ -n "${CERTIFY_TIME_BUDGET:-}" ]; then
  SIZING="--time-budget $CERTIFY_TIME_BUDGET"
else
  SIZING="--trials $TRIALS"
fi

J="certify_soak.wal"
rm -f "$J" certify_srv*.log certify_pre.txt certify_post.txt \
  certify_reuse_a.txt certify_reuse_b.txt certify_cmp.out

fail() {
  echo "FAIL: $1"
  exit 1
}

wait_listening() { # wait_listening LOGFILE
  i=0
  while [ $i -lt 100 ]; do
    if grep -q "listening port=" "$1" 2>/dev/null; then return 0; fi
    sleep 0.1
    i=$((i + 1))
  done
  fail "server did not start listening ($1)"
}

port_of() { sed -n 's/.*listening port=\([0-9]*\).*/\1/p' "$1"; }

stop_hard() { # stop_hard PID
  kill -9 "$1" 2>/dev/null || true
  wait "$1" 2>/dev/null || true
}

# --- leg 1: certification under injected faults -----------------------
"$DPKIT" serve --tcp 0 --seed 11 --journal "$J" --faults "$FAULTS" \
  > certify_srv1.log 2>&1 &
SRV=$!
wait_listening certify_srv1.log
PORT=$(port_of certify_srv1.log)
"$DPKIT" certify "count(age>40)" --via tcp --port "$PORT" \
  $SIZING --alpha "$ALPHA" --samples-out certify_pre.txt \
  || fail "fault-armed certification failed (faults=$FAULTS)"
stop_hard "$SRV"

# --- leg 2: kill -9 + journal recovery, fresh seed --------------------
"$DPKIT" serve --tcp 0 --seed 22 --journal "$J" > certify_srv2.log 2>&1 &
SRV=$!
wait_listening certify_srv2.log
grep -q "replayed" certify_srv2.log || fail "restart did not recover the journal"
PORT=$(port_of certify_srv2.log)
"$DPKIT" certify "count(age>40)" --via tcp --port "$PORT" \
  $SIZING --alpha "$ALPHA" --samples-out certify_post.txt \
  || fail "post-recovery certification failed"
stop_hard "$SRV"
"$DPKIT" certify compare certify_pre.txt certify_post.txt --alpha "$ALPHA" \
  || fail "recovery comparison refused a clean re-keyed restart"

# --- leg 3: seeded journal-less restart = noise reuse, must be caught -
run_reuse_leg() { # run_reuse_leg OUTFILE LOGFILE
  "$DPKIT" serve --tcp 0 --seed 33 > "$2" 2>&1 &
  SRV=$!
  wait_listening "$2"
  PORT=$(port_of "$2")
  "$DPKIT" certify "count(age>40)" --via tcp --port "$PORT" \
    $SIZING --alpha "$ALPHA" --samples-out "$1" > /dev/null \
    || fail "reuse-leg certification run failed ($1)"
  stop_hard "$SRV"
}
run_reuse_leg certify_reuse_a.txt certify_srv3.log
run_reuse_leg certify_reuse_b.txt certify_srv4.log
if "$DPKIT" certify compare certify_reuse_a.txt certify_reuse_b.txt \
  > certify_cmp.out 2>&1; then
  cat certify_cmp.out
  fail "seeded-restart noise reuse was not detected"
fi
grep -q "err certify-failed recovery" certify_cmp.out \
  || fail "reuse verdict malformed: $(cat certify_cmp.out)"
grep -q "noise-reuse" certify_cmp.out \
  || fail "reuse verdict does not name noise-reuse: $(cat certify_cmp.out)"

echo "certify soak: fault-armed leg certified, kill -9 recovery within \
claimed eps, seeded noise reuse refused (sizing: $SIZING)"
