(* Tests for MI estimation, the Alquier sub-Gaussian bound, and the
   libsvm loader. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* MI estimation *)

let correlated_sample ~n ~flip g =
  let xs = Array.init n (fun _ -> Dp_rng.Prng.int g 2) in
  let ys =
    Array.map
      (fun x -> if Dp_rng.Sampler.bernoulli ~p:flip g then 1 - x else x)
      xs
  in
  (xs, ys)

let test_plugin_recovers_truth () =
  let g = Dp_rng.Prng.create 1 in
  let flip = 0.1 in
  let xs, ys = correlated_sample ~n:50_000 ~flip g in
  let est = Dp_info.Mi_estimate.plugin ~xs ~ys ~kx:2 ~ky:2 in
  let h2 p = -.(Dp_math.Numeric.xlogx p +. Dp_math.Numeric.xlogx (1. -. p)) in
  let truth = log 2. -. h2 flip in
  if Float.abs (est -. truth) > 0.01 then
    Alcotest.failf "plugin MI %g vs %g" est truth

let test_plugin_bias_and_correction () =
  (* independent variables, small sample: plug-in is biased up, the
     Miller-Madow correction pulls toward 0 *)
  let g = Dp_rng.Prng.create 2 in
  let trials = 200 and n = 60 in
  let sum_plugin = ref 0. and sum_mm = ref 0. in
  for _ = 1 to trials do
    let xs = Array.init n (fun _ -> Dp_rng.Prng.int g 4) in
    let ys = Array.init n (fun _ -> Dp_rng.Prng.int g 4) in
    sum_plugin := !sum_plugin +. Dp_info.Mi_estimate.plugin ~xs ~ys ~kx:4 ~ky:4;
    sum_mm := !sum_mm +. Dp_info.Mi_estimate.miller_madow ~xs ~ys ~kx:4 ~ky:4
  done;
  let ft = float_of_int trials in
  let mean_plugin = !sum_plugin /. ft and mean_mm = !sum_mm /. ft in
  Alcotest.(check bool)
    (Printf.sprintf "plugin biased up (%.4f)" mean_plugin)
    true (mean_plugin > 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "MM reduces bias (%.4f < %.4f)" mean_mm mean_plugin)
    true
    (mean_mm < mean_plugin /. 2.);
  (* theoretical bias ~ (k-1)^2/2n = 9/120 = 0.075; plug-in mean near it *)
  Alcotest.(check bool) "bias magnitude sane" true
    (Float.abs (mean_plugin -. 0.075) < 0.03)

let test_permutation_test () =
  let g = Dp_rng.Prng.create 3 in
  (* dependent: tiny p-value *)
  let xs, ys = correlated_sample ~n:500 ~flip:0.2 g in
  let p = Dp_info.Mi_estimate.permutation_test ~xs ~ys ~kx:2 ~ky:2 g in
  Alcotest.(check bool) (Printf.sprintf "dependent p=%.3f" p) true (p < 0.02);
  (* independent: p is ~uniform under the null, so any single draw may
     be small — check the MEAN over independent datasets is ~1/2 *)
  let mean_p =
    Dp_math.Summation.mean
      (Array.init 20 (fun _ ->
           let xs = Array.init 300 (fun _ -> Dp_rng.Prng.int g 2) in
           let ys = Array.init 300 (fun _ -> Dp_rng.Prng.int g 2) in
           Dp_info.Mi_estimate.permutation_test ~permutations:100 ~xs ~ys ~kx:2
             ~ky:2 g))
  in
  Alcotest.(check bool)
    (Printf.sprintf "independent mean p=%.3f" mean_p)
    true
    (mean_p > 0.3 && mean_p < 0.7)

(* ------------------------------------------------------------------ *)
(* Alquier bound *)

let test_alquier_formula () =
  check_close ~tol:1e-12 "value"
    (0.3 +. ((1.5 +. log 20.) /. 10.) +. (10. *. 4. /. (2. *. 100.)))
    (Dp_pac_bayes.Bounds.alquier ~lambda:10. ~n:100 ~delta:0.05
       ~sub_gaussian_std:2. ~emp_risk:0.3 ~kl:1.5);
  (* optimal lambda minimizes over a grid *)
  let best =
    Dp_pac_bayes.Bounds.best_alquier_lambda ~n:100 ~delta:0.05
      ~sub_gaussian_std:2. ~kl:1.5
  in
  let at l =
    Dp_pac_bayes.Bounds.alquier ~lambda:l ~n:100 ~delta:0.05
      ~sub_gaussian_std:2. ~emp_risk:0.3 ~kl:1.5
  in
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "best beats lambda=%g" l)
        true
        (at best <= at l +. 1e-9))
    [ 1.; 5.; 20.; 100.; 500. ]

let test_alquier_coverage_on_gaussian_loss () =
  (* unbounded loss: l_theta(z) = (z - theta)^2 / 2 with z ~ N(0,1),
     finite grid of theta, uniform prior/posterior pairs via Gibbs.
     Check the bound covers the true risk in most resamples. The
     centred loss is sub-exponential rather than sub-Gaussian, so use a
     generous sigma and expect >= 90% coverage at delta = 0.1. *)
  let g = Dp_rng.Prng.create 4 in
  let grid = Array.init 11 (fun i -> -1. +. (0.2 *. float_of_int i)) in
  let loss theta z = Dp_math.Numeric.sq (z -. theta) /. 2. in
  let true_risk theta = (1. +. (theta *. theta)) /. 2. in
  let n = 200 and delta = 0.1 in
  let trials = 200 in
  let violations = ref 0 in
  for _ = 1 to trials do
    let sample = Array.init n (fun _ -> Dp_rng.Sampler.gaussian ~mean:0. ~std:1. g) in
    let risks = Dp_pac_bayes.Risk.empirical_all ~loss sample grid in
    let t = Dp_pac_bayes.Gibbs.of_risks ~predictors:grid ~beta:20. ~risks () in
    let emp = Dp_pac_bayes.Gibbs.expected_empirical_risk t in
    let kl = Dp_pac_bayes.Gibbs.kl_from_prior t in
    let sigma = 3. in
    let lambda =
      Dp_pac_bayes.Bounds.best_alquier_lambda ~n ~delta ~sub_gaussian_std:sigma ~kl:(Float.max kl 0.1)
    in
    let bound =
      Dp_pac_bayes.Bounds.alquier ~lambda ~n ~delta ~sub_gaussian_std:sigma
        ~emp_risk:emp ~kl
    in
    let p = Dp_pac_bayes.Gibbs.probabilities t in
    let truth =
      Dp_math.Numeric.float_sum_range (Array.length p) (fun i ->
          p.(i) *. true_risk grid.(i))
    in
    if truth > bound then incr violations
  done;
  let rate = float_of_int !violations /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "coverage violation rate %.3f" rate)
    true (rate <= delta)

(* ------------------------------------------------------------------ *)
(* Confidence intervals *)

let test_laplace_quantile () =
  (* P(|Lap(b)| <= t) = 1 - e^{-t/b} => quantile(p) = -b log(1-p) *)
  check_close ~tol:1e-12 "median of |noise|" (log 2.)
    (Dp_learn.Confidence.laplace_noise_quantile ~scale:1. ~p:0.5);
  check_close "zero scale" 0.
    (Dp_learn.Confidence.laplace_noise_quantile ~scale:0. ~p:0.9);
  (* verify empirically *)
  let g = Dp_rng.Prng.create 10 in
  let t = Dp_learn.Confidence.laplace_noise_quantile ~scale:2. ~p:0.9 in
  let inside = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Float.abs (Dp_rng.Sampler.laplace ~mean:0. ~scale:2. g) <= t then
      incr inside
  done;
  let f = float_of_int !inside /. float_of_int n in
  if Float.abs (f -. 0.9) > 0.01 then Alcotest.failf "quantile check %g" f

let test_noise_aware_ci_coverage () =
  let g = Dp_rng.Prng.create 11 in
  let trials = 300 in
  let covered = ref 0 in
  for _ = 1 to trials do
    let xs = Array.init 200 (fun _ -> Dp_rng.Prng.float g) in
    let iv =
      Dp_learn.Confidence.private_mean_ci ~epsilon:0.5 ~confidence:0.9 ~lo:0.
        ~hi:1. xs g
    in
    if iv.Dp_learn.Confidence.lo <= 0.5 && 0.5 <= iv.Dp_learn.Confidence.hi then
      incr covered
  done;
  let rate = float_of_int !covered /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "coverage %.3f >= 0.9" rate) true
    (rate >= 0.9);
  (* interval is well formed *)
  let xs = Array.init 50 (fun _ -> Dp_rng.Prng.float g) in
  let iv =
    Dp_learn.Confidence.private_mean_ci ~epsilon:1. ~confidence:0.95 ~lo:0.
      ~hi:1. xs g
  in
  Alcotest.(check bool) "ordered" true
    (iv.Dp_learn.Confidence.lo <= iv.Dp_learn.Confidence.estimate
    && iv.Dp_learn.Confidence.estimate <= iv.Dp_learn.Confidence.hi)

let test_naive_ci_undercovers () =
  let g = Dp_rng.Prng.create 12 in
  let trials = 300 in
  let covered = ref 0 in
  for _ = 1 to trials do
    let xs = Array.init 100 (fun _ -> Dp_rng.Prng.float g) in
    let release = Dp_learn.Mean_estimator.laplace ~epsilon:0.1 ~lo:0. ~hi:1. xs g in
    let iv =
      Dp_learn.Confidence.naive_ci ~confidence:0.95 ~lo:0. ~hi:1. ~release
        ~n:100 xs
    in
    if iv.Dp_learn.Confidence.lo <= 0.5 && 0.5 <= iv.Dp_learn.Confidence.hi then
      incr covered
  done;
  let rate = float_of_int !covered /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "naive under-covers (%.3f < 0.8)" rate)
    true (rate < 0.8)

(* ------------------------------------------------------------------ *)
(* libsvm *)

let test_libsvm_roundtrip () =
  let path = Filename.temp_file "dp_test" ".libsvm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d =
        Dp_dataset.Dataset.create
          [| [| 0.5; 0.; -1.25 |]; [| 0.; 2.; 0. |] |]
          [| 1.; -1. |]
      in
      Dp_dataset.Csv.write_libsvm ~path d;
      let back = Dp_dataset.Csv.read_libsvm ~path () in
      Alcotest.(check int) "size" 2 (Dp_dataset.Dataset.size back);
      Alcotest.(check int) "dim" 3 (Dp_dataset.Dataset.dim back);
      for i = 0 to 1 do
        let x, y = Dp_dataset.Dataset.row d i in
        let x', y' = Dp_dataset.Dataset.row back i in
        check_close "label" y y';
        Array.iteri (fun j v -> check_close "feature" v x'.(j)) x
      done)

let test_libsvm_sparse_and_dim () =
  let path = Filename.temp_file "dp_test" ".libsvm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "+1 2:0.5\n-1 1:1.0 4:2.0\n");
      let d = Dp_dataset.Csv.read_libsvm ~path () in
      Alcotest.(check int) "inferred dim" 4 (Dp_dataset.Dataset.dim d);
      let x, y = Dp_dataset.Dataset.row d 0 in
      check_close "label" 1. y;
      check_close "sparse zero" 0. x.(0);
      check_close "sparse value" 0.5 x.(1);
      (* explicit dim larger than seen *)
      let d = Dp_dataset.Csv.read_libsvm ~dim:6 ~path () in
      Alcotest.(check int) "explicit dim" 6 (Dp_dataset.Dataset.dim d))

let test_libsvm_malformed () =
  let path = Filename.temp_file "dp_test" ".libsvm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc "+1 nonsense\n");
      try
        ignore (Dp_dataset.Csv.read_libsvm ~path ());
        Alcotest.fail "accepted malformed line"
      with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"plugin MI nonnegative and bounded" ~count:100
      (int_range 0 10_000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let n = 50 in
        let xs = Array.init n (fun _ -> Dp_rng.Prng.int g 3) in
        let ys = Array.init n (fun _ -> Dp_rng.Prng.int g 3) in
        let mi = Dp_info.Mi_estimate.plugin ~xs ~ys ~kx:3 ~ky:3 in
        mi >= 0. && mi <= log 3. +. 1e-9);
    Test.make ~name:"miller-madow <= plugin" ~count:100
      (int_range 0 10_000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let n = 80 in
        let xs = Array.init n (fun _ -> Dp_rng.Prng.int g 4) in
        let ys = Array.init n (fun _ -> Dp_rng.Prng.int g 4) in
        Dp_info.Mi_estimate.miller_madow ~xs ~ys ~kx:4 ~ky:4
        <= Dp_info.Mi_estimate.plugin ~xs ~ys ~kx:4 ~ky:4 +. 1e-12);
    Test.make ~name:"alquier bound decreasing in n" ~count:100
      (pair (float_range 0.1 50.) (float_range 0. 5.))
      (fun (lambda, kl) ->
        Dp_pac_bayes.Bounds.alquier ~lambda ~n:1000 ~delta:0.05
          ~sub_gaussian_std:1. ~emp_risk:0.5 ~kl
        <= Dp_pac_bayes.Bounds.alquier ~lambda ~n:100 ~delta:0.05
             ~sub_gaussian_std:1. ~emp_risk:0.5 ~kl
           +. 1e-12);
  ]

let () =
  Alcotest.run "dp_estimation"
    [
      ( "mi estimation",
        [
          Alcotest.test_case "plugin recovers truth" `Slow
            test_plugin_recovers_truth;
          Alcotest.test_case "bias & correction" `Quick
            test_plugin_bias_and_correction;
          Alcotest.test_case "permutation test" `Quick test_permutation_test;
        ] );
      ( "alquier bound",
        [
          Alcotest.test_case "formula & optimal lambda" `Quick
            test_alquier_formula;
          Alcotest.test_case "coverage (unbounded loss)" `Slow
            test_alquier_coverage_on_gaussian_loss;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "laplace quantile" `Quick test_laplace_quantile;
          Alcotest.test_case "noise-aware coverage" `Slow
            test_noise_aware_ci_coverage;
          Alcotest.test_case "naive under-covers" `Slow
            test_naive_ci_undercovers;
        ] );
      ( "libsvm",
        [
          Alcotest.test_case "round-trip" `Quick test_libsvm_roundtrip;
          Alcotest.test_case "sparse & dim" `Quick test_libsvm_sparse_and_dim;
          Alcotest.test_case "malformed" `Quick test_libsvm_malformed;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
