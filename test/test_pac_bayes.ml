open Dp_pac_bayes

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* A small running example: threshold classifiers on 1-D data with 0-1
   loss. Predictor theta classifies x as +1 iff x >= theta. *)
let zero_one_loss theta (x, y) =
  let pred = if x >= theta then 1. else -1. in
  if pred = y then 0. else 1.

let threshold_grid = Array.init 21 (fun i -> -2. +. (0.2 *. float_of_int i))

let make_sample ~n seed =
  let g = Dp_rng.Prng.create seed in
  Array.init n (fun _ ->
      let y = if Dp_rng.Prng.bool g then 1. else -1. in
      let x = Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g in
      (x, y))

(* ------------------------------------------------------------------ *)
(* Risk *)

let test_empirical_risk () =
  let sample = [| (1., 1.); (-1., -1.); (0.5, -1.) |] in
  (* theta = 0: predicts +1 for x>=0: correct, correct, wrong -> 1/3 *)
  check_close "emp risk" (1. /. 3.) (Risk.empirical ~loss:zero_one_loss sample 0.);
  let all = Risk.empirical_all ~loss:zero_one_loss sample [| 0.; 100. |] in
  (* theta = 100 predicts -1 always: wrong, correct, correct -> 1/3 *)
  check_close "emp all" (1. /. 3.) all.(1);
  check_close "sensitivity" 0.25 (Risk.sensitivity ~loss_lo:0. ~loss_hi:1. ~n:4);
  Alcotest.(check bool) "bounded" true
    (Risk.check_bounded ~loss:zero_one_loss ~lo:0. ~hi:1. sample threshold_grid)

let test_true_risk_mc () =
  let g = Dp_rng.Prng.create 42 in
  let sampler g =
    let y = if Dp_rng.Prng.bool g then 1. else -1. in
    (Dp_rng.Sampler.gaussian ~mean:(y *. 0.8) ~std:1. g, y)
  in
  (* Bayes-optimal threshold is 0; its true risk is P(N(0.8,1) < 0) =
     Phi(-0.8). *)
  let r = Risk.true_risk_mc ~loss:zero_one_loss ~sampler ~n:200_000 0. g in
  let expected = Dp_math.Special.std_normal_cdf (-0.8) in
  if Float.abs (r -. expected) > 0.005 then
    Alcotest.failf "true risk %g vs %g" r expected

(* ------------------------------------------------------------------ *)
(* Gibbs posterior *)

let test_gibbs_distribution () =
  let risks = [| 0.; 0.5; 1. |] in
  let t = Gibbs.of_risks ~predictors:[| "a"; "b"; "c" |] ~beta:2. ~risks () in
  let p = Gibbs.probabilities t in
  let z = 1. +. exp (-1.) +. exp (-2.) in
  check_close ~tol:1e-12 "p0" (1. /. z) p.(0);
  check_close ~tol:1e-12 "p1" (exp (-1.) /. z) p.(1);
  check_close ~tol:1e-12 "p2" (exp (-2.) /. z) p.(2);
  check_close ~tol:1e-12 "normalized" 1. (Dp_math.Summation.sum p);
  check_close ~tol:1e-12 "expected risk"
    ((0. +. (0.5 *. exp (-1.)) +. exp (-2.)) /. z)
    (Gibbs.expected_empirical_risk t)

let test_gibbs_beta_limits () =
  let risks = [| 0.2; 0.8; 0.5 |] in
  let preds = [| 0; 1; 2 |] in
  (* beta -> 0: posterior -> prior (uniform) *)
  let t = Gibbs.of_risks ~predictors:preds ~beta:1e-9 ~risks () in
  Array.iter
    (fun p -> check_close ~tol:1e-6 "uniform limit" (1. /. 3.) p)
    (Gibbs.probabilities t);
  (* beta -> inf: point mass on the ERM *)
  let t = Gibbs.of_risks ~predictors:preds ~beta:1e6 ~risks () in
  let p = Gibbs.probabilities t in
  check_close ~tol:1e-9 "erm limit" 1. p.(0);
  (* extreme beta must not overflow thanks to log-space *)
  let t = Gibbs.of_risks ~predictors:preds ~beta:1e8 ~risks () in
  check_close ~tol:1e-9 "no overflow" 1. (Dp_math.Summation.sum (Gibbs.probabilities t))

let test_gibbs_nonuniform_prior () =
  let risks = [| 0.5; 0.5 |] in
  let t =
    Gibbs.of_risks ~predictors:[| 0; 1 |]
      ~log_prior:[| log 0.9; log 0.1 |]
      ~beta:1. ~risks ()
  in
  (* equal risks: posterior = prior *)
  let p = Gibbs.probabilities t in
  check_close ~tol:1e-12 "prior preserved" 0.9 p.(0);
  check_close ~tol:1e-12 "kl zero" 0. (Gibbs.kl_from_prior t)

let test_gibbs_sampling () =
  let sample = make_sample ~n:50 7 in
  let t =
    Gibbs.fit ~predictors:threshold_grid ~beta:10.
      ~empirical_risk:(Risk.empirical ~loss:zero_one_loss sample)
      ()
  in
  let p = Gibbs.probabilities t in
  let g = Dp_rng.Prng.create 8 in
  let n = 100_000 in
  let counts = Array.make (Array.length threshold_grid) 0 in
  let draw = Gibbs.sampler t g in
  for _ = 1 to n do
    let th = draw () in
    let idx =
      int_of_float (Float.round ((th +. 2.) /. 0.2))
    in
    counts.(idx) <- counts.(idx) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      let se = 5. *. sqrt (Float.max (p.(i) /. float_of_int n) 1e-9) in
      if Float.abs (freq -. p.(i)) > se +. 1e-3 then
        Alcotest.failf "sampling freq %d: %g vs %g" i freq p.(i))
    counts

let test_gibbs_minimizes_objective_lemma_3_2 () =
  (* Lemma 3.2: the Gibbs posterior minimizes E R̂ + KL/β. Compare
     against many alternative posteriors. *)
  let sample = make_sample ~n:40 9 in
  let t =
    Gibbs.fit ~predictors:threshold_grid ~beta:5.
      ~empirical_risk:(Risk.empirical ~loss:zero_one_loss sample)
      ()
  in
  let gibbs_obj = Gibbs.pac_bayes_objective t in
  let k = Array.length threshold_grid in
  (* uniform posterior *)
  let uniform = Array.make k (1. /. float_of_int k) in
  Alcotest.(check bool) "beats uniform" true
    (gibbs_obj <= Gibbs.objective_of_posterior t uniform +. 1e-12);
  (* point masses *)
  for i = 0 to k - 1 do
    let point = Array.make k 0. in
    point.(i) <- 1.;
    Alcotest.(check bool) "beats point mass" true
      (gibbs_obj <= Gibbs.objective_of_posterior t point +. 1e-12)
  done;
  (* random posteriors *)
  let g = Dp_rng.Prng.create 10 in
  for _ = 1 to 50 do
    let rho = Dp_rng.Sampler.dirichlet ~alpha:(Array.make k 0.5) g in
    Alcotest.(check bool) "beats random" true
      (gibbs_obj <= Gibbs.objective_of_posterior t rho +. 1e-12)
  done;
  (* and the Gibbs posterior itself evaluates to its own objective *)
  check_close ~tol:1e-9 "self-consistent" gibbs_obj
    (Gibbs.objective_of_posterior t (Gibbs.probabilities t))

let test_gibbs_is_exponential_mechanism () =
  (* Theorem 4.1 structure: the Gibbs posterior IS the exponential
     mechanism with q = -R̂. Distributions must agree pointwise. *)
  let sample = make_sample ~n:30 11 in
  let n = Array.length sample in
  let t =
    Gibbs.fit ~predictors:threshold_grid ~beta:4.
      ~empirical_risk:(Risk.empirical ~loss:zero_one_loss sample)
      ()
  in
  let sens = Risk.sensitivity ~loss_lo:0. ~loss_hi:1. ~n in
  let m = Gibbs.as_exponential_mechanism t ~risk_sensitivity:sens in
  let pg = Gibbs.probabilities t in
  let pe = Dp_mechanism.Exponential.probabilities m in
  Array.iteri (fun i p -> check_close ~tol:1e-12 "pointwise equal" p pe.(i)) pg;
  (* privacy levels agree: 2 beta ΔR̂ *)
  check_close ~tol:1e-12 "privacy epsilon"
    (Gibbs.privacy_epsilon t ~risk_sensitivity:sens)
    (Dp_mechanism.Exponential.privacy_epsilon m);
  check_close ~tol:1e-12 "value" (2. *. 4. *. (1. /. float_of_int n))
    (Gibbs.privacy_epsilon t ~risk_sensitivity:sens)

let test_gibbs_privacy_theorem_4_1 () =
  (* Exact DP check of Theorem 4.1: for neighbouring samples, the
     max log-ratio between Gibbs posteriors is bounded by 2 beta ΔR̂. *)
  let sample = make_sample ~n:25 12 in
  let n = Array.length sample in
  let beta = 6. in
  let fit s =
    Gibbs.fit ~predictors:threshold_grid ~beta
      ~empirical_risk:(Risk.empirical ~loss:zero_one_loss s)
      ()
  in
  let t = fit sample in
  let lp = Gibbs.log_probabilities t in
  let bound = 2. *. beta /. float_of_int n in
  let g = Dp_rng.Prng.create 13 in
  let worst = ref 0. in
  for _ = 1 to 100 do
    (* random neighbour: replace one record *)
    let i = Dp_rng.Prng.int g n in
    let y = if Dp_rng.Prng.bool g then 1. else -1. in
    let x = Dp_rng.Sampler.gaussian ~mean:0. ~std:2. g in
    let sample' = Array.copy sample in
    sample'.(i) <- (x, y);
    let lp' = Gibbs.log_probabilities (fit sample') in
    Array.iteri
      (fun j l -> worst := Float.max !worst (Float.abs (l -. lp'.(j))))
      lp
  done;
  Alcotest.(check bool) "DP bound holds" true (!worst <= bound +. 1e-12);
  (* the bound is meaningful: some neighbour pair gets close to it *)
  Alcotest.(check bool) "bound not vacuous" true (!worst > 0.1 *. bound)

(* ------------------------------------------------------------------ *)
(* Bounds *)

let test_bound_formulas () =
  (* Catoni at kl=0, delta=1-ish reduces toward the corrected risk. *)
  let b = Bounds.catoni ~beta:10. ~n:100 ~delta:0.99 ~emp_risk:0.2 ~kl:0. in
  Alcotest.(check bool) "close to emp risk" true (b >= 0.2 && b < 0.3);
  (* Monotone in every adverse direction. *)
  let base = Bounds.catoni ~beta:10. ~n:100 ~delta:0.05 ~emp_risk:0.2 ~kl:1. in
  Alcotest.(check bool) "worse with higher risk" true
    (Bounds.catoni ~beta:10. ~n:100 ~delta:0.05 ~emp_risk:0.4 ~kl:1. >= base);
  Alcotest.(check bool) "worse with higher kl" true
    (Bounds.catoni ~beta:10. ~n:100 ~delta:0.05 ~emp_risk:0.2 ~kl:3. >= base);
  Alcotest.(check bool) "worse with smaller delta" true
    (Bounds.catoni ~beta:10. ~n:100 ~delta:0.01 ~emp_risk:0.2 ~kl:1. >= base);
  Alcotest.(check bool) "better with more data" true
    (Bounds.catoni ~beta:10. ~n:1000 ~delta:0.05 ~emp_risk:0.2 ~kl:1. <= base);
  (* clamped to [0, 1] *)
  check_close "vacuous clamped" 1.
    (Bounds.catoni ~beta:1. ~n:10 ~delta:1e-9 ~emp_risk:0.9 ~kl:50.)

let test_catoni_correction () =
  let c = Bounds.catoni_correction ~beta:1. ~n:1000 in
  Alcotest.(check bool) "close to 1" true (c > 0.999 && c <= 1.);
  (* paper's inequality: correction >= 1 - beta/(2n) *)
  let c2 = Bounds.catoni_correction ~beta:100. ~n:200 in
  Alcotest.(check bool) "paper lower bound" true (c2 >= 1. -. (100. /. 400.))

let test_linearized_dominates_catoni () =
  (* The linearized bound is looser (>= catoni) wherever both < 1. *)
  List.iter
    (fun (beta, n, risk, kl) ->
      let c = Bounds.catoni ~beta ~n ~delta:0.05 ~emp_risk:risk ~kl in
      let l = Bounds.linearized ~beta ~n ~delta:0.05 ~emp_risk:risk ~kl in
      if l < 1. then Alcotest.(check bool) "linearized looser" true (l >= c -. 1e-12))
    [ (10., 100, 0.2, 0.5); (50., 500, 0.1, 2.); (5., 1000, 0.3, 1.) ]

let test_seeger_tightest () =
  (* In the small-risk regime Seeger is tighter than McAllester. *)
  let n = 500 and delta = 0.05 and kl = 2. in
  let emp_risk = 0.05 in
  let s = Bounds.seeger ~n ~delta ~emp_risk ~kl in
  let m = Bounds.mcallester ~n ~delta ~emp_risk ~kl in
  Alcotest.(check bool) "seeger <= mcallester" true (s <= m +. 1e-12);
  Alcotest.(check bool) "seeger above emp risk" true (s >= emp_risk)

let test_bound_validity_coverage () =
  (* Thm 3.1 validity: over many resampled training sets, the Catoni
     bound on the Gibbs posterior holds for the true risk with
     frequency >= 1 - delta. True risk computed on the grid exactly via
     a huge i.i.d. test pool approximation. *)
  let delta = 0.1 and beta = 20. and n = 60 in
  let g = Dp_rng.Prng.create 77 in
  (* approximate the true risk of each threshold with a large pool *)
  let pool = make_sample ~n:100_000 999 in
  let true_risks =
    Array.map (fun th -> Risk.empirical ~loss:zero_one_loss pool th) threshold_grid
  in
  let trials = 300 in
  let violations = ref 0 in
  for _ = 1 to trials do
    let seed = Dp_rng.Prng.int g 1_000_000 in
    let sample = make_sample ~n seed in
    let t =
      Gibbs.fit ~predictors:threshold_grid ~beta
        ~empirical_risk:(Risk.empirical ~loss:zero_one_loss sample)
        ()
    in
    let bound =
      Bounds.catoni ~beta ~n ~delta
        ~emp_risk:(Gibbs.expected_empirical_risk t)
        ~kl:(Gibbs.kl_from_prior t)
    in
    let p = Gibbs.probabilities t in
    let true_gibbs_risk =
      Dp_math.Numeric.float_sum_range (Array.length p) (fun i ->
          p.(i) *. true_risks.(i))
    in
    if true_gibbs_risk > bound then incr violations
  done;
  let rate = float_of_int !violations /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "violation rate %.3f <= delta" rate)
    true (rate <= delta)

(* ------------------------------------------------------------------ *)
(* Bound optimizer (independent Lemma 3.2 check) *)

let test_bound_opt_recovers_gibbs () =
  let sample = make_sample ~n:35 21 in
  let risks =
    Risk.empirical_all ~loss:zero_one_loss sample threshold_grid
  in
  let k = Array.length threshold_grid in
  let prior = Array.make k (1. /. float_of_int k) in
  let beta = 8. in
  let r = Bound_opt.minimize ~risks ~prior ~beta () in
  let t = Gibbs.of_risks ~predictors:threshold_grid ~beta ~risks () in
  let gibbs_p = Gibbs.probabilities t in
  (* objectives agree to high precision *)
  check_close ~tol:1e-6 "objective matches Gibbs"
    (Gibbs.pac_bayes_objective t) r.Bound_opt.objective;
  (* posteriors agree in TV *)
  let tv =
    0.5
    *. Dp_math.Numeric.float_sum_range k (fun i ->
           Float.abs (r.Bound_opt.posterior.(i) -. gibbs_p.(i)))
  in
  Alcotest.(check bool) (Printf.sprintf "TV %.2e small" tv) true (tv < 1e-4);
  (* trace is monotone decreasing *)
  let rec mono = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (b <= a +. 1e-12);
        mono rest
    | _ -> ()
  in
  mono r.Bound_opt.trace

let test_bound_opt_nonuniform_prior () =
  let risks = [| 0.1; 0.9; 0.4 |] in
  let prior = [| 0.1; 0.8; 0.1 |] in
  let beta = 2. in
  let r = Bound_opt.minimize ~risks ~prior ~beta () in
  let t =
    Gibbs.of_risks ~predictors:[| 0; 1; 2 |]
      ~log_prior:(Array.map log prior) ~beta ~risks ()
  in
  Array.iteri
    (fun i p ->
      check_close ~tol:1e-4 (Printf.sprintf "coord %d" i) p
        r.Bound_opt.posterior.(i))
    (Gibbs.probabilities t)

(* ------------------------------------------------------------------ *)
(* MCMC *)

let test_mcmc_gaussian_target () =
  (* Target: standard normal (beta R̂ = x^2/2 absorbed in log density).
     Posterior mean ~ 0, std ~ 1. *)
  let g = Dp_rng.Prng.create 31 in
  let log_density th = -0.5 *. th.(0) *. th.(0) in
  let r =
    Mcmc.run
      ~config:{ Mcmc.step_std = 1.0; burn_in = 2000; thin = 5 }
      ~log_density ~init:[| 3. |] ~n_samples:20_000 g
  in
  Alcotest.(check bool) "acceptance reasonable" true
    (r.Mcmc.acceptance_rate > 0.2 && r.Mcmc.acceptance_rate < 0.9);
  let mean = (Mcmc.posterior_mean r).(0) in
  if Float.abs mean > 0.05 then Alcotest.failf "mcmc mean %g" mean;
  let xs = Array.map (fun s -> s.(0)) r.Mcmc.samples in
  let v = Dp_stats.Describe.variance xs in
  if Float.abs (v -. 1.) > 0.1 then Alcotest.failf "mcmc var %g" v

let test_mcmc_matches_grid_gibbs () =
  (* Ablation A3 core check: the MCMC Gibbs sampler matches the exact
     grid posterior in TV after enough steps. *)
  let sample = make_sample ~n:30 41 in
  let beta = 5. in
  let emp th = Risk.empirical ~loss:zero_one_loss sample th in
  (* exact: grid Gibbs restricted to the same grid prior *)
  let t =
    Gibbs.fit ~predictors:threshold_grid ~beta
      ~empirical_risk:emp ()
  in
  let grid = Array.map (fun th -> [| th |]) threshold_grid in
  (* continuous MCMC over theta in [-2, 2] with uniform prior *)
  let log_density th =
    if th.(0) < -2. || th.(0) > 2. then neg_infinity
    else -.beta *. emp th.(0)
  in
  let g = Dp_rng.Prng.create 43 in
  let r =
    Mcmc.run
      ~config:{ Mcmc.step_std = 0.5; burn_in = 5000; thin = 10 }
      ~log_density ~init:[| 0. |] ~n_samples:30_000 g
  in
  (* The grid posterior uses a uniform prior over 21 points; nearest-
     neighbour binning of the continuous chain approximates the same
     distribution because the risk is piecewise constant between data
     points and the grid is fine. Allow a modest TV tolerance. *)
  let tv =
    Mcmc.tv_distance_to_grid r ~grid ~grid_probs:(Gibbs.probabilities t)
  in
  Alcotest.(check bool) (Printf.sprintf "TV %.3f below 0.08" tv) true (tv < 0.08)

let test_mcmc_gibbs_log_density () =
  let ld = Mcmc.gibbs_log_density ~beta:2. ~empirical_risk:(fun th -> th.(0) *. th.(0)) () in
  (* -beta*r + log prior; at 0 the risk term vanishes *)
  let at0 = ld [| 0. |] in
  let at1 = ld [| 1. |] in
  (* difference: -2*1 + (logphi(1)-logphi(0)) = -2 - 0.5 *)
  check_close ~tol:1e-12 "density ratio" (-2.5) (at1 -. at0)

(* ------------------------------------------------------------------ *)
(* Gibbs channel (E6/E12 machinery) *)

let test_gibbs_channel_exact () =
  (* Universe {0,1}, n=3, predictors classify the majority bit.
     Loss: predictor j in {0,1} suffers loss 1 on record z if z != j. *)
  let loss j z = if j = z then 0. else 1. in
  let beta = 2. in
  let gc =
    Gibbs_channel.build ~universe_probs:[| 0.5; 0.5 |] ~n:3
      ~predictors:[| 0; 1 |] ~beta ~loss ()
  in
  Alcotest.(check int) "8 samples" 8 (Array.length gc.Gibbs_channel.samples);
  (* input distribution is uniform over the 8 tuples *)
  Array.iter
    (fun p -> check_close ~tol:1e-12 "uniform input" 0.125 p)
    gc.Gibbs_channel.input;
  (* Theorem 4.1: exact channel epsilon below 2 beta ΔR̂ = 2*2*(1/3). *)
  let eps_hat = Gibbs_channel.dp_epsilon gc in
  let eps_bound = Gibbs_channel.theoretical_epsilon gc ~loss_lo:0. ~loss_hi:1. in
  check_close ~tol:1e-12 "bound value" (4. /. 3.) eps_bound;
  Alcotest.(check bool) "exact <= bound" true (eps_hat <= eps_bound +. 1e-12);
  Alcotest.(check bool) "not degenerate" true (eps_hat > 0.);
  (* Lemma 3.2 row by row: the Gibbs channel minimizes the
     prior-explicit objective E R̂ + E_Z KL(rows‖prior)/beta among all
     channels. *)
  let obj = Gibbs_channel.pac_objective gc in
  let g = Dp_rng.Prng.create 51 in
  for _ = 1 to 100 do
    let alt =
      Dp_info.Channel.perturb gc.Gibbs_channel.channel ~magnitude:0.4 g
    in
    Alcotest.(check bool) "gibbs minimizes KL objective" true
      (obj <= Gibbs_channel.pac_objective_of_channel gc alt +. 1e-12)
  done;
  (* Catoni's identity: the KL objective upper-bounds the MI objective,
     with the gap KL(marginal‖prior)/beta. *)
  let mi_obj = Gibbs_channel.objective gc in
  Alcotest.(check bool) "KL objective >= MI objective" true
    (obj >= mi_obj -. 1e-12);
  (* Theorem 4.2 under the optimal prior: the alternating solver's
     optimum beats perturbations of its own channel on the MI
     objective. *)
  let rr =
    Dp_info.Rate_risk.solve ~input:gc.Gibbs_channel.input
      ~risk:gc.Gibbs_channel.risk ~beta ()
  in
  for _ = 1 to 100 do
    let alt =
      Dp_info.Channel.perturb rr.Dp_info.Rate_risk.channel ~magnitude:0.4 g
    in
    Alcotest.(check bool) "optimal-prior channel minimizes MI objective" true
      (rr.Dp_info.Rate_risk.objective
      <= Gibbs_channel.objective_of_channel gc alt +. 1e-12)
  done

let test_gibbs_channel_vs_rate_risk () =
  (* The rate-risk solver run on the same risk matrix must find the
     same optimum value as the Gibbs channel built with the OPTIMAL
     prior; with a uniform prior the Gibbs channel objective is >= the
     solver's optimum. *)
  let loss j z = if j = z then 0. else 1. in
  let beta = 3. in
  let gc =
    Gibbs_channel.build ~universe_probs:[| 0.7; 0.3 |] ~n:2
      ~predictors:[| 0; 1 |] ~beta ~loss ()
  in
  let r =
    Dp_info.Rate_risk.solve ~input:gc.Gibbs_channel.input
      ~risk:gc.Gibbs_channel.risk ~beta ()
  in
  Alcotest.(check bool) "solver optimum <= uniform-prior Gibbs" true
    (r.Dp_info.Rate_risk.objective <= Gibbs_channel.objective gc +. 1e-9);
  (* MI at the solver optimum is still bounded by the channel epsilon
     (Alvim-style sanity: I <= diam * eps; here diam = n). *)
  let eps_hat =
    Dp_info.Channel.dp_epsilon r.Dp_info.Rate_risk.channel
      ~neighbors:(Gibbs_channel.neighbor_indices gc)
  in
  let mi = Dp_info.Channel.mutual_information r.Dp_info.Rate_risk.channel in
  Alcotest.(check bool) "I <= n * eps" true
    (mi <= (2. *. eps_hat) +. 1e-9)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Gibbs posterior normalizes" ~count:200
      (pair
         (array_of_size (Gen.int_range 1 30) (float_range 0. 1.))
         (float_range 0.01 50.))
      (fun (risks, beta) ->
        let t =
          Gibbs.of_risks ~predictors:(Array.init (Array.length risks) Fun.id)
            ~beta ~risks ()
        in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-9 1.
          (Dp_math.Summation.sum (Gibbs.probabilities t)));
    Test.make ~name:"Gibbs expected risk <= prior expected risk" ~count:200
      (array_of_size (Gen.int_range 1 20) (float_range 0. 1.))
      (fun risks ->
        (* reweighting toward low risk can only reduce expected risk *)
        let t =
          Gibbs.of_risks ~predictors:(Array.init (Array.length risks) Fun.id)
            ~beta:3. ~risks ()
        in
        let prior_risk = Dp_stats.Describe.mean risks in
        Gibbs.expected_empirical_risk t <= prior_risk +. 1e-9);
    Test.make ~name:"objective_of_posterior >= pac_bayes_objective"
      ~count:200
      (pair
         (array_of_size (Gen.int_range 2 15) (float_range 0. 1.))
         (int_range 0 10_000))
      (fun (risks, seed) ->
        let k = Array.length risks in
        let t =
          Gibbs.of_risks ~predictors:(Array.init k Fun.id) ~beta:5. ~risks ()
        in
        let g = Dp_rng.Prng.create seed in
        let rho = Dp_rng.Sampler.dirichlet ~alpha:(Array.make k 1.) g in
        Gibbs.objective_of_posterior t rho
        >= Gibbs.pac_bayes_objective t -. 1e-9);
    Test.make ~name:"catoni bound within [0,1] and above nothing vacuous"
      ~count:300
      (quad (float_range 0.1 100.) (int_range 10 5000) (float_range 0.001 0.5)
         (pair (float_range 0. 1.) (float_range 0. 10.)))
      (fun (beta, n, delta, (risk, kl)) ->
        let b = Bounds.catoni ~beta ~n ~delta ~emp_risk:risk ~kl in
        b >= 0. && b <= 1.);
    Test.make ~name:"seeger >= emp risk and <= 1" ~count:300
      (triple (int_range 10 5000) (float_range 0. 1.) (float_range 0. 5.))
      (fun (n, risk, kl) ->
        let b = Bounds.seeger ~n ~delta:0.05 ~emp_risk:risk ~kl in
        b >= risk -. 1e-9 && b <= 1.);
    Test.make ~name:"privacy epsilon linear in beta" ~count:100
      (pair (float_range 0.1 10.) (float_range 0.001 1.))
      (fun (beta, sens) ->
        let t =
          Gibbs.of_risks ~predictors:[| 0; 1 |] ~beta ~risks:[| 0.1; 0.9 |] ()
        in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-12
          (2. *. beta *. sens)
          (Gibbs.privacy_epsilon t ~risk_sensitivity:sens));
  ]

let () =
  Alcotest.run "dp_pac_bayes"
    [
      ( "risk",
        [
          Alcotest.test_case "empirical" `Quick test_empirical_risk;
          Alcotest.test_case "true risk MC" `Slow test_true_risk_mc;
        ] );
      ( "gibbs",
        [
          Alcotest.test_case "exact distribution" `Quick
            test_gibbs_distribution;
          Alcotest.test_case "beta limits" `Quick test_gibbs_beta_limits;
          Alcotest.test_case "non-uniform prior" `Quick
            test_gibbs_nonuniform_prior;
          Alcotest.test_case "sampling" `Slow test_gibbs_sampling;
          Alcotest.test_case "minimizes objective (Lemma 3.2)" `Quick
            test_gibbs_minimizes_objective_lemma_3_2;
          Alcotest.test_case "= exponential mechanism (Thm 4.1)" `Quick
            test_gibbs_is_exponential_mechanism;
          Alcotest.test_case "DP guarantee (Thm 4.1)" `Quick
            test_gibbs_privacy_theorem_4_1;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "formulas & monotonicity" `Quick
            test_bound_formulas;
          Alcotest.test_case "catoni correction" `Quick test_catoni_correction;
          Alcotest.test_case "linearized looser" `Quick
            test_linearized_dominates_catoni;
          Alcotest.test_case "seeger tightest" `Quick test_seeger_tightest;
          Alcotest.test_case "coverage (Thm 3.1)" `Slow
            test_bound_validity_coverage;
        ] );
      ( "bound optimizer",
        [
          Alcotest.test_case "recovers Gibbs (Lemma 3.2)" `Quick
            test_bound_opt_recovers_gibbs;
          Alcotest.test_case "non-uniform prior" `Quick
            test_bound_opt_nonuniform_prior;
        ] );
      ( "mcmc",
        [
          Alcotest.test_case "gaussian target" `Slow test_mcmc_gaussian_target;
          Alcotest.test_case "matches grid Gibbs (A3)" `Slow
            test_mcmc_matches_grid_gibbs;
          Alcotest.test_case "gibbs log density" `Quick
            test_mcmc_gibbs_log_density;
        ] );
      ( "gibbs channel (Fig 1)",
        [
          Alcotest.test_case "exact channel (Thm 4.1/4.2)" `Quick
            test_gibbs_channel_exact;
          Alcotest.test_case "agrees with rate-risk" `Quick
            test_gibbs_channel_vs_rate_risk;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
