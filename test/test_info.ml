open Dp_info

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Entropy and divergences *)

let test_entropy () =
  check_close "uniform 2" (log 2.) (Entropy.entropy [| 0.5; 0.5 |]);
  check_close "uniform 4 bits" 2. (Entropy.entropy_base2 [| 0.25; 0.25; 0.25; 0.25 |]);
  check_close "point mass" 0. (Entropy.entropy [| 1.; 0.; 0. |]);
  let p = [| 0.3; 0.7 |] in
  check_close "cross entropy self = entropy" (Entropy.entropy p)
    (Entropy.cross_entropy p p);
  try
    ignore (Entropy.entropy [| 0.5; 0.6 |]);
    Alcotest.fail "accepted non-distribution"
  with Invalid_argument _ -> ()

let test_kl () =
  let p = [| 0.3; 0.7 |] and q = [| 0.5; 0.5 |] in
  check_close ~tol:1e-12 "kl value"
    ((0.3 *. log (0.3 /. 0.5)) +. (0.7 *. log (0.7 /. 0.5)))
    (Entropy.kl_divergence p q);
  check_close "kl self" 0. (Entropy.kl_divergence p p);
  Alcotest.(check (float 0.))
    "absolute continuity" infinity
    (Entropy.kl_divergence [| 0.5; 0.5 |] [| 1.; 0. |]);
  (* log-domain agrees *)
  let lp = Array.map log p and lq = Array.map log q in
  check_close ~tol:1e-12 "log-domain kl" (Entropy.kl_divergence p q)
    (Entropy.kl_divergence_log lp lq);
  (* chain with cross entropy: KL = CE - H *)
  check_close ~tol:1e-12 "kl = ce - h"
    (Entropy.cross_entropy p q -. Entropy.entropy p)
    (Entropy.kl_divergence p q)

let test_tv_js () =
  let p = [| 1.; 0. |] and q = [| 0.; 1. |] in
  check_close "tv max" 1. (Entropy.total_variation p q);
  check_close "tv self" 0. (Entropy.total_variation p p);
  check_close "js disjoint" (log 2.) (Entropy.jensen_shannon p q);
  check_close "js self" 0. (Entropy.jensen_shannon p p)

let test_max_divergence () =
  let p = [| 0.6; 0.4 |] and q = [| 0.3; 0.7 |] in
  check_close ~tol:1e-12 "max div" (log 2.) (Entropy.max_divergence p q);
  check_close "self" 0. (Entropy.max_divergence p p);
  Alcotest.(check (float 0.))
    "unbounded" infinity
    (Entropy.max_divergence [| 0.5; 0.5 |] [| 1.; 0. |]);
  (* KL <= max divergence always *)
  Alcotest.(check bool) "kl below max div" true
    (Entropy.kl_divergence p q <= Entropy.max_divergence p q +. 1e-12)

let test_renyi () =
  let p = [| 0.6; 0.4 |] and q = [| 0.3; 0.7 |] in
  (* Renyi is nondecreasing in alpha and sandwiched between KL and max-div. *)
  let r2 = Entropy.renyi_divergence ~alpha:2. p q in
  let r10 = Entropy.renyi_divergence ~alpha:10. p q in
  let kl = Entropy.kl_divergence p q in
  let md = Entropy.max_divergence p q in
  Alcotest.(check bool) "ordering" true (kl <= r2 +. 1e-12 && r2 <= r10 +. 1e-12 && r10 <= md +. 1e-12);
  (* alpha near 1 approaches KL *)
  let r1 = Entropy.renyi_divergence ~alpha:1.0001 p q in
  check_close ~tol:1e-3 "limit to KL" kl r1

let test_mutual_information () =
  (* Independent: I = 0 *)
  let joint = [| [| 0.25; 0.25 |]; [| 0.25; 0.25 |] |] in
  check_close "independent" 0. (Entropy.mutual_information ~joint);
  (* Perfectly correlated: I = log 2 *)
  let joint = [| [| 0.5; 0. |]; [| 0.; 0.5 |] |] in
  check_close "identity channel" (log 2.) (Entropy.mutual_information ~joint);
  (* From channel: binary symmetric channel with crossover 0.1, uniform
     input: I = log2 - H(0.1) in nats *)
  let h2 p = -.(Dp_math.Numeric.xlogx p +. Dp_math.Numeric.xlogx (1. -. p)) in
  let bsc = [| [| 0.9; 0.1 |]; [| 0.1; 0.9 |] |] in
  check_close ~tol:1e-12 "bsc"
    (log 2. -. h2 0.1)
    (Entropy.mutual_information_channel ~input:[| 0.5; 0.5 |] ~channel:bsc)

(* ------------------------------------------------------------------ *)
(* Channel *)

let bsc eps =
  (* a randomized-response channel: epsilon-DP binary channel *)
  let p = exp eps /. (1. +. exp eps) in
  Channel.create ~input:[| 0.5; 0.5 |]
    ~matrix:[| [| p; 1. -. p |]; [| 1. -. p; p |] |]

let test_channel_basics () =
  let ch = bsc 1. in
  Alcotest.(check int) "inputs" 2 (Channel.n_inputs ch);
  Alcotest.(check int) "outputs" 2 (Channel.n_outputs ch);
  let m = Channel.output_marginal ch in
  check_close "marginal uniform" 0.5 m.(0);
  let j = Channel.joint ch in
  check_close ~tol:1e-12 "joint entry" (0.5 *. exp 1. /. (1. +. exp 1.)) j.(0).(0);
  (* row must be a copy *)
  let r = Channel.row ch 0 in
  r.(0) <- 99.;
  check_close "row is a copy" 99. r.(0);
  let r2 = Channel.row ch 0 in
  Alcotest.(check bool) "internal state unchanged" true (r2.(0) < 1.)

let test_channel_dp_epsilon () =
  let eps = 0.8 in
  let ch = bsc eps in
  let neighbors i = [| 1 - i |] in
  check_close ~tol:1e-12 "exact dp epsilon" eps (Channel.dp_epsilon ch ~neighbors)

let test_kl_decomposition () =
  (* Catoni's identity (claim C6): E_Z KL(row‖prior) = I + KL(marginal‖prior),
     for ANY prior. *)
  let ch =
    Channel.create ~input:[| 0.2; 0.5; 0.3 |]
      ~matrix:
        [| [| 0.7; 0.2; 0.1 |]; [| 0.1; 0.6; 0.3 |]; [| 0.3; 0.3; 0.4 |] |]
  in
  let check_prior prior =
    let lhs = Channel.expected_kl_to ch ~prior in
    let mi, kl_m = Channel.kl_decomposition ch ~prior in
    check_close ~tol:1e-12 "decomposition" lhs (mi +. kl_m)
  in
  check_prior [| 1. /. 3.; 1. /. 3.; 1. /. 3. |];
  check_prior [| 0.6; 0.3; 0.1 |];
  (* With the optimal prior (the marginal) the KL term vanishes and
     E KL = I exactly — the paper's pi_OPT = E_Z posterior. *)
  let marginal = Channel.output_marginal ch in
  let mi, kl_m = Channel.kl_decomposition ch ~prior:marginal in
  check_close ~tol:1e-12 "optimal prior kills the extra term" 0. kl_m;
  check_close ~tol:1e-12 "E KL = I at optimum" (Channel.mutual_information ch)
    (Channel.expected_kl_to ch ~prior:marginal);
  ignore mi

let test_channel_objective_and_perturb () =
  let ch = bsc 1.5 in
  let risk i j = if i = j then 0. else 1. in
  let base = Channel.objective ch ~risk ~beta:2. in
  Alcotest.(check bool) "objective positive" true (base > 0.);
  let g = Dp_rng.Prng.create 17 in
  let p = Channel.perturb ch ~magnitude:0.3 g in
  (* perturbed channel still valid: rows sum to 1 *)
  for i = 0 to 1 do
    check_close ~tol:1e-9 "row sums" 1. (Dp_math.Summation.sum (Channel.row p i))
  done

(* ------------------------------------------------------------------ *)
(* Blahut–Arimoto *)

let test_ba_bsc_capacity () =
  (* BSC capacity: log 2 - H(p) nats. *)
  let h2 p = -.(Dp_math.Numeric.xlogx p +. Dp_math.Numeric.xlogx (1. -. p)) in
  let p = 0.11 in
  let r =
    Blahut_arimoto.capacity
      ~channel:[| [| 1. -. p; p |]; [| p; 1. -. p |] |]
      ()
  in
  check_close ~tol:1e-7 "bsc capacity" (log 2. -. h2 p) r.Blahut_arimoto.capacity;
  (* capacity-achieving input for symmetric channel is uniform *)
  check_close ~tol:1e-4 "uniform input" 0.5 r.Blahut_arimoto.input.(0)

let test_ba_erasure_capacity () =
  (* Binary erasure channel capacity: (1 - e) log 2. *)
  let e = 0.3 in
  let channel = [| [| 1. -. e; 0.; e |]; [| 0.; 1. -. e; e |] |] in
  let r = Blahut_arimoto.capacity ~channel () in
  check_close ~tol:1e-7 "bec capacity" ((1. -. e) *. log 2.) r.Blahut_arimoto.capacity

let test_ba_useless_channel () =
  (* Identical rows carry zero information. *)
  let channel = [| [| 0.4; 0.6 |]; [| 0.4; 0.6 |] |] in
  let r = Blahut_arimoto.capacity ~channel () in
  check_close ~tol:1e-9 "zero capacity" 0. r.Blahut_arimoto.capacity

(* ------------------------------------------------------------------ *)
(* Rate–risk (Theorem 4.2 solver) *)

let test_rate_risk_fixed_point () =
  (* Small exact problem: 3 samples, 4 predictors, random-ish risks. *)
  let input = [| 0.5; 0.3; 0.2 |] in
  let risk =
    [| [| 0.1; 0.5; 0.9; 0.3 |]; [| 0.8; 0.2; 0.4; 0.6 |]; [| 0.5; 0.5; 0.1; 0.7 |] |]
  in
  let beta = 3. in
  let r = Rate_risk.solve ~input ~risk ~beta () in
  (* 1. Fixed point: rows are Gibbs posteriors under the final prior. *)
  let rows = Rate_risk.gibbs_rows ~prior:r.Rate_risk.prior ~risk ~beta in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j p ->
          check_close ~tol:1e-6
            (Printf.sprintf "row %d col %d" i j)
            p
            (Dp_info.Channel.row r.Rate_risk.channel i).(j))
        row)
    rows;
  (* 2. The prior equals the output marginal (Catoni's optimality). *)
  let marginal = Channel.output_marginal r.Rate_risk.channel in
  Array.iteri
    (fun j m -> check_close ~tol:1e-6 "prior = marginal" m r.Rate_risk.prior.(j))
    marginal;
  (* 3. Objective decreases along the trace (monotone convergence). *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (b <= a +. 1e-10);
        monotone rest
    | _ -> ()
  in
  monotone r.Rate_risk.trace;
  (* 4. The solution beats arbitrary alternative channels. *)
  let g = Dp_rng.Prng.create 23 in
  let obj ch = Channel.objective ch ~risk:(fun z th -> risk.(z).(th)) ~beta in
  for _ = 1 to 20 do
    let alt = Channel.perturb r.Rate_risk.channel ~magnitude:0.5 g in
    Alcotest.(check bool) "global minimum" true
      (r.Rate_risk.objective <= obj alt +. 1e-9)
  done

let test_rate_risk_beta_monotonicity () =
  (* Larger beta tolerates more information: I increases, E risk
     decreases. This is the paper's privacy/utility tilt. *)
  let input = [| 0.25; 0.25; 0.25; 0.25 |] in
  let risk =
    [| [| 0.; 1. |]; [| 1.; 0. |]; [| 0.2; 0.8 |]; [| 0.8; 0.2 |] |]
  in
  let solve beta = Rate_risk.solve ~input ~risk ~beta () in
  let low = solve 0.5 and high = solve 8. in
  let mi r = Channel.mutual_information r.Rate_risk.channel in
  let er r =
    Channel.expected_risk r.Rate_risk.channel ~risk:(fun z th -> risk.(z).(th))
  in
  Alcotest.(check bool) "MI grows with beta" true (mi high >= mi low -. 1e-9);
  Alcotest.(check bool) "risk falls with beta" true (er high <= er low +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Leakage *)

let test_leakage_bounds () =
  (* Randomized response channel: exact MI must respect the DP bound. *)
  let eps = 1.2 in
  let p = exp eps /. (1. +. exp eps) in
  let channel = [| [| p; 1. -. p |]; [| 1. -. p; p |] |] in
  let input = [| 0.5; 0.5 |] in
  let mi = Entropy.mutual_information_channel ~input ~channel in
  let bound = Leakage.mi_upper_bound_pure_dp ~epsilon:eps ~diameter:1 in
  Alcotest.(check bool) "MI below DP bound" true (mi <= bound +. 1e-12);
  (* min-entropy leakage and the Alvim bound (n=1 record, v=2) *)
  let leak = Leakage.min_entropy_leakage ~input ~channel in
  let alvim = Leakage.min_entropy_leakage_bound_alvim ~epsilon:eps ~n:1 ~universe:2 in
  Alcotest.(check bool) "leakage below Alvim" true (leak <= alvim +. 1e-12);
  (* for the binary uniform case the Alvim bound is tight: v e^eps/(v-1+e^eps) = 2p *)
  check_close ~tol:1e-12 "alvim tight for RR" (log (2. *. p)) alvim;
  check_close ~tol:1e-12 "leakage equals bound here" alvim leak

let test_leakage_degenerate () =
  (* A useless channel leaks nothing. *)
  let channel = [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |] in
  check_close "no leakage" 0.
    (Leakage.min_entropy_leakage ~input:[| 0.5; 0.5 |] ~channel);
  (* identity channel leaks everything: H_inf(X) = log 2 *)
  let channel = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  check_close "full leakage" (log 2.)
    (Leakage.min_entropy_leakage ~input:[| 0.5; 0.5 |] ~channel)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  let dist_gen k =
    let open Gen in
    array_size (return k) (float_range 0.01 1. |> fun g -> map Float.abs g)
    |> map (fun a ->
           let s = Dp_math.Summation.sum a in
           Array.map (fun x -> x /. s) a)
  in
  let dist k = make (dist_gen k) in
  [
    Test.make ~name:"KL nonnegative (Gibbs ineq)" ~count:300
      (pair (dist 5) (dist 5))
      (fun (p, q) -> Entropy.kl_divergence p q >= 0.);
    Test.make ~name:"entropy bounded by log k" ~count:300 (dist 6)
      (fun p -> Entropy.entropy p <= log 6. +. 1e-9);
    Test.make ~name:"TV bounded by 1 and symmetric" ~count:300
      (pair (dist 4) (dist 4))
      (fun (p, q) ->
        let d = Entropy.total_variation p q in
        d >= 0. && d <= 1.
        && Dp_math.Numeric.approx_equal ~abs_tol:1e-12 d
             (Entropy.total_variation q p));
    Test.make ~name:"Pinsker: TV^2 <= KL/2" ~count:300
      (pair (dist 4) (dist 4))
      (fun (p, q) ->
        let tv = Entropy.total_variation p q in
        2. *. tv *. tv <= Entropy.kl_divergence p q +. 1e-9);
    Test.make ~name:"I(X;Y) <= min(H(X), H(Y))" ~count:200
      (pair (dist 3) (pair (dist 4) (pair (dist 4) (dist 4))))
      (fun (input, (r0, (r1, r2))) ->
        let channel = [| r0; r1; r2 |] in
        let mi = Entropy.mutual_information_channel ~input ~channel in
        let hx = Entropy.entropy input in
        let py =
          Array.init 4 (fun j ->
              Dp_math.Numeric.float_sum_range 3 (fun i ->
                  input.(i) *. channel.(i).(j)))
        in
        let hy = Entropy.entropy py in
        mi >= -1e-9 && mi <= Float.min hx hy +. 1e-9);
    Test.make ~name:"channel MI below capacity" ~count:100
      (pair (dist 3) (pair (dist 4) (pair (dist 4) (dist 4))))
      (fun (input, (r0, (r1, r2))) ->
        let channel = [| r0; r1; r2 |] in
        let mi = Entropy.mutual_information_channel ~input ~channel in
        let cap = (Blahut_arimoto.capacity ~channel ()).Blahut_arimoto.capacity in
        mi <= cap +. 1e-6);
    Test.make ~name:"KL decomposition identity for random channels"
      ~count:100
      (pair (dist 3) (pair (pair (dist 4) (dist 4)) (pair (dist 4) (dist 4))))
      (fun (input, ((r0, r1), (r2, prior))) ->
        let ch = Channel.create ~input ~matrix:[| r0; r1; r2 |] in
        let lhs = Channel.expected_kl_to ch ~prior in
        let mi, klm = Channel.kl_decomposition ch ~prior in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-8 ~abs_tol:1e-10 lhs (mi +. klm));
  ]

let () =
  Alcotest.run "dp_info"
    [
      ( "entropy",
        [
          Alcotest.test_case "entropy" `Quick test_entropy;
          Alcotest.test_case "kl" `Quick test_kl;
          Alcotest.test_case "tv & js" `Quick test_tv_js;
          Alcotest.test_case "max divergence" `Quick test_max_divergence;
          Alcotest.test_case "renyi" `Quick test_renyi;
          Alcotest.test_case "mutual information" `Quick
            test_mutual_information;
        ] );
      ( "channel",
        [
          Alcotest.test_case "basics" `Quick test_channel_basics;
          Alcotest.test_case "dp epsilon" `Quick test_channel_dp_epsilon;
          Alcotest.test_case "KL decomposition (C6)" `Quick
            test_kl_decomposition;
          Alcotest.test_case "objective & perturb" `Quick
            test_channel_objective_and_perturb;
        ] );
      ( "blahut-arimoto",
        [
          Alcotest.test_case "BSC capacity" `Quick test_ba_bsc_capacity;
          Alcotest.test_case "BEC capacity" `Quick test_ba_erasure_capacity;
          Alcotest.test_case "useless channel" `Quick test_ba_useless_channel;
        ] );
      ( "rate-risk (Thm 4.2)",
        [
          Alcotest.test_case "fixed point & optimality" `Quick
            test_rate_risk_fixed_point;
          Alcotest.test_case "beta monotonicity" `Quick
            test_rate_risk_beta_monotonicity;
        ] );
      ( "leakage (C8)",
        [
          Alcotest.test_case "DP bounds" `Quick test_leakage_bounds;
          Alcotest.test_case "degenerate channels" `Quick
            test_leakage_degenerate;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
