(* The exemption-file grammar: hand-written cases for each rule-spec
   shape, and a qcheck property pinning that [Config.parse] and
   [Config.to_string] round-trip exactly — lint.exempt and
   flow.baseline workflows edit these files programmatically, so the
   grammar must not drift. *)

module Config = Dp_lint.Config

let parse_ok s =
  match Config.parse s with
  | Ok t -> t
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

(* --- unit cases ---------------------------------------------------- *)

let test_spec_shapes () =
  let t =
    parse_ok
      "# comment\n\
       * lint_corpus/\n\
       R7 bad_r7.ml\n\
       F1-F3 flow_corpus/\n\
       R2-R8 lib/engine/\n"
  in
  Alcotest.(check int) "entries" 4 (List.length t);
  Alcotest.(check bool) "any matches every rule" true
    (Config.exempt t ~rule:"R9" ~file:"test/lint_corpus/engine/bad.ml");
  Alcotest.(check bool) "one matches itself" true
    (Config.exempt t ~rule:"R7" ~file:"x/bad_r7.ml");
  Alcotest.(check bool) "one does not match siblings" false
    (Config.exempt t ~rule:"R6" ~file:"x/bad_r6.ml");
  Alcotest.(check bool) "range matches interior" true
    (Config.exempt t ~rule:"F2" ~file:"test/flow_corpus/x.ml");
  Alcotest.(check bool) "range matches endpoints" true
    (Config.exempt t ~rule:"F3" ~file:"test/flow_corpus/x.ml");
  Alcotest.(check bool) "range is family-scoped" false
    (Config.exempt t ~rule:"F3" ~file:"lib/engine/x.ml");
  Alcotest.(check bool) "range excludes outside" false
    (Config.exempt t ~rule:"R9" ~file:"lib/engine/x.ml")

let test_rejects () =
  let bad s =
    match Config.parse s with
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
    | Error _ -> ()
  in
  bad "R7\n";
  bad "R7 \n";
  bad "R2-F3 lib/\n";
  bad "R8-R2 lib/\n";
  bad "R-R2 lib/\n"

(* --- round-trip property ------------------------------------------- *)

let gen_entry =
  let open QCheck.Gen in
  let family = oneofl [ "R"; "F" ] in
  let idx = int_range 1 99 in
  let spec =
    frequency
      [
        (1, return Config.Any);
        (3, map2 (fun f i -> Config.One (Printf.sprintf "%s%d" f i)) family idx);
        ( 3,
          map3
            (fun f a b ->
              let lo = min a b and hi = max a b in
              Config.Range { prefix = f; lo; hi })
            family idx idx );
      ]
  in
  (* path fragments as they appear in real exemption files: no spaces,
     no newlines, nonempty *)
  let fragment =
    let frag_char =
      oneofl
        [ 'a'; 'b'; 'z'; 'A'; 'Z'; '0'; '9'; '/'; '.'; '_'; '-'; '#' ]
    in
    map (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 24) frag_char)
  in
  map2 (fun spec fragment -> { Config.spec; fragment }) spec fragment

let arb_config =
  QCheck.make
    ~print:(fun t -> Printf.sprintf "%S" (Config.to_string t))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 12) gen_entry)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"exemption file round-trips" ~count:500 arb_config
      (fun t ->
        match Config.parse (Config.to_string t) with
        | Ok t' -> t' = t
        | Error _ -> false);
  ]

let () =
  Alcotest.run "dp_lint"
    [
      ( "config",
        [
          Alcotest.test_case "spec shapes" `Quick test_spec_shapes;
          Alcotest.test_case "rejects" `Quick test_rejects;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
