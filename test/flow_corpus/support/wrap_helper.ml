(* F2 case (constructor half): wraps a posterior draw in [Released]
   with no convergence verdict anywhere. Lexical R8 only scans
   lib/train files, so a helper outside that tree can construct the
   outcome unseen. Never compiled. *)

type outcome = Released of { theta : float array } | Withheld

let wrap theta = Released { theta }
