(* F3 case (net half): the same constant seed as the engine's
   seed_engine.ml. Streams seeded identically are not independent, so
   the pair couples the transport's jitter with the engine's privacy
   noise. Never compiled. *)

let stream () = Prng.create 0x5EED
