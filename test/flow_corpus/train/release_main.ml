(* F2 case (entry half): a train-side entry that ships an ungated
   sample by delegating the [Released] construction to a helper
   module. No [Released] token appears here, so lexical R8 stays
   quiet; the flow summary for Wrap_helper.wrap carries the release
   obligation back to this uncharged entry. Never compiled. *)

let pick chains = chains.(0)

let ship chains =
  let theta = pick chains in
  Wrap_helper.wrap theta
