(* F2 case (helper half): a shared helper that actually invokes the
   plan's release closure. It lives outside lib/engine, so lexical R2
   never even scans it; the flow analysis records the release in
   [fire]'s summary and surfaces it at uncharged call sites. Never
   compiled. *)

let fire (plan : Planner.plan) rng = plan.Planner.run rng
