(* F3 case: a certify-owned PRNG stream smuggled inside a record whose
   field is not called [rng], then handed to the engine. Lexical R9
   only knows the [.rng] and [Prng.copy] spellings; the provenance
   analysis tracks the stream through the record construction and the
   [.stream] projection and reports the cross-subsystem hand-off.
   Never compiled. *)

type probe = { stream : Prng.t; tag : string }

let make seed = { stream = Prng.create seed; tag = "probe" }

let run reg =
  let p = make 0xCAFE in
  Engine.train_serving reg p.stream
