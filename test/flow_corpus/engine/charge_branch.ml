(* F2 case: the ledger spend happens on only one branch, but the
   release runs unconditionally. Lexical R2 sees a [spend] token
   before the [.run] token in this chunk and stays quiet; the path-
   sensitive charge analysis joins the uncharged else-arm into the
   release and reports. Never compiled. *)

let serve (plan : Planner.plan) rng audited =
  if audited then Ledger.spend plan.eps;
  plan.Planner.run rng
