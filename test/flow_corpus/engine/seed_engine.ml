(* F3 case (engine half): a constant seed that also appears in the net
   subsystem (seed_net.ml). Each file is locally unremarkable — no
   copy, no cross-module call — so no lexical rule can see the
   coupling; only the whole-program seed sweep does. Never compiled. *)

let stream () = Prng.create 0x5EED
