(* F2 case (entry half): an engine entry point that releases through
   the shared helper without ever charging the ledger. This file has
   no [.run] token at all, so lexical R2 is blind; the charge analysis
   walks into Fire_helper.fire and reports the helper's release site
   with a witness path starting here. Never compiled. *)

let answer plan rng = Fire_helper.fire plan rng
