(* F1 case (helper half): returns a raw cell out of a registered
   column. Lexically innocent — no print in sight — but the returned
   value is row data, and the flow summary for [first_cell] says so.
   Never compiled; input for the flow-corpus test only. *)

let first_cell reg name =
  let col = Registry.column reg name in
  col.values.(0)
