(* F1 case (sink half): prints the helper's return value. The token
   linter's R6 scans a bounded window around the print for a [values]
   token and finds none — the field read lives in launder_helper.ml.
   Only the interprocedural taint pass connects the two. *)

let handle reg name oc =
  Printf.fprintf oc "row value %f" (Launder_helper.first_cell reg name)
