open Dp_dataset

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let toy () =
  Dataset.create
    [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |]; [| 7.; 8. |] |]
    [| 1.; -1.; 1.; -1. |]

let test_create_invariants () =
  let d = toy () in
  Alcotest.(check int) "size" 4 (Dataset.size d);
  Alcotest.(check int) "dim" 2 (Dataset.dim d);
  let x, y = Dataset.row d 1 in
  check_close "row y" (-1.) y;
  check_close "row x" 3. x.(0);
  (try
     ignore (Dataset.create [| [| 1. |] |] [| 1.; 2. |]);
     Alcotest.fail "accepted length mismatch"
   with Invalid_argument _ -> ());
  (try
     ignore (Dataset.create [| [| 1. |]; [| 1.; 2. |] |] [| 1.; 2. |]);
     Alcotest.fail "accepted ragged features"
   with Invalid_argument _ -> ());
  try
    ignore (Dataset.create [||] [||]);
    Alcotest.fail "accepted empty"
  with Invalid_argument _ -> ()

let test_replace_row () =
  let d = toy () in
  let d' = Dataset.replace_row d 2 ([| 0.; 0. |], 5.) in
  (* original untouched *)
  let x, y = Dataset.row d 2 in
  check_close "original x" 5. x.(0);
  check_close "original y" 1. y;
  let x', y' = Dataset.row d' 2 in
  check_close "new x" 0. x'.(0);
  check_close "new y" 5. y';
  (* neighbour differs in exactly one row *)
  let diffs = ref 0 in
  for i = 0 to 3 do
    let xi, yi = Dataset.row d i and xi', yi' = Dataset.row d' i in
    if xi <> xi' || yi <> yi' then incr diffs
  done;
  Alcotest.(check int) "hamming 1" 1 !diffs

let test_split () =
  let g = Dp_rng.Prng.create 1 in
  let d = toy () in
  let train, test = Dataset.split ~ratio:0.5 d g in
  Alcotest.(check int) "train size" 2 (Dataset.size train);
  Alcotest.(check int) "test size" 2 (Dataset.size test);
  (* partition: every label count preserved *)
  let count ds v =
    Array.fold_left (fun acc y -> if y = v then acc + 1 else acc) 0 ds.Dataset.labels
  in
  Alcotest.(check int) "labels preserved" 2 (count train 1. + count test 1.);
  (* extreme ratio still gives nonempty sides *)
  let tr, te = Dataset.split ~ratio:0.999 d g in
  Alcotest.(check bool) "nonempty" true (Dataset.size tr >= 1 && Dataset.size te >= 1)

let test_standardize () =
  let d = toy () in
  let d', (means, stds) = Dataset.standardize_features d in
  check_close "mean col0" 4. means.(0);
  Alcotest.(check bool) "std positive" true (stds.(0) > 0.);
  for j = 0 to 1 do
    let col = Array.init 4 (fun i -> d'.Dataset.features.(i).(j)) in
    check_close ~tol:1e-9 "col mean 0" 0. (Dp_stats.Describe.mean col);
    check_close ~tol:1e-9 "col var 1" 1. (Dp_stats.Describe.variance col)
  done

let test_clip () =
  let d = toy () in
  let c = Dataset.clip_rows_l2 ~radius:1. d in
  Array.iter
    (fun row ->
      Alcotest.(check bool) "within ball" true
        (Dp_linalg.Vec.norm2 row <= 1. +. 1e-9))
    c.Dataset.features

let test_subsample_append () =
  let g = Dp_rng.Prng.create 2 in
  let d = toy () in
  let s = Dataset.subsample ~n:2 d g in
  Alcotest.(check int) "subsample size" 2 (Dataset.size s);
  let a = Dataset.append d d in
  Alcotest.(check int) "append size" 8 (Dataset.size a)

(* ------------------------------------------------------------------ *)

let test_two_gaussians () =
  let g = Dp_rng.Prng.create 3 in
  let d = Synthetic.two_gaussians ~separation:4. ~std:1. ~dim:2 ~n:2000 g in
  Alcotest.(check int) "n" 2000 (Dataset.size d);
  (* classes are separated: a linear rule along all-ones direction
     classifies most points correctly *)
  let correct = ref 0 in
  for i = 0 to 1999 do
    let x, y = Dataset.row d i in
    let s = x.(0) +. x.(1) in
    if (s >= 0. && y = 1.) || (s < 0. && y = -1.) then incr correct
  done;
  Alcotest.(check bool) "separable" true (float_of_int !correct /. 2000. > 0.85);
  (* balanced labels *)
  let pos = Array.fold_left (fun a y -> if y = 1. then a + 1 else a) 0 d.Dataset.labels in
  Alcotest.(check int) "balanced" 1000 pos

let test_logistic_model () =
  let g = Dp_rng.Prng.create 4 in
  let theta = [| 4.; 0. |] in
  let d = Synthetic.logistic_model ~theta ~n:4000 g in
  (* P(y=1|x) increases with x.(0): check correlation sign. *)
  let num = ref 0. in
  for i = 0 to Dataset.size d - 1 do
    let x, y = Dataset.row d i in
    num := !num +. (x.(0) *. y)
  done;
  Alcotest.(check bool) "correlation positive" true (!num > 0.);
  (* features in the unit ball *)
  Array.iter
    (fun x ->
      Alcotest.(check bool) "unit ball" true (Dp_linalg.Vec.norm2 x <= 1. +. 1e-9))
    d.Dataset.features

let test_linear_regression_gen () =
  let g = Dp_rng.Prng.create 5 in
  let theta = [| 1.; -2. |] in
  let d = Synthetic.linear_regression ~theta ~noise_std:0. ~n:50 g in
  (* noiseless: labels equal the linear function exactly *)
  for i = 0 to 49 do
    let x, y = Dataset.row d i in
    check_close ~tol:1e-12 "noiseless label" (Dp_linalg.Vec.dot theta x) y
  done

let test_mixture () =
  let g = Dp_rng.Prng.create 6 in
  let weights = [| 0.3; 0.7 |] and means = [| -2.; 2. |] and stds = [| 0.5; 0.5 |] in
  let xs = Synthetic.gaussian_mixture_1d ~weights ~means ~stds ~n:20000 g in
  let m = Dp_stats.Describe.mean xs in
  (* E X = 0.3*(-2) + 0.7*2 = 0.8 *)
  if Float.abs (m -. 0.8) > 0.05 then Alcotest.failf "mixture mean: %g" m;
  (* density integrates to 1 *)
  let integral =
    Dp_math.Quadrature.adaptive_simpson
      ~f:(Synthetic.mixture_density ~weights ~means ~stds)
      (-10.) 10.
  in
  check_close ~tol:1e-6 "density integrates" 1. integral

let test_zipf_bernoulli () =
  let g = Dp_rng.Prng.create 7 in
  let counts = Synthetic.zipf_counts ~s:1.5 ~support:10 ~n:10000 g in
  Alcotest.(check int) "total" 10000 (Array.fold_left ( + ) 0 counts);
  Alcotest.(check bool) "head heavier than tail" true (counts.(0) > counts.(9));
  let db = Synthetic.bernoulli_database ~p:0.5 ~n:1000 g in
  Alcotest.(check bool) "binary" true (Array.for_all (fun x -> x = 0 || x = 1) db)

(* ------------------------------------------------------------------ *)

let test_neighbors () =
  let db = [| 1; 0; 1; 1 |] in
  let d, d' = Neighbors.worst_case_pair_for_count db in
  Alcotest.(check int) "hamming" 1 (Neighbors.hamming_distance d d');
  Alcotest.(check int) "flip at 0" 0 d'.(0);
  let samples = Neighbors.all_samples ~universe:3 ~n:2 in
  Alcotest.(check int) "3^2 samples" 9 (Array.length samples);
  (* all distinct *)
  let module SS = Set.Make (struct
    type t = int array

    let compare = compare
  end) in
  Alcotest.(check int) "distinct" 9
    (SS.cardinal (SS.of_list (Array.to_list samples)));
  let nbrs = Neighbors.neighbors_of_sample ~universe:3 [| 0; 1 |] in
  Alcotest.(check int) "neighbor count" 4 (Array.length nbrs);
  Array.iter
    (fun s ->
      Alcotest.(check int) "all at hamming 1" 1
        (Neighbors.hamming_distance s [| 0; 1 |]))
    nbrs;
  try
    ignore (Neighbors.all_samples ~universe:10 ~n:10);
    Alcotest.fail "accepted huge space"
  with Invalid_argument _ -> ()

let dataset_row_diffs d d' =
  let diffs = ref 0 in
  for i = 0 to Dataset.size d - 1 do
    let xi, yi = Dataset.row d i and xi', yi' = Dataset.row d' i in
    if xi <> xi' || yi <> yi' then incr diffs
  done;
  !diffs

let test_neighbor_pairs () =
  (* scalar pairs: edge cases around the degenerate sizes *)
  (try
     ignore (Neighbors.worst_case_pair_for_count [||]);
     Alcotest.fail "accepted empty database"
   with Invalid_argument _ -> ());
  let g = Dp_rng.Prng.create 11 in
  (try
     ignore (Neighbors.random_scalar_pair ~universe:1 ~n:5 g);
     Alcotest.fail "accepted singleton universe"
   with Invalid_argument _ -> ());
  (try
     ignore (Neighbors.random_scalar_pair ~universe:2 ~n:0 g);
     Alcotest.fail "accepted empty sample"
   with Invalid_argument _ -> ());
  (* single-record sample: the one record must flip *)
  let d, d' = Neighbors.random_scalar_pair ~universe:2 ~n:1 g in
  Alcotest.(check int) "single record flips" 1 (Neighbors.hamming_distance d d');
  (* single-record dataset with fully degenerate ranges still yields a
     proper neighbour *)
  let one = Dataset.create [| [| 2.; 2. |] |] [| 2. |] in
  let a, b, idx = Neighbors.random_dataset_pair one g in
  Alcotest.(check int) "index" 0 idx;
  Alcotest.(check int) "degenerate still differs" 1 (dataset_row_diffs a b)

let test_csv_roundtrip () =
  let path = Filename.temp_file "dp_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rows = [ [| 1.5; -2.25 |]; [| 0.1; 1e-17 |] ] in
      Csv.write ~path ~header:[ "a"; "b" ] rows;
      let header, back = Csv.read ~path in
      Alcotest.(check (list string)) "header" [ "a"; "b" ] header;
      List.iter2
        (fun r1 r2 ->
          Array.iteri (fun i x -> check_close "cell" x r2.(i)) r1)
        rows back)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"split preserves rows" ~count:100
      (pair (int_range 0 1000) (int_range 4 60))
      (fun (seed, n) ->
        let g = Dp_rng.Prng.create seed in
        let theta = [| 1.; 1. |] in
        let d = Synthetic.linear_regression ~theta ~noise_std:1. ~n g in
        let a, b = Dataset.split ~ratio:0.7 d g in
        Dataset.size a + Dataset.size b = n);
    Test.make ~name:"neighbors_of_sample count" ~count:100
      (pair (int_range 2 5) (int_range 1 6))
      (fun (universe, n) ->
        let s = Array.make n 0 in
        Array.length (Neighbors.neighbors_of_sample ~universe s)
        = n * (universe - 1));
    Test.make ~name:"random_scalar_pair differs in exactly one record"
      ~count:200
      (triple (int_range 0 1000) (int_range 2 10) (int_range 1 40))
      (fun (seed, universe, n) ->
        let g = Dp_rng.Prng.create seed in
        let d, d' = Neighbors.random_scalar_pair ~universe ~n g in
        Array.length d = n
        && Array.length d' = n
        && Neighbors.hamming_distance d d' = 1
        && Array.for_all (fun x -> x >= 0 && x < universe) d');
    Test.make ~name:"random_dataset_pair: one row, same schema" ~count:100
      (pair (int_range 0 1000) (int_range 1 30))
      (fun (seed, n) ->
        let g = Dp_rng.Prng.create seed in
        let d =
          if n = 1 then Dataset.create [| [| 1.; 1. |] |] [| 1. |]
          else Synthetic.linear_regression ~theta:[| 1.; -1. |] ~noise_std:1. ~n g
        in
        let a, b, idx = Neighbors.random_dataset_pair d g in
        Dataset.size b = Dataset.size a
        && Dataset.dim b = Dataset.dim a
        && idx >= 0
        && idx < Dataset.size a
        && dataset_row_diffs a b = 1
        && (fst (Dataset.row b idx) <> fst (Dataset.row a idx)
           || snd (Dataset.row b idx) <> snd (Dataset.row a idx)));
    Test.make ~name:"clip never increases norm" ~count:100
      (pair (int_range 0 1000) (float_range 0.1 5.))
      (fun (seed, radius) ->
        let g = Dp_rng.Prng.create seed in
        let d = Synthetic.two_gaussians ~dim:3 ~n:20 g in
        let c = Dataset.clip_rows_l2 ~radius d in
        Array.for_all2
          (fun a b -> Dp_linalg.Vec.norm2 a <= Dp_linalg.Vec.norm2 b +. 1e-9)
          c.Dataset.features d.Dataset.features);
  ]

let () =
  Alcotest.run "dp_dataset"
    [
      ( "dataset",
        [
          Alcotest.test_case "create invariants" `Quick test_create_invariants;
          Alcotest.test_case "replace_row (neighbour)" `Quick test_replace_row;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "standardize" `Quick test_standardize;
          Alcotest.test_case "clip" `Quick test_clip;
          Alcotest.test_case "subsample & append" `Quick test_subsample_append;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "two gaussians" `Quick test_two_gaussians;
          Alcotest.test_case "logistic model" `Quick test_logistic_model;
          Alcotest.test_case "linear regression" `Quick
            test_linear_regression_gen;
          Alcotest.test_case "mixture" `Quick test_mixture;
          Alcotest.test_case "zipf & bernoulli" `Quick test_zipf_bernoulli;
        ] );
      ( "neighbors & csv",
        [
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "neighbor pairs (edge cases)" `Quick
            test_neighbor_pairs;
          Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
