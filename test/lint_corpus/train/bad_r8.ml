(* Seeded violation for R8: a Released model constructed with no
   convergence verdict in the same definition. Never compiled. *)

type outcome =
  | Released of { theta : float array }
  | Withheld of { reason : string }

let sneak_release chains =
  let theta = chains.(0).(Array.length chains.(0) - 1) in
  Released { theta }
