(* Seeded violation for R4: difference of logs of densities underflows
   to nan in the tails. Never compiled. *)

let log_likelihood_ratio density ~value1 ~value2 y =
  log (density ~value:value1 y) -. log (density ~value:value2 y)
