(* Seeded violation for R6: raw dataset values reaching an output
   channel in a serving path. Never compiled. *)

let debug_dump (c : Registry.column) =
  Printf.printf "col %s = %s\n" c.name (dump c.values)
