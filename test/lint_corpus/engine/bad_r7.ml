(* Seeded violation for R7: a metric label assembled from a query
   string at the record call site. Labels must be closed Dp_obs.Name
   constructors — runtime data in a label name is a side channel.
   Never compiled. *)

let record_latency scope query_text ns =
  Metrics.observe scope (histo_of ("q-" ^ query_text)) ns
