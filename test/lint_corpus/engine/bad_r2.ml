(* Seeded violation for R2: the release closure runs before any ledger
   spend / journal append in the same definition. Never compiled. *)

let serve_uncharged (plan : Planner.plan) rng =
  let answer = plan.Planner.run rng in
  answer
