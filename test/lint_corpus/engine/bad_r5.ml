(* Seeded violation for R5: a catch-all handler in the engine can
   swallow a failed charge. Never compiled. *)

let charge_or_zero ledger charge =
  try Ledger.spend ledger charge with _ -> ()
