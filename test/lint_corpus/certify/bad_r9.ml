(* Seeded violation for R9: the certification harness aliasing a noise
   stream with Prng.copy instead of splitting fresh streams from its
   own seed. An audit that shares the privacy stream it is testing
   certifies nothing. Never compiled. *)

let shadow_stream engine_stream =
  let g = Dp_rng.Prng.copy engine_stream in
  Certify.collect ~trials:1000 source g
