(* Seeded violation for R3: a library module with no .mli interface.
   Never compiled. *)

let internal_secret = 42
