(* Seeded violation for R1: unseeded global PRNG outside lib/rng.
   Never compiled — input for the lint-corpus test only. *)

let noisy_count n = n + Random.int 3
