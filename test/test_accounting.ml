(* Tests for RDP accounting, DP-SGD, private quantiles, MCMC
   diagnostics and the hypothesis-testing (tradeoff) auditor. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* RDP *)

let test_rdp_gaussian_curve () =
  let c = Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:2. in
  check_close ~tol:1e-12 "rho(2)" (2. /. 8.) (c 2.);
  check_close ~tol:1e-12 "linear in alpha" (2. *. c 2.) (c 4.);
  (* matches the Renyi divergence between the actual shifted gaussians:
     D_alpha(N(0,s)||N(1,s)) = alpha/(2 s^2) *)
  try
    ignore (c 1.);
    Alcotest.fail "accepted alpha = 1"
  with Invalid_argument _ -> ()

let test_rdp_laplace_curve () =
  let eps = 0.8 in
  let c = Dp_mechanism.Rdp.laplace ~sensitivity:1. ~epsilon:eps in
  (* the curve is below eps (RDP of Laplace is at most the pure eps) *)
  List.iter
    (fun a ->
      let r = c a in
      Alcotest.(check bool)
        (Printf.sprintf "rho(%g)=%g <= eps" a r)
        true
        (r <= eps +. 1e-9);
      Alcotest.(check bool) "nonnegative" true (r >= 0.))
    [ 1.5; 2.; 4.; 16.; 128. ];
  (* alpha -> infinity approaches eps *)
  Alcotest.(check bool) "limit" true (eps -. c 4096. < 0.01)

let test_rdp_monotone_in_alpha () =
  let c = Dp_mechanism.Rdp.laplace ~sensitivity:1. ~epsilon:1.2 in
  let prev = ref 0. in
  List.iter
    (fun a ->
      let r = c a in
      Alcotest.(check bool) "nondecreasing" true (r >= !prev -. 1e-12);
      prev := r)
    [ 1.1; 1.5; 2.; 3.; 8.; 32.; 256. ]

let test_rdp_to_dp () =
  (* single Gaussian release: the RDP conversion is within a few
     percent of the classical calibration (slightly looser for one
     release — its advantage is under composition, tested below) *)
  let sigma = 5. and delta = 1e-5 in
  let classical = sqrt (2. *. log (1.25 /. delta)) /. sigma in
  let b =
    Dp_mechanism.Rdp.to_dp ~delta
      (Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:sigma)
  in
  Alcotest.(check bool)
    (Printf.sprintf "rdp %.3f ~ classical %.3f" b.Dp_mechanism.Privacy.epsilon classical)
    true
    (b.Dp_mechanism.Privacy.epsilon <= classical *. 1.05);
  (* ...but at 10-fold composition RDP clearly beats k * classical *)
  let composed =
    Dp_mechanism.Rdp.to_dp ~delta
      (Dp_mechanism.Rdp.scale 10
         (Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:sigma))
  in
  Alcotest.(check bool) "wins under composition" true
    (composed.Dp_mechanism.Privacy.epsilon < 10. *. classical /. 2.);
  check_close "delta recorded" delta b.Dp_mechanism.Privacy.delta

let test_rdp_composition_beats_basic () =
  let k = 100 in
  let eps0 = 0.1 and delta = 1e-5 in
  let lap = Dp_mechanism.Rdp.laplace ~sensitivity:1. ~epsilon:eps0 in
  let composed = Dp_mechanism.Rdp.to_dp ~delta (Dp_mechanism.Rdp.scale k lap) in
  Alcotest.(check bool) "beats basic at k=100" true
    (composed.Dp_mechanism.Privacy.epsilon < float_of_int k *. eps0);
  (* scale k = compose k copies *)
  let c2 = Dp_mechanism.Rdp.compose [ lap; lap ] in
  check_close ~tol:1e-12 "compose = scale 2"
    ((Dp_mechanism.Rdp.scale 2 lap) 3.)
    (c2 3.)

let test_rdp_sgm () =
  let e1 = Dp_mechanism.Rdp.gaussian_sgm_epsilon ~noise_multiplier:2. ~steps:10 ~delta:1e-5 in
  let e2 = Dp_mechanism.Rdp.gaussian_sgm_epsilon ~noise_multiplier:4. ~steps:10 ~delta:1e-5 in
  let e3 = Dp_mechanism.Rdp.gaussian_sgm_epsilon ~noise_multiplier:2. ~steps:100 ~delta:1e-5 in
  Alcotest.(check bool) "more noise, less eps" true (e2 < e1);
  Alcotest.(check bool) "more steps, more eps" true (e3 > e1);
  Alcotest.(check bool) "positive" true (e2 > 0.)

(* ------------------------------------------------------------------ *)
(* Discrete Gaussian *)

let test_discrete_gaussian_pmf () =
  let m = Dp_mechanism.Discrete_gaussian.create ~sensitivity:1 ~sigma:2. in
  (* pmf normalizes over a wide window *)
  let total =
    Dp_math.Numeric.float_sum_range 81 (fun i ->
        Dp_mechanism.Discrete_gaussian.pmf m (i - 40))
  in
  check_close ~tol:1e-9 "normalizes" 1. total;
  (* symmetric, unimodal at 0 *)
  check_close ~tol:1e-12 "symmetric"
    (Dp_mechanism.Discrete_gaussian.pmf m 3)
    (Dp_mechanism.Discrete_gaussian.pmf m (-3));
  Alcotest.(check bool) "mode at 0" true
    (Dp_mechanism.Discrete_gaussian.pmf m 0
    > Dp_mechanism.Discrete_gaussian.pmf m 1)

let test_discrete_gaussian_sampler () =
  let g = Dp_rng.Prng.create 20 in
  let sigma = 2.5 in
  let m = Dp_mechanism.Discrete_gaussian.create ~sensitivity:1 ~sigma in
  let n = 100_000 in
  let counts = Hashtbl.create 64 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let k = Dp_mechanism.Discrete_gaussian.sample_noise ~sigma g in
    sum := !sum +. float_of_int k;
    sumsq := !sumsq +. float_of_int (k * k);
    Hashtbl.replace counts k
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let fn = float_of_int n in
  (* mean 0, variance close to (slightly below) sigma^2 *)
  if Float.abs (!sum /. fn) > 0.05 then Alcotest.failf "mean %g" (!sum /. fn);
  let var = !sumsq /. fn in
  Alcotest.(check bool) (Printf.sprintf "variance %.3f ~ %.3f" var (sigma *. sigma))
    true
    (Float.abs (var -. (sigma *. sigma)) < 0.3);
  (* empirical frequencies match the exact pmf near the mode *)
  List.iter
    (fun k ->
      let f =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. fn
      in
      let p = Dp_mechanism.Discrete_gaussian.pmf m k in
      if Float.abs (f -. p) > 5. *. sqrt (p /. fn) +. 1e-3 then
        Alcotest.failf "freq at %d: %g vs %g" k f p)
    [ -2; -1; 0; 1; 2 ]

let test_discrete_gaussian_privacy_exact () =
  (* the pmf ratio between shifted noise distributions at distance 1:
     log ratio at k is (2k-1)/(2 sigma^2), unbounded in k but the
     RDP/(eps,delta) accounting captures it; check the RDP curve and
     the pmf-ratio identity *)
  let sigma = 3. in
  let m = Dp_mechanism.Discrete_gaussian.create ~sensitivity:1 ~sigma in
  List.iter
    (fun k ->
      let r =
        log (Dp_mechanism.Discrete_gaussian.pmf m k)
        -. log (Dp_mechanism.Discrete_gaussian.pmf m (k - 1))
      in
      check_close ~tol:1e-9
        (Printf.sprintf "log ratio at %d" k)
        (-.float_of_int ((2 * k) - 1) /. (2. *. sigma *. sigma))
        r)
    [ -3; 0; 2; 5 ];
  (* budget consistent with a continuous gaussian of the same sigma *)
  let b = Dp_mechanism.Discrete_gaussian.budget m ~delta:1e-6 in
  let cont =
    Dp_mechanism.Rdp.to_dp ~delta:1e-6
      (Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:sigma)
  in
  check_close ~tol:1e-12 "matches continuous accounting"
    cont.Dp_mechanism.Privacy.epsilon b.Dp_mechanism.Privacy.epsilon

(* ------------------------------------------------------------------ *)
(* DP-SGD *)

let test_dp_sgd_learns () =
  let g = Dp_rng.Prng.create 1 in
  let d =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.two_gaussians ~separation:3. ~std:1. ~dim:3 ~n:1000 g)
  in
  let r =
    Dp_learn.Dp_sgd.train ~epochs:10 ~noise_multiplier:0.8 ~delta:1e-5
      ~loss:Dp_learn.Loss_fn.logistic d g
  in
  let acc = Dp_learn.Erm.accuracy r.Dp_learn.Dp_sgd.theta d in
  Alcotest.(check bool) (Printf.sprintf "acc %.3f" acc) true (acc > 0.8);
  Alcotest.(check bool) "budget recorded" true
    (r.Dp_learn.Dp_sgd.budget.Dp_mechanism.Privacy.epsilon > 0.
    && r.Dp_learn.Dp_sgd.budget.Dp_mechanism.Privacy.delta = 1e-5);
  Alcotest.(check bool) "steps counted" true (r.Dp_learn.Dp_sgd.steps = 10 * (1000 / 50))

let test_dp_sgd_noise_hurts () =
  let g = Dp_rng.Prng.create 2 in
  let d =
    Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
      (Dp_dataset.Synthetic.two_gaussians ~separation:3. ~std:1. ~dim:3 ~n:500 g)
  in
  let acc sigma =
    Dp_math.Summation.mean
      (Array.init 5 (fun _ ->
           let r =
             Dp_learn.Dp_sgd.train ~epochs:5 ~noise_multiplier:sigma
               ~delta:1e-5 ~loss:Dp_learn.Loss_fn.logistic d g
           in
           Dp_learn.Erm.accuracy r.Dp_learn.Dp_sgd.theta d))
  in
  Alcotest.(check bool) "huge noise is worse" true (acc 200. < acc 0.5);
  (* accounted epsilon decreases in sigma *)
  Alcotest.(check bool) "eps decreases" true
    (Dp_learn.Dp_sgd.epsilon_for ~noise_multiplier:200. ~epochs:5 ~delta:1e-5
    < Dp_learn.Dp_sgd.epsilon_for ~noise_multiplier:0.5 ~epochs:5 ~delta:1e-5)

(* ------------------------------------------------------------------ *)
(* Quantile *)

let test_quantile_utility () =
  let g = Dp_rng.Prng.create 3 in
  let xs = Array.init 500 (fun _ -> Dp_rng.Sampler.uniform ~lo:0. ~hi:10. g) in
  (* at high epsilon the private median has tiny rank error *)
  let errs =
    Array.init 50 (fun _ ->
        let est = Dp_learn.Quantile.estimate ~epsilon:5. ~q:0.5 ~lo:0. ~hi:10. xs g in
        Dp_learn.Quantile.rank_error ~q:0.5 ~estimate:est xs)
  in
  let mean_err =
    Dp_math.Summation.mean (Array.map float_of_int errs)
  in
  Alcotest.(check bool) (Printf.sprintf "mean rank err %.1f" mean_err) true
    (mean_err < 5.);
  (* low epsilon is worse *)
  let errs_lo =
    Array.init 50 (fun _ ->
        let est = Dp_learn.Quantile.estimate ~epsilon:0.05 ~q:0.5 ~lo:0. ~hi:10. xs g in
        Dp_learn.Quantile.rank_error ~q:0.5 ~estimate:est xs)
  in
  let mean_lo = Dp_math.Summation.mean (Array.map float_of_int errs_lo) in
  Alcotest.(check bool) "low eps worse" true (mean_lo > mean_err);
  (* output always inside [lo, hi] *)
  for _ = 1 to 100 do
    let est = Dp_learn.Quantile.estimate ~epsilon:1. ~q:0.9 ~lo:0. ~hi:10. xs g in
    Alcotest.(check bool) "in range" true (est >= 0. && est <= 10.)
  done

let test_quantile_privacy_sanity () =
  (* exact audit at tiny data size: build the output distribution over
     a fine grid by integrating the gap mixture analytically via many
     draws is noisy; instead verify the DP property directly on the
     gap-level categorical: replacing one record changes each gap's
     quality by at most 1 and boundaries shift, so we check the
     end-to-end released value's distribution via binned frequencies. *)
  let g = Dp_rng.Prng.create 4 in
  let xs = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |] in
  let xs' = Array.copy xs in
  xs'.(0) <- 7.5;
  let eps = 1.0 in
  let report =
    Dp_audit.Auditor.audit_continuous ~trials:100_000 ~bins:10 ~lo:0. ~hi:10.
      ~epsilon_theory:eps
      ~run:(fun g' -> Dp_learn.Quantile.estimate ~epsilon:eps ~q:0.5 ~lo:0. ~hi:10. xs g')
      ~run':(fun g' -> Dp_learn.Quantile.estimate ~epsilon:eps ~q:0.5 ~lo:0. ~hi:10. xs' g')
      g
  in
  Alcotest.(check bool)
    (Printf.sprintf "quantile audit eps_lower %.3f" report.Dp_audit.Auditor.epsilon_lower)
    true
    (Dp_audit.Auditor.passes report ~slack:0.15)

let test_quantile_degenerate () =
  let g = Dp_rng.Prng.create 5 in
  (* all data identical: still returns something in range *)
  let xs = Array.make 20 5. in
  let est = Dp_learn.Quantile.estimate ~epsilon:1. ~q:0.5 ~lo:0. ~hi:10. xs g in
  Alcotest.(check bool) "in range" true (est >= 0. && est <= 10.)

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

let test_autocorrelation_iid () =
  let g = Dp_rng.Prng.create 6 in
  let xs = Array.init 20_000 (fun _ -> Dp_rng.Sampler.gaussian ~mean:0. ~std:1. g) in
  check_close ~tol:1e-12 "lag 0" 1. (Dp_pac_bayes.Diagnostics.autocorrelation xs 0);
  let r1 = Dp_pac_bayes.Diagnostics.autocorrelation xs 1 in
  Alcotest.(check bool) (Printf.sprintf "iid lag1 %.3f ~ 0" r1) true
    (Float.abs r1 < 0.03);
  (* iid chain: ESS ~ n *)
  let ess = Dp_pac_bayes.Diagnostics.effective_sample_size xs in
  Alcotest.(check bool) (Printf.sprintf "iid ESS %.0f" ess) true
    (ess > 15_000.)

let test_ess_correlated () =
  (* AR(1) with coefficient 0.9: tau = (1+rho)/(1-rho) = 19, ESS ~ n/19 *)
  let g = Dp_rng.Prng.create 7 in
  let n = 50_000 in
  let xs = Array.make n 0. in
  for i = 1 to n - 1 do
    xs.(i) <- (0.9 *. xs.(i - 1)) +. Dp_rng.Sampler.gaussian ~mean:0. ~std:1. g
  done;
  let ess = Dp_pac_bayes.Diagnostics.effective_sample_size xs in
  let expected = float_of_int n /. 19. in
  Alcotest.(check bool)
    (Printf.sprintf "AR(1) ESS %.0f ~ %.0f" ess expected)
    true
    (ess > expected /. 2. && ess < expected *. 2.)

let test_gelman_rubin () =
  let g = Dp_rng.Prng.create 8 in
  (* converged chains: same distribution -> R ~ 1 *)
  let chain () = Array.init 5000 (fun _ -> Dp_rng.Sampler.gaussian ~mean:0. ~std:1. g) in
  let r = Dp_pac_bayes.Diagnostics.gelman_rubin [| chain (); chain (); chain () |] in
  Alcotest.(check bool) (Printf.sprintf "converged R %.3f" r) true (r < 1.02);
  (* diverged chains: different means -> R >> 1 *)
  let shifted mu = Array.init 5000 (fun _ -> Dp_rng.Sampler.gaussian ~mean:mu ~std:1. g) in
  let r = Dp_pac_bayes.Diagnostics.gelman_rubin [| shifted 0.; shifted 5. |] in
  Alcotest.(check bool) (Printf.sprintf "diverged R %.3f" r) true (r > 1.5)

let test_diagnostics_on_mcmc () =
  let g = Dp_rng.Prng.create 9 in
  let r =
    Dp_pac_bayes.Mcmc.run
      ~config:{ Dp_pac_bayes.Mcmc.step_std = 1.0; burn_in = 1000; thin = 1 }
      ~log_density:(fun th -> -0.5 *. th.(0) *. th.(0))
      ~init:[| 0. |] ~n_samples:20_000 g
  in
  let s = Dp_pac_bayes.Diagnostics.summarize r ~coordinate:0 in
  Alcotest.(check bool) "ess positive and below n" true
    (s.Dp_pac_bayes.Diagnostics.ess > 100.
    && s.Dp_pac_bayes.Diagnostics.ess <= 20_000.);
  Alcotest.(check bool) "mean near 0" true
    (Float.abs s.Dp_pac_bayes.Diagnostics.mean < 0.1);
  Alcotest.(check bool) "split rhat near 1" true
    (s.Dp_pac_bayes.Diagnostics.rhat < 1.05)

(* Pinned fixtures for the rank-normalized split statistics: fully
   deterministic chains, so the converged / stuck verdicts can never
   drift with a sampler change. *)

(* A deterministic LCG stream — white enough that two chains from
   different seeds look like draws from the same distribution. *)
let lcg_chain seed n =
  let s = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      (float_of_int !s /. float_of_int 0x3FFFFFFF) -. 0.5)

let test_split_rhat_converged_fixture () =
  let chains = [| lcg_chain 1 512; lcg_chain 99 512 |] in
  let r = Dp_pac_bayes.Diagnostics.split_rhat chains in
  Alcotest.(check bool) (Printf.sprintf "converged fixture R %.4f" r) true
    (r < 1.01);
  let ess = Dp_pac_bayes.Diagnostics.ess_rank_normalized chains in
  Alcotest.(check bool) (Printf.sprintf "near-iid ESS %.0f" ess) true
    (ess > 500. && ess <= 1024.)

let test_split_rhat_stuck_fixture () =
  (* two frozen chains at different values: W = 0, B > 0 must read as
     divergence, not convergence — the gate's load-bearing case *)
  let r =
    Dp_pac_bayes.Diagnostics.split_rhat
      [| Array.make 64 0.; Array.make 64 1. |]
  in
  Alcotest.(check bool) "frozen disagreeing chains diverge" true
    (r = infinity);
  (* both frozen at the same value: no evidence of divergence *)
  let r =
    Dp_pac_bayes.Diagnostics.split_rhat
      [| Array.make 64 2.; Array.make 64 2. |]
  in
  Alcotest.(check (float 0.)) "frozen agreeing chains" 1. r;
  (* a within-chain drift is what split-R catches that pooled R misses:
     one chain still trending vs one stationary *)
  let drift = Array.init 256 (fun i -> float_of_int i /. 256.) in
  let r = Dp_pac_bayes.Diagnostics.split_rhat [| drift; lcg_chain 3 256 |] in
  Alcotest.(check bool) (Printf.sprintf "drifting chain flagged R %.3f" r) true
    (r > 1.1)

let test_rank_normalize_shape () =
  (* rank normalization is monotone and distribution-free: the ranks of
     a heavy-tailed chain map onto the same normal scores as any other
     chain of the same length *)
  let a = Dp_pac_bayes.Diagnostics.rank_normalize [| [| 1.; 10.; 1e6; -3. |] |] in
  let b = Dp_pac_bayes.Diagnostics.rank_normalize [| [| 0.2; 0.3; 0.4; 0.1 |] |] in
  Array.iteri
    (fun i x -> check_close ~tol:1e-12 "same scores" x b.(0).(i))
    a.(0);
  Alcotest.(check bool) "order preserved" true
    (a.(0).(3) < a.(0).(0) && a.(0).(0) < a.(0).(1) && a.(0).(1) < a.(0).(2))

let test_ess_rejects_nan () =
  let xs = Array.init 64 (fun i -> float_of_int i) in
  xs.(17) <- Float.nan;
  (try
     ignore (Dp_pac_bayes.Diagnostics.effective_sample_size xs);
     Alcotest.fail "NaN chain accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Dp_pac_bayes.Diagnostics.split_rhat [| xs; xs |]);
    Alcotest.fail "NaN chain accepted by split_rhat"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Tradeoff region *)

let test_region_floor () =
  check_close ~tol:1e-12 "at alpha=0" 1. (Dp_audit.Tradeoff.region_floor ~epsilon:1. ~fpr:0.);
  check_close "at alpha=1" 0. (Dp_audit.Tradeoff.region_floor ~epsilon:1. ~fpr:1.);
  (* eps = 0: no test can do better than random: floor is 1 - alpha *)
  check_close ~tol:1e-12 "perfect privacy" 0.7
    (Dp_audit.Tradeoff.region_floor ~epsilon:0. ~fpr:0.3)

let test_exact_roc_randomized_response () =
  let eps = 1.5 in
  let rr = Dp_mechanism.Randomized_response.create ~epsilon:eps in
  let ch = Dp_mechanism.Randomized_response.channel_matrix rr in
  let roc = Dp_audit.Tradeoff.roc_of_distributions ~p:ch.(0) ~q:ch.(1) in
  (* every exact ROC point respects the region *)
  List.iter
    (fun pt ->
      Alcotest.(check bool) "in region" true
        (pt.Dp_audit.Tradeoff.fnr
        >= Dp_audit.Tradeoff.region_floor ~epsilon:eps
             ~fpr:pt.Dp_audit.Tradeoff.fpr
           -. 1e-12))
    roc;
  (* RR achieves the minimum total error floor 2/(1+e^eps) *)
  let min_err =
    List.fold_left
      (fun acc pt -> Float.min acc (pt.Dp_audit.Tradeoff.fpr +. pt.Dp_audit.Tradeoff.fnr))
      infinity roc
  in
  check_close ~tol:1e-12 "extremal" (2. /. (1. +. exp eps)) min_err

let test_tradeoff_audit_flags_leak () =
  let g = Dp_rng.Prng.create 10 in
  (* a deterministic leak has an ROC hitting (0,0): many violations *)
  let report =
    Dp_audit.Tradeoff.audit ~trials:5000 ~outcomes:2 ~epsilon_theory:1.
      ~run:(fun _ -> 0)
      ~run':(fun _ -> 1)
      g
  in
  Alcotest.(check bool) "violations found" true
    (report.Dp_audit.Tradeoff.region_violations > 0);
  Alcotest.(check bool) "min error ~ 0" true
    (report.Dp_audit.Tradeoff.min_total_error < 0.01)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"rdp to_dp epsilon decreases in delta" ~count:100
      (pair (float_range 0.5 10.) (float_range (-12.) (-2.)))
      (fun (sigma, log10_delta) ->
        let c = Dp_mechanism.Rdp.gaussian ~l2_sensitivity:1. ~std:sigma in
        let d1 = 10. ** log10_delta in
        let d2 = Float.min 0.5 (d1 *. 100.) in
        (Dp_mechanism.Rdp.to_dp ~delta:d1 c).Dp_mechanism.Privacy.epsilon
        >= (Dp_mechanism.Rdp.to_dp ~delta:d2 c).Dp_mechanism.Privacy.epsilon
           -. 1e-9);
    Test.make ~name:"quantile estimate within clamp range" ~count:100
      (pair (int_range 0 1000) (float_range 0.05 0.95))
      (fun (seed, q) ->
        let g = Dp_rng.Prng.create seed in
        let xs = Array.init 30 (fun _ -> Dp_rng.Sampler.gaussian ~mean:0. ~std:3. g) in
        let est = Dp_learn.Quantile.estimate ~epsilon:1. ~q ~lo:(-5.) ~hi:5. xs g in
        est >= -5. && est <= 5.);
    Test.make ~name:"region floor decreasing in fpr and eps" ~count:200
      (triple (float_range 0. 3.) (float_range 0. 1.) (float_range 0. 1.))
      (fun (eps, a1, a2) ->
        let lo = Float.min a1 a2 and hi = Float.max a1 a2 in
        Dp_audit.Tradeoff.region_floor ~epsilon:eps ~fpr:lo
        >= Dp_audit.Tradeoff.region_floor ~epsilon:eps ~fpr:hi -. 1e-12);
    Test.make ~name:"ESS bounded by chain length" ~count:30
      (int_range 0 1000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let xs = Array.init 500 (fun _ -> Dp_rng.Prng.float g) in
        let ess = Dp_pac_bayes.Diagnostics.effective_sample_size xs in
        ess >= 1. && ess <= 500.);
  ]

let () =
  Alcotest.run "dp_accounting"
    [
      ( "rdp",
        [
          Alcotest.test_case "gaussian curve" `Quick test_rdp_gaussian_curve;
          Alcotest.test_case "laplace curve" `Quick test_rdp_laplace_curve;
          Alcotest.test_case "monotone in alpha" `Quick test_rdp_monotone_in_alpha;
          Alcotest.test_case "to_dp" `Quick test_rdp_to_dp;
          Alcotest.test_case "composition beats basic" `Quick
            test_rdp_composition_beats_basic;
          Alcotest.test_case "sgm helper" `Quick test_rdp_sgm;
        ] );
      ( "discrete gaussian",
        [
          Alcotest.test_case "pmf" `Quick test_discrete_gaussian_pmf;
          Alcotest.test_case "sampler" `Slow test_discrete_gaussian_sampler;
          Alcotest.test_case "privacy & accounting" `Quick
            test_discrete_gaussian_privacy_exact;
        ] );
      ( "dp-sgd",
        [
          Alcotest.test_case "learns" `Slow test_dp_sgd_learns;
          Alcotest.test_case "noise/privacy tradeoff" `Slow test_dp_sgd_noise_hurts;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "utility" `Quick test_quantile_utility;
          Alcotest.test_case "privacy audit" `Slow test_quantile_privacy_sanity;
          Alcotest.test_case "degenerate data" `Quick test_quantile_degenerate;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "autocorrelation iid" `Quick test_autocorrelation_iid;
          Alcotest.test_case "ESS on AR(1)" `Slow test_ess_correlated;
          Alcotest.test_case "gelman-rubin" `Quick test_gelman_rubin;
          Alcotest.test_case "summarize mcmc" `Slow test_diagnostics_on_mcmc;
          Alcotest.test_case "split-rhat converged fixture" `Quick
            test_split_rhat_converged_fixture;
          Alcotest.test_case "split-rhat stuck fixture" `Quick
            test_split_rhat_stuck_fixture;
          Alcotest.test_case "rank normalization" `Quick
            test_rank_normalize_shape;
          Alcotest.test_case "ESS rejects NaN" `Quick test_ess_rejects_nan;
        ] );
      ( "tradeoff region",
        [
          Alcotest.test_case "floor" `Quick test_region_floor;
          Alcotest.test_case "exact ROC of RR" `Quick
            test_exact_roc_randomized_response;
          Alcotest.test_case "flags leaks" `Quick test_tradeoff_audit_flags_leak;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
