(* Tests for contingency tables, smooth sensitivity, and synthetic
   data release. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Contingency *)

let test_contingency_basics () =
  let t =
    Dp_stats.Contingency.of_pairs ~rows:2 ~cols:3
      [| (0, 0); (0, 1); (1, 2); (1, 2); (0, 0) |]
  in
  check_close "total" 5. (Dp_stats.Contingency.total t);
  let r = Dp_stats.Contingency.row_marginals t in
  check_close "row 0" 3. r.(0);
  check_close "row 1" 2. r.(1);
  let c = Dp_stats.Contingency.col_marginals t in
  check_close "col 2" 2. c.(2);
  let e = Dp_stats.Contingency.expected_under_independence t in
  check_close ~tol:1e-12 "expected cell" (3. *. 2. /. 5.) e.(0).(0);
  (try
     ignore (Dp_stats.Contingency.of_pairs ~rows:2 ~cols:2 [| (2, 0) |]);
     Alcotest.fail "accepted out of range"
   with Invalid_argument _ -> ())

let test_chi_square_independence () =
  let g = Dp_rng.Prng.create 1 in
  (* independent attributes: p-value large most of the time *)
  let indep =
    Array.init 2000 (fun _ ->
        ((if Dp_rng.Prng.bool g then 1 else 0), if Dp_rng.Prng.bool g then 1 else 0))
  in
  let t = Dp_stats.Contingency.of_pairs ~rows:2 ~cols:2 indep in
  let r = Dp_stats.Contingency.chi_square_independence t in
  Alcotest.(check bool) "independent accepted" true (r.Dp_stats.Gof.p_value > 0.001);
  (* perfectly dependent: rejected *)
  let dep = Array.init 2000 (fun _ -> let a = if Dp_rng.Prng.bool g then 1 else 0 in (a, a)) in
  let t = Dp_stats.Contingency.of_pairs ~rows:2 ~cols:2 dep in
  let r = Dp_stats.Contingency.chi_square_independence t in
  Alcotest.(check bool) "dependent rejected" true (r.Dp_stats.Gof.p_value < 1e-10);
  (* MI: zero iff independent (in expectation), log 2 for the copy *)
  check_close ~tol:0.01 "copy MI" (log 2.) (Dp_stats.Contingency.mutual_information t)

let test_contingency_noising () =
  let t = Dp_stats.Contingency.of_pairs ~rows:2 ~cols:2 [| (0, 0); (1, 1) |] in
  let noisy = Dp_stats.Contingency.map_counts (fun c -> c -. 5.) t in
  (* negatives clamped *)
  Alcotest.(check bool) "clamped" true
    (Array.for_all (Array.for_all (fun c -> c >= 0.)) noisy.Dp_stats.Contingency.counts)

(* ------------------------------------------------------------------ *)
(* Smooth sensitivity *)

let test_smooth_sensitivity_concentrated () =
  (* tightly concentrated data: smooth sensitivity far below range *)
  let xs = Array.init 101 (fun i -> 500. +. (0.1 *. float_of_int (i - 50))) in
  let s =
    Dp_mechanism.Smooth_sensitivity.median_smooth_sensitivity ~beta:(1. /. 6.)
      ~lo:0. ~hi:1000. xs
  in
  Alcotest.(check bool) (Printf.sprintf "S=%.2f small" s) true (s < 50.);
  (* but never below the local sensitivity at distance 0 *)
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let ls0 =
    Dp_mechanism.Smooth_sensitivity.median_local_sensitivity_at_distance
      ~lo:0. ~hi:1000. ~sorted 0
  in
  Alcotest.(check bool) "S >= LS(0)" true (s >= ls0 -. 1e-12)

let test_smooth_sensitivity_monotone_in_beta () =
  let g = Dp_rng.Prng.create 2 in
  let xs = Array.init 51 (fun _ -> Dp_rng.Sampler.uniform ~lo:400. ~hi:600. g) in
  let s b =
    Dp_mechanism.Smooth_sensitivity.median_smooth_sensitivity ~beta:b ~lo:0.
      ~hi:1000. xs
  in
  (* larger beta discounts far databases more: S decreases *)
  Alcotest.(check bool) "monotone" true (s 1. <= s 0.01 +. 1e-9)

let test_smooth_sensitivity_worst_case () =
  (* adversarial data (all at lo): the median can be dragged to hi in
     ~n/2 steps, so S ~ range * e^{-beta n/2}; still finite and the
     mechanism runs *)
  let xs = Array.make 21 0. in
  let s =
    Dp_mechanism.Smooth_sensitivity.median_smooth_sensitivity ~beta:0.5 ~lo:0.
      ~hi:1000. xs
  in
  Alcotest.(check bool) "finite" true (Float.is_finite s && s > 0.)

let test_private_median_utility () =
  let g = Dp_rng.Prng.create 3 in
  let xs =
    Array.init 201 (fun _ -> 500. +. Dp_rng.Sampler.gaussian ~mean:0. ~std:10. g)
  in
  let truth = Dp_stats.Describe.median xs in
  let errs =
    Array.init 200 (fun _ ->
        Float.abs
          (Dp_mechanism.Smooth_sensitivity.private_median ~epsilon:2. ~lo:0.
             ~hi:1000. xs g
          -. truth))
  in
  (* median error small despite the 1000-wide domain *)
  let med_err = Dp_stats.Describe.median errs in
  Alcotest.(check bool) (Printf.sprintf "median err %.2f" med_err) true
    (med_err < 20.)

let test_cauchy_sampler () =
  let g = Dp_rng.Prng.create 4 in
  (* median of |Cauchy(1)| is 1 *)
  let xs =
    Array.init 20_000 (fun _ ->
        Float.abs (Dp_mechanism.Smooth_sensitivity.cauchy ~scale:1. g))
  in
  let med = Dp_stats.Describe.median xs in
  if Float.abs (med -. 1.) > 0.05 then Alcotest.failf "cauchy median %g" med

(* ------------------------------------------------------------------ *)
(* Synthetic release *)

let make_data seed n =
  let g = Dp_rng.Prng.create seed in
  Dp_dataset.Dataset.clip_rows_l2 ~radius:1.
    (Dp_dataset.Synthetic.two_gaussians ~separation:2.5 ~std:1. ~dim:2 ~n g)

let test_synthetic_shapes_and_ranges () =
  let g = Dp_rng.Prng.create 5 in
  let d = make_data 6 500 in
  let model, budget =
    Dp_learn.Synthetic_release.fit ~epsilon:5. ~lo:(-1.) ~hi:1. d g
  in
  check_close "budget" 5. budget.Dp_mechanism.Privacy.epsilon;
  let synth = Dp_learn.Synthetic_release.sample_dataset model ~n:300 g in
  Alcotest.(check int) "size" 300 (Dp_dataset.Dataset.size synth);
  Alcotest.(check int) "dim" 2 (Dp_dataset.Dataset.dim synth);
  Array.iter
    (fun row ->
      Array.iter
        (fun v -> Alcotest.(check bool) "in range" true (v >= -1. && v <= 1.))
        row)
    synth.Dp_dataset.Dataset.features;
  Array.iter
    (fun y -> Alcotest.(check bool) "labels" true (y = 1. || y = -1.))
    synth.Dp_dataset.Dataset.labels;
  let bal = Dp_learn.Synthetic_release.class_balance model in
  Alcotest.(check bool) "balance near 1/2" true (bal > 0.3 && bal < 0.7)

let test_synthetic_preserves_task () =
  let g = Dp_rng.Prng.create 7 in
  let train = make_data 8 5000 and test = make_data 9 3000 in
  let model, _ =
    Dp_learn.Synthetic_release.fit ~epsilon:5. ~bins:12 ~lo:(-1.) ~hi:1. train g
  in
  let synth = Dp_learn.Synthetic_release.sample_dataset model ~n:5000 g in
  let m = Dp_learn.Erm.train ~lambda:1e-3 ~loss:Dp_learn.Loss_fn.logistic synth in
  let acc = Dp_learn.Erm.accuracy m.Dp_learn.Erm.theta test in
  Alcotest.(check bool) (Printf.sprintf "synthetic acc %.3f" acc) true (acc > 0.8)

let test_synthetic_noise_degrades () =
  let g = Dp_rng.Prng.create 10 in
  let train = make_data 11 300 in
  let fidelity eps =
    (* L1 distance between real and synthetic label-conditional means *)
    let model, _ =
      Dp_learn.Synthetic_release.fit ~epsilon:eps ~lo:(-1.) ~hi:1. train g
    in
    let synth = Dp_learn.Synthetic_release.sample_dataset model ~n:3000 g in
    let mean_of d y =
      let sel = ref [] in
      for i = 0 to Dp_dataset.Dataset.size d - 1 do
        let x, y' = Dp_dataset.Dataset.row d i in
        if y' = y then sel := x.(0) :: !sel
      done;
      Dp_math.Summation.mean (Array.of_list !sel)
    in
    Float.abs (mean_of train 1. -. mean_of synth 1.)
  in
  let good = Dp_math.Summation.mean (Array.init 5 (fun _ -> fidelity 20.)) in
  let bad = Dp_math.Summation.mean (Array.init 5 (fun _ -> fidelity 0.02)) in
  Alcotest.(check bool)
    (Printf.sprintf "fidelity degrades (%.3f vs %.3f)" good bad)
    true (good < bad)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"contingency MI nonnegative" ~count:100
      (make
         Gen.(
           array_size (int_range 2 60)
             (pair (int_range 0 1) (int_range 0 2))))
      (fun pairs ->
        let t = Dp_stats.Contingency.of_pairs ~rows:2 ~cols:3 pairs in
        Dp_stats.Contingency.mutual_information t >= 0.);
    Test.make ~name:"smooth sensitivity between LS(0) and range" ~count:100
      (pair (int_range 0 1000) (int_range 5 60))
      (fun (seed, n) ->
        let g = Dp_rng.Prng.create seed in
        let xs = Array.init n (fun _ -> Dp_rng.Sampler.uniform ~lo:0. ~hi:10. g) in
        let s =
          Dp_mechanism.Smooth_sensitivity.median_smooth_sensitivity ~beta:0.2
            ~lo:0. ~hi:10. xs
        in
        s >= 0. && s <= 10.);
    Test.make ~name:"synthetic sample dataset size and labels" ~count:20
      (int_range 0 1000)
      (fun seed ->
        let g = Dp_rng.Prng.create seed in
        let d = make_data seed 100 in
        let model, _ =
          Dp_learn.Synthetic_release.fit ~epsilon:1. ~lo:(-1.) ~hi:1. d g
        in
        let s = Dp_learn.Synthetic_release.sample_dataset model ~n:50 g in
        Dp_dataset.Dataset.size s = 50
        && Array.for_all
             (fun y -> y = 1. || y = -1.)
             s.Dp_dataset.Dataset.labels);
  ]

let () =
  Alcotest.run "dp_release"
    [
      ( "contingency",
        [
          Alcotest.test_case "basics" `Quick test_contingency_basics;
          Alcotest.test_case "chi-square independence" `Quick
            test_chi_square_independence;
          Alcotest.test_case "noising" `Quick test_contingency_noising;
        ] );
      ( "smooth sensitivity",
        [
          Alcotest.test_case "concentrated data" `Quick
            test_smooth_sensitivity_concentrated;
          Alcotest.test_case "monotone in beta" `Quick
            test_smooth_sensitivity_monotone_in_beta;
          Alcotest.test_case "worst case" `Quick test_smooth_sensitivity_worst_case;
          Alcotest.test_case "private median utility" `Quick
            test_private_median_utility;
          Alcotest.test_case "cauchy sampler" `Quick test_cauchy_sampler;
        ] );
      ( "synthetic release",
        [
          Alcotest.test_case "shapes & ranges" `Quick
            test_synthetic_shapes_and_ranges;
          Alcotest.test_case "preserves the task" `Slow
            test_synthetic_preserves_task;
          Alcotest.test_case "noise degrades fidelity" `Slow
            test_synthetic_noise_degrades;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
