open Dp_rng

let check_close ?(tol = 1e-9) msg expected actual =
  if not (Dp_math.Numeric.approx_equal ~rel_tol:tol ~abs_tol:tol expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let moments draw n g =
  let xs = Array.init n (fun _ -> draw g) in
  let m = Dp_math.Summation.mean xs in
  let v =
    Dp_math.Summation.sum_map (fun x -> Dp_math.Numeric.sq (x -. m)) xs
    /. float_of_int (n - 1)
  in
  (m, v)

(* Monte-Carlo tolerance: with n = 100_000 draws the standard error of
   the mean is sigma/sqrt(n); we allow five standard errors. *)
let mc_n = 100_000

let check_moment msg ~expected ~std actual =
  let se = 5. *. std /. sqrt (float_of_int mc_n) in
  if Float.abs (actual -. expected) > se then
    Alcotest.failf "%s: expected %g +- %g, got %g" msg expected se actual

(* ------------------------------------------------------------------ *)

let test_determinism () =
  let g1 = Prng.create 42 and g2 = Prng.create 42 in
  for i = 1 to 100 do
    if Prng.uint64 g1 <> Prng.uint64 g2 then
      Alcotest.failf "streams diverged at step %d" i
  done;
  let g3 = Prng.create 43 in
  Alcotest.(check bool)
    "different seeds differ" true
    (Prng.uint64 (Prng.create 42) <> Prng.uint64 g3)

let test_copy_and_split () =
  let g = Prng.create 7 in
  ignore (Prng.uint64 g);
  let c = Prng.copy g in
  Alcotest.(check bool) "copy continues identically" true
    (Prng.uint64 g = Prng.uint64 c);
  let g = Prng.create 7 in
  let child = Prng.split g in
  (* Child and parent should not produce the same next values. *)
  Alcotest.(check bool) "split independent" true
    (Prng.uint64 child <> Prng.uint64 g)

let test_float_range () =
  let g = Prng.create 1 in
  for _ = 1 to 10_000 do
    let u = Prng.float g in
    if u < 0. || u >= 1. then Alcotest.failf "float out of range: %g" u
  done;
  let g = Prng.create 2 in
  for _ = 1 to 10_000 do
    let u = Prng.float_pos g in
    if u <= 0. || u >= 1. then Alcotest.failf "float_pos out of range: %g" u
  done

let test_int_uniformity () =
  let g = Prng.create 3 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Prng.int g 10 in
    counts.(i) <- counts.(i) + 1
  done;
  (* chi-square with 9 dof; 99.9% quantile ~ 27.9 *)
  let expected = float_of_int n /. 10. in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        acc +. (Dp_math.Numeric.sq (float_of_int c -. expected) /. expected))
      0. counts
  in
  if chi2 > 27.9 then Alcotest.failf "chi2 too large: %g" chi2

let test_uniform_moments () =
  let g = Prng.create 11 in
  let m, v = moments (fun g -> Sampler.uniform ~lo:2. ~hi:6. g) mc_n g in
  check_moment "uniform mean" ~expected:4. ~std:(4. /. sqrt 12.) m;
  check_close ~tol:0.05 "uniform var" (16. /. 12.) v

let test_laplace_moments () =
  let g = Prng.create 12 in
  let b = 2.0 in
  let m, v = moments (fun g -> Sampler.laplace ~mean:1. ~scale:b g) mc_n g in
  check_moment "laplace mean" ~expected:1. ~std:(b *. sqrt 2.) m;
  (* var = 2b^2 = 8 *)
  if Float.abs (v -. 8.) > 0.4 then Alcotest.failf "laplace var: %g" v

let test_gaussian_moments () =
  let g = Prng.create 13 in
  let m, v = moments (fun g -> Sampler.gaussian ~mean:(-2.) ~std:3. g) mc_n g in
  check_moment "gaussian mean" ~expected:(-2.) ~std:3. m;
  if Float.abs (v -. 9.) > 0.4 then Alcotest.failf "gaussian var: %g" v;
  check_close "zero std" 5. (Sampler.gaussian ~mean:5. ~std:0. g)

let test_exponential_gamma () =
  let g = Prng.create 14 in
  let m, v = moments (fun g -> Sampler.exponential ~rate:2. g) mc_n g in
  check_moment "exponential mean" ~expected:0.5 ~std:0.5 m;
  if Float.abs (v -. 0.25) > 0.05 then Alcotest.failf "exponential var: %g" v;
  let m, v = moments (fun g -> Sampler.gamma ~shape:3. ~scale:2. g) mc_n g in
  check_moment "gamma mean" ~expected:6. ~std:(sqrt 12.) m;
  if Float.abs (v -. 12.) > 1.5 then Alcotest.failf "gamma var: %g" v;
  (* shape < 1 branch *)
  let m, _ = moments (fun g -> Sampler.gamma ~shape:0.5 ~scale:1. g) mc_n g in
  check_moment "gamma(0.5) mean" ~expected:0.5 ~std:(sqrt 0.5) m

let test_beta_dirichlet () =
  let g = Prng.create 15 in
  let m, v = moments (fun g -> Sampler.beta ~a:2. ~b:3. g) mc_n g in
  check_moment "beta mean" ~expected:0.4 ~std:0.3 m;
  let expected_var = 2. *. 3. /. (25. *. 6.) in
  if Float.abs (v -. expected_var) > 0.01 then Alcotest.failf "beta var: %g" v;
  let d = Sampler.dirichlet ~alpha:[| 1.; 2.; 3. |] g in
  check_close ~tol:1e-9 "dirichlet sums to 1" 1. (Dp_math.Summation.sum d);
  Alcotest.(check bool) "dirichlet nonneg" true (Array.for_all (fun x -> x >= 0.) d)

let test_bernoulli_binomial_geometric () =
  let g = Prng.create 16 in
  let count = ref 0 in
  for _ = 1 to mc_n do
    if Sampler.bernoulli ~p:0.3 g then incr count
  done;
  check_moment "bernoulli p" ~expected:0.3
    ~std:(sqrt (0.3 *. 0.7))
    (float_of_int !count /. float_of_int mc_n);
  let m, _ =
    moments (fun g -> float_of_int (Sampler.binomial ~n:10 ~p:0.4 g)) mc_n g
  in
  check_moment "binomial mean" ~expected:4. ~std:(sqrt 2.4) m;
  let m, _ =
    moments (fun g -> float_of_int (Sampler.geometric ~p:0.25 g)) mc_n g
  in
  check_moment "geometric mean" ~expected:3. ~std:(sqrt (0.75 /. (0.25 *. 0.25))) m

let test_discrete_laplace () =
  let g = Prng.create 17 in
  let scale = 1.5 in
  let m, v =
    moments (fun g -> float_of_int (Sampler.discrete_laplace ~scale g)) mc_n g
  in
  (* symmetric: mean 0; variance = 2q/(1-q)^2 with q = exp(-1/scale). *)
  let q = exp (-1. /. scale) in
  let expected_var = 2. *. q /. Dp_math.Numeric.sq (1. -. q) in
  check_moment "discrete laplace mean" ~expected:0. ~std:(sqrt expected_var) m;
  if Float.abs (v -. expected_var) > 0.2 *. expected_var then
    Alcotest.failf "discrete laplace var: %g vs %g" v expected_var

let test_categorical () =
  let g = Prng.create 18 in
  let probs = [| 0.1; 0.2; 0.3; 0.4 |] in
  let counts = Array.make 4 0 in
  for _ = 1 to mc_n do
    let i = Sampler.categorical ~probs g in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i p ->
      check_moment
        (Printf.sprintf "categorical p%d" i)
        ~expected:p
        ~std:(sqrt (p *. (1. -. p)))
        (float_of_int counts.(i) /. float_of_int mc_n))
    probs;
  (* Gumbel-max on matching log-weights must agree in distribution. *)
  let lw = Array.map log probs in
  let counts = Array.make 4 0 in
  for _ = 1 to mc_n do
    let i = Sampler.categorical_log ~log_weights:lw g in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i p ->
      check_moment
        (Printf.sprintf "gumbel p%d" i)
        ~expected:p
        ~std:(sqrt (p *. (1. -. p)))
        (float_of_int counts.(i) /. float_of_int mc_n))
    probs

let test_alias () =
  let g = Prng.create 19 in
  let weights = [| 1.; 2.; 3.; 4. |] in
  let t = Alias.create weights in
  Alcotest.(check int) "size" 4 (Alias.size t);
  check_close "prob" 0.4 (Alias.probability t 3);
  let counts = Array.make 4 0 in
  for _ = 1 to mc_n do
    let i = Alias.sample t g in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i w ->
      let p = w /. 10. in
      check_moment
        (Printf.sprintf "alias p%d" i)
        ~expected:p
        ~std:(sqrt (p *. (1. -. p)))
        (float_of_int counts.(i) /. float_of_int mc_n))
    weights;
  (* log-weight construction at extreme scale *)
  let t = Alias.of_log_weights [| -1000.; -1000. +. log 3. |] in
  check_close ~tol:1e-9 "log weights" 0.75 (Alias.probability t 1);
  try
    ignore (Alias.create [| 0.; 0. |]);
    Alcotest.fail "alias accepted all-zero"
  with Invalid_argument _ -> ()

let test_laplace_vector () =
  let g = Prng.create 20 in
  let dim = 3 and scale = 0.5 in
  (* E ||x||_2 = dim * scale for the Gamma(dim, scale) radius. *)
  let n = 20_000 in
  let mean_norm =
    Dp_math.Summation.mean
      (Array.init n (fun _ ->
           let v = Sampler.laplace_vector_l2 ~dim ~scale g in
           Dp_math.Summation.sum_map (fun x -> x *. x) v |> sqrt))
  in
  if Float.abs (mean_norm -. 1.5) > 0.05 then
    Alcotest.failf "laplace vector mean norm: %g" mean_norm;
  (* Direction uniformity: each coordinate has mean 0. *)
  let sums = Array.make dim 0. in
  for _ = 1 to n do
    let v = Sampler.laplace_vector_l2 ~dim ~scale g in
    Array.iteri (fun i x -> sums.(i) <- sums.(i) +. x) v
  done;
  Array.iteri
    (fun i s ->
      if Float.abs (s /. float_of_int n) > 0.05 then
        Alcotest.failf "coordinate %d biased: %g" i (s /. float_of_int n))
    sums

let test_shuffle_swor () =
  let g = Prng.create 21 in
  let a = Array.init 10 Fun.id in
  Sampler.shuffle a g;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 10 Fun.id) sorted;
  let s = Sampler.sample_without_replacement ~k:5 20 g in
  Alcotest.(check int) "k elements" 5 (Array.length s);
  let module IS = Set.Make (Int) in
  Alcotest.(check int) "distinct" 5 (IS.cardinal (IS.of_list (Array.to_list s)));
  Array.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 20)) s

let test_ks_uniform () =
  (* Kolmogorov–Smirnov on the raw uniform: D_n * sqrt(n) should be
     below the 0.999 quantile (~1.95) for a correct generator. *)
  let g = Prng.create 22 in
  let n = 10_000 in
  let xs = Array.init n (fun _ -> Prng.float g) in
  Array.sort compare xs;
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let ecdf_hi = float_of_int (i + 1) /. float_of_int n in
      let ecdf_lo = float_of_int i /. float_of_int n in
      d := Float.max !d (Float.max (Float.abs (ecdf_hi -. x)) (Float.abs (x -. ecdf_lo))))
    xs;
  let stat = !d *. sqrt (float_of_int n) in
  if stat > 1.95 then Alcotest.failf "KS statistic too large: %g" stat

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Prng.int in range" ~count:500
      (pair (int_range 0 10_000) (int_range 1 1000))
      (fun (seed, n) ->
        let g = Prng.create seed in
        let v = Prng.int g n in
        v >= 0 && v < n);
    Test.make ~name:"laplace symmetric around mean (median check)" ~count:50
      (int_range 0 1000)
      (fun seed ->
        let g = Prng.create seed in
        let above = ref 0 in
        let n = 2000 in
        for _ = 1 to n do
          if Sampler.laplace ~mean:3. ~scale:1. g > 3. then incr above
        done;
        (* crude binomial bound: within 5 sigma of n/2 *)
        Float.abs (float_of_int !above -. 1000.) < 5. *. sqrt (2000. *. 0.25));
    Test.make ~name:"alias probabilities normalize" ~count:200
      (array_of_size (Gen.int_range 1 30) (float_range 0.01 10.))
      (fun w ->
        let t = Alias.create w in
        let total =
          Dp_math.Summation.sum
            (Array.init (Alias.size t) (Alias.probability t))
        in
        Dp_math.Numeric.approx_equal ~rel_tol:1e-9 1. total);
    Test.make ~name:"sample_without_replacement distinct" ~count:200
      (pair (int_range 0 1000) (int_range 1 50))
      (fun (seed, n) ->
        let g = Prng.create seed in
        let k = 1 + (n / 2) in
        let s = Sampler.sample_without_replacement ~k n g in
        let module IS = Set.Make (Int) in
        IS.cardinal (IS.of_list (Array.to_list s)) = k);
  ]

let () =
  Alcotest.run "dp_rng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "copy & split" `Quick test_copy_and_split;
          Alcotest.test_case "float ranges" `Quick test_float_range;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "KS uniformity" `Quick test_ks_uniform;
        ] );
      ( "samplers",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_moments;
          Alcotest.test_case "laplace" `Quick test_laplace_moments;
          Alcotest.test_case "gaussian" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential & gamma" `Quick test_exponential_gamma;
          Alcotest.test_case "beta & dirichlet" `Quick test_beta_dirichlet;
          Alcotest.test_case "discrete families" `Quick
            test_bernoulli_binomial_geometric;
          Alcotest.test_case "discrete laplace" `Quick test_discrete_laplace;
          Alcotest.test_case "categorical & gumbel" `Quick test_categorical;
          Alcotest.test_case "alias method" `Quick test_alias;
          Alcotest.test_case "laplace vector" `Quick test_laplace_vector;
          Alcotest.test_case "shuffle & SWOR" `Quick test_shuffle_swor;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
