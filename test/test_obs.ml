(* Tests for the observability subsystem: log-bucketed histograms,
   metric registry, span tracing, the dump/parse wire format, and the
   engine integration — including the leakage-safety invariant that a
   metrics dump never carries query arguments or released values. *)

open Dp_engine
open Dp_mechanism
open Dp_obs

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let demo_policy ?(cache = true) () =
  {
    (Registry.default_policy ~total:(Privacy.pure 1.)) with
    Registry.cache;
    default_epsilon = 0.1;
  }

let demo_engine ?obs () =
  let eng = Engine.create ~seed:7 ?obs () in
  (match
     Engine.register_synthetic eng ~name:"demo" ~rows:500
       ~policy:(demo_policy ())
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "register_synthetic: %s" msg);
  eng

let submit_ok eng text =
  match Engine.submit_text eng ~dataset:"demo" text with
  | Ok r -> r
  | Error e -> Alcotest.failf "submit %S: %a" text Engine.pp_error e

(* ------------------------------------------------------------------ *)
(* Histograms *)

let test_histo_basics () =
  let h = Histo.create () in
  Alcotest.(check int) "empty count" 0 (Histo.count h);
  Alcotest.(check (float 0.)) "empty quantile" 0. (Histo.quantile h 0.5);
  List.iter (Histo.record h) [ 0; 1; 3; 100; 100_000; -5 ];
  Alcotest.(check int) "count" 6 (Histo.count h);
  Alcotest.(check int) "sum" 100_104 (Histo.sum h);
  Alcotest.(check int) "min clamps negatives" 0 (Histo.min_value h);
  Alcotest.(check int) "max" 100_000 (Histo.max_value h);
  Alcotest.(check (float 1e-9)) "mean" (100_104. /. 6.) (Histo.mean h);
  Alcotest.(check int)
    "bucket counts total the count" (Histo.count h)
    (Array.fold_left ( + ) 0 (Histo.buckets h));
  (* bucket b covers [2^b, 2^(b+1)): quantiles are within 2x truth *)
  let q = Histo.quantile h 1.0 in
  Alcotest.(check bool)
    "p100 within a factor of 2 of the true max" true
    (q >= 65536. && q <= 200_000.);
  Histo.reset h;
  Alcotest.(check int) "reset clears" 0 (Histo.count h)

let test_histo_export_roundtrip () =
  let h = Histo.create () in
  List.iter (Histo.record h) [ 1; 2; 7; 7; 4096; 123_456_789 ];
  let rebuilt =
    Histo.of_buckets ~count:(Histo.count h) ~sum:(Histo.sum h)
      ~min_v:(Histo.min_value h) ~max_v:(Histo.max_value h) (Histo.nonzero h)
  in
  Alcotest.(check bool) "of_buckets inverts nonzero" true (Histo.equal h rebuilt)

(* The three seeded properties from the issue, as qcheck tests. *)
let qcheck_tests =
  let open QCheck in
  let obs_list = list_of_size (Gen.int_range 0 200) (int_bound 1_000_000) in
  let of_list vs =
    let h = Histo.create () in
    List.iter (Histo.record h) vs;
    h
  in
  [
    Test.make ~name:"histo: bucket counts sum to count" ~count:300 obs_list
      (fun vs ->
        let h = of_list vs in
        Array.fold_left ( + ) 0 (Histo.buckets h) = Histo.count h
        && Histo.count h = List.length vs);
    Test.make ~name:"histo: quantile is monotone in q" ~count:300
      (pair obs_list (list_of_size (Gen.int_range 2 10) (float_range 0. 1.)))
      (fun (vs, qs) ->
        let h = of_list vs in
        let sorted = List.sort compare qs in
        let est = List.map (Histo.quantile h) sorted in
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b && mono rest
          | _ -> true
        in
        mono est);
    Test.make ~name:"histo: merge equals the concatenated stream" ~count:300
      (pair obs_list obs_list) (fun (a, b) ->
        Histo.equal (Histo.merge (of_list a) (of_list b)) (of_list (a @ b)));
  ]

(* ------------------------------------------------------------------ *)
(* Metric registry *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let g = Metrics.global m in
  let d = Metrics.dataset m "demo" in
  Metrics.incr g Name.Journal_appends;
  Metrics.add g Name.Journal_appends 4;
  Metrics.incr d Name.Queries_answered;
  Alcotest.(check int) "global counter" 5 (Metrics.count g Name.Journal_appends);
  Alcotest.(check int)
    "scopes are isolated" 0
    (Metrics.count d Name.Journal_appends);
  Metrics.set_counter d Name.Queries_answered 42;
  Alcotest.(check int)
    "set_counter overwrites" 42
    (Metrics.count d Name.Queries_answered);
  Metrics.set_gauge d Name.Eps_remaining 0.75;
  Alcotest.(check (float 0.)) "gauge" 0.75 (Metrics.gauge d Name.Eps_remaining);
  Metrics.observe d Name.Plan_ns 1000;
  Metrics.observe d Name.Plan_ns 3000;
  Alcotest.(check int)
    "latency histogram fed" 2
    (Histo.count (Metrics.latency d Name.Plan_ns));
  Alcotest.(check bool)
    "dataset scope listed after global" true
    (List.map Metrics.label (Metrics.scopes m) = [ ""; "demo" ])

let test_metrics_disabled () =
  let m = Metrics.create ~enabled:false () in
  let d = Metrics.dataset m "demo" in
  Metrics.incr d Name.Queries_answered;
  Metrics.set_gauge d Name.Eps_remaining 1.;
  Metrics.observe d Name.Plan_ns 99;
  Alcotest.(check int) "counter no-op" 0 (Metrics.count d Name.Queries_answered);
  Alcotest.(check (float 0.)) "gauge no-op" 0. (Metrics.gauge d Name.Eps_remaining);
  Alcotest.(check int)
    "observe no-op" 0
    (Histo.count (Metrics.latency d Name.Plan_ns));
  Metrics.incr Metrics.null Name.Queries_answered;
  Alcotest.(check int)
    "null sink drops records" 0
    (Metrics.count Metrics.null Name.Queries_answered)

(* ------------------------------------------------------------------ *)
(* Span tracing *)

let test_span_nesting () =
  let t = Span.create () in
  let result =
    Span.with_ t ~dataset:"demo" Name.Sp_submit (fun () ->
        Span.with_ t ~dataset:"demo" Name.Sp_plan (fun () -> ());
        Span.with_ t ~dataset:"demo" Name.Sp_noise (fun () -> 17))
  in
  Alcotest.(check int) "with_ returns the body's value" 17 result;
  Alcotest.(check int) "depth unwinds to 0" 0 (Span.current_depth t);
  match Span.spans t with
  | [ plan; noise; submit ] ->
      (* children finish (and are stored) before their parent *)
      Alcotest.(check string) "inner first" "plan" (Name.span_name plan.Span.name);
      Alcotest.(check string) "then noise" "noise" (Name.span_name noise.Span.name);
      Alcotest.(check string) "parent last" "submit"
        (Name.span_name submit.Span.name);
      Alcotest.(check int) "child depth" 1 plan.Span.depth;
      Alcotest.(check int) "parent depth" 0 submit.Span.depth;
      Alcotest.(check bool) "durations non-negative" true
        (List.for_all (fun s -> s.Span.dur_ns >= 0) [ plan; noise; submit ])
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_span_ring_and_budget () =
  let t = Span.create ~capacity:4 () in
  for i = 1 to 10 do
    let h = Span.begin_ t ~dataset:"demo" Name.Sp_plan in
    Span.tag t h Name.T_attempts (float_of_int i);
    Span.end_ t h
  done;
  Alcotest.(check int) "ring keeps capacity" 4 (List.length (Span.spans t));
  Alcotest.(check int) "total counts all" 10 (Span.total t);
  Alcotest.(check int) "dropped = total - capacity" 6 (Span.dropped t);
  let oldest = List.hd (Span.spans t) in
  Alcotest.(check (list (pair string (float 0.))))
    "oldest surviving span is #7"
    [ ("attempts", 7.) ]
    (List.map (fun (k, v) -> (Name.tag_name k, v)) oldest.Span.tags);
  (* tag budget: excess tags are dropped and counted *)
  let h = Span.begin_ t Name.Sp_recovery in
  for _ = 1 to Span.tag_budget + 3 do
    Span.tag t h Name.T_records 1.
  done;
  Span.end_ t h;
  Alcotest.(check int) "excess tags dropped" 3 (Span.dropped_tags t);
  let last = List.nth (Span.spans t) 3 in
  Alcotest.(check int)
    "span keeps exactly the budget" Span.tag_budget
    (List.length last.Span.tags)

let test_span_disabled () =
  let t = Span.create ~enabled:false () in
  Span.with_ t Name.Sp_submit (fun () -> ());
  let h = Span.begin_ t Name.Sp_plan in
  Span.tag t h Name.T_attempts 1.;
  Span.end_ t h;
  Alcotest.(check int) "disabled tracer stores nothing" 0 (Span.total t);
  Alcotest.(check int) "no spans" 0 (List.length (Span.spans t))

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  let c = Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (a <= b && b <= c);
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed_ns a >= 0)

(* The raw source (gettimeofday, absent clock_gettime in the 4.14
   stdlib) can step backwards under NTP. The guarded integrator must
   absorb the step — contribute zero, never rewind — and resume
   advancing with the next forward delta. *)
let test_clock_backwards_step () =
  let raws = ref [ 1000; 900; 950; 975 ] in
  Clock.set_raw_ns_for_tests
    (Some
       (fun () ->
         match !raws with
         | [] -> 975
         | r :: rest ->
             raws := rest;
             r));
  Fun.protect
    ~finally:(fun () -> Clock.set_raw_ns_for_tests None)
    (fun () ->
      let t0 = Clock.now_ns () in
      let t1 = Clock.now_ns () in
      let t2 = Clock.now_ns () in
      let t3 = Clock.now_ns () in
      Alcotest.(check int) "backwards step contributes zero" t0 t1;
      Alcotest.(check int) "resumes on the next forward delta" (t0 + 50) t2;
      Alcotest.(check int) "keeps integrating" (t0 + 75) t3);
  (* back on the real source: the transition is absorbed as one more
     step, so the reading stays monotone *)
  let t4 = Clock.now_ns () in
  let t5 = Clock.now_ns () in
  Alcotest.(check bool) "monotone across source swap" true (t4 <= t5)

(* ------------------------------------------------------------------ *)
(* Dump / parse wire format *)

let test_export_roundtrip () =
  let m = Metrics.create () in
  let t = Span.create () in
  let d = Metrics.dataset m "demo" in
  Metrics.incr d Name.Queries_answered;
  Metrics.set_gauge d Name.Eps_remaining 0.875;
  Metrics.observe d Name.Submit_ns 1234;
  Span.with_ t ~dataset:"demo" Name.Sp_submit (fun () -> ());
  let lines = Export.dump ~trace:t m in
  Alcotest.(check string) "header line" Export.header (List.hd lines);
  let entries =
    match Export.parse lines with
    | Ok es -> es
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  let count_of = function
    | Export.Counter { scope = "demo"; name = "queries_answered"; value } ->
        Some value
    | _ -> None
  in
  Alcotest.(check (option int))
    "counter survives the roundtrip" (Some 1)
    (List.find_map count_of entries);
  let gauge_of = function
    | Export.Gauge { scope = "demo"; name = "eps_remaining"; value } ->
        Some value
    | _ -> None
  in
  Alcotest.(check (option (float 0.)))
    "gauge survives bit-exactly" (Some 0.875)
    (List.find_map gauge_of entries);
  (match
     List.find_map
       (function
         | Export.Latency { scope = "demo"; name = "submit_ns"; count; sum; _ }
           ->
             Some (count, sum)
         | _ -> None)
       entries
   with
  | Some (c, s) ->
      Alcotest.(check (pair int int)) "latency count/sum" (1, 1234) (c, s)
  | None -> Alcotest.fail "submit_ns latency line missing");
  (match
     List.find_map
       (function
         | Export.Span { scope = "demo"; name = "submit"; depth; _ } ->
             Some depth
         | _ -> None)
       entries
   with
  | Some depth -> Alcotest.(check int) "span line parsed" 0 depth
  | None -> Alcotest.fail "span line missing");
  (* renderers accept everything the parser produced *)
  Alcotest.(check bool)
    "pretty renders" true
    (List.length (Export.pretty entries) > 0);
  Alcotest.(check bool)
    "json renders" true
    (contains ~sub:"\"version\":1" (Export.to_json entries))

let test_export_rejects_garbage () =
  (match Export.parse [ "not-the-header" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a dump without the version header");
  match Export.parse_line "frobnicate demo x 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown entry kind"

(* ------------------------------------------------------------------ *)
(* Engine integration *)

let test_engine_metrics_agree_with_report () =
  let eng = demo_engine () in
  ignore (submit_ok eng "count");
  ignore (submit_ok eng "mean(income)");
  ignore (submit_ok eng "count") (* cache hit *);
  (match Engine.submit_text eng ~dataset:"nope" "count" with
  | Error (Engine.Unknown_dataset _) -> ()
  | _ -> Alcotest.fail "unknown dataset must be rejected");
  Engine.refresh_metrics eng;
  let d = Metrics.dataset (Engine.metrics eng) "demo" in
  let report =
    match Engine.report eng ~dataset:"demo" with
    | Ok r -> r
    | Error e -> Alcotest.failf "report: %a" Engine.pp_error e
  in
  Alcotest.(check int)
    "answered counter mirrors the report" report.Engine.answered
    (Metrics.count d Name.Queries_answered);
  Alcotest.(check int)
    "cache hits mirror the report" report.Engine.cache_hits
    (Metrics.count d Name.Cache_hits);
  Alcotest.(check (float 1e-12))
    "eps_spent gauge mirrors the ledger" report.Engine.spent.Privacy.epsilon
    (Metrics.gauge d Name.Eps_spent);
  Alcotest.(check (float 1e-12))
    "eps_remaining gauge mirrors the ledger"
    report.Engine.remaining.Privacy.epsilon
    (Metrics.gauge d Name.Eps_remaining);
  (* the two uncached submits each drew noise *)
  let g = Metrics.global (Engine.metrics eng) in
  let draws =
    Array.fold_left
      (fun acc c -> acc + Metrics.count g c)
      0
      [| Name.Draws_laplace; Name.Draws_geometric; Name.Draws_gaussian;
         Name.Draws_discrete_gaussian; Name.Draws_exponential;
         Name.Draws_randomized_response |]
  in
  Alcotest.(check bool) "noise draws counted" true (draws >= 2);
  Alcotest.(check int)
    "submit latency observed per submit" 3
    (Histo.count (Metrics.latency d Name.Submit_ns));
  (* spans: every submit opened one, cache hit included *)
  let submits =
    List.filter
      (fun s -> s.Span.name = Name.Sp_submit)
      (Span.spans (Engine.trace eng))
  in
  Alcotest.(check int) "one submit span per submit" 3 (List.length submits)

let test_engine_obs_off () =
  let eng = demo_engine ~obs:false () in
  ignore (submit_ok eng "count");
  Engine.refresh_metrics eng;
  let d = Metrics.dataset (Engine.metrics eng) "demo" in
  Alcotest.(check int)
    "disabled registry stays empty" 0
    (Metrics.count d Name.Queries_answered);
  Alcotest.(check int)
    "disabled tracer stays empty" 0
    (Span.total (Engine.trace eng));
  match Export.parse (Engine.metrics_lines eng) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "disabled dump must still parse: %s" msg

let test_closed_labels () =
  let eng = demo_engine () in
  ignore (submit_ok eng "count(income>50000)");
  ignore (submit_ok eng "quantile(income,0.5)");
  let lines = Engine.metrics_lines eng in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        "no query column name in the dump" false
        (contains ~sub:"income" line);
      Alcotest.(check bool)
        "no query argument in the dump" false
        (contains ~sub:"50000" line))
    lines;
  let entries =
    match Export.parse lines with
    | Ok es -> es
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  List.iter
    (fun e ->
      let ok, name =
        match e with
        | Export.Counter { name; _ } -> (Name.is_counter_name name, name)
        | Export.Gauge { name; _ } -> (Name.is_gauge_name name, name)
        | Export.Latency { name; _ } -> (Name.is_latency_name name, name)
        | Export.Span { name; tags; _ } ->
            ( Name.is_span_name name
              && List.for_all (fun (k, _) -> Name.is_tag_name k) tags,
              name )
      in
      if not ok then Alcotest.failf "name %S is outside the closed catalogue" name;
      let scope =
        match e with
        | Export.Counter { scope; _ }
        | Export.Gauge { scope; _ }
        | Export.Latency { scope; _ }
        | Export.Span { scope; _ } ->
            scope
      in
      if not (scope = "" || scope = "demo") then
        Alcotest.failf "scope %S is not global or a dataset id" scope)
    entries

let test_protocol_metrics () =
  let eng = demo_engine () in
  ignore (submit_ok eng "count");
  let reply = Protocol.exec eng "metrics" in
  (match reply with
  | ok :: rest ->
      Alcotest.(check bool) "ok header" true (contains ~sub:"ok metrics" ok);
      Alcotest.(check bool)
        "lines= count matches body" true
        (contains ~sub:(Printf.sprintf "lines=%d" (List.length rest)) ok);
      (* the indented body parses back as a dump *)
      (match Export.parse (List.map String.trim rest) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "protocol dump must parse: %s" msg)
  | [] -> Alcotest.fail "metrics reply empty");
  let status = Protocol.exec eng "status" in
  Alcotest.(check bool)
    "status carries hit-rate" true
    (List.exists (contains ~sub:"hit-rate=") status);
  Alcotest.(check bool)
    "status carries remaining eps" true
    (List.exists (contains ~sub:"eps-remaining=") status)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dp_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histo_basics;
          Alcotest.test_case "export roundtrip" `Quick
            test_histo_export_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_metrics_counters;
          Alcotest.test_case "disabled registry" `Quick test_metrics_disabled;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "ring and tag budget" `Quick
            test_span_ring_and_budget;
          Alcotest.test_case "disabled tracer" `Quick test_span_disabled;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotone" `Quick test_clock_monotone;
          Alcotest.test_case "backwards raw step" `Quick
            test_clock_backwards_step;
        ] );
      ( "export",
        [
          Alcotest.test_case "dump/parse roundtrip" `Quick test_export_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_export_rejects_garbage;
        ] );
      ( "engine",
        [
          Alcotest.test_case "metrics agree with report" `Quick
            test_engine_metrics_agree_with_report;
          Alcotest.test_case "obs off" `Quick test_engine_obs_off;
          Alcotest.test_case "closed labels" `Quick test_closed_labels;
          Alcotest.test_case "protocol metrics+status" `Quick
            test_protocol_metrics;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
