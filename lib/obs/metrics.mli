(** Metric registry: counters, gauges, and latency histograms, grouped
    into scopes.

    Scope [""] is the process/engine-global scope; every other scope
    label must be a dataset id from the registry. Metric names are the
    closed enums of {!Name} — there is no way to export a name that is
    not in the catalogue. Record operations ([incr]/[add]/[observe]/
    [set_gauge]) are allocation-free and no-ops on a disabled registry. *)

type t
type scope

val create : ?enabled:bool -> unit -> t
(** New registry; [~enabled:false] makes every scope it hands out a
    no-op sink (for overhead-gate baselines). Default enabled. *)

val enabled : t -> bool

val global : t -> scope
(** The ["" ] scope. *)

val dataset : t -> string -> scope
(** Get-or-create the scope for a dataset id. Call once per dataset at
    registration time, not on the hot path. The label MUST be a dataset
    id — never a string derived from a query payload or a released
    value (lint rule R7). *)

val scope : t -> string -> scope
(** Alias of {!dataset}; same labelling contract. *)

val null : scope
(** A permanently-disabled sink scope for instrumented code with no
    registry attached; all records are dropped. *)

val scopes : t -> scope list
(** Global scope first, then dataset scopes in creation order. *)

val label : scope -> string
val live : scope -> bool

val incr : scope -> Name.counter -> unit
val add : scope -> Name.counter -> int -> unit
val set_counter : scope -> Name.counter -> int -> unit
(** [set_counter] overwrites; used to mirror authoritative engine state
    (e.g. answered counts restored by journal recovery) into the
    exported snapshot. *)

val count : scope -> Name.counter -> int
val set_gauge : scope -> Name.gauge -> float -> unit
val gauge : scope -> Name.gauge -> float
val observe : scope -> Name.latency -> int -> unit
(** [observe s l ns] records a latency observation in nanoseconds.
    Allocation-free. *)

val latency : scope -> Name.latency -> Histo.t

val reset : t -> unit
