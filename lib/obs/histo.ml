(* Log2-bucketed latency histogram over non-negative integer
   observations (nanoseconds in practice). Bucket b holds values in
   [2^b, 2^(b+1)) with bucket 0 covering [0, 2); 64 buckets span the
   full int range. Everything is an int in a preallocated array, and the
   record path is a shift loop plus a handful of int stores — no boxing,
   no allocation — so instrumented code pays nanoseconds, not GC. *)

let n_buckets = 64

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0; min = max_int; max = 0 }

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.min <- max_int;
  t.max <- 0

(* floor log2, via int shifts: int refs do not box, float/Int64 paths
   would. *)
let bucket_of v =
  if v < 2 then 0
  else begin
    let x = ref v and b = ref 0 in
    while !x > 1 do
      x := !x lsr 1;
      incr b
    done;
    if !b < n_buckets then !b else n_buckets - 1
  end

let record t v =
  let v = if v > 0 then v else 0 in
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min
let max_value t = t.max
let buckets t = Array.copy t.buckets

let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

(* Midpoint representative of bucket b; strictly increasing in b, which
   is what makes quantile estimates monotone in q by construction. *)
let representative b = if b = 0 then 1. else 1.5 *. (2. ** float_of_int b)

let quantile t q =
  if t.count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let target = int_of_float (ceil (q *. float_of_int t.count)) in
    let target = if target < 1 then 1 else target in
    let rec walk b acc =
      if b >= n_buckets then representative (n_buckets - 1)
      else
        let acc = acc + t.buckets.(b) in
        if acc >= target then representative b else walk (b + 1) acc
    in
    walk 0 0
  end

let merge a b =
  let t = create () in
  for i = 0 to n_buckets - 1 do
    t.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  t.count <- a.count + b.count;
  t.sum <- a.sum + b.sum;
  t.min <- (if a.min < b.min then a.min else b.min);
  t.max <- (if a.max > b.max then a.max else b.max);
  t

(* Observable equality: identical recorded streams (up to reordering)
   compare equal; empty histograms ignore the min sentinel. *)
let equal a b =
  a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min = b.min && a.max = b.max))
  && a.buckets = b.buckets

let of_buckets ~count ~sum ~min_v ~max_v pairs =
  let t = create () in
  List.iter
    (fun (b, n) ->
      if b >= 0 && b < n_buckets && n > 0 then t.buckets.(b) <- t.buckets.(b) + n)
    pairs;
  t.count <- count;
  t.sum <- sum;
  t.min <- (if count = 0 then max_int else min_v);
  t.max <- max_v;
  t

let nonzero t =
  let acc = ref [] in
  for b = n_buckets - 1 downto 0 do
    if t.buckets.(b) > 0 then acc := (b, t.buckets.(b)) :: !acc
  done;
  !acc
