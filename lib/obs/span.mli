(** Lightweight span tracing with a ring-buffer trace store.

    [begin_] starts a span at the current nesting depth; [end_] stamps
    its duration ({!Clock} nanoseconds) and pushes it into a fixed-size
    ring, overwriting the oldest finished span. Tags are
    [Name.tag -> float] pairs, at most {!tag_budget} per span — keys are
    a closed enum and values are numeric, so spans cannot carry query
    payloads or released values. The [dataset] label must be a dataset
    id (lint rule R7). *)

type t
type handle

type span = {
  name : Name.span;
  dataset : string;
  start_ns : int;
  dur_ns : int;
  depth : int; (* nesting depth at begin_ time; 0 = top level *)
  tags : (Name.tag * float) list;
}

val default_capacity : int
val tag_budget : int

val create : ?capacity:int -> ?enabled:bool -> unit -> t

val begin_ : t -> ?dataset:string -> Name.span -> handle
(** Start a span. On a disabled tracer returns a dead handle; [tag] and
    [end_] on it are no-ops. *)

val tag : t -> handle -> Name.tag -> float -> unit
(** Attach a numeric tag; beyond the per-span budget the tag is dropped
    and counted in [dropped_tags]. *)

val end_ : t -> handle -> unit
(** Finish the span and store it in the ring. Calling [end_] twice on
    the same handle stores the span twice — don't. *)

val with_ : t -> ?dataset:string -> Name.span -> (unit -> 'a) -> 'a
(** [with_ t name f] wraps [f] in a span; the span is ended even if [f]
    raises. *)

val spans : t -> span list
(** Finished spans still in the ring, oldest first. *)

val total : t -> int
(** Spans ever finished (including overwritten ones). *)

val dropped : t -> int
(** Finished spans evicted by ring overwrite. *)

val dropped_tags : t -> int
val capacity : t -> int
val current_depth : t -> int
val reset : t -> unit
