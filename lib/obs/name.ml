(* The closed catalogue of everything the observability layer may ever
   export. Metric names, span names, and tag keys are variants of these
   types — there is deliberately no constructor that carries a string, so
   a query argument or a released value cannot become a metric name. The
   only free-form string in the whole subsystem is the scope label, which
   is restricted by convention (and lint rule R7) to dataset ids from the
   registry. *)

type counter =
  | Queries_answered
  | Queries_rejected
  | Queries_withheld
  | Cache_hits
  | Cache_misses
  | Journal_appends
  | Journal_fsyncs
  | Journal_retries
  | Draws_laplace
  | Draws_geometric
  | Draws_gaussian
  | Draws_discrete_gaussian
  | Draws_exponential
  | Draws_randomized_response
  | Net_conns_accepted
  | Net_conns_shed
  | Net_requests
  | Net_requests_shed
  | Net_deadline_closed
  | Net_drained
  | Trains_released
  | Trains_withheld
  | Predicts_served
  | Stream_appends
  | Stream_reads
  | Pool_leases_granted
  | Pool_leases_denied
  | Pool_leases_reclaimed
  | Pool_workers_restarted
  | Pool_grants_journaled

type gauge =
  | Eps_total
  | Eps_spent
  | Eps_remaining
  | Delta_spent
  | Cache_entries
  | Cache_hit_rate
  | Degraded_mode
  | Datasets_serving
  | Journal_attached
  | Mi_bound_nats
  | Capacity_bound_nats
  | Min_entropy_leakage_bits
  | Net_conns_open
  | Net_inflight
  | Models_stored
  | Streams_open
  | Stream_depth
  | Pool_workers
  | Pool_eps_outstanding

type latency =
  | Submit_ns
  | Plan_ns
  | Charge_ns
  | Noise_ns
  | Journal_append_ns
  | Journal_fsync_ns
  | Cache_lookup_ns
  | Meter_ns
  | Recovery_ns
  | Net_accept_to_reply_ns
  | Net_reply_ns
  | Train_ns
  | Gate_ns
  | Predict_ns
  | Append_ns
  | Stream_read_ns

type span =
  | Sp_submit
  | Sp_plan
  | Sp_charge
  | Sp_noise
  | Sp_recovery
  | Sp_train
  | Sp_gate

type tag =
  | T_eps_face
  | T_eps_charged
  | T_cache_hit
  | T_attempts
  | T_records
  | T_chains
  | T_rhat

let n_counters = 30
let n_gauges = 19
let n_latencies = 16

let counter_index = function
  | Queries_answered -> 0
  | Queries_rejected -> 1
  | Queries_withheld -> 2
  | Cache_hits -> 3
  | Cache_misses -> 4
  | Journal_appends -> 5
  | Journal_fsyncs -> 6
  | Journal_retries -> 7
  | Draws_laplace -> 8
  | Draws_geometric -> 9
  | Draws_gaussian -> 10
  | Draws_discrete_gaussian -> 11
  | Draws_exponential -> 12
  | Draws_randomized_response -> 13
  | Net_conns_accepted -> 14
  | Net_conns_shed -> 15
  | Net_requests -> 16
  | Net_requests_shed -> 17
  | Net_deadline_closed -> 18
  | Net_drained -> 19
  | Trains_released -> 20
  | Trains_withheld -> 21
  | Predicts_served -> 22
  | Stream_appends -> 23
  | Stream_reads -> 24
  | Pool_leases_granted -> 25
  | Pool_leases_denied -> 26
  | Pool_leases_reclaimed -> 27
  | Pool_workers_restarted -> 28
  | Pool_grants_journaled -> 29

let gauge_index = function
  | Eps_total -> 0
  | Eps_spent -> 1
  | Eps_remaining -> 2
  | Delta_spent -> 3
  | Cache_entries -> 4
  | Cache_hit_rate -> 5
  | Degraded_mode -> 6
  | Datasets_serving -> 7
  | Journal_attached -> 8
  | Mi_bound_nats -> 9
  | Capacity_bound_nats -> 10
  | Min_entropy_leakage_bits -> 11
  | Net_conns_open -> 12
  | Net_inflight -> 13
  | Models_stored -> 14
  | Streams_open -> 15
  | Stream_depth -> 16
  | Pool_workers -> 17
  | Pool_eps_outstanding -> 18

let latency_index = function
  | Submit_ns -> 0
  | Plan_ns -> 1
  | Charge_ns -> 2
  | Noise_ns -> 3
  | Journal_append_ns -> 4
  | Journal_fsync_ns -> 5
  | Cache_lookup_ns -> 6
  | Meter_ns -> 7
  | Recovery_ns -> 8
  | Net_accept_to_reply_ns -> 9
  | Net_reply_ns -> 10
  | Train_ns -> 11
  | Gate_ns -> 12
  | Predict_ns -> 13
  | Append_ns -> 14
  | Stream_read_ns -> 15

let all_counters =
  [|
    Queries_answered; Queries_rejected; Queries_withheld; Cache_hits;
    Cache_misses; Journal_appends; Journal_fsyncs; Journal_retries;
    Draws_laplace; Draws_geometric; Draws_gaussian; Draws_discrete_gaussian;
    Draws_exponential; Draws_randomized_response; Net_conns_accepted;
    Net_conns_shed; Net_requests; Net_requests_shed; Net_deadline_closed;
    Net_drained; Trains_released; Trains_withheld; Predicts_served;
    Stream_appends; Stream_reads; Pool_leases_granted; Pool_leases_denied;
    Pool_leases_reclaimed; Pool_workers_restarted; Pool_grants_journaled;
  |]

let all_gauges =
  [|
    Eps_total; Eps_spent; Eps_remaining; Delta_spent; Cache_entries;
    Cache_hit_rate; Degraded_mode; Datasets_serving; Journal_attached;
    Mi_bound_nats; Capacity_bound_nats; Min_entropy_leakage_bits;
    Net_conns_open; Net_inflight; Models_stored; Streams_open; Stream_depth;
    Pool_workers; Pool_eps_outstanding;
  |]

let all_latencies =
  [|
    Submit_ns; Plan_ns; Charge_ns; Noise_ns; Journal_append_ns;
    Journal_fsync_ns; Cache_lookup_ns; Meter_ns; Recovery_ns;
    Net_accept_to_reply_ns; Net_reply_ns; Train_ns; Gate_ns; Predict_ns;
    Append_ns; Stream_read_ns;
  |]

let all_spans =
  [| Sp_submit; Sp_plan; Sp_charge; Sp_noise; Sp_recovery; Sp_train; Sp_gate |]

let all_tags =
  [|
    T_eps_face; T_eps_charged; T_cache_hit; T_attempts; T_records; T_chains;
    T_rhat;
  |]

let counter_name = function
  | Queries_answered -> "queries_answered"
  | Queries_rejected -> "queries_rejected"
  | Queries_withheld -> "queries_withheld"
  | Cache_hits -> "cache_hits"
  | Cache_misses -> "cache_misses"
  | Journal_appends -> "journal_appends"
  | Journal_fsyncs -> "journal_fsyncs"
  | Journal_retries -> "journal_retries"
  | Draws_laplace -> "draws_laplace"
  | Draws_geometric -> "draws_geometric"
  | Draws_gaussian -> "draws_gaussian"
  | Draws_discrete_gaussian -> "draws_discrete_gaussian"
  | Draws_exponential -> "draws_exponential"
  | Draws_randomized_response -> "draws_randomized_response"
  | Net_conns_accepted -> "net_conns_accepted"
  | Net_conns_shed -> "net_conns_shed"
  | Net_requests -> "net_requests"
  | Net_requests_shed -> "net_requests_shed"
  | Net_deadline_closed -> "net_deadline_closed"
  | Net_drained -> "net_drained"
  | Trains_released -> "trains_released"
  | Trains_withheld -> "trains_withheld"
  | Predicts_served -> "predicts_served"
  | Stream_appends -> "stream_appends"
  | Stream_reads -> "stream_reads"
  | Pool_leases_granted -> "pool_leases_granted"
  | Pool_leases_denied -> "pool_leases_denied"
  | Pool_leases_reclaimed -> "pool_leases_reclaimed"
  | Pool_workers_restarted -> "pool_workers_restarted"
  | Pool_grants_journaled -> "pool_grants_journaled"

let gauge_name = function
  | Eps_total -> "eps_total"
  | Eps_spent -> "eps_spent"
  | Eps_remaining -> "eps_remaining"
  | Delta_spent -> "delta_spent"
  | Cache_entries -> "cache_entries"
  | Cache_hit_rate -> "cache_hit_rate"
  | Degraded_mode -> "degraded_mode"
  | Datasets_serving -> "datasets_serving"
  | Journal_attached -> "journal_attached"
  | Mi_bound_nats -> "mi_bound_nats"
  | Capacity_bound_nats -> "capacity_bound_nats"
  | Min_entropy_leakage_bits -> "min_entropy_leakage_bits"
  | Net_conns_open -> "net_conns_open"
  | Net_inflight -> "net_inflight"
  | Models_stored -> "models_stored"
  | Streams_open -> "streams_open"
  | Stream_depth -> "stream_depth"
  | Pool_workers -> "pool_workers"
  | Pool_eps_outstanding -> "pool_eps_outstanding"

let latency_name = function
  | Submit_ns -> "submit_ns"
  | Plan_ns -> "plan_ns"
  | Charge_ns -> "charge_ns"
  | Noise_ns -> "noise_ns"
  | Journal_append_ns -> "journal_append_ns"
  | Journal_fsync_ns -> "journal_fsync_ns"
  | Cache_lookup_ns -> "cache_lookup_ns"
  | Meter_ns -> "meter_ns"
  | Recovery_ns -> "recovery_ns"
  | Net_accept_to_reply_ns -> "net_accept_to_reply_ns"
  | Net_reply_ns -> "net_reply_ns"
  | Train_ns -> "train_ns"
  | Gate_ns -> "gate_ns"
  | Predict_ns -> "predict_ns"
  | Append_ns -> "append_ns"
  | Stream_read_ns -> "stream_read_ns"

let span_name = function
  | Sp_submit -> "submit"
  | Sp_plan -> "plan"
  | Sp_charge -> "charge"
  | Sp_noise -> "noise"
  | Sp_recovery -> "recovery"
  | Sp_train -> "train"
  | Sp_gate -> "gate"

let tag_name = function
  | T_eps_face -> "eps_face"
  | T_eps_charged -> "eps_charged"
  | T_cache_hit -> "cache_hit"
  | T_attempts -> "attempts"
  | T_records -> "records"
  | T_chains -> "chains"
  | T_rhat -> "rhat"

let mem arr to_name s = Array.exists (fun v -> to_name v = s) arr

let is_counter_name s = mem all_counters counter_name s
let is_gauge_name s = mem all_gauges gauge_name s
let is_latency_name s = mem all_latencies latency_name s
let is_span_name s = mem all_spans span_name s
let is_tag_name s = mem all_tags tag_name s
