(** Snapshot exporters: machine dump lines, parser, pretty text, JSON.

    The line-oriented dump format (version header ["dpkit-metrics v1"])
    is the single wire format: the serving engine emits it and [dpkit
    stats] parses it back for rendering. Every name/tag token in a dump
    comes from the {!Name} catalogue; scopes are ["-"] (global) or
    dataset ids — the format has no field that could carry a query
    argument or a released value. *)

val header : string

type entry =
  | Counter of { scope : string; name : string; value : int }
  | Gauge of { scope : string; name : string; value : float }
  | Latency of {
      scope : string;
      name : string;
      count : int;
      sum : int;
      min_v : int;
      max_v : int;
      buckets : (int * int) list;
    }
  | Span of {
      scope : string;
      name : string;
      start_ns : int;
      dur_ns : int;
      depth : int;
      tags : (string * float) list;
    }

val dump : ?trace:Span.t -> Metrics.t -> string list
(** Header line followed by one line per counter/gauge, per non-empty
    latency histogram, and (when [trace] is given) per ring-buffered
    span, oldest first. *)

val parse_line : string -> (entry, string) result

val parse : string list -> (entry list, string) result
(** Inverse of [dump]: checks the header, skips blank lines. *)

val pretty : entry list -> string list
(** Human-readable rendering grouped by scope, with quantile summaries
    (p50/p90/p99 via {!Histo.quantile}) for latency entries and an
    indented span listing. *)

val to_json : entry list -> string
(** Single-line JSON document:
    [{"version":1,"scopes":[{"scope":...,"counters":{...},
    "gauges":{...},"latencies":[...]}],"spans":[...]}]. *)
