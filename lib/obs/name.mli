(** The closed catalogue of metric, span, and tag names.

    Every identifier the observability layer can export is a constructor
    below; none carries a string payload. Scope labels (the one free-form
    string, see {!Metrics.dataset}) must be dataset ids from the registry
    — never query arguments or released values. Lint rule R7 enforces the
    call-site side of this contract. *)

type counter =
  | Queries_answered
  | Queries_rejected
  | Queries_withheld
  | Cache_hits
  | Cache_misses
  | Journal_appends
  | Journal_fsyncs
  | Journal_retries
  | Draws_laplace
  | Draws_geometric
  | Draws_gaussian
  | Draws_discrete_gaussian
  | Draws_exponential
  | Draws_randomized_response
  | Net_conns_accepted  (** TCP connections accepted by the frontend *)
  | Net_conns_shed  (** connections refused at accept (over max-conns) *)
  | Net_requests  (** requests executed by the TCP frontend *)
  | Net_requests_shed  (** requests shed by the admission gate *)
  | Net_deadline_closed  (** connections closed by deadline/idle timeout *)
  | Net_drained  (** connections closed by graceful drain *)
  | Trains_released  (** train queries whose model passed the gate *)
  | Trains_withheld  (** train queries charged but withheld (unconverged) *)
  | Predicts_served  (** predictions served (free post-processing) *)
  | Stream_appends  (** stream events accepted (journaled tree updates) *)
  | Stream_reads  (** prefix/window counts released (free post-processing) *)
  | Pool_leases_granted  (** ε-lease grants journaled and acked *)
  | Pool_leases_denied  (** lease requests denied (budget exhausted) *)
  | Pool_leases_reclaimed  (** dead-incarnation leases folded back *)
  | Pool_workers_restarted  (** worker respawns after a crash/lease loss *)
  | Pool_grants_journaled  (** grant-WAL appends (grants + reclaims) *)

type gauge =
  | Eps_total
  | Eps_spent
  | Eps_remaining
  | Delta_spent
  | Cache_entries
  | Cache_hit_rate
  | Degraded_mode
  | Datasets_serving
  | Journal_attached
  | Mi_bound_nats
  | Capacity_bound_nats
  | Min_entropy_leakage_bits
  | Net_conns_open
  | Net_inflight  (** queued requests + unflushed replies (queue depth) *)
  | Models_stored  (** model handles held (released + withheld) *)
  | Streams_open  (** stream handles held *)
  | Stream_depth  (** deepest tree (levels) over open streams *)
  | Pool_workers  (** configured worker shard count *)
  | Pool_eps_outstanding  (** Σ leased-but-unreclaimed ε across shards *)

type latency =
  | Submit_ns
  | Plan_ns
  | Charge_ns
  | Noise_ns
  | Journal_append_ns
  | Journal_fsync_ns
  | Cache_lookup_ns
  | Meter_ns
  | Recovery_ns
  | Net_accept_to_reply_ns  (** accept to first fully-written reply *)
  | Net_reply_ns  (** request completely read to reply fully written *)
  | Train_ns  (** whole train request: charge, chains, gate, journal *)
  | Gate_ns  (** convergence diagnostics alone *)
  | Predict_ns
  | Append_ns  (** whole append: tree update, noise, journal frame *)
  | Stream_read_ns  (** prefix/window release (post-processing only) *)

type span =
  | Sp_submit
  | Sp_plan
  | Sp_charge
  | Sp_noise
  | Sp_recovery
  | Sp_train
  | Sp_gate

type tag =
  | T_eps_face
  | T_eps_charged
  | T_cache_hit
  | T_attempts
  | T_records
  | T_chains
  | T_rhat

val n_counters : int
val n_gauges : int
val n_latencies : int

(** Dense indices, [0 .. n_* - 1]; back the flat metric arrays. *)

val counter_index : counter -> int
val gauge_index : gauge -> int
val latency_index : latency -> int

val all_counters : counter array
val all_gauges : gauge array
val all_latencies : latency array
val all_spans : span array
val all_tags : tag array

(** Wire names, stable across releases; ASCII [a-z_] only. *)

val counter_name : counter -> string
val gauge_name : gauge -> string
val latency_name : latency -> string
val span_name : span -> string
val tag_name : tag -> string

(** Membership tests for the closed-label invariant (used by [dpkit
    stats] validation and the test suite). *)

val is_counter_name : string -> bool
val is_gauge_name : string -> bool
val is_latency_name : string -> bool
val is_span_name : string -> bool
val is_tag_name : string -> bool
