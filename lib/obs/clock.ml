(* Monotone-clamped nanosecond clock. Stdlib 4.14 exposes no monotonic
   clock and adding a dependency is off the table, so we take
   gettimeofday and clamp it to be non-decreasing within the process;
   good enough for latency histograms, and elapsed_ns can never go
   negative. *)

let last = ref 0

let now_ns () =
  let n = int_of_float (Unix.gettimeofday () *. 1e9) in
  let n = if n > !last then n else !last in
  last := n;
  n

let elapsed_ns t0 =
  let d = now_ns () - t0 in
  if d > 0 then d else 0
