(* Monotonic nanosecond clock built from a steppable wall clock.

   Stdlib 4.14's Unix exposes no clock_gettime(CLOCK_MONOTONIC) and
   adding Mtime is off the table, so monotonicity is reconstructed from
   gettimeofday by integrating only the *forward* deltas between
   consecutive readings: a backwards wall-clock step (NTP slew, manual
   reset) contributes zero instead of a negative delta, and — unlike the
   old max-clamp, which froze the clock until wall time caught back up —
   the very next forward delta advances the monotonic value again. Both
   latency histograms and the network frontend's request deadlines keep
   ticking across a step. *)

(* Test hook: a mocked raw source drives the backwards-step regression
   test. Installing or removing it is itself just another (possibly
   backwards) step, which the delta guard absorbs. *)
let raw_override : (unit -> int) option ref = ref None

let set_raw_ns_for_tests f = raw_override := f

let raw_ns () =
  match !raw_override with
  | Some f -> f ()
  | None -> int_of_float (Unix.gettimeofday () *. 1e9)

let started = ref false
let last_raw = ref 0
let mono = ref 0

let now_ns () =
  let r = raw_ns () in
  if not !started then begin
    started := true;
    last_raw := r;
    mono := r
  end
  else begin
    let d = r - !last_raw in
    last_raw := r;
    if d > 0 then mono := !mono + d
  end;
  !mono

let elapsed_ns t0 =
  let d = now_ns () - t0 in
  if d > 0 then d else 0
