(** Log2-bucketed histogram over non-negative int observations.

    Bucket [b] covers values in [[2^b, 2^(b+1))] (bucket 0 also takes 0
    and 1); 64 fixed buckets span the int range. The record path is
    allocation-free — an int shift loop and int stores into a
    preallocated array — so it is safe on the engine's hot path. *)

type t

val n_buckets : int

val create : unit -> t
val reset : t -> unit

val record : t -> int -> unit
(** [record t v] records observation [v] (negative values clamp to 0).
    Allocation-free. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
val mean : t -> float

val buckets : t -> int array
(** Copy of the 64 bucket counts. *)

val nonzero : t -> (int * int) list
(** [(bucket, count)] pairs with [count > 0], ascending bucket order. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the q-quantile as the midpoint
    representative of the bucket containing the [ceil (q * count)]-th
    smallest observation; [q] clamps to [0,1]. Monotone in [q], and
    within a factor of 2 of the true value. 0 when empty. *)

val merge : t -> t -> t
(** Pointwise sum: [merge a b] is observably equal to recording the
    concatenation of the two streams into a fresh histogram. *)

val equal : t -> t -> bool
(** Equality of observable state (buckets, count, sum, min/max). *)

val of_buckets :
  count:int -> sum:int -> min_v:int -> max_v:int -> (int * int) list -> t
(** Rebuild a histogram from exported state (see {!Export}); inverse of
    [nonzero]/[count]/[sum]/[min_value]/[max_value]. *)
