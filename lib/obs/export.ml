(* Snapshot exporters. The machine "dump" line format is the single
   source of truth — `dpkit serve --metrics` and the protocol `metrics`
   command emit it, `dpkit stats` parses it back and renders text or
   JSON. Format (v1), one record per line, space-separated, scope "-"
   means the global scope:

     dpkit-metrics v1
     counter <scope> <name> <int>
     gauge <scope> <name> <float %.17g>
     histo <scope> <name> <count> <sum> <min> <max> [<bucket>:<n> ...]
     span <scope> <name> <start_ns> <dur_ns> <depth> [<tag>=<float> ...]

   Every <name> and <tag> is a Name catalogue entry; <scope> is "-" or a
   dataset id. Nothing else ever appears, which is the whole point. *)

let header = "dpkit-metrics v1"

type entry =
  | Counter of { scope : string; name : string; value : int }
  | Gauge of { scope : string; name : string; value : float }
  | Latency of {
      scope : string;
      name : string;
      count : int;
      sum : int;
      min_v : int;
      max_v : int;
      buckets : (int * int) list;
    }
  | Span of {
      scope : string;
      name : string;
      start_ns : int;
      dur_ns : int;
      depth : int;
      tags : (string * float) list;
    }

let enc_scope label = if label = "" then "-" else label
let dec_scope s = if s = "-" then "" else s

let dump_scope s =
  let label = enc_scope (Metrics.label s) in
  let counters =
    Array.to_list
      (Array.map
         (fun c ->
           Printf.sprintf "counter %s %s %d" label (Name.counter_name c)
             (Metrics.count s c))
         Name.all_counters)
  in
  let gauges =
    Array.to_list
      (Array.map
         (fun g ->
           Printf.sprintf "gauge %s %s %.17g" label (Name.gauge_name g)
             (Metrics.gauge s g))
         Name.all_gauges)
  in
  let histos =
    Array.to_list Name.all_latencies
    |> List.filter_map (fun l ->
           let h = Metrics.latency s l in
           if Histo.count h = 0 then None
           else
             let cells =
               Histo.nonzero h
               |> List.map (fun (b, n) -> Printf.sprintf " %d:%d" b n)
               |> String.concat ""
             in
             Some
               (Printf.sprintf "histo %s %s %d %d %d %d%s" label
                  (Name.latency_name l) (Histo.count h) (Histo.sum h)
                  (Histo.min_value h) (Histo.max_value h) cells))
  in
  counters @ gauges @ histos

let dump_span (s : Span.span) =
  let tags =
    s.Span.tags
    |> List.map (fun (k, v) -> Printf.sprintf " %s=%.17g" (Name.tag_name k) v)
    |> String.concat ""
  in
  Printf.sprintf "span %s %s %d %d %d%s"
    (enc_scope s.Span.dataset)
    (Name.span_name s.Span.name)
    s.Span.start_ns s.Span.dur_ns s.Span.depth tags

let dump ?trace metrics =
  let scopes = List.concat_map dump_scope (Metrics.scopes metrics) in
  let spans =
    match trace with
    | None -> []
    | Some t -> List.map dump_span (Span.spans t)
  in
  header :: (scopes @ spans)

(* --- parsing ---------------------------------------------------------- *)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let int_tok name t =
  match int_of_string_opt t with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "bad %s field %S" name t)

let float_tok name t =
  match float_of_string_opt t with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s field %S" name t)

let ( let* ) = Result.bind

let parse_cell cell =
  match String.index_opt cell ':' with
  | None -> Error (Printf.sprintf "bad histo cell %S" cell)
  | Some i ->
      let* b = int_tok "bucket" (String.sub cell 0 i) in
      let* n =
        int_tok "bucket count"
          (String.sub cell (i + 1) (String.length cell - i - 1))
      in
      Ok (b, n)

let parse_tag tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "bad span tag %S" tok)
  | Some i ->
      let* v =
        float_tok "tag value" (String.sub tok (i + 1) (String.length tok - i - 1))
      in
      Ok (String.sub tok 0 i, v)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let parse_line line =
  match split_ws line with
  | [ "counter"; scope; name; v ] ->
      let* value = int_tok "counter" v in
      Ok (Counter { scope = dec_scope scope; name; value })
  | [ "gauge"; scope; name; v ] ->
      let* value = float_tok "gauge" v in
      Ok (Gauge { scope = dec_scope scope; name; value })
  | "histo" :: scope :: name :: count :: sum :: min_v :: max_v :: cells ->
      let* count = int_tok "count" count in
      let* sum = int_tok "sum" sum in
      let* min_v = int_tok "min" min_v in
      let* max_v = int_tok "max" max_v in
      let* buckets = map_result parse_cell cells in
      Ok (Latency { scope = dec_scope scope; name; count; sum; min_v; max_v; buckets })
  | "span" :: scope :: name :: start_ns :: dur_ns :: depth :: tags ->
      let* start_ns = int_tok "start_ns" start_ns in
      let* dur_ns = int_tok "dur_ns" dur_ns in
      let* depth = int_tok "depth" depth in
      let* tags = map_result parse_tag tags in
      Ok (Span { scope = dec_scope scope; name; start_ns; dur_ns; depth; tags })
  | kind :: _ -> Error (Printf.sprintf "unknown record kind %S" kind)
  | [] -> Error "empty record"

let parse lines =
  let lines = List.map String.trim lines |> List.filter (fun l -> l <> "") in
  match lines with
  | [] -> Error "empty metrics dump"
  | h :: rest ->
      if h <> header then Error (Printf.sprintf "bad header %S (want %S)" h header)
      else map_result parse_line rest

(* --- human-readable rendering ----------------------------------------- *)

let entry_scope = function
  | Counter { scope; _ } | Gauge { scope; _ } | Latency { scope; _ }
  | Span { scope; _ } ->
      scope

let histo_of_entry = function
  | Latency { count; sum; min_v; max_v; buckets; _ } ->
      Histo.of_buckets ~count ~sum ~min_v ~max_v buckets
  | _ -> Histo.create ()

let fmt_ns ns =
  if ns >= 1_000_000_000. then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1_000_000. then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1_000. then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns

let pretty entries =
  let scopes =
    List.fold_left
      (fun acc e ->
        let s = entry_scope e in
        if List.mem s acc then acc else acc @ [ s ])
      [] entries
  in
  let spans = List.filter (function Span _ -> true | _ -> false) entries in
  let lines = ref [] in
  let out l = lines := l :: !lines in
  List.iter
    (fun sc ->
      let mine =
        List.filter (fun e -> entry_scope e = sc) entries
        |> List.filter (function Span _ -> false | _ -> true)
      in
      if mine <> [] then begin
        out (Printf.sprintf "scope %s" (if sc = "" then "<global>" else sc));
        let cs =
          List.filter_map
            (function
              | Counter { name; value; _ } when value <> 0 ->
                  Some (Printf.sprintf "%s=%d" name value)
              | _ -> None)
            mine
        in
        if cs <> [] then out ("  counters: " ^ String.concat " " cs);
        let gs =
          List.filter_map
            (function
              | Gauge { name; value; _ } when value <> 0. ->
                  Some (Printf.sprintf "%s=%.6g" name value)
              | _ -> None)
            mine
        in
        if gs <> [] then out ("  gauges:   " ^ String.concat " " gs);
        List.iter
          (function
            | Latency { name; count; _ } as e ->
                let h = histo_of_entry e in
                out
                  (Printf.sprintf
                     "  %-18s count=%d mean=%s p50=%s p90=%s p99=%s max=%s" name
                     count
                     (fmt_ns (Histo.mean h))
                     (fmt_ns (Histo.quantile h 0.5))
                     (fmt_ns (Histo.quantile h 0.9))
                     (fmt_ns (Histo.quantile h 0.99))
                     (fmt_ns (float_of_int (Histo.max_value h))))
            | _ -> ())
          mine
      end)
    scopes;
  if spans <> [] then begin
    out (Printf.sprintf "spans (%d in ring, oldest first)" (List.length spans));
    List.iter
      (function
        | Span { scope; name; dur_ns; depth; tags; _ } ->
            let indent = String.make (2 * (depth + 1)) ' ' in
            let tags =
              tags
              |> List.map (fun (k, v) -> Printf.sprintf " %s=%.6g" k v)
              |> String.concat ""
            in
            out
              (Printf.sprintf "%s%s%s dur=%s%s" indent name
                 (if scope = "" then "" else " dataset=" ^ scope)
                 (fmt_ns (float_of_int dur_ns))
                 tags)
        | _ -> ())
      spans
  end;
  List.rev !lines

(* --- JSON rendering ---------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let to_json entries =
  let buf = Buffer.create 4096 in
  let scopes =
    List.fold_left
      (fun acc e ->
        match e with
        | Span _ -> acc
        | _ -> if List.mem (entry_scope e) acc then acc else acc @ [ entry_scope e ])
      [] entries
  in
  Buffer.add_string buf "{\"version\":1,\"scopes\":[";
  List.iteri
    (fun i sc ->
      if i > 0 then Buffer.add_char buf ',';
      let mine = List.filter (fun e -> entry_scope e = sc) entries in
      Buffer.add_string buf (Printf.sprintf "{\"scope\":\"%s\"" (json_escape sc));
      Buffer.add_string buf ",\"counters\":{";
      let first = ref true in
      List.iter
        (function
          | Counter { name; value; _ } ->
              if not !first then Buffer.add_char buf ',';
              first := false;
              Buffer.add_string buf
                (Printf.sprintf "\"%s\":%d" (json_escape name) value)
          | _ -> ())
        mine;
      Buffer.add_string buf "},\"gauges\":{";
      first := true;
      List.iter
        (function
          | Gauge { name; value; _ } ->
              if not !first then Buffer.add_char buf ',';
              first := false;
              Buffer.add_string buf
                (Printf.sprintf "\"%s\":%s" (json_escape name) (json_float value))
          | _ -> ())
        mine;
      Buffer.add_string buf "},\"latencies\":[";
      first := true;
      List.iter
        (function
          | Latency { name; count; sum; min_v; max_v; buckets; _ } as e ->
              if not !first then Buffer.add_char buf ',';
              first := false;
              let h = histo_of_entry e in
              Buffer.add_string buf
                (Printf.sprintf
                   "{\"name\":\"%s\",\"count\":%d,\"sum_ns\":%d,\"min_ns\":%d,\
                    \"max_ns\":%d,\"mean_ns\":%s,\"p50_ns\":%s,\"p90_ns\":%s,\
                    \"p99_ns\":%s,\"buckets\":[%s]}"
                   (json_escape name) count sum min_v max_v
                   (json_float (Histo.mean h))
                   (json_float (Histo.quantile h 0.5))
                   (json_float (Histo.quantile h 0.9))
                   (json_float (Histo.quantile h 0.99))
                   (buckets
                   |> List.map (fun (b, n) -> Printf.sprintf "[%d,%d]" b n)
                   |> String.concat ","))
          | _ -> ())
        mine;
      Buffer.add_string buf "]}")
    scopes;
  Buffer.add_string buf "],\"spans\":[";
  let first = ref true in
  List.iter
    (function
      | Span { scope; name; start_ns; dur_ns; depth; tags } ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"dataset\":\"%s\",\"start_ns\":%d,\
                \"dur_ns\":%d,\"depth\":%d,\"tags\":{%s}}"
               (json_escape name) (json_escape scope) start_ns dur_ns depth
               (tags
               |> List.map (fun (k, v) ->
                      Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v))
               |> String.concat ","))
      | _ -> ())
    entries;
  Buffer.add_string buf "]}";
  Buffer.contents buf
