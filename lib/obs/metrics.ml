(* Metric registry. A registry holds one scope per label; scope "" is
   the engine-global scope and every other label is a dataset id (the
   registry never invents labels — callers pass them in, and lint rule
   R7 keeps payload-derived strings out of those call sites). All record
   operations are allocation-free array updates; creating a scope is the
   only allocating operation and happens once per dataset at
   registration time. *)

type scope = {
  label : string;
  live : bool;
  counters : int array;
  gauges : float array;
  latencies : Histo.t array;
}

type t = {
  enabled : bool;
  tbl : (string, scope) Hashtbl.t;
  mutable order : string list; (* insertion order, newest first *)
}

let make_scope ~live label =
  {
    label;
    live;
    counters = Array.make Name.n_counters 0;
    gauges = Array.make Name.n_gauges 0.;
    latencies = Array.init Name.n_latencies (fun _ -> Histo.create ());
  }

(* Shared sink for instrumented code that has no registry attached
   (e.g. a journal opened without an engine): records are dropped. *)
let null = make_scope ~live:false ""

let create ?(enabled = true) () =
  let t = { enabled; tbl = Hashtbl.create 8; order = [] } in
  Hashtbl.replace t.tbl "" (make_scope ~live:enabled "");
  t

let enabled t = t.enabled

let scope t label =
  match Hashtbl.find_opt t.tbl label with
  | Some s -> s
  | None ->
      let s = make_scope ~live:t.enabled label in
      Hashtbl.replace t.tbl label s;
      t.order <- label :: t.order;
      s

let global t = scope t ""
let dataset t label = scope t label

let scopes t =
  global t :: List.rev_map (fun l -> Hashtbl.find t.tbl l) (List.rev t.order)

let incr s c =
  if s.live then
    let i = Name.counter_index c in
    s.counters.(i) <- s.counters.(i) + 1

let add s c n =
  if s.live then
    let i = Name.counter_index c in
    s.counters.(i) <- s.counters.(i) + n

let set_counter s c n = if s.live then s.counters.(Name.counter_index c) <- n
let count s c = s.counters.(Name.counter_index c)
let set_gauge s g v = if s.live then s.gauges.(Name.gauge_index g) <- v
let gauge s g = s.gauges.(Name.gauge_index g)
let observe s l v = if s.live then Histo.record s.latencies.(Name.latency_index l) v
let latency s l = s.latencies.(Name.latency_index l)
let label s = s.label
let live s = s.live

let reset t =
  Hashtbl.iter
    (fun _ s ->
      Array.fill s.counters 0 Name.n_counters 0;
      Array.fill s.gauges 0 Name.n_gauges 0.;
      Array.iter Histo.reset s.latencies)
    t.tbl
