(** Monotone-clamped wall clock in integer nanoseconds.

    Built on [Unix.gettimeofday] (the stdlib has no monotonic clock on
    4.14) with a process-wide non-decreasing clamp, so span durations and
    histogram observations are always >= 0 even across an NTP step. *)

val now_ns : unit -> int
(** Current time in nanoseconds, non-decreasing within the process. *)

val elapsed_ns : int -> int
(** [elapsed_ns t0] is [now_ns () - t0] clamped to [>= 0]. *)
