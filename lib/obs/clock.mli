(** Monotonic clock in integer nanoseconds, survivable across
    wall-clock steps.

    The stdlib's Unix (4.14) has no [clock_gettime MONOTONIC], so the
    clock integrates the forward deltas of [Unix.gettimeofday]: a
    backwards step contributes zero and the next forward reading resumes
    advancing immediately (the previous max-clamp froze until wall time
    caught up, stalling deadlines for the full step width). Within the
    process [now_ns] is non-decreasing, so span durations, histogram
    observations and network deadlines are always [>= 0]. *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds, non-decreasing within the
    process. Anchored at the first call's wall-clock reading. *)

val elapsed_ns : int -> int
(** [elapsed_ns t0] is [now_ns () - t0] clamped to [>= 0]. *)

val set_raw_ns_for_tests : (unit -> int) option -> unit
(** Replace (or with [None] restore) the raw wall-clock source. Test
    hook for the backwards-step regression; the install/remove
    transition is absorbed like any other step. *)
