(* Lightweight span tracing. begin_ hands back a handle; end_ stamps
   the duration and pushes a finished span into a fixed-capacity ring
   buffer, overwriting the oldest. Spans nest via a depth counter on the
   tracer. Each span carries at most tag_budget numeric tags — tag keys
   come from the closed Name.tag enum and values are floats, so a span
   can never smuggle a query argument or a released string out. *)

let default_capacity = 256
let tag_budget = 4

type handle = {
  h_name : Name.span;
  h_dataset : string;
  h_start : int;
  h_depth : int;
  tag_keys : Name.tag array;
  tag_vals : float array;
  mutable n_tags : int;
  h_live : bool;
}

type span = {
  name : Name.span;
  dataset : string;
  start_ns : int;
  dur_ns : int;
  depth : int;
  tags : (Name.tag * float) list;
}

type t = {
  enabled : bool;
  capacity : int;
  ring : span option array;
  mutable next : int; (* next write slot *)
  mutable total : int; (* spans ever finished *)
  mutable depth : int; (* current nesting depth *)
  mutable dropped_tags : int;
}

let create ?(capacity = default_capacity) ?(enabled = true) () =
  let capacity = if capacity < 1 then 1 else capacity in
  {
    enabled;
    capacity;
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    depth = 0;
    dropped_tags = 0;
  }

let dead_handle =
  {
    h_name = Name.Sp_submit;
    h_dataset = "";
    h_start = 0;
    h_depth = 0;
    tag_keys = [||];
    tag_vals = [||];
    n_tags = 0;
    h_live = false;
  }

let begin_ t ?(dataset = "") name =
  if not t.enabled then dead_handle
  else begin
    let h =
      {
        h_name = name;
        h_dataset = dataset;
        h_start = Clock.now_ns ();
        h_depth = t.depth;
        tag_keys = Array.make tag_budget Name.T_eps_face;
        tag_vals = Array.make tag_budget 0.;
        n_tags = 0;
        h_live = true;
      }
    in
    t.depth <- t.depth + 1;
    h
  end

let tag t h key value =
  if h.h_live then begin
    if h.n_tags < tag_budget then begin
      h.tag_keys.(h.n_tags) <- key;
      h.tag_vals.(h.n_tags) <- value;
      h.n_tags <- h.n_tags + 1
    end
    else t.dropped_tags <- t.dropped_tags + 1
  end

let end_ t h =
  if h.h_live then begin
    let dur = Clock.elapsed_ns h.h_start in
    if t.depth > 0 then t.depth <- t.depth - 1;
    let tags =
      let rec go i acc =
        if i < 0 then acc else go (i - 1) ((h.tag_keys.(i), h.tag_vals.(i)) :: acc)
      in
      go (h.n_tags - 1) []
    in
    let s =
      {
        name = h.h_name;
        dataset = h.h_dataset;
        start_ns = h.h_start;
        dur_ns = dur;
        depth = h.h_depth;
        tags;
      }
    in
    t.ring.(t.next) <- Some s;
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let with_ t ?dataset name f =
  let h = begin_ t ?dataset name in
  Fun.protect ~finally:(fun () -> end_ t h) f

let spans t =
  (* oldest first: slots [next .. cap-1] then [0 .. next-1] *)
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    match t.ring.((t.next + i) mod t.capacity) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  !acc

let total t = t.total
let dropped t = if t.total > t.capacity then t.total - t.capacity else 0
let dropped_tags t = t.dropped_tags
let capacity t = t.capacity
let current_depth t = t.depth

let reset t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0;
  t.depth <- 0;
  t.dropped_tags <- 0
