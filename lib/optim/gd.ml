open Dp_linalg

type report = {
  solution : float array;
  objective : float;
  iterations : int;
  converged : bool;
  gradient_norm : float;
}

let minimize ?(step = 1.0) ?(max_iter = 10_000) ?(tol = 1e-8) ?project ~f ~grad
    x0 =
  let proj = match project with Some p -> p | None -> Fun.id in
  let x = ref (proj (Array.copy x0)) in
  let fx = ref (f !x) in
  let iters = ref 0 in
  let converged = ref false in
  let gnorm = ref infinity in
  while (not !converged) && !iters < max_iter do
    incr iters;
    let gr = grad !x in
    gnorm := Vec.norm2 gr;
    if !gnorm <= tol then converged := true
    else begin
      (* Armijo backtracking: accept when the (projected) step improves
         the objective by a c * eta * |g|^2 margin. *)
      let eta = ref step in
      let accepted = ref false in
      let attempts = ref 0 in
      while (not !accepted) && !attempts < 60 do
        incr attempts;
        let cand = proj (Vec.axpy ~alpha:(-. !eta) gr !x) in
        let fc = f cand in
        let margin = 1e-4 *. !eta *. !gnorm *. !gnorm in
        if fc <= !fx -. margin then begin
          x := cand;
          fx := fc;
          accepted := true
        end
        else eta := !eta /. 2.
      done;
      if not !accepted then converged := true (* stuck: cannot improve *)
    end
  done;
  {
    solution = !x;
    objective = !fx;
    iterations = !iters;
    converged = !converged;
    gradient_norm = !gnorm;
  }

let minimize_fixed_step ~step ~iterations ?project ~grad x0 =
  let proj = match project with Some p -> p | None -> Fun.id in
  let x = ref (proj (Array.copy x0)) in
  for _ = 1 to iterations do
    x := proj (Vec.axpy ~alpha:(-.step) (grad !x) !x)
  done;
  !x
