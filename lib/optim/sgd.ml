open Dp_linalg

type schedule = Constant of float | Inv_sqrt of float | Inv_t of float

let step_size sched t =
  if t < 1 then invalid_arg "Sgd.step_size: t must be >= 1";
  match sched with
  | Constant c -> c
  | Inv_sqrt c -> c /. sqrt (float_of_int t)
  | Inv_t c -> c /. float_of_int t

let minimize ?(epochs = 10) ?(schedule = Inv_sqrt 0.5) ?project ~n ~grad_at x0 g
    =
  if n <= 0 then invalid_arg "Sgd.minimize: n must be positive";
  if epochs <= 0 then invalid_arg "Sgd.minimize: epochs must be positive";
  let proj = match project with Some p -> p | None -> Fun.id in
  let x = ref (proj (Array.copy x0)) in
  let order = Array.init n Fun.id in
  let t = ref 0 in
  let avg = Array.make (Array.length x0) 0. in
  let avg_count = ref 0 in
  for epoch = 1 to epochs do
    Dp_rng.Sampler.shuffle order g;
    Array.iter
      (fun i ->
        incr t;
        let eta = step_size schedule !t in
        let gr = grad_at i !x in
        x := proj (Vec.axpy ~alpha:(-.eta) gr !x);
        if epoch = epochs then begin
          incr avg_count;
          Vec.axpy_inplace ~alpha:1. !x avg
        end)
      order
  done;
  proj (Vec.scale (1. /. float_of_int !avg_count) avg)
