(** Stochastic (sub)gradient descent over example-indexed objectives. *)

type schedule =
  | Constant of float
  | Inv_sqrt of float  (** [eta_t = c / sqrt t] *)
  | Inv_t of float  (** [eta_t = c / t], the strongly-convex rate *)

val step_size : schedule -> int -> float
(** [step_size sched t] for [t >= 1]. *)

val minimize :
  ?epochs:int ->
  ?schedule:schedule ->
  ?project:(float array -> float array) ->
  n:int ->
  grad_at:(int -> float array -> float array) ->
  float array ->
  Dp_rng.Prng.t ->
  float array
(** [minimize ~n ~grad_at x0 g] runs SGD for [epochs] (default 10)
    passes over a random permutation of the [n] examples;
    [grad_at i x] is the (sub)gradient of the i-th example's loss at
    [x]. Returns the averaged iterate of the final epoch
    (Polyak–Ruppert averaging), projected when [project] is given. *)
