(** Batch (projected) gradient descent for the convex ERM objectives
    behind the paper's cited baselines (Chaudhuri et al. regularized
    logistic regression / SVM). *)

type report = {
  solution : float array;
  objective : float;
  iterations : int;
  converged : bool;
  gradient_norm : float;
}

val minimize :
  ?step:float ->
  ?max_iter:int ->
  ?tol:float ->
  ?project:(float array -> float array) ->
  f:(float array -> float) ->
  grad:(float array -> float array) ->
  float array ->
  report
(** [minimize ~f ~grad x0] runs gradient descent with backtracking line
    search (Armijo, halving from [step], default 1.0), stopping when
    the gradient norm falls below [tol] (default 1e-8) or after
    [max_iter] (default 10_000) iterations. When [project] is given
    each iterate is projected (projected GD — line search then checks
    the projected point). *)

val minimize_fixed_step :
  step:float ->
  iterations:int ->
  ?project:(float array -> float array) ->
  grad:(float array -> float array) ->
  float array ->
  float array
(** Plain fixed-step iteration (used where a deterministic operation
    count matters, e.g. inside benches). *)
