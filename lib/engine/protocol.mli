(** Deterministic line protocol over stdin/stdout — `dpkit serve`.

    One request per line, one or more reply lines per request; replies
    start with [ok], [err], or (for multi-line reports and logs) an
    indented block after a header line. The protocol needs no
    dependencies beyond the standard library, so the engine is drivable
    end-to-end from a shell pipe, a test harness, or an expect script.

    Commands:
    {v
    register NAME [rows=N] [eps=E] [delta=D] [backend=basic|advanced|rdp]
                  [slack=S] [default-eps=E] [analyst-eps=E]
                  [universe=U] [no-cache]
    query NAME EXPR [eps=E] [analyst=A]
    report NAME
    log NAME
    replay NAME
    help
    quit
    v} *)

val exec : Engine.t -> string -> string list
(** Execute one request line; returns the reply lines (empty for blank
    or [#]-comment lines). Never raises on malformed input. *)

val is_quit : string -> bool

val serve : Engine.t -> in_channel -> out_channel -> unit
(** Read-eval-print until EOF or [quit]; flushes after every reply. *)
