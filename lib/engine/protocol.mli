(** Deterministic line protocol over stdin/stdout — `dpkit serve`.

    One request per line, one or more reply lines per request; replies
    start with [ok], [err], or (for multi-line reports and logs) an
    indented block after a header line. The protocol needs no
    dependencies beyond the standard library, so the engine is drivable
    end-to-end from a shell pipe, a test harness, or an expect script.

    Commands:
    {v
    register NAME [rows=N] [eps=E] [delta=D] [backend=basic|advanced|rdp]
                  [slack=S] [default-eps=E] [analyst-eps=E]
                  [universe=U] [low-water=E] [no-cache]
    query NAME EXPR [eps=E] [analyst=A]
    report NAME
    log NAME
    replay NAME
    status
    metrics
    help
    quit
    v}

    [status] reports, per dataset, spent/remaining ε, answered and
    cache-hit counts, the cache hit-rate, and the serving mode.
    [metrics] replies with a header line followed by the full
    {!Dp_obs.Export} dump (every counter, gauge, latency histogram and
    ring-buffered span), indented two spaces — the same snapshot
    [dpkit serve --metrics FILE] writes at exit and [dpkit stats]
    renders.

    {2 Error taxonomy}

    Every reply to a malformed or failed request is a typed [err] line:
    [err bad-argument]/[err bad-query]/[err unknown-*] (the request is
    wrong — fix and resend), [err budget-exceeded] (final for that
    budget), [err degraded] (low-water reached: cache hits still
    served), [err transient] (infrastructure hiccup — safe to retry,
    any committed charge is kept), [err overloaded retry-after=MS]
    (the TCP frontend shed the request — retry after the delay; emitted
    by {!Dp_net.Server}, computed from queue depth only, never budget
    state), [err fatal] (journal poisoned or internal error — give up).
    Option lists reject unknown and duplicate keys, and lines over
    {!max_line_bytes} are refused before parsing. No exception escapes
    {!exec} (injected {!Faults.Crash} is the deliberate exception — it
    simulates the process dying). *)

val max_line_bytes : int
(** Longest accepted request line (4096). {!serve} reads with a
    bounded buffer, so a longer line — even gigabytes with no newline —
    gets [err bad-argument] while only ever holding
    [max_line_bytes + 1] bytes in memory. *)

val max_reply_lines : int
(** Longest reply {!exec} will return (256 lines). Multi-line replies
    (report, log, metrics) past the cap are truncated to the first
    [max_reply_lines - 1] lines plus an indented [  truncated=N]
    trailer counting the dropped lines, so one request cannot stream an
    unbounded reply through the single-threaded network frontend. *)

val oversized_reply : int -> string
(** The [err bad-argument] line for a request of [n] bytes exceeding
    {!max_line_bytes} — shared with the network frontend's bounded
    reader so both transports reject oversized lines identically. *)

val parse_opts :
  known:string list ->
  string list ->
  ((string * string option) list, string) result
(** Parse [key=value] / bare-flag tokens. Unknown keys and duplicate
    keys are rejected with an [err bad-argument ...] line as the error. *)

val exec : Engine.t -> string -> string list
(** Execute one request line; returns the reply lines (empty for blank
    or [#]-comment lines). Never raises on malformed input; unexpected
    internal exceptions come back as [err fatal internal ...]. *)

val is_quit : string -> bool

val serve : Engine.t -> in_channel -> out_channel -> unit
(** Read-eval-print until EOF or [quit]; flushes after every reply.
    The engine's fault plan can substitute an injected garbage line for
    a read request ({!Faults.Garbage_line}), which must bounce off the
    oversized-line guard. *)
