open Dp_mechanism

type backend = Basic | Advanced of { slack : float } | Rdp of { delta : float }

type charge = { budget : Privacy.budget; rdp : Rdp.curve option }

type rejection = {
  requested : Privacy.budget;
  remaining : Privacy.budget;
  analyst : string option;
}

(* Same α-grid as Rdp.to_dp: accumulating ρ(α) pointwise on a fixed
   grid keeps each spend O(|grid|) instead of O(#charges). *)
let alpha_grid =
  let low = List.init 18 (fun i -> 1.05 +. (0.15 *. float_of_int i)) in
  let high = List.init 24 (fun i -> 4. *. (1.26 ** float_of_int i)) in
  Array.of_list (low @ List.filter (fun a -> a <= 512.) high)

type t = {
  total : Privacy.budget;
  backend : backend;
  analyst_epsilon : float option;
  analysts : (string, Privacy.Accountant.t) Hashtbl.t;
  mutable n : int;
  mutable sum_eps : float;
  mutable sum_delta : float;
  mutable sum_eps_sq : float;
  mutable sum_eps_exp : float;  (* Σ εᵢ(e^{εᵢ} − 1) *)
  mutable sum_delta_no_curve : float;  (* δ of charges outside RDP accounting *)
  rho : float array;  (* accumulated RDP curve on alpha_grid *)
}

let pp_backend fmt = function
  | Basic -> Format.pp_print_string fmt "basic"
  | Advanced { slack } -> Format.fprintf fmt "advanced(slack=%g)" slack
  | Rdp { delta } -> Format.fprintf fmt "rdp(delta=%g)" delta

let create ~total ~backend ?analyst_epsilon () =
  (match backend with
  | Basic -> ()
  | Advanced { slack } ->
      if slack <= 0. || slack >= 1. then
        invalid_arg "Ledger.create: advanced slack must be in (0,1)"
  | Rdp { delta } ->
      if delta <= 0. || delta >= 1. then
        invalid_arg "Ledger.create: rdp delta must be in (0,1)");
  (match analyst_epsilon with
  | Some e when e <= 0. ->
      invalid_arg "Ledger.create: analyst_epsilon must be positive"
  | _ -> ());
  {
    total;
    backend;
    analyst_epsilon;
    analysts = Hashtbl.create 8;
    n = 0;
    sum_eps = 0.;
    sum_delta = 0.;
    sum_eps_sq = 0.;
    sum_eps_exp = 0.;
    sum_delta_no_curve = 0.;
    rho = Array.make (Array.length alpha_grid) 0.;
  }

let total t = t.total
let backend t = t.backend
let n_charges t = t.n

(* Spent budget from a snapshot of the accumulator fields. *)
let spent_of t ~n ~sum_eps ~sum_delta ~sum_eps_sq ~sum_eps_exp
    ~sum_delta_no_curve ~rho_at =
  let basic = { Privacy.epsilon = sum_eps; delta = sum_delta } in
  if n = 0 then { Privacy.epsilon = 0.; delta = 0. }
  else
    match t.backend with
    | Basic -> basic
    | Advanced { slack } ->
        let adv =
          sqrt (2. *. log (1. /. slack) *. sum_eps_sq) +. sum_eps_exp
        in
        if adv < basic.Privacy.epsilon then
          { Privacy.epsilon = adv; delta = sum_delta +. slack }
        else basic
    | Rdp { delta } ->
        let eps = ref infinity in
        Array.iteri
          (fun i alpha ->
            eps := Float.min !eps (rho_at i +. (log (1. /. delta) /. (alpha -. 1.))))
          alpha_grid;
        if !eps < basic.Privacy.epsilon then
          { Privacy.epsilon = !eps; delta = delta +. sum_delta_no_curve }
        else basic

let spent t =
  spent_of t ~n:t.n ~sum_eps:t.sum_eps ~sum_delta:t.sum_delta
    ~sum_eps_sq:t.sum_eps_sq ~sum_eps_exp:t.sum_eps_exp
    ~sum_delta_no_curve:t.sum_delta_no_curve
    ~rho_at:(fun i -> t.rho.(i))

(* What spent would become if [c] were charged. *)
let spent_with t (c : charge) =
  let eps = c.budget.Privacy.epsilon and dlt = c.budget.Privacy.delta in
  let curve =
    match c.rdp with
    | Some f -> f
    | None -> Rdp.pure_dp ~epsilon:eps
  in
  spent_of t ~n:(t.n + 1) ~sum_eps:(t.sum_eps +. eps)
    ~sum_delta:(t.sum_delta +. dlt)
    ~sum_eps_sq:(t.sum_eps_sq +. (eps *. eps))
    ~sum_eps_exp:(t.sum_eps_exp +. (eps *. (exp eps -. 1.)))
    ~sum_delta_no_curve:
      (t.sum_delta_no_curve +. if Option.is_none c.rdp then dlt else 0.)
    ~rho_at:(fun i -> t.rho.(i) +. curve alpha_grid.(i))

let remaining t =
  let s = spent t in
  {
    Privacy.epsilon = Float.max 0. (t.total.Privacy.epsilon -. s.Privacy.epsilon);
    delta = Float.max 0. (t.total.Privacy.delta -. s.Privacy.delta);
  }

let fits total (b : Privacy.budget) =
  b.Privacy.epsilon <= total.Privacy.epsilon +. 1e-12
  && b.Privacy.delta <= total.Privacy.delta +. 1e-15

let analyst_accountant t a =
  match Hashtbl.find_opt t.analysts a with
  | Some acc -> acc
  | None ->
      let cap =
        match t.analyst_epsilon with
        | Some e ->
            { Privacy.epsilon = e; delta = t.total.Privacy.delta }
        | None -> t.total
      in
      let acc = Privacy.Accountant.create ~total:cap in
      Hashtbl.add t.analysts a acc;
      acc

let analyst_spent t a =
  match Hashtbl.find_opt t.analysts a with
  | Some acc -> Privacy.Accountant.spent acc
  | None -> { Privacy.epsilon = 0.; delta = 0. }

let can_afford t ?analyst c =
  fits t.total (spent_with t c)
  &&
  match (analyst, t.analyst_epsilon) with
  | Some a, Some _ ->
      Privacy.Accountant.can_afford (analyst_accountant t a) c.budget
  | _ -> true

let commit t (c : charge) =
  let eps = c.budget.Privacy.epsilon and dlt = c.budget.Privacy.delta in
  let curve =
    match c.rdp with Some f -> f | None -> Rdp.pure_dp ~epsilon:eps
  in
  t.n <- t.n + 1;
  t.sum_eps <- t.sum_eps +. eps;
  t.sum_delta <- t.sum_delta +. dlt;
  t.sum_eps_sq <- t.sum_eps_sq +. (eps *. eps);
  t.sum_eps_exp <- t.sum_eps_exp +. (eps *. (exp eps -. 1.));
  if Option.is_none c.rdp then t.sum_delta_no_curve <- t.sum_delta_no_curve +. dlt;
  Array.iteri (fun i alpha -> t.rho.(i) <- t.rho.(i) +. curve alpha) alpha_grid

let rho_of_charge (c : charge) =
  Option.map (fun curve -> Array.map curve alpha_grid) c.rdp

let replay_charge t ?analyst ~face ~rho () =
  (match (analyst, t.analyst_epsilon) with
  | Some a, Some _ -> Privacy.Accountant.spend (analyst_accountant t a) face
  | _ -> ());
  match rho with
  | None -> commit t { budget = face; rdp = None }
  | Some arr ->
      if Array.length arr <> Array.length alpha_grid then
        invalid_arg "Ledger.replay_charge: rho does not match the alpha grid";
      let eps = face.Privacy.epsilon and dlt = face.Privacy.delta in
      t.n <- t.n + 1;
      t.sum_eps <- t.sum_eps +. eps;
      t.sum_delta <- t.sum_delta +. dlt;
      t.sum_eps_sq <- t.sum_eps_sq +. (eps *. eps);
      t.sum_eps_exp <- t.sum_eps_exp +. (eps *. (exp eps -. 1.));
      Array.iteri (fun i d -> t.rho.(i) <- t.rho.(i) +. d) arr

let preview ~total ~backend charges =
  let t = create ~total ~backend () in
  List.iter (commit t) charges;
  spent t

let spend t ?analyst c =
  if not (fits t.total (spent_with t c)) then
    Error { requested = c.budget; remaining = remaining t; analyst = None }
  else
    match (analyst, t.analyst_epsilon) with
    | Some a, Some _ ->
        let acc = analyst_accountant t a in
        if not (Privacy.Accountant.can_afford acc c.budget) then
          Error
            {
              requested = c.budget;
              remaining = Privacy.Accountant.remaining acc;
              analyst = Some a;
            }
        else (
          Privacy.Accountant.spend acc c.budget;
          commit t c;
          Ok ())
    | _ ->
        commit t c;
        Ok ()
