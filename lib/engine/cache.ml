type entry = {
  answer : Planner.answer;
  mechanism : Planner.mechanism;
  requested : Dp_mechanism.Privacy.budget;
}

type t = {
  table : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0 }

let lookup t key =
  match Hashtbl.find_opt t.table key with
  | Some _ as e ->
      t.hits <- t.hits + 1;
      e
  | None ->
      t.misses <- t.misses + 1;
      None

let store t key entry = Hashtbl.replace t.table key entry
let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let n = t.hits + t.misses in
  if n = 0 then 0. else float_of_int t.hits /. float_of_int n

let size t = Hashtbl.length t.table
