(** Fault injection for the durability layer.

    Production serving means surviving the failures the OS actually
    delivers: failed writes, failed fsyncs, kills between a budget
    charge and the answer it paid for, exhausted entropy, oversized
    garbage on the wire. Each of those is a named {!point}; a fault
    spec (from [--faults] or the [DPKIT_FAULTS] environment variable)
    arms a subset of them, and the engine, journal and protocol call
    {!check} at the matching points. Tests and CI run the whole suite
    with [DPKIT_FAULTS=all-transient] so every transient injection
    point fires on every operation's first attempt and the
    retry-with-backoff path is exercised continuously.

    Spec grammar (comma-separated):
    {v
    all-transient            every transient point fails each first attempt
    POINT                    fire on the 1st opportunity, once
    POINT=N                  fire on the Nth opportunity, once
    POINT=always             fire on every opportunity, retries included
                             (bounded retry loops exhaust)
    off | (empty)            nothing armed
    v}
    Points: [journal-write], [journal-fsync], [rng],
    [crash-after-charge], [garbage-line], the network frontend's
    [accept-fail], [read-stall], [write-drop], [conn-reset], and the
    worker pool's [lease-expiry], [grant-drop], [worker-crash]. The
    network and pool points are not in the all-transient set: the
    recovering party for them is the remote client or the pool
    supervisor, not an in-process retry loop, so they are armed
    explicitly (see {!is_transient}). *)

type point =
  | Journal_write  (** transient: the journal append write fails *)
  | Journal_fsync  (** transient: the post-append fsync fails *)
  | Rng  (** transient: the entropy source is exhausted mid-release *)
  | Crash_after_charge
      (** fatal: the process dies after the charge is journaled but
          before the noisy answer is released — the crash that
          charge-before-answer ordering makes safe *)
  | Garbage_line
      (** protocol: the next input line is replaced by an oversized
          garbage blob before parsing *)
  | Accept_fail
      (** network: the frontend skips a ready accept — the connection
          stays in the kernel backlog until a later loop turn *)
  | Read_stall
      (** network: a read-ready connection is not read this loop turn
          (models a stalled peer or dropped readiness) *)
  | Write_drop
      (** network: a computed reply is dropped before any byte is
          written and the connection closed — the client must retry *)
  | Conn_reset
      (** network: the connection is closed after the first reply line,
          mid-reply — the client sees a torn frame and must retry *)
  | Lease_expiry
      (** pool: the coordinator treats the next lease request as coming
          from a superseded incarnation — the worker is told its lease
          is lost, answers [err degraded reason=lease-lost], and exits
          for the supervisor to restart with a fresh fencing token *)
  | Grant_drop
      (** pool: the coordinator journals a lease grant but the ack to
          the worker is dropped — the worker times out, the client
          retries, and the re-requested grant resyncs from the WAL'd
          absolute lease state *)
  | Worker_crash
      (** fatal: a pool worker dies (as by kill -9) right before
          executing a request — the supervisor must replay its shard
          journal, reclaim the unspent lease, and restart it *)

val point_name : point -> string
val is_transient : point -> bool

exception Injected of point
(** A transient injected failure; {!with_retries} absorbs it. *)

exception Crash of point
(** An injected crash. Never caught by the retry loop; the CLI turns
    it into a nonzero exit so a harness can kill-and-restart. *)

type t

val none : t
val armed : t -> bool

val parse : string -> (t, string) result
(** Parse a fault spec. [""] and ["off"] yield {!none}. *)

val of_env : unit -> t
(** [parse] of [$DPKIT_FAULTS]; unset, empty or malformed specs arm
    nothing (a typo in CI must not silently disable the suite — a
    malformed spec prints one warning on stderr). *)

val fire : t -> ?attempt:int -> point -> bool
(** Should this opportunity fail? Stateful: one-shot points consume
    their trigger. [attempt] (default 1) is the retry attempt number;
    under [all-transient] only first attempts fire, so retried
    operations succeed. *)

val check : t -> ?attempt:int -> point -> unit
(** {!fire}, raising {!Injected} (transient points) or {!Crash}
    ([Crash_after_charge], [Worker_crash]). [Garbage_line] never raises
    — callers use {!fire} to substitute the line. *)

val backoff_delay :
  ?cap_s:float ->
  ?jitter:Dp_rng.Prng.t ->
  backoff_s:float ->
  attempt:int ->
  unit ->
  float
(** The sleep before retrying [attempt]: [base * 2^(attempt-1)] capped
    at [cap_s] (default 30s), then — when [jitter] is given — scaled by
    a uniform draw in [0, 1) (full jitter, so concurrent retriers
    decorrelate). [jitter] must be a non-privacy stream: the engine
    passes a dedicated retry stream seeded independently of the noise
    stream, because retry timing is externally observable and must not
    reveal noise-stream position. Deterministic given the stream's
    seed. *)

val with_retries :
  ?attempts:int ->
  ?backoff_s:float ->
  ?jitter:Dp_rng.Prng.t ->
  (attempt:int -> 'a) ->
  ('a, string) result
(** Run an operation with bounded retries and exponential backoff
    (default 3 attempts, 1ms base), sleeping {!backoff_delay} between
    attempts (full jitter when [jitter] is given). Retries on
    {!Injected}, [Sys_error] and [Unix.Unix_error]; anything else
    propagates. [Error] carries the last failure after the attempts are
    spent — the caller decides whether that is transient (state
    unchanged, client may retry) or fatal. *)

val pp : Format.formatter -> t -> unit
(** The armed points, for [status] lines; ["off"] when nothing is. *)
