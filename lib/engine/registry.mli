(** The dataset registry: named datasets, each with bounded numeric
    columns and a per-dataset privacy policy.

    Column bounds are declared at registration and values are clamped
    into them, so every planner sensitivity derived from [lo, hi] is a
    true global sensitivity (the clamping is the standard bounded-range
    preprocessing, as in [Dp_dataset.Dataset.clip_rows_l2]). The row
    count and the policy are treated as public metadata. *)

open Dp_mechanism

type column = { name : string; values : float array; lo : float; hi : float }

type policy = {
  total : Privacy.budget;  (** lifetime (ε, δ) budget of the dataset *)
  backend : Ledger.backend;
  default_epsilon : float;  (** per-query ε when the query names none *)
  analyst_epsilon : float option;  (** per-analyst sub-budget cap *)
  universe : int;
      (** distinguishable values per record, for the Alvim et al.
          min-entropy leakage bound reported by the meter *)
  cache : bool;  (** answer identical repeated queries from cache *)
  low_water : float;
      (** graceful-degradation threshold: when remaining global ε drops
          below it, the engine serves cache hits only instead of
          hard-failing mid-analysis; [0.] disables *)
}

val default_policy : total:Privacy.budget -> policy
(** Basic composition, default ε = 0.1 per query, no analyst caps,
    universe 64, cache on, no low-water mark. *)

type dataset = {
  name : string;
  columns : column array;
  rows : int;
  policy : policy;
}

val dataset :
  name:string -> policy:policy -> columns:column list -> dataset
(** Validates and clamps. @raise Invalid_argument on an empty name or
    column set, empty/ragged columns, duplicate column names,
    [lo >= hi], or a non-positive [default_epsilon]. *)

val column : dataset -> string -> column option

(** {2 Schemas}

    A schema is the data-independent skeleton of a dataset: column
    names and bounds, the public row count, and the policy — but no
    values. Everything the planner needs to select a mechanism and
    price a query lives here, which is what makes the static workload
    analyzer ({!Dp_engine.Analyzer}) possible: privacy cost is a
    property of the plans, not of any execution. *)

type col_schema = { col : string; lo : float; hi : float }

type schema = {
  name : string;
  cols : col_schema array;
  rows : int;
  policy : policy;
}

val schema :
  name:string -> rows:int -> policy:policy -> col_schema list ->
  (schema, string) result
(** Validates without clamping anything (there is no data): non-empty
    name and column set, positive rows, unique column names, [lo < hi],
    positive [default_epsilon]. *)

val schema_of : dataset -> schema
(** Project a registered dataset onto its schema, dropping the values.
    Planning against [schema_of ds] charges exactly what planning
    against [ds] charges. *)

val schema_column : schema -> string -> col_schema option

val neighbor_flip : string -> (string * int) option
(** Parse the neighbour-naming convention: ["BASE~flipN"] is [Some
    ("BASE", N)], anything else [None]. A dataset registered under such
    a name is the canonical neighbour of [BASE] — see {!synthetic}. *)

val synthetic :
  name:string -> rows:int -> policy:policy -> Dp_rng.Prng.t -> dataset
(** A deterministic (given the generator) demo dataset with columns
    [age] ∈ [18,80], [income] ∈ [0,200000] (bimodal), and [score]
    ∈ [−4,4] (standard normal, clamped).

    When [name] matches the ["BASE~flipN"] convention the generator
    stream is used exactly as for [BASE] and row [N] is then pushed to
    the opposite column bound in every column, producing a dataset that
    differs from [BASE] (generated from the same stream) in exactly one
    record. The certification harness registers such pairs on a live
    server; because the flip is a pure function of the (name, seed)
    pair, journal recovery regenerates the neighbour byte-for-byte with
    no journal format change.
    @raise Invalid_argument when [rows <= 0] or the flip row is out of
    range. *)

type t

val create : unit -> t
val register : t -> dataset -> (unit, string) result
val find : t -> string -> dataset option

val remove : t -> string -> unit
(** Used to roll back a registration whose journal append failed — a
    dataset must never be servable without being durable. *)

val names : t -> string list
