open Dp_mechanism

type charge_record = {
  dataset : string;
  analyst : string option;
  query : string;
  mechanism : string;
  face : Privacy.budget;
  marginal : Privacy.budget;
  rho : float array option;
}

type cache_record = {
  dataset : string;
  key : string;
  answer : Planner.answer;
  mechanism : Planner.mechanism;
  requested : Privacy.budget;
}

type train_record = {
  dataset : string;
  handle : string;
  backend : string;
  epsilon : float;
  chains : int;
  steps : int;
  beta : float;
  face : Privacy.budget;
  target : string;
  features : (string * float * float) array;
  theta : float array option;
  rhat : float array;
  ess : float array;
  acceptance : float;
}

type stream_open_record = {
  dataset : string;
  handle : string;
  epsilon : float;
  horizon : int;
  window : int;
}

type stream_append_record = {
  dataset : string;
  handle : string;
  bit : int;
  nodes : float array;
      (* the noisy values taken by the tree nodes closing at this step,
         lowest level first — hex-float round-tripped, so a recovered
         tree holds bit-identical state and replay consumes no draws *)
}

type record =
  | Register of { name : string; rows : int; seed : int; policy : Registry.policy }
  | Charge of charge_record
  | Cache_insert of cache_record
  | Withheld of { dataset : string; reason : string }
  | Train of train_record
  | Stream_open of stream_open_record
  | Stream_append of stream_append_record

type stats = { records : int; torn_bytes : int }

(* ------------------------------------------------------------------ *)
(* Payload encoding: ints and hex floats ([%h] round-trips every finite
   float exactly, which is what makes recovered cache answers
   bit-identical) terminated by ';', strings length-prefixed. *)

let put_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let put_float b x =
  Buffer.add_string b (Printf.sprintf "%h" x);
  Buffer.add_char b ';'

let put_bool b v = Buffer.add_char b (if v then '1' else '0')

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_opt put b = function
  | None -> put_bool b false
  | Some v ->
      put_bool b true;
      put b v

let put_farr b a =
  put_int b (Array.length a);
  Array.iter (put_float b) a

let put_budget b (x : Privacy.budget) =
  put_float b x.Privacy.epsilon;
  put_float b x.Privacy.delta

let put_backend b = function
  | Ledger.Basic -> Buffer.add_char b 'b'
  | Ledger.Advanced { slack } ->
      Buffer.add_char b 'a';
      put_float b slack
  | Ledger.Rdp { delta } ->
      Buffer.add_char b 'r';
      put_float b delta

let put_policy b (p : Registry.policy) =
  put_budget b p.Registry.total;
  put_backend b p.Registry.backend;
  put_float b p.Registry.default_epsilon;
  put_opt put_float b p.Registry.analyst_epsilon;
  put_int b p.Registry.universe;
  put_bool b p.Registry.cache;
  put_float b p.Registry.low_water

let put_mechanism b (m : Planner.mechanism) =
  Buffer.add_char b
    (match m with
    | Planner.Laplace -> 'l'
    | Planner.Geometric -> 'g'
    | Planner.Exponential -> 'e'
    | Planner.Discrete_gaussian -> 'd')

let put_answer b = function
  | Planner.Scalar v ->
      Buffer.add_char b 's';
      put_float b v
  | Planner.Vector vs ->
      Buffer.add_char b 'v';
      put_farr b vs

let encode r =
  let b = Buffer.create 128 in
  (match r with
  | Register { name; rows; seed; policy } ->
      Buffer.add_char b 'R';
      put_str b name;
      put_int b rows;
      put_int b seed;
      put_policy b policy
  | Charge c ->
      Buffer.add_char b 'C';
      put_str b c.dataset;
      put_opt put_str b c.analyst;
      put_str b c.query;
      put_str b c.mechanism;
      put_budget b c.face;
      put_budget b c.marginal;
      put_opt put_farr b c.rho
  | Cache_insert k ->
      Buffer.add_char b 'K';
      put_str b k.dataset;
      put_str b k.key;
      put_mechanism b k.mechanism;
      put_budget b k.requested;
      put_answer b k.answer
  | Withheld { dataset; reason } ->
      Buffer.add_char b 'W';
      put_str b dataset;
      put_str b reason
  | Train m ->
      Buffer.add_char b 'T';
      put_str b m.dataset;
      put_str b m.handle;
      put_str b m.backend;
      put_float b m.epsilon;
      put_int b m.chains;
      put_int b m.steps;
      put_float b m.beta;
      put_budget b m.face;
      put_str b m.target;
      put_int b (Array.length m.features);
      Array.iter
        (fun (name, lo, hi) ->
          put_str b name;
          put_float b lo;
          put_float b hi)
        m.features;
      put_opt put_farr b m.theta;
      put_farr b m.rhat;
      put_farr b m.ess;
      put_float b m.acceptance
  | Stream_open s ->
      Buffer.add_char b 'S';
      put_str b s.dataset;
      put_str b s.handle;
      put_float b s.epsilon;
      put_int b s.horizon;
      put_int b s.window
  | Stream_append a ->
      Buffer.add_char b 'A';
      put_str b a.dataset;
      put_str b a.handle;
      put_int b a.bit;
      put_farr b a.nodes);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding. Any malformation raises [Corrupt]; the scanner treats the
   corrupt record and everything after it as a torn tail. *)

exception Corrupt

type cursor = { s : string; mutable pos : int }

let get_char c =
  if c.pos >= String.length c.s then raise Corrupt;
  let ch = c.s.[c.pos] in
  c.pos <- c.pos + 1;
  ch

let take_until c sep =
  match String.index_from_opt c.s c.pos sep with
  | None -> raise Corrupt
  | Some i ->
      let tok = String.sub c.s c.pos (i - c.pos) in
      c.pos <- i + 1;
      tok

let get_int c =
  match int_of_string_opt (take_until c ';') with
  | Some n -> n
  | None -> raise Corrupt

let get_float c =
  match float_of_string_opt (take_until c ';') with
  | Some x -> x
  | None -> raise Corrupt

let get_bool c =
  match get_char c with '1' -> true | '0' -> false | _ -> raise Corrupt

let get_str c =
  let n = get_int c in
  if n < 0 || c.pos + n > String.length c.s then raise Corrupt;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt get c = if get_bool c then Some (get c) else None

let get_farr c =
  let n = get_int c in
  if n < 0 || n > 1_000_000 then raise Corrupt;
  Array.init n (fun _ -> get_float c)

let get_budget c =
  let epsilon = get_float c in
  let delta = get_float c in
  { Privacy.epsilon; delta }

let get_backend c =
  match get_char c with
  | 'b' -> Ledger.Basic
  | 'a' -> Ledger.Advanced { slack = get_float c }
  | 'r' -> Ledger.Rdp { delta = get_float c }
  | _ -> raise Corrupt

let get_policy c =
  let total = get_budget c in
  let backend = get_backend c in
  let default_epsilon = get_float c in
  let analyst_epsilon = get_opt get_float c in
  let universe = get_int c in
  let cache = get_bool c in
  let low_water = get_float c in
  {
    Registry.total;
    backend;
    default_epsilon;
    analyst_epsilon;
    universe;
    cache;
    low_water;
  }

let get_mechanism c =
  match get_char c with
  | 'l' -> Planner.Laplace
  | 'g' -> Planner.Geometric
  | 'e' -> Planner.Exponential
  | 'd' -> Planner.Discrete_gaussian
  | _ -> raise Corrupt

let get_answer c =
  match get_char c with
  | 's' -> Planner.Scalar (get_float c)
  | 'v' -> Planner.Vector (get_farr c)
  | _ -> raise Corrupt

let decode payload =
  let c = { s = payload; pos = 0 } in
  let r =
    match get_char c with
    | 'R' ->
        let name = get_str c in
        let rows = get_int c in
        let seed = get_int c in
        let policy = get_policy c in
        Register { name; rows; seed; policy }
    | 'C' ->
        let dataset = get_str c in
        let analyst = get_opt get_str c in
        let query = get_str c in
        let mechanism = get_str c in
        let face = get_budget c in
        let marginal = get_budget c in
        let rho = get_opt get_farr c in
        Charge { dataset; analyst; query; mechanism; face; marginal; rho }
    | 'K' ->
        let dataset = get_str c in
        let key = get_str c in
        let mechanism = get_mechanism c in
        let requested = get_budget c in
        let answer = get_answer c in
        Cache_insert { dataset; key; answer; mechanism; requested }
    | 'W' ->
        let dataset = get_str c in
        let reason = get_str c in
        Withheld { dataset; reason }
    | 'T' ->
        let dataset = get_str c in
        let handle = get_str c in
        let backend = get_str c in
        let epsilon = get_float c in
        let chains = get_int c in
        let steps = get_int c in
        let beta = get_float c in
        let face = get_budget c in
        let target = get_str c in
        let n_features = get_int c in
        if n_features < 0 || n_features > 100_000 then raise Corrupt;
        let features =
          Array.init n_features (fun _ ->
              let name = get_str c in
              let lo = get_float c in
              let hi = get_float c in
              (name, lo, hi))
        in
        let theta = get_opt get_farr c in
        let rhat = get_farr c in
        let ess = get_farr c in
        let acceptance = get_float c in
        Train
          {
            dataset;
            handle;
            backend;
            epsilon;
            chains;
            steps;
            beta;
            face;
            target;
            features;
            theta;
            rhat;
            ess;
            acceptance;
          }
    | 'S' ->
        let dataset = get_str c in
        let handle = get_str c in
        let epsilon = get_float c in
        let horizon = get_int c in
        let window = get_int c in
        Stream_open { dataset; handle; epsilon; horizon; window }
    | 'A' ->
        let dataset = get_str c in
        let handle = get_str c in
        let bit = get_int c in
        let nodes = get_farr c in
        Stream_append { dataset; handle; bit; nodes }
    | _ -> raise Corrupt
  in
  if c.pos <> String.length payload then raise Corrupt;
  r

(* ------------------------------------------------------------------ *)
(* Framing: length, Adler-32, payload. Both sides truncate the checksum
   into an Int32, so comparison happens in the Int32 domain. *)

let max_payload = 16 * 1024 * 1024

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun ch ->
      a := (!a + Char.code ch) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  Int32.of_int ((!b lsl 16) lor !a)

let frame payload =
  let hdr = Bytes.create 8 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_be hdr 4 (adler32 payload);
  Bytes.to_string hdr ^ payload

(* Longest valid frame prefix of [content]: the records it holds and
   the offset where the first torn/corrupt frame (if any) starts. *)
let scan content =
  let size = String.length content in
  let rec go off acc =
    if off + 8 > size then (List.rev acc, off)
    else
      let len = Int32.to_int (String.get_int32_be content off) in
      if len < 0 || len > max_payload || off + 8 + len > size then
        (List.rev acc, off)
      else
        let payload = String.sub content (off + 8) len in
        if String.get_int32_be content (off + 4) <> adler32 payload then
          (List.rev acc, off)
        else
          match decode payload with
          | r -> go (off + 8 + len) (r :: acc)
          | exception Corrupt -> (List.rev acc, off)
  in
  go 0 []

let read_file path =
  if not (Sys.file_exists path) then Ok ""
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error msg -> Error msg

let load path =
  match read_file path with
  | Error msg -> Error (Printf.sprintf "journal %s: %s" path msg)
  | Ok content ->
      let records, good = scan content in
      Ok
        ( records,
          {
            records = List.length records;
            torn_bytes = String.length content - good;
          } )

(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  fd : Unix.file_descr;
  faults : Faults.t;
  obs : Dp_obs.Metrics.scope;
  jitter : Dp_rng.Prng.t option;
      (** non-privacy stream for retry-backoff full jitter *)
  mutable clean_off : int;  (** end of the last fully-appended frame *)
  mutable poisoned : bool;
}

let path t = t.path
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* A freshly-created journal is not durable until its directory entry
   is: without an fsync of the parent directory, a crash shortly after
   creation can lose the file itself, and recovery — which treats a
   missing journal as empty — would silently hand back the full budget.
   EINVAL means the filesystem does not support fsync on directories;
   nothing more can be done there. *)
let fsync_dir path =
  let fd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try Unix.fsync fd
      with Unix.Unix_error (Unix.EINVAL, _, _) -> ())

let open_ ?(faults = Faults.none) ?(obs = Dp_obs.Metrics.null) ?jitter path =
  match read_file path with
  | Error msg -> Error (Printf.sprintf "journal %s: %s" path msg)
  | Ok content -> (
      let records, good = scan content in
      let torn = String.length content - good in
      let existed = Sys.file_exists path in
      try
        let fd =
          Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
        in
        if not existed then fsync_dir path;
        if torn > 0 then Unix.ftruncate fd good;
        Ok
          ( { path; fd; faults; obs; jitter; clean_off = good; poisoned = false },
            records,
            { records = List.length records; torn_bytes = torn } )
      with
      | Unix.Unix_error (e, fn, _) ->
          Error
            (Printf.sprintf "journal %s: %s: %s" path fn (Unix.error_message e))
      | Sys_error msg -> Error (Printf.sprintf "journal %s: %s" path msg))

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.single_write_substring fd s off (len - off))
  in
  go 0

let append t record =
  if t.poisoned then Error (`Fatal "journal poisoned by an earlier failure")
  else
    let t0 = Dp_obs.Clock.now_ns () in
    let framed = frame (encode record) in
    let write =
      Faults.with_retries ?jitter:t.jitter (fun ~attempt ->
          (* a failed earlier attempt may have left a partial frame:
             O_APPEND writes land at the end, so cut back to the last
             clean frame boundary before writing again *)
          if attempt > 1 then begin
            Dp_obs.Metrics.incr t.obs Dp_obs.Name.Journal_retries;
            Unix.ftruncate t.fd t.clean_off
          end;
          Faults.check t.faults ~attempt Faults.Journal_write;
          write_all t.fd framed)
    in
    match write with
    | Error msg -> (
        (* leave the file at a clean frame boundary; if even that is
           impossible the journal can no longer be trusted *)
        match Unix.ftruncate t.fd t.clean_off with
        | () -> Error (`Transient (Printf.sprintf "journal write failed: %s" msg))
        | exception Unix.Unix_error _ ->
            t.poisoned <- true;
            Error
              (`Fatal
                (Printf.sprintf
                   "journal write failed and the file could not be repaired: %s"
                   msg)))
    | Ok () -> (
        t.clean_off <- t.clean_off + String.length framed;
        let f0 = Dp_obs.Clock.now_ns () in
        let sync =
          Faults.with_retries ?jitter:t.jitter (fun ~attempt ->
              if attempt > 1 then
                Dp_obs.Metrics.incr t.obs Dp_obs.Name.Journal_retries;
              Faults.check t.faults ~attempt Faults.Journal_fsync;
              Unix.fsync t.fd)
        in
        Dp_obs.Metrics.observe t.obs Dp_obs.Name.Journal_fsync_ns
          (Dp_obs.Clock.elapsed_ns f0);
        match sync with
        | Ok () ->
            Dp_obs.Metrics.incr t.obs Dp_obs.Name.Journal_fsyncs;
            Dp_obs.Metrics.incr t.obs Dp_obs.Name.Journal_appends;
            Dp_obs.Metrics.observe t.obs Dp_obs.Name.Journal_append_ns
              (Dp_obs.Clock.elapsed_ns t0);
            Ok ()
        | Error msg ->
            (* the frame is intact but not durably on disk: the caller
               must withhold the answer, but may retry later *)
            Error (`Transient (Printf.sprintf "journal fsync failed: %s" msg)))
