open Dp_mechanism

type verdict = Answered | Cached | Rejected of string | Charged_unreleased of string

type record = {
  seq : int;
  analyst : string option;
  dataset : string;
  query : string;
  mechanism : string option;
  requested : Privacy.budget;
  charged : Privacy.budget;
  cache_hit : bool;
  verdict : verdict;
}

type t = { mutable rev : record list; mutable n : int }

let create () = { rev = []; n = 0 }

let append t ?analyst ?mechanism ~dataset ~query ~requested ~charged ~cache_hit
    ~verdict () =
  let r =
    {
      seq = t.n;
      analyst;
      dataset;
      query;
      mechanism;
      requested;
      charged;
      cache_hit;
      verdict;
    }
  in
  t.rev <- r :: t.rev;
  t.n <- t.n + 1;
  r

let records t = List.rev t.rev
let for_dataset t name = List.filter (fun r -> r.dataset = name) (records t)
let length t = t.n

let to_events t name =
  List.filter_map
    (fun r ->
      match r.verdict with
      | Answered | Charged_unreleased _ ->
          (* a charge whose answer was withheld (journal or RNG failure
             after the ledger committed) still consumed budget: the
             replayed trace must account for it *)
          Some { Dp_audit.Replay.label = r.query; budget = r.charged }
      | Cached | Rejected _ -> None)
    (for_dataset t name)

let verdict_string = function
  | Answered -> "answered"
  | Cached -> "cached"
  | Rejected reason -> "rejected:" ^ reason
  | Charged_unreleased reason -> "charged-unreleased:" ^ reason

let pp_record fmt r =
  Format.fprintf fmt
    "#%d %s %s %s mech=%s requested=%a charged=%a cache=%s %s" r.seq
    (match r.analyst with Some a -> a | None -> "-")
    r.dataset r.query
    (match r.mechanism with Some m -> m | None -> "-")
    Privacy.pp_budget r.requested Privacy.pp_budget r.charged
    (if r.cache_hit then "hit" else "miss")
    (verdict_string r.verdict)
