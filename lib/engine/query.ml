type comparison = Le | Lt | Ge | Gt
type predicate = { column : string; op : comparison; threshold : float }

type t =
  | Count of predicate option
  | Sum of { column : string }
  | Mean of { column : string }
  | Histogram of { column : string; bins : int }
  | Quantile of { column : string; q : float }
  | Cdf of { column : string; points : float array }

let column = function
  | Count None -> None
  | Count (Some { column; _ })
  | Sum { column }
  | Mean { column }
  | Histogram { column; _ }
  | Quantile { column; _ }
  | Cdf { column; _ } ->
      Some column

let op_to_string = function Le -> "<=" | Lt -> "<" | Ge -> ">=" | Gt -> ">"

(* Canonical float printing: shortest round-trippable form keeps cache
   keys stable across 0.5 / 0.50 spellings. *)
let fstr x = Printf.sprintf "%.12g" x

let normalize = function
  | Count None -> "count"
  | Count (Some { column; op; threshold }) ->
      Printf.sprintf "count(%s%s%s)" column (op_to_string op) (fstr threshold)
  | Sum { column } -> Printf.sprintf "sum(%s)" column
  | Mean { column } -> Printf.sprintf "mean(%s)" column
  | Histogram { column; bins } -> Printf.sprintf "histogram(%s,%d)" column bins
  | Quantile { column; q } -> Printf.sprintf "quantile(%s,%s)" column (fstr q)
  | Cdf { column; points } ->
      Printf.sprintf "cdf(%s,%s)" column
        (String.concat "," (Array.to_list (Array.map fstr points)))

let pp fmt q = Format.pp_print_string fmt (normalize q)

let is_ident s =
  String.length s > 0
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let float_of_text s =
  match float_of_string_opt (String.trim s) with
  | Some x when Float.is_finite x -> Ok x
  | _ -> Error (Printf.sprintf "not a finite number: %S" s)

let canonical_points points =
  let pts = List.sort_uniq compare points in
  Array.of_list pts

(* Split "body" of a call on commas (no nesting in this grammar). *)
let split_args body = String.split_on_char ',' body |> List.map String.trim

let parse_predicate body =
  (* column <op> threshold, with the two-char operators first *)
  let ops = [ ("<=", Le); (">=", Ge); ("<", Lt); (">", Gt) ] in
  let rec find = function
    | [] -> Error "count predicate must be column<=x, column<x, column>=x or column>x"
    | (tok, op) :: rest -> (
        match String.index_opt body (String.get tok 0) with
        | Some i
          when i + String.length tok <= String.length body
               && String.sub body i (String.length tok) = tok ->
            let column = String.trim (String.sub body 0 i) in
            let rhs =
              String.sub body
                (i + String.length tok)
                (String.length body - i - String.length tok)
            in
            if not (is_ident column) then
              Error (Printf.sprintf "bad column name %S" column)
            else
              Result.map
                (fun threshold -> Count (Some { column; op; threshold }))
                (float_of_text rhs)
        | _ -> find rest)
  in
  find ops

let parse s =
  let s = String.lowercase_ascii (String.trim s) in
  let call =
    match (String.index_opt s '(', String.rindex_opt s ')') with
    | Some i, Some j when j = String.length s - 1 && i < j ->
        Some (String.sub s 0 i, String.sub s (i + 1) (j - i - 1))
    | _ -> None
  in
  match (s, call) with
  | "count", _ -> Ok (Count None)
  | _, Some ("count", body) -> parse_predicate body
  | _, Some ("sum", body) when is_ident body -> Ok (Sum { column = body })
  | _, Some ("mean", body) when is_ident body -> Ok (Mean { column = body })
  | _, Some ("histogram", body) -> (
      match split_args body with
      | [ column; bins ] when is_ident column -> (
          match int_of_string_opt bins with
          | Some b when b > 0 && b <= 100_000 ->
              Ok (Histogram { column; bins = b })
          | _ -> Error (Printf.sprintf "bad bin count %S" bins))
      | _ -> Error "histogram takes (column,bins)")
  | _, Some ("quantile", body) -> (
      match split_args body with
      | [ column; q ] when is_ident column ->
          Result.bind (float_of_text q) (fun q ->
              if q < 0. || q > 1. then Error "quantile q must be in [0,1]"
              else Ok (Quantile { column; q }))
      | _ -> Error "quantile takes (column,q)")
  | _, Some ("cdf", body) -> (
      match split_args body with
      | column :: (_ :: _ as pts) when is_ident column ->
          let rec collect acc = function
            | [] -> Ok (List.rev acc)
            | p :: rest ->
                Result.bind (float_of_text p) (fun x -> collect (x :: acc) rest)
          in
          Result.map
            (fun pts -> Cdf { column; points = canonical_points pts })
            (collect [] pts)
      | _ -> Error "cdf takes (column,t1,...,tk)")
  | _ ->
      Error
        (Printf.sprintf
           "cannot parse query %S (try count, count(col>x), sum(col), \
            mean(col), histogram(col,bins), quantile(col,q), \
            cdf(col,t1,...))"
           s)
