type reading = {
  epsilon : float;
  delta : float;
  mi_bound_nats : float;
  mi_bound_bits : float;
  capacity_bound_nats : float;
  min_entropy_leakage_bits : float option;
}

let nats_to_bits x = x /. log 2.

let reading ~rows ~universe (b : Dp_mechanism.Privacy.budget) =
  let epsilon = b.Dp_mechanism.Privacy.epsilon in
  let mi = Dp_info.Leakage.mi_upper_bound_pure_dp ~epsilon ~diameter:1 in
  let capacity =
    Dp_info.Leakage.channel_capacity_bound_pure_dp ~epsilon ~diameter:rows
  in
  let min_entropy =
    if epsilon > 0. && rows > 0 && universe >= 2 then
      Some
        (nats_to_bits
           (Dp_info.Leakage.min_entropy_leakage_bound_alvim ~epsilon ~n:rows
              ~universe))
    else None
  in
  {
    epsilon;
    delta = b.Dp_mechanism.Privacy.delta;
    mi_bound_nats = mi;
    mi_bound_bits = nats_to_bits mi;
    capacity_bound_nats = capacity;
    min_entropy_leakage_bits = min_entropy;
  }

(* Per-timestep accounting for continual observation: a stream is the
   paper's channel run once per append, so the whole-stream MI cap
   spreads over the observed steps. The division is exact bookkeeping,
   not a new bound — the channel uses of different timesteps share one
   composed ε, which is the point of the tree mechanism. *)
type stream_reading = {
  total : reading;  (** whole-stream bounds from the face charge *)
  steps : int;  (** appends observed so far *)
  per_step_mi_nats : float;  (** MI cap amortized per observed timestep *)
}

let stream_reading ~rows ~universe ~steps budget =
  let total = reading ~rows ~universe budget in
  {
    total;
    steps;
    per_step_mi_nats = total.mi_bound_nats /. float_of_int (max 1 steps);
  }

let pp fmt r =
  Format.fprintf fmt
    "I(record;answers) <= %.4g nats (%.4g bits); capacity <= %.4g nats%s"
    r.mi_bound_nats r.mi_bound_bits r.capacity_bound_nats
    (match r.min_entropy_leakage_bits with
    | Some l -> Format.asprintf "; min-entropy leakage <= %.4g bits" l
    | None -> "")
