(** Structured audit log: one record per serving decision.

    Records carry both the face-value request and the *marginal*
    composed charge (how much the ledger's spent budget actually grew),
    so the trace telescopes and [Dp_audit.Replay] can re-verify the
    accounting under any composition backend. *)

open Dp_mechanism

type verdict =
  | Answered
  | Cached
  | Rejected of string
  | Charged_unreleased of string
      (** the ledger committed the charge but the answer was withheld
          (journal or RNG failure on the release path): budget spent,
          nothing released — the over-counting side of
          charge-before-answer ordering *)

type record = {
  seq : int;  (** global decision number, starting at 0 *)
  analyst : string option;
  dataset : string;
  query : string;  (** normal form *)
  mechanism : string option;  (** [None] when planning failed *)
  requested : Privacy.budget;  (** face value of the release *)
  charged : Privacy.budget;  (** marginal ledger increase; zero on
                                 cache hits and rejections *)
  cache_hit : bool;
  verdict : verdict;
}

type t

val create : unit -> t

val append :
  t ->
  ?analyst:string ->
  ?mechanism:string ->
  dataset:string ->
  query:string ->
  requested:Privacy.budget ->
  charged:Privacy.budget ->
  cache_hit:bool ->
  verdict:verdict ->
  unit ->
  record

val records : t -> record list
(** In decision order. *)

val for_dataset : t -> string -> record list
val length : t -> int

val to_events : t -> string -> Dp_audit.Replay.event list
(** The charged-release trace of one dataset, ready for
    [Dp_audit.Replay.replay]. *)

val pp_record : Format.formatter -> record -> unit
