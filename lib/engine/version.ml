(* Single source of truth for the toolkit version: bin/dpkit reads it
   for `--version`, and docs/ENGINE.md references it. *)

let current = "1.1.0"
