open Dp_mechanism

type column = { name : string; values : float array; lo : float; hi : float }

type policy = {
  total : Privacy.budget;
  backend : Ledger.backend;
  default_epsilon : float;
  analyst_epsilon : float option;
  universe : int;
  cache : bool;
  low_water : float;
}

let default_policy ~total =
  {
    total;
    backend = Ledger.Basic;
    default_epsilon = 0.1;
    analyst_epsilon = None;
    universe = 64;
    cache = true;
    low_water = 0.;
  }

type dataset = {
  name : string;
  columns : column array;
  rows : int;
  policy : policy;
}

let dataset ~name ~policy ~columns =
  if name = "" then invalid_arg "Registry.dataset: empty name";
  if columns = [] then invalid_arg "Registry.dataset: no columns";
  ignore
    (Dp_math.Numeric.check_pos "Registry.dataset default_epsilon"
       policy.default_epsilon);
  if policy.universe < 2 then
    invalid_arg "Registry.dataset: universe must be >= 2";
  if not (Float.is_finite policy.low_water) || policy.low_water < 0. then
    invalid_arg "Registry.dataset: low_water must be finite and >= 0";
  let rows = Array.length (List.hd columns).values in
  if rows = 0 then invalid_arg "Registry.dataset: empty columns";
  let seen = Hashtbl.create 8 in
  let columns =
    List.map
      (fun (c : column) ->
        if Hashtbl.mem seen c.name then
          invalid_arg
            (Printf.sprintf "Registry.dataset: duplicate column %S" c.name);
        Hashtbl.add seen c.name ();
        if c.lo >= c.hi then
          invalid_arg
            (Printf.sprintf "Registry.dataset: column %S has lo >= hi" c.name);
        if Array.length c.values <> rows then
          invalid_arg "Registry.dataset: ragged columns";
        {
          c with
          values =
            Array.map (Dp_math.Numeric.clamp ~lo:c.lo ~hi:c.hi) c.values;
        })
      columns
  in
  { name; columns = Array.of_list columns; rows; policy }

let column ds name =
  Array.find_opt (fun (c : column) -> c.name = name) ds.columns

type col_schema = { col : string; lo : float; hi : float }

type schema = {
  name : string;
  cols : col_schema array;
  rows : int;
  policy : policy;
}

let schema ~name ~rows ~policy cols =
  if name = "" then Error "schema: empty dataset name"
  else if cols = [] then Error "schema: no columns"
  else if rows <= 0 then Error "schema: rows must be positive"
  else if policy.default_epsilon <= 0. then
    Error "schema: default_epsilon must be positive"
  else
    let seen = Hashtbl.create 8 in
    let rec check = function
      | [] -> Ok { name; cols = Array.of_list cols; rows; policy }
      | (c : col_schema) :: rest ->
          if Hashtbl.mem seen c.col then
            Error (Printf.sprintf "schema: duplicate column %S" c.col)
          else if c.lo >= c.hi then
            Error (Printf.sprintf "schema: column %S has lo >= hi" c.col)
          else begin
            Hashtbl.add seen c.col ();
            check rest
          end
    in
    check cols

let schema_of (ds : dataset) =
  {
    name = ds.name;
    cols =
      Array.map
        (fun (c : column) -> { col = c.name; lo = c.lo; hi = c.hi })
        ds.columns;
    rows = ds.rows;
    policy = ds.policy;
  }

let schema_column s name =
  Array.find_opt (fun (c : col_schema) -> c.col = name) s.cols

let neighbor_flip name =
  match String.rindex_opt name '~' with
  | None -> None
  | Some i when i = 0 -> None
  | Some i ->
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      if String.length suffix > 4 && String.sub suffix 0 4 = "flip" then
        match
          int_of_string_opt (String.sub suffix 4 (String.length suffix - 4))
        with
        | Some row when row >= 0 -> Some (String.sub name 0 i, row)
        | _ -> None
      else None

let synthetic ~name ~rows ~policy g =
  if rows <= 0 then invalid_arg "Registry.synthetic: rows must be positive";
  let age =
    Array.init rows (fun _ -> Dp_rng.Sampler.uniform ~lo:18. ~hi:80. g)
  in
  let income =
    Dp_dataset.Synthetic.gaussian_mixture_1d ~weights:[| 0.65; 0.35 |]
      ~means:[| 32_000.; 95_000. |] ~stds:[| 12_000.; 30_000. |] ~n:rows g
  in
  let score =
    Array.init rows (fun _ -> Dp_rng.Sampler.gaussian ~mean:0. ~std:1. g)
  in
  (* A [BASE~flipN] name asks for the canonical neighbour of BASE: the
     same generator stream produces identical columns, then row N is
     pushed to its opposite bound in every column. Comparing against the
     post-clamp value guarantees the pair differs in exactly that record
     even when the raw draw was already outside the bounds. *)
  (match neighbor_flip name with
  | None -> ()
  | Some (_, row) ->
      if row >= rows then
        invalid_arg
          (Printf.sprintf
             "Registry.synthetic: neighbour flip row %d out of range (%d rows)"
             row rows);
      let flip values lo hi =
        let v = Dp_math.Numeric.clamp ~lo ~hi values.(row) in
        values.(row) <- (if v = lo then hi else lo)
      in
      flip age 18. 80.;
      flip income 0. 200_000.;
      flip score (-4.) 4.);
  dataset ~name ~policy
    ~columns:
      [
        { name = "age"; values = age; lo = 18.; hi = 80. };
        { name = "income"; values = income; lo = 0.; hi = 200_000. };
        { name = "score"; values = score; lo = -4.; hi = 4. };
      ]

type t = (string, dataset) Hashtbl.t

let create () : t = Hashtbl.create 8

let register t (ds : dataset) =
  if Hashtbl.mem t ds.name then
    Error (Printf.sprintf "dataset %S already registered" ds.name)
  else (
    Hashtbl.add t ds.name ds;
    Ok ())

let find t name = Hashtbl.find_opt t name
let remove t name = Hashtbl.remove t name
let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
