(** The write-ahead budget journal.

    The one invariant a DP server must never lose is the spent budget:
    a crash that forgets charged ε hands an adversary fresh budget
    (exactly the attack that makes the mutual-information reading of DP
    vacuous). The journal makes the ledger durable with the classic WAL
    discipline, specialised to the charge-before-answer ordering:

    - every state change (dataset registration, budget charge, cache
      insert) is appended as one length-prefixed, Adler-32-checksummed
      record and fsynced {e before} the noisy answer is released;
    - recovery replays the journal into a fresh engine, truncating a
      torn tail record (a crash mid-write) at the last valid frame;
    - because the charge is durable before the answer exists, a crash
      at any point can only {e over}-count spent ε, never under-count:
      replayed spend ≥ spend at the crash point, always.

    Charge records carry both the face-value budget (with the RDP curve
    evaluated on the ledger's α-grid, so Rényi accounting reconstructs
    exactly) and the marginal composed charge (so the rebuilt trace can
    be re-verified through [Dp_audit.Replay]). Cache records carry the
    full noisy answer in hex-float encoding, so recovered cache hits
    replay bit-identically.

    Wire format, one record:
    {v
    4-byte big-endian payload length
    4-byte big-endian Adler-32 of the payload
    payload
    v} *)

open Dp_mechanism

type charge_record = {
  dataset : string;
  analyst : string option;
  query : string;  (** normal form, for the rebuilt audit log *)
  mechanism : string;
  face : Privacy.budget;  (** face value the ledger was asked for *)
  marginal : Privacy.budget;  (** composed-spend increase it caused *)
  rho : float array option;
      (** the charge's RDP curve evaluated on {!Ledger.alpha_grid};
          [None] for pure-DP charges (recomputed from [face] on
          replay) *)
}

type cache_record = {
  dataset : string;
  key : string;
  answer : Planner.answer;
  mechanism : Planner.mechanism;
  requested : Privacy.budget;
}

type train_record = {
  dataset : string;
  handle : string;  (** durable model handle, e.g. [demo/m1] *)
  backend : string;  (** {!Dp_train.Train.backend_name} *)
  epsilon : float;  (** per-chain face ε as requested *)
  chains : int;
  steps : int;
  beta : float;  (** Gibbs inverse temperature; [0.] for objpert *)
  face : Privacy.budget;  (** total ledger charge (display metadata;
      the authoritative charge is the paired [Charge] record) *)
  target : string;
  features : (string * float * float) array;
      (** name, lo, hi — the public scaling facts prediction needs *)
  theta : float array option;
      (** hex-float encoded, so a recovered model predicts
          bit-identically; [None] iff the gate withheld the release *)
  rhat : float array;  (** per-coordinate split-R̂ (empty: deterministic) *)
  ess : float array;
  acceptance : float;
}

type stream_open_record = {
  dataset : string;
  handle : string;  (** durable stream handle, e.g. [demo/s1] *)
  epsilon : float;  (** per-level budget *)
  horizon : int;
  window : int;  (** declared default sliding window; 0 = none *)
}

type stream_append_record = {
  dataset : string;
  handle : string;
  bit : int;
  nodes : float array;
      (** noisy values of the tree nodes closing at this step, lowest
          level first, hex-float encoded: replay rebuilds the tree
          bit-identically without consuming any PRNG draws *)
}

type record =
  | Register of {
      name : string;
      rows : int;
      seed : int;  (** dataset seed: regenerates identical columns *)
      policy : Registry.policy;
    }
  | Charge of charge_record
  | Cache_insert of cache_record
  | Withheld of { dataset : string; reason : string }
      (** outcome marker, appended best-effort right after a [Charge]
          whose answer was withheld live (journal or RNG failure after
          the ledger committed): recovery pairs it with the preceding
          charge so rebuilt answered/rejected stats and audit verdicts
          match the live run. Losing the marker (it is not fsync-gated
          the way charges are) only makes recovery over-count
          [answered]; the budget itself is carried by the [Charge]. *)
  | Train of train_record
      (** a completed training run — released or withheld — appended
          after its [Charge] (and, when unconverged, after the
          [Withheld] marker). Recovery rebuilds the model store from
          these in journal order, so handle names are stable and a
          restarted server resolves [predict]/[model] queries
          bit-identically. *)
  | Stream_open of stream_open_record
      (** a stream handle becoming resolvable, appended after the
          [Charge] that paid its whole-lifetime face — the handle
          exists iff this frame is durable, like model handles. *)
  | Stream_append of stream_append_record
      (** one accepted append, fsynced {e before} the tree mutates:
          the closing nodes' noise is durable before any read can
          release it, so a kill -9 at any point leaves the recovered
          stream releasing exactly the counts the live one did. *)

type stats = {
  records : int;  (** valid records replayed *)
  torn_bytes : int;  (** trailing bytes dropped (torn tail) *)
}

type t

val open_ :
  ?faults:Faults.t ->
  ?obs:Dp_obs.Metrics.scope ->
  ?jitter:Dp_rng.Prng.t ->
  string ->
  (t * record list * stats, string) result
(** Open (or create) a journal for appending. [obs] (default
    {!Dp_obs.Metrics.null}, a drop-everything sink) receives append and
    fsync latency observations plus append/fsync/retry counters — the
    engine passes its global scope. [jitter] (a non-privacy RNG stream,
    see {!Faults.backoff_delay}) adds full jitter to the append/fsync
    retry backoff. Existing records are
    returned for replay; a torn tail is truncated off the file so the
    next append starts at a clean frame boundary. Creating the file
    also fsyncs the parent directory, so a crash right after creation
    cannot lose the journal's directory entry (a missing journal reads
    as an empty one — the one way recovery could under-count). [Error]
    means the file could not be opened or repaired at all. *)

val append : t -> record -> (unit, [ `Transient of string | `Fatal of string ]) result
(** Frame, write, flush and fsync one record, with bounded
    retry-with-backoff ({!Faults.with_retries}) around both the write
    and the fsync. [`Transient]: the record is not durable but the file
    is clean — the caller may retry the whole operation later.
    [`Fatal]: the file could not be restored to a clean state; the
    journal is poisoned and every later append fails fatally (the
    engine then degrades to serving cache hits only). *)

val path : t -> string
val close : t -> unit

val load : string -> (record list * stats, string) result
(** Read-only scan (no truncation, no side effects) — what recovery
    would replay. A missing file is an empty journal. *)
