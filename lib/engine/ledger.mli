(** The engine's budget ledger.

    Wraps [Dp_mechanism.Privacy.Accountant] (used verbatim for the
    per-analyst sub-budgets) and generalizes the global accounting to
    three composition backends:

    - [Basic]: ε and δ add (Theorem 2.4-style sequential composition).
    - [Advanced]: the heterogeneous advanced-composition bound
      [ε* = √(2 ln(1/δ') Σεᵢ²) + Σ εᵢ(e^{εᵢ}−1)], δ* = Σδᵢ + δ'
      (Dwork–Rothblum–Vadhan), reported as the minimum of this and the
      basic bound — both are valid, so the minimum is.
    - [Rdp]: Rényi accounting — each charge carries an RDP curve
      (charges without one are wrapped as pure-DP curves), curves are
      accumulated on a fixed α-grid, and spent ε is the best
      [(ε, δ)] conversion over the grid (Mironov 2017), again floored
      by the basic bound.

    All accounting state is O(1) in the number of charges, so the
    ledger sustains serving-rate traffic. Overdrafts are rejected
    structurally with {!rejection} — never a stringly [Failure]. *)

open Dp_mechanism

type backend = Basic | Advanced of { slack : float } | Rdp of { delta : float }

type charge = { budget : Privacy.budget; rdp : Rdp.curve option }
(** One release: its face-value (ε, δ) and, when known, a tighter RDP
    curve for the [Rdp] backend. *)

type rejection = {
  requested : Privacy.budget;
  remaining : Privacy.budget;
      (** remaining global budget, or the analyst's remaining sub-budget
          when [analyst] is set *)
  analyst : string option;
      (** [Some a] when the analyst sub-budget was the binding
          constraint rather than the global budget *)
}

type t

val create :
  total:Privacy.budget -> backend:backend -> ?analyst_epsilon:float -> unit -> t
(** [analyst_epsilon] caps each analyst's individual ε spend (tracked
    with a per-analyst [Privacy.Accountant] under basic composition).
    @raise Invalid_argument on an invalid backend parameter (advanced
    slack outside (0,1), RDP δ outside (0,1)) or non-positive
    [analyst_epsilon]. *)

val spend : t -> ?analyst:string -> charge -> (unit, rejection) result
(** Atomically charge the global ledger and (when configured) the
    analyst sub-budget; on [Error] nothing is charged. *)

val can_afford : t -> ?analyst:string -> charge -> bool
val spent : t -> Privacy.budget
(** Composed spend under the configured backend. Monotone in charges. *)

val remaining : t -> Privacy.budget
val total : t -> Privacy.budget
val backend : t -> backend
val n_charges : t -> int

val analyst_spent : t -> string -> Privacy.budget
(** Zero for an analyst never seen (or when no sub-budgets are set). *)

val pp_backend : Format.formatter -> backend -> unit

val preview : total:Privacy.budget -> backend:backend -> charge list -> Privacy.budget
(** Composed spend of a hypothetical charge sequence under [backend],
    with no affordability gate — the static ε-odometer of
    [dpkit analyze]. Applies exactly the accumulator updates of a live
    {!spend} sequence, so a workload's previewed total is bit-identical
    to the {!spent} of a ledger that served it.
    @raise Invalid_argument on an invalid backend parameter. *)

(** {2 Durable replay}

    The journal cannot serialize an RDP curve (a closure), but the
    ledger only ever evaluates curves on its fixed α-grid — so the
    grid-evaluated array is a complete, serializable substitute. *)

val alpha_grid : float array
(** The fixed α-grid every RDP curve is accumulated on. *)

val rho_of_charge : charge -> float array option
(** The charge's curve evaluated on {!alpha_grid}; [None] for pure-DP
    charges (their implied curve is recomputable from ε alone). *)

val replay_charge :
  t -> ?analyst:string -> face:Privacy.budget -> rho:float array option ->
  unit -> unit
(** Re-apply a journaled charge during recovery, bypassing the
    affordability check (the journal only contains charges that were
    committed live, so re-checking could only under-count). Applies the
    same accumulator updates as the live [spend], so the recovered
    {!spent} equals the live one exactly.
    @raise Invalid_argument when [rho] does not match {!alpha_grid}. *)
