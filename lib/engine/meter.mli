(** The leakage meter: the information-theoretic reading of the spent
    budget.

    The paper's central observation (§4–5) is that a private learner is
    a channel [Ẑ → θ] whose leakage is metered by ε; Cuff & Yu make the
    ε-as-MI-cap reading precise. The meter turns the ledger's spent ε
    into the corresponding channel bounds from [Dp_info.Leakage]:

    - a per-record mutual-information cap [I(X;Y) ≤ ε] (group-privacy
      bound at Hamming diameter 1) — what the answers so far can reveal
      about any one individual's record, for any prior;
    - the database-level channel-capacity bound [C ≤ n·ε];
    - Alvim et al.'s min-entropy leakage bound for a one-try adversary.

    The bounds are exact for pure ε-DP; when δ > 0 they are reported on
    the ε component alone and are approximate up to δ. *)

type reading = {
  epsilon : float;  (** composed spent ε the bounds are computed from *)
  delta : float;
  mi_bound_nats : float;  (** per-record MI cap, nats *)
  mi_bound_bits : float;
  capacity_bound_nats : float;  (** database-level capacity cap, n·ε *)
  min_entropy_leakage_bits : float option;
      (** Alvim bound for [rows] records over [universe] values; [None]
          when ε = 0 *)
}

val reading :
  rows:int -> universe:int -> Dp_mechanism.Privacy.budget -> reading

type stream_reading = {
  total : reading;  (** whole-stream bounds from the face charge *)
  steps : int;  (** appends observed so far *)
  per_step_mi_nats : float;  (** MI cap amortized per observed timestep *)
}

val stream_reading :
  rows:int ->
  universe:int ->
  steps:int ->
  Dp_mechanism.Privacy.budget ->
  stream_reading
(** Continual-observation reading: the stream's whole-lifetime face
    charge is one composed ε shared by every timestep's release, so the
    per-record MI cap is amortized over the [steps] observed so far.
    Exact bookkeeping on top of {!reading}, not a separate bound. *)

val pp : Format.formatter -> reading -> unit
