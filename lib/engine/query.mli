(** Typed query language of the serving engine.

    A query is a statistical aggregate over one registered dataset.
    Queries have a canonical textual form ({!normalize}) which doubles
    as the answer-cache key: two queries with the same normal form are
    the same question, so a cached noisy answer may be replayed for
    either (DP post-processing, Proposition 2.1 of Dwork–Roth). *)

type comparison = Le | Lt | Ge | Gt
type predicate = { column : string; op : comparison; threshold : float }

type t =
  | Count of predicate option
      (** [Count None] counts all rows; [Count (Some p)] counts rows
          whose column satisfies the predicate. Sensitivity 1. *)
  | Sum of { column : string }
  | Mean of { column : string }
  | Histogram of { column : string; bins : int }
  | Quantile of { column : string; q : float }
  | Cdf of { column : string; points : float array }
      (** Empirical CDF evaluated at the given thresholds (sorted and
          deduplicated on construction). *)

val column : t -> string option
(** The column the query reads, if any ([Count None] reads none). *)

val normalize : t -> string
(** Canonical text: lowercase keyword, canonical float printing,
    CDF points sorted. [parse (normalize q) = Ok q]. *)

val parse : string -> (t, string) result
(** Parse the surface syntax: [count], [count(age>40)], [sum(income)],
    [mean(income)], [histogram(age,16)], [quantile(income,0.5)],
    [cdf(age,30,50,70)]. Comparison operators: [<= < >= >]. *)

val pp : Format.formatter -> t -> unit
