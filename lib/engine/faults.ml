type point =
  | Journal_write
  | Journal_fsync
  | Rng
  | Crash_after_charge
  | Garbage_line
  | Accept_fail
  | Read_stall
  | Write_drop
  | Conn_reset
  | Lease_expiry
  | Grant_drop
  | Worker_crash

let all_points =
  [
    Journal_write; Journal_fsync; Rng; Crash_after_charge; Garbage_line;
    Accept_fail; Read_stall; Write_drop; Conn_reset; Lease_expiry; Grant_drop;
    Worker_crash;
  ]

let point_name = function
  | Journal_write -> "journal-write"
  | Journal_fsync -> "journal-fsync"
  | Rng -> "rng"
  | Crash_after_charge -> "crash-after-charge"
  | Garbage_line -> "garbage-line"
  | Accept_fail -> "accept-fail"
  | Read_stall -> "read-stall"
  | Write_drop -> "write-drop"
  | Conn_reset -> "conn-reset"
  | Lease_expiry -> "lease-expiry"
  | Grant_drop -> "grant-drop"
  | Worker_crash -> "worker-crash"

(* The network points are recoverable in the ordinary sense, but they
   are deliberately NOT in the all-transient set: there is no bounded
   in-process retry loop underneath them — the retrying party is the
   remote client — so arming them on every first attempt would take the
   listener down for good rather than exercise a retry path. The pool
   points follow the same rule: the recovery path for a superseded
   lease or a crashed worker is the supervisor's reclaim-and-restart
   loop (plus the remote client's retry), not an in-process retry. *)
let is_transient = function
  | Journal_write | Journal_fsync | Rng -> true
  | Crash_after_charge | Garbage_line | Accept_fail | Read_stall | Write_drop
  | Conn_reset | Lease_expiry | Grant_drop | Worker_crash ->
      false

exception Injected of point
exception Crash of point

(* Nth: a one-shot trigger armed for the Nth opportunity (a mutable
   countdown). First_attempts: fire on every operation's first attempt,
   forever — the all-transient soak mode. Always: fire on every
   opportunity including retries, so bounded retry loops exhaust. *)
type mode = Off | Nth of int ref | First_attempts | Always

type t = (point * mode) list

let none : t = List.map (fun p -> (p, Off)) all_points

let armed t = List.exists (fun (_, m) -> m <> Off) t

let mode t p = try List.assoc p t with Not_found -> Off

let with_mode t p m = (p, m) :: List.remove_assoc p t

let point_of_name name =
  List.find_opt (fun p -> point_name p = name) all_points

let parse spec =
  let spec = String.trim spec in
  if spec = "" || spec = "off" || spec = "none" then Ok none
  else if spec = "all-transient" then
    Ok
      (List.map
         (fun p -> (p, if is_transient p then First_attempts else Off))
         all_points)
  else
    let items = String.split_on_char ',' spec in
    List.fold_left
      (fun acc item ->
        match acc with
        | Error _ as e -> e
        | Ok t -> (
            let item = String.trim item in
            let name, mode_r =
              match String.index_opt item '=' with
              | None -> (item, Ok (Nth (ref 1)))
              | Some i ->
                  let n = String.sub item (i + 1) (String.length item - i - 1) in
                  ( String.sub item 0 i,
                    if n = "always" then Ok Always
                    else
                      match int_of_string_opt n with
                      | Some k when k >= 1 -> Ok (Nth (ref k))
                      | _ ->
                          Error
                            (Printf.sprintf
                               "fault count %S must be a positive int or 'always'"
                               n) )
            in
            match (point_of_name name, mode_r) with
            | _, Error msg -> Error msg
            | None, _ ->
                Error
                  (Printf.sprintf "unknown fault point %S (known: %s)" name
                     (String.concat ", " (List.map point_name all_points)))
            | Some p, Ok m -> Ok (with_mode t p m)))
      (Ok none) items

let of_env () =
  match Sys.getenv_opt "DPKIT_FAULTS" with
  | None -> none
  | Some spec -> (
      match parse spec with
      | Ok t -> t
      | Error msg ->
          Printf.eprintf "dpkit: ignoring DPKIT_FAULTS=%s (%s)\n%!" spec msg;
          none)

let fire t ?(attempt = 1) p =
  match mode t p with
  | Off -> false
  | Always -> true
  | First_attempts -> attempt = 1
  | Nth k ->
      decr k;
      !k = 0

let check t ?attempt p =
  if fire t ?attempt p then
    match p with
    | Crash_after_charge | Worker_crash -> raise (Crash p)
    | Garbage_line -> ()
    | _ -> raise (Injected p)

(* Exponential backoff with optional full jitter: uniform in
   [0, min(base * 2^(attempt-1), cap)). Full jitter (the AWS
   architecture-blog variant) decorrelates concurrent retriers — a
   thundering herd that failed together does not retry together. The
   jitter stream must be a non-privacy RNG (the engine passes a
   dedicated retry stream, never the noise stream): backoff timing is
   observable to an attacker, so drawing it from the noise stream would
   leak stream position. *)
let backoff_delay ?(cap_s = 30.) ?jitter ~backoff_s ~attempt () =
  let d = Float.min cap_s (backoff_s *. (2. ** float_of_int (attempt - 1))) in
  match jitter with None -> d | Some g -> d *. Dp_rng.Prng.float g

let with_retries ?(attempts = 3) ?(backoff_s = 0.001) ?jitter f =
  let describe = function
    | Injected p -> Printf.sprintf "injected %s failure" (point_name p)
    | Sys_error msg -> msg
    | Unix.Unix_error (e, fn, _) ->
        Printf.sprintf "%s: %s" fn (Unix.error_message e)
    | e -> Printexc.to_string e
  in
  let rec go attempt =
    match f ~attempt with
    | v -> Ok v
    | exception ((Injected _ | Sys_error _ | Unix.Unix_error _) as e) ->
        if attempt >= attempts then
          Error
            (Printf.sprintf "%s (after %d attempts)" (describe e) attempts)
        else begin
          Unix.sleepf (backoff_delay ?jitter ~backoff_s ~attempt ());
          go (attempt + 1)
        end
  in
  go 1

let pp fmt t =
  let on =
    List.filter_map
      (fun p ->
        match mode t p with
        | Off -> None
        | Always -> Some (point_name p ^ "=always")
        | First_attempts -> Some (point_name p)
        | Nth k -> Some (Printf.sprintf "%s=%d" (point_name p) !k))
      all_points
  in
  Format.pp_print_string fmt
    (if on = [] then "off" else String.concat "," on)
