open Dp_mechanism

(* ------------------------------------------------------------------ *)
(* Schema and workload file parsing *)

let ( let* ) = Result.bind

let at_line n = Result.map_error (Printf.sprintf "line %d: %s" n)

(* Protocol.parse_opts errors are protocol reply lines; strip the
   wire-format prefix so file diagnostics read naturally. *)
let opts ~known tokens =
  Result.map_error
    (fun msg ->
      let prefix = "err bad-argument " in
      if String.length msg > String.length prefix
         && String.sub msg 0 (String.length prefix) = prefix
      then String.sub msg (String.length prefix)
             (String.length msg - String.length prefix)
      else msg)
    (Protocol.parse_opts ~known tokens)

let find_opt key kvs =
  List.find_map (fun (k, v) -> if k = key then v else None) kvs

let has_flag key kvs = List.exists (fun (k, v) -> k = key && v = None) kvs

let float_opt key ~default kvs =
  match find_opt key kvs with
  | None -> Ok default
  | Some s -> (
      match float_of_string_opt s with
      | Some x when Float.is_finite x -> Ok x
      | _ -> Error (Printf.sprintf "bad number %s=%s" key s))

let int_opt key ~default kvs =
  match find_opt key kvs with
  | None -> Ok default
  | Some s -> (
      match int_of_string_opt s with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad integer %s=%s" key s))

let dataset_keys =
  [
    "rows"; "eps"; "delta"; "default-eps"; "analyst-eps"; "universe"; "slack";
    "backend"; "no-cache"; "low-water";
  ]

(* Mirrors Protocol.register_lines: a schema's [dataset] line accepts
   exactly the options of a live `register` command, so a schema file
   prices the same service the server would run. *)
let policy_of_opts kvs =
  let* eps = float_opt "eps" ~default:1.0 kvs in
  let* delta = float_opt "delta" ~default:0. kvs in
  let* default_eps = float_opt "default-eps" ~default:0.1 kvs in
  let* analyst_eps = float_opt "analyst-eps" ~default:0. kvs in
  let* universe = int_opt "universe" ~default:64 kvs in
  let* slack = float_opt "slack" ~default:1e-6 kvs in
  let* low_water = float_opt "low-water" ~default:0. kvs in
  let* backend =
    match find_opt "backend" kvs with
    | None | Some "basic" -> Ok Ledger.Basic
    | Some "advanced" -> Ok (Ledger.Advanced { slack })
    | Some "rdp" ->
        Ok (Ledger.Rdp { delta = (if delta > 0. then delta else 1e-6) })
    | Some other -> Error (Printf.sprintf "bad backend=%s" other)
  in
  if eps <= 0. then Error "eps must be positive"
  else if low_water < 0. then Error "low-water must be >= 0"
  else
    Ok
      {
        Registry.total = Privacy.approx ~epsilon:eps ~delta;
        backend;
        default_epsilon = default_eps;
        analyst_epsilon = (if analyst_eps > 0. then Some analyst_eps else None);
        universe;
        cache = not (has_flag "no-cache" kvs);
        low_water;
      }

let content_lines text =
  (* (line number, tokens), comments and blanks dropped *)
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (n, line) ->
         let toks =
           String.split_on_char ' ' (String.trim line)
           |> List.filter (fun s -> s <> "")
         in
         match toks with
         | [] -> None
         | w :: _ when String.length w > 0 && w.[0] = '#' -> None
         | _ -> Some (n, toks))

let parse_schema text =
  let rec go header cols = function
    | [] -> (
        match header with
        | None -> Error "schema: missing 'dataset NAME ...' line"
        | Some (name, rows, policy) ->
            Registry.schema ~name ~rows ~policy (List.rev cols))
    | (n, toks) :: rest -> (
        match toks with
        | [] -> go header cols rest
        | "dataset" :: name :: kv_toks ->
            if header <> None then
              Error (Printf.sprintf "line %d: duplicate dataset line" n)
            else
              let* rows, policy =
                at_line n
                  (let* kvs = opts ~known:dataset_keys kv_toks in
                   let* rows = int_opt "rows" ~default:1000 kvs in
                   if rows <= 0 then Error "rows must be positive"
                   else
                     let* policy = policy_of_opts kvs in
                     Ok (rows, policy))
              in
              go (Some (name, rows, policy)) cols rest
        | "column" :: name :: kv_toks ->
            let* c =
              at_line n
                (let* kvs = opts ~known:[ "lo"; "hi" ] kv_toks in
                 let* lo = float_opt "lo" ~default:nan kvs in
                 let* hi = float_opt "hi" ~default:nan kvs in
                 if Float.is_nan lo || Float.is_nan hi then
                   Error
                     (Printf.sprintf "column %s needs lo= and hi= bounds" name)
                 else Ok { Registry.col = name; lo; hi })
            in
            go header (c :: cols) rest
        | w :: _ ->
            Error
              (Printf.sprintf
                 "line %d: expected 'dataset' or 'column', got %S" n w))
  in
  go None [] (content_lines text)

type item =
  | Stat of { text : string; query : Query.t; epsilon : float option }
  | Train of { text : string; train_opts : (string * string option) list }
  | Stream of { text : string; stream_opts : (string * string option) list }

let parse_workload text =
  let parse_one (n, toks) =
    match toks with
    | [] -> assert false
    | "train" :: opt_toks ->
        (* option keys are validated here (line-numbered diagnostics);
           values are validated in [simulate], where the schema's
           default ε is known *)
        at_line n
          (let* kvs = opts ~known:Dp_train.Train.keys opt_toks in
           Ok
             (Train
                { text = String.concat " " ("train" :: opt_toks); train_opts = kvs }))
    | "stream" :: opt_toks ->
        at_line n
          (let* kvs = opts ~known:Dp_stream.Stream.keys opt_toks in
           Ok
             (Stream
                {
                  text = String.concat " " ("stream" :: opt_toks);
                  stream_opts = kvs;
                }))
    | expr :: opt_toks ->
        at_line n
          (let* kvs = opts ~known:[ "eps" ] opt_toks in
           let* eps =
             match find_opt "eps" kvs with
             | None -> Ok None
             | Some s -> (
                 match float_of_string_opt s with
                 | Some x when Float.is_finite x -> Ok (Some x)
                 | _ -> Error (Printf.sprintf "bad number eps=%s" s))
           in
           let* query = Query.parse expr in
           Ok (Stat { text = expr; query; epsilon = eps }))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let* q = parse_one line in
        go (q :: acc) rest
  in
  go [] (content_lines text)

(* ------------------------------------------------------------------ *)
(* The static ε-odometer *)

type row = {
  index : int;
  query : string;
  mechanism : string;
  sensitivity : float;
  epsilon : float;
  face : Privacy.budget;
  marginal : Privacy.budget;
  accepted : bool;
}

type composed = {
  backend : Ledger.backend;
  spent : Privacy.budget;
  rejected : int;
}

type report = {
  schema : Registry.schema;
  rows : row list;
  accepted : int;
  rejected : int;
  spent : Privacy.budget;
  remaining : Privacy.budget;
  composed : composed list;
  pass : bool;
}

(* Simulate a live serving run under [backend]: plan each query
   statically and push its charge through a real ledger — the exact
   spend/commit code the engine runs — so the totals (and the
   accept/reject pattern) are bit-identical to an execution. *)
let simulate (s : Registry.schema) ~backend items =
  let s = { s with Registry.policy = { s.policy with backend } } in
  let ledger = Ledger.create ~total:s.policy.total ~backend () in
  (* one code path charges both query kinds: spend through the same
     ledger the live engine uses, then difference the composed spend *)
  let charge_row ~index ~query ~mechanism ~sensitivity ~epsilon
      (charge : Ledger.charge) =
    let before = Ledger.spent ledger in
    let accepted =
      match Ledger.spend ledger charge with Ok () -> true | Error _ -> false
    in
    let after = Ledger.spent ledger in
    {
      index;
      query;
      mechanism;
      sensitivity;
      epsilon;
      face = charge.Ledger.budget;
      marginal =
        {
          Privacy.epsilon =
            Float.max 0. (after.Privacy.epsilon -. before.Privacy.epsilon);
          delta = Float.max 0. (after.Privacy.delta -. before.Privacy.delta);
        };
      accepted;
    }
  in
  let rows =
    List.mapi
      (fun i (it : item) ->
        match it with
        | Stat { text; query; epsilon } -> (
            let eps =
              match epsilon with
              | Some e -> e
              | None -> s.policy.default_epsilon
            in
            match Planner.spec s ~epsilon:eps query with
            | Error msg ->
                Error (Printf.sprintf "query %d (%s): %s" (i + 1) text msg)
            | Ok sp ->
                Ok
                  (charge_row ~index:(i + 1) ~query:(Query.normalize query)
                     ~mechanism:(Planner.mechanism_name sp.Planner.mechanism)
                     ~sensitivity:sp.Planner.sensitivity ~epsilon:eps
                     sp.Planner.charge))
        | Train { text; train_opts } -> (
            (* the exact static half the live engine trains on:
               Dp_train.Train.spec prices from rows and column names
               alone, and the charge below is the same
               {budget = spec.face; rdp = None} the engine spends —
               bit-identical by construction *)
            match
              Dp_train.Train.params_of_opts
                ~default_epsilon:s.policy.default_epsilon train_opts
            with
            | Error msg ->
                Error (Printf.sprintf "query %d (%s): %s" (i + 1) text msg)
            | Ok params -> (
                let cols =
                  Array.to_list
                    (Array.map
                       (fun (c : Registry.col_schema) -> c.Registry.col)
                       s.Registry.cols)
                in
                match
                  Dp_train.Train.spec ~rows:s.Registry.rows ~cols params
                with
                | Error msg ->
                    Error (Printf.sprintf "query %d (%s): %s" (i + 1) text msg)
                | Ok spec ->
                    Ok
                      (charge_row ~index:(i + 1)
                         ~query:(Dp_train.Train.normalize params)
                         ~mechanism:
                           (Dp_train.Train.backend_name
                              params.Dp_train.Train.backend)
                         ~sensitivity:spec.Dp_train.Train.sensitivity
                         ~epsilon:params.Dp_train.Train.epsilon
                         { Ledger.budget = spec.Dp_train.Train.face; rdp = None })))
        | Stream { text; stream_opts } -> (
            (* a whole continual-observation stream priced as one line:
               Dp_stream.Stream.spec is the same function the live
               engine charges at [stream new], and the charge below is
               the same {budget = spec.face; rdp = None} — so the
               analyzer's total is float-bit-identical to serving the
               stream end to end, appends and all (appends are
               pre-paid) *)
            match
              Dp_stream.Stream.params_of_opts
                ~default_epsilon:s.policy.default_epsilon stream_opts
            with
            | Error msg ->
                Error (Printf.sprintf "query %d (%s): %s" (i + 1) text msg)
            | Ok params -> (
                match Dp_stream.Stream.spec params with
                | Error msg ->
                    Error (Printf.sprintf "query %d (%s): %s" (i + 1) text msg)
                | Ok spec ->
                    Ok
                      (charge_row ~index:(i + 1)
                         ~query:(Dp_stream.Stream.normalize params)
                         ~mechanism:Dp_stream.Stream.mechanism_name
                         ~sensitivity:spec.Dp_stream.Stream.sensitivity
                         ~epsilon:params.Dp_stream.Stream.epsilon
                         {
                           Ledger.budget = spec.Dp_stream.Stream.face;
                           rdp = None;
                         }))))
      items
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Error msg :: _ -> Error msg
    | Ok r :: rest -> collect (r :: acc) rest
  in
  let* rows = collect [] rows in
  Ok (rows, Ledger.spent ledger, Ledger.remaining ledger)

let analyze (s : Registry.schema) items =
  let slack =
    match s.policy.backend with Ledger.Advanced { slack } -> slack | _ -> 1e-6
  in
  let rdp_delta =
    match s.policy.backend with
    | Ledger.Rdp { delta } -> delta
    | _ -> if s.policy.total.Privacy.delta > 0. then s.policy.total.Privacy.delta else 1e-6
  in
  let* rows, spent, remaining = simulate s ~backend:s.policy.backend items in
  let composed_under backend =
    let* sim_rows, sim_spent, _ = simulate s ~backend items in
    Ok
      {
        backend;
        spent = sim_spent;
        rejected = List.length (List.filter (fun (r : row) -> not r.accepted) sim_rows);
      }
  in
  let* basic = composed_under Ledger.Basic in
  let* advanced = composed_under (Ledger.Advanced { slack }) in
  let* rdp = composed_under (Ledger.Rdp { delta = rdp_delta }) in
  let rejected = List.length (List.filter (fun (r : row) -> not r.accepted) rows) in
  Ok
    {
      schema = s;
      rows;
      accepted = List.length rows - rejected;
      rejected;
      spent;
      remaining;
      composed = [ basic; advanced; rdp ];
      pass = rejected = 0;
    }

(* ------------------------------------------------------------------ *)
(* Report rendering — deterministic (no data was read, no noise drawn),
   so the output is diffable in tests. *)

let fstr x = Printf.sprintf "%g" x

let pp_report fmt r =
  let s = r.schema in
  Format.fprintf fmt "schema %s: rows=%d columns=%s@." s.Registry.name
    s.Registry.rows
    (String.concat ","
       (Array.to_list
          (Array.map (fun (c : Registry.col_schema) -> c.col) s.Registry.cols)));
  Format.fprintf fmt
    "policy: eps-total=%s delta-total=%s backend=%s default-eps=%s@."
    (fstr s.Registry.policy.total.Privacy.epsilon)
    (fstr s.Registry.policy.total.Privacy.delta)
    (Format.asprintf "%a" Ledger.pp_backend s.Registry.policy.backend)
    (fstr s.Registry.policy.default_epsilon);
  Format.fprintf fmt "workload: %d queries@." (List.length r.rows);
  List.iter
    (fun row ->
      Format.fprintf fmt "  %2d  %-34s %-18s sens=%-10s eps=%-8s charged-eps=%-10s %s@."
        row.index row.query row.mechanism
        (fstr row.sensitivity) (fstr row.epsilon)
        (fstr row.marginal.Privacy.epsilon)
        (if row.accepted then "ok" else "REJECTED"))
    r.rows;
  Format.fprintf fmt "composed totals (static, no data access, no sampling):@.";
  List.iter
    (fun c ->
      Format.fprintf fmt "  %-24s eps=%-12s delta=%s%s@."
        (Format.asprintf "%a" Ledger.pp_backend c.backend)
        (fstr c.spent.Privacy.epsilon)
        (fstr c.spent.Privacy.delta)
        (if c.rejected > 0 then Printf.sprintf "  (%d rejected)" c.rejected
         else ""))
    r.composed;
  if r.pass then
    Format.fprintf fmt
      "verdict: PASS — %d/%d queries affordable, spent eps=%s delta=%s, \
       remaining eps=%s@."
      r.accepted (List.length r.rows)
      (fstr r.spent.Privacy.epsilon)
      (fstr r.spent.Privacy.delta)
      (fstr r.remaining.Privacy.epsilon)
  else
    Format.fprintf fmt
      "verdict: FAIL — %d of %d queries rejected under %s composition \
       (spent eps=%s of %s)@."
      r.rejected (List.length r.rows)
      (Format.asprintf "%a" Ledger.pp_backend s.Registry.policy.backend)
      (fstr r.spent.Privacy.epsilon)
      (fstr s.Registry.policy.total.Privacy.epsilon)
