open Dp_mechanism

type serving = {
  dataset : Registry.dataset;
  ledger : Ledger.t;
  cache : Cache.t;
  mutable answered : int;
  mutable rejected : int;
}

type t = {
  registry : Registry.t;
  servings : (string, serving) Hashtbl.t;
  log : Audit_log.t option;
  rng : Dp_rng.Prng.t;
}

let create ?(seed = 20120330) ?(audit = true) () =
  {
    registry = Registry.create ();
    servings = Hashtbl.create 8;
    log = (if audit then Some (Audit_log.create ()) else None);
    rng = Dp_rng.Prng.create seed;
  }

let register t (ds : Registry.dataset) =
  match Registry.register t.registry ds with
  | Error _ as e -> e
  | Ok () ->
      let ledger =
        Ledger.create ~total:ds.policy.total ~backend:ds.policy.backend
          ?analyst_epsilon:ds.policy.analyst_epsilon ()
      in
      Hashtbl.replace t.servings ds.name
        { dataset = ds; ledger; cache = Cache.create (); answered = 0; rejected = 0 };
      Ok ()

let register_synthetic t ~name ~rows ~policy =
  match Registry.find t.registry name with
  | Some _ -> Error (Printf.sprintf "dataset %S already registered" name)
  | None ->
      let ds = Registry.synthetic ~name ~rows ~policy t.rng in
      Result.map (fun () -> ds) (register t ds)

let datasets t = Registry.names t.registry
let find t name = Registry.find t.registry name

type error =
  | Unknown_dataset of string
  | Bad_query of string
  | Budget_exceeded of Ledger.rejection

let pp_error fmt = function
  | Unknown_dataset name -> Format.fprintf fmt "unknown dataset %S" name
  | Bad_query msg -> Format.fprintf fmt "bad query: %s" msg
  | Budget_exceeded r ->
      Format.fprintf fmt "budget exceeded%s: requested %a, remaining %a"
        (match r.Ledger.analyst with
        | Some a -> Printf.sprintf " for analyst %S" a
        | None -> "")
        Privacy.pp_budget r.Ledger.requested Privacy.pp_budget
        r.Ledger.remaining

type response = {
  answer : Planner.answer;
  mechanism : Planner.mechanism;
  requested : Privacy.budget;
  charged : Privacy.budget;
  cache_hit : bool;
  seq : int;
}

let zero = { Privacy.epsilon = 0.; delta = 0. }

let log_decision t ?analyst ?mechanism ~dataset ~query ~requested ~charged
    ~cache_hit ~verdict () =
  match t.log with
  | None -> -1
  | Some log ->
      (Audit_log.append log ?analyst ?mechanism ~dataset ~query ~requested
         ~charged ~cache_hit ~verdict ())
        .Audit_log.seq

let submit t ?analyst ?epsilon ~dataset query =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv -> (
      let ds = sv.dataset in
      let eps =
        match epsilon with Some e -> e | None -> ds.policy.default_epsilon
      in
      let norm = Query.normalize query in
      (* Cache before planning: a hit replays the stored release without
         touching the raw data (planning is an O(n) scan), and without
         consulting the ledger — post-processing is free even after the
         budget is exhausted. *)
      let key = Printf.sprintf "%s|eps=%.12g|%s" ds.name eps norm in
      let cached = if ds.policy.cache then Cache.lookup sv.cache key else None in
      match cached with
      | Some entry ->
          let seq =
            log_decision t ?analyst
              ~mechanism:(Planner.mechanism_name entry.Cache.mechanism)
              ~dataset ~query:norm ~requested:entry.Cache.requested
              ~charged:zero ~cache_hit:true ~verdict:Audit_log.Cached ()
          in
          Ok
            {
              answer = entry.Cache.answer;
              mechanism = entry.Cache.mechanism;
              requested = entry.Cache.requested;
              charged = zero;
              cache_hit = true;
              seq;
            }
      | None -> (
          match Planner.plan ds ~epsilon:eps query with
          | Error msg ->
              let seq =
                log_decision t ?analyst ~dataset ~query:norm ~requested:zero
                  ~charged:zero ~cache_hit:false
                  ~verdict:(Audit_log.Rejected msg) ()
              in
              ignore seq;
              Error (Bad_query msg)
          | Ok plan -> (
              let before = Ledger.spent sv.ledger in
              match Ledger.spend sv.ledger ?analyst plan.Planner.charge with
              | Error rejection ->
                  sv.rejected <- sv.rejected + 1;
                  let seq =
                    log_decision t ?analyst
                      ~mechanism:(Planner.mechanism_name plan.Planner.mechanism)
                      ~dataset ~query:norm
                      ~requested:plan.Planner.charge.Ledger.budget ~charged:zero
                      ~cache_hit:false
                      ~verdict:(Audit_log.Rejected "budget-exceeded") ()
                  in
                  ignore seq;
                  Error (Budget_exceeded rejection)
              | Ok () ->
                  let after = Ledger.spent sv.ledger in
                  let charged =
                    {
                      Privacy.epsilon =
                        Float.max 0.
                          (after.Privacy.epsilon -. before.Privacy.epsilon);
                      delta =
                        Float.max 0. (after.Privacy.delta -. before.Privacy.delta);
                    }
                  in
                  let answer = plan.Planner.run t.rng in
                  if ds.policy.cache then
                    Cache.store sv.cache key
                      {
                        Cache.answer;
                        mechanism = plan.Planner.mechanism;
                        requested = plan.Planner.charge.Ledger.budget;
                      };
                  sv.answered <- sv.answered + 1;
                  let seq =
                    log_decision t ?analyst
                      ~mechanism:(Planner.mechanism_name plan.Planner.mechanism)
                      ~dataset ~query:norm
                      ~requested:plan.Planner.charge.Ledger.budget ~charged
                      ~cache_hit:false ~verdict:Audit_log.Answered ()
                  in
                  Ok
                    {
                      answer;
                      mechanism = plan.Planner.mechanism;
                      requested = plan.Planner.charge.Ledger.budget;
                      charged;
                      cache_hit = false;
                      seq;
                    })))

let submit_text t ?analyst ?epsilon ~dataset text =
  match Query.parse text with
  | Error msg -> Error (Bad_query msg)
  | Ok q -> submit t ?analyst ?epsilon ~dataset q

type report = {
  dataset : string;
  rows : int;
  queries : int;
  answered : int;
  cache_hits : int;
  rejected : int;
  hit_rate : float;
  backend : Ledger.backend;
  total : Privacy.budget;
  spent : Privacy.budget;
  remaining : Privacy.budget;
  leakage : Meter.reading;
}

let report t ~dataset =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv ->
      let spent = Ledger.spent sv.ledger in
      let hits = Cache.hits sv.cache in
      Ok
        {
          dataset;
          rows = sv.dataset.Registry.rows;
          queries = sv.answered + sv.rejected + hits;
          answered = sv.answered;
          cache_hits = hits;
          rejected = sv.rejected;
          hit_rate = Cache.hit_rate sv.cache;
          backend = Ledger.backend sv.ledger;
          total = Ledger.total sv.ledger;
          spent;
          remaining = Ledger.remaining sv.ledger;
          leakage =
            Meter.reading ~rows:sv.dataset.Registry.rows
              ~universe:sv.dataset.Registry.policy.universe spent;
        }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>dataset %s (%d rows, %a composition)@,\
     queries: %d (%d answered, %d cached, %d rejected), cache hit-rate %.3f@,\
     budget: total %a, spent %a, remaining %a@,\
     leakage: %a@]"
    r.dataset r.rows Ledger.pp_backend r.backend r.queries r.answered
    r.cache_hits r.rejected r.hit_rate Privacy.pp_budget r.total
    Privacy.pp_budget r.spent Privacy.pp_budget r.remaining Meter.pp r.leakage

let records t ~dataset =
  match t.log with
  | None -> []
  | Some log -> Audit_log.for_dataset log dataset

let replay t ~dataset =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv -> (
      match t.log with
      | None -> Ok (Dp_audit.Replay.Consistent zero)
      | Some log ->
          Ok
            (Dp_audit.Replay.replay ~total:sv.dataset.Registry.policy.total
               (Audit_log.to_events log dataset)))

let analyst_spent t ~dataset ~analyst =
  match Hashtbl.find_opt t.servings dataset with
  | None -> zero
  | Some sv -> Ledger.analyst_spent sv.ledger analyst
