open Dp_mechanism
module Train = Dp_train.Train
module Gates = Dp_train.Gates
module Model_store = Dp_train.Model_store
module Stream = Dp_stream.Stream
module Counter = Dp_stream.Counter
module Stream_store = Dp_stream.Stream_store

(* What the pool's ε-lease arbitration says about a prospective charge.
   The gate is consulted immediately before every ledger spend; a
   worker whose lease is expired, superseded, or too small must not
   spend even though its local ledger (which mirrors the full global
   budget) would admit the charge. *)
type lease_verdict =
  | Lease_granted
  | Lease_superseded of { token : int }
      (** this worker's fencing token is stale: a newer incarnation
          holds the shard — refuse and let the supervisor recycle us *)
  | Lease_denied of {
      requested : Dp_mechanism.Privacy.budget;
      remaining : Dp_mechanism.Privacy.budget;
    }  (** the coordinator has no unleased ε left: global exhaustion *)
  | Lease_unavailable of string
      (** the coordinator could not be reached (dropped grant, timeout):
          transient, the client may retry *)

type serving = {
  dataset : Registry.dataset;
  ledger : Ledger.t;
  cache : Cache.t;
  models : Model_store.t;
  streams : Stream_store.t;
  scope : Dp_obs.Metrics.scope;
  mutable answered : int;
  mutable rejected : int;
  mutable withheld : int;
}

type t = {
  registry : Registry.t;
  servings : (string, serving) Hashtbl.t;
  log : Audit_log.t option;
  obs : Dp_obs.Metrics.t;
  trace : Dp_obs.Span.t;
  mutable rng : Dp_rng.Prng.t;
  mutable stream_rng : Dp_rng.Prng.t;
  retry_rng : Dp_rng.Prng.t;
  seed : int;
  faults : Faults.t;
  mutable journal : Journal.t option;
  mutable journal_failed : bool;
  mutable lease_gate :
    (dataset:string -> face:Privacy.budget -> lease_verdict) option;
}

(* Fresh noise key for journaled serving. Recovery replays charges
   without consuming any draws, so a restarted engine that kept the
   seeded stream would hand its first fresh releases the very noise
   values already released before the crash — an analyst who can induce
   restarts could difference pre- and post-crash answers and cancel the
   noise exactly. Noise, unlike cached answers, never needs to be
   reproducible, so every journal attach re-keys the stream from OS
   entropy. *)
let entropy_seed () =
  match
    In_channel.with_open_bin "/dev/urandom" (fun ic ->
        let b = Bytes.create 8 in
        really_input ic b 0 8;
        Int64.to_int (Bytes.get_int64_le b 0))
  with
  | n -> n land max_int
  | exception (Sys_error _ | End_of_file) ->
      (* no urandom: time-and-pid is weaker but still unique per
         process, which is all noise freshness needs *)
      Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ())

let create ?(seed = 20120330) ?(audit = true) ?(obs = true) ?faults () =
  let faults = match faults with Some f -> f | None -> Faults.of_env () in
  {
    registry = Registry.create ();
    servings = Hashtbl.create 8;
    log = (if audit then Some (Audit_log.create ()) else None);
    obs = Dp_obs.Metrics.create ~enabled:obs ();
    trace = Dp_obs.Span.create ~enabled:obs ();
    rng = Dp_rng.Prng.create seed;
    (* Tree-node noise for continual streams draws from its own
       dedicated stream: append traffic must not shift the noise
       positions of one-shot queries (and vice versa), and recovery
       re-keys both independently. The xor constant ("STRM") just keys
       a distinct stream off the same seed. *)
    stream_rng = Dp_rng.Prng.create (seed lxor 0x5354524d);
    (* Backoff jitter draws from a dedicated stream, never the noise
       stream: retry timing is externally observable, so sharing the
       noise stream would leak its position (and shift noise values,
       breaking seed-determinism). Seeded from [seed] so retry schedules
       replay deterministically; the xor constant ("RETR") just keys a
       distinct stream. Journal re-keying deliberately leaves this
       stream alone — it carries no privacy. *)
    retry_rng = Dp_rng.Prng.create (seed lxor 0x52455452);
    seed;
    faults;
    journal = None;
    journal_failed = false;
    lease_gate = None;
  }

let set_lease_gate t gate = t.lease_gate <- gate

let metrics t = t.obs
let trace t = t.trace

let faults t = t.faults
let journal_path t = Option.map Journal.path t.journal

let close t =
  Option.iter Journal.close t.journal;
  t.journal <- None

(* Synthetic datasets are regenerated on recovery, so their generator
   must depend only on stable registration-time facts — never on how
   much of the engine's noise stream other queries have consumed. *)
let dataset_seed t name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0x3FFFFFFF)
    name;
  (t.seed * 31 + !h) land 0x3FFFFFFF

type error =
  | Unknown_dataset of string
  | Bad_query of string
  | Budget_exceeded of Ledger.rejection
  | Degraded of {
      dataset : string;
      remaining : Privacy.budget;
      low_water : float;
    }
  | Unconverged of {
      dataset : string;
      handle : string;
      worst_rhat : float;
      min_ess : float;
      charged : Privacy.budget;
    }
  | Unknown_model of string
  | Unknown_stream of string
  | Lease_lost of { dataset : string; token : int }
  | Transient of string
  | Fatal of string

let pp_error fmt = function
  | Unknown_dataset name -> Format.fprintf fmt "unknown dataset %S" name
  | Bad_query msg -> Format.fprintf fmt "bad query: %s" msg
  | Budget_exceeded r ->
      Format.fprintf fmt "budget exceeded%s: requested %a, remaining %a"
        (match r.Ledger.analyst with
        | Some a -> Printf.sprintf " for analyst %S" a
        | None -> "")
        Privacy.pp_budget r.Ledger.requested Privacy.pp_budget
        r.Ledger.remaining
  | Degraded { dataset; remaining; low_water } ->
      Format.fprintf fmt
        "dataset %S degraded: remaining %a below low-water %g (cache hits only)"
        dataset Privacy.pp_budget remaining low_water
  | Unconverged { dataset; handle; worst_rhat; min_ess; charged } ->
      Format.fprintf fmt
        "training on %S did not converge (model %s withheld): worst split-R̂ \
         %g, min ESS %g; %a remains charged"
        dataset handle worst_rhat min_ess Privacy.pp_budget charged
  | Unknown_model handle -> Format.fprintf fmt "unknown model %S" handle
  | Unknown_stream handle -> Format.fprintf fmt "unknown stream %S" handle
  | Lease_lost { dataset; token } ->
      Format.fprintf fmt
        "lease on %S lost (fencing token %d superseded or expired): this \
         worker refuses fresh charges until restarted"
        dataset token
  | Transient msg -> Format.fprintf fmt "transient failure: %s" msg
  | Fatal msg -> Format.fprintf fmt "fatal failure: %s" msg

(* Journaling. An [Error] from here means the record is not durable:
   for budget charges the caller must withhold the answer (the in-memory
   ledger stays charged, so the accounting can only over-count). *)
let journal_append t record =
  match t.journal with
  | None -> Ok ()
  | Some j -> (
      match Journal.append j record with
      | Ok () -> Ok ()
      | Error (`Transient msg) -> Error (Transient msg)
      | Error (`Fatal msg) ->
          t.journal_failed <- true;
          Error (Fatal msg))

let register_serving t (ds : Registry.dataset) =
  match Registry.register t.registry ds with
  | Error _ as e -> e
  | Ok () ->
      let ledger =
        Ledger.create ~total:ds.policy.total ~backend:ds.policy.backend
          ?analyst_epsilon:ds.policy.analyst_epsilon ()
      in
      Hashtbl.replace t.servings ds.name
        {
          dataset = ds;
          ledger;
          cache = Cache.create ();
          models = Model_store.create ();
          streams = Stream_store.create ();
          scope = Dp_obs.Metrics.dataset t.obs ds.name;
          answered = 0;
          rejected = 0;
          withheld = 0;
        };
      Ok ()

let register t (ds : Registry.dataset) =
  if t.journal <> None then
    Error
      (Printf.sprintf
         "dataset %S: raw datasets cannot be made durable (the journal \
          records a regeneration seed, not column data); use \
          register_synthetic"
         ds.name)
  else register_serving t ds

let register_synthetic t ~name ~rows ~policy =
  match Registry.find t.registry name with
  | Some _ -> Error (Printf.sprintf "dataset %S already registered" name)
  | None -> (
      (* a [BASE~flipN] neighbour must share BASE's generator stream —
         seeding from the full name would give unrelated data, not a
         pair differing in one record *)
      let seed =
        dataset_seed t
          (match Registry.neighbor_flip name with
          | Some (base, _) -> base
          | None -> name)
      in
      match
        Registry.synthetic ~name ~rows ~policy (Dp_rng.Prng.create seed)
      with
      | exception Invalid_argument msg -> Error msg
      | ds -> (
          match register_serving t ds with
          | Error _ as e -> e
          | Ok () -> (
              match journal_append t (Journal.Register { name; rows; seed; policy }) with
              | Ok () -> Ok ds
              | Error e ->
                  (* never servable without being durable *)
                  Registry.remove t.registry name;
                  Hashtbl.remove t.servings name;
                  Error (Format.asprintf "%a" pp_error e))))

let datasets t = Registry.names t.registry
let find t name = Registry.find t.registry name

type response = {
  answer : Planner.answer;
  mechanism : Planner.mechanism;
  requested : Privacy.budget;
  charged : Privacy.budget;
  cache_hit : bool;
  seq : int;
}

let zero = { Privacy.epsilon = 0.; delta = 0. }

let log_decision t ?analyst ?mechanism ~dataset ~query ~requested ~charged
    ~cache_hit ~verdict () =
  match t.log with
  | None -> -1
  | Some log ->
      (Audit_log.append log ?analyst ?mechanism ~dataset ~query ~requested
         ~charged ~cache_hit ~verdict ())
        .Audit_log.seq

let degraded_for t (sv : serving) =
  t.journal_failed
  ||
  let lw = sv.dataset.Registry.policy.low_water in
  lw > 0. && (Ledger.remaining sv.ledger).Privacy.epsilon < lw

(* The pool's ε-lease gate, consulted immediately before every ledger
   spend (one-shot queries, training, stream opens — appends are
   pre-paid). [None] is the single-process fast path: no gate, no
   behavior change. A pool worker's local ledger mirrors the full
   global budget (so composed accounting replays identically on
   merge), which means budget safety across workers rests entirely on
   this gate: the coordinator never leases, in aggregate, more than
   the global ε. *)
let lease_check t ~dataset (face : Privacy.budget) =
  match t.lease_gate with
  | None -> Ok ()
  | Some gate -> (
      match gate ~dataset ~face with
      | Lease_granted -> Ok ()
      | Lease_superseded { token } -> Error (Lease_lost { dataset; token })
      | Lease_denied { requested; remaining } ->
          Error
            (Budget_exceeded { Ledger.requested; remaining; analyst = None })
      | Lease_unavailable msg -> Error (Transient msg))

let lease_reject_reason = function
  | Lease_lost _ -> "lease-lost"
  | Budget_exceeded _ -> "budget-exceeded"
  | _ -> "lease-unavailable"

let submit_serving t sv ?analyst ?epsilon ~dataset query =
  (
      let ds = sv.dataset in
      let eps =
        match epsilon with Some e -> e | None -> ds.policy.default_epsilon
      in
      let norm = Query.normalize query in
      (* Cache before planning: a hit replays the stored release without
         touching the raw data (planning is an O(n) scan), and without
         consulting the ledger — post-processing is free even after the
         budget is exhausted, and still served in degraded mode. *)
      let key = Printf.sprintf "%s|eps=%.12g|%s" ds.name eps norm in
      let cached =
        if ds.policy.cache then begin
          let c0 = Dp_obs.Clock.now_ns () in
          let hit = Cache.lookup sv.cache key in
          Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Cache_lookup_ns
            (Dp_obs.Clock.elapsed_ns c0);
          hit
        end
        else None
      in
      match cached with
      | Some entry ->
          let seq =
            log_decision t ?analyst
              ~mechanism:(Planner.mechanism_name entry.Cache.mechanism)
              ~dataset ~query:norm ~requested:entry.Cache.requested
              ~charged:zero ~cache_hit:true ~verdict:Audit_log.Cached ()
          in
          Ok
            {
              answer = entry.Cache.answer;
              mechanism = entry.Cache.mechanism;
              requested = entry.Cache.requested;
              charged = zero;
              cache_hit = true;
              seq;
            }
      | None when t.journal_failed ->
          Error
            (Fatal
               "journal unavailable: refusing fresh releases, serving cache \
                hits only")
      | None when degraded_for t sv ->
          sv.rejected <- sv.rejected + 1;
          ignore
            (log_decision t ?analyst ~dataset ~query:norm ~requested:zero
               ~charged:zero ~cache_hit:false
               ~verdict:(Audit_log.Rejected "degraded") ());
          Error
            (Degraded
               {
                 dataset;
                 remaining = Ledger.remaining sv.ledger;
                 low_water = ds.policy.low_water;
               })
      | None -> (
          let p0 = Dp_obs.Clock.now_ns () in
          let planned =
            Dp_obs.Span.with_ t.trace ~dataset Dp_obs.Name.Sp_plan (fun () ->
                Planner.plan ds ~epsilon:eps query)
          in
          Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Plan_ns
            (Dp_obs.Clock.elapsed_ns p0);
          match planned with
          | Error msg ->
              ignore
                (log_decision t ?analyst ~dataset ~query:norm ~requested:zero
                   ~charged:zero ~cache_hit:false
                   ~verdict:(Audit_log.Rejected msg) ());
              Error (Bad_query msg)
          | Ok plan -> (
              let sp = plan.Planner.spec in
              match lease_check t ~dataset sp.Planner.charge.Ledger.budget with
              | Error e ->
                  sv.rejected <- sv.rejected + 1;
                  ignore
                    (log_decision t ?analyst
                       ~mechanism:(Planner.mechanism_name sp.Planner.mechanism)
                       ~dataset ~query:norm
                       ~requested:sp.Planner.charge.Ledger.budget ~charged:zero
                       ~cache_hit:false
                       ~verdict:(Audit_log.Rejected (lease_reject_reason e)) ());
                  Error e
              | Ok () -> (
              let before = Ledger.spent sv.ledger in
              let c0 = Dp_obs.Clock.now_ns () in
              let charge_result =
                Dp_obs.Span.with_ t.trace ~dataset Dp_obs.Name.Sp_charge
                  (fun () -> Ledger.spend sv.ledger ?analyst sp.Planner.charge)
              in
              Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Charge_ns
                (Dp_obs.Clock.elapsed_ns c0);
              match charge_result with
              | Error rejection ->
                  sv.rejected <- sv.rejected + 1;
                  ignore
                    (log_decision t ?analyst
                       ~mechanism:(Planner.mechanism_name sp.Planner.mechanism)
                       ~dataset ~query:norm
                       ~requested:sp.Planner.charge.Ledger.budget ~charged:zero
                       ~cache_hit:false
                       ~verdict:(Audit_log.Rejected "budget-exceeded") ());
                  Error (Budget_exceeded rejection)
              | Ok () -> (
                  let after = Ledger.spent sv.ledger in
                  let face = sp.Planner.charge.Ledger.budget in
                  let mech_name = Planner.mechanism_name sp.Planner.mechanism in
                  let charged =
                    {
                      Privacy.epsilon =
                        Float.max 0.
                          (after.Privacy.epsilon -. before.Privacy.epsilon);
                      delta =
                        Float.max 0. (after.Privacy.delta -. before.Privacy.delta);
                    }
                  in
                  let withhold reason err =
                    (* the ledger is already charged; the journal (when
                       durable) and the audit log both record the spend
                       so nothing can under-count, but no answer leaves
                       the engine *)
                    sv.rejected <- sv.rejected + 1;
                    sv.withheld <- sv.withheld + 1;
                    ignore
                      (log_decision t ?analyst ~mechanism:mech_name ~dataset
                         ~query:norm ~requested:face ~charged ~cache_hit:false
                         ~verdict:(Audit_log.Charged_unreleased reason) ());
                    (* best-effort outcome marker: losing it only makes
                       recovery over-count [answered], never the budget *)
                    ignore
                      (journal_append t (Journal.Withheld { dataset; reason }));
                    Error err
                  in
                  (* charge-before-answer: the charge must be durable
                     before any noise is drawn, so a crash from here on
                     can only over-count spent epsilon *)
                  match
                    journal_append t
                      (Journal.Charge
                         {
                           Journal.dataset;
                           analyst;
                           query = norm;
                           mechanism = mech_name;
                           face;
                           marginal = charged;
                           rho = Ledger.rho_of_charge sp.Planner.charge;
                         })
                  with
                  | Error e -> withhold "journal" e
                  | Ok () -> (
                      Faults.check t.faults Faults.Crash_after_charge;
                      let n0 = Dp_obs.Clock.now_ns () in
                      let drawn =
                        Dp_obs.Span.with_ t.trace ~dataset Dp_obs.Name.Sp_noise
                          (fun () ->
                            Faults.with_retries ~jitter:t.retry_rng
                              (fun ~attempt ->
                                Faults.check t.faults ~attempt Faults.Rng;
                                plan.Planner.run t.rng))
                      in
                      Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Noise_ns
                        (Dp_obs.Clock.elapsed_ns n0);
                      match drawn with
                      | Error msg ->
                          withhold "rng" (Transient ("rng exhausted: " ^ msg))
                      | Ok answer ->
                          if ds.policy.cache then begin
                            Cache.store sv.cache key
                              {
                                Cache.answer;
                                mechanism = sp.Planner.mechanism;
                                requested = face;
                              };
                            (* a lost cache record is safe (a future miss
                               re-charges: over-counting), so a failure
                               here does not withhold the answer *)
                            ignore
                              (journal_append t
                                 (Journal.Cache_insert
                                    {
                                      Journal.dataset;
                                      key;
                                      answer;
                                      mechanism = sp.Planner.mechanism;
                                      requested = face;
                                    }))
                          end;
                          sv.answered <- sv.answered + 1;
                          let seq =
                            log_decision t ?analyst ~mechanism:mech_name
                              ~dataset ~query:norm ~requested:face ~charged
                              ~cache_hit:false ~verdict:Audit_log.Answered ()
                          in
                          Ok
                            {
                              answer;
                              mechanism = sp.Planner.mechanism;
                              requested = face;
                              charged;
                              cache_hit = false;
                              seq;
                            }))))))

(* The span/latency wrapper lives outside [submit_serving] so that every
   exit path — cache hit, rejection, withheld answer, even an injected
   crash — ends the submit span and records end-to-end latency. *)
let submit t ?analyst ?epsilon ~dataset query =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv ->
      let t0 = Dp_obs.Clock.now_ns () in
      let h = Dp_obs.Span.begin_ t.trace ~dataset Dp_obs.Name.Sp_submit in
      Fun.protect
        ~finally:(fun () ->
          Dp_obs.Span.end_ t.trace h;
          Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Submit_ns
            (Dp_obs.Clock.elapsed_ns t0))
        (fun () ->
          let result = submit_serving t sv ?analyst ?epsilon ~dataset query in
          (match result with
           | Ok r ->
               Dp_obs.Span.tag t.trace h Dp_obs.Name.T_eps_face
                 r.requested.Privacy.epsilon;
               Dp_obs.Span.tag t.trace h Dp_obs.Name.T_eps_charged
                 r.charged.Privacy.epsilon;
               Dp_obs.Span.tag t.trace h Dp_obs.Name.T_cache_hit
                 (if r.cache_hit then 1. else 0.)
           | Error _ -> ());
          result)

let submit_text t ?analyst ?epsilon ~dataset text =
  match Query.parse text with
  | Error msg -> Error (Bad_query msg)
  | Ok q -> submit t ?analyst ?epsilon ~dataset q

type report = {
  dataset : string;
  rows : int;
  queries : int;
  answered : int;
  cache_hits : int;
  rejected : int;
  hit_rate : float;
  backend : Ledger.backend;
  total : Privacy.budget;
  spent : Privacy.budget;
  remaining : Privacy.budget;
  leakage : Meter.reading;
  degraded : bool;
}

let report t ~dataset =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv ->
      let spent = Ledger.spent sv.ledger in
      let hits = Cache.hits sv.cache in
      Ok
        {
          dataset;
          rows = sv.dataset.Registry.rows;
          queries = sv.answered + sv.rejected + hits;
          answered = sv.answered;
          cache_hits = hits;
          rejected = sv.rejected;
          hit_rate = Cache.hit_rate sv.cache;
          backend = Ledger.backend sv.ledger;
          total = Ledger.total sv.ledger;
          spent;
          remaining = Ledger.remaining sv.ledger;
          leakage =
            Meter.reading ~rows:sv.dataset.Registry.rows
              ~universe:sv.dataset.Registry.policy.universe spent;
          degraded = degraded_for t sv;
        }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>dataset %s (%d rows, %a composition)%s@,\
     queries: %d (%d answered, %d cached, %d rejected), cache hit-rate %.3f@,\
     budget: total %a, spent %a, remaining %a@,\
     leakage: %a@]"
    r.dataset r.rows Ledger.pp_backend r.backend
    (if r.degraded then " [degraded]" else "")
    r.queries r.answered r.cache_hits r.rejected r.hit_rate Privacy.pp_budget
    r.total Privacy.pp_budget r.spent Privacy.pp_budget r.remaining Meter.pp
    r.leakage

let records t ~dataset =
  match t.log with
  | None -> []
  | Some log -> Audit_log.for_dataset log dataset

let replay t ~dataset =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv -> (
      match t.log with
      | None -> Ok (Dp_audit.Replay.Consistent zero)
      | Some log ->
          Ok
            (Dp_audit.Replay.replay ~total:sv.dataset.Registry.policy.total
               (Audit_log.to_events log dataset)))

let analyst_spent t ~dataset ~analyst =
  match Hashtbl.find_opt t.servings dataset with
  | None -> zero
  | Some sv -> Ledger.analyst_spent sv.ledger analyst

(* ------------------------------------------------------------------ *)
(* Served learning: train / predict / model *)

type trained = {
  model : Model_store.model;
  charged : Privacy.budget;
  seq : int;
}

let train_journal_record (m : Model_store.model) =
  Journal.Train
    {
      Journal.dataset = m.Model_store.dataset;
      handle = m.Model_store.handle;
      backend = m.Model_store.backend;
      epsilon = m.Model_store.epsilon;
      chains = m.Model_store.chains;
      steps = m.Model_store.steps;
      beta = m.Model_store.beta;
      face = m.Model_store.face;
      target = m.Model_store.target;
      features = m.Model_store.features;
      theta = m.Model_store.theta;
      rhat = m.Model_store.rhat;
      ess = m.Model_store.ess;
      acceptance = m.Model_store.acceptance;
    }

let train_serving t (sv : serving) ?analyst ~dataset (params : Train.params) =
  let ds = sv.dataset in
  let norm = Train.normalize params in
  let reject verdict err =
    sv.rejected <- sv.rejected + 1;
    ignore
      (log_decision t ?analyst ~dataset ~query:norm ~requested:zero
         ~charged:zero ~cache_hit:false ~verdict ());
    Error err
  in
  if t.journal_failed then
    Error
      (Fatal
         "journal unavailable: refusing fresh releases, serving cache hits \
          only")
  else if degraded_for t sv then
    reject (Audit_log.Rejected "degraded")
      (Degraded
         {
           dataset;
           remaining = Ledger.remaining sv.ledger;
           low_water = ds.Registry.policy.low_water;
         })
  else
    let cols =
      Array.to_list
        (Array.map (fun (c : Registry.column) -> c.Registry.name) ds.columns)
    in
    match Train.spec ~rows:ds.Registry.rows ~cols params with
    | Error msg -> reject (Audit_log.Rejected msg) (Bad_query msg)
    | Ok spec -> (
        let columns =
          Array.map
            (fun (c : Registry.column) ->
              (c.Registry.name, c.Registry.lo, c.Registry.hi, c.Registry.values))
            ds.columns
        in
        match Train.design ~columns ~target:params.Train.target with
        | Error msg -> reject (Audit_log.Rejected msg) (Bad_query msg)
        | Ok design -> (
            let mech_name = Train.backend_name params.Train.backend in
            let face = spec.Train.face in
            let charge = { Ledger.budget = face; rdp = None } in
            match lease_check t ~dataset face with
            | Error e ->
                reject (Audit_log.Rejected (lease_reject_reason e)) e
            | Ok () -> (
            let before = Ledger.spent sv.ledger in
            let c0 = Dp_obs.Clock.now_ns () in
            let charge_result =
              Dp_obs.Span.with_ t.trace ~dataset Dp_obs.Name.Sp_charge
                (fun () -> Ledger.spend sv.ledger ?analyst charge)
            in
            Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Charge_ns
              (Dp_obs.Clock.elapsed_ns c0);
            match charge_result with
            | Error rejection ->
                sv.rejected <- sv.rejected + 1;
                ignore
                  (log_decision t ?analyst ~mechanism:mech_name ~dataset
                     ~query:norm ~requested:face ~charged:zero ~cache_hit:false
                     ~verdict:(Audit_log.Rejected "budget-exceeded") ());
                Error (Budget_exceeded rejection)
            | Ok () -> (
                let after = Ledger.spent sv.ledger in
                let charged =
                  {
                    Privacy.epsilon =
                      Float.max 0.
                        (after.Privacy.epsilon -. before.Privacy.epsilon);
                    delta =
                      Float.max 0.
                        (after.Privacy.delta -. before.Privacy.delta);
                  }
                in
                let withhold reason err =
                  sv.rejected <- sv.rejected + 1;
                  sv.withheld <- sv.withheld + 1;
                  ignore
                    (log_decision t ?analyst ~mechanism:mech_name ~dataset
                       ~query:norm ~requested:face ~charged ~cache_hit:false
                       ~verdict:(Audit_log.Charged_unreleased reason) ());
                  ignore
                    (journal_append t (Journal.Withheld { dataset; reason }));
                  Error err
                in
                (* charge-before-train: the ledger spend must be durable
                   before any chain touches the data, so a crash mid-chain
                   can only over-count spent epsilon *)
                match
                  journal_append t
                    (Journal.Charge
                       {
                         Journal.dataset;
                         analyst;
                         query = norm;
                         mechanism = mech_name;
                         face;
                         marginal = charged;
                         rho = Ledger.rho_of_charge charge;
                       })
                with
                | Error e -> withhold "journal" e
                | Ok () -> (
                    Faults.check t.faults Faults.Crash_after_charge;
                    let gate_hook check =
                      let g0 = Dp_obs.Clock.now_ns () in
                      let report =
                        Dp_obs.Span.with_ t.trace ~dataset Dp_obs.Name.Sp_gate
                          check
                      in
                      Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Gate_ns
                        (Dp_obs.Clock.elapsed_ns g0);
                      report
                    in
                    let outcome =
                      Dp_obs.Span.with_ t.trace ~dataset Dp_obs.Name.Sp_train
                        (fun () -> Train.run ~gate_hook spec design t.rng)
                    in
                    let handle =
                      Printf.sprintf "%s/m%d" dataset
                        (Model_store.size sv.models + 1)
                    in
                    let model_of ~theta ~acceptance (report : Gates.report) =
                      {
                        Model_store.handle;
                        dataset;
                        backend = mech_name;
                        epsilon = params.Train.epsilon;
                        chains = params.Train.chains;
                        steps = params.Train.steps;
                        beta = spec.Train.beta;
                        face;
                        target = params.Train.target;
                        features = Train.public_facts design;
                        theta;
                        rhat =
                          Array.map
                            (fun (c : Gates.coord) -> c.Gates.rhat)
                            report.Gates.coords;
                        ess =
                          Array.map
                            (fun (c : Gates.coord) -> c.Gates.ess)
                            report.Gates.coords;
                        acceptance;
                      }
                    in
                    match outcome with
                    | Train.Released { theta; report; acceptance } -> (
                        let m = model_of ~theta:(Some theta) ~acceptance report in
                        (* the handle exists iff its frame is durable: a
                           model that cannot be journaled is withheld,
                           never released from memory alone *)
                        match journal_append t (train_journal_record m) with
                        | Error e -> withhold "journal" e
                        | Ok () ->
                            Model_store.add sv.models m;
                            sv.answered <- sv.answered + 1;
                            let seq =
                              log_decision t ?analyst ~mechanism:mech_name
                                ~dataset ~query:norm ~requested:face ~charged
                                ~cache_hit:false ~verdict:Audit_log.Answered ()
                            in
                            Ok { model = m; charged; seq })
                    | Train.Withheld { report; acceptance } -> (
                        let m = model_of ~theta:None ~acceptance report in
                        let unconverged =
                          Unconverged
                            {
                              dataset;
                              handle;
                              worst_rhat = Gates.worst_rhat report;
                              min_ess = Gates.min_ess report;
                              charged;
                            }
                        in
                        (* outcome marker first (pairs with the charge),
                           then the durable withheld handle; the charge
                           stands either way — never a refund, never a
                           biased sample *)
                        ignore
                          (journal_append t
                             (Journal.Withheld { dataset; reason = "unconverged" }));
                        sv.rejected <- sv.rejected + 1;
                        sv.withheld <- sv.withheld + 1;
                        ignore
                          (log_decision t ?analyst ~mechanism:mech_name
                             ~dataset ~query:norm ~requested:face ~charged
                             ~cache_hit:false
                             ~verdict:(Audit_log.Charged_unreleased "unconverged")
                             ());
                        match journal_append t (train_journal_record m) with
                        | Error e -> Error e
                        | Ok () ->
                            Model_store.add sv.models m;
                            Error unconverged))))))

let train t ?analyst ~dataset params =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv ->
      let t0 = Dp_obs.Clock.now_ns () in
      let h = Dp_obs.Span.begin_ t.trace ~dataset Dp_obs.Name.Sp_submit in
      Fun.protect
        ~finally:(fun () ->
          Dp_obs.Span.end_ t.trace h;
          Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Train_ns
            (Dp_obs.Clock.elapsed_ns t0))
        (fun () ->
          let result = train_serving t sv ?analyst ~dataset params in
          (match result with
           | Ok r ->
               Dp_obs.Span.tag t.trace h Dp_obs.Name.T_eps_face
                 r.model.Model_store.face.Privacy.epsilon;
               Dp_obs.Span.tag t.trace h Dp_obs.Name.T_eps_charged
                 r.charged.Privacy.epsilon;
               Dp_obs.Span.tag t.trace h Dp_obs.Name.T_chains
                 (float_of_int r.model.Model_store.chains)
           | Error _ -> ());
          result)

let serving_of_handle t handle =
  match String.index_opt handle '/' with
  | None -> None
  | Some i -> Hashtbl.find_opt t.servings (String.sub handle 0 i)

let find_model t handle =
  match serving_of_handle t handle with
  | None -> None
  | Some sv -> Model_store.find sv.models handle

(* Prediction is post-processing of the released θ: no data access, no
   ledger charge, served even in degraded mode and after exhaustion. *)
let predict t handle x =
  match serving_of_handle t handle with
  | None -> Error (Unknown_model handle)
  | Some sv -> (
      if Model_store.find sv.models handle = None then
        Error (Unknown_model handle)
      else
        let p0 = Dp_obs.Clock.now_ns () in
        match Model_store.predict sv.models handle x with
        | Ok v ->
            Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Predict_ns
              (Dp_obs.Clock.elapsed_ns p0);
            Ok v
        | Error msg -> Error (Bad_query msg))

let models t ~dataset =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv -> Ok sv.models

(* ------------------------------------------------------------------ *)
(* Continual observation: stream open / append / read / window.

   The lifecycle inverts the one-shot query shape: the whole privacy
   cost (ε per level × ⌈log₂ N⌉ levels, Stream.spec) is charged once
   when the stream opens; from then on appends mutate long-lived tree
   state and reads are free post-processing of already-noised nodes.
   Durability ordering per append: journal the closing nodes' noisy
   values first, then commit them to the in-memory tree — no read can
   ever release noise that a kill -9 would lose. *)

type stream_opened = {
  stream : Stream_store.stream;
  charged : Privacy.budget;
  seq : int;
}

type appended = { handle : string; t_now : int; nodes_closed : int }

type stream_count = {
  handle : string;
  t_now : int;
  count : float;
  window : int option;  (* None: whole-prefix read *)
  face : Privacy.budget;
  leak : Meter.stream_reading;
}

let stream_open t ?analyst ~dataset (params : Stream.params) =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv -> (
      let ds = sv.dataset in
      let norm = Stream.normalize params in
      let reject verdict err =
        sv.rejected <- sv.rejected + 1;
        ignore
          (log_decision t ?analyst ~dataset ~query:norm ~requested:zero
             ~charged:zero ~cache_hit:false ~verdict ());
        Error err
      in
      if t.journal_failed then
        Error
          (Fatal
             "journal unavailable: refusing fresh releases, serving cache \
              hits only")
      else if degraded_for t sv then
        reject (Audit_log.Rejected "degraded")
          (Degraded
             {
               dataset;
               remaining = Ledger.remaining sv.ledger;
               low_water = ds.Registry.policy.low_water;
             })
      else
        match Stream.spec params with
        | Error msg -> reject (Audit_log.Rejected msg) (Bad_query msg)
        | Ok spec -> (
            let face = spec.Stream.face in
            let charge = { Ledger.budget = face; rdp = None } in
            match lease_check t ~dataset face with
            | Error e ->
                reject (Audit_log.Rejected (lease_reject_reason e)) e
            | Ok () -> (
            let before = Ledger.spent sv.ledger in
            let c0 = Dp_obs.Clock.now_ns () in
            let charge_result =
              Dp_obs.Span.with_ t.trace ~dataset Dp_obs.Name.Sp_charge
                (fun () -> Ledger.spend sv.ledger ?analyst charge)
            in
            Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Charge_ns
              (Dp_obs.Clock.elapsed_ns c0);
            match charge_result with
            | Error rejection ->
                sv.rejected <- sv.rejected + 1;
                ignore
                  (log_decision t ?analyst ~mechanism:Stream.mechanism_name
                     ~dataset ~query:norm ~requested:face ~charged:zero
                     ~cache_hit:false
                     ~verdict:(Audit_log.Rejected "budget-exceeded") ());
                Error (Budget_exceeded rejection)
            | Ok () -> (
                let after = Ledger.spent sv.ledger in
                let charged =
                  {
                    Privacy.epsilon =
                      Float.max 0.
                        (after.Privacy.epsilon -. before.Privacy.epsilon);
                    delta =
                      Float.max 0.
                        (after.Privacy.delta -. before.Privacy.delta);
                  }
                in
                let withhold reason err =
                  sv.rejected <- sv.rejected + 1;
                  sv.withheld <- sv.withheld + 1;
                  ignore
                    (log_decision t ?analyst ~mechanism:Stream.mechanism_name
                       ~dataset ~query:norm ~requested:face ~charged
                       ~cache_hit:false
                       ~verdict:(Audit_log.Charged_unreleased reason) ());
                  ignore
                    (journal_append t (Journal.Withheld { dataset; reason }));
                  Error err
                in
                (* charge-before-open: the whole-lifetime face must be
                   durable before the handle exists, so a crash here can
                   only over-count spent epsilon *)
                match
                  journal_append t
                    (Journal.Charge
                       {
                         Journal.dataset;
                         analyst;
                         query = norm;
                         mechanism = Stream.mechanism_name;
                         face;
                         marginal = charged;
                         rho = Ledger.rho_of_charge charge;
                       })
                with
                | Error e -> withhold "journal" e
                | Ok () -> (
                    Faults.check t.faults Faults.Crash_after_charge;
                    let handle =
                      Printf.sprintf "%s/s%d" dataset
                        (Stream_store.size sv.streams + 1)
                    in
                    (* the handle exists iff its frame is durable, like
                       model handles *)
                    match
                      journal_append t
                        (Journal.Stream_open
                           {
                             Journal.dataset;
                             handle;
                             epsilon = params.Stream.epsilon;
                             horizon = params.Stream.horizon;
                             window = params.Stream.window;
                           })
                    with
                    | Error e -> withhold "journal" e
                    | Ok () ->
                        let stream =
                          {
                            Stream_store.handle;
                            dataset;
                            spec;
                            counter =
                              Counter.create ~epsilon:params.Stream.epsilon
                                ~horizon:params.Stream.horizon;
                            reads = 0;
                          }
                        in
                        Stream_store.add sv.streams stream;
                        sv.answered <- sv.answered + 1;
                        let seq =
                          log_decision t ?analyst
                            ~mechanism:Stream.mechanism_name ~dataset
                            ~query:norm ~requested:face ~charged
                            ~cache_hit:false ~verdict:Audit_log.Answered ()
                        in
                        Ok { stream; charged; seq })))))

let find_stream t handle =
  match serving_of_handle t handle with
  | None -> None
  | Some sv -> Stream_store.find sv.streams handle

let streams t ~dataset =
  match Hashtbl.find_opt t.servings dataset with
  | None -> Error (Unknown_dataset dataset)
  | Some sv -> Ok sv.streams

(* Appends are pre-paid (the open charged the whole lifetime), so they
   are served even in low-water degraded mode — like cache hits, they
   consume no fresh budget. They do need durability: without a working
   journal the closing nodes' noise could be lost after a later read
   released it, so a failed journal refuses appends outright. *)
let append t handle bit =
  match serving_of_handle t handle with
  | None -> Error (Unknown_stream handle)
  | Some sv -> (
      match Stream_store.find sv.streams handle with
      | None -> Error (Unknown_stream handle)
      | Some s ->
          let a0 = Dp_obs.Clock.now_ns () in
          if t.journal_failed then
            Error
              (Fatal
                 "journal unavailable: refusing fresh releases, serving \
                  cache hits only")
          else if bit <> 0 && bit <> 1 then
            Error (Bad_query "append expects 0 or 1")
          else if Counter.t_now s.Stream_store.counter
                  >= s.Stream_store.spec.Stream.params.Stream.horizon
          then
            Error
              (Bad_query
                 (Printf.sprintf "stream %s is past its horizon N=%d" handle
                    s.Stream_store.spec.Stream.params.Stream.horizon))
          else
            let c = s.Stream_store.counter in
            let scale = Counter.noise_scale c in
            let nodes =
              Dp_obs.Span.with_ t.trace ~dataset:s.Stream_store.dataset
                Dp_obs.Name.Sp_noise (fun () ->
                  Counter.prepare c ~bit ~noise:(fun () ->
                      Dp_rng.Sampler.laplace ~mean:0. ~scale t.stream_rng))
            in
            (* noise-before-release, durably: the frame carrying the
               noisy node values is fsynced before the tree mutates *)
            match
              journal_append t
                (Journal.Stream_append
                   { Journal.dataset = s.Stream_store.dataset; handle; bit; nodes })
            with
            | Error e -> Error e
            | Ok () ->
                Faults.check t.faults Faults.Crash_after_charge;
                Counter.commit c ~bit nodes;
                Stream_store.record_append sv.streams;
                Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Append_ns
                  (Dp_obs.Clock.elapsed_ns a0);
                Ok
                  {
                    handle;
                    t_now = Counter.t_now c;
                    nodes_closed = Array.length nodes;
                  })

(* Reads are deterministic post-processing of durable node values: no
   data access, no ledger charge, no fresh noise — served even in
   degraded mode, after budget exhaustion, and with the journal down. *)
let stream_count_of (sv : serving) (s : Stream_store.stream) ~window count =
  s.Stream_store.reads <- s.Stream_store.reads + 1;
  let face = s.Stream_store.spec.Stream.face in
  let t_now = Counter.t_now s.Stream_store.counter in
  {
    handle = s.Stream_store.handle;
    t_now;
    count;
    window;
    face;
    leak =
      Meter.stream_reading ~rows:sv.dataset.Registry.rows
        ~universe:sv.dataset.Registry.policy.universe ~steps:t_now face;
  }

let stream_read t handle =
  match serving_of_handle t handle with
  | None -> Error (Unknown_stream handle)
  | Some sv -> (
      match Stream_store.find sv.streams handle with
      | None -> Error (Unknown_stream handle)
      | Some s ->
          let r0 = Dp_obs.Clock.now_ns () in
          let count = Counter.read s.Stream_store.counter in
          let r = stream_count_of sv s ~window:None count in
          Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Stream_read_ns
            (Dp_obs.Clock.elapsed_ns r0);
          Ok r)

let stream_window t handle ?w () =
  match serving_of_handle t handle with
  | None -> Error (Unknown_stream handle)
  | Some sv -> (
      match Stream_store.find sv.streams handle with
      | None -> Error (Unknown_stream handle)
      | Some s -> (
          let declared = s.Stream_store.spec.Stream.params.Stream.window in
          match (w, declared) with
          | None, 0 ->
              Error
                (Bad_query
                   "stream declared no default window; pass an explicit one")
          | _ -> (
              let w = match w with Some w -> w | None -> declared in
              let r0 = Dp_obs.Clock.now_ns () in
              match Counter.window s.Stream_store.counter ~w with
              | Error msg -> Error (Bad_query msg)
              | Ok count ->
                  let r = stream_count_of sv s ~window:(Some w) count in
                  Dp_obs.Metrics.observe sv.scope Dp_obs.Name.Stream_read_ns
                    (Dp_obs.Clock.elapsed_ns r0);
                  Ok r)))

(* ------------------------------------------------------------------ *)
(* Recovery *)

type recovery = {
  journal_path : string;
  records : int;
  torn_bytes : int;
  datasets : int;
  charges : int;
  cache_entries : int;
  models_recovered : int;
  streams_recovered : int;
  verified : bool;
}

exception Recovery_failed of string

type replay_counts = {
  mutable rc_charges : int;
  mutable rc_cache : int;
  mutable rc_models : int;
  mutable rc_streams : int;
}

(* A [Withheld] marker immediately follows the charge whose answer was
   withheld live (nothing else is journaled in between), so recovered
   stats and audit verdicts match the live run. An unpaired marker —
   its charge's own append failed before it — carries no information
   and is dropped. The one remaining divergence is a genuine crash
   between charge and answer: no marker could be written, so recovery
   conservatively counts that charge as answered (budget-wise the two
   outcomes are identical). *)
let rec pair_outcomes = function
  | (Journal.Charge c as r) :: Journal.Withheld { dataset; reason } :: rest
    when dataset = c.Journal.dataset ->
      (r, Some reason) :: pair_outcomes rest
  | r :: rest -> (r, None) :: pair_outcomes rest
  | [] -> []

let apply_record t counts (record, withheld) =
  match record with
  | Journal.Register { name; rows; seed; policy } -> (
      if Registry.find t.registry name <> None then
        raise
          (Recovery_failed
             (Printf.sprintf "journal registers %S but it already exists" name));
      let ds =
        try Registry.synthetic ~name ~rows ~policy (Dp_rng.Prng.create seed)
        with Invalid_argument msg -> raise (Recovery_failed msg)
      in
      match register_serving t ds with
      | Ok () -> ()
      | Error msg -> raise (Recovery_failed msg))
  | Journal.Charge c -> (
      match Hashtbl.find_opt t.servings c.Journal.dataset with
      | None ->
          raise
            (Recovery_failed
               (Printf.sprintf "journal charges unknown dataset %S"
                  c.Journal.dataset))
      | Some sv ->
          (try
             Ledger.replay_charge sv.ledger ?analyst:c.Journal.analyst
               ~face:c.Journal.face ~rho:c.Journal.rho ()
           with
          | Invalid_argument msg -> raise (Recovery_failed msg)
          | Privacy.Budget_exceeded _ ->
              raise
                (Recovery_failed
                   (Printf.sprintf
                      "journaled charge overdraws analyst budget on %S"
                      c.Journal.dataset)));
          let verdict =
            match withheld with
            | None ->
                sv.answered <- sv.answered + 1;
                Audit_log.Answered
            | Some reason ->
                sv.rejected <- sv.rejected + 1;
                sv.withheld <- sv.withheld + 1;
                Audit_log.Charged_unreleased reason
          in
          ignore
            (log_decision t ?analyst:c.Journal.analyst
               ~mechanism:c.Journal.mechanism ~dataset:c.Journal.dataset
               ~query:c.Journal.query ~requested:c.Journal.face
               ~charged:c.Journal.marginal ~cache_hit:false ~verdict ());
          counts.rc_charges <- counts.rc_charges + 1)
  | Journal.Cache_insert k -> (
      match Hashtbl.find_opt t.servings k.Journal.dataset with
      | None ->
          raise
            (Recovery_failed
               (Printf.sprintf "journal caches unknown dataset %S"
                  k.Journal.dataset))
      | Some sv ->
          Cache.store sv.cache k.Journal.key
            {
              Cache.answer = k.Journal.answer;
              mechanism = k.Journal.mechanism;
              requested = k.Journal.requested;
            };
          counts.rc_cache <- counts.rc_cache + 1)
  | Journal.Withheld _ -> ()
  | Journal.Train m -> (
      match Hashtbl.find_opt t.servings m.Journal.dataset with
      | None ->
          raise
            (Recovery_failed
               (Printf.sprintf "journal trains unknown dataset %S"
                  m.Journal.dataset))
      | Some sv -> (
          match
            Model_store.add sv.models
              {
                Model_store.handle = m.Journal.handle;
                dataset = m.Journal.dataset;
                backend = m.Journal.backend;
                epsilon = m.Journal.epsilon;
                chains = m.Journal.chains;
                steps = m.Journal.steps;
                beta = m.Journal.beta;
                face = m.Journal.face;
                target = m.Journal.target;
                features = m.Journal.features;
                theta = m.Journal.theta;
                rhat = m.Journal.rhat;
                ess = m.Journal.ess;
                acceptance = m.Journal.acceptance;
              }
          with
          | () -> counts.rc_models <- counts.rc_models + 1
          | exception Invalid_argument msg -> raise (Recovery_failed msg)))
  | Journal.Stream_open o -> (
      match Hashtbl.find_opt t.servings o.Journal.dataset with
      | None ->
          raise
            (Recovery_failed
               (Printf.sprintf "journal opens stream on unknown dataset %S"
                  o.Journal.dataset))
      | Some sv -> (
          let params =
            {
              Stream.epsilon = o.Journal.epsilon;
              horizon = o.Journal.horizon;
              window = o.Journal.window;
            }
          in
          match Stream.spec params with
          | exception Invalid_argument msg -> raise (Recovery_failed msg)
          | Error msg -> raise (Recovery_failed msg)
          | Ok spec -> (
              match
                Stream_store.add sv.streams
                  {
                    Stream_store.handle = o.Journal.handle;
                    dataset = o.Journal.dataset;
                    spec;
                    counter =
                      Counter.create ~epsilon:o.Journal.epsilon
                        ~horizon:o.Journal.horizon;
                    reads = 0;
                  }
              with
              | () -> counts.rc_streams <- counts.rc_streams + 1
              | exception Invalid_argument msg ->
                  raise (Recovery_failed msg))))
  | Journal.Stream_append a -> (
      (* replay goes through [commit] alone — the journaled noisy node
         values are applied verbatim, consuming zero PRNG draws, so the
         rebuilt tree releases bit-identical counts *)
      match Hashtbl.find_opt t.servings a.Journal.dataset with
      | None ->
          raise
            (Recovery_failed
               (Printf.sprintf "journal appends to unknown dataset %S"
                  a.Journal.dataset))
      | Some sv -> (
          match Stream_store.find sv.streams a.Journal.handle with
          | None ->
              raise
                (Recovery_failed
                   (Printf.sprintf "journal appends to unknown stream %S"
                      a.Journal.handle))
          | Some s -> (
              match
                Counter.commit s.Stream_store.counter ~bit:a.Journal.bit
                  a.Journal.nodes
              with
              | () -> Stream_store.record_append sv.streams
              | exception Invalid_argument msg ->
                  raise (Recovery_failed msg))))

(* The rebuilt audit trace must re-verify: replaying the journaled
   marginals through the plain basic accountant (Dp_audit.Replay) has
   to land on the rebuilt ledger's composed spend, exactly as for a
   live engine. With auditing off there is no rebuilt log, so the
   events come straight from the journal's charge records instead. *)
let verify_recovered t journal_records =
  let journal_events name =
    List.filter_map
      (function
        | Journal.Charge c when c.Journal.dataset = name ->
            Some
              {
                Dp_audit.Replay.label = c.Journal.query;
                budget = c.Journal.marginal;
              }
        | _ -> None)
      journal_records
  in
  Hashtbl.fold
    (fun name (sv : serving) acc ->
      acc
      &&
      let outcome =
        match t.log with
        | Some log ->
            Dp_audit.Replay.replay ~total:sv.dataset.Registry.policy.total
              (Audit_log.to_events log name)
        | None ->
            Dp_audit.Replay.replay ~total:sv.dataset.Registry.policy.total
              (journal_events name)
      in
      match outcome with
      | Dp_audit.Replay.Overdraft _ -> false
      | Dp_audit.Replay.Consistent replayed ->
          let spent = Ledger.spent sv.ledger in
          Float.abs (replayed.Privacy.epsilon -. spent.Privacy.epsilon)
          <= 1e-9 *. Float.max 1. spent.Privacy.epsilon)
    t.servings true

let open_journal_inner t path =
  (
    match
      Journal.open_ ~faults:t.faults
        ~obs:(Dp_obs.Metrics.global t.obs)
        ~jitter:t.retry_rng path
    with
    | Error msg -> Error msg
    | Ok (j, records, stats) -> (
        let counts =
          { rc_charges = 0; rc_cache = 0; rc_models = 0; rc_streams = 0 }
        in
        let n_datasets_before = Hashtbl.length t.servings in
        match List.iter (apply_record t counts) (pair_outcomes records) with
        | exception Recovery_failed msg ->
            Journal.close j;
            Error (Printf.sprintf "journal %s: recovery failed: %s" path msg)
        | () ->
            let verified = verify_recovered t records in
            if not verified then begin
              Journal.close j;
              Error
                (Printf.sprintf
                   "journal %s: recovered state failed audit replay \
                    verification"
                   path)
            end
            else begin
              (* replay consumed no draws: re-key both noise streams so
                 post-recovery releases (answers and tree nodes alike)
                 can never repeat pre-crash ones *)
              t.rng <- Dp_rng.Prng.create (entropy_seed ());
              t.stream_rng <- Dp_rng.Prng.create (entropy_seed ());
              t.journal <- Some j;
              Ok
                {
                  journal_path = path;
                  records = stats.Journal.records;
                  torn_bytes = stats.Journal.torn_bytes;
                  datasets = Hashtbl.length t.servings - n_datasets_before;
                  charges = counts.rc_charges;
                  cache_entries = counts.rc_cache;
                  models_recovered = counts.rc_models;
                  streams_recovered = counts.rc_streams;
                  verified;
                }
            end))

let[@dp.sanitizer] open_journal t path =
  if t.journal <> None then Error "a journal is already attached"
  else begin
    let r0 = Dp_obs.Clock.now_ns () in
    let h = Dp_obs.Span.begin_ t.trace Dp_obs.Name.Sp_recovery in
    let result =
      Fun.protect
        ~finally:(fun () ->
          Dp_obs.Span.end_ t.trace h;
          Dp_obs.Metrics.observe
            (Dp_obs.Metrics.global t.obs)
            Dp_obs.Name.Recovery_ns
            (Dp_obs.Clock.elapsed_ns r0))
        (fun () -> open_journal_inner t path)
    in
    (match result with
    | Ok r -> Dp_obs.Span.tag t.trace h Dp_obs.Name.T_records (float_of_int r.records)
    | Error _ -> ());
    result
  end

(* ------------------------------------------------------------------ *)
(* Metrics snapshot *)

let draws_counter = function
  | Draws.Laplace -> Dp_obs.Name.Draws_laplace
  | Draws.Geometric -> Dp_obs.Name.Draws_geometric
  | Draws.Gaussian -> Dp_obs.Name.Draws_gaussian
  | Draws.Discrete_gaussian -> Dp_obs.Name.Draws_discrete_gaussian
  | Draws.Exponential -> Dp_obs.Name.Draws_exponential
  | Draws.Randomized_response -> Dp_obs.Name.Draws_randomized_response

(* Counters that mirror privacy-critical engine state (answered counts,
   spent/remaining ε, degradation) are written at snapshot time from the
   authoritative sources — ledger, cache, serving stats — rather than
   incremented on the hot path. That keeps submit cheap and, more
   importantly, makes recovered and live snapshots agree by
   construction: whatever the journal replay rebuilt is what gets
   exported. Latency histograms and journal/draw counters accumulate
   live. *)
let refresh_metrics t =
  if Dp_obs.Metrics.enabled t.obs then begin
    let g = Dp_obs.Metrics.global t.obs in
    Dp_obs.Metrics.set_gauge g Dp_obs.Name.Datasets_serving
      (float_of_int (Hashtbl.length t.servings));
    Dp_obs.Metrics.set_gauge g Dp_obs.Name.Journal_attached
      (match t.journal with
      | Some _ when not t.journal_failed -> 1.
      | _ -> 0.);
    Array.iter
      (fun k -> Dp_obs.Metrics.set_counter g (draws_counter k) (Draws.count k))
      Draws.all;
    Hashtbl.iter
      (fun _ sv ->
        let s = sv.scope in
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Queries_answered sv.answered;
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Queries_rejected sv.rejected;
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Queries_withheld sv.withheld;
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Cache_hits (Cache.hits sv.cache);
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Cache_misses
          (Cache.misses sv.cache);
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Trains_released
          (Model_store.released sv.models);
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Trains_withheld
          (Model_store.withheld sv.models);
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Predicts_served
          (Model_store.predicts sv.models);
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Models_stored
          (float_of_int (Model_store.size sv.models));
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Stream_appends
          (Stream_store.appends sv.streams);
        Dp_obs.Metrics.set_counter s Dp_obs.Name.Stream_reads
          (Stream_store.reads sv.streams);
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Streams_open
          (float_of_int (Stream_store.size sv.streams));
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Stream_depth
          (float_of_int (Stream_store.max_depth sv.streams));
        let spent = Ledger.spent sv.ledger in
        let remaining = Ledger.remaining sv.ledger in
        let total = Ledger.total sv.ledger in
        let m0 = Dp_obs.Clock.now_ns () in
        let leak =
          Meter.reading ~rows:sv.dataset.Registry.rows
            ~universe:sv.dataset.Registry.policy.universe spent
        in
        Dp_obs.Metrics.observe s Dp_obs.Name.Meter_ns
          (Dp_obs.Clock.elapsed_ns m0);
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Eps_total total.Privacy.epsilon;
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Eps_spent spent.Privacy.epsilon;
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Eps_remaining
          remaining.Privacy.epsilon;
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Delta_spent spent.Privacy.delta;
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Cache_entries
          (float_of_int (Cache.size sv.cache));
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Cache_hit_rate
          (Cache.hit_rate sv.cache);
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Degraded_mode
          (if degraded_for t sv then 1. else 0.);
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Mi_bound_nats
          leak.Meter.mi_bound_nats;
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Capacity_bound_nats
          leak.Meter.capacity_bound_nats;
        Dp_obs.Metrics.set_gauge s Dp_obs.Name.Min_entropy_leakage_bits
          (match leak.Meter.min_entropy_leakage_bits with
          | Some b -> b
          | None -> 0.))
      t.servings
  end

let metrics_lines ?(spans = true) t =
  refresh_metrics t;
  if spans then Dp_obs.Export.dump ~trace:t.trace t.obs
  else Dp_obs.Export.dump t.obs
