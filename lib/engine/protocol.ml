open Dp_mechanism

let fstr x = Printf.sprintf "%g" x

let max_line_bytes = 4096
let max_reply_lines = 256

(* Multi-line replies (report, log, metrics) are capped so one request
   cannot stream an unbounded reply at a slow client and wedge the
   single-threaded network frontend behind it. The trailer is indented
   like any continuation line, so tagged-reply parsers stay happy. *)
let cap_reply lines =
  let n = List.length lines in
  if n <= max_reply_lines then lines
  else
    List.filteri (fun i _ -> i < max_reply_lines - 1) lines
    @ [ Printf.sprintf "  truncated=%d" (n - (max_reply_lines - 1)) ]

(* key=value option parsing; bare words are flags. Strict: unknown and
   duplicate keys are rejected outright, so a fuzz-found garbage line is
   never half-parsed into a valid request. *)
let parse_opts ~known tokens =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest ->
        let key, value =
          match String.index_opt tok '=' with
          | Some i ->
              ( String.sub tok 0 i,
                Some (String.sub tok (i + 1) (String.length tok - i - 1)) )
          | None -> (tok, None)
        in
        if not (List.mem key known) then
          Error
            (Printf.sprintf "err bad-argument unknown option %s (known: %s)"
               key (String.concat " " known))
        else if List.mem_assoc key acc then
          Error (Printf.sprintf "err bad-argument duplicate option %s" key)
        else go ((key, value) :: acc) rest
  in
  go [] tokens

let find_opt key opts =
  List.find_map (fun (k, v) -> if k = key then v else None) opts

let has_flag key opts = List.exists (fun (k, v) -> k = key && v = None) opts

let float_opt key ~default opts =
  match find_opt key opts with
  | None -> Ok default
  | Some s -> (
      match float_of_string_opt s with
      | Some x when Float.is_finite x -> Ok x
      | _ -> Error (Printf.sprintf "err bad-argument %s=%s" key s))

let int_opt key ~default opts =
  match find_opt key opts with
  | None -> Ok default
  | Some s -> (
      match int_of_string_opt s with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "err bad-argument %s=%s" key s))

let ( let* ) = Result.bind

let register_keys =
  [
    "rows"; "eps"; "delta"; "default-eps"; "analyst-eps"; "universe"; "slack";
    "backend"; "no-cache"; "low-water";
  ]

let register_lines eng name opts_tokens =
  let result =
    let* opts = parse_opts ~known:register_keys opts_tokens in
    let* rows = int_opt "rows" ~default:1000 opts in
    let* eps = float_opt "eps" ~default:1.0 opts in
    let* delta = float_opt "delta" ~default:0. opts in
    let* default_eps = float_opt "default-eps" ~default:0.1 opts in
    let* analyst_eps = float_opt "analyst-eps" ~default:0. opts in
    let* universe = int_opt "universe" ~default:64 opts in
    let* slack = float_opt "slack" ~default:1e-6 opts in
    let* low_water = float_opt "low-water" ~default:0. opts in
    let* backend =
      match find_opt "backend" opts with
      | None | Some "basic" -> Ok Ledger.Basic
      | Some "advanced" -> Ok (Ledger.Advanced { slack })
      | Some "rdp" ->
          Ok (Ledger.Rdp { delta = (if delta > 0. then delta else 1e-6) })
      | Some other ->
          Error (Printf.sprintf "err bad-argument backend=%s" other)
    in
    if rows <= 0 then Error "err bad-argument rows must be positive"
    else if eps <= 0. then Error "err bad-argument eps must be positive"
    else if low_water < 0. then
      Error "err bad-argument low-water must be >= 0"
    else
      let policy =
        {
          Registry.total = Privacy.approx ~epsilon:eps ~delta;
          backend;
          default_epsilon = default_eps;
          analyst_epsilon = (if analyst_eps > 0. then Some analyst_eps else None);
          universe;
          cache = not (has_flag "no-cache" opts);
          low_water;
        }
      in
      Result.map_error
        (fun msg -> "err register-failed " ^ msg)
        (Engine.register_synthetic eng ~name ~rows ~policy)
  in
  match result with
  | Error line -> [ line ]
  | Ok ds ->
      [
        Printf.sprintf "ok registered name=%s rows=%d cols=%s eps=%s delta=%s backend=%s"
          ds.Registry.name ds.Registry.rows
          (String.concat ","
             (Array.to_list
                (Array.map
                   (fun (c : Registry.column) -> c.name)
                   ds.Registry.columns)))
          (fstr ds.Registry.policy.total.Privacy.epsilon)
          (fstr ds.Registry.policy.total.Privacy.delta)
          (Format.asprintf "%a" Ledger.pp_backend ds.Registry.policy.backend);
      ]

let answer_string = function
  | Planner.Scalar v -> Printf.sprintf "value=%.6f" v
  | Planner.Vector vs ->
      Printf.sprintf "values=[%s]"
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.6f") vs)))

let error_lines (e : Engine.error) =
  match e with
  | Engine.Unknown_dataset name ->
      [ Printf.sprintf "err unknown-dataset %s" name ]
  | Engine.Bad_query msg -> [ Printf.sprintf "err bad-query %s" msg ]
  | Engine.Budget_exceeded rej ->
      [
        Printf.sprintf "err budget-exceeded requested=%s remaining=%s%s"
          (fstr rej.Ledger.requested.Privacy.epsilon)
          (fstr rej.Ledger.remaining.Privacy.epsilon)
          (match rej.Ledger.analyst with
          | Some a -> " analyst=" ^ a
          | None -> "");
      ]
  | Engine.Degraded { dataset; remaining; low_water } ->
      [
        Printf.sprintf
          "err degraded dataset=%s eps-remaining=%s low-water=%s cache-hits-only"
          dataset
          (fstr remaining.Privacy.epsilon)
          (fstr low_water);
      ]
  | Engine.Unconverged { dataset = _; handle; worst_rhat; min_ess; charged } ->
      [
        Printf.sprintf
          "err degraded reason=unconverged model=%s rhat=%s ess=%s \
           eps-charged=%s"
          handle (fstr worst_rhat) (fstr min_ess)
          (fstr charged.Privacy.epsilon);
      ]
  | Engine.Unknown_model handle ->
      [ Printf.sprintf "err unknown-model %s" handle ]
  | Engine.Unknown_stream handle ->
      [ Printf.sprintf "err unknown-stream %s" handle ]
  | Engine.Lease_lost { dataset; token } ->
      (* degraded, not transient: retrying against THIS worker cannot
         succeed — the supervisor must recycle it first. A retrying
         client reconnects and lands on a live-leased worker. *)
      [
        Printf.sprintf "err degraded reason=lease-lost dataset=%s token=%d"
          dataset token;
      ]
  | Engine.Transient msg -> [ "err transient " ^ msg ]
  | Engine.Fatal msg -> [ "err fatal " ^ msg ]

let query_lines eng dataset expr opts_tokens =
  match parse_opts ~known:[ "eps"; "analyst" ] opts_tokens with
  | Error line -> [ line ]
  | Ok opts -> (
      let analyst = find_opt "analyst" opts in
      match find_opt "eps" opts with
      | Some s when float_of_string_opt s = None ->
          [ Printf.sprintf "err bad-argument eps=%s" s ]
      | eps_opt -> (
          let epsilon = Option.bind eps_opt float_of_string_opt in
          match Engine.submit_text eng ?analyst ?epsilon ~dataset expr with
          | Ok r ->
              [
                Printf.sprintf "ok seq=%d %s mechanism=%s eps-charged=%s cache=%s"
                  r.Engine.seq
                  (answer_string r.Engine.answer)
                  (Planner.mechanism_name r.Engine.mechanism)
                  (fstr r.Engine.charged.Privacy.epsilon)
                  (if r.Engine.cache_hit then "hit" else "miss");
              ]
          | Error e -> error_lines e))

let report_lines eng dataset =
  match Engine.report eng ~dataset with
  | Error e -> error_lines e
  | Ok r ->
      let lk = r.Engine.leakage in
      [
        Printf.sprintf "report dataset=%s rows=%d backend=%s mode=%s"
          r.Engine.dataset r.Engine.rows
          (Format.asprintf "%a" Ledger.pp_backend r.Engine.backend)
          (if r.Engine.degraded then "degraded" else "ok");
        Printf.sprintf
          "  queries=%d answered=%d cache-hits=%d rejected=%d hit-rate=%.3f"
          r.Engine.queries r.Engine.answered r.Engine.cache_hits
          r.Engine.rejected r.Engine.hit_rate;
        Printf.sprintf
          "  eps-total=%s eps-spent=%s eps-remaining=%s delta-spent=%s"
          (fstr r.Engine.total.Privacy.epsilon)
          (fstr r.Engine.spent.Privacy.epsilon)
          (fstr r.Engine.remaining.Privacy.epsilon)
          (fstr r.Engine.spent.Privacy.delta);
        Printf.sprintf
          "  leakage: mi-bound=%s nats (%s bits/record) capacity-bound=%s nats%s"
          (fstr lk.Meter.mi_bound_nats)
          (fstr lk.Meter.mi_bound_bits)
          (fstr lk.Meter.capacity_bound_nats)
          (match lk.Meter.min_entropy_leakage_bits with
          | Some b -> Printf.sprintf " min-entropy-leakage=%s bits" (fstr b)
          | None -> "");
      ]

let status_lines eng =
  let datasets = Engine.datasets eng in
  Printf.sprintf "ok status datasets=%d journal=%s faults=%s"
    (List.length datasets)
    (match Engine.journal_path eng with Some p -> p | None -> "off")
    (Format.asprintf "%a" Faults.pp (Engine.faults eng))
  :: List.map
       (fun name ->
         match Engine.report eng ~dataset:name with
         | Error _ -> Printf.sprintf "  dataset %s mode=unknown" name
         | Ok r ->
             Printf.sprintf
               "  dataset %s eps-spent=%s eps-remaining=%s answered=%d \
                cache-hits=%d hit-rate=%.3f mode=%s"
               name
               (fstr r.Engine.spent.Privacy.epsilon)
               (fstr r.Engine.remaining.Privacy.epsilon)
               r.Engine.answered r.Engine.cache_hits r.Engine.hit_rate
               (if r.Engine.degraded then "degraded" else "ok"))
       datasets

let metrics_reply eng =
  let lines = Engine.metrics_lines eng in
  Printf.sprintf "ok metrics lines=%d" (List.length lines)
  :: List.map (fun l -> "  " ^ l) lines

let log_lines eng dataset =
  match Engine.records eng ~dataset with
  | [] -> [ "ok log empty" ]
  | rs ->
      Printf.sprintf "ok log entries=%d" (List.length rs)
      :: List.map (fun r -> Format.asprintf "  %a" Audit_log.pp_record r) rs

let replay_lines eng dataset =
  match Engine.replay eng ~dataset with
  | Error e -> error_lines e
  | Ok outcome -> (
      match outcome with
      | Dp_audit.Replay.Consistent spent ->
          [
            Printf.sprintf "ok replay consistent eps-spent=%s"
              (fstr spent.Privacy.epsilon);
          ]
      | Dp_audit.Replay.Overdraft _ ->
          [ Format.asprintf "err replay %a" Dp_audit.Replay.pp_outcome outcome ])

(* --------------------------------------------------------------- *)
(* Served learning: train / predict / model *)

let train_keys = "analyst" :: Dp_train.Train.keys

let gate_summary ~rhat ~ess =
  if Array.length rhat = 0 then "rhat=deterministic ess=deterministic"
  else
    Printf.sprintf "rhat=%s ess=%s"
      (fstr (Array.fold_left Float.max neg_infinity rhat))
      (fstr (Array.fold_left Float.min infinity ess))

let train_lines eng name opts_tokens =
  match Engine.find eng name with
  | None -> [ Printf.sprintf "err unknown-dataset %s" name ]
  | Some ds -> (
      match parse_opts ~known:train_keys opts_tokens with
      | Error line -> [ line ]
      | Ok opts -> (
          let analyst = find_opt "analyst" opts in
          let params_opts = List.filter (fun (k, _) -> k <> "analyst") opts in
          match
            Dp_train.Train.params_of_opts
              ~default_epsilon:ds.Registry.policy.default_epsilon params_opts
          with
          | Error msg -> [ "err bad-argument " ^ msg ]
          | Ok params -> (
              match Engine.train eng ?analyst ~dataset:name params with
              | Error e -> error_lines e
              | Ok r ->
                  let m = r.Engine.model in
                  [
                    Printf.sprintf
                      "ok trained model=%s backend=%s eps-charged=%s \
                       eps-face=%s chains=%d steps=%d %s acceptance=%.3f \
                       released=yes"
                      m.Dp_train.Model_store.handle
                      m.Dp_train.Model_store.backend
                      (fstr r.Engine.charged.Privacy.epsilon)
                      (fstr m.Dp_train.Model_store.face.Privacy.epsilon)
                      m.Dp_train.Model_store.chains
                      m.Dp_train.Model_store.steps
                      (gate_summary ~rhat:m.Dp_train.Model_store.rhat
                         ~ess:m.Dp_train.Model_store.ess)
                      m.Dp_train.Model_store.acceptance;
                  ])))

let parse_point csv =
  let parts = String.split_on_char ',' csv in
  let floats = List.map float_of_string_opt parts in
  if List.exists Option.is_none floats then None
  else Some (Array.of_list (List.filter_map Fun.id floats))

let predict_lines eng handle csv =
  match parse_point csv with
  | None ->
      [ Printf.sprintf "err bad-argument predict point %s (want x1,x2,...)" csv ]
  | Some x -> (
      match Engine.predict eng handle x with
      | Ok v ->
          (* eps-charged=0 is the point: prediction is post-processing *)
          [ Printf.sprintf "ok predict model=%s value=%.6f eps-charged=0" handle v ]
      | Error e -> error_lines e)

(* θ in hex floats: the chaos harness diffs this line across kill -9
   recovery, so it must round-trip every bit. *)
let theta_line theta =
  Printf.sprintf "  theta=[%s]"
    (String.concat ","
       (Array.to_list (Array.map (Printf.sprintf "%h") theta)))

let model_lines eng handle =
  match Engine.find_model eng handle with
  | None -> [ Printf.sprintf "err unknown-model %s" handle ]
  | Some m ->
      let open Dp_train.Model_store in
      [
        Printf.sprintf "ok model %s dataset=%s backend=%s released=%s" m.handle
          m.dataset m.backend
          (match m.theta with Some _ -> "yes" | None -> "no");
        Printf.sprintf
          "  eps=%s eps-face=%s chains=%d steps=%d beta=%s target=%s \
           features=%s"
          (fstr m.epsilon)
          (fstr m.face.Privacy.epsilon)
          m.chains m.steps (fstr m.beta) m.target
          (String.concat ","
             (Array.to_list (Array.map (fun (n, _, _) -> n) m.features)));
        Printf.sprintf "  gate %s acceptance=%.3f"
          (gate_summary ~rhat:m.rhat ~ess:m.ess)
          m.acceptance;
      ]
      @ (match m.theta with Some theta -> [ theta_line theta ] | None -> [])

(* --------------------------------------------------------------- *)
(* Continual observation: stream new / append / stream read / stream
   window. Released counts are printed in hex floats alongside the
   human-readable value: the chaos harness diffs these lines across
   kill -9 recovery, so they must round-trip every bit. *)

let stream_keys = "analyst" :: Dp_stream.Stream.keys

let stream_new_lines eng name opts_tokens =
  match Engine.find eng name with
  | None -> [ Printf.sprintf "err unknown-dataset %s" name ]
  | Some ds -> (
      match parse_opts ~known:stream_keys opts_tokens with
      | Error line -> [ line ]
      | Ok opts -> (
          let analyst = find_opt "analyst" opts in
          let params_opts = List.filter (fun (k, _) -> k <> "analyst") opts in
          match
            Dp_stream.Stream.params_of_opts
              ~default_epsilon:ds.Registry.policy.default_epsilon params_opts
          with
          | Error msg -> [ "err bad-argument " ^ msg ]
          | Ok params -> (
              match Engine.stream_open eng ?analyst ~dataset:name params with
              | Error e -> error_lines e
              | Ok r ->
                  let s = r.Engine.stream in
                  let spec = s.Dp_stream.Stream_store.spec in
                  [
                    Printf.sprintf
                      "ok stream handle=%s N=%d window=%d levels=%d \
                       eps-level=%s eps-face=%s eps-charged=%s mechanism=tree"
                      s.Dp_stream.Stream_store.handle
                      spec.Dp_stream.Stream.params.Dp_stream.Stream.horizon
                      spec.Dp_stream.Stream.params.Dp_stream.Stream.window
                      spec.Dp_stream.Stream.levels
                      (fstr spec.Dp_stream.Stream.params.Dp_stream.Stream.epsilon)
                      (fstr spec.Dp_stream.Stream.face.Privacy.epsilon)
                      (fstr r.Engine.charged.Privacy.epsilon);
                  ])))

let append_lines eng handle bit_str =
  match int_of_string_opt bit_str with
  | None -> [ Printf.sprintf "err bad-argument append bit %s (want 0|1)" bit_str ]
  | Some bit -> (
      match Engine.append eng handle bit with
      | Error e -> error_lines e
      | Ok a ->
          [
            Printf.sprintf "ok append stream=%s t=%d nodes-closed=%d"
              a.Engine.handle a.Engine.t_now a.Engine.nodes_closed;
          ])

let stream_count_lines tag (c : Engine.stream_count) =
  [
    Printf.sprintf
      "ok %s stream=%s t=%d%s count=%.6f count-hex=%h eps-charged=0" tag
      c.Engine.handle c.Engine.t_now
      (match c.Engine.window with
      | Some w -> Printf.sprintf " w=%d" w
      | None -> "")
      c.Engine.count c.Engine.count;
    Printf.sprintf "  leakage: mi-bound=%s nats mi-per-step=%s nats steps=%d"
      (fstr c.Engine.leak.Meter.total.Meter.mi_bound_nats)
      (fstr c.Engine.leak.Meter.per_step_mi_nats)
      c.Engine.leak.Meter.steps;
  ]

let stream_read_lines eng handle =
  match Engine.stream_read eng handle with
  | Error e -> error_lines e
  | Ok c -> stream_count_lines "stream-read" c

let stream_window_lines eng handle opts_tokens =
  match parse_opts ~known:[ "w" ] opts_tokens with
  | Error line -> [ line ]
  | Ok opts -> (
      match int_opt "w" ~default:(-1) opts with
      | Error line -> [ line ]
      | Ok w -> (
          let w = if w < 0 then None else Some w in
          match Engine.stream_window eng handle ?w () with
          | Error e -> error_lines e
          | Ok c -> stream_count_lines "stream-window" c))

let help_lines =
  [
    "ok commands:";
    "  register NAME [rows=N] [eps=E] [delta=D] [backend=basic|advanced|rdp]";
    "           [slack=S] [default-eps=E] [analyst-eps=E] [universe=U]";
    "           [low-water=E] [no-cache]";
    "  query NAME EXPR [eps=E] [analyst=A]   e.g. query demo mean(income) eps=0.2";
    "  train NAME [backend=gibbs|objpert] [target=COL] [eps=E] [chains=N]";
    "        [steps=N] [burn=N] [step-std=S] [lambda=L] [rhat-max=R]";
    "        [ess-min=E] [analyst=A]       releases a model handle NAME/mK";
    "  predict HANDLE x1,x2,...              free post-processing of a release";
    "  model HANDLE                          handle metadata, gate verdict, theta";
    "  stream new NAME [eps=E] [N=L] [window=W] [analyst=A]";
    "        opens a continual counter NAME/sK, charging eps*ceil(log2 N) once";
    "  append HANDLE 0|1                     feed one event (pre-paid, journaled)";
    "  stream read HANDLE                    private prefix count, free";
    "  stream window HANDLE [w=W]            private sliding-window count, free";
    "  report NAME | log NAME | replay NAME | status | metrics | help | quit";
    "  EXPR: count | count(col>x) | sum(col) | mean(col) | histogram(col,bins)";
    "        | quantile(col,q) | cdf(col,t1,...)";
    "  errors: err bad-argument|bad-query|unknown-*|budget-exceeded (final)";
    "          err transient (retryable) | err degraded (cache hits only)";
    "          err degraded reason=unconverged (charge stands, model withheld)";
    "          err overloaded retry-after=MS (shed: retry after the delay)";
    "          err fatal (give up)";
  ]

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun s -> s <> "")

let is_quit line =
  match tokens line with [ "quit" ] | [ "exit" ] -> true | _ -> false

let exec_parsed eng line =
  match tokens line with
  | [] -> []
  | word :: _ when String.length word > 0 && word.[0] = '#' -> []
  | [ "help" ] -> help_lines
  | [ "quit" ] | [ "exit" ] -> [ "ok bye" ]
  | "register" :: name :: opts -> register_lines eng name opts
  | "query" :: dataset :: expr :: opts -> query_lines eng dataset expr opts
  | [ "query" ] | [ "query"; _ ] ->
      [ "err bad-argument query needs NAME and EXPR (try 'help')" ]
  | "train" :: name :: opts -> train_lines eng name opts
  | [ "train" ] -> [ "err bad-argument train needs NAME (try 'help')" ]
  | [ "predict"; handle; point ] -> predict_lines eng handle point
  | "predict" :: _ ->
      [ "err bad-argument predict needs HANDLE and x1,x2,... (try 'help')" ]
  | [ "model"; handle ] -> model_lines eng handle
  | "model" :: _ -> [ "err bad-argument model needs HANDLE (try 'help')" ]
  | "stream" :: "new" :: name :: opts -> stream_new_lines eng name opts
  | [ "stream"; "read"; handle ] -> stream_read_lines eng handle
  | "stream" :: "window" :: handle :: opts ->
      stream_window_lines eng handle opts
  | "stream" :: _ ->
      [ "err bad-argument stream needs new|read|window (try 'help')" ]
  | [ "append"; handle; bit ] -> append_lines eng handle bit
  | "append" :: _ ->
      [ "err bad-argument append needs HANDLE and 0|1 (try 'help')" ]
  | [ "report"; dataset ] -> report_lines eng dataset
  | [ "log"; dataset ] -> log_lines eng dataset
  | [ "replay"; dataset ] -> replay_lines eng dataset
  | [ "status" ] -> status_lines eng
  | [ "metrics" ] -> metrics_reply eng
  | cmd :: _ ->
      [ Printf.sprintf "err unknown-command %s (try 'help')" cmd ]

let oversized_reply n =
  Printf.sprintf "err bad-argument line exceeds %d bytes (got %d)"
    max_line_bytes n

let[@dp.sanitizer] exec eng line =
  (* an oversized line is rejected before tokenization: unbounded
     garbage must cost a bounded parse, never a full one *)
  if String.length line > max_line_bytes then
    [ oversized_reply (String.length line) ]
  else
    try cap_reply (exec_parsed eng line) with
    | Faults.Crash _ as e -> raise e
    | e ->
        (* the taxonomy's last resort: no exception ever escapes the
           protocol as anything but a typed fatal error line *)
        [ "err fatal internal " ^ Printexc.to_string e ]

(* Read one newline-terminated request, buffering at most
   [max_line_bytes + 1] bytes; the rest of an oversized line is
   consumed and discarded. [input_line] would allocate the whole line
   before the cap could reject it, so an arbitrarily long newline-free
   input would buffer fully in memory — here unbounded garbage costs
   O(1) memory. Returns the (possibly truncated) line and the true
   byte count. *)
let bounded_line ic =
  let b = Buffer.create 128 in
  let rec go count =
    match input_char ic with
    | exception End_of_file ->
        if count = 0 then None else Some (Buffer.contents b, count)
    | '\n' -> Some (Buffer.contents b, count)
    | ch ->
        if Buffer.length b <= max_line_bytes then Buffer.add_char b ch;
        go (count + 1)
  in
  go 0

let serve eng ic oc =
  let faults = Engine.faults eng in
  let rec loop () =
    match bounded_line ic with
    | None -> ()
    | Some (line, count) ->
        let line, count =
          if Faults.fire faults Faults.Garbage_line then
            let g = String.make (max_line_bytes + 64) '\xfe' in
            (g, String.length g)
          else (line, count)
        in
        let reply =
          if count > max_line_bytes then [ oversized_reply count ]
          else exec eng line
        in
        List.iter (fun l -> output_string oc l; output_char oc '\n') reply;
        flush oc;
        if not (is_quit line) then loop ()
  in
  loop ()
