(** The differentially-private query-serving engine.

    Composes the registry, per-dataset ledgers, the answer cache, the
    leakage meter and the audit log into an interactive service: a
    dataset is registered once with a lifetime budget, then queries
    arrive and are planned, charged, answered (or served from cache, or
    rejected) until the budget is exhausted. This is the operational
    form of the paper's channel view: the engine *is* the channel
    [Ẑ → θ], and the report's leakage reading meters it. *)

open Dp_mechanism

type t

val create : ?seed:int -> ?audit:bool -> unit -> t
(** [seed] (default 20120330) drives all mechanism noise — the engine
    is deterministic given the seed and the request sequence. [audit]
    (default [true]) controls the unbounded audit log; benchmarks
    serving millions of requests switch it off. *)

val register : t -> Registry.dataset -> (unit, string) result

val register_synthetic :
  t -> name:string -> rows:int -> policy:Registry.policy ->
  (Registry.dataset, string) result
(** Register the deterministic demo dataset of {!Registry.synthetic},
    drawn from the engine's generator. *)

val datasets : t -> string list
val find : t -> string -> Registry.dataset option

type error =
  | Unknown_dataset of string
  | Bad_query of string
  | Budget_exceeded of Ledger.rejection

val pp_error : Format.formatter -> error -> unit

type response = {
  answer : Planner.answer;
  mechanism : Planner.mechanism;
  requested : Privacy.budget;  (** face value of the query *)
  charged : Privacy.budget;
      (** marginal increase of the composed spend; zero on cache hits *)
  cache_hit : bool;
  seq : int;  (** audit-log sequence number (-1 when auditing is off) *)
}

val submit :
  t -> ?analyst:string -> ?epsilon:float -> dataset:string -> Query.t ->
  (response, error) result
(** Serve one query. [epsilon] defaults to the dataset policy's
    [default_epsilon]. Cache hits are answered even after the budget is
    exhausted (post-processing costs nothing). *)

val submit_text :
  t -> ?analyst:string -> ?epsilon:float -> dataset:string -> string ->
  (response, error) result
(** [submit] composed with {!Query.parse}. *)

type report = {
  dataset : string;
  rows : int;
  queries : int;  (** decisions for this dataset, including rejections *)
  answered : int;
  cache_hits : int;
  rejected : int;
  hit_rate : float;
  backend : Ledger.backend;
  total : Privacy.budget;
  spent : Privacy.budget;
  remaining : Privacy.budget;
  leakage : Meter.reading;
}

val report : t -> dataset:string -> (report, error) result
val pp_report : Format.formatter -> report -> unit

val records : t -> dataset:string -> Audit_log.record list

val replay : t -> dataset:string -> (Dp_audit.Replay.outcome, error) result
(** Re-verify the audit log's charged trace against the dataset's total
    budget via [Dp_audit.Replay]. *)

val analyst_spent : t -> dataset:string -> analyst:string -> Privacy.budget
