(** The differentially-private query-serving engine.

    Composes the registry, per-dataset ledgers, the answer cache, the
    leakage meter, the audit log and (optionally) the write-ahead
    budget journal into an interactive service: a dataset is registered
    once with a lifetime budget, then queries arrive and are planned,
    charged, answered (or served from cache, or rejected) until the
    budget is exhausted. This is the operational form of the paper's
    channel view: the engine *is* the channel [Ẑ → θ], and the report's
    leakage reading meters it.

    {2 Crash safety}

    With a journal attached ({!open_journal}) every state change is
    durable before its effect is visible: registrations, budget
    charges (fsynced {e before} the noisy answer is released —
    charge-before-answer), and cache inserts. A crash at any point can
    only over-count spent ε, never under-count. Failures on the release
    path surface as typed {!error}s ([Transient] is retryable, [Fatal]
    is not); injected faults ({!Faults}) drive every one of those paths
    in tests. When remaining ε falls below the policy's low-water mark,
    or the journal is poisoned, the engine degrades to serving cache
    hits only instead of hard-failing mid-analysis. *)

open Dp_mechanism

type t

val create :
  ?seed:int -> ?audit:bool -> ?obs:bool -> ?faults:Faults.t -> unit -> t
(** [seed] (default 20120330) drives all mechanism noise — the engine
    is deterministic given the seed and the request sequence, until a
    journal is attached: {!open_journal} re-keys the noise stream from
    OS entropy (synthetic data stays seed-derived). The seed also keys
    a separate non-privacy stream for retry-backoff jitter
    ({!Faults.backoff_delay}), so retry schedules replay
    deterministically without ever touching the noise stream. [audit] (default
    [true]) controls the unbounded audit log; benchmarks serving
    millions of requests switch it off. [obs] (default [true]) controls
    the observability layer ({!metrics}/{!trace}); with it off every
    record operation is a no-op, which is the baseline the overhead
    gate benchmarks against. [faults] defaults to {!Faults.of_env}
    ([$DPKIT_FAULTS]), so a CI leg can soak the whole suite in
    transient failures. *)

val register : t -> Registry.dataset -> (unit, string) result
(** Rejected when a journal is attached: raw column data is not
    journaled, and a dataset must never be servable without being
    durable. Use {!register_synthetic}. *)

val register_synthetic :
  t -> name:string -> rows:int -> policy:Registry.policy ->
  (Registry.dataset, string) result
(** Register the deterministic demo dataset of {!Registry.synthetic},
    drawn from a per-dataset seed derived from the engine seed and the
    name — registration order and prior traffic do not change the data,
    so recovery regenerates identical columns. With a journal attached
    the registration is journaled (and rolled back if the append
    fails). *)

val datasets : t -> string list
val find : t -> string -> Registry.dataset option

type error =
  | Unknown_dataset of string
  | Bad_query of string
  | Budget_exceeded of Ledger.rejection
  | Degraded of {
      dataset : string;
      remaining : Privacy.budget;
      low_water : float;
    }  (** below the low-water mark: cache hits only, fresh releases
           refused softly *)
  | Unconverged of {
      dataset : string;
      handle : string;  (** the withheld model's durable handle *)
      worst_rhat : float;
      min_ess : float;
      charged : Privacy.budget;
          (** the charge stands: the chains read the data, so the ε is
              spent whether or not a sample leaves — a refund would let
              an analyst retry until lucky, and releasing an
              unconverged draw would release a biased sample nobody
              priced *)
    }
  | Unknown_model of string
  | Unknown_stream of string
  | Lease_lost of { dataset : string; token : int }
      (** pool worker only: this worker's ε-lease is expired or its
          fencing token superseded — it refuses fresh charges until the
          supervisor restarts it with a fresh token. Rendered as
          [err degraded reason=lease-lost]. *)
  | Transient of string
      (** retryable: the journal append or fsync failed after bounded
          retries, or the RNG was exhausted — state is consistent (any
          committed charge is kept, so ε only over-counts) and the
          client may retry *)
  | Fatal of string
      (** not retryable: the journal is poisoned; the engine serves
          cache hits only from here on *)

val pp_error : Format.formatter -> error -> unit

type response = {
  answer : Planner.answer;
  mechanism : Planner.mechanism;
  requested : Privacy.budget;  (** face value of the query *)
  charged : Privacy.budget;
      (** marginal increase of the composed spend; zero on cache hits *)
  cache_hit : bool;
  seq : int;  (** audit-log sequence number (-1 when auditing is off) *)
}

val submit :
  t -> ?analyst:string -> ?epsilon:float -> dataset:string -> Query.t ->
  (response, error) result
(** Serve one query. [epsilon] defaults to the dataset policy's
    [default_epsilon]. Cache hits are answered even after the budget is
    exhausted (post-processing costs nothing), and even in degraded
    mode. With a journal attached the charge is journaled and fsynced
    before any noise is drawn. *)

val submit_text :
  t -> ?analyst:string -> ?epsilon:float -> dataset:string -> string ->
  (response, error) result
(** [submit] composed with {!Query.parse}. *)

type report = {
  dataset : string;
  rows : int;
  queries : int;  (** decisions for this dataset, including rejections *)
  answered : int;
  cache_hits : int;
  rejected : int;
  hit_rate : float;
  backend : Ledger.backend;
  total : Privacy.budget;
  spent : Privacy.budget;
  remaining : Privacy.budget;
  leakage : Meter.reading;
  degraded : bool;
      (** serving cache hits only (low-water reached or journal down) *)
}

val report : t -> dataset:string -> (report, error) result
val pp_report : Format.formatter -> report -> unit

val records : t -> dataset:string -> Audit_log.record list

val replay : t -> dataset:string -> (Dp_audit.Replay.outcome, error) result
(** Re-verify the audit log's charged trace against the dataset's total
    budget via [Dp_audit.Replay]. *)

val analyst_spent : t -> dataset:string -> analyst:string -> Privacy.budget

(** {2 Served learning}

    A [train] request is a query like any other: planned statically
    ({!Dp_train.Train.spec} — the analyzer prices it bit-identically),
    charged through the ledger, journaled charge-before-train, and
    released only if the convergence gate passes. The release is an
    opaque {e model handle}; {!predict} is free post-processing of the
    released θ. *)

type trained = {
  model : Dp_train.Model_store.model;
  charged : Privacy.budget;  (** marginal composed-spend increase *)
  seq : int;  (** audit-log sequence number (-1 when auditing is off) *)
}

val train :
  t ->
  ?analyst:string ->
  dataset:string ->
  Dp_train.Train.params ->
  (trained, error) result
(** Run one private training request. The charge ([chains·ε] for
    Gibbs, [ε] for objective perturbation) is journaled and fsynced
    before any chain runs; the model frame is journaled before the
    handle becomes resolvable, so a recovered engine resolves exactly
    the handles the live one did, bit-identically. An unconverged run
    returns [Error (Unconverged _)]: the charge stands (journaled as
    withheld) and the handle resolves to a θ-less model. *)

val find_model : t -> string -> Dp_train.Model_store.model option
(** Resolve a handle ([dataset/mN]); free, served even degraded. *)

val predict : t -> string -> float array -> (float, error) result
(** Score one raw point with a released model: the training-time
    feature transform then [θ·x̃]. Post-processing — no ledger charge,
    no data access, served even in degraded mode and after budget
    exhaustion. [Unknown_model] for an unresolvable handle, [Bad_query]
    for a withheld model or a dimension mismatch. *)

val models : t -> dataset:string -> (Dp_train.Model_store.t, error) result

(** {2 Continual observation}

    A [stream] is the engine's continual-release object: the analyst
    pays the whole-lifetime face charge once at [stream_open] —
    ε per level × ⌈log₂ N⌉ levels ({!Dp_stream.Stream.spec}, priced
    bit-identically by the analyzer) — then feeds [append] events and
    reads continually-updated private prefix counts and sliding-window
    counts for free. Counts come from the tree (binary) mechanism
    ({!Dp_stream.Counter}): per-release error stays polylogarithmic in
    the stream length instead of linear.

    Durability inverts none of the engine's rules: the open's charge is
    journaled before the handle exists, and every append journals the
    closing tree nodes' {e noisy} values before the in-memory tree
    mutates — so a kill -9 at any point recovers a stream releasing
    bit-identical counts, without consuming a single PRNG draw on
    replay. Tree noise comes from a dedicated stream keyed off the
    engine seed (re-keyed from OS entropy when a journal attaches), so
    recovery can never redraw or reuse pre-crash noise. *)

type stream_opened = {
  stream : Dp_stream.Stream_store.stream;
  charged : Privacy.budget;  (** marginal composed-spend increase *)
  seq : int;  (** audit-log sequence number (-1 when auditing is off) *)
}

val stream_open :
  t ->
  ?analyst:string ->
  dataset:string ->
  Dp_stream.Stream.params ->
  (stream_opened, error) result
(** Open a continual-observation counter over [dataset] events. Charges
    [Stream.spec params] (the whole stream's budget) up front; refused
    in degraded mode or with the journal down, like any fresh release.
    The returned handle ([dataset/sN]) is durable: it resolves after
    recovery iff it resolved live. *)

type appended = {
  handle : string;
  t_now : int;  (** stream length after this append *)
  nodes_closed : int;  (** tree nodes finalized (and journaled) *)
}

val append : t -> string -> int -> (appended, error) result
(** [append t handle bit] feeds one event (0 or 1) to the stream.
    Pre-paid — served even in low-water degraded mode — but requires a
    working journal when one is attached: the closing nodes' noise is
    fsynced before the tree mutates. [Bad_query] past the declared
    horizon or for a non-bit event. *)

type stream_count = {
  handle : string;
  t_now : int;  (** releases are as of this stream length *)
  count : float;  (** noisy count over the released range *)
  window : int option;  (** [None]: whole-prefix count *)
  face : Privacy.budget;  (** the stream's whole-lifetime charge *)
  leak : Meter.stream_reading;  (** per-timestep MI accounting *)
}

val stream_read : t -> string -> (stream_count, error) result
(** The private count of 1-events over the whole prefix [(0, t_now]].
    Deterministic post-processing of already-journaled node noise — no
    charge, no data access, served even degraded, exhausted, or with
    the journal down. *)

val stream_window : t -> string -> ?w:int -> unit -> (stream_count, error) result
(** The private count over the sliding window [(t_now - w, t_now]]
    ([w] clamped to the prefix). [w] defaults to the window declared at
    open; [Bad_query] if neither is given. Same free post-processing
    contract as {!stream_read}. *)

val find_stream : t -> string -> Dp_stream.Stream_store.stream option
(** Resolve a handle ([dataset/sN]); free, served even degraded. *)

val streams : t -> dataset:string -> (Dp_stream.Stream_store.t, error) result

(** {2 Durability} *)

type recovery = {
  journal_path : string;
  records : int;  (** journal records replayed *)
  torn_bytes : int;  (** torn-tail bytes truncated off the journal *)
  datasets : int;  (** datasets rebuilt *)
  charges : int;  (** budget charges re-applied *)
  cache_entries : int;  (** cached answers restored (replay bit-identically) *)
  models_recovered : int;
      (** model handles rebuilt from Train frames (θ bit-identical) *)
  streams_recovered : int;
      (** stream handles rebuilt from Stream_open frames, their trees
          re-committed from journaled node noise (counts bit-identical) *)
  verified : bool;  (** rebuilt state passed [Dp_audit.Replay] *)
}

val open_journal : t -> string -> (recovery, string) result
(** Open (or create) the write-ahead journal at [path], replay any
    existing records into this engine — rebuilding registry, ledgers,
    caches and audit log — and keep the journal attached for appends.
    Recovery truncates a torn tail record, then verifies the rebuilt
    ledger against the replayed audit trace; an inconsistent journal is
    refused outright. Fails if a journal is already attached.

    Attaching also re-keys the engine's noise stream from OS entropy:
    replay consumes no PRNG draws, so a recovered engine that kept its
    seeded stream would reuse the exact noise values released before
    the crash — a restart-inducing analyst could difference pre- and
    post-crash answers to cancel the noise. Cached answers still replay
    bit-identically (they travel in the journal); only {e fresh} noise
    is deliberately unreproducible across runs. *)

val journal_path : t -> string option
val faults : t -> Faults.t

(** {2 ε-lease gating (worker pool)}

    A pool worker serves against a {e leased} slice of the global
    budget: its local ledger mirrors the full global ε (so merged
    recovery replays composed accounting identically), and the lease
    gate — consulted immediately before {e every} ledger spend — is
    what keeps the sum of concurrent workers' spends under the global
    budget. Appends and all post-processing (cache hits, predict,
    stream reads) bypass the gate: they charge nothing. *)

type lease_verdict =
  | Lease_granted
  | Lease_superseded of { token : int }
      (** stale fencing token: a newer incarnation owns the shard *)
  | Lease_denied of {
      requested : Privacy.budget;
      remaining : Privacy.budget;
    }  (** no unleased ε left globally; maps to [Budget_exceeded] *)
  | Lease_unavailable of string
      (** coordinator unreachable; maps to [Transient] *)

val set_lease_gate :
  t -> (dataset:string -> face:Privacy.budget -> lease_verdict) option -> unit
(** Install (or clear) the lease gate. [None] — the default — is the
    single-process fast path: no gate consultation, byte-identical
    N=1 behavior. *)

(** {2 Observability}

    The engine instruments itself end-to-end with the leakage-safe
    {!Dp_obs} subsystem: latency histograms for plan/charge/noise/
    journal/cache/meter/recovery, spans for submit/plan/charge/noise/
    recovery, per-dataset counters (answered/rejected/withheld,
    cache hits/misses) and privacy-native gauges (spent/remaining ε,
    degradation mode, MI-bound readings), plus process-wide noise-draw
    counters per mechanism family. Metric names come from the closed
    {!Dp_obs.Name} catalogue and scope labels are dataset ids only, so
    the exported snapshot can never carry query arguments or released
    values (lint rule R7 enforces the call sites). *)

val metrics : t -> Dp_obs.Metrics.t
val trace : t -> Dp_obs.Span.t

val refresh_metrics : t -> unit
(** Mirror the authoritative engine state (serving stats, ledger spend,
    cache counters, meter readings, draw counts) into the metric
    registry. Snapshot-time mirroring — rather than hot-path counter
    increments — is what makes a recovered engine's snapshot agree with
    the live one by construction. *)

val metrics_lines : ?spans:bool -> t -> string list
(** [refresh_metrics] followed by {!Dp_obs.Export.dump}: the version
    header plus one line per metric (and per ring-buffered span unless
    [~spans:false]). This is the wire format served by the protocol's
    [metrics] command, written by [dpkit serve --metrics], and parsed
    by [dpkit stats]. *)

val close : t -> unit
(** Close the journal, if any. The engine keeps serving, but no longer
    durably. *)
