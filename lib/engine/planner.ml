open Dp_mechanism

type answer = Scalar of float | Vector of float array

type mechanism = Laplace | Geometric | Exponential | Discrete_gaussian

let mechanism_name = function
  | Laplace -> "laplace"
  | Geometric -> "geometric"
  | Exponential -> "exponential"
  | Discrete_gaussian -> "discrete-gaussian"

type spec = {
  query : Query.t;
  mechanism : mechanism;
  sensitivity : float;
  epsilon : float;
  charge : Ledger.charge;
}

type plan = { spec : spec; run : Dp_rng.Prng.t -> answer }

let rdp_delta (s : Registry.schema) =
  match s.policy.backend with Ledger.Rdp { delta } -> Some delta | _ -> None

(* Classical Gaussian calibration: sigma achieving (eps, delta) for the
   given L2 sensitivity; the charge is then re-derived through the RDP
   conversion, which only tightens it. *)
let gaussian_sigma ~l2 ~epsilon ~delta =
  l2 *. sqrt (2. *. log (1.25 /. delta)) /. epsilon

let satisfies op threshold v =
  match op with
  | Query.Le -> v <= threshold
  | Query.Lt -> v < threshold
  | Query.Ge -> v >= threshold
  | Query.Gt -> v > threshold

(* ------------------------------------------------------------------ *)
(* Static half: mechanism selection and pricing. Everything below is a
   function of the schema and the query alone — no column data, no
   sampling — so the same code prices a live release and a purely
   static `dpkit analyze` pass, bit-identically. *)

(* An integer release with sensitivity [isens]: geometric under
   basic/advanced composition, discrete Gaussian under RDP. *)
let integer_spec s ~epsilon ~isens =
  match rdp_delta s with
  | None -> (Geometric, { Ledger.budget = Privacy.pure epsilon; rdp = None })
  | Some delta ->
      let sigma = gaussian_sigma ~l2:(float_of_int isens) ~epsilon ~delta in
      let m = Discrete_gaussian.create ~sensitivity:isens ~sigma in
      ( Discrete_gaussian,
        {
          Ledger.budget = Discrete_gaussian.budget m ~delta;
          rdp = Some (Discrete_gaussian.rdp m);
        } )

(* A nonnegative-count vector release with L1 sensitivity 2 (one record
   moves between two cells; L2 sensitivity sqrt 2 for the Gaussian
   path). *)
let cell_spec s ~epsilon =
  match rdp_delta s with
  | None ->
      ( Laplace,
        {
          Ledger.budget = Privacy.pure epsilon;
          rdp = Some (Rdp.laplace ~sensitivity:1. ~epsilon);
        } )
  | Some delta ->
      let l2 = sqrt 2. in
      let sigma = gaussian_sigma ~l2 ~epsilon ~delta in
      let curve = Rdp.gaussian ~l2_sensitivity:l2 ~std:sigma in
      ( Discrete_gaussian,
        { Ledger.budget = Rdp.to_dp ~delta curve; rdp = Some curve } )

let laplace_charge ~epsilon =
  {
    Ledger.budget = Privacy.pure epsilon;
    rdp = Some (Rdp.laplace ~sensitivity:1. ~epsilon);
  }

let spec (s : Registry.schema) ~epsilon query =
  if (not (Float.is_finite epsilon)) || epsilon <= 0. then
    Error (Printf.sprintf "epsilon must be positive and finite, got %g" epsilon)
  else
    let with_column name k =
      match Registry.schema_column s name with
      | Some c -> k c
      | None ->
          Error
            (Printf.sprintf "unknown column %S in dataset %S (have: %s)" name
               s.name
               (String.concat ", "
                  (Array.to_list
                     (Array.map
                        (fun (c : Registry.col_schema) -> c.col)
                        s.cols))))
    in
    match query with
    | Query.Count pred ->
        let build () =
          let mechanism, charge = integer_spec s ~epsilon ~isens:1 in
          Ok
            {
              query;
              mechanism;
              sensitivity = Sensitivity.count ();
              epsilon;
              charge;
            }
        in
        (match pred with
        | None -> build ()
        | Some { column; _ } -> with_column column (fun _ -> build ()))
    | Query.Sum { column } ->
        with_column column (fun c ->
            Ok
              {
                query;
                mechanism = Laplace;
                sensitivity = Sensitivity.bounded_sum ~lo:c.lo ~hi:c.hi;
                epsilon;
                charge = laplace_charge ~epsilon;
              })
    | Query.Mean { column } ->
        with_column column (fun c ->
            Ok
              {
                query;
                mechanism = Laplace;
                sensitivity =
                  Sensitivity.bounded_mean ~lo:c.lo ~hi:c.hi ~n:s.rows;
                epsilon;
                charge = laplace_charge ~epsilon;
              })
    | Query.Histogram { column; bins } ->
        if bins <= 0 then Error "histogram needs a positive bin count"
        else
          with_column column (fun _ ->
              let mechanism, charge = cell_spec s ~epsilon in
              Ok
                {
                  query;
                  mechanism;
                  sensitivity = Sensitivity.histogram ();
                  epsilon;
                  charge;
                })
    | Query.Quantile { column; _ } ->
        with_column column (fun _ ->
            Ok
              {
                query;
                mechanism = Exponential;
                sensitivity = 1.;
                epsilon;
                charge = { Ledger.budget = Privacy.pure epsilon; rdp = None };
              })
    | Query.Cdf { column; points } ->
        if Array.length points = 0 then Error "cdf needs at least one point"
        else
          with_column column (fun _ ->
              let mechanism, charge = cell_spec s ~epsilon in
              Ok
                {
                  query;
                  mechanism;
                  sensitivity = Sensitivity.histogram ();
                  epsilon;
                  charge;
                })

(* ------------------------------------------------------------------ *)
(* Dynamic half: attach a fresh-noise closure to a priced spec. This is
   the only place that touches column values, and it re-derives each
   mechanism from the same (epsilon, policy) facts the spec was priced
   from, so the closure can never drift from the charge. *)

let integer_run s ~epsilon ~isens ~value =
  match rdp_delta s with
  | None ->
      let m = Geometric_mech.create ~sensitivity:isens ~epsilon in
      fun g -> Scalar (float_of_int (Geometric_mech.release m ~value g))
  | Some delta ->
      let sigma = gaussian_sigma ~l2:(float_of_int isens) ~epsilon ~delta in
      let m = Discrete_gaussian.create ~sensitivity:isens ~sigma in
      fun g -> Scalar (float_of_int (Discrete_gaussian.release m ~value g))

(* per-cell noising is the mechanism itself (the discrete-gaussian arm
   adds noise with a bare +.), so the flow analyzer treats this closure
   factory as a declared sanitizer *)
let[@dp.sanitizer] cell_run s ~epsilon (counts : float array) =
  match rdp_delta s with
  | None ->
      let lap = Laplace.create ~sensitivity:(Sensitivity.histogram ()) ~epsilon in
      fun g -> Laplace.release_vector lap ~value:counts g
  | Some delta ->
      let sigma = gaussian_sigma ~l2:(sqrt 2.) ~epsilon ~delta in
      fun g ->
        Array.map
          (fun c -> c +. float_of_int (Discrete_gaussian.sample_noise ~sigma g))
          counts

let runner (ds : Registry.dataset) (sp : spec) =
  let s = Registry.schema_of ds in
  let epsilon = sp.epsilon in
  let col name =
    (* spec already validated the column, so this cannot fail *)
    match Registry.column ds name with
    | Some c -> c
    | None -> invalid_arg ("Planner.runner: missing column " ^ name)
  in
  match sp.query with
  | Query.Count pred ->
      let value =
        match pred with
        | None -> ds.rows
        | Some { column; op; threshold } ->
            Array.fold_left
              (fun acc v -> if satisfies op threshold v then acc + 1 else acc)
              0 (col column).values
      in
      integer_run s ~epsilon ~isens:1 ~value
  | Query.Sum { column } ->
      let lap = Laplace.create ~sensitivity:sp.sensitivity ~epsilon in
      let value = Dp_math.Summation.sum (col column).values in
      fun g -> Scalar (Laplace.release lap ~value g)
  | Query.Mean { column } ->
      let lap = Laplace.create ~sensitivity:sp.sensitivity ~epsilon in
      let value = Dp_math.Summation.mean (col column).values in
      fun g -> Scalar (Laplace.release lap ~value g)
  | Query.Histogram { column; bins } ->
      let c = col column in
      let h = Dp_stats.Histogram.of_samples ~lo:c.lo ~hi:c.hi ~bins c.values in
      let counts = Array.init bins (Dp_stats.Histogram.count h) in
      let noisy = cell_run s ~epsilon counts in
      fun g ->
        (* clamping at zero is post-processing *)
        Vector (Array.map (Float.max 0.) (noisy g))
  | Query.Quantile { column; q } ->
      let c = col column in
      fun g ->
        Scalar (Dp_learn.Quantile.estimate ~epsilon ~q ~lo:c.lo ~hi:c.hi c.values g)
  | Query.Cdf { column; points } ->
      let c = col column in
      (* Cell counts between consecutive thresholds; noising the cells
         (L1 sensitivity 2) and post-processing a running sum beats
         noising the k cumulative counts directly. *)
      let sorted = Array.copy c.values in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let rank t =
        (* #values <= t via binary search on the sorted copy *)
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if sorted.(mid) <= t then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let k = Array.length points in
      let cum = Array.map rank points in
      let cells =
        Array.init (k + 1) (fun i ->
            let prev = if i = 0 then 0 else cum.(i - 1) in
            let next = if i = k then n else cum.(i) in
            float_of_int (next - prev))
      in
      let noisy = cell_run s ~epsilon cells in
      fun g ->
        let noisy_cells = noisy g in
        let fn = float_of_int n in
        let acc = ref 0. and best = ref 0. in
        Vector
          (Array.init k (fun i ->
               acc := !acc +. Float.max 0. noisy_cells.(i);
               let v = Dp_math.Numeric.clamp ~lo:0. ~hi:1. (!acc /. fn) in
               best := Float.max !best v;
               !best))

let plan (ds : Registry.dataset) ~epsilon query =
  match spec (Registry.schema_of ds) ~epsilon query with
  | Error _ as e -> e
  | Ok sp -> Ok { spec = sp; run = runner ds sp }
