open Dp_mechanism

type answer = Scalar of float | Vector of float array

type mechanism = Laplace | Geometric | Exponential | Discrete_gaussian

let mechanism_name = function
  | Laplace -> "laplace"
  | Geometric -> "geometric"
  | Exponential -> "exponential"
  | Discrete_gaussian -> "discrete-gaussian"

type plan = {
  query : Query.t;
  mechanism : mechanism;
  sensitivity : float;
  epsilon : float;
  charge : Ledger.charge;
  run : Dp_rng.Prng.t -> answer;
}

let rdp_delta (ds : Registry.dataset) =
  match ds.policy.backend with Ledger.Rdp { delta } -> Some delta | _ -> None

(* Classical Gaussian calibration: sigma achieving (eps, delta) for the
   given L2 sensitivity; the charge is then re-derived through the RDP
   conversion, which only tightens it. *)
let gaussian_sigma ~l2 ~epsilon ~delta =
  l2 *. sqrt (2. *. log (1.25 /. delta)) /. epsilon

let satisfies op threshold v =
  match op with
  | Query.Le -> v <= threshold
  | Query.Lt -> v < threshold
  | Query.Ge -> v >= threshold
  | Query.Gt -> v > threshold

(* An integer release of [value] with sensitivity [isens]: geometric
   under basic/advanced composition, discrete Gaussian under RDP. *)
let integer_release ds ~epsilon ~isens ~value =
  match rdp_delta ds with
  | None ->
      let m = Geometric_mech.create ~sensitivity:isens ~epsilon in
      let charge = { Ledger.budget = Privacy.pure epsilon; rdp = None } in
      ( Geometric,
        charge,
        fun g -> Scalar (float_of_int (Geometric_mech.release m ~value g)) )
  | Some delta ->
      let sigma = gaussian_sigma ~l2:(float_of_int isens) ~epsilon ~delta in
      let m = Discrete_gaussian.create ~sensitivity:isens ~sigma in
      let charge =
        {
          Ledger.budget = Discrete_gaussian.budget m ~delta;
          rdp = Some (Discrete_gaussian.rdp m);
        }
      in
      ( Discrete_gaussian,
        charge,
        fun g -> Scalar (float_of_int (Discrete_gaussian.release m ~value g)) )

(* A nonnegative-count vector release with L1 sensitivity 2 (one record
   moves between two cells; L2 sensitivity sqrt 2 for the Gaussian
   path). Returns the mechanism, charge and a fresh-noise closure. *)
let cell_release ds ~epsilon (counts : float array) =
  match rdp_delta ds with
  | None ->
      let lap = Laplace.create ~sensitivity:(Sensitivity.histogram ()) ~epsilon in
      let charge =
        {
          Ledger.budget = Privacy.pure epsilon;
          rdp = Some (Rdp.laplace ~sensitivity:1. ~epsilon);
        }
      in
      ( Laplace,
        charge,
        fun g -> Laplace.release_vector lap ~value:counts g )
  | Some delta ->
      let l2 = sqrt 2. in
      let sigma = gaussian_sigma ~l2 ~epsilon ~delta in
      let curve = Rdp.gaussian ~l2_sensitivity:l2 ~std:sigma in
      let charge =
        { Ledger.budget = Rdp.to_dp ~delta curve; rdp = Some curve }
      in
      ( Discrete_gaussian,
        charge,
        fun g ->
          Array.map
            (fun c ->
              c +. float_of_int (Discrete_gaussian.sample_noise ~sigma g))
            counts )

let plan (ds : Registry.dataset) ~epsilon query =
  if (not (Float.is_finite epsilon)) || epsilon <= 0. then
    Error (Printf.sprintf "epsilon must be positive and finite, got %g" epsilon)
  else
    let with_column name k =
      match Registry.column ds name with
      | Some c -> k c
      | None ->
          Error
            (Printf.sprintf "unknown column %S in dataset %S (have: %s)" name
               ds.name
               (String.concat ", "
                  (Array.to_list
                     (Array.map
                        (fun (c : Registry.column) -> c.name)
                        ds.columns))))
    in
    match query with
    | Query.Count pred -> (
        let build value =
          let mech, charge, run = integer_release ds ~epsilon ~isens:1 ~value in
          Ok
            {
              query;
              mechanism = mech;
              sensitivity = Sensitivity.count ();
              epsilon;
              charge;
              run;
            }
        in
        match pred with
        | None -> build ds.rows
        | Some { column; op; threshold } ->
            with_column column (fun c ->
                build
                  (Array.fold_left
                     (fun acc v ->
                       if satisfies op threshold v then acc + 1 else acc)
                     0 c.values)))
    | Query.Sum { column } ->
        with_column column (fun c ->
            let sens = Sensitivity.bounded_sum ~lo:c.lo ~hi:c.hi in
            let lap = Laplace.create ~sensitivity:sens ~epsilon in
            let value = Dp_math.Summation.sum c.values in
            Ok
              {
                query;
                mechanism = Laplace;
                sensitivity = sens;
                epsilon;
                charge =
                  {
                    Ledger.budget = Privacy.pure epsilon;
                    rdp = Some (Rdp.laplace ~sensitivity:1. ~epsilon);
                  };
                run = (fun g -> Scalar (Laplace.release lap ~value g));
              })
    | Query.Mean { column } ->
        with_column column (fun c ->
            let sens = Sensitivity.bounded_mean ~lo:c.lo ~hi:c.hi ~n:ds.rows in
            let lap = Laplace.create ~sensitivity:sens ~epsilon in
            let value = Dp_math.Summation.mean c.values in
            Ok
              {
                query;
                mechanism = Laplace;
                sensitivity = sens;
                epsilon;
                charge =
                  {
                    Ledger.budget = Privacy.pure epsilon;
                    rdp = Some (Rdp.laplace ~sensitivity:1. ~epsilon);
                  };
                run = (fun g -> Scalar (Laplace.release lap ~value g));
              })
    | Query.Histogram { column; bins } ->
        if bins <= 0 then Error "histogram needs a positive bin count"
        else
          with_column column (fun c ->
              let h =
                Dp_stats.Histogram.of_samples ~lo:c.lo ~hi:c.hi ~bins c.values
              in
              let counts = Array.init bins (Dp_stats.Histogram.count h) in
              let mech, charge, noisy = cell_release ds ~epsilon counts in
              Ok
                {
                  query;
                  mechanism = mech;
                  sensitivity = Sensitivity.histogram ();
                  epsilon;
                  charge;
                  run =
                    (fun g ->
                      (* clamping at zero is post-processing *)
                      Vector (Array.map (Float.max 0.) (noisy g)));
                })
    | Query.Quantile { column; q } ->
        with_column column (fun c ->
            Ok
              {
                query;
                mechanism = Exponential;
                sensitivity = 1.;
                epsilon;
                charge = { Ledger.budget = Privacy.pure epsilon; rdp = None };
                run =
                  (fun g ->
                    Scalar
                      (Dp_learn.Quantile.estimate ~epsilon ~q ~lo:c.lo
                         ~hi:c.hi c.values g));
              })
    | Query.Cdf { column; points } ->
        if Array.length points = 0 then Error "cdf needs at least one point"
        else
          with_column column (fun c ->
              (* Cell counts between consecutive thresholds; noising the
                 cells (L1 sensitivity 2) and post-processing a running
                 sum beats noising the k cumulative counts directly. *)
              let sorted = Array.copy c.values in
              Array.sort compare sorted;
              let n = Array.length sorted in
              let rank t =
                (* #values <= t via binary search on the sorted copy *)
                let lo = ref 0 and hi = ref n in
                while !lo < !hi do
                  let mid = (!lo + !hi) / 2 in
                  if sorted.(mid) <= t then lo := mid + 1 else hi := mid
                done;
                !lo
              in
              let k = Array.length points in
              let cum = Array.map rank points in
              let cells =
                Array.init (k + 1) (fun i ->
                    let prev = if i = 0 then 0 else cum.(i - 1) in
                    let next = if i = k then n else cum.(i) in
                    float_of_int (next - prev))
              in
              let mech, charge, noisy = cell_release ds ~epsilon cells in
              Ok
                {
                  query;
                  mechanism = mech;
                  sensitivity = Sensitivity.histogram ();
                  epsilon;
                  charge;
                  run =
                    (fun g ->
                      let noisy_cells = noisy g in
                      let fn = float_of_int n in
                      let acc = ref 0. and best = ref 0. in
                      Vector
                        (Array.init k (fun i ->
                             acc := !acc +. Float.max 0. noisy_cells.(i);
                             let v =
                               Dp_math.Numeric.clamp ~lo:0. ~hi:1. (!acc /. fn)
                             in
                             best := Float.max !best v;
                             !best)));
                })
