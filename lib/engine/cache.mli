(** The answer cache.

    A repeated identical query (same dataset, same normal form, same
    requested ε) is answered by replaying the stored noisy answer:
    post-processing of an already-released value, so it costs zero
    additional budget and — because the answer is bit-identical — leaks
    nothing the first release did not. Lookups count hits and misses so
    the engine can report a hit-rate.

    Entries carry the mechanism and face-value budget of the original
    release so a hit can be audited without re-planning the query —
    planning touches the raw data (an O(n) scan), and skipping it is
    what makes a cache hit cheap. *)

type entry = {
  answer : Planner.answer;
  mechanism : Planner.mechanism;
  requested : Dp_mechanism.Privacy.budget;
      (** Face value of the original release, recorded for the audit
          trail; the hit itself is charged zero. *)
}

type t

val create : unit -> t

val lookup : t -> string -> entry option
(** Increments the hit or miss counter as a side effect. *)

val store : t -> string -> entry -> unit
val hits : t -> int
val misses : t -> int

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val size : t -> int
