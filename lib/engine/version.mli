(** Single source of truth for the toolkit version: [bin/dpkit] reads
    it for [--version], and [docs/ENGINE.md] references it. *)

val current : string
