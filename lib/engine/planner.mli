(** Query planning: sensitivity analysis and mechanism selection.

    The planner turns a {!Query.t} against a registered dataset into an
    executable release plan. Sensitivities come from the closed forms
    in [Dp_mechanism.Sensitivity] (Definition 2.2 of the paper):

    - count / predicate count: 1 (one record flips membership);
    - sum(col): [hi − lo] under record replacement;
    - mean(col): [(hi − lo)/n];
    - histogram / cdf: L1 sensitivity 2 (one record moves between two
      cells); the CDF is released as a noisy cell histogram whose
      cumulative sum is post-processed into a monotone CDF, which is
      far tighter than noising the k cumulative counts directly;
    - quantile: rank-quality sensitivity 1 inside the exponential
      mechanism of [Dp_learn.Quantile].

    Mechanism selection is policy-aware: integer-valued queries use the
    geometric mechanism (universally optimal for counts) under basic or
    advanced composition, and the discrete Gaussian under an RDP
    backend, where its Rényi curve composes tightly; real-valued
    queries use Laplace; quantiles use the exponential mechanism.

    Planning is split in two halves. {!spec} is purely static: it maps
    (schema, ε, query) to a mechanism, a sensitivity and a ledger
    charge without ever touching column data or drawing noise — this is
    what makes the privacy cost of a workload a property of the plans
    (paper Theorem 4.2: ε bounds the channel statically), and it is the
    engine of [dpkit analyze]. {!plan} attaches the data-dependent
    fresh-noise closure on top of an identically-priced spec, so a
    static analysis and a live run of the same workload charge the
    ledger bit-identically. *)

type answer = Scalar of float | Vector of float array

type mechanism = Laplace | Geometric | Exponential | Discrete_gaussian

val mechanism_name : mechanism -> string

type spec = {
  query : Query.t;
  mechanism : mechanism;
  sensitivity : float;
  epsilon : float;  (** requested face-value ε of this release *)
  charge : Ledger.charge;
      (** what the ledger is asked for; for the discrete Gaussian this
          is the RDP-converted (ε, δ) at the policy's δ *)
}

type plan = {
  spec : spec;  (** the static half: pricing and mechanism choice *)
  run : Dp_rng.Prng.t -> answer;  (** one fresh noisy release *)
}

val spec : Registry.schema -> epsilon:float -> Query.t -> (spec, string) result
(** Static planning: no data access, no sampling. [Error] explains an
    unknown column, non-positive ε, or a query/schema mismatch; it
    never raises. *)

val plan : Registry.dataset -> epsilon:float -> Query.t -> (plan, string) result
(** [plan ds ~epsilon q] = [spec (Registry.schema_of ds) ~epsilon q]
    plus the release closure; the charge is computed by the same code
    path in both, so they agree exactly. *)
