(** Static workload analysis: the ε-odometer behind [dpkit analyze].

    Costs a query workload against a dataset {e schema} — name, row
    count, column bounds, privacy policy — with no access to column
    data and no sampling. Each query is priced by {!Planner.spec} (the
    same static half a live [plan] is built on) and pushed through a
    real {!Ledger}, so per-query charges and composed totals are
    bit-identical to what a live serving run of the same workload
    would record: the analysis is the paper's static channel-capacity
    bound (ε bounds leakage before any answer is computed), made
    executable.

    Totals are reported under all three composition backends (basic,
    advanced, RDP) so a workload author can see what switching the
    policy backend would buy. *)

open Dp_mechanism

val parse_schema : string -> (Registry.schema, string) result
(** Parse a schema file:
    {v
    # comment
    dataset NAME [rows=N] [eps=E] [delta=D] [backend=basic|advanced|rdp]
                 [slack=S] [default-eps=E] [analyst-eps=E] [universe=U]
                 [low-water=E] [no-cache]
    column NAME lo=L hi=H
    v}
    The [dataset] options are exactly those of the serve protocol's
    [register] command. Errors carry a [line N:] prefix. *)

type item =
  | Stat of {
      text : string;  (** the query expression as written *)
      query : Query.t;
      epsilon : float option;  (** [eps=] override; [None] = policy default *)
    }
  | Train of {
      text : string;  (** the request line as written *)
      train_opts : (string * string option) list;
          (** validated {!Dp_train.Train.keys} options; turned into
              params against the schema's default ε at analysis time *)
    }
  | Stream of {
      text : string;  (** the request line as written *)
      stream_opts : (string * string option) list;
          (** validated {!Dp_stream.Stream.keys} options; one line
              prices a whole continual-observation stream — the open's
              face charge covers every append and read *)
    }

val parse_workload : string -> (item list, string) result
(** Parse a workload file: one [QUERY \[eps=E\]],
    [train \[key=value...\]], or [stream \[key=value...\]] per line
    ([#] comments and blank lines ignored), query syntax as in
    {!Query.parse}, train/stream options as in the serve protocol's
    [train] / [stream new] commands (no analyst). *)

type row = {
  index : int;  (** 1-based position in the workload *)
  query : string;
      (** canonical form ({!Query.normalize} /
          {!Dp_train.Train.normalize}) *)
  mechanism : string;
      (** {!Planner.mechanism_name} or {!Dp_train.Train.backend_name} *)
  sensitivity : float;
  epsilon : float;  (** face-value ε requested *)
  face : Privacy.budget;  (** the ledger charge's face value *)
  marginal : Privacy.budget;
      (** increase of the composed spend caused by this query — what
          the live engine reports as [charged]; can be far below [face]
          under advanced/RDP composition, and zero for a rejected
          query *)
  accepted : bool;
}

type composed = {
  backend : Ledger.backend;
  spent : Privacy.budget;  (** composed total of the whole workload *)
  rejected : int;  (** queries the budget gate would reject *)
}

type report = {
  schema : Registry.schema;
  rows : row list;  (** under the schema's own policy backend *)
  accepted : int;
  rejected : int;
  spent : Privacy.budget;  (** composed spend under the policy backend *)
  remaining : Privacy.budget;
  composed : composed list;  (** basic, advanced, RDP — in that order *)
  pass : bool;  (** no query rejected under the policy backend *)
}

val analyze : Registry.schema -> item list -> (report, string) result
(** Cost the workload. [Error] only for a query the planner itself
    rejects (unknown column, bad ε) — a budget overdraft is not an
    error, it is a [FAIL] verdict with the offending rows marked
    rejected. Analyst sub-budgets are not modeled (the workload file
    carries no analyst identity). *)

val pp_report : Format.formatter -> report -> unit
(** Deterministic plain-text rendering (diffable in tests). *)
