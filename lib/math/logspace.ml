let log_sum_exp a =
  let n = Array.length a in
  if n = 0 then neg_infinity
  else begin
    let m = Array.fold_left Float.max neg_infinity a in
    if m = neg_infinity then neg_infinity
    else if m = infinity then infinity
    else
      let s = Numeric.float_sum_range n (fun i -> exp (a.(i) -. m)) in
      m +. log s
  end

let log_sum_exp2 x y =
  if x = neg_infinity then y
  else if y = neg_infinity then x
  else
    let m = Float.max x y in
    m +. log (exp (x -. m) +. exp (y -. m))

let log_mean_exp a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Logspace.log_mean_exp: empty array";
  log_sum_exp a -. log (float_of_int n)

let normalize_log_weights lw =
  if Array.length lw = 0 then
    invalid_arg "Logspace.normalize_log_weights: empty array";
  let z = log_sum_exp lw in
  if z = neg_infinity then
    invalid_arg "Logspace.normalize_log_weights: all weights are zero";
  Array.map (fun w -> exp (w -. z)) lw

let log1mexp x =
  if x >= 0. then invalid_arg "Logspace.log1mexp: argument must be < 0";
  (* Mächler's cutoff at -log 2 balances the accuracy of the two
     formulations. *)
  if x > -.(log 2.) then log (-.Float.expm1 x)
  else Float.log1p (-.exp x)

let log1pexp x =
  if x <= -37. then exp x
  else if x <= 18. then Float.log1p (exp x)
  else if x <= 33.3 then x +. exp (-.x)
  else x

let logaddexp_weighted la a lb b =
  if a < 0. || b < 0. then
    invalid_arg "Logspace.logaddexp_weighted: negative coefficient";
  let ta = if a = 0. then neg_infinity else la +. log a in
  let tb = if b = 0. then neg_infinity else lb +. log b in
  log_sum_exp2 ta tb
