(** Compensated summation and related reductions over float arrays. *)

val sum : float array -> float
(** Neumaier-compensated sum of the array. [sum [||] = 0.]. *)

val sum_list : float list -> float
(** Neumaier-compensated sum of a list. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on the empty array. *)

val dot : float array -> float array -> float
(** Compensated dot product.
    @raise Invalid_argument on length mismatch. *)

val weighted_mean : weights:float array -> float array -> float
(** [weighted_mean ~weights xs] is [Σ wᵢxᵢ / Σ wᵢ].
    @raise Invalid_argument on length mismatch or when the weights sum
    to zero or any weight is negative. *)

val cumulative : float array -> float array
(** Prefix sums: [cumulative [|a;b;c|] = [|a; a+b; a+b+c|]]. *)

val sum_map : ('a -> float) -> 'a array -> float
(** [sum_map f xs] is the compensated sum of [f xᵢ]. *)
