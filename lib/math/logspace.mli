(** Log-domain arithmetic.

    Gibbs posteriors involve weights [exp (-beta * risk)] whose direct
    evaluation under- or overflows as soon as [beta * n] is large; every
    posterior computation in this library therefore works with log
    weights and normalizes through {!log_sum_exp}. *)

val log_sum_exp : float array -> float
(** [log_sum_exp a] is [log (Σ exp aᵢ)] computed stably by factoring out
    the maximum. Returns [neg_infinity] for the empty array and for
    arrays of [neg_infinity]. *)

val log_sum_exp2 : float -> float -> float
(** Binary log-sum-exp. *)

val log_mean_exp : float array -> float
(** [log_mean_exp a] is [log ((1/n) Σ exp aᵢ)].
    @raise Invalid_argument on the empty array. *)

val normalize_log_weights : float array -> float array
(** [normalize_log_weights lw] turns log weights into a probability
    vector [exp (lwᵢ - log_sum_exp lw)]. The result sums to 1 up to
    roundoff.
    @raise Invalid_argument if all weights are [neg_infinity] or the
    array is empty. *)

val log1mexp : float -> float
(** [log1mexp x] is [log (1 - exp x)] for [x < 0], computed stably
    (uses [log1p] or [expm1] depending on magnitude, following
    Mächler 2012).
    @raise Invalid_argument if [x >= 0]. *)

val log1pexp : float -> float
(** [log1pexp x] is [log (1 + exp x)] (the softplus), stable over the
    whole real line. *)

val logaddexp_weighted : float -> float -> float -> float -> float
(** [logaddexp_weighted la a lb b] is [log (a·exp la + b·exp lb)] for
    nonnegative coefficients [a], [b] (log-domain convex mixing). *)
