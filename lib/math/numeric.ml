let default_rel_tol = 1e-9

let is_finite x = Float.is_finite x

let approx_equal ?(rel_tol = default_rel_tol) ?(abs_tol = 0.) a b =
  if Float.is_nan a || Float.is_nan b then false
  else if a = b then true
  else
    let diff = Float.abs (a -. b) in
    let scale = Float.max (Float.abs a) (Float.abs b) in
    diff <= abs_tol || diff <= rel_tol *. scale

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Numeric.clamp: lo > hi"
  else if x < lo then lo
  else if x > hi then hi
  else x

let check_finite name x =
  if is_finite x then x
  else invalid_arg (Printf.sprintf "%s: expected finite float, got %g" name x)

let check_prob name p =
  let p = check_finite name p in
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "%s: expected probability in [0,1], got %g" name p)
  else p

let check_pos name x =
  let x = check_finite name x in
  if x <= 0. then invalid_arg (Printf.sprintf "%s: expected > 0, got %g" name x)
  else x

let check_nonneg name x =
  let x = check_finite name x in
  if x < 0. then invalid_arg (Printf.sprintf "%s: expected >= 0, got %g" name x)
  else x

let log2 x = log x /. log 2.

let xlogx x =
  if x < 0. then invalid_arg "Numeric.xlogx: negative input"
  else if x = 0. then 0.
  else x *. log x

let xlogy x y =
  if x = 0. then 0. else x *. log y

let sq x = x *. x

(* Neumaier's improved Kahan summation: tracks a running compensation
   that also handles the case where the next term is larger than the
   accumulated sum. *)
let float_sum_range n f =
  let sum = ref 0. and comp = ref 0. in
  for i = 0 to n - 1 do
    let x = f i in
    let t = !sum +. x in
    if Float.abs !sum >= Float.abs x then comp := !comp +. ((!sum -. t) +. x)
    else comp := !comp +. ((x -. t) +. !sum);
    sum := t
  done;
  !sum +. !comp
