let check_bracket name f lo hi =
  if lo >= hi then invalid_arg (name ^ ": requires lo < hi");
  let flo = f lo and fhi = f hi in
  if flo = 0. then `Root lo
  else if fhi = 0. then `Root hi
  else if flo *. fhi > 0. then
    invalid_arg (name ^ ": f(lo) and f(hi) must have opposite signs")
  else `Bracket (flo, fhi)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  match check_bracket "Roots.bisect" f lo hi with
  | `Root r -> r
  | `Bracket (flo, _) ->
      let lo = ref lo and hi = ref hi and flo = ref flo in
      let i = ref 0 in
      while !hi -. !lo > tol *. (1. +. Float.abs !lo) && !i < max_iter do
        incr i;
        let mid = 0.5 *. (!lo +. !hi) in
        let fmid = f mid in
        if fmid = 0. then begin
          lo := mid;
          hi := mid
        end
        else if !flo *. fmid < 0. then hi := mid
        else begin
          lo := mid;
          flo := fmid
        end
      done;
      0.5 *. (!lo +. !hi)

let brent ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  match check_bracket "Roots.brent" f lo hi with
  | `Root r -> r
  | `Bracket (flo, fhi) ->
      let a = ref lo and b = ref hi and fa = ref flo and fb = ref fhi in
      let c = ref !a and fc = ref !fa in
      let d = ref (!b -. !a) and e = ref (!b -. !a) in
      let result = ref nan in
      (try
         for _ = 1 to max_iter do
           if Float.abs !fc < Float.abs !fb then begin
             a := !b;
             b := !c;
             c := !a;
             fa := !fb;
             fb := !fc;
             fc := !fa
           end;
           let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
           let xm = 0.5 *. (!c -. !b) in
           if Float.abs xm <= tol1 || !fb = 0. then begin
             result := !b;
             raise Exit
           end;
           if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
             let s = !fb /. !fa in
             let p, q =
               if !a = !c then
                 let p = 2. *. xm *. s in
                 (p, 1. -. s)
               else begin
                 let q = !fa /. !fc and r = !fb /. !fc in
                 let p =
                   s
                   *. ((2. *. xm *. q *. (q -. r))
                      -. ((!b -. !a) *. (r -. 1.)))
                 in
                 (p, (q -. 1.) *. (r -. 1.) *. (s -. 1.))
               end
             in
             let p, q = if p > 0. then (p, -.q) else (-.p, q) in
             let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
             let min2 = Float.abs (!e *. q) in
             if 2. *. p < Float.min min1 min2 then begin
               e := !d;
               d := p /. q
             end
             else begin
               d := xm;
               e := xm
             end
           end
           else begin
             d := xm;
             e := xm
           end;
           a := !b;
           fa := !fb;
           if Float.abs !d > tol1 then b := !b +. !d
           else b := !b +. Float.copy_sign tol1 xm;
           fb := f !b;
           if (!fb > 0. && !fc > 0.) || (!fb < 0. && !fc < 0.) then begin
             c := !a;
             fc := !fa;
             d := !b -. !a;
             e := !d
           end
         done;
         result := !b
       with Exit -> ());
      !result

let golden_phi = (sqrt 5. -. 1.) /. 2.

let golden_section_min ?(tol = 1e-10) ~f lo hi =
  if lo >= hi then invalid_arg "Roots.golden_section_min: requires lo < hi";
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (golden_phi *. (!b -. !a))) in
  let x2 = ref (!a +. (golden_phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  while !b -. !a > tol *. (1. +. Float.abs !a) do
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden_phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden_phi *. (!b -. !a));
      f2 := f !x2
    end
  done;
  0.5 *. (!a +. !b)

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let x = ref x0 in
  let converged = ref false in
  let i = ref 0 in
  while (not !converged) && !i < max_iter do
    incr i;
    let fx = f !x in
    if Float.abs fx <= tol then converged := true
    else begin
      let dfx = df !x in
      if dfx = 0. || not (Numeric.is_finite dfx) then
        failwith "Roots.newton: zero or non-finite derivative";
      let step = ref (fx /. dfx) in
      (* Guard: halve until the next iterate is finite. *)
      while not (Numeric.is_finite (!x -. !step)) do
        step := !step /. 2.
      done;
      let next = !x -. !step in
      if Float.abs (next -. !x) <= tol *. (1. +. Float.abs !x) then
        converged := true;
      x := next
    end
  done;
  if not !converged then failwith "Roots.newton: did not converge";
  !x
