(** One-dimensional root finding and scalar minimization. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds a root of [f] in [\[lo, hi\]] by bisection.
    @raise Invalid_argument when [f lo] and [f hi] have the same strict
    sign or [lo >= hi]. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [brent ~f lo hi] finds a root with Brent's method (inverse quadratic
    interpolation guarded by bisection); typically converges in far
    fewer evaluations than {!bisect}.
    @raise Invalid_argument when the bracket is invalid. *)

val golden_section_min :
  ?tol:float -> f:(float -> float) -> float -> float -> float
(** [golden_section_min ~f lo hi] returns an approximate minimizer of a
    unimodal [f] on [\[lo, hi\]]. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float
(** Newton iteration from the given starting point; falls back on
    halving the step whenever the iterate would leave the finite range.
    @raise Failure when it does not converge. *)
