(** Floating-point helpers shared across the library.

    All numerical code in this project funnels comparisons and domain
    checks through this module so that tolerance conventions stay
    consistent. *)

val default_rel_tol : float
(** Relative tolerance used by {!approx_equal} when none is given
    ([1e-9]). *)

val approx_equal : ?rel_tol:float -> ?abs_tol:float -> float -> float -> bool
(** [approx_equal a b] is true when [a] and [b] agree up to the given
    relative tolerance (scaled by the larger magnitude) or absolute
    tolerance. NaN is never approximately equal to anything. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] limits [x] to the interval [\[lo, hi\]].
    @raise Invalid_argument if [lo > hi]. *)

val is_finite : float -> bool
(** True when the argument is neither NaN nor infinite. *)

val check_finite : string -> float -> float
(** [check_finite name x] returns [x] or raises [Invalid_argument]
    mentioning [name] when [x] is not finite. *)

val check_prob : string -> float -> float
(** [check_prob name p] returns [p] or raises [Invalid_argument] when
    [p] is outside [\[0, 1\]] (or not finite). *)

val check_pos : string -> float -> float
(** [check_pos name x] returns [x] or raises [Invalid_argument] when
    [x <= 0] or [x] is not finite. *)

val check_nonneg : string -> float -> float
(** [check_nonneg name x] returns [x] or raises [Invalid_argument] when
    [x < 0] or [x] is not finite. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val xlogx : float -> float
(** [xlogx x] is [x *. log x] with the continuous extension [0. at 0.];
    the workhorse of entropy computations.
    @raise Invalid_argument on negative input. *)

val xlogy : float -> float -> float
(** [xlogy x y] is [x *. log y] with the convention [xlogy 0. y = 0.]
    for any [y >= 0.] (including 0), as used in KL divergences. *)

val sq : float -> float
(** [sq x] is [x *. x]. *)

val float_sum_range : int -> (int -> float) -> float
(** [float_sum_range n f] is the compensated sum [f 0 +. ... +. f (n-1)]
    using Neumaier summation. *)
