let sum xs = Numeric.float_sum_range (Array.length xs) (fun i -> xs.(i))

let sum_list l =
  let arr = Array.of_list l in
  sum arr

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summation.mean: empty array"
  else sum xs /. float_of_int n

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Summation.dot: length mismatch";
  Numeric.float_sum_range n (fun i -> a.(i) *. b.(i))

let weighted_mean ~weights xs =
  let n = Array.length xs in
  if Array.length weights <> n then
    invalid_arg "Summation.weighted_mean: length mismatch";
  Array.iter
    (fun w ->
      if w < 0. || not (Numeric.is_finite w) then
        invalid_arg "Summation.weighted_mean: negative or non-finite weight")
    weights;
  let total = sum weights in
  if total <= 0. then invalid_arg "Summation.weighted_mean: zero total weight";
  Numeric.float_sum_range n (fun i -> weights.(i) *. xs.(i)) /. total

let cumulative xs =
  let n = Array.length xs in
  let out = Array.make n 0. in
  let acc = ref 0. and comp = ref 0. in
  for i = 0 to n - 1 do
    let x = xs.(i) in
    let t = !acc +. x in
    if Float.abs !acc >= Float.abs x then comp := !comp +. ((!acc -. t) +. x)
    else comp := !comp +. ((x -. t) +. !acc);
    acc := t;
    out.(i) <- !acc +. !comp
  done;
  out

let sum_map f xs = Numeric.float_sum_range (Array.length xs) (fun i -> f xs.(i))
