(* Lanczos approximation coefficients, g = 7, n = 9 (Godfrey's values). *)
let lanczos_g = 7.

let lanczos_coef =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if not (Numeric.is_finite x) || x <= 0. then
    invalid_arg "Special.log_gamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection: Γ(x)Γ(1-x) = π / sin(πx). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos_coef.(0) in
    let t = x +. lanczos_g +. 0.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coef.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let gamma x = exp (log_gamma x)

(* erf via the incomplete-gamma relation would lose accuracy near 0;
   use the classic Numerical-Recipes Chebyshev fit for erfc instead,
   which is accurate to ~1.2e-7, then refine with one Newton step
   against the exact derivative 2/sqrt(pi) * exp(-x^2). *)
let erfc_raw x =
  let z = Float.abs x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -.z *. z -. 1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp poly in
  if x >= 0. then ans else 2. -. ans

let two_over_sqrt_pi = 2. /. sqrt Float.pi

let erf x =
  (* One Newton refinement of erf computed from erfc_raw: solves
     f(e) = e - erf(x) = 0 where the residual is estimated through the
     series derivative; in practice this lifts accuracy to ~1e-12 for
     |x| <= 6 which covers all statistical uses here. *)
  let e0 = 1. -. erfc_raw x in
  if Float.abs x > 6. then (if x > 0. then 1. else -1.)
  else begin
    (* Refine with a truncated Taylor series around x for small x where
       the rational fit is weakest. *)
    if Float.abs x < 0.5 then begin
      (* Maclaurin series: erf x = 2/sqrt(pi) Σ (-1)^n x^{2n+1}/(n!(2n+1)). *)
      let x2 = x *. x in
      let term = ref x and acc = ref x in
      for n = 1 to 24 do
        term := !term *. (-.x2) /. float_of_int n;
        acc := !acc +. (!term /. float_of_int ((2 * n) + 1))
      done;
      two_over_sqrt_pi *. !acc
    end
    else e0
  end

let erfc x = if Float.abs x < 0.5 then 1. -. erf x else erfc_raw x

let erf_inv p =
  if not (Numeric.is_finite p) || p <= -1. || p >= 1. then
    invalid_arg "Special.erf_inv: requires argument in (-1, 1)";
  if p = 0. then 0.
  else begin
    (* Initial estimate (Winitzki), then Newton iterations on erf. *)
    let sign = if p < 0. then -1. else 1. in
    let pa = Float.abs p in
    let a = 0.147 in
    let ln1mp2 = log (1. -. (pa *. pa)) in
    let t1 = (2. /. (Float.pi *. a)) +. (ln1mp2 /. 2.) in
    let x0 = sign *. sqrt (sqrt ((t1 *. t1) -. (ln1mp2 /. a)) -. t1) in
    let x = ref x0 in
    for _ = 1 to 4 do
      let fx = erf !x -. p in
      let dfx = two_over_sqrt_pi *. exp (-. (!x *. !x)) in
      x := !x -. (fx /. dfx)
    done;
    !x
  end

(* Regularized lower incomplete gamma: series for x < a+1, continued
   fraction for the complement otherwise (Numerical Recipes gser/gcf). *)
let lower_incomplete_gamma_regularized ~a ~x =
  let a = Numeric.check_pos "Special.incomplete_gamma a" a in
  let x = Numeric.check_nonneg "Special.incomplete_gamma x" x in
  if x = 0. then 0.
  else begin
    let gln = log_gamma a in
    if x < a +. 1. then begin
      let ap = ref a and sum = ref (1. /. a) and del = ref (1. /. a) in
      let iter = ref 0 in
      while Float.abs !del > Float.abs !sum *. 1e-15 && !iter < 500 do
        incr iter;
        ap := !ap +. 1.;
        del := !del *. x /. !ap;
        sum := !sum +. !del
      done;
      !sum *. exp ((-.x) +. (a *. log x) -. gln)
    end
    else begin
      (* Lentz's algorithm for the continued fraction of Q(a,x). *)
      let tiny = 1e-300 in
      let b = ref (x +. 1. -. a) in
      let c = ref (1. /. tiny) in
      let d = ref (1. /. !b) in
      let h = ref !d in
      let i = ref 1 in
      let continue_ = ref true in
      while !continue_ && !i < 500 do
        let an = -.float_of_int !i *. (float_of_int !i -. a) in
        b := !b +. 2.;
        d := (an *. !d) +. !b;
        if Float.abs !d < tiny then d := tiny;
        c := !b +. (an /. !c);
        if Float.abs !c < tiny then c := tiny;
        d := 1. /. !d;
        let delta = !d *. !c in
        h := !h *. delta;
        if Float.abs (delta -. 1.) < 1e-15 then continue_ := false;
        incr i
      done;
      let q = exp ((-.x) +. (a *. log x) -. gln) *. !h in
      1. -. q
    end
  end

(* Regularized incomplete beta via the continued fraction (NR betacf). *)
let incomplete_beta_regularized ~a ~b ~x =
  let a = Numeric.check_pos "Special.incomplete_beta a" a in
  let b = Numeric.check_pos "Special.incomplete_beta b" b in
  let x = Numeric.check_prob "Special.incomplete_beta x" x in
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let betacf a b x =
      let tiny = 1e-300 in
      let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
      let c = ref 1. in
      let d = ref (1. -. (qab *. x /. qap)) in
      if Float.abs !d < tiny then d := tiny;
      d := 1. /. !d;
      let h = ref !d in
      let m = ref 1 in
      let continue_ = ref true in
      while !continue_ && !m <= 300 do
        let mf = float_of_int !m in
        let m2 = 2. *. mf in
        let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
        d := 1. +. (aa *. !d);
        if Float.abs !d < tiny then d := tiny;
        c := 1. +. (aa /. !c);
        if Float.abs !c < tiny then c := tiny;
        d := 1. /. !d;
        h := !h *. !d *. !c;
        let aa =
          -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
        in
        d := 1. +. (aa *. !d);
        if Float.abs !d < tiny then d := tiny;
        c := 1. +. (aa /. !c);
        if Float.abs !c < tiny then c := tiny;
        d := 1. /. !d;
        let del = !d *. !c in
        h := !h *. del;
        if Float.abs (del -. 1.) < 1e-15 then continue_ := false;
        incr m
      done;
      !h
    in
    let lbeta = log_gamma (a +. b) -. log_gamma a -. log_gamma b in
    let front = exp (lbeta +. (a *. log x) +. (b *. Float.log1p (-.x))) in
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf a b x /. a
    else 1. -. (front *. betacf b a (1. -. x) /. b)
  end

let digamma x =
  let x = Numeric.check_pos "Special.digamma" x in
  (* Raise small arguments with the recurrence ψ(x) = ψ(x+1) - 1/x, then
     use the asymptotic expansion. *)
  let rec shift x acc = if x < 6. then shift (x +. 1.) (acc -. (1. /. x)) else (x, acc) in
  let x, acc = shift x 0. in
  let inv = 1. /. x in
  let inv2 = inv *. inv in
  acc +. log x -. (0.5 *. inv)
  -. (inv2
     *. ((1. /. 12.)
        -. (inv2
           *. ((1. /. 120.) -. (inv2 *. ((1. /. 252.) -. (inv2 /. 240.)))))))

let std_normal_cdf x = 0.5 *. erfc (-.x /. sqrt 2.)

let std_normal_quantile p =
  if not (Numeric.is_finite p) || p <= 0. || p >= 1. then
    invalid_arg "Special.std_normal_quantile: requires argument in (0, 1)";
  (* Acklam's rational approximation. *)
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
      |> fun num ->
      num
      /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r
          +. b.(4))
          *. r
         +. 1.)
    end
    else begin
      let q = sqrt (-2. *. Float.log1p (-.p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q
         +. c.(4))
         *. q
        +. c.(5))
      /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
    end
  in
  (* One Halley refinement against the CDF. *)
  let e = std_normal_cdf x -. p in
  let u = e *. sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

let binary_kl q p =
  let q = Numeric.check_prob "Special.binary_kl q" q in
  let p = Numeric.check_prob "Special.binary_kl p" p in
  let term x y =
    if x = 0. then 0. else if y = 0. then infinity else x *. log (x /. y)
  in
  term q p +. term (1. -. q) (1. -. p)

let binary_kl_inv_upper ~q ~c =
  let q = Numeric.check_prob "Special.binary_kl_inv_upper q" q in
  let c = Numeric.check_nonneg "Special.binary_kl_inv_upper c" c in
  if c = 0. then q
  else if binary_kl q 1. <= c then 1.
  else begin
    (* kl(q‖·) is increasing on [q, 1]; bisect. *)
    let lo = ref q and hi = ref 1. in
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      if binary_kl q mid <= c then lo := mid else hi := mid
    done;
    !lo
  end
