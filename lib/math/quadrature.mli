(** Numerical integration on finite and semi-infinite intervals. *)

val simpson : ?n:int -> f:(float -> float) -> float -> float -> float
(** [simpson ~f a b] composite Simpson rule with [n] panels (default
    256; rounded up to even). *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> f:(float -> float) -> float -> float -> float
(** Adaptive Simpson integration with per-interval error control. *)

val trapezoid : ?n:int -> f:(float -> float) -> float -> float -> float
(** Composite trapezoid rule. *)

val integrate_to_infinity :
  ?tol:float -> f:(float -> float) -> float -> float
(** [integrate_to_infinity ~f a] integrates [f] on [\[a, ∞)] through the
    substitution [x = a + t/(1-t)] and adaptive Simpson on [\[0,1)]. The
    integrand must decay at infinity. *)
