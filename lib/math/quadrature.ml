let simpson ?(n = 256) ~f a b =
  if n <= 0 then invalid_arg "Quadrature.simpson: n must be positive";
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let term i =
    let x = a +. (float_of_int i *. h) in
    let w = if i = 0 || i = n then 1. else if i mod 2 = 1 then 4. else 2. in
    w *. f x
  in
  h /. 3. *. Numeric.float_sum_range (n + 1) term

let rec adaptive_step ~f a b fa fb fm whole tol depth =
  let m = 0.5 *. (a +. b) in
  let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
  let flm = f lm and frm = f rm in
  let h = b -. a in
  let left = h /. 12. *. (fa +. (4. *. flm) +. fm) in
  let right = h /. 12. *. (fm +. (4. *. frm) +. fb) in
  let delta = left +. right -. whole in
  if depth <= 0 || Float.abs delta <= 15. *. tol then
    left +. right +. (delta /. 15.)
  else
    adaptive_step ~f a m fa fm flm left (tol /. 2.) (depth - 1)
    +. adaptive_step ~f m b fm fb frm right (tol /. 2.) (depth - 1)

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 40) ~f a b =
  if a = b then 0.
  else begin
    let fa = f a and fb = f b in
    let m = 0.5 *. (a +. b) in
    let fm = f m in
    let whole = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
    adaptive_step ~f a b fa fb fm whole tol max_depth
  end

let trapezoid ?(n = 256) ~f a b =
  if n <= 0 then invalid_arg "Quadrature.trapezoid: n must be positive";
  let h = (b -. a) /. float_of_int n in
  let term i =
    let x = a +. (float_of_int i *. h) in
    let w = if i = 0 || i = n then 0.5 else 1. in
    w *. f x
  in
  h *. Numeric.float_sum_range (n + 1) term

let integrate_to_infinity ?(tol = 1e-10) ~f a =
  (* x = a + t/(1-t), dx = dt/(1-t)^2; integrate t over [0, 1). We stop
     just short of 1 to keep the transformed integrand finite; the tail
     beyond is negligible for decaying integrands. *)
  let g t =
    let omt = 1. -. t in
    let x = a +. (t /. omt) in
    f x /. (omt *. omt)
  in
  adaptive_simpson ~tol ~f:g 0. (1. -. 1e-9)
