(** Special functions needed by the samplers, test statistics and
    PAC-Bayes bounds.

    Implementations follow standard published approximations (Lanczos
    for log-gamma, continued fractions / series for the incomplete
    gamma and beta functions, Abramowitz–Stegun style rational
    approximations for erf); accuracy is ~1e-10 relative over the
    tested domains, which is ample for statistical use. *)

val erf : float -> float
(** Error function [2/√π ∫₀ˣ e^{-t²} dt]. *)

val erfc : float -> float
(** Complementary error function [1 - erf x], accurate for large [x]. *)

val erf_inv : float -> float
(** Inverse error function on (-1, 1).
    @raise Invalid_argument outside (-1, 1). *)

val log_gamma : float -> float
(** [log Γ(x)] for [x > 0] (Lanczos approximation, g=7, n=9).
    @raise Invalid_argument for [x <= 0]. *)

val gamma : float -> float
(** [Γ(x)] for [x > 0]. *)

val lower_incomplete_gamma_regularized : a:float -> x:float -> float
(** Regularized lower incomplete gamma [P(a,x) = γ(a,x)/Γ(a)] for
    [a > 0], [x >= 0]. This is the CDF of the Gamma(a,1) distribution
    and of χ² via [P(k/2, x/2)]. *)

val incomplete_beta_regularized : a:float -> b:float -> x:float -> float
(** Regularized incomplete beta [I_x(a,b)] for [a,b > 0],
    [x ∈ [0,1]] (continued-fraction evaluation). CDF of Beta(a,b). *)

val digamma : float -> float
(** ψ(x) = d/dx log Γ(x) for [x > 0] (recurrence + asymptotic series). *)

val std_normal_cdf : float -> float
(** Standard normal CDF via [erfc]. *)

val std_normal_quantile : float -> float
(** Inverse standard normal CDF (Acklam's algorithm refined by one
    Halley step through {!std_normal_cdf}).
    @raise Invalid_argument outside (0, 1). *)

val binary_kl : float -> float -> float
(** [binary_kl q p] is the KL divergence [kl(q‖p)] between Bernoulli(q)
    and Bernoulli(p), the quantity inverted in Maurer–Seeger PAC-Bayes
    bounds. Returns [infinity] when absolute continuity fails.
    @raise Invalid_argument when either argument is outside [0,1]. *)

val binary_kl_inv_upper : q:float -> c:float -> float
(** [binary_kl_inv_upper ~q ~c] is [sup { p ∈ [q,1] : kl(q‖p) <= c }],
    the upper inverse used by the Seeger bound, computed by bisection.
    @raise Invalid_argument for [q] outside [0,1] or [c < 0]. *)
