(* The coordinator's grant write-ahead log.

   Same frame discipline as the engine journal — 4-byte big-endian
   payload length, 4-byte big-endian Adler-32, payload, torn tail
   truncated on open — because it protects the same invariant from the
   other side: a lease must be durable before the worker that asked for
   it learns it may charge. Records are absolute (cumulative leased ε,
   absolute reclaimed spend), so replaying a prefix of the log after a
   coordinator crash reconstructs a state the shard journals can only
   refine, never contradict. *)

type record =
  | Dataset of { name : string; eps : float; line : string }
  | Incarnation of { shard : int; token : int }
  | Grant of {
      shard : int;
      token : int;
      dataset : string;
      leased : float;
      deadline : float;
    }
  | Reclaim of { shard : int; token : int; dataset : string; spent : float }

(* ------------------------------------------------------------------ *)
(* Payload encoding, shared idiom with Journal: ints and hex floats
   terminated by ';', strings length-prefixed. *)

let put_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let put_float b x =
  Buffer.add_string b (Printf.sprintf "%h" x);
  Buffer.add_char b ';'

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

let encode r =
  let b = Buffer.create 64 in
  (match r with
  | Dataset { name; eps; line } ->
      Buffer.add_char b 'D';
      put_str b name;
      put_float b eps;
      put_str b line
  | Incarnation { shard; token } ->
      Buffer.add_char b 'I';
      put_int b shard;
      put_int b token
  | Grant { shard; token; dataset; leased; deadline } ->
      Buffer.add_char b 'G';
      put_int b shard;
      put_int b token;
      put_str b dataset;
      put_float b leased;
      put_float b deadline
  | Reclaim { shard; token; dataset; spent } ->
      Buffer.add_char b 'R';
      put_int b shard;
      put_int b token;
      put_str b dataset;
      put_float b spent);
  Buffer.contents b

exception Corrupt

let decode payload =
  let pos = ref 1 in
  let upto ch =
    match String.index_from_opt payload !pos ch with
    | None -> raise Corrupt
    | Some i ->
        let s = String.sub payload !pos (i - !pos) in
        pos := i + 1;
        s
  in
  let get_int () =
    match int_of_string_opt (upto ';') with
    | Some n -> n
    | None -> raise Corrupt
  in
  let get_float () =
    match float_of_string_opt (upto ';') with
    | Some x -> x
    | None -> raise Corrupt
  in
  let get_str () =
    let n = get_int () in
    if n < 0 || !pos + n > String.length payload then raise Corrupt;
    let s = String.sub payload !pos n in
    pos := !pos + n;
    s
  in
  if String.length payload = 0 then raise Corrupt;
  match payload.[0] with
  | 'D' ->
      let name = get_str () in
      let eps = get_float () in
      let line = get_str () in
      Dataset { name; eps; line }
  | 'I' ->
      let shard = get_int () in
      let token = get_int () in
      Incarnation { shard; token }
  | 'G' ->
      let shard = get_int () in
      let token = get_int () in
      let dataset = get_str () in
      let leased = get_float () in
      let deadline = get_float () in
      Grant { shard; token; dataset; leased; deadline }
  | 'R' ->
      let shard = get_int () in
      let token = get_int () in
      let dataset = get_str () in
      let spent = get_float () in
      Reclaim { shard; token; dataset; spent }
  | _ -> raise Corrupt

(* ------------------------------------------------------------------ *)
(* Framing, identical to Journal's wire format. *)

let max_payload = 1024 * 1024

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun ch ->
      a := (!a + Char.code ch) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  Int32.of_int ((!b lsl 16) lor !a)

let frame payload =
  let hdr = Bytes.create 8 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_be hdr 4 (adler32 payload);
  Bytes.to_string hdr ^ payload

let scan content =
  let size = String.length content in
  let rec go off acc =
    if off + 8 > size then (List.rev acc, off)
    else
      let len = Int32.to_int (String.get_int32_be content off) in
      if len < 0 || len > max_payload || off + 8 + len > size then
        (List.rev acc, off)
      else
        let payload = String.sub content (off + 8) len in
        if String.get_int32_be content (off + 4) <> adler32 payload then
          (List.rev acc, off)
        else
          match decode payload with
          | r -> go (off + 8 + len) (r :: acc)
          | exception Corrupt -> (List.rev acc, off)
  in
  go 0 []

let read_file path =
  if not (Sys.file_exists path) then Ok ""
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error msg -> Error msg

let load path =
  match read_file path with
  | Error msg -> Error (Printf.sprintf "grant wal %s: %s" path msg)
  | Ok content ->
      let records, good = scan content in
      Ok (records, String.length content - good)

(* ------------------------------------------------------------------ *)

type t = { path : string; fd : Unix.file_descr; mutable clean_off : int }

let path t = t.path
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fsync_dir path =
  let fd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try Unix.fsync fd with Unix.Unix_error (Unix.EINVAL, _, _) -> ())

let open_ path =
  match read_file path with
  | Error msg -> Error (Printf.sprintf "grant wal %s: %s" path msg)
  | Ok content -> (
      let records, good = scan content in
      let torn = String.length content - good in
      let existed = Sys.file_exists path in
      try
        let fd =
          Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
        in
        if not existed then fsync_dir path;
        if torn > 0 then Unix.ftruncate fd good;
        Ok ({ path; fd; clean_off = good }, records, torn)
      with
      | Unix.Unix_error (e, fn, _) ->
          Error
            (Printf.sprintf "grant wal %s: %s: %s" path fn
               (Unix.error_message e))
      | Sys_error msg -> Error (Printf.sprintf "grant wal %s: %s" path msg))

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.single_write_substring fd s off (len - off))
  in
  go 0

let append t record =
  let framed = frame (encode record) in
  try
    write_all t.fd framed;
    Unix.fsync t.fd;
    t.clean_off <- t.clean_off + String.length framed;
    Ok ()
  with Unix.Unix_error (e, fn, _) ->
    (* cut back to the last clean frame so a partial write cannot be
       mistaken for a grant on the next open *)
    (try Unix.ftruncate t.fd t.clean_off with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
