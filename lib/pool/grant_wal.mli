(** The coordinator's grant write-ahead log.

    Charge-before-grant, one level up from the engine journal: every
    lease grant, worker incarnation, and reclaim is framed, written and
    fsynced {e before} the worker (or supervisor) acts on it, so a
    coordinator crash at any point leaves a log from which the exact
    outstanding-lease state is rebuilt. Records carry absolute values —
    cumulative leased ε per incarnation, absolute reclaimed spend per
    shard — so replay is idempotent and a re-sent grant after a dropped
    ack changes nothing.

    Wire format is the engine journal's: 4-byte big-endian payload
    length, 4-byte big-endian Adler-32 of the payload, payload; a torn
    tail is truncated on open. *)

type record =
  | Dataset of { name : string; eps : float; line : string }
      (** a dataset admitted to arbitration: [eps] is its global
          budget, [line] the full register command re-broadcast to
          restarted workers *)
  | Incarnation of { shard : int; token : int }
      (** a fencing token issued to a (re)started worker — durable
          before the fork, so tokens never repeat across coordinator
          lives *)
  | Grant of {
      shard : int;
      token : int;
      dataset : string;
      leased : float;  (** cumulative ε allowance after this grant *)
      deadline : float;
    }
  | Reclaim of { shard : int; token : int; dataset : string; spent : float }
      (** a dead incarnation folded back: [spent] is the absolute
          face-ε sum replayed from its shard journal *)

type t

val open_ : string -> (t * record list * int, string) result
(** Open (or create) for appending; returns existing records and the
    torn-tail byte count truncated off. Creation fsyncs the parent
    directory, like the engine journal. *)

val load : string -> (record list * int, string) result
(** Read-only scan (no truncation); a missing file is an empty log. *)

val append : t -> record -> (unit, string) result
(** Frame, write and fsync one record. On failure the file is cut back
    to the last clean frame; the caller must treat the grant as not
    made (the worker times out and retries). *)

val path : t -> string
val close : t -> unit
