(** The supervised worker pool: a coordinator process that owns the TCP
    listener, forks N engine workers, and arbitrates the global ε
    budget between them with fenced leases.

    Topology: the coordinator accepts connections and passes each
    descriptor ({!Dp_net.Fd_passing}) to a live worker round-robin.
    Every worker runs the full {!Dp_engine.Protocol} against its own
    shard journal [<journal>.shard<k>] and may charge budget only
    through its lease: before any ledger spend the engine's lease gate
    sends [lease ds=… token=… need=…] to the coordinator, where [need]
    is the worker's {e cumulative} face-ε — absolute values make every
    reply idempotent across dropped acks. The coordinator journals the
    grant in its own WAL ([<journal>.grants], {!Grant_wal}) and fsyncs
    {e before} acking — charge-before-grant, one level up.

    Fencing: each worker incarnation carries a monotonically increasing
    token, durable in the WAL before the fork. A lease request under a
    superseded token is answered [lost]; the worker then refuses the
    query with [err degraded reason=lease-lost …] and exits (code 75)
    for a fenced restart. A dead worker's unspent lease is reclaimed
    {e only after} its shard journal is replayed, so the arbiter's
    invariant — [Σ reclaimed spend + Σ outstanding leases ≤ global ε]
    per dataset — holds at every crash point.

    Recovery: a restarted coordinator merges the grant WAL with every
    shard journal ({!merge_lines}), prints the merge, and refuses to
    serve if the invariant is violated. The same function backs the
    offline [dpkit pool replay], so the chaos harness can assert the
    live recovery report is bit-identical to a fault-free offline
    replay.

    Generation fencing on disk: the coordinator holds an fcntl lock on
    [<journal>.grants.lock] and each worker on
    [<journal>.shard<k>.lock] for its process lifetime (released by the
    kernel on any death, [kill -9] included). A restarted coordinator
    acquires the WAL lock and probes every shard lock before reading a
    byte, so it can never re-lease budget or reopen journals while a
    previous generation's orphan can still spend or append. *)

type config = {
  seed : int;  (** engine seed for every worker (default 20120330) *)
  workers : int;  (** shard count, ≥ 2 (N=1 is plain [dpkit serve]) *)
  port : int;  (** TCP port for the coordinator's listener *)
  journal : string;
      (** base path; shard [k] journals to [.shard<k>], the grant WAL
          to [.grants], merged metrics shards to [<metrics>.shard<k>] *)
  metrics : string option;
  faults : Dp_engine.Faults.t;
      (** injected at lease handling and worker serve *)
  quantum : float;  (** ε granted beyond immediate need per round-trip *)
  ttl : float;
      (** seconds a grant may be drawn down without renewal; when a
          request is denied, shards idling past their deadline are
          fenced so their unspent lease returns to the pool *)
  max_restarts : int;  (** per-shard crash-loop bound *)
}

val default_config : workers:int -> port:int -> journal:string -> config
(** seed 20120330, no metrics, no faults, quantum 0.5, ttl 5 s,
    max_restarts 100. *)

val shard_journal : string -> int -> string
val wal_path : string -> string

val merge_lines :
  ?seed:int -> journal:string -> workers:int -> unit ->
  (string list * bool, string) result
(** Replay every shard journal into its own engine, cross-check face-ε
    sums against the grant WAL's per-incarnation leases, and render the
    merged global ledger as stable report lines (hex floats; shard-
    index-order float folds). Returns [(lines, invariant_ok)].
    Deterministic: the coordinator's startup recovery and the offline
    [dpkit pool replay] print byte-identical lines for the same
    on-disk state. *)

val run : config -> int
(** Run the pool until SIGTERM/SIGINT, then drain: close the listener,
    ask workers to finish in-flight requests, merge their metrics
    shards, print [drained]. Returns the process exit code (1 when
    recovery finds a violated invariant or the WAL cannot be opened). *)

(**/**)

val worker_main :
  config -> shard:int -> token:int -> ctrl:Unix.file_descr -> 'a
(** Exposed for the forked child only. *)
