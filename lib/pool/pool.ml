(* Supervised worker pool: fenced ε-lease arbitration with crash-merge
   recovery.

   The coordinator owns the TCP listener and the authoritative budget
   arbitration; N forked workers each run the full engine against their
   own shard journal and answer only while holding a live ε-lease.
   Every grant is WAL'd (charge-before-grant) before the worker learns
   of it; every worker death is reclaimed only after its shard journal
   is replayed; a coordinator death is recovered by merging all shard
   journals plus the grant WAL back into one global view — which this
   module also exposes as the offline [merge_lines] so the chaos
   harness can assert the merged recovery is bit-identical to a
   fault-free offline replay. *)

open Dp_engine
module P = Dp_mechanism.Privacy
module Fd_passing = Dp_net.Fd_passing
module Linebuf = Dp_net.Linebuf
module Metrics = Dp_obs.Metrics
module Export = Dp_obs.Export
module Name = Dp_obs.Name

let slack = 1e-9

type config = {
  seed : int;
  workers : int;
  port : int;
  journal : string;  (** base path; shard k appends to [.shard<k>] *)
  metrics : string option;
  faults : Faults.t;
  quantum : float;  (** ε granted per lease round-trip beyond need *)
  ttl : float;  (** lease validity; workers renew before charging past it *)
  max_restarts : int;  (** per-shard crash-loop bound *)
}

let default_config ~workers ~port ~journal =
  {
    seed = 20120330;
    workers;
    port;
    journal;
    metrics = None;
    faults = Faults.none;
    quantum = 0.5;
    ttl = 5.0;
    max_restarts = 100;
  }

let shard_journal base k = Printf.sprintf "%s.shard%d" base k
let wal_path base = base ^ ".grants"
let shard_metrics base k = Printf.sprintf "%s.shard%d" base k
let gen_lock_path base = wal_path base ^ ".lock"
let shard_lock_path base k = shard_journal base k ^ ".lock"

(* Generation fencing on disk: fcntl record locks die with their
   process (kill -9 included), so holding one for the process lifetime
   is exactly "this generation is still running". The coordinator holds
   the WAL lock; each worker holds its shard lock; a restarted
   coordinator cannot read journals or serve until every lock of the
   previous generation has been released — closing the window where an
   orphaned worker could still spend its old lease or interleave frames
   into a journal the new generation is already using. *)
let try_lock path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | fd -> (
      match Unix.lockf fd Unix.F_TLOCK 0 with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "%s held by a live process (%s)" path
               (Unix.error_message e)))

(* Orphans of a killed coordinator notice the reparenting within one
   select round (~0.25 s) and exit; waiting a bounded moment for their
   locks makes restart-after-kill work without external sequencing. *)
let acquire_lock ?(wait_s = 0.) path =
  let deadline = Unix.gettimeofday () +. wait_s in
  let rec go () =
    match try_lock path with
    | Ok fd -> Ok fd
    | Error msg ->
        if Unix.gettimeofday () >= deadline then Error msg
        else begin
          (try ignore (Unix.select [] [] [] 0.05)
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go ()
        end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Small shared helpers. *)

let split_ws s =
  String.split_on_char ' ' (String.trim s) |> List.filter (fun t -> t <> "")

let kv key tok =
  let p = key ^ "=" in
  let n = String.length p in
  if String.length tok > n && String.sub tok 0 n = p then
    Some (String.sub tok n (String.length tok - n))
  else None

let find_kv key toks = List.find_map (kv key) toks

let find_float key toks =
  Option.bind (find_kv key toks) float_of_string_opt

let find_int key toks = Option.bind (find_kv key toks) int_of_string_opt

(* Face-ε sums per dataset from a shard journal's records: the lease
   currency. Face sums upper-bound every backend's composed spend, so
   reclaiming on them can only under-return budget, never over-. *)
let face_sums records =
  let t = Hashtbl.create 8 in
  List.iter
    (function
      | Journal.Charge c ->
          let prev =
            Option.value ~default:0. (Hashtbl.find_opt t c.Journal.dataset)
          in
          Hashtbl.replace t c.Journal.dataset
            (prev +. c.Journal.face.P.epsilon)
      | _ -> ())
    records;
  t

let send_ctrl fd ?pass msg =
  try
    Fd_passing.send fd ?fd:pass msg;
    true
  with Unix.Unix_error _ -> false

(* ------------------------------------------------------------------ *)
(* Crash-merge: replay every shard journal into its own engine (the
   recovery pipeline refuses duplicate registrations, so shards merge
   as a deterministic fold of per-shard reports, never as one replay),
   cross-check against the grant WAL, and render bit-stable lines.
   Used verbatim by both coordinator startup recovery and the offline
   [dpkit pool replay] CLI, so the chaos harness can diff the two. *)

type shard_ds = {
  sd_spent : float;  (** composed ledger spend (ε) *)
  sd_face : float;  (** Σ face charges (lease currency) *)
  sd_total : float;
  sd_answered : int;
  sd_rejected : int;
}

let merge_lines ?(seed = 20120330) ~journal ~workers () =
  let ( let* ) = Result.bind in
  let rec shard_reports k acc =
    if k >= workers then Ok (List.rev acc)
    else
      let path = shard_journal journal k in
      if not (Sys.file_exists path) then shard_reports (k + 1) ((k, []) :: acc)
      else
        let eng = Engine.create ~seed () in
        let* _r = Engine.open_journal eng path in
        let* records, _stats = Journal.load path in
        let faces = face_sums records in
        let ds =
          List.sort compare (Engine.datasets eng)
          |> List.filter_map (fun name ->
                 match Engine.report eng ~dataset:name with
                 | Error _ -> None
                 | Ok r ->
                     Some
                       ( name,
                         {
                           sd_spent = r.Engine.spent.P.epsilon;
                           sd_face =
                             Option.value ~default:0.
                               (Hashtbl.find_opt faces name);
                           sd_total = r.Engine.total.P.epsilon;
                           sd_answered = r.Engine.answered;
                           sd_rejected = r.Engine.rejected;
                         } ))
        in
        Engine.close eng;
        shard_reports (k + 1) ((k, ds) :: acc)
  in
  let* shards = shard_reports 0 [] in
  let wal = wal_path journal in
  let* wal_records, _torn =
    if Sys.file_exists wal then Grant_wal.load wal else Ok ([], 0)
  in
  (* WAL walk: per shard the live fencing token, per (shard, dataset)
     the cumulative lease under that token and the absolute reclaimed
     spend — what the fencing check compares journals against. *)
  let cur_token = Array.make workers (-1) in
  let leased : (int * string, float) Hashtbl.t = Hashtbl.create 16 in
  let reclaimed : (int * string, float) Hashtbl.t = Hashtbl.create 16 in
  let totals : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | Grant_wal.Dataset { name; eps; _ } -> Hashtbl.replace totals name eps
      | Grant_wal.Incarnation { shard; token } ->
          if shard >= 0 && shard < workers then begin
            cur_token.(shard) <- token;
            Hashtbl.iter
              (fun (s, d) _ -> if s = shard then Hashtbl.remove leased (s, d))
              (Hashtbl.copy leased)
          end
      | Grant_wal.Grant { shard; token; dataset; leased = l; _ } ->
          if shard >= 0 && shard < workers && token = cur_token.(shard) then
            Hashtbl.replace leased (shard, dataset) l
      | Grant_wal.Reclaim { shard; dataset; spent; _ } ->
          if shard >= 0 && shard < workers then
            Hashtbl.replace reclaimed (shard, dataset) spent)
    wal_records;
  let dataset_names =
    List.sort_uniq compare
      (List.concat_map (fun (_, ds) -> List.map fst ds) shards)
  in
  let lookup k name =
    Option.bind (List.assoc_opt k shards) (List.assoc_opt name)
  in
  let ok = ref true in
  let lines = ref [] in
  let emit l = lines := l :: !lines in
  List.iter
    (fun name ->
      (* deterministic shard-index-order float folds: live recovery and
         offline replay take the same path to the same bits *)
      let spent = ref 0. and face = ref 0. in
      let answered = ref 0 and rejected = ref 0 in
      let total = ref 0. in
      for k = 0 to workers - 1 do
        match lookup k name with
        | None -> ()
        | Some d ->
            spent := !spent +. d.sd_spent;
            face := !face +. d.sd_face;
            answered := !answered + d.sd_answered;
            rejected := !rejected + d.sd_rejected;
            total := Float.max !total d.sd_total
      done;
      let eps_total =
        match Hashtbl.find_opt totals name with
        | Some e -> e
        | None -> !total
      in
      if !face > eps_total +. slack then ok := false;
      if wal_records <> [] then
        for k = 0 to workers - 1 do
          let f =
            match lookup k name with None -> 0. | Some d -> d.sd_face
          in
          let re =
            Option.value ~default:0. (Hashtbl.find_opt reclaimed (k, name))
          in
          let le =
            Option.value ~default:0. (Hashtbl.find_opt leased (k, name))
          in
          (* spend of the live (unreclaimed) incarnation must fit the
             lease WAL'd for its fencing token *)
          if f -. re > le +. slack then ok := false
        done;
      emit
        (Printf.sprintf
           "pool-merge dataset=%s eps-total=%g spent-hex=%h spent=%g \
            face-hex=%h answered=%d rejected=%d"
           name eps_total !spent !spent !face !answered !rejected);
      for k = 0 to workers - 1 do
        match lookup k name with
        | None -> ()
        | Some d ->
            emit
              (Printf.sprintf
                 "pool-merge shard=%d dataset=%s spent-hex=%h face-hex=%h \
                  answered=%d rejected=%d"
                 k name d.sd_spent d.sd_face d.sd_answered d.sd_rejected)
      done)
    dataset_names;
  let header =
    Printf.sprintf "pool-merge workers=%d datasets=%d invariant=%s" workers
      (List.length dataset_names)
      (if !ok then "ok" else "VIOLATED")
  in
  Ok (header :: List.rev !lines, !ok)

(* ------------------------------------------------------------------ *)
(* Worker: full engine over its shard journal, serving passed
   connections, charging only through the lease gate. *)

type conn = { fd : Unix.file_descr; buf : Linebuf.t; mutable closed : bool }

type wlease = {
  mutable wleased : float;  (** cumulative allowance (coordinator's word) *)
  mutable used : float;  (** cumulative face-ε approved by the gate *)
  mutable deadline : float;
}

type worker = {
  wcfg : config;
  eng : Engine.t;
  ctrl : Unix.file_descr;
  coord_pid : int;
      (** datagram socketpairs never raise EOF on peer death, so the
          supervisor's death is detected by reparenting instead *)
  shard : int;
  token : int;
  wleases : (string, wlease) Hashtbl.t;
  mutable conns : conn list;
  mutable doregs : string list;  (** queued broadcasts, applied between requests *)
  mutable draining : bool;
  mutable lost : bool;  (** fencing token superseded: refuse fresh charges *)
  mutable coord_gone : bool;
}

let wlease w ds =
  match Hashtbl.find_opt w.wleases ds with
  | Some l -> l
  | None ->
      let l = { wleased = 0.; used = 0.; deadline = neg_infinity } in
      Hashtbl.add w.wleases ds l;
      l

let close_conn c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Apply a control message that can arrive at any time — including in
   the middle of a lease RPC wait. Returns the raw message for the
   waiter to also interpret. *)
let absorb_ctrl w ({ msg; fd } : Fd_passing.received) =
  (match fd with
  | Some cfd -> (
      match split_ws msg with
      | "conn" :: _ ->
          w.conns <-
            { fd = cfd; buf = Linebuf.create (); closed = false } :: w.conns
      | _ -> ( try Unix.close cfd with Unix.Unix_error _ -> ()))
  | None -> ());
  (match split_ws msg with
  | "doreg" :: rest -> w.doregs <- String.concat " " rest :: w.doregs
  | "lost" :: _ -> w.lost <- true
  | [ "drain" ] -> w.draining <- true
  | "grant" :: toks -> (
      (* absolute state: safe to apply whenever it lands, even as a
         stray reply to a timed-out request *)
      match (find_kv "ds" toks, find_int "token" toks, find_float "leased" toks)
      with
      | Some ds, Some tk, Some leased when tk = w.token ->
          let l = wlease w ds in
          l.wleased <- Float.max l.wleased leased;
          (match find_float "deadline" toks with
          | Some d -> l.deadline <- d
          | None -> ())
      | _ -> ())
  | _ -> ());
  msg

(* Wait for a control message satisfying [accept], absorbing everything
   else, until [deadline_at]. *)
let rec await_ctrl w ~deadline_at accept =
  let remaining = deadline_at -. Unix.gettimeofday () in
  if remaining <= 0. then None
  else
    match Unix.select [ w.ctrl ] [] [] remaining with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        await_ctrl w ~deadline_at accept
    | [], _, _ -> None
    | _ -> (
        match Fd_passing.recv w.ctrl with
        | None ->
            w.coord_gone <- true;
            None
        | Some received -> (
            let msg = absorb_ctrl w received in
            match accept msg with
            | Some v -> Some v
            | None -> await_ctrl w ~deadline_at accept))

let request_lease w ~dataset ~(face : P.budget) l =
  let eps = face.P.epsilon in
  let need = l.used +. eps in
  if
    not
      (send_ctrl w.ctrl
         (Printf.sprintf "lease ds=%s token=%d need=%h" dataset w.token need))
  then Engine.Lease_unavailable "pool coordinator unreachable"
  else
    let deadline_at = Unix.gettimeofday () +. 3.0 in
    let verdict =
      await_ctrl w ~deadline_at (fun msg ->
          match split_ws msg with
          | "grant" :: toks when find_kv "ds" toks = Some dataset ->
              (* absorb_ctrl already applied it *)
              if l.wleased -. l.used +. slack >= eps then Some `Granted
              else None
          | "deny" :: toks when find_kv "ds" toks = Some dataset ->
              let remaining =
                Option.value ~default:0. (find_float "remaining" toks)
              in
              Some (`Denied remaining)
          | "lost" :: _ -> Some `Lost
          | _ -> None)
    in
    match verdict with
    | Some `Granted ->
        l.used <- l.used +. eps;
        Engine.Lease_granted
    | Some (`Denied remaining) ->
        Engine.Lease_denied
          { requested = face; remaining = { P.epsilon = remaining; delta = 0. } }
    | Some `Lost -> Engine.Lease_superseded { token = w.token }
    | None ->
        if w.coord_gone then
          Engine.Lease_unavailable "pool coordinator gone"
        else if w.lost then Engine.Lease_superseded { token = w.token }
        else Engine.Lease_unavailable "lease request timed out (retry)"

let gate w ~dataset ~(face : P.budget) =
  if w.lost then Engine.Lease_superseded { token = w.token }
  else begin
    let eps = face.P.epsilon in
    let l = wlease w dataset in
    let now = Unix.gettimeofday () in
    if now <= l.deadline && l.wleased -. l.used +. slack >= eps then begin
      l.used <- l.used +. eps;
      Engine.Lease_granted
    end
    else request_lease w ~dataset ~face l
  end

let apply_doregs w =
  let pending = List.rev w.doregs in
  w.doregs <- [];
  List.iter (fun line -> ignore (Protocol.exec w.eng line)) pending

let write_frame c lines =
  let b = Buffer.create 256 in
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    lines;
  Buffer.add_char b '\n';
  let s = Buffer.contents b in
  let len = String.length s in
  try
    let rec go off =
      if off < len then
        go (off + Unix.write_substring c.fd s off (len - off))
    in
    go 0
  with Unix.Unix_error _ -> close_conn c

let do_register w text =
  (* the coordinator re-tokenizes, so match its normalized echo *)
  let norm = String.concat " " (split_ws text) in
  if not (send_ctrl w.ctrl ("reg " ^ text)) then
    [ "err transient pool coordinator unreachable (retry)" ]
  else
    let deadline_at = Unix.gettimeofday () +. 5.0 in
    match
      await_ctrl w ~deadline_at (fun msg ->
          match split_ws msg with
          | "doreg" :: rest when String.concat " " rest = norm -> Some `Mine
          | "regerr" :: rest -> Some (`Err (String.concat " " rest))
          | _ -> None)
    with
    | Some `Mine ->
        (* ours was queued by absorb_ctrl; drop it and exec inline so
           the client's reply is this worker's own registration *)
        w.doregs <- List.filter (fun l -> l <> norm) w.doregs;
        Protocol.exec w.eng text
    | Some (`Err msg) -> [ msg ]
    | None -> [ "err transient registration timed out (retry)" ]

let serve_line w c (line : Linebuf.line) =
  if c.closed then ()
  else if line.Linebuf.bytes > Protocol.max_line_bytes then
    write_frame c [ Protocol.oversized_reply line.Linebuf.bytes ]
  else begin
    let text = line.Linebuf.text in
    let toks = split_ws text in
    if toks = [] then ()
    else begin
      Faults.check (Engine.faults w.eng) Faults.Worker_crash;
      let reply =
        match toks with
        | "register" :: _ -> do_register w text
        | _ -> Protocol.exec w.eng text
      in
      write_frame c reply;
      if Protocol.is_quit text then close_conn c
    end
  end

let read_conn w c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn c
  | 0 -> close_conn c
  | n -> List.iter (serve_line w c) (Linebuf.feed c.buf buf 0 n)

let worker_finish w ~code =
  List.iter close_conn w.conns;
  (match w.wcfg.metrics with
  | None -> ()
  | Some base -> (
      let path = shard_metrics base w.shard in
      match open_out path with
      | oc ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            (Engine.metrics_lines w.eng);
          close_out oc
      | exception Sys_error _ -> ()));
  Engine.close w.eng;
  exit code

let rec worker_loop w term =
  if !term then w.draining <- true;
  if Unix.getppid () <> w.coord_pid then w.coord_gone <- true;
  apply_doregs w;
  w.conns <- List.filter (fun c -> not c.closed) w.conns;
  if w.lost then worker_finish w ~code:75
  else if w.coord_gone then worker_finish w ~code:0
  else if w.draining then worker_finish w ~code:0
  else begin
    let fds = w.ctrl :: List.map (fun c -> c.fd) w.conns in
    (match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem w.ctrl ready then begin
          match Fd_passing.recv w.ctrl with
          | None -> w.coord_gone <- true
          | Some received -> ignore (absorb_ctrl w received)
        end;
        List.iter
          (fun c ->
            if (not c.closed) && List.mem c.fd ready then read_conn w c)
          w.conns);
    worker_loop w term
  end

let worker_main cfg ~shard ~token ~ctrl =
  let term = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> term := true));
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* held (never closed) until this process dies: the next incarnation
     and any restarted coordinator block on it, not on luck *)
  (match acquire_lock ~wait_s:5.0 (shard_lock_path cfg.journal shard) with
  | Error msg ->
      Printf.eprintf "pool: worker shard=%d lock: %s\n%!" shard msg;
      exit 1
  | Ok _fd -> ());
  let eng = Engine.create ~seed:cfg.seed ~faults:cfg.faults () in
  (match Engine.open_journal eng (shard_journal cfg.journal shard) with
  | Error msg ->
      Printf.eprintf "pool: worker shard=%d journal: %s\n%!" shard msg;
      exit 1
  | Ok _ -> ());
  let w =
    {
      wcfg = cfg;
      eng;
      ctrl;
      coord_pid = Unix.getppid ();
      shard;
      token;
      wleases = Hashtbl.create 8;
      conns = [];
      doregs = [];
      draining = false;
      lost = false;
      coord_gone = false;
    }
  in
  Engine.set_lease_gate eng (Some (fun ~dataset ~face -> gate w ~dataset ~face));
  match worker_loop w term with
  | _ -> assert false
  | exception Faults.Crash p ->
      Printf.eprintf "dpkit: injected crash at %s\n%!" (Faults.point_name p);
      exit 70

(* ------------------------------------------------------------------ *)
(* Coordinator. *)

type wstate = {
  shard : int;
  mutable pid : int;
  mutable cctrl : Unix.file_descr;
  mutable cctrl_open : bool;
      (** the coordinator-side control fd is open — distinct from
          [live], which also drops when a conn pass fails so the
          scheduler skips the worker before the reaper confirms death *)
  mutable token : int;
  mutable live : bool;
  mutable restarts : int;
}

type coord = {
  cfg : config;
  gen_lock : Unix.file_descr;  (** held for life; fences generations *)
  mutable listener : Unix.file_descr option;
  wal : Grant_wal.t;
  leases : (string, Lease.t) Hashtbl.t;
  mutable reg_lines : (string * string) list;  (** newest first *)
  mutable next_token : int;
  cworkers : wstate array;
  mutable rr : int;
  mutable pending : Unix.file_descr list;  (** conns awaiting a live worker *)
  mutable draining : bool;
  mutable granted_n : int;
  mutable denied_n : int;
  mutable reclaimed_n : int;
  mutable restarted_n : int;
  mutable wal_appends : int;
}

let live_workers coord =
  Array.to_list coord.cworkers |> List.filter (fun w -> w.live)

let flush_pending coord assign =
  let pending = List.rev coord.pending in
  coord.pending <- [];
  List.iter assign pending

let rec assign_conn coord fd =
  let n = Array.length coord.cworkers in
  let rec pick i tries =
    if tries >= n then None
    else
      let w = coord.cworkers.(i mod n) in
      if w.live then Some w else pick (i + 1) (tries + 1)
  in
  match pick coord.rr 0 with
  | Some w ->
      coord.rr <- (w.shard + 1) mod n;
      if send_ctrl w.cctrl ~pass:fd "conn" then
        Unix.close fd
      else begin
        (* worker (almost certainly) died under us: stop scheduling it,
           nudge it in case it is actually alive, and let the reaper —
           which matches on pid, not [live] — run the full journal
           replay / reclaim / restart path *)
        w.live <- false;
        if w.pid > 0 then
          (try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ());
        assign_conn coord fd
      end
  | None ->
      if List.length coord.pending < 64 then
        coord.pending <- fd :: coord.pending
      else (try Unix.close fd with Unix.Unix_error _ -> ())

let spawn_worker coord shard =
  let cfg = coord.cfg in
  let token = coord.next_token in
  match Grant_wal.append coord.wal (Grant_wal.Incarnation { shard; token }) with
  | Error msg ->
      Printf.eprintf "pool: grant wal: %s — leaving shard %d down\n%!" msg
        shard;
      false
  | Ok () ->
      coord.next_token <- token + 1;
      coord.wal_appends <- coord.wal_appends + 1;
      Hashtbl.iter
        (fun _ lease -> Lease.new_incarnation lease ~shard ~token)
        coord.leases;
      let parent_end, child_end = Fd_passing.channel () in
      (match Unix.fork () with
      | 0 ->
          (* child: drop every coordinator-side descriptor, then serve *)
          (try Unix.close parent_end with Unix.Unix_error _ -> ());
          (match coord.listener with
          | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | None -> ());
          Grant_wal.close coord.wal;
          (* closing the inherited fd does not release the parent's
             fcntl lock (locks are per-process) *)
          (try Unix.close coord.gen_lock with Unix.Unix_error _ -> ());
          Array.iter
            (fun w ->
              if w.cctrl_open then
                try Unix.close w.cctrl with Unix.Unix_error _ -> ())
            coord.cworkers;
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            coord.pending;
          worker_main cfg ~shard ~token ~ctrl:child_end
      | pid ->
          (try Unix.close child_end with Unix.Unix_error _ -> ());
          let w = coord.cworkers.(shard) in
          w.pid <- pid;
          w.cctrl <- parent_end;
          w.cctrl_open <- true;
          w.token <- token;
          w.live <- true;
          (* replay the registration history so a restarted worker
             serves every dataset (its journal already has any it saw
             live; duplicates fail locally and are discarded) *)
          List.iter
            (fun (_, line) -> ignore (send_ctrl w.cctrl ("doreg " ^ line)))
            (List.rev coord.reg_lines));
      true

let handle_reg coord w line =
  match split_ws line with
  | "register" :: name :: opts ->
      if Hashtbl.mem coord.leases name then
        (* already arbitrated: only the requester execs it, and its own
           engine produces the duplicate-registration error *)
        ignore (send_ctrl w.cctrl ("doreg " ^ line))
      else begin
        let eps = Option.value ~default:1.0 (find_float "eps" opts) in
        match
          Grant_wal.append coord.wal (Grant_wal.Dataset { name; eps; line })
        with
        | Error msg ->
            ignore
              (send_ctrl w.cctrl ("regerr err transient grant wal: " ^ msg))
        | Ok () ->
            coord.wal_appends <- coord.wal_appends + 1;
            let lease = Lease.create ~total:eps ~shards:coord.cfg.workers in
            Array.iter
              (fun w' ->
                if w'.live then
                  Lease.new_incarnation lease ~shard:w'.shard ~token:w'.token)
              coord.cworkers;
            Hashtbl.replace coord.leases name lease;
            coord.reg_lines <- (name, line) :: coord.reg_lines;
            Array.iter
              (fun w' ->
                if w'.live then ignore (send_ctrl w'.cctrl ("doreg " ^ line)))
              coord.cworkers
      end
  | _ ->
      ignore
        (send_ctrl w.cctrl "regerr err bad-argument register needs NAME")

let handle_lease coord w ~ds ~token ~need =
  if Faults.fire coord.cfg.faults Faults.Lease_expiry then
    (* injected expiry: tell the incarnation its lease is gone; the
       worker answers lease-lost and exits for a fenced restart *)
    ignore (send_ctrl w.cctrl (Printf.sprintf "lost ds=%s token=%d" ds token))
  else
    match Hashtbl.find_opt coord.leases ds with
    | None ->
        ignore
          (send_ctrl w.cctrl (Printf.sprintf "deny ds=%s remaining=%h" ds 0.))
    | Some lease -> (
        let now = Unix.gettimeofday () in
        let prev = Lease.leased lease ~shard:w.shard in
        match
          Lease.grant lease ~shard:w.shard ~token ~need
            ~quantum:coord.cfg.quantum ~now ~ttl:coord.cfg.ttl
        with
        | Lease.Stale { token = cur } ->
            ignore
              (send_ctrl w.cctrl
                 (Printf.sprintf "lost ds=%s token=%d" ds cur))
        | Lease.Denied { unleased } ->
            coord.denied_n <- coord.denied_n + 1;
            (* availability under pressure: budget idling behind an
               expired lease is freed through the fenced-restart path —
               the fenced worker exits, its journal replay returns the
               unspent remainder, and the denied client's retry finds
               headroom. Soundness never depends on this (or any)
               clock. *)
            List.iter
              (fun k ->
                if k <> w.shard then begin
                  let ws = coord.cworkers.(k) in
                  if ws.live then begin
                    Printf.eprintf
                      "pool: fencing expired lease shard=%d dataset=%s\n%!" k
                      ds;
                    ignore
                      (send_ctrl ws.cctrl
                         (Printf.sprintf "lost ds=%s token=%d" ds ws.token))
                  end
                end)
              (Lease.expired lease ~now);
            ignore
              (send_ctrl w.cctrl
                 (Printf.sprintf "deny ds=%s remaining=%h" ds unleased))
        | Lease.Granted { leased; deadline } ->
            let ack () =
              ignore
                (send_ctrl w.cctrl
                   (Printf.sprintf
                      "grant ds=%s token=%d leased=%h deadline=%h" ds token
                      leased deadline))
            in
            if leased > prev +. slack then (
              (* charge-before-grant: the allowance is durable before
                 the worker can spend a millionth of it *)
              match
                Grant_wal.append coord.wal
                  (Grant_wal.Grant
                     { shard = w.shard; token; dataset = ds; leased; deadline })
              with
              | Error msg ->
                  (* the raised allowance was never journaled: roll the
                     in-memory state back too, or the worker's retry
                     would be re-acked against a lease no recovery can
                     see. No ack: the worker times out and retries. *)
                  Lease.rollback lease ~shard:w.shard ~token ~leased:prev;
                  Printf.eprintf "pool: grant wal: %s — grant withheld\n%!"
                    msg
              | Ok () ->
                  coord.granted_n <- coord.granted_n + 1;
                  coord.wal_appends <- coord.wal_appends + 1;
                  if Faults.fire coord.cfg.faults Faults.Grant_drop then ()
                  else ack ())
            else ack () (* pure re-ack of absolute state; nothing to journal *))

let handle_ctrl_msg coord w =
  match Fd_passing.recv w.cctrl with
  | exception Unix.Unix_error _ -> ()
  | None -> () (* EOF; the reaper owns death *)
  | Some { msg; fd } -> (
      (match fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      match split_ws msg with
      | "reg" :: rest -> handle_reg coord w (String.concat " " rest)
      | "lease" :: toks -> (
          match
            (find_kv "ds" toks, find_int "token" toks, find_float "need" toks)
          with
          | Some ds, Some token, Some need ->
              handle_lease coord w ~ds ~token ~need
          | _ -> ())
      | _ -> ())

let reclaim_shard coord w =
  let path = shard_journal coord.cfg.journal w.shard in
  match Journal.load path with
  | Error msg ->
      (* cannot prove what the dead incarnation spent: leave its lease
         outstanding (conservative) and keep the shard down *)
      Printf.eprintf
        "pool: shard %d journal unreadable (%s) — lease NOT reclaimed\n%!"
        w.shard msg;
      false
  | Ok (records, _stats) ->
      let faces = face_sums records in
      Hashtbl.iter
        (fun name lease ->
          let spent =
            Option.value ~default:0. (Hashtbl.find_opt faces name)
          in
          let r = Lease.reclaim lease ~shard:w.shard ~spent_total:spent in
          coord.reclaimed_n <- coord.reclaimed_n + 1;
          if r.Lease.overspend then
            Printf.eprintf
              "pool: FENCING VIOLATION shard=%d dataset=%s spent past lease\n%!"
              w.shard name;
          match
            Grant_wal.append coord.wal
              (Grant_wal.Reclaim
                 { shard = w.shard; token = w.token; dataset = name; spent })
          with
          | Ok () -> coord.wal_appends <- coord.wal_appends + 1
          | Error msg -> Printf.eprintf "pool: grant wal: %s\n%!" msg)
        coord.leases;
      true

let handle_death coord w status =
  w.live <- false;
  if w.cctrl_open then begin
    w.cctrl_open <- false;
    try Unix.close w.cctrl with Unix.Unix_error _ -> ()
  end;
  let describe = function
    | Unix.WEXITED n -> Printf.sprintf "exit=%d" n
    | Unix.WSIGNALED n -> Printf.sprintf "signal=%d" n
    | Unix.WSTOPPED n -> Printf.sprintf "stopped=%d" n
  in
  Printf.eprintf "pool: worker shard=%d pid=%d down (%s)\n%!" w.shard w.pid
    (describe status);
  let reclaimed = reclaim_shard coord w in
  if coord.draining then ()
  else if not reclaimed then ()
  else if w.restarts >= coord.cfg.max_restarts then
    Printf.eprintf "pool: shard %d hit the restart bound — leaving it down\n%!"
      w.shard
  else begin
    w.restarts <- w.restarts + 1;
    coord.restarted_n <- coord.restarted_n + 1;
    if spawn_worker coord w.shard then begin
      Printf.eprintf "pool: worker shard=%d restarted token=%d pid=%d\n%!"
        w.shard w.token w.pid;
      flush_pending coord (assign_conn coord)
    end
  end

let reap coord =
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | pid, status ->
        (* match on pid alone: a worker whose conn pass failed was
           already marked not-live, but it still owes a journal replay,
           lease reclaim and restart *)
        (match
           Array.to_list coord.cworkers
           |> List.find_opt (fun w -> w.pid = pid)
         with
        | Some w -> handle_death coord w status
        | None -> ());
        go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Merge the per-shard metrics snapshots into one dump: counters sum;
   additive gauges sum; the rest take the max; hit-rate and remaining
   are recomputed from the merged numbers; pool counters are layered on
   the global scope. *)
let additive_gauges =
  [
    "eps_spent"; "delta_spent"; "cache_entries"; "models_stored";
    "streams_open"; "net_conns_open"; "net_inflight"; "mi_bound_nats";
    "capacity_bound_nats"; "min_entropy_leakage_bits";
  ]

let counter_of_name n =
  Array.to_seq Name.all_counters
  |> Seq.find (fun c -> Name.counter_name c = n)

let gauge_of_name n =
  Array.to_seq Name.all_gauges |> Seq.find (fun g -> Name.gauge_name g = n)

let write_merged_metrics coord =
  match coord.cfg.metrics with
  | None -> ()
  | Some base ->
      let counters : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
      let gauges : (string * string, float) Hashtbl.t = Hashtbl.create 64 in
      for k = 0 to coord.cfg.workers - 1 do
        let path = shard_metrics base k in
        if Sys.file_exists path then begin
          let text =
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Export.parse (String.split_on_char '\n' text) with
          | Error _ -> ()
          | Ok entries ->
              List.iter
                (function
                  | Export.Counter { scope; name; value } ->
                      let key = (scope, name) in
                      let prev =
                        Option.value ~default:0 (Hashtbl.find_opt counters key)
                      in
                      Hashtbl.replace counters key (prev + value)
                  | Export.Gauge { scope; name; value } ->
                      let key = (scope, name) in
                      let prev =
                        Option.value ~default:0.
                          (Hashtbl.find_opt gauges key)
                      in
                      let v =
                        if List.mem name additive_gauges then prev +. value
                        else Float.max prev value
                      in
                      Hashtbl.replace gauges key v
                  | Export.Latency _ | Export.Span _ -> ())
                entries
        end
      done;
      (* recompute the derived gauges from the merged numbers *)
      let scopes =
        Hashtbl.fold (fun (s, _) _ acc -> s :: acc) gauges [] |> List.sort_uniq compare
      in
      List.iter
        (fun s ->
          (match
             ( Hashtbl.find_opt gauges (s, "eps_total"),
               Hashtbl.find_opt gauges (s, "eps_spent") )
           with
          | Some total, Some spent ->
              Hashtbl.replace gauges (s, "eps_remaining")
                (Float.max 0. (total -. spent))
          | _ -> ());
          let hits =
            Option.value ~default:0 (Hashtbl.find_opt counters (s, "cache_hits"))
          in
          let misses =
            Option.value ~default:0
              (Hashtbl.find_opt counters (s, "cache_misses"))
          in
          if hits + misses > 0 then
            Hashtbl.replace gauges (s, "cache_hit_rate")
              (float_of_int hits /. float_of_int (hits + misses)))
        scopes;
      let reg = Metrics.create () in
      let scope_of label =
        if label = "-" then Metrics.global reg else Metrics.scope reg label
      in
      Hashtbl.iter
        (fun (s, name) v ->
          match counter_of_name name with
          | Some c -> Metrics.set_counter (scope_of s) c v
          | None -> ())
        counters;
      Hashtbl.iter
        (fun (s, name) v ->
          match gauge_of_name name with
          | Some g -> Metrics.set_gauge (scope_of s) g v
          | None -> ())
        gauges;
      let g = Metrics.global reg in
      Metrics.set_counter g Name.Pool_leases_granted coord.granted_n;
      Metrics.set_counter g Name.Pool_leases_denied coord.denied_n;
      Metrics.set_counter g Name.Pool_leases_reclaimed coord.reclaimed_n;
      Metrics.set_counter g Name.Pool_workers_restarted coord.restarted_n;
      Metrics.set_counter g Name.Pool_grants_journaled coord.wal_appends;
      Metrics.set_gauge g Name.Pool_workers (float_of_int coord.cfg.workers);
      Metrics.set_gauge g Name.Pool_eps_outstanding
        (Hashtbl.fold (fun _ l acc -> acc +. Lease.outstanding l) coord.leases 0.);
      (match open_out base with
      | oc ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            (Export.dump reg);
          close_out oc
      | exception Sys_error msg ->
          Printf.eprintf "pool: cannot write metrics: %s\n%!" msg)

let begin_drain coord =
  if not coord.draining then begin
    coord.draining <- true;
    (match coord.listener with
    | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        coord.listener <- None
    | None -> ());
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      coord.pending;
    coord.pending <- [];
    Array.iter
      (fun w -> if w.live then ignore (send_ctrl w.cctrl "drain"))
      coord.cworkers
  end

let run_locked cfg ~gen_lock ~stop =
  let had_state =
    Sys.file_exists (wal_path cfg.journal)
    || Array.exists
         (fun k -> Sys.file_exists (shard_journal cfg.journal k))
         (Array.init cfg.workers (fun k -> k))
  in
  match merge_lines ~seed:cfg.seed ~journal:cfg.journal ~workers:cfg.workers () with
  | Error msg ->
      Printf.eprintf "pool: recovery merge failed: %s\n%!" msg;
      1
  | Ok (lines, ok) -> (
      if had_state then List.iter print_endline lines;
      if not ok then begin
        Printf.eprintf
          "pool: lease invariant VIOLATED in recovered state — refusing to \
           serve\n\
           %!";
        1
      end
      else
        match Grant_wal.open_ (wal_path cfg.journal) with
        | Error msg ->
            Printf.eprintf "pool: %s\n%!" msg;
            1
        | Ok (wal, wal_records, _torn) -> (
            let coord =
              {
                cfg;
                gen_lock;
                listener = None;
                wal;
                leases = Hashtbl.create 8;
                reg_lines = [];
                next_token = 1;
                cworkers =
                  Array.init cfg.workers (fun shard ->
                      {
                        shard;
                        pid = -1;
                        cctrl = Unix.stdin;
                        cctrl_open = false;
                        token = -1;
                        live = false;
                        restarts = 0;
                      });
                rr = 0;
                pending = [];
                draining = false;
                granted_n = 0;
                denied_n = 0;
                reclaimed_n = 0;
                restarted_n = 0;
                wal_appends = 0;
              }
            in
            (* rebuild arbitration from the WAL: datasets and budgets,
               the next fencing token, and — since every incarnation is
               dead at coordinator start — per-shard reclaimed spend
               straight from the shard journals *)
            let last_token = Array.make cfg.workers (-1) in
            let wal_reclaimed : (int * string, float) Hashtbl.t =
              Hashtbl.create 16
            in
            List.iter
              (function
                | Grant_wal.Dataset { name; eps; line } ->
                    if not (Hashtbl.mem coord.leases name) then begin
                      Hashtbl.replace coord.leases name
                        (Lease.create ~total:eps ~shards:cfg.workers);
                      coord.reg_lines <- (name, line) :: coord.reg_lines
                    end
                | Grant_wal.Incarnation { shard; token } ->
                    coord.next_token <- Int.max coord.next_token (token + 1);
                    if shard >= 0 && shard < cfg.workers then
                      last_token.(shard) <- token
                | Grant_wal.Grant { token; _ } ->
                    coord.next_token <- Int.max coord.next_token (token + 1)
                | Grant_wal.Reclaim { shard; token; dataset; spent } ->
                    coord.next_token <- Int.max coord.next_token (token + 1);
                    if shard >= 0 && shard < cfg.workers then
                      Hashtbl.replace wal_reclaimed (shard, dataset) spent)
              wal_records;
            let recovery_ok = ref true in
            for k = 0 to cfg.workers - 1 do
              let path = shard_journal cfg.journal k in
              if Sys.file_exists path then begin
                match Journal.load path with
                | Error msg ->
                    Printf.eprintf "pool: shard %d journal: %s\n%!" k msg;
                    recovery_ok := false
                | Ok (records, _stats) ->
                    let faces = face_sums records in
                    Hashtbl.iter
                      (fun name lease ->
                        let spent =
                          Option.value ~default:0.
                            (Hashtbl.find_opt faces name)
                        in
                        if spent > 0. then begin
                          ignore
                            (Lease.reclaim lease ~shard:k ~spent_total:spent);
                          let prior =
                            Option.value ~default:0.
                              (Hashtbl.find_opt wal_reclaimed (k, name))
                          in
                          if spent > prior +. slack then
                            match
                              Grant_wal.append wal
                                (Grant_wal.Reclaim
                                   {
                                     shard = k;
                                     token = last_token.(k);
                                     dataset = name;
                                     spent;
                                   })
                            with
                            | Ok () ->
                                coord.wal_appends <- coord.wal_appends + 1
                            | Error msg ->
                                Printf.eprintf "pool: grant wal: %s\n%!" msg
                        end)
                      coord.leases
              end
            done;
            if not !recovery_ok then 1
            else
              try
                let listener =
                  Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
                in
                Unix.setsockopt listener Unix.SO_REUSEADDR true;
                Unix.bind listener
                  (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port));
                Unix.listen listener 64;
                coord.listener <- Some listener;
                let port =
                  match Unix.getsockname listener with
                  | Unix.ADDR_INET (_, p) -> p
                  | _ -> cfg.port
                in
                for k = 0 to cfg.workers - 1 do
                  ignore (spawn_worker coord k)
                done;
                Printf.printf "listening port=%d workers=%d\n%!" port
                  cfg.workers;
                let rec loop () =
                  reap coord;
                  if !stop then begin_drain coord;
                  if coord.draining && live_workers coord = [] then ()
                  else begin
                    let fds =
                      (match coord.listener with
                      | Some fd when not coord.draining -> [ fd ]
                      | _ -> [])
                      @ List.map (fun w -> w.cctrl) (live_workers coord)
                    in
                    (match Unix.select fds [] [] 0.25 with
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                    | ready, _, _ ->
                        List.iter
                          (fun fd ->
                            match coord.listener with
                            | Some l when fd = l -> (
                                match Unix.accept l with
                                | conn, _ -> assign_conn coord conn
                                | exception Unix.Unix_error _ -> ())
                            | _ -> (
                                match
                                  Array.to_list coord.cworkers
                                  |> List.find_opt (fun w ->
                                         w.live && w.cctrl = fd)
                                with
                                | Some w -> handle_ctrl_msg coord w
                                | None -> ()))
                          ready);
                    loop ()
                  end
                in
                loop ();
                write_merged_metrics coord;
                Grant_wal.close coord.wal;
                (try Unix.close coord.gen_lock with Unix.Unix_error _ -> ());
                Printf.printf "drained\n%!";
                0
              with Unix.Unix_error (e, fn, _) ->
                Printf.eprintf "pool: %s: %s\n%!" fn (Unix.error_message e);
                1))

let run cfg =
  if cfg.workers < 2 then invalid_arg "Pool.run: need at least 2 workers";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  (* wake the select loop promptly when a child dies *)
  Sys.set_signal Sys.sigchld (Sys.Signal_handle (fun _ -> ()));
  (* generation fencing: no reading, re-leasing or serving while any
     process of the previous generation can still write. The WAL lock
     (another live coordinator) fails fast; the shard probes wait out
     the window in which orphaned workers notice the reparenting. *)
  match acquire_lock (gen_lock_path cfg.journal) with
  | Error msg ->
      Printf.eprintf "pool: coordinator lock: %s — refusing to serve\n%!" msg;
      1
  | Ok gen_lock -> (
      let rec probe k =
        if k >= cfg.workers then None
        else
          match acquire_lock ~wait_s:5.0 (shard_lock_path cfg.journal k) with
          | Ok fd ->
              (* probe only: the shard's own worker takes it after fork *)
              (try Unix.close fd with Unix.Unix_error _ -> ());
              probe (k + 1)
          | Error msg -> Some msg
      in
      match probe 0 with
      | Some msg ->
          (try Unix.close gen_lock with Unix.Unix_error _ -> ());
          Printf.eprintf "pool: worker lock: %s — refusing to serve\n%!" msg;
          1
      | None -> run_locked cfg ~gen_lock ~stop)
