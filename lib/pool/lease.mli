(** Fenced ε-lease arbitration for one dataset across N worker shards.

    The coordinator owns the only authoritative view of the dataset's
    global budget E. Each live worker incarnation holds a {e lease}: a
    cumulative face-ε allowance it may charge locally without asking
    again, fenced by a monotonically-increasing token so a superseded
    incarnation (crashed, expired, restarted) can never spend against a
    grant that has been reclaimed.

    The module is a pure state machine over three per-shard numbers —
    current fencing [token], [leased] (cumulative ε granted to the live
    incarnation) and [reclaimed] (absolute ε spent by all dead
    incarnations, read back from the shard journal) — with the one
    invariant the pool must never break:

    {v Σ reclaimed + Σ leased  ≤  E v}

    Amounts are {e face-value} ε sums, an upper bound on every
    composition backend's marginal spend, so arbitration is
    conservative for advanced/RDP ledgers and exact for basic ones.
    All decisions are absolute (cumulative) rather than incremental, so
    replaying a grant whose ack was lost is idempotent. *)

type t

val create : total:float -> shards:int -> t
(** Arbitration over budget [total] for [shards] workers, none live
    yet. @raise Invalid_argument on negative total or no shards. *)

val budget : t -> float
val shards : t -> int

val outstanding : t -> float
(** Σ leased to live incarnations (whether locally spent or not). *)

val reclaimed_spent : t -> float
(** Σ journal-replayed spend of dead incarnations. *)

val unleased : t -> float
(** [budget - outstanding - reclaimed_spent], clamped at 0 — the ε
    still grantable. *)

val invariant_ok : t -> bool
(** [reclaimed_spent + outstanding ≤ budget] (within 1e-9 slack). *)

val current_token : t -> shard:int -> int
(** The live incarnation's fencing token; [-1] before the first. *)

val leased : t -> shard:int -> float

val expired : t -> now:float -> int list
(** Shards holding a non-zero lease whose last grant deadline lies
    before [now] — incarnations idling on unspent budget. The
    coordinator may fence them (the worker exits for a supervised
    restart and its journal replay returns the unspent remainder); the
    arbiter itself never revokes, so soundness never depends on the
    clock. *)

val new_incarnation : t -> shard:int -> token:int -> unit
(** Install a freshly-started incarnation. @raise Invalid_argument if
    [token] does not strictly increase, or if the previous incarnation
    was never reclaimed (the supervisor must replay its journal and
    {!reclaim} before restarting — otherwise its unspent lease would
    leak). *)

type decision =
  | Granted of { leased : float; deadline : float }
      (** the shard's new cumulative allowance (absolute, idempotent to
          re-deliver) and its expiry deadline *)
  | Denied of { unleased : float }
      (** granting [need] would break the invariant; [unleased] is what
          remains grantable globally *)
  | Stale of { token : int }
      (** the request carried a superseded fencing token; [token] is
          the current one (or -1) — the worker must stop charging and
          exit for restart *)

val grant :
  t ->
  shard:int ->
  token:int ->
  need:float ->
  quantum:float ->
  now:float ->
  ttl:float ->
  decision
(** Ask to raise the shard's cumulative allowance to at least [need].
    A fresh grant rounds up to [quantum] above the current lease when
    headroom allows (fewer round-trips); a [need] already covered is
    re-acked without state change. [now + ttl] is the returned
    deadline; expiry is enforced by the worker refusing to charge past
    it (and renewing), not by a coordinator-side clock. *)

val rollback : t -> shard:int -> token:int -> leased:float -> unit
(** Undo a {!grant} that could not be made durable: restore the shard's
    cumulative allowance to [leased] (the value {!leased} returned
    before the grant). A no-op unless [token] is still the live
    incarnation and [leased] is strictly below the current allowance —
    so a stale or re-ordered rollback can never widen a lease. Without
    this, a failed WAL append would leave the raised allowance in
    memory and the worker's retry would be re-acked against a lease
    that was never journaled. *)

type reclaimed = { unspent : float; overspend : bool }

val reclaim : t -> shard:int -> spent_total:float -> reclaimed
(** Fold a dead incarnation back into the pool. [spent_total] is the
    {e absolute} face-ε sum replayed from the shard's journal (all
    incarnations); the difference against the last reclaim is what the
    dead incarnation actually spent, the rest of its lease returns to
    [unleased]. [overspend] flags spend beyond the lease — a fencing
    violation that must fail the run. *)
