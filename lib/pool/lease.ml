(* Fenced ε-lease arbitration for one dataset across N worker shards.

   Pure state machine — no clock, no I/O — so the coordinator drives it
   from WAL'd events and the property tests drive it from arbitrary
   interleavings. All amounts are face-value ε (the sum of per-query
   face charges), which upper-bounds every composition backend's
   marginal spend: arbitrating in face currency is conservative, never
   unsound. *)

type shard = {
  mutable token : int;
      (* fencing token of the live incarnation; -1 before the first *)
  mutable leased : float;
      (* cumulative ε granted to the live incarnation (absolute, so a
         re-sent grant is idempotent) *)
  mutable reclaimed : float;
      (* absolute ε spent by all dead incarnations, from shard-journal
         replay at reclaim time *)
  mutable deadline : float;
      (* expiry of the last grant/re-ack; neg_infinity when nothing is
         leased — lets the coordinator spot idle incarnations sitting
         on unspent budget *)
}

type t = { total : float; shards : shard array }

(* Absorbs float-fold rounding in ≤-comparisons; grants themselves are
   exact sums so the slack never compounds. *)
let slack = 1e-9

let create ~total ~shards =
  if total < 0. then invalid_arg "Lease.create: negative total";
  if shards <= 0 then invalid_arg "Lease.create: shards must be positive";
  {
    total;
    shards =
      Array.init shards (fun _ ->
          { token = -1; leased = 0.; reclaimed = 0.; deadline = neg_infinity });
  }

let budget t = t.total
let shards t = Array.length t.shards
let outstanding t = Array.fold_left (fun a s -> a +. s.leased) 0. t.shards
let reclaimed_spent t = Array.fold_left (fun a s -> a +. s.reclaimed) 0. t.shards
let unleased t = Float.max 0. (t.total -. outstanding t -. reclaimed_spent t)
let invariant_ok t = reclaimed_spent t +. outstanding t <= t.total +. slack
let current_token t ~shard = t.shards.(shard).token
let leased t ~shard = t.shards.(shard).leased

let expired t ~now =
  Array.to_list t.shards
  |> List.mapi (fun k s -> (k, s))
  |> List.filter_map (fun (k, s) ->
         if s.leased > 0. && s.deadline < now then Some k else None)

let new_incarnation t ~shard ~token =
  let s = t.shards.(shard) in
  if token <= s.token then
    invalid_arg "Lease.new_incarnation: fencing token must strictly increase";
  if s.leased > 0. then
    invalid_arg "Lease.new_incarnation: reclaim the dead incarnation first";
  s.token <- token;
  s.deadline <- neg_infinity

type decision =
  | Granted of { leased : float; deadline : float }
  | Denied of { unleased : float }
  | Stale of { token : int }

let grant t ~shard ~token ~need ~quantum ~now ~ttl =
  let s = t.shards.(shard) in
  if token <> s.token || token < 0 then Stale { token = s.token }
  else if need <= s.leased +. slack then begin
    (* already covered: pure re-ack of the absolute state, so a grant
       whose ack was dropped is replayed without touching the ledger *)
    s.deadline <- now +. ttl;
    Granted { leased = s.leased; deadline = s.deadline }
  end
  else begin
    let head = unleased t in
    let want = Float.max need (s.leased +. quantum) in
    let give = Float.min want (s.leased +. head) in
    if give +. slack >= need then begin
      s.leased <- give;
      s.deadline <- now +. ttl;
      Granted { leased = s.leased; deadline = s.deadline }
    end
    else Denied { unleased = head }
  end

let rollback t ~shard ~token ~leased =
  let s = t.shards.(shard) in
  if token = s.token && leased < s.leased then s.leased <- leased

type reclaimed = { unspent : float; overspend : bool }

let reclaim t ~shard ~spent_total =
  let s = t.shards.(shard) in
  let spent_total = Float.max s.reclaimed spent_total in
  let incarnation_spent = spent_total -. s.reclaimed in
  let unspent = Float.max 0. (s.leased -. incarnation_spent) in
  let overspend = incarnation_spent > s.leased +. slack in
  s.reclaimed <- spent_total;
  s.leased <- 0.;
  s.deadline <- neg_infinity;
  { unspent; overspend }
