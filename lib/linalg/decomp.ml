exception Singular of string

let cholesky a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Decomp.cholesky: requires square matrix";
  let l = Mat.zeros n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s =
        Dp_math.Numeric.float_sum_range j (fun k -> Mat.get l i k *. Mat.get l j k)
      in
      if i = j then begin
        let d = Mat.get a i i -. s in
        if d <= 0. || not (Float.is_finite d) then
          raise (Singular (Printf.sprintf "cholesky: pivot %d is %g" i d));
        Mat.set l i i (sqrt d)
      end
      else Mat.set l i j ((Mat.get a i j -. s) /. Mat.get l j j)
    done
  done;
  l

let cholesky_solve l b =
  let n, _ = Mat.dims l in
  if Array.length b <> n then invalid_arg "Decomp.cholesky_solve: size mismatch";
  (* Forward substitution: L y = b. *)
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let s =
      Dp_math.Numeric.float_sum_range i (fun k -> Mat.get l i k *. y.(k))
    in
    y.(i) <- (b.(i) -. s) /. Mat.get l i i
  done;
  (* Back substitution: Lᵀ x = y. *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let s =
      Dp_math.Numeric.float_sum_range (n - i - 1) (fun k ->
          Mat.get l (i + 1 + k) i *. x.(i + 1 + k))
    in
    x.(i) <- (y.(i) -. s) /. Mat.get l i i
  done;
  x

let solve_spd a b = cholesky_solve (cholesky a) b

let lu a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Decomp.lu: requires square matrix";
  let lu = Mat.copy a in
  let piv = Array.init n Fun.id in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    (* Partial pivoting. *)
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !p k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let t = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !p j);
        Mat.set lu !p j t
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- t;
      sign := - !sign
    end;
    let pivot = Mat.get lu k k in
    if pivot = 0. then raise (Singular (Printf.sprintf "lu: zero pivot at %d" k));
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      for j = k + 1 to n - 1 do
        Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
      done
    done
  done;
  (lu, piv, !sign)

let lu_solve (lu, piv, _sign) b =
  let n, _ = Mat.dims lu in
  if Array.length b <> n then invalid_arg "Decomp.lu_solve: size mismatch";
  let x = Array.init n (fun i -> b.(piv.(i))) in
  (* Forward: L y = Pb (unit diagonal). *)
  for i = 1 to n - 1 do
    let s = Dp_math.Numeric.float_sum_range i (fun k -> Mat.get lu i k *. x.(k)) in
    x.(i) <- x.(i) -. s
  done;
  (* Backward: U x = y. *)
  for i = n - 1 downto 0 do
    let s =
      Dp_math.Numeric.float_sum_range (n - i - 1) (fun k ->
          Mat.get lu i (i + 1 + k) *. x.(i + 1 + k))
    in
    x.(i) <- (x.(i) -. s) /. Mat.get lu i i
  done;
  x

let solve a b = lu_solve (lu a) b

let inverse a =
  let n, _ = Mat.dims a in
  let fact = lu a in
  let out = Mat.zeros n n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    let x = lu_solve fact e in
    for i = 0 to n - 1 do
      Mat.set out i j x.(i)
    done
  done;
  out

let determinant a =
  match lu a with
  | lu, _, sign ->
      let n, _ = Mat.dims lu in
      let d =
        Array.init n (fun i -> Mat.get lu i i) |> Array.fold_left ( *. ) 1.
      in
      float_of_int sign *. d
  | exception Singular _ -> 0.

let log_det_spd a =
  let l = cholesky a in
  let n, _ = Mat.dims l in
  2. *. Dp_math.Numeric.float_sum_range n (fun i -> log (Mat.get l i i))

let qr a =
  let m, n = Mat.dims a in
  if m < n then invalid_arg "Decomp.qr: requires rows >= cols";
  let r = Mat.copy a in
  (* Accumulate Householder reflectors applied to the full identity,
     keep only the first n columns at the end. *)
  let q = Mat.identity m in
  for k = 0 to n - 1 do
    (* Householder vector for column k below the diagonal. *)
    let normx =
      sqrt
        (Dp_math.Numeric.float_sum_range (m - k) (fun i ->
             let v = Mat.get r (k + i) k in
             v *. v))
    in
    if normx > 0. then begin
      let alpha = if Mat.get r k k >= 0. then -.normx else normx in
      let v = Array.make m 0. in
      for i = k to m - 1 do
        v.(i) <- Mat.get r i k
      done;
      v.(k) <- v.(k) -. alpha;
      let vnorm2 = Dp_math.Numeric.float_sum_range m (fun i -> v.(i) *. v.(i)) in
      if vnorm2 > 0. then begin
        let beta = 2. /. vnorm2 in
        (* R <- (I - beta v vᵀ) R on columns k.. *)
        for j = k to n - 1 do
          let s =
            Dp_math.Numeric.float_sum_range (m - k) (fun i ->
                v.(k + i) *. Mat.get r (k + i) j)
          in
          for i = k to m - 1 do
            Mat.set r i j (Mat.get r i j -. (beta *. v.(i) *. s))
          done
        done;
        (* Q <- Q (I - beta v vᵀ). *)
        for i = 0 to m - 1 do
          let s =
            Dp_math.Numeric.float_sum_range (m - k) (fun jj ->
                Mat.get q i (k + jj) *. v.(k + jj))
          in
          for j = k to m - 1 do
            Mat.set q i j (Mat.get q i j -. (beta *. s *. v.(j)))
          done
        done
      end
    end
  done;
  let q_thin = Mat.init m n (fun i j -> Mat.get q i j) in
  let r_thin = Mat.init n n (fun i j -> if j >= i then Mat.get r i j else 0.) in
  (q_thin, r_thin)

let lstsq a b =
  let m, n = Mat.dims a in
  if Array.length b <> m then invalid_arg "Decomp.lstsq: size mismatch";
  let q, r = qr a in
  let qtb = Mat.tmul_vec q b in
  (* Back substitution on R. *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let rii = Mat.get r i i in
    if Float.abs rii < 1e-12 *. (1. +. Mat.max_abs r) then
      raise (Singular "lstsq: rank-deficient matrix");
    let s =
      Dp_math.Numeric.float_sum_range (n - i - 1) (fun k ->
          Mat.get r i (i + 1 + k) *. x.(i + 1 + k))
    in
    x.(i) <- (qtb.(i) -. s) /. rii
  done;
  x

let jacobi_eigen ?(tol = 1e-12) ?(max_sweeps = 100) a =
  if not (Mat.is_symmetric ~tol:1e-9 a) then
    invalid_arg "Decomp.jacobi_eigen: requires symmetric matrix";
  let n, _ = Mat.dims a in
  let d = Mat.copy a in
  let v = Mat.identity n in
  let off m =
    let s = ref 0. in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then s := !s +. Dp_math.Numeric.sq (Mat.get m i j)
      done
    done;
    sqrt !s
  in
  let sweep = ref 0 in
  while off d > tol *. (1. +. Mat.frobenius_norm d) && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get d p q in
        if Float.abs apq > 1e-300 then begin
          let app = Mat.get d p p and aqq = Mat.get d q q in
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let s = if theta >= 0. then 1. else -1. in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          (* Apply rotation G(p,q,θ) on both sides of D and accumulate V. *)
          for k = 0 to n - 1 do
            let dkp = Mat.get d k p and dkq = Mat.get d k q in
            Mat.set d k p ((c *. dkp) -. (s *. dkq));
            Mat.set d k q ((s *. dkp) +. (c *. dkq))
          done;
          for k = 0 to n - 1 do
            let dpk = Mat.get d p k and dqk = Mat.get d q k in
            Mat.set d p k ((c *. dpk) -. (s *. dqk));
            Mat.set d q k ((s *. dpk) +. (c *. dqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Mat.get v k p and vkq = Mat.get v k q in
            Mat.set v k p ((c *. vkp) -. (s *. vkq));
            Mat.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let eigs = Array.init n (fun i -> (Mat.get d i i, i)) in
  Array.sort (fun (a, _) (b, _) -> compare b a) eigs;
  let values = Array.map fst eigs in
  let vectors = Mat.init n n (fun i j -> Mat.get v i (snd eigs.(j))) in
  (values, vectors)
