(** Dense float vectors.

    Vectors are plain [float array]s; this module provides the
    non-mutating operations the learners need, with compensated
    reductions. Mutating variants are suffixed [_inplace]. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of [n] copies of [x]. *)

val init : int -> (int -> float) -> t

val zeros : int -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val add : t -> t -> t
(** Elementwise sum. @raise Invalid_argument on dimension mismatch. *)

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : alpha:float -> t -> t -> t
(** [axpy ~alpha x y] is [alpha * x + y]. *)

val axpy_inplace : alpha:float -> t -> t -> unit
(** [axpy_inplace ~alpha x y] updates [y <- alpha * x + y]. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm1 : t -> float

val norm_inf : t -> float

val dist2 : t -> t -> float
(** Euclidean distance. *)

val normalize : t -> t
(** Unit-norm rescaling. @raise Invalid_argument on the zero vector. *)

val project_l2_ball : radius:float -> t -> t
(** Euclidean projection onto the ball of the given radius. *)

val map2 : (float -> float -> float) -> t -> t -> t

val mean : t -> float

val argmax : t -> int
(** Index of the first maximal element. @raise Invalid_argument on empty. *)

val argmin : t -> int

val pp : Format.formatter -> t -> unit
