type t = float array

let create n x = Array.make n x
let init = Array.init
let zeros n = Array.make n 0.
let copy = Array.copy
let dim = Array.length
let of_list = Array.of_list

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let add a b =
  check_dims "add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dims "sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale alpha a = Array.map (fun x -> alpha *. x) a

let axpy ~alpha x y =
  check_dims "axpy" x y;
  Array.mapi (fun i yi -> (alpha *. x.(i)) +. yi) y

let axpy_inplace ~alpha x y =
  check_dims "axpy_inplace" x y;
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let dot = Dp_math.Summation.dot

let norm2 a = sqrt (dot a a)

let norm1 a = Dp_math.Summation.sum_map Float.abs a

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a

let dist2 a b = norm2 (sub a b)

let normalize a =
  let n = norm2 a in
  if n = 0. then invalid_arg "Vec.normalize: zero vector";
  scale (1. /. n) a

let project_l2_ball ~radius a =
  let radius = Dp_math.Numeric.check_nonneg "Vec.project_l2_ball radius" radius in
  let n = norm2 a in
  if n <= radius then copy a else scale (radius /. n) a

let map2 f a b =
  check_dims "map2" a b;
  Array.mapi (fun i x -> f x b.(i)) a

let mean = Dp_math.Summation.mean

let argmax a =
  if Array.length a = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let argmin a =
  if Array.length a = 0 then invalid_arg "Vec.argmin: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) < a.(!best) then best := i
  done;
  !best

let pp fmt a =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" x)
    a;
  Format.fprintf fmt "|]"
