(** Dense row-major matrices. *)

type t = { rows : int; cols : int; data : float array }
(** Row-major storage: element [(i,j)] lives at [data.(i * cols + j)]. *)

val create : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val zeros : int -> int -> t
val identity : int -> t
val of_arrays : float array array -> t
(** @raise Invalid_argument on ragged input or zero rows. *)

val to_arrays : t -> float array array
val copy : t -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val dims : t -> int * int
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product. @raise Invalid_argument on inner-dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [A x]. *)

val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec a x] is [Aᵀ x] without materializing the transpose. *)

val gram : t -> t
(** [gram a] is [Aᵀ A] (symmetric, PSD). *)

val outer : Vec.t -> Vec.t -> t
(** Outer product [x yᵀ]. *)

val add_diagonal : float -> t -> t
(** [add_diagonal lambda a] is [A + λI]. @raise Invalid_argument unless
    square. *)

val trace : t -> float
val frobenius_norm : t -> float
val max_abs : t -> float
val is_symmetric : ?tol:float -> t -> bool
val pp : Format.formatter -> t -> unit
