(** Matrix factorizations and linear solvers.

    Sizes here are small (predictor dimension d ≲ 100), so classical
    O(n³) algorithms without blocking are the right tool. *)

exception Singular of string
(** Raised when a factorization meets a (numerically) singular or
    non-positive-definite matrix. *)

val cholesky : Mat.t -> Mat.t
(** [cholesky a] returns the lower-triangular [L] with [L Lᵀ = A] for a
    symmetric positive-definite [A].
    @raise Singular when a pivot is not strictly positive.
    @raise Invalid_argument when [A] is not square. *)

val cholesky_solve : Mat.t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [L Lᵀ x = b] given the Cholesky factor. *)

val solve_spd : Mat.t -> Vec.t -> Vec.t
(** [solve_spd a b] solves [A x = b] for symmetric positive-definite
    [A] via Cholesky. *)

val lu : Mat.t -> Mat.t * int array * int
(** [lu a] computes a PA = LU factorization with partial pivoting,
    returning the packed LU matrix, the pivot permutation, and the
    permutation sign.
    @raise Singular on zero pivots. *)

val lu_solve : Mat.t * int array * int -> Vec.t -> Vec.t

val solve : Mat.t -> Vec.t -> Vec.t
(** General square solve via LU. *)

val inverse : Mat.t -> Mat.t
(** Matrix inverse via LU (use {!solve} when possible). *)

val determinant : Mat.t -> float

val log_det_spd : Mat.t -> float
(** Log-determinant of a symmetric positive-definite matrix via
    Cholesky (never over/underflows for moderate dimensions). *)

val qr : Mat.t -> Mat.t * Mat.t
(** Householder QR of an [m×n] matrix with [m >= n]: returns the thin
    factors [(Q, R)] with [Q : m×n] orthonormal columns and [R : n×n]
    upper triangular. *)

val lstsq : Mat.t -> Vec.t -> Vec.t
(** Least-squares solution of [A x ≈ b] via QR.
    @raise Singular when [A] is rank deficient. *)

val jacobi_eigen : ?tol:float -> ?max_sweeps:int -> Mat.t -> Vec.t * Mat.t
(** [jacobi_eigen a] returns [(eigenvalues, eigenvectors)] of a
    symmetric matrix by cyclic Jacobi rotations; eigenvectors are the
    columns of the returned matrix, eigenvalues sorted descending.
    @raise Invalid_argument when [A] is not symmetric. *)
